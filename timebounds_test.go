package timebounds_test

// Public-facade tests: the README's advertised workflows work end-to-end
// through the root package alone.

import (
	"testing"
	"time"

	"timebounds"
)

func facadeConfig(n int) timebounds.Config {
	return timebounds.Config{
		N:    n,
		D:    10 * time.Millisecond,
		U:    4 * time.Millisecond,
		Seed: 1,
	}
}

func TestFacadeQuickstartFlow(t *testing.T) {
	cfg := facadeConfig(3)
	cluster, err := timebounds.NewCluster(cfg, timebounds.NewRegister(0))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cluster.Invoke(0, 0, timebounds.OpWrite, 7)
	cluster.Invoke(30*time.Millisecond, 1, timebounds.OpRead, nil)
	if err := cluster.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := cluster.History()
	if !h.Complete() || h.Len() != 2 {
		t.Fatalf("unexpected history:\n%s", h)
	}
	if res := timebounds.CheckLinearizable(cluster.DataType(), h); !res.Linearizable {
		t.Fatalf("not linearizable:\n%s", h)
	}
	if state, err := cluster.ConvergedState(); err != nil || state != "reg:7" {
		t.Errorf("converged state %q, %v", state, err)
	}
}

func TestFacadeDefaultsOptimalSkew(t *testing.T) {
	cfg := facadeConfig(4)
	if got, want := timebounds.OptimalSkew(cfg), 3*time.Millisecond; got != want {
		t.Errorf("OptimalSkew = %s, want %s", got, want)
	}
	if got := cfg.Params().Epsilon; got != 3*time.Millisecond {
		t.Errorf("defaulted ε = %s, want 3ms", got)
	}
	explicit := cfg
	explicit.Epsilon = time.Millisecond
	if got := explicit.Params().Epsilon; got != time.Millisecond {
		t.Errorf("explicit ε overridden: %s", got)
	}
}

func TestFacadeBoundFormulas(t *testing.T) {
	cfg := facadeConfig(4) // ε=3ms
	cases := []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"LowerBoundINSC", timebounds.LowerBoundINSC(cfg), 13 * time.Millisecond},
		{"LowerBoundMutator", timebounds.LowerBoundMutator(cfg), 3 * time.Millisecond},
		{"UpperBoundOOP", timebounds.UpperBoundOOP(cfg), 13 * time.Millisecond},
		{"UpperBoundMutator", timebounds.UpperBoundMutator(cfg), 3 * time.Millisecond},
		{"UpperBoundAccessor", timebounds.UpperBoundAccessor(cfg), 13 * time.Millisecond},
		{"UpperBoundPair", timebounds.UpperBoundPair(cfg), 16 * time.Millisecond},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %s, want %s", c.name, c.got, c.want)
		}
	}
}

func TestFacadeTablesRender(t *testing.T) {
	tables := timebounds.Tables()
	if len(tables) != 4 {
		t.Fatalf("want 4 tables, got %d", len(tables))
	}
	out := timebounds.RenderTable(tables[0], facadeConfig(4), nil)
	if out == "" {
		t.Error("empty render")
	}
}

func TestFacadeAllDataTypes(t *testing.T) {
	// Every bundled data type runs one mutate-then-observe round trip
	// through a cluster and linearizes.
	cfg := facadeConfig(3)
	const settle = 50 * time.Millisecond
	cases := []struct {
		dt      timebounds.DataType
		mutate  timebounds.OpKind
		arg     timebounds.Value
		observe timebounds.OpKind
		obsArg  timebounds.Value
		want    timebounds.Value
	}{
		{timebounds.NewRegister(0), timebounds.OpWrite, 5, timebounds.OpRead, nil, 5},
		{timebounds.NewRMWRegister(0), timebounds.OpWrite, 5, timebounds.OpRead, nil, 5},
		{timebounds.NewQueue(), timebounds.OpEnqueue, "a", timebounds.OpPeek, nil, "a"},
		{timebounds.NewStack(), timebounds.OpPush, "a", timebounds.OpTop, nil, "a"},
		{timebounds.NewSet(), timebounds.OpInsert, 5, timebounds.OpContains, 5, true},
		{timebounds.NewCounter(), timebounds.OpIncrement, 2, timebounds.OpGet, nil, 2},
		{timebounds.NewTree(), timebounds.OpTreeInsert,
			timebounds.Edge{Node: "a", Parent: "root"}, timebounds.OpTreeSearch, "a", true},
		{timebounds.NewDict(), timebounds.OpPut,
			timebounds.KV{Key: "k", Value: 9}, timebounds.OpDictGet, "k", 9},
		{timebounds.NewPQueue(), timebounds.OpPQInsert, 4, timebounds.OpPQMin, nil, 4},
		{timebounds.NewAccount(), timebounds.OpDeposit, 50, timebounds.OpBalance, nil, 50},
	}
	for _, c := range cases {
		t.Run(c.dt.Name(), func(t *testing.T) {
			cluster, err := timebounds.NewCluster(cfg, c.dt)
			if err != nil {
				t.Fatalf("NewCluster: %v", err)
			}
			cluster.Invoke(0, 0, c.mutate, c.arg)
			cluster.Invoke(settle, 1, c.observe, c.obsArg)
			if err := cluster.Run(time.Second); err != nil {
				t.Fatalf("Run: %v", err)
			}
			var got timebounds.Value
			for _, op := range cluster.History().Ops() {
				if op.Kind == c.observe {
					got = op.Ret
				}
			}
			if !valueEqual(got, c.want) {
				t.Errorf("%s observed %v, want %v", c.dt.Name(), got, c.want)
			}
			if res := timebounds.CheckLinearizable(c.dt, cluster.History()); !res.Linearizable {
				t.Errorf("history not linearizable:\n%s", cluster.History())
			}
		})
	}
}

func valueEqual(a, b timebounds.Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a == b
}

func TestFacadeConfigValidation(t *testing.T) {
	bad := timebounds.Config{N: 0, D: time.Millisecond}
	if _, err := timebounds.NewCluster(bad, timebounds.NewRegister(0)); err == nil {
		t.Error("N=0 accepted")
	}
	bad = facadeConfig(3)
	bad.X = time.Second
	if _, err := timebounds.NewCluster(bad, timebounds.NewRegister(0)); err == nil {
		t.Error("huge X accepted")
	}
	bad = facadeConfig(3)
	bad.ClockOffsets = []time.Duration{0, time.Second, 0}
	if _, err := timebounds.NewCluster(bad, timebounds.NewRegister(0)); err == nil {
		t.Error("skewed offsets accepted")
	}
}

// TestFacadeRandomizedLinearizability is the end-to-end property test: for
// many seeds, a random mixed workload on random-delay, max-skew clusters of
// every table object is linearizable and converges.
func TestFacadeRandomizedLinearizability(t *testing.T) {
	kindsFor := func(dt timebounds.DataType) []struct {
		kind timebounds.OpKind
		arg  func(i int) timebounds.Value
	} {
		switch dt.Name() {
		case "rmw-register":
			return []struct {
				kind timebounds.OpKind
				arg  func(i int) timebounds.Value
			}{
				{timebounds.OpWrite, func(i int) timebounds.Value { return i }},
				{timebounds.OpRead, nil},
				{timebounds.OpRMW, func(i int) timebounds.Value { return i + 100 }},
			}
		case "queue":
			return []struct {
				kind timebounds.OpKind
				arg  func(i int) timebounds.Value
			}{
				{timebounds.OpEnqueue, func(i int) timebounds.Value { return i }},
				{timebounds.OpDequeue, nil},
				{timebounds.OpPeek, nil},
			}
		default:
			return nil
		}
	}
	for seed := int64(0); seed < 12; seed++ {
		for _, mk := range []func() timebounds.DataType{
			func() timebounds.DataType { return timebounds.NewRMWRegister(0) },
			timebounds.NewQueue,
		} {
			dt := mk()
			cfg := facadeConfig(3)
			cfg.Seed = seed
			cluster, err := timebounds.NewCluster(cfg, dt)
			if err != nil {
				t.Fatalf("NewCluster: %v", err)
			}
			kinds := kindsFor(dt)
			at := time.Duration(0)
			for i := 0; i < 9; i++ {
				k := kinds[(int(seed)+i)%len(kinds)]
				var arg timebounds.Value
				if k.arg != nil {
					arg = k.arg(i)
				}
				cluster.Invoke(at, timebounds.ProcessID(i%3), k.kind, arg)
				at += time.Duration((int(seed)*7+i*5)%13) * time.Millisecond
			}
			if err := cluster.Run(10 * time.Second); err != nil {
				t.Fatalf("seed %d %s: Run: %v", seed, dt.Name(), err)
			}
			if !cluster.History().Complete() {
				t.Fatalf("seed %d %s: pending ops", seed, dt.Name())
			}
			if res := timebounds.CheckLinearizable(dt, cluster.History()); !res.Linearizable {
				t.Errorf("seed %d %s: not linearizable:\n%s", seed, dt.Name(), cluster.History())
			}
			if _, err := cluster.ConvergedState(); err != nil {
				t.Errorf("seed %d %s: %v", seed, dt.Name(), err)
			}
		}
	}
}
