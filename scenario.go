package timebounds

import (
	"context"
	"fmt"

	"timebounds/internal/adversary"
	"timebounds/internal/check"
	"timebounds/internal/engine"
	"timebounds/internal/fault"
	"timebounds/internal/keyspace"
	"timebounds/internal/live"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/workload"
)

// This file is the scenario facade, grouped into the sections the package
// doc maps (see timebounds.go, "Facade map"):
//
//   §1 Core run surface   — Scenario, Engine, Grid, Workload, backends
//   §2 Adversaries        — delay modes, lower-bound adversary specs
//   §3 Sharding           — keyed workloads over per-shard sub-clusters
//   §4 Streaming & study  — result streams, online aggregation, studies
//   §5 Faults             — fault-plan axes and dichotomy verdicts
//   §6 Live runtime       — wall-clock clusters, estimation, retuning
//   §7 Deprecated bridge  — the pre-redesign Config surface
//
// Every name here is a thin alias or constructor over the internal
// packages; the full export list is pinned by TestPublicAPIGolden.

// ---------------------------------------------------------------------------
// §1 Core run surface
//
// A Scenario pairs a Backend (which algorithm implements the object) with
// a Workload (what the processes do) under chosen model parameters, delay
// adversary, and clock offsets; an Engine runs scenario grids in parallel
// — one isolated simulator per run — and aggregates structured Results:
// per-kind latency statistics, per-class measured-vs-theoretical bound
// margins, linearizability verdicts, and replica convergence. Same
// scenarios ⇒ bit-identical Report.

type (
	// Backend is an implementation strategy: Algorithm1, AllOOP,
	// Centralized, or TOB.
	Backend = engine.Backend
	// Instance is one runnable replicated object built by a Backend.
	Instance = engine.Instance
	// Scenario is one experiment point: Backend × Workload × parameters ×
	// delay policy × clock offsets × runtime.
	Scenario = engine.Scenario
	// Engine executes scenario grids across a worker pool.
	Engine = engine.Engine
	// Report aggregates scenario Results in input order.
	Report = engine.Report
	// Result is the structured outcome of one scenario run.
	Result = engine.Result
	// BoundCheck compares a class's measured worst case with its bound.
	BoundCheck = engine.BoundCheck
	// Grid declares a cross product of scenario coordinates.
	Grid = engine.Grid
	// Workload is a declarative operation-stream spec: closed/open loop,
	// per-process mixes, ramps, or explicit (adversarial) schedules.
	Workload = workload.Spec
	// WorkloadMode selects closed- or open-loop pacing.
	WorkloadMode = workload.Mode
	// OpMix selects operation kinds with weights.
	OpMix = workload.OpMix
	// WeightedOp pairs an operation kind, weight, and argument generator.
	WeightedOp = workload.WeightedOp
	// Invocation is one explicitly scheduled operation.
	Invocation = workload.Invocation
	// Stats summarizes one operation kind's latency distribution.
	Stats = workload.Stats
	// Params are the raw model timing parameters (n, d, u, ε).
	Params = model.Params
	// OpClass is the Chapter V operation class (MOP/AOP/OOP).
	OpClass = spec.OpClass
)

// Workload pacing modes.
const (
	// ClosedLoop paces each process with jittered think time.
	ClosedLoop = workload.Closed
	// OpenLoop issues invocations at exact fixed-rate instants.
	OpenLoop = workload.Open
)

// Operation classes (Chapter V).
const (
	// ClassOther is OOP: totally ordered operations (≤ d+ε).
	ClassOther = spec.ClassOther
	// ClassPureMutator is MOP: mutators returning nothing (≤ ε+X).
	ClassPureMutator = spec.ClassPureMutator
	// ClassPureAccessor is AOP: read-only operations (≤ d+ε-X).
	ClassPureAccessor = spec.ClassPureAccessor
)

// Algorithm1 returns the paper's Chapter V backend: pure mutators respond
// in ε+X, pure accessors in d+ε-X, everything else in d+ε.
func Algorithm1() Backend { return engine.Algorithm1{} }

// AllOOP returns the folklore timestamp-total-order backend: every
// operation takes the ordered path, responding in ≤ d+ε.
func AllOOP() Backend { return engine.AllOOP{} }

// Centralized returns the folklore coordinator backend: process 0 owns the
// object; remote operations are request/response round trips (≤ 2d).
func Centralized() Backend { return engine.Centralized{} }

// TOB returns the sequencer-based total-order-broadcast backend (≤ 2d,
// matching Chapter I.A.3's observation that TOB is no faster than the
// centralized scheme).
func TOB() Backend { return engine.TOB{} }

// Backends returns every bundled backend, Algorithm 1 first.
func Backends() []Backend { return engine.Backends() }

// BackendByName resolves a backend by name (algorithm1|all-oop|centralized|tob).
func BackendByName(name string) (Backend, error) { return engine.BackendByName(name) }

// DataTypeByName constructs a bundled data type by its flag name, for
// tools: register|queue|stack|tree|set|counter|dict|pqueue|account
// ("register" is the read/write/read-modify-write register).
func DataTypeByName(name string) (DataType, error) {
	switch name {
	case "register":
		return NewRMWRegister(0), nil
	case "queue":
		return NewQueue(), nil
	case "stack":
		return NewStack(), nil
	case "tree":
		return NewTree(), nil
	case "set":
		return NewSet(), nil
	case "counter":
		return NewCounter(), nil
	case "dict":
		return NewDict(), nil
	case "pqueue":
		return NewPQueue(), nil
	case "account":
		return NewAccount(), nil
	default:
		return nil, fmt.Errorf("timebounds: unknown data type %q (want register|queue|stack|tree|set|counter|dict|pqueue|account)", name)
	}
}

// NewEngine returns an engine with the given worker cap (≤0 = GOMAXPROCS).
// Beyond Run, engines stream: Engine.Stream returns an iterator yielding
// Results in completion order (Engine.StreamChan is the channel form),
// honoring context cancellation without leaking workers, and
// Engine.RunContext collects a (possibly partial) Report under a context.
func NewEngine(workers int) *Engine { return engine.New(workers) }

// RunScenarios executes the scenarios on a default engine (all cores) and
// returns their results in input order.
func RunScenarios(scenarios []Scenario) Report { return engine.Run(scenarios) }

// RunScenario executes one scenario and surfaces its failure, if any, as
// an error.
func RunScenario(sc Scenario) (Result, error) { return engine.New(0).RunOne(sc) }

// DefaultMix returns the representative operation mix used for dt by the
// measured tables and default workloads.
func DefaultMix(dt DataType) OpMix { return workload.DefaultMix(dt) }

// RenderKinds renders one result's per-kind latency table, kinds sorted.
func RenderKinds(res Result) string { return engine.RenderKinds(res) }

// RaceWorkload returns a maximal-contention workload: every process
// invokes the given kinds back-to-back at identical instants, the schedule
// shape of the paper's lower-bound constructions.
func RaceWorkload(p Params, start, gap Time, rounds int, kinds ...OpKind) Workload {
	return workload.Race(p, start, gap, rounds, kinds...)
}

// ---------------------------------------------------------------------------
// §2 Adversaries
//
// Delay adversaries shape message delays within the admissible [d-u, d]
// envelope; AdversarySpecs are the paper's lower-bound constructions as
// first-class run families, recording BoundWitnesses judged by the
// theorems' dichotomy.

type (
	// DelaySpec declares the message-delay adversary of a scenario.
	DelaySpec = engine.DelaySpec
	// DelayMode names a bundled delay adversary shape.
	DelayMode = engine.DelayMode
	// AdversarySpec is a first-class lower-bound adversary: a named run
	// family (delay matrices, clock shifts, premature tunings, explicit
	// schedules) that expands into engine scenarios and records
	// BoundWitnesses. Grid.Adversaries sweeps them like DelaySpecs.
	AdversarySpec = engine.AdversarySpec
	// AdversaryRun is one member of an adversary's run family.
	AdversaryRun = engine.AdversaryRun
	// WitnessSpec asks a scenario to record a lower-bound witness.
	WitnessSpec = engine.WitnessSpec
	// BoundWitness records the operation whose latency witnesses a
	// theoretical lower bound in one run, and whether the run violated
	// linearizability.
	BoundWitness = engine.BoundWitness
	// FamilyWitness aggregates one adversary run family's dichotomy
	// verdict: a violation somewhere, or latency at least the bound.
	FamilyWitness = engine.FamilyWitness
	// TunableBackend is a backend whose wait durations can be overridden
	// (Algorithm 1), the hook for premature implementations.
	TunableBackend = engine.TunableBackend
	// ShiftFraction scales an adversary's clock-shift magnitude relative
	// to the proof's full shift.
	ShiftFraction = adversary.ShiftFraction
)

// Delay adversaries.
const (
	// DelayRandom draws delays uniformly from [d-u, d] (seeded).
	DelayRandom = engine.DelayRandom
	// DelayWorst fixes every delay at the slowest admissible d.
	DelayWorst = engine.DelayWorst
	// DelayBest fixes every delay at the fastest admissible d-u.
	DelayBest = engine.DelayBest
	// DelayExtremal alternates deterministically between d-u and d.
	DelayExtremal = engine.DelayExtremal
)

// DelayModeByName resolves a delay mode by name (random|worst|best|extremal).
func DelayModeByName(name string) (DelayMode, error) { return engine.DelayModeByName(name) }

// AdversaryNames lists the bundled lower-bound constructions:
// fig1|c1|c1-queue|d1|e1|e1-dict.
func AdversaryNames() []string { return adversary.SpecNames() }

// AdversaryByName resolves a bundled lower-bound construction by name.
// correct selects the proven-correct tuning (whose witness operation must
// pay at least the bound) instead of the premature one (which the run
// family must catch with a linearizability violation).
func AdversaryByName(name string, correct bool) (AdversarySpec, error) {
	return adversary.SpecByName(name, correct, ShiftFraction{})
}

// AdversaryByNameShifted is AdversaryByName with the construction's
// clock-shift magnitude scaled to the given fraction of the proof's full
// shift; below the threshold the premature witness disappears.
func AdversaryByNameShifted(name string, correct bool, shiftFrac float64) (AdversarySpec, error) {
	return adversary.SpecByName(name, correct, adversary.Frac(shiftFrac))
}

// ---------------------------------------------------------------------------
// §3 Sharding
//
// A keyed workload partitioned into engine-managed per-shard sub-clusters;
// linearizability is local (Herlihy & Wing), so the store's verdict is the
// composition of the shard verdicts.

type (
	// ShardedScenario runs one keyed workload as engine-managed per-shard
	// sub-clusters and folds the shard Results into a ShardedReport with a
	// composed linearizability verdict (linearizability is local, so the
	// store is linearizable iff every shard is).
	ShardedScenario = engine.ShardedScenario
	// ShardedReport is the folded outcome of a sharded scenario: per-shard
	// Results, the composed verdict, aggregate latency-vs-bound margins,
	// and shard-skew statistics.
	ShardedReport = engine.ShardedReport
	// ShardStats summarizes how evenly a keyed workload spread across the
	// shards.
	ShardStats = engine.ShardStats
	// ShardedWorkload is a keyed workload spec: a key space, a per-key
	// operation stream (or explicit keyed schedule), and a hash or
	// explicit partitioning into shards.
	ShardedWorkload = workload.Sharded
	// KeyOp is one keyed operation (put/get/delete on a key) of a sharded
	// workload.
	KeyOp = workload.KeyOp
	// Composition is the locality verdict over independently checked
	// components (Herlihy & Wing's composition theorem as a value).
	Composition = check.Composition
	// Space is a named key universe: N keys with zero-padded names, so
	// lexicographic order equals numeric order and range partitions are
	// contiguous index intervals.
	Space = keyspace.Space
	// PopularityModel assigns sampling weight to key indices (Zipf,
	// HotSet, Uniform); KeyedWorkload streams a keyed schedule from one.
	PopularityModel = keyspace.Model
	// Zipf is the power-law popularity model (exponent S > 1).
	Zipf = keyspace.Zipf
	// HotSet concentrates Weight of the traffic on the first Hot keys.
	HotSet = keyspace.HotSet
	// UniformKeys spreads traffic evenly across the space.
	UniformKeys = keyspace.Uniform
	// Tenant is one named slice of a multi-tenant keyed workload.
	Tenant = keyspace.Tenant
	// MixWeights sets the put/get/delete ratio of a keyed workload.
	MixWeights = keyspace.MixWeights
	// KeyedWorkload is a popularity-driven keyed workload generator; its
	// Sharded method emits a streaming ShardedWorkload in constant memory.
	KeyedWorkload = keyspace.Workload
	// KeyLoad pairs a key with its observed operation count (the
	// ShardedReport.HotKeys element, and SplitHot's input).
	KeyLoad = keyspace.KeyLoad
	// KeyRange is a half-open lexicographic key interval [Lo, Hi).
	KeyRange = keyspace.KeyRange
	// PartitionMap is one versioned range-partition assignment of the key
	// space onto shards.
	PartitionMap = keyspace.PartitionMap
	// Move reassigns one key range to a destination shard.
	Move = keyspace.Move
	// Migration is a batch of Moves cutting over at one instant.
	Migration = keyspace.Migration
	// MigrationPlan is a base PartitionMap plus scheduled Migrations —
	// ShardedScenario.Plan's type; the engine splits each migrated key's
	// history at the cutovers and verifies the pieces via Compose.
	MigrationPlan = keyspace.Plan
	// Handoff records one key's drain-then-cutover transfer between
	// shards, including the value carried across.
	Handoff = engine.Handoff
	// EpochStats summarizes one partition epoch of a migrating run.
	EpochStats = engine.EpochStats
)

// RunSharded expands a sharded scenario into per-shard sub-clusters, runs
// them across a default engine's worker pool, and folds the results into
// one ShardedReport. Same scenario ⇒ bit-identical report at any worker
// count.
func RunSharded(ss ShardedScenario) (ShardedReport, error) { return engine.RunSharded(ss) }

// PutKey returns a keyed write of key=value by proc at the given time,
// for ShardedWorkload explicit schedules.
func PutKey(at Time, proc ProcessID, key string, value Value) KeyOp {
	return workload.Put(at, proc, key, value)
}

// GetKey returns a keyed read of key by proc at the given time.
func GetKey(at Time, proc ProcessID, key string) KeyOp { return workload.Get(at, proc, key) }

// DeleteKey returns a keyed delete of key by proc at the given time.
func DeleteKey(at Time, proc ProcessID, key string) KeyOp { return workload.Del(at, proc, key) }

// RangePartition splits the key space into shards contiguous
// lexicographic ranges of near-equal size (version 0).
func RangePartition(space Space, shards int) PartitionMap {
	return keyspace.RangePartition(space, shards)
}

// MoveKey returns the Move reassigning exactly one key to shard to.
func MoveKey(key string, to int) Move { return keyspace.MoveKey(key, to) }

// SplitHot plans a rebalancing migration from observed load: it moves the
// hottest keys of the hottest shard onto the coldest shard until the
// excess over the mean is halved. It returns nil when the imbalance is
// within threshold (hottest ≤ threshold × mean) or nothing can move.
// Feed it ShardedReport.Stats.PerShardOps and ShardedReport.HotKeys.
func SplitHot(m PartitionMap, shardOps []int, hot []KeyLoad, at Time, threshold float64) *Migration {
	return keyspace.SplitHot(m, shardOps, hot, at, threshold)
}

// ---------------------------------------------------------------------------
// §4 Streaming & study
//
// Large grids stream Results through constant-memory aggregation instead
// of retaining every history; load-sweep studies drive one scenario
// template across an offered-rate axis and bisect the saturation knee.

type (
	// IndexedResult pairs a streamed Result with its scenario's input
	// index (Engine.StreamChan's element type).
	IndexedResult = engine.IndexedResult
	// Aggregate folds streamed Results into constant-memory summaries:
	// online per-kind/per-class statistics, verdict counters, and
	// utilization accounting — the streaming replacement for retaining
	// every history of a large grid.
	Aggregate = engine.Aggregate
	// OnlineStats is a constant-memory streaming latency summary:
	// exact count/min/max/mean, Welford variance, and a fixed-size
	// quantile sketch (p99 within ~0.8% relative error).
	OnlineStats = workload.OnlineStats
	// Study declares a load-sweep saturation study: one scenario template
	// driven open-loop across an offered-rate axis with online
	// aggregation and a saturation-knee bisection.
	Study = engine.Study
	// StudyReport is a study's outcome: measured points sorted by load
	// and the located knee, if any.
	StudyReport = engine.StudyReport
	// StudyPoint is one measured offered-load point.
	StudyPoint = engine.StudyPoint
	// ClassLoad is one operation class's sojourn summary at one load.
	ClassLoad = engine.ClassLoad
	// LoadRamp generates a geometric offered-load axis.
	LoadRamp = engine.LoadRamp
	// Knee is a located saturation knee (bracket, class, p99, bound).
	Knee = engine.Knee
)

// NewAggregate returns an empty streaming aggregate, ready to fold
// Results from Engine.Stream without retaining them.
func NewAggregate() *Aggregate { return engine.NewAggregate() }

// RunStudy executes a load-sweep saturation study on a default engine:
// every axis point streams through the worker pool and folds online, then
// a geometric bisection narrows the saturation knee (the lowest offered
// load at which some class's p99 sojourn time reaches KneeFactor × its
// service bound). Same study ⇒ identical report at any worker count.
func RunStudy(ctx context.Context, s Study) (StudyReport, error) {
	return s.Run(ctx, engine.New(0))
}

// ---------------------------------------------------------------------------
// §5 Faults
//
// Fault-plan axes inject crashes, churn, loss, duplication, partitions,
// and clock drift; every faulted run lands on exactly one horn of the
// dichotomy verdict — within the crash-adjusted bound, or a breach naming
// the broken model assumption.

type (
	// FaultSpec is a scenario's fault-injection axis: a named builder of
	// crash/churn/loss/duplication/partition/drift plans. The zero value
	// injects nothing.
	FaultSpec = engine.FaultSpec
	// FaultReport is the dichotomy verdict of one faulted run: within the
	// crash-adjusted bound, or a breach list naming the broken model
	// assumptions and by how much.
	FaultReport = engine.FaultReport
	// FaultPlan is a concrete fault schedule (crashes, retirements, loss
	// and duplication windows, partitions, clock drifts).
	FaultPlan = fault.Plan
	// Breach pinpoints one broken model assumption or observed symptom.
	Breach = fault.Breach
	// FaultStats accounts for the faults that materialized in one run.
	FaultStats = fault.Stats
	// NamedFault pairs a scenario name with its FaultReport.
	NamedFault = engine.NamedFault
)

// The two horns of a faulted run's dichotomy verdict.
const (
	// VerdictWithinBound: the run's history linearizes, its replicas
	// converge, and every operation paid at most its crash-adjusted bound.
	VerdictWithinBound = engine.VerdictWithinBound
	// VerdictAssumptionBroken: the FaultReport's breaches pinpoint which
	// model assumption broke, and by how much.
	VerdictAssumptionBroken = engine.VerdictAssumptionBroken
)

// FaultSpecs lists the bundled fault-plan families, one per model
// assumption the injector can break:
// crash-recover|crash|churn|loss|dup|partition|drift-mild|drift.
func FaultSpecs() []FaultSpec { return engine.FaultSpecs() }

// FaultSpecNames lists the bundled fault-plan family names, in order.
func FaultSpecNames() []string { return engine.FaultSpecNames() }

// FaultSpecByName resolves a bundled fault-plan family by name.
func FaultSpecByName(name string) (FaultSpec, error) { return engine.FaultSpecByName(name) }

// FaultFamilies lists the engineered fault adversaries — run families with
// explicit schedules that strike each model assumption at engineered
// moments, judged by the fault dichotomy (every member within-bound or
// assumption-broken, never unknown).
func FaultFamilies() []AdversarySpec { return adversary.FaultFamilies() }

// FaultFamilyNames lists the engineered fault adversary names, in order.
func FaultFamilyNames() []string { return adversary.FaultFamilyNames() }

// FaultFamilyByName resolves an engineered fault adversary by name.
func FaultFamilyByName(name string) (AdversarySpec, error) {
	return adversary.FaultFamilyByName(name)
}

// ---------------------------------------------------------------------------
// §6 Live runtime
//
// Scenario.Runtime selects where a scenario executes. The zero value is
// the deterministic simulator; a live Runtime runs the same Backend ×
// Workload declaration as a wall-clock goroutine cluster over a real
// Transport (in-process channels or loopback TCP), discovers (u, d) with
// a windowed online estimator, retunes Algorithm 1's waits adaptively,
// and verifies the recorded history with the same Wing–Gong checker post
// hoc. Result.Live reports the estimated envelope and the per-class
// measured-latency-vs-estimated-bound margins; Runtime.Undertune scales
// the waits below the estimated envelope and must reproduce the
// premature-tuning dichotomy.

type (
	// Runtime is the scenario axis selecting simulated vs live execution;
	// the zero value is the simulator.
	Runtime = engine.Runtime
	// RuntimeMode selects where a scenario executes.
	RuntimeMode = engine.RuntimeMode
	// TransportSpec selects a live scenario's transport as a value.
	TransportSpec = engine.TransportSpec
	// TransportKind names a bundled live transport.
	TransportKind = engine.TransportKind
	// Transport connects the replicas of one live cluster; implement it
	// (with Endpoint) to plug a custom transport into TransportSpec.
	Transport = live.Transport
	// Endpoint is one process's attachment to a live Transport.
	Endpoint = live.Endpoint
	// LiveMessage is the wire unit live replicas exchange.
	LiveMessage = live.Message
	// EstimatorConfig tunes the online (u, d) estimator: window size,
	// safety margin, slack, and the prior used before enough samples.
	EstimatorConfig = engine.EstimatorConfig
	// Estimate is one padded (d̂, û, ε̂) envelope snapshot of the
	// estimator.
	Estimate = engine.Estimate
	// LiveReport records what a live run measured: the estimator
	// envelope, retuning activity, and per-class
	// measured-vs-estimated-bound margins.
	LiveReport = engine.LiveReport
	// LiveClass is one operation class's measured latency distribution
	// against the bound computed from the estimated (u, d, ε).
	LiveClass = engine.LiveClass
)

// Runtime modes and bundled live transports.
const (
	// RuntimeSim runs scenarios in the deterministic simulator (default).
	RuntimeSim = engine.RuntimeSim
	// RuntimeLive runs scenarios as wall-clock goroutine clusters.
	RuntimeLive = engine.RuntimeLive
	// TransportChan is the in-process channel transport (the scenario's
	// delay adversary becomes synthetic message delays).
	TransportChan = engine.TransportChan
	// TransportTCP is loopback TCP with gob framing.
	TransportTCP = engine.TransportTCP
)

// LiveRuntime returns a live Runtime over the in-process chan transport.
func LiveRuntime() Runtime { return engine.LiveRuntime() }

// LiveTCPRuntime returns a live Runtime over loopback TCP.
func LiveTCPRuntime() Runtime { return engine.LiveTCPRuntime() }

// ---------------------------------------------------------------------------
// §7 Deprecated bridge
//
// The pre-redesign Config surface remains as a thin shim over the same
// engine; see timebounds.go for Config itself.

// Scenario bridges the deprecated Config surface onto the Scenario API:
// the returned scenario reproduces exactly the simulator NewCluster(cfg, dt)
// would have built. Like the Config surface it bridges, the result is
// single-run: when cfg.Delay is set, the bridged DelaySpec reuses that one
// policy instance, so do not fan the scenario out across a grid — declare a
// Scenario with a fresh-per-call DelaySpec.Policy, or an AdversarySpec
// whose runs build their policies fresh per expansion (all bundled
// adversaries do, which is why adversary grids are bit-identical at any
// engine parallelism).
func (c Config) Scenario(dt DataType) Scenario {
	sc := Scenario{
		DataType: dt,
		Params:   c.params(),
		X:        c.X,
		Seed:     c.Seed,
	}
	if c.Delay != nil {
		policy := c.Delay
		sc.Delay = DelaySpec{Policy: func(model.Params, int64) DelayPolicy { return policy }}
	}
	if c.ClockOffsets != nil {
		sc.ClockOffsets = append([]Time(nil), c.ClockOffsets...)
	}
	return sc
}
