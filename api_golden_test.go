package timebounds

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/api.golden from the current facade")

// facadeExports parses the package's non-test files and returns every
// exported top-level identifier, one line per export: "type Name",
// "func Name", "const Name", "var Name", or "method Recv.Name".
func facadeExports(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				kind := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
				if kind == "" {
					continue
				}
				for _, s := range d.Specs {
					switch s := s.(type) {
					case *ast.TypeSpec:
						if ast.IsExported(s.Name.Name) {
							lines = append(lines, kind+" "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if ast.IsExported(n.Name) {
								lines = append(lines, kind+" "+n.Name)
							}
						}
					}
				}
			case *ast.FuncDecl:
				if !ast.IsExported(d.Name.Name) {
					continue
				}
				if d.Recv == nil {
					lines = append(lines, "func "+d.Name.Name)
					continue
				}
				recv := recvTypeName(d.Recv.List[0].Type)
				if ast.IsExported(recv) {
					lines = append(lines, fmt.Sprintf("method %s.%s", recv, d.Name.Name))
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	}
	return ""
}

// TestPublicAPIGolden pins the facade's export list. A diff here is an API
// change: if intentional, regenerate with
//
//	go test -run TestPublicAPIGolden -update .
//
// and review the golden diff in the same commit as the code change.
func TestPublicAPIGolden(t *testing.T) {
	got := strings.Join(facadeExports(t), "\n") + "\n"
	golden := filepath.Join("testdata", "api.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimSuffix(string(want), "\n"), "\n")
	gotSet := make(map[string]bool, len(gotLines))
	for _, l := range gotLines {
		gotSet[l] = true
	}
	wantSet := make(map[string]bool, len(wantLines))
	for _, l := range wantLines {
		wantSet[l] = true
	}
	for _, l := range wantLines {
		if !gotSet[l] {
			t.Errorf("export removed: %s", l)
		}
	}
	for _, l := range gotLines {
		if !wantSet[l] {
			t.Errorf("export added: %s", l)
		}
	}
	t.Error("public API changed; if intentional, run: go test -run TestPublicAPIGolden -update .")
}
