// Live runtime: the same Scenario declaration the simulator runs, executed
// as a real wall-clock cluster — three replica goroutines exchanging
// timestamped messages over an in-process transport. The cluster discovers
// (u, d) with a windowed online estimator, retunes Algorithm 1's waits
// adaptively, records the history with real instants, and the engine
// verifies it with the same Wing–Gong checker post hoc. The report shows
// per-class measured latency against the bound computed from the
// *estimated* envelope — the paper's d+ε / ε+X / d+ε-X table, measured.
//
// The second run deliberately retunes below the estimated envelope
// (Runtime.Undertune) and must land on a horn of the premature-tuning
// dichotomy: a linearizability violation, replica divergence, or
// bound-level latency anyway — never a run that is correct AND fast.
package main

import (
	"fmt"
	"log"
	"time"

	"timebounds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := timebounds.Params{
		N: 3,
		D: 4 * time.Millisecond, // chan transport: synthetic delays in [d-u, d]
		U: 3 * time.Millisecond,
	}

	// A safe live run: closed-loop racing read-modify-writes, tuning
	// derived from the online estimate.
	res, err := timebounds.RunScenario(timebounds.Scenario{
		Name:     "live-safe",
		Backend:  timebounds.Algorithm1(),
		DataType: timebounds.NewRMWRegister(0),
		Params:   params,
		Seed:     7,
		Workload: timebounds.Workload{OpsPerProcess: 6},
		Runtime:  timebounds.LiveRuntime(),
		Verify:   true,
	})
	if err != nil {
		return err
	}
	fmt.Println("safe live cluster:")
	fmt.Print(res.Live.Render())
	fmt.Printf("linearizable=%v converged=%v (post-hoc check of the wall-clock history)\n",
		res.Linearizable, res.Converged)

	// The premature-tuning dichotomy, live: scale every wait to 5% of the
	// estimated envelope and race RMWs from all processes.
	rt := timebounds.LiveRuntime()
	rt.Undertune = 0.05
	under, err := timebounds.RunScenario(timebounds.Scenario{
		Name:     "live-undertuned",
		Backend:  timebounds.Algorithm1(),
		DataType: timebounds.NewRMWRegister(0),
		Params:   params,
		Seed:     7,
		Workload: timebounds.RaceWorkload(params, 0, time.Millisecond, 10, timebounds.OpRMW),
		Runtime:  rt,
		Verify:   true,
	})
	if err != nil {
		return err
	}
	fmt.Println("\nunder-tuned live cluster (waits at 5% of the estimate):")
	fmt.Print(under.Live.Render())
	fmt.Printf("dichotomy horn: violation=%v diverged=%v boundLevelLatency=%v\n",
		under.Live.Violation, under.Live.Diverged,
		!under.Live.Violation && !under.Live.Diverged)
	if !under.Live.Dichotomy() {
		return fmt.Errorf("under-tuned run was correct and fast — dichotomy falsified")
	}
	fmt.Println("→ tuning below the discovered envelope cannot be both correct and fast")
	return nil
}
