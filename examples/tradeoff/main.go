// The X tradeoff (Chapter V.A.2): sweeping Algorithm 1's parameter
// X ∈ [0, d+ε-u] trades pure-mutator latency (ε+X) against pure-accessor
// latency (d+ε-X) while their sum stays pinned at d+2ε. The sweep is a
// scenario grid — one scenario per X, identical workload — executed in
// parallel by the engine; the report rows become the printed curve, the
// executable version of the paper's latency-regulation knob.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"timebounds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := timebounds.Params{N: 4, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	eps := params.OptimalSkew()
	maxX := params.D + eps - params.U

	// Every process writes early and reads late; worst-case delays surface
	// the exact class latencies.
	var schedule []timebounds.Invocation
	for p := 0; p < params.N; p++ {
		schedule = append(schedule,
			timebounds.Invocation{At: time.Duration(p) * 3 * time.Millisecond,
				Proc: timebounds.ProcessID(p), Kind: timebounds.OpWrite, Arg: p},
			timebounds.Invocation{At: 80*time.Millisecond + time.Duration(p)*20*time.Millisecond,
				Proc: timebounds.ProcessID(p), Kind: timebounds.OpRead},
		)
	}

	var scenarios []timebounds.Scenario
	for i := 0; i <= 4; i++ {
		scenarios = append(scenarios, timebounds.Scenario{
			DataType: timebounds.NewRegister(0),
			Params:   params,
			X:        maxX * time.Duration(i) / 4,
			Seed:     5,
			Delay:    timebounds.DelaySpec{Mode: timebounds.DelayWorst},
			Workload: timebounds.Workload{Explicit: schedule},
			Verify:   true,
		})
	}
	rep := timebounds.RunScenarios(scenarios)
	if err := rep.Err(); err != nil {
		return err
	}

	fmt.Printf("n=%d d=%s u=%s ε=%s — X ∈ [0, %s]\n\n", params.N, params.D, params.U, eps, maxX)
	fmt.Printf("%-10s %-22s %-22s %s\n", "X", "write (measured/bound)", "read (measured/bound)", "sum")
	for _, res := range rep.Results {
		w := res.PerKind[timebounds.OpWrite].Max
		r := res.PerKind[timebounds.OpRead].Max
		bar := strings.Repeat("#", int(w/time.Millisecond))
		fmt.Printf("%-10s %-22s %-22s %-8s mutator:%s\n",
			res.X,
			fmt.Sprintf("%s / %s", w, res.Params.Epsilon+res.X),
			fmt.Sprintf("%s / %s", r, res.Params.D+res.Params.Epsilon-res.X),
			w+r, bar)
	}
	fmt.Printf("\nsum is constant at d+2ε = %s for every X\n", params.D+2*eps)
	return nil
}
