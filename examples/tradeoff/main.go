// The X tradeoff (Chapter V.A.2): sweeping Algorithm 1's parameter
// X ∈ [0, d+ε-u] trades pure-mutator latency (ε+X) against pure-accessor
// latency (d+ε-X) while their sum stays pinned at d+2ε. The example
// measures both ends and the midpoint on a real workload and prints the
// curve — the executable version of the paper's latency-regulation knob.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"timebounds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := timebounds.Config{
		N:    4,
		D:    10 * time.Millisecond,
		U:    4 * time.Millisecond,
		Seed: 5,
	}
	eps := timebounds.OptimalSkew(base)
	maxX := base.D + eps - base.U

	fmt.Printf("n=%d d=%s u=%s ε=%s — X ∈ [0, %s]\n\n", base.N, base.D, base.U, eps, maxX)
	fmt.Printf("%-10s %-22s %-22s %s\n", "X", "write (measured/bound)", "read (measured/bound)", "sum")

	for i := 0; i <= 4; i++ {
		cfg := base
		cfg.X = maxX * time.Duration(i) / 4
		wMeas, rMeas, err := measure(cfg)
		if err != nil {
			return err
		}
		bar := strings.Repeat("#", int(wMeas/time.Millisecond))
		fmt.Printf("%-10s %-22s %-22s %-8s mutator:%s\n",
			cfg.X,
			fmt.Sprintf("%s / %s", wMeas, timebounds.UpperBoundMutator(cfg)),
			fmt.Sprintf("%s / %s", rMeas, timebounds.UpperBoundAccessor(cfg)),
			wMeas+rMeas, bar)
	}
	fmt.Printf("\nsum is constant at d+2ε = %s for every X\n", timebounds.UpperBoundPair(base))
	return nil
}

// measure runs writes on every process and a read per process, returning
// worst-case write and read latencies.
func measure(cfg timebounds.Config) (writeMax, readMax time.Duration, err error) {
	cluster, err := timebounds.NewCluster(cfg, timebounds.NewRegister(0))
	if err != nil {
		return 0, 0, err
	}
	for p := 0; p < cfg.N; p++ {
		cluster.Invoke(time.Duration(p)*3*time.Millisecond, timebounds.ProcessID(p), timebounds.OpWrite, p)
		cluster.Invoke(80*time.Millisecond+time.Duration(p)*20*time.Millisecond,
			timebounds.ProcessID(p), timebounds.OpRead, nil)
	}
	if err := cluster.Run(time.Second); err != nil {
		return 0, 0, err
	}
	if res := timebounds.CheckLinearizable(cluster.DataType(), cluster.History()); !res.Linearizable {
		return 0, 0, fmt.Errorf("X=%s: history not linearizable", cfg.X)
	}
	w, _ := cluster.History().MaxLatency(timebounds.OpWrite)
	r, _ := cluster.History().MaxLatency(timebounds.OpRead)
	return w, r, nil
}
