// A linearizable key-value store on the engine's sharded path.
// Linearizability is a local (composable) property — Herlihy & Wing 1990 —
// so a store partitioned into independently linearizable shards is itself
// linearizable. Earlier versions of this example hand-rolled per-key
// schedule bookkeeping and ran one scenario per key; the engine now owns
// all of that: a ShardedWorkload declares the keyed operations, and
// RunSharded partitions the key space, runs one isolated sub-cluster per
// shard across the worker pool, and composes the per-shard verdicts.
package main

import (
	"fmt"
	"log"
	"time"

	"timebounds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ms := time.Millisecond
	rep, err := timebounds.RunSharded(timebounds.ShardedScenario{
		Params: timebounds.Params{N: 4, D: 10 * ms, U: 4 * ms},
		Seed:   99,
		Workload: timebounds.ShardedWorkload{
			Name: "kv",
			Keys: []string{"alpha", "beta", "gamma"},
			// Four clients update and read three keys concurrently.
			Explicit: []timebounds.KeyOp{
				timebounds.PutKey(0, 0, "alpha", 1),
				timebounds.PutKey(0, 1, "beta", "hello"),
				timebounds.PutKey(2*ms, 2, "alpha", 2), // racing write to alpha
				timebounds.GetKey(5*ms, 3, "alpha"),    // may see 1, 2 or nil (concurrent)
				timebounds.PutKey(30*ms, 3, "gamma", 3.14),
				timebounds.GetKey(60*ms, 0, "alpha"), // settled: must see the race winner
				timebounds.GetKey(60*ms, 1, "beta"),
				timebounds.GetKey(60*ms, 2, "gamma"),
			},
			// Shards 0 = one sub-cluster per key; set e.g. Shards: 2 to
			// hash the three keys into two sub-clusters instead.
		},
		Verify: true,
	})
	if err != nil {
		return err
	}
	if err := rep.Err(); err != nil {
		return err
	}
	for _, res := range rep.Shards {
		fmt.Printf("%-12s linearizable=%-5v state=%s\n", res.Name, res.Linearizable, res.State)
		for _, op := range res.History.Ops() {
			fmt.Printf("    %s\n", op)
		}
	}
	fmt.Printf("\n%s\n", rep)
	fmt.Println("per-shard linearizability composes: the whole store is linearizable.")
	return nil
}
