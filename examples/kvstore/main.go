// A linearizable key-value store composed from per-key shared registers.
// Linearizability is a local (composable) property — Herlihy & Wing 1990 —
// so a store built from independently linearizable registers is itself
// linearizable. Each key becomes one Scenario (its own register cluster and
// delay draws); the engine runs all keys in parallel and verifies every
// per-key history.
package main

import (
	"fmt"
	"log"
	"time"

	"timebounds"
)

// store accumulates per-key explicit schedules, then runs one scenario per
// key through the engine.
type store struct {
	params    timebounds.Params
	seed      int64
	schedules map[string][]timebounds.Invocation
	order     []string
}

func newStore(params timebounds.Params, seed int64, keys ...string) *store {
	s := &store{params: params, seed: seed, schedules: make(map[string][]timebounds.Invocation, len(keys))}
	for _, k := range keys {
		s.schedules[k] = nil
		s.order = append(s.order, k)
	}
	return s
}

// put schedules a write of key=value from proc at the given time.
func (s *store) put(at time.Duration, proc timebounds.ProcessID, key string, value any) {
	s.schedules[key] = append(s.schedules[key], timebounds.Invocation{
		At: at, Proc: proc, Kind: timebounds.OpWrite, Arg: value,
	})
}

// get schedules a read of key from proc at the given time.
func (s *store) get(at time.Duration, proc timebounds.ProcessID, key string) {
	s.schedules[key] = append(s.schedules[key], timebounds.Invocation{
		At: at, Proc: proc, Kind: timebounds.OpRead,
	})
}

// run executes every key's scenario in parallel and returns the report,
// results in key declaration order.
func (s *store) run() timebounds.Report {
	var scenarios []timebounds.Scenario
	for i, key := range s.order {
		scenarios = append(scenarios, timebounds.Scenario{
			Name:     "key/" + key,
			DataType: timebounds.NewRegister(nil),
			Params:   s.params,
			Seed:     s.seed + int64(i), // independent delay draws per key
			Workload: timebounds.Workload{Explicit: s.schedules[key]},
			Verify:   true,
		})
	}
	return timebounds.RunScenarios(scenarios)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := timebounds.Params{N: 4, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	kv := newStore(params, 99, "alpha", "beta", "gamma")

	// Four clients update and read three keys concurrently.
	kv.put(0, 0, "alpha", 1)
	kv.put(0, 1, "beta", "hello")
	kv.put(2*time.Millisecond, 2, "alpha", 2) // racing write to alpha
	kv.get(5*time.Millisecond, 3, "alpha")    // may see 1, 2 or nil (concurrent)
	kv.put(30*time.Millisecond, 3, "gamma", 3.14)
	kv.get(60*time.Millisecond, 0, "alpha") // settled: must see the race winner
	kv.get(60*time.Millisecond, 1, "beta")
	kv.get(60*time.Millisecond, 2, "gamma")

	rep := kv.run()
	if err := rep.Err(); err != nil {
		return err
	}
	for _, res := range rep.Results {
		fmt.Printf("%-10s linearizable=%-5v state=%s\n", res.Name, res.Linearizable, res.State)
		for _, op := range res.History.Ops() {
			fmt.Printf("    %s\n", op)
		}
	}
	fmt.Println("\nper-key linearizability composes: the whole store is linearizable.")
	return nil
}
