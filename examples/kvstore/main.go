// A linearizable key-value store composed from per-key shared registers.
// Linearizability is a local (composable) property — Herlihy & Wing 1990 —
// so a store built from independently linearizable registers is itself
// linearizable. Each key gets its own Algorithm 1 cluster; the example runs
// a mixed workload against three keys and verifies every per-key history.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"timebounds"
)

// store maps keys to per-key register clusters.
type store struct {
	cfg      timebounds.Config
	clusters map[string]*timebounds.Cluster
}

func newStore(cfg timebounds.Config, keys ...string) (*store, error) {
	s := &store{cfg: cfg, clusters: make(map[string]*timebounds.Cluster, len(keys))}
	for i, k := range keys {
		perKey := cfg
		perKey.Seed = cfg.Seed + int64(i) // independent delay draws per key
		c, err := timebounds.NewCluster(perKey, timebounds.NewRegister(nil))
		if err != nil {
			return nil, err
		}
		s.clusters[k] = c
	}
	return s, nil
}

// put schedules a write of key=value from proc at the given time.
func (s *store) put(at time.Duration, proc timebounds.ProcessID, key string, value any) {
	s.clusters[key].Invoke(at, proc, timebounds.OpWrite, value)
}

// get schedules a read of key from proc at the given time.
func (s *store) get(at time.Duration, proc timebounds.ProcessID, key string) {
	s.clusters[key].Invoke(at, proc, timebounds.OpRead, nil)
}

func (s *store) run(horizon time.Duration) error {
	for key, c := range s.clusters {
		if err := c.Run(horizon); err != nil {
			return fmt.Errorf("key %q: %w", key, err)
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := timebounds.Config{
		N:    4,
		D:    10 * time.Millisecond,
		U:    4 * time.Millisecond,
		Seed: 99,
	}
	kv, err := newStore(cfg, "alpha", "beta", "gamma")
	if err != nil {
		return err
	}

	// Four clients update and read three keys concurrently.
	kv.put(0, 0, "alpha", 1)
	kv.put(0, 1, "beta", "hello")
	kv.put(2*time.Millisecond, 2, "alpha", 2) // racing write to alpha
	kv.get(5*time.Millisecond, 3, "alpha")    // may see 1, 2 or nil (concurrent)
	kv.put(30*time.Millisecond, 3, "gamma", 3.14)
	kv.get(60*time.Millisecond, 0, "alpha") // settled: must see the race winner
	kv.get(60*time.Millisecond, 1, "beta")
	kv.get(60*time.Millisecond, 2, "gamma")

	if err := kv.run(time.Second); err != nil {
		return err
	}

	keys := make([]string, 0, len(kv.clusters))
	for k := range kv.clusters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		c := kv.clusters[key]
		res := timebounds.CheckLinearizable(c.DataType(), c.History())
		state, err := c.ConvergedState()
		if err != nil {
			return err
		}
		fmt.Printf("key %-6s linearizable=%-5v state=%s\n", key, res.Linearizable, state)
		for _, op := range c.History().Ops() {
			fmt.Printf("    %s\n", op)
		}
	}
	fmt.Println("\nper-key linearizability composes: the whole store is linearizable.")
	return nil
}
