// A shared bank account — the e-commerce scenario the paper's introduction
// motivates — declared as a Scenario on the public API. Deposits are pure
// mutators (acknowledged in ε+X ≈ 3ms), balance checks are pure accessors
// (d+ε-X), and withdrawals must take the totally ordered path (≤ d+ε):
// withdraw is strongly immediately non-self-commuting, so by Theorem C.1
// *no* correct implementation can answer it faster than d+min{ε,u,d/3}.
// The example races two ATMs withdrawing the full balance and shows exactly
// one succeeding.
package main

import (
	"fmt"
	"log"
	"time"

	"timebounds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	race := 30 * time.Millisecond
	res, err := timebounds.RunScenario(timebounds.Scenario{
		Name:     "bank",
		Backend:  timebounds.Algorithm1(),
		DataType: timebounds.NewAccount(),
		Params:   timebounds.Params{N: 4, D: 10 * time.Millisecond, U: 4 * time.Millisecond},
		Seed:     3,
		Workload: timebounds.Workload{Explicit: []timebounds.Invocation{
			// Payroll deposits 100.
			{At: 0, Proc: 0, Kind: timebounds.OpDeposit, Arg: 100},
			// Once the deposit has settled everywhere, two ATMs race to
			// withdraw the full balance at the same instant.
			{At: race, Proc: 1, Kind: timebounds.OpWithdraw, Arg: 100},
			{At: race, Proc: 2, Kind: timebounds.OpWithdraw, Arg: 100},
			// An auditor checks the balance afterwards.
			{At: 80 * time.Millisecond, Proc: 3, Kind: timebounds.OpBalance},
		}},
		Verify: true,
	})
	if err != nil {
		return err
	}

	fmt.Println("history:")
	fmt.Println(res.History)

	successes := 0
	var balance any
	for _, op := range res.History.Ops() {
		switch op.Kind {
		case timebounds.OpWithdraw:
			if ok, _ := op.Ret.(bool); ok {
				successes++
			}
		case timebounds.OpBalance:
			balance = op.Ret
		}
	}
	fmt.Printf("\nsuccessful withdrawals: %d (exactly one must win)\n", successes)
	fmt.Printf("final balance: %v\n", balance)
	fmt.Printf("linearizable: %v\n", res.Linearizable)

	p := res.Params
	fmt.Println("\nmeasured vs. bounds, per class:")
	for _, b := range res.Bounds {
		fmt.Printf("  %-4s measured=%-8s bound=%s\n", b.Class, b.Measured, b.Bound)
	}
	m := p.Epsilon
	if p.U < m {
		m = p.U
	}
	if p.D/3 < m {
		m = p.D / 3
	}
	fmt.Printf("withdraw lower bound (Thm C.1): d+min{ε,u,d/3} = %s\n", p.D+m)
	if successes != 1 {
		return fmt.Errorf("double spend! %d withdrawals succeeded", successes)
	}
	return nil
}
