// A shared bank account — the e-commerce scenario the paper's introduction
// motivates. Deposits are pure mutators (acknowledged in ε+X ≈ 3ms),
// balance checks are pure accessors (d+ε-X), and withdrawals must take the
// totally ordered path (≤ d+ε): withdraw is strongly immediately
// non-self-commuting, so by Theorem C.1 *no* correct implementation can
// answer it faster than d+min{ε,u,d/3}. The example races two ATMs
// withdrawing the full balance and shows exactly one succeeding.
package main

import (
	"fmt"
	"log"
	"time"

	"timebounds/internal/check"
	"timebounds/internal/core"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p := model.Params{N: 4, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	p.Epsilon = p.OptimalSkew()

	cluster, err := core.NewCluster(core.Config{Params: p}, types.NewAccount(), sim.Config{
		ClockOffsets: core.MaxSkewOffsets(p),
		Delay:        sim.NewRandomDelay(3, p.MinDelay(), p.D),
		StrictDelays: true,
	})
	if err != nil {
		return err
	}

	// Payroll deposits 100.
	cluster.Invoke(0, 0, types.OpDeposit, 100)
	// Once the deposit has settled everywhere, two ATMs race to withdraw
	// the full balance at the same instant from different processes.
	race := 30 * time.Millisecond
	cluster.Invoke(race, 1, types.OpWithdraw, 100)
	cluster.Invoke(race, 2, types.OpWithdraw, 100)
	// An auditor checks the balance afterwards.
	cluster.Invoke(80*time.Millisecond, 3, types.OpBalance, nil)

	if err := cluster.Run(time.Second); err != nil {
		return err
	}

	fmt.Println("history:")
	fmt.Println(cluster.History())

	successes := 0
	var balance any
	for _, op := range cluster.History().Ops() {
		switch op.Kind {
		case types.OpWithdraw:
			if ok, _ := op.Ret.(bool); ok {
				successes++
			}
		case types.OpBalance:
			balance = op.Ret
		}
	}
	fmt.Printf("\nsuccessful withdrawals: %d (exactly one must win)\n", successes)
	fmt.Printf("final balance: %v\n", balance)

	res := check.Check(cluster.DataType(), cluster.History())
	fmt.Printf("linearizable: %v\n", res.Linearizable)
	fmt.Printf("\nbounds: deposit ≤ ε+X = %s, withdraw ≤ d+ε = %s (LB d+m = %s), balance ≤ d+ε-X = %s\n",
		p.Epsilon, p.D+p.Epsilon, p.D+model.MinOf3(p.Epsilon, p.U, p.D/3), p.D+p.Epsilon)
	if successes != 1 {
		return fmt.Errorf("double spend! %d withdrawals succeeded", successes)
	}
	return nil
}
