// Producer/consumer over a linearizable shared queue: two producers
// enqueue jobs (pure mutators, acknowledged in ε+X), a consumer dequeues
// (totally ordered OOP, ≤ d+ε), and a monitor peeks (pure accessor,
// d+ε-X). The whole exchange is one Scenario with an explicit schedule;
// the engine's report carries the per-class latency margins and the
// linearizability verdict, and the example verifies FIFO order end-to-end.
package main

import (
	"fmt"
	"log"
	"time"

	"timebounds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const jobs = 4
	var schedule []timebounds.Invocation
	// Producers p0 and p1 interleave jobs; spacing exceeds the mutator
	// latency so each producer's jobs are enqueued back-to-back.
	for i := 0; i < jobs; i++ {
		at := time.Duration(i) * 8 * time.Millisecond
		schedule = append(schedule,
			timebounds.Invocation{At: at, Proc: 0, Kind: timebounds.OpEnqueue, Arg: fmt.Sprintf("p0-job%d", i)},
			timebounds.Invocation{At: at + 4*time.Millisecond, Proc: 1, Kind: timebounds.OpEnqueue, Arg: fmt.Sprintf("p1-job%d", i)},
		)
	}
	// The monitor peeks mid-stream.
	schedule = append(schedule, timebounds.Invocation{At: 20 * time.Millisecond, Proc: 3, Kind: timebounds.OpPeek})
	// The consumer drains everything after the producers are done.
	drainStart := 100 * time.Millisecond
	for i := 0; i < 2*jobs; i++ {
		schedule = append(schedule, timebounds.Invocation{
			At: drainStart + time.Duration(i)*15*time.Millisecond, Proc: 2, Kind: timebounds.OpDequeue,
		})
	}

	res, err := timebounds.RunScenario(timebounds.Scenario{
		Name:     "producer-consumer",
		Backend:  timebounds.Algorithm1(),
		DataType: timebounds.NewQueue(),
		Params:   timebounds.Params{N: 4, D: 10 * time.Millisecond, U: 4 * time.Millisecond},
		Seed:     7,
		Workload: timebounds.Workload{Explicit: schedule},
		Verify:   true,
	})
	if err != nil {
		return err
	}

	fmt.Println("dequeue order:")
	for _, op := range res.History.Ops() {
		if op.Kind == timebounds.OpDequeue {
			fmt.Printf("  %v\n", op.Ret)
		}
	}
	enq := res.PerKind[timebounds.OpEnqueue]
	deq := res.PerKind[timebounds.OpDequeue]
	fmt.Printf("\nworst enqueue latency: %s (bound ε+X = %s)\n",
		enq.Max, res.Params.Epsilon+res.X)
	fmt.Printf("worst dequeue latency: %s (bound d+ε = %s)\n",
		deq.Max, res.Params.D+res.Params.Epsilon)
	fmt.Printf("linearizable: %v\n", res.Linearizable)
	return nil
}
