// Producer/consumer over a linearizable shared queue: two producers
// enqueue jobs (pure mutators, acknowledged in ε+X), a consumer dequeues
// (totally ordered OOP, ≤ d+ε), and a monitor peeks (pure accessor,
// d+ε-X). The example prints per-kind latency statistics and verifies FIFO
// order end-to-end.
package main

import (
	"fmt"
	"log"
	"time"

	"timebounds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := timebounds.Config{
		N:    4,
		D:    10 * time.Millisecond,
		U:    4 * time.Millisecond,
		Seed: 7,
	}
	cluster, err := timebounds.NewCluster(cfg, timebounds.NewQueue())
	if err != nil {
		return err
	}

	// Producers p0 and p1 interleave jobs; spacing exceeds the mutator
	// latency so each producer's jobs are enqueued back-to-back.
	const jobs = 4
	for i := 0; i < jobs; i++ {
		at := time.Duration(i) * 8 * time.Millisecond
		cluster.Invoke(at, 0, timebounds.OpEnqueue, fmt.Sprintf("p0-job%d", i))
		cluster.Invoke(at+4*time.Millisecond, 1, timebounds.OpEnqueue, fmt.Sprintf("p1-job%d", i))
	}
	// The monitor peeks mid-stream.
	cluster.Invoke(20*time.Millisecond, 3, timebounds.OpPeek, nil)
	// The consumer drains everything after the producers are done.
	drainStart := 100 * time.Millisecond
	for i := 0; i < 2*jobs; i++ {
		cluster.Invoke(drainStart+time.Duration(i)*15*time.Millisecond, 2, timebounds.OpDequeue, nil)
	}

	if err := cluster.Run(time.Second); err != nil {
		return err
	}

	fmt.Println("dequeue order:")
	var worstEnq, worstDeq time.Duration
	for _, op := range cluster.History().Ops() {
		switch op.Kind {
		case timebounds.OpDequeue:
			fmt.Printf("  %v\n", op.Ret)
			if l := op.Latency(); l > worstDeq {
				worstDeq = l
			}
		case timebounds.OpEnqueue:
			if l := op.Latency(); l > worstEnq {
				worstEnq = l
			}
		}
	}
	fmt.Printf("\nworst enqueue latency: %s (bound ε+X = %s)\n",
		worstEnq, timebounds.UpperBoundMutator(cfg))
	fmt.Printf("worst dequeue latency: %s (bound d+ε = %s)\n",
		worstDeq, timebounds.UpperBoundOOP(cfg))

	res := timebounds.CheckLinearizable(cluster.DataType(), cluster.History())
	fmt.Printf("linearizable: %v\n", res.Linearizable)
	return nil
}
