// Quickstart: a linearizable shared register over three simulated
// processes, declared as a Scenario — backend × workload × model
// parameters — and executed by the engine. Algorithm 1's class-specific
// latencies show up in the report: the write acknowledges in ε+X while the
// reads take d+ε-X, and the history checks out linearizable.
package main

import (
	"fmt"
	"log"
	"time"

	"timebounds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	res, err := timebounds.RunScenario(timebounds.Scenario{
		Name:     "quickstart",
		Backend:  timebounds.Algorithm1(),
		DataType: timebounds.NewRegister(0),
		Params: timebounds.Params{
			N: 3,
			D: 10 * time.Millisecond, // message delay upper bound d
			U: 4 * time.Millisecond,  // delay uncertainty u: delays in [6ms, 10ms]
			// Epsilon defaults to the optimal (1-1/n)u; X defaults to 0.
		},
		Seed: 42,
		// Process 0 writes 7; once the write is visible everywhere,
		// process 1 reads; process 2 reads concurrently with the write.
		Workload: timebounds.Workload{Explicit: []timebounds.Invocation{
			{At: 0, Proc: 0, Kind: timebounds.OpWrite, Arg: 7},
			{At: 1 * time.Millisecond, Proc: 2, Kind: timebounds.OpRead},
			{At: 30 * time.Millisecond, Proc: 1, Kind: timebounds.OpRead},
		}},
		Verify: true, // run the linearizability checker on the history
	})
	if err != nil {
		return err
	}

	fmt.Println("history:")
	fmt.Println(res.History)

	fmt.Println("\nmeasured vs. theoretical, per operation class:")
	for _, b := range res.Bounds {
		fmt.Printf("  %-4s measured=%-8s bound=%-8s margin=%s\n",
			b.Class, b.Measured, b.Bound, b.Margin())
	}
	fmt.Printf("(folklore baseline would be 2d = %s for everything)\n",
		2*res.Params.D)

	fmt.Printf("\nlinearizable: %v\n", res.Linearizable)
	fmt.Printf("replicas converged to: %s\n", res.State)
	return nil
}
