// Quickstart: a linearizable shared register over three simulated
// processes, showing Algorithm 1's class-specific latencies — the write
// acknowledges in ε+X while the read takes d+ε-X — and checking the run's
// linearizability.
package main

import (
	"fmt"
	"log"
	"time"

	"timebounds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := timebounds.Config{
		N:    3,
		D:    10 * time.Millisecond, // message delay upper bound d
		U:    4 * time.Millisecond,  // delay uncertainty u: delays in [6ms, 10ms]
		Seed: 42,
		// Epsilon defaults to the optimal (1-1/n)u; X defaults to 0.
	}
	cluster, err := timebounds.NewCluster(cfg, timebounds.NewRegister(0))
	if err != nil {
		return err
	}

	// Process 0 writes 7; once the write is visible everywhere, process 1
	// reads; process 2 reads concurrently with the write.
	cluster.Invoke(0, 0, timebounds.OpWrite, 7)
	cluster.Invoke(1*time.Millisecond, 2, timebounds.OpRead, nil)
	cluster.Invoke(30*time.Millisecond, 1, timebounds.OpRead, nil)

	if err := cluster.Run(time.Second); err != nil {
		return err
	}

	fmt.Println("history:")
	fmt.Println(cluster.History())

	fmt.Printf("\nbounds: mutator ε+X = %s, accessor d+ε-X = %s (folklore: 2d = %s)\n",
		timebounds.UpperBoundMutator(cfg),
		timebounds.UpperBoundAccessor(cfg),
		2*cfg.D)

	res := timebounds.CheckLinearizable(cluster.DataType(), cluster.History())
	fmt.Printf("linearizable: %v (witness %v)\n", res.Linearizable, res.Witness)

	state, err := cluster.ConvergedState()
	if err != nil {
		return err
	}
	fmt.Printf("replicas converged to: %s\n", state)
	return nil
}
