// Saturation study: where does measured latency detach from the paper's
// d/u/ε service bounds as open-loop offered load grows?
//
// The Chapter V bounds are per-operation worst cases: Algorithm 1 answers
// pure mutators in ε+X, pure accessors in d+ε-X, everything else in d+ε,
// and the centralized folklore baseline needs up to 2d for everything.
// Under open-loop traffic those are service times; once a process's
// offered interarrival gap drops below its service time, arrivals queue
// behind the one-pending-operation rule and sojourn time (arrival →
// response) grows without bound while service latency stays flat.
//
// A timebounds.Study sweeps offered load across a geometric ramp, folds
// every point online (constant memory — no retained histories), and
// bisects for the saturation knee: the lowest offered load at which some
// class's p99 sojourn reaches 2× its service bound. Because Algorithm 1
// serves mutators in ε+X ≪ 2d, it sustains a strictly higher offered load
// than the centralized baseline on the same register workload — the
// paper's per-operation win compounds into a capacity win under load.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"timebounds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	params := timebounds.Params{
		N: 3,
		D: 10 * time.Millisecond, // delay upper bound d
		U: 4 * time.Millisecond,  // delay uncertainty u
	} // ε defaults to the optimal (1-1/n)·u = 2.67ms

	knees := make(map[string]*timebounds.Knee)
	for _, backend := range []timebounds.Backend{timebounds.Algorithm1(), timebounds.Centralized()} {
		rep, err := timebounds.RunStudy(context.Background(), timebounds.Study{
			Base: timebounds.Scenario{
				Backend:  backend,
				DataType: timebounds.NewRMWRegister(0),
				Params:   params,
				Seed:     1,
				// Worst-case delays pin every service time at its ceiling,
				// so the knee is the backend's, not the delay draw's.
				Delay: timebounds.DelaySpec{Mode: timebounds.DelayWorst},
			},
			// Offered load (aggregate ops/s) swept geometrically from far
			// below to far above the nominal service rate n/(2d) = 150.
			Ramp:        timebounds.LoadRamp{From: 30, To: 1200, Points: 6},
			OpsPerPoint: 16,
		})
		if err != nil {
			return err
		}
		fmt.Println(rep)
		knees[backend.Name()] = rep.Knee
	}

	a1, central := knees["algorithm1"], knees["centralized"]
	if a1 == nil || central == nil {
		return fmt.Errorf("expected both backends to saturate within the ramp")
	}
	fmt.Printf("algorithm1 saturates at ≈%.0f ops/s; centralized at ≈%.0f ops/s (%.2fx capacity)\n",
		a1.Load, central.Load, a1.Load/central.Load)
	if a1.Load <= central.Load {
		return fmt.Errorf("algorithm1 should sustain more load than the centralized baseline")
	}
	fmt.Println("the per-operation latency win compounds into a capacity win under open-loop load")
	return nil
}
