// Clock synchronization feeding Algorithm 1: Chapter V assumes clocks
// synchronized to within the optimal ε = (1-1/n)u of Lundelius–Lynch. This
// example runs that synchronization round message by message inside the
// simulator — starting from wildly skewed clocks — and then runs an
// Algorithm 1 Scenario on the post-synchronization offsets, showing the
// achieved skew and the resulting operation latencies.
package main

import (
	"fmt"
	"log"
	"time"

	"timebounds"
	"timebounds/internal/clock"
	"timebounds/internal/model"
	"timebounds/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p := timebounds.Params{N: 4, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	p.Epsilon = p.OptimalSkew()

	// Wildly skewed initial clocks (hundreds of ms apart).
	initial := clock.Assignment{
		0,
		480 * time.Millisecond,
		-120 * time.Millisecond,
		960 * time.Millisecond,
	}
	fmt.Printf("initial clock offsets: %v (skew %s)\n", initial, initial.MaxSkew())

	// One Lundelius–Lynch round over real messages, against the
	// worst-case delay adversary.
	adv := clock.WorstCaseDelay(p)
	synced, err := clock.RunSyncRound(p, initial, sim.FuncDelay(
		func(from, to model.ProcessID, _ model.Time, _ int) model.Time {
			return adv(from, to)
		}))
	if err != nil {
		return err
	}
	fmt.Printf("after one sync round:  skew %s (optimal (1-1/n)u = %s)\n\n",
		synced.MaxSkew(), p.OptimalSkew())

	// Algorithm 1 can now run with ε = (1-1/n)u. Normalize offsets around
	// their mean so they satisfy the simulator's skew validation.
	var mean model.Time
	for _, c := range synced {
		mean += c / model.Time(len(synced))
	}
	offsets := make([]model.Time, len(synced))
	for i, c := range synced {
		offsets[i] = c - mean
	}
	if err := clock.Assignment(offsets).Validate(p.Epsilon); err != nil {
		return err
	}

	// The synchronized offsets drop straight into a Scenario.
	res, err := timebounds.RunScenario(timebounds.Scenario{
		Name:         "post-sync",
		Backend:      timebounds.Algorithm1(),
		DataType:     timebounds.NewQueue(),
		Params:       p,
		Delay:        timebounds.DelaySpec{Mode: timebounds.DelayWorst},
		ClockOffsets: offsets,
		Workload: timebounds.Workload{Explicit: []timebounds.Invocation{
			{At: 0, Proc: 0, Kind: timebounds.OpEnqueue, Arg: "job-1"},
			{At: 1 * time.Millisecond, Proc: 1, Kind: timebounds.OpEnqueue, Arg: "job-2"},
			{At: 40 * time.Millisecond, Proc: 2, Kind: timebounds.OpDequeue},
			{At: 60 * time.Millisecond, Proc: 3, Kind: timebounds.OpPeek},
		}},
		Verify: true,
	})
	if err != nil {
		return err
	}

	fmt.Println("Algorithm 1 over the synchronized clocks:")
	fmt.Println(res.History)
	fmt.Printf("\nlinearizable: %v\n", res.Linearizable)
	fmt.Printf("bounds: enqueue ≤ ε = %s, dequeue ≤ d+ε = %s\n",
		p.Epsilon, p.D+p.Epsilon)
	return nil
}
