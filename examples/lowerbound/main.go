// Executable lower bounds: this example replays the adversarial run
// constructions from the paper's Theorems C.1, D.1 and E.1 against (a) a
// deliberately premature implementation (a wait timer shortened below the
// proved bound) and (b) the correct Algorithm 1, printing the histories and
// the linearizability checker's verdicts — the proofs, as programs.
package main

import (
	"fmt"
	"log"

	"timebounds/internal/adversary"
	"timebounds/internal/bounds"
	"timebounds/internal/experiments"
	"timebounds/internal/model"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func verdict(linearizable bool) string {
	if linearizable {
		return "LINEARIZABLE"
	}
	return "VIOLATION"
}

func run() error {
	p := experiments.DefaultParams(3)
	m := bounds.M(p)
	fmt.Printf("n=%d d=%s u=%s ε=%s → m = min{ε,u,d/3} = %s\n\n", p.N, p.D, p.U, p.Epsilon, m)

	// --- Theorem C.1: dequeue needs d+m ---------------------------------
	bound := p.D + m
	fmt.Printf("Theorem C.1 — dequeue on a queue: lower bound d+m = %s\n", bound)
	for _, latency := range []model.Time{bound - 1, p.D + p.Epsilon} {
		outs, err := adversary.TheoremC1(adversary.C1Config{Params: p, OOPLatency: latency, UseQueue: true})
		if err != nil {
			return err
		}
		worst := "LINEARIZABLE"
		for _, o := range outs {
			if !o.Linearizable() {
				worst = "VIOLATION"
			}
		}
		fmt.Printf("  dequeue latency %-12s → %s across runs R1/R2/R3\n", latency, worst)
		if worst == "VIOLATION" {
			for i, o := range outs {
				if !o.Linearizable() {
					fmt.Printf("    violating run R%d (both dequeues take the one element):\n", i+1)
					fmt.Println(indent(o.History.String()))
					break
				}
			}
		}
	}

	// --- Theorem D.1: write needs (1-1/n)u ------------------------------
	wBound := bounds.PermuteLower(p.N, p.U)
	fmt.Printf("\nTheorem D.1 — write on a register: lower bound (1-1/n)u = %s\n", wBound)
	for _, latency := range []model.Time{wBound - 1, wBound} {
		outs, err := adversary.TheoremD1(adversary.D1Config{Params: p, MutatorLatency: latency})
		if err != nil {
			return err
		}
		fmt.Printf("  write latency %-12s → R1 %s, R2 (shifted) %s\n",
			latency, verdict(outs[0].Linearizable()), verdict(outs[1].Linearizable()))
	}

	// --- Theorem E.1: enqueue + peek need d+m ---------------------------
	fmt.Printf("\nTheorem E.1 — enqueue+peek on a queue: pair lower bound d+m = %s\n", p.D+m)
	for _, cfg := range []adversary.E1Config{
		{Params: p, X: p.Epsilon + m/2, MutatorLatency: 0},       // pair below the bound
		{Params: p, X: 0, MutatorLatency: p.Epsilon},             // Algorithm 1 at X=0
		{Params: p, X: p.Epsilon, MutatorLatency: 2 * p.Epsilon}, // Algorithm 1 at X=ε
	} {
		out, err := adversary.TheoremE1(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  pair latency %-12s (X=%s) → %s\n", cfg.PairLatency(), cfg.X, verdict(out.Linearizable()))
	}

	// --- Empirical thresholds -------------------------------------------
	fmt.Println("\nEmpirical thresholds (binary search over the run families):")
	th, err := adversary.FindThreshold(adversary.C1Violates(p, true), p.D/2, p.D+2*p.Epsilon)
	if err != nil {
		return err
	}
	fmt.Printf("  dequeue: smallest passing latency %-12s (proved bound %s)\n", th, bound)
	th, err = adversary.FindThreshold(adversary.D1Violates(p), 0, p.U)
	if err != nil {
		return err
	}
	fmt.Printf("  write:   smallest passing latency %-12s (proved bound %s)\n", th, wBound)
	return nil
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "      " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
