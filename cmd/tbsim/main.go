// Command tbsim runs one simulated workload on an Algorithm 1 cluster and
// prints the history, per-kind latency statistics, the replicas' converged
// state, and — for small workloads — the linearizability verdict.
//
// Usage:
//
//	tbsim [-type queue] [-n 4] [-d 10ms] [-u 4ms] [-x 0] [-ops 5] [-seed 1] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"timebounds/internal/core"
	"timebounds/internal/experiments"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tbsim:", err)
		os.Exit(1)
	}
}

func dataType(name string) (spec.DataType, error) {
	switch name {
	case "register":
		return types.NewRMWRegister(0), nil
	case "queue":
		return types.NewQueue(), nil
	case "stack":
		return types.NewStack(), nil
	case "tree":
		return types.NewTree(), nil
	case "set":
		return types.NewSet(), nil
	case "counter":
		return types.NewCounter(), nil
	case "dict":
		return types.NewDict(), nil
	case "pqueue":
		return types.NewPQueue(), nil
	case "account":
		return types.NewAccount(), nil
	default:
		return nil, fmt.Errorf("unknown type %q (want register|queue|stack|tree|set|counter|dict|pqueue|account)", name)
	}
}

func run() error {
	var (
		typ    = flag.String("type", "queue", "object type: register|queue|stack|tree|set|counter")
		n      = flag.Int("n", 4, "number of processes")
		d      = flag.Duration("d", 10*time.Millisecond, "message delay upper bound d")
		u      = flag.Duration("u", 4*time.Millisecond, "message delay uncertainty u")
		eps    = flag.Duration("eps", 0, "clock skew bound ε (0 = optimal)")
		x      = flag.Duration("x", 0, "accessor/mutator tradeoff X")
		ops    = flag.Int("ops", 5, "operations per process")
		seed   = flag.Int64("seed", 1, "workload/delay seed")
		verify = flag.Bool("verify", false, "run the linearizability checker (small workloads only)")
	)
	flag.Parse()

	p := model.Params{N: *n, D: *d, U: *u, Epsilon: *eps}
	if p.Epsilon == 0 {
		p.Epsilon = p.OptimalSkew()
	}
	if err := p.Validate(); err != nil {
		return err
	}
	dt, err := dataType(*typ)
	if err != nil {
		return err
	}
	cluster, err := core.NewCluster(core.Config{Params: p, X: *x}, dt, workload.NewSimConfig(p, *seed))
	if err != nil {
		return err
	}
	sched, err := workload.Generate(p, experiments.TableMix(dt), workload.Options{
		Seed:          *seed,
		OpsPerProcess: *ops,
		Spacing:       2 * p.D,
		Start:         p.D,
	})
	if err != nil {
		return err
	}
	rep, err := workload.Run(cluster, sched, workload.RunOptions{Verify: *verify})
	if err != nil {
		return err
	}

	fmt.Printf("object=%s n=%d d=%s u=%s ε=%s X=%s ops=%d\n\n",
		dt.Name(), p.N, p.D, p.U, p.Epsilon, *x, rep.History.Len())
	fmt.Println("history:")
	fmt.Println(rep.History)
	fmt.Println("\nlatency (per kind):")
	kinds := make([]string, 0, len(rep.PerKind))
	for k := range rep.PerKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		s := rep.PerKind[spec.OpKind(k)]
		fmt.Printf("  %-14s count=%-4d min=%-10s mean=%-10s p99=%-10s max=%s\n",
			k, s.Count, s.Min, s.Mean, s.P99, s.Max)
	}
	if state, err := cluster.ConvergedState(); err == nil {
		fmt.Printf("\nconverged state: %s\n", state)
	} else {
		fmt.Printf("\nreplica states: %v\n", err)
	}
	if rep.Checked {
		fmt.Printf("linearizable: %v\n", rep.Linearizable)
	}
	return nil
}
