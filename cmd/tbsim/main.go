// Command tbsim runs one simulated workload scenario — any backend, any
// bundled object — and prints the history, per-kind latency statistics,
// the per-class measured-vs-bound margins, the converged state, and — for
// small workloads — the linearizability verdict.
//
// Usage:
//
//	tbsim [-type queue] [-backend algorithm1] [-delay random] [-n 4]
//	      [-d 10ms] [-u 4ms] [-x 0] [-ops 5] [-seed 1] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"timebounds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tbsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		typ     = flag.String("type", "queue", "object type: register|queue|stack|tree|set|counter|dict|pqueue|account")
		backend = flag.String("backend", "algorithm1", "backend: algorithm1|all-oop|centralized|tob")
		delay   = flag.String("delay", "random", "delay adversary: random|worst|best|extremal")
		n       = flag.Int("n", 4, "number of processes")
		d       = flag.Duration("d", 10*time.Millisecond, "message delay upper bound d")
		u       = flag.Duration("u", 4*time.Millisecond, "message delay uncertainty u")
		eps     = flag.Duration("eps", 0, "clock skew bound ε (0 = optimal)")
		x       = flag.Duration("x", 0, "accessor/mutator tradeoff X")
		ops     = flag.Int("ops", 5, "operations per process")
		seed    = flag.Int64("seed", 1, "workload/delay seed")
		verify  = flag.Bool("verify", false, "run the linearizability checker (small workloads only)")
	)
	flag.Parse()

	dt, err := timebounds.DataTypeByName(*typ)
	if err != nil {
		return err
	}
	be, err := timebounds.BackendByName(*backend)
	if err != nil {
		return err
	}
	dm, err := timebounds.DelayModeByName(*delay)
	if err != nil {
		return err
	}
	res := timebounds.RunScenarios([]timebounds.Scenario{{
		Backend:  be,
		DataType: dt,
		Params:   timebounds.Params{N: *n, D: *d, U: *u, Epsilon: *eps},
		X:        *x,
		Seed:     *seed,
		Delay:    timebounds.DelaySpec{Mode: dm},
		Workload: timebounds.Workload{OpsPerProcess: *ops},
		Verify:   *verify,
	}}).Results[0]
	if res.Err != "" {
		return fmt.Errorf("%s", res.Err)
	}

	fmt.Printf("scenario=%s object=%s backend=%s n=%d d=%s u=%s ε=%s X=%s ops=%d\n\n",
		res.Name, res.Object, res.Backend, res.Params.N, res.Params.D, res.Params.U,
		res.Params.Epsilon, res.X, res.Ops)
	fmt.Println("history:")
	fmt.Println(res.History)
	fmt.Println("\nlatency (per kind):")
	fmt.Print(timebounds.RenderKinds(res))
	fmt.Println("\nbounds (per class):")
	for _, b := range res.Bounds {
		verdict := "ok"
		if !b.OK {
			verdict = "EXCEEDED"
		}
		fmt.Printf("  %-4s  measured=%-10s bound=%-10s margin=%-10s %s\n",
			b.Class, b.Measured, b.Bound, b.Margin(), verdict)
	}
	if res.Converged {
		fmt.Printf("\nconverged state: %s\n", res.State)
	} else {
		fmt.Printf("\nreplica states: %s\n", res.Diverged)
	}
	if res.Checked {
		fmt.Printf("linearizable: %v\n", res.Linearizable)
	}
	if !res.Converged {
		return fmt.Errorf("replicas diverged")
	}
	return nil
}
