// Command tbsweep prints parameter-sweep series as TSV (CSV for load):
//
//	-sweep x   — the accessor/mutator tradeoff across X ∈ [0, d+ε-u]
//	             (experiment E13; §V.A.2's latency regulation knob)
//	-sweep n   — mutator latency and (1-1/n)u across cluster sizes
//	             (experiment E14; Theorem D.1 tightness)
//	-sweep base — Algorithm 1 vs folklore baselines (experiment E12)
//	-sweep gap — measured OOP latency between Theorem C.1's lower bound
//	             and Algorithm 1's d+ε upper bound across u (experiment
//	             E15; the witness column comes from the engine-run
//	             adversary grid)
//	-sweep load — the saturation study: open-loop offered load swept
//	             across a geometric ramp (or -loads), each point streamed
//	             through the engine and folded online, with a bisection
//	             locating the saturation knee. Emits CSV: offered load,
//	             per-class p50/p99 sojourn, class bound, bound margin,
//	             utilization, and a knee marker. A progress line streams
//	             to stderr as points complete.
//	-sweep skew — the skew study: a streamed Zipf workload over a
//	             range-partitioned key universe (-keys, -shards), swept
//	             across Zipf exponents (-exponents) × offered loads
//	             (-loads). Emits CSV: per-cell imbalance, hottest shard,
//	             worst per-shard p99 sojourn vs bound, saturation marker,
//	             and one knee row per exponent — how the saturation knee
//	             falls as the head of the popularity distribution grows.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"timebounds"
	"timebounds/internal/experiments"
	"timebounds/internal/model"
	"timebounds/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tbsweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sweep    = flag.String("sweep", "x", "sweep kind: x|n|base|gap|load|skew")
		n        = flag.Int("n", 4, "number of processes (x, base and load sweeps)")
		maxN     = flag.Int("maxn", 10, "largest n (n sweep)")
		d        = flag.Duration("d", 10*time.Millisecond, "message delay upper bound d")
		u        = flag.Duration("u", 4*time.Millisecond, "message delay uncertainty u")
		steps    = flag.Int("steps", 9, "sample count (x sweep; ramp points for load)")
		seed     = flag.Int64("seed", 1, "workload/delay seed")
		backendF = flag.String("backend", "algorithm1", "backend under load (load sweep)")
		loadsF   = flag.String("loads", "", "explicit comma-separated offered loads in ops/sec (load sweep; empty = auto geometric ramp)")
		opsPt    = flag.Int("ops", 24, "operations per process per load point (load sweep)")
		keys     = flag.Int("keys", 100_000, "key universe size (skew sweep)")
		shards   = flag.Int("shards", 8, "range-partition size (skew sweep)")
		expsF    = flag.String("exponents", "", "explicit comma-separated Zipf exponents (skew sweep; empty = 1.01,1.2,1.5,2.0)")
	)
	flag.Parse()

	switch *sweep {
	case "x":
		p := model.Params{N: *n, D: *d, U: *u}
		p.Epsilon = p.OptimalSkew()
		pts, err := experiments.XSweep(p, *steps, *seed)
		if err != nil {
			return err
		}
		fmt.Println("X\tmutator(ε+X)\taccessor(d+ε-X)\tpair(d+2ε)")
		for _, pt := range pts {
			fmt.Printf("%s\t%s\t%s\t%s\n", pt.X, pt.Mutator, pt.Accessor, pt.Pair)
		}
	case "n":
		pts, err := experiments.NSweep(*d, *u, *maxN, *seed)
		if err != nil {
			return err
		}
		fmt.Println("n\t(1-1/n)u\tmeasured-mutator")
		for _, pt := range pts {
			fmt.Printf("%d\t%s\t%s\n", pt.N, pt.OptimalSkew, pt.MeasuredMutator)
		}
	case "base":
		p := model.Params{N: *n, D: *d, U: *u}
		p.Epsilon = p.OptimalSkew()
		cmp, err := experiments.CompareBaselines(p, 0, *seed, 20)
		if err != nil {
			return err
		}
		fmt.Println("impl\twrite-max\tread-max\trmw-max")
		fmt.Printf("algorithm1\t%s\t%s\t%s\n",
			cmp.Fast[types.OpWrite].Max, cmp.Fast[types.OpRead].Max, cmp.Fast[types.OpRMW].Max)
		fmt.Printf("all-oop\t%s\t%s\t%s\n",
			cmp.AllOOP[types.OpWrite].Max, cmp.AllOOP[types.OpRead].Max, cmp.AllOOP[types.OpRMW].Max)
		fmt.Printf("centralized\t%s\t%s\t%s\n",
			cmp.Centralized[types.OpWrite].Max, cmp.Centralized[types.OpRead].Max, cmp.Centralized[types.OpRMW].Max)
		fmt.Printf("tob\t%s\t%s\t%s\n",
			cmp.TOB[types.OpWrite].Max, cmp.TOB[types.OpRead].Max, cmp.TOB[types.OpRMW].Max)
	case "gap":
		var us []model.Time
		for i := 1; i <= *steps; i++ {
			us = append(us, model.Time(int64(*u)*int64(i)/int64(*steps)))
		}
		pts, err := experiments.OOPGapSweep(*n, *d, us, *seed)
		if err != nil {
			return err
		}
		fmt.Println("u\tε\tlower(d+m)\tmeasured\twitness\tupper(d+ε)\tgap")
		for _, pt := range pts {
			fmt.Printf("%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
				pt.U, pt.Epsilon, pt.Lower, pt.Measured, pt.Witness, pt.Upper, pt.Gap())
		}
	case "load":
		p := model.Params{N: *n, D: *d, U: *u}
		p.Epsilon = p.OptimalSkew()
		backend, err := timebounds.BackendByName(*backendF)
		if err != nil {
			return err
		}
		loads, err := parseFloats(*loadsF)
		if err != nil {
			return err
		}
		// With only Points set, LoadSweep fills the span around the
		// nominal service rate n/(2d).
		ramp := timebounds.LoadRamp{Points: *steps}
		points := 0
		rep, err := experiments.LoadSweep(context.Background(), experiments.LoadSweepOptions{
			Backend:     backend,
			Params:      p,
			Seed:        *seed,
			Loads:       loads,
			Ramp:        ramp,
			OpsPerPoint: *opsPt,
			OnPoint: func(pt timebounds.StudyPoint) {
				points++
				state := "attached"
				if pt.Saturated {
					state = "SATURATED"
				}
				fmt.Fprintf(os.Stderr, "point %d: load %.1f ops/s util %.2f %s\n",
					points, pt.Load, pt.Utilization, state)
			},
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.LoadSweepCSV(rep))
		if rep.Knee != nil {
			fmt.Fprintf(os.Stderr, "knee: %s p99 %s ≥ 2×bound %s at ≈%.1f ops/s (bracket %.1f–%.1f)\n",
				rep.Knee.Class, rep.Knee.P99, rep.Knee.Bound, rep.Knee.Load, rep.Knee.Low, rep.Knee.Load)
		} else {
			fmt.Fprintln(os.Stderr, "no saturation knee within the swept axis")
		}
	case "skew":
		p := model.Params{N: *n, D: *d, U: *u}
		p.Epsilon = p.OptimalSkew()
		backend, err := timebounds.BackendByName(*backendF)
		if err != nil {
			return err
		}
		loads, err := parseFloats(*loadsF)
		if err != nil {
			return err
		}
		exponents, err := parseFloats(*expsF)
		if err != nil {
			return err
		}
		cells := 0
		rep, err := experiments.SkewSweep(context.Background(), experiments.SkewSweepOptions{
			Backend:     backend,
			Params:      p,
			Seed:        *seed,
			Space:       timebounds.Space{N: *keys},
			Shards:      *shards,
			Exponents:   exponents,
			Loads:       loads,
			OpsPerPoint: *opsPt * *n,
			OnPoint: func(pt experiments.SkewCell) {
				cells++
				state := "attached"
				if pt.Saturated {
					state = "SATURATED"
				}
				fmt.Fprintf(os.Stderr, "cell %d: s=%.2f load %.1f ops/s imbalance %.2f %s\n",
					cells, pt.Exponent, pt.Load, pt.Imbalance, state)
			},
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.SkewSweepCSV(rep))
		for _, k := range rep.Knees {
			if k.Found {
				fmt.Fprintf(os.Stderr, "s=%.2f: knee ≈%.1f ops/s (imbalance %.2f)\n", k.Exponent, k.Load, k.Imbalance)
			} else {
				fmt.Fprintf(os.Stderr, "s=%.2f: no knee within the swept loads\n", k.Exponent)
			}
		}
	default:
		return fmt.Errorf("unknown sweep %q", *sweep)
	}
	return nil
}

// parseFloats parses a comma-separated list; empty input means nil (use
// the sweep's default axis).
func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}
