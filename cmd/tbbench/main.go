// Command tbbench records a point on the repository's benchmark
// trajectory: it runs the tracked hot-path benchmarks of internal/perf —
// the large verified scenario grid, the Wing–Gong checker on long
// histories, and the simulator event loop — through testing.Benchmark and
// writes the results as JSON.
//
// Usage:
//
//	tbbench [-out BENCH_<date>.json] [-label string] [-overwrite] [-list]
//
// If the output file already exists, the new point is appended to its
// recorded points — a trajectory file is history and is never silently
// truncated (pass -overwrite to start a file over). An existing file
// that cannot be read or parsed is an error, not an empty trajectory.
// `make bench-json` is the canonical invocation; docs/PERFORMANCE.md
// explains how to read and compare the recorded points.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"timebounds/internal/perf"
)

// Result is one benchmark's measurements within a point.
type Result struct {
	// Name is the tracked benchmark identifier (internal/perf).
	Name string `json:"name"`
	// N is the iteration count testing.Benchmark settled on.
	N int `json:"n"`
	// NsPerOp is wall-clock nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are the allocation profile per iteration.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Metrics carries the benchmark's custom b.ReportMetric values
	// (scenario counts, ops/s, history sizes).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Point is one recorded run of the whole suite.
type Point struct {
	// Label distinguishes points within a file, e.g. "pre-batching
	// baseline" vs "batched+memoized".
	Label string `json:"label"`
	// Date is the recording date (YYYY-MM-DD).
	Date string `json:"date"`
	// Go and MaxProcs pin the toolchain and parallelism the numbers were
	// taken under.
	Go       string `json:"go"`
	MaxProcs int    `json:"maxprocs"`
	// Results are the per-benchmark measurements, in suite order.
	Results []Result `json:"results"`
}

// File is the BENCH_*.json schema.
type File struct {
	// Schema versions the file format.
	Schema string `json:"schema"`
	// Points are recorded suite runs, oldest first.
	Points []Point `json:"points"`
}

const schema = "timebounds-bench/v1"

func main() {
	date := time.Now().Format("2006-01-02")
	out := flag.String("out", "BENCH_"+date+".json", "output file (appended to if it exists)")
	label := flag.String("label", "bench-json", "label for this point")
	overwrite := flag.Bool("overwrite", false, "discard an existing file's points instead of appending")
	list := flag.Bool("list", false, "list the tracked benchmarks and exit")
	flag.Parse()

	if *list {
		for _, bm := range perf.Benchmarks() {
			fmt.Printf("%-24s %s\n", bm.Name, bm.Brief)
		}
		return
	}

	pt := Point{
		Label:    *label,
		Date:     date,
		Go:       runtime.Version(),
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, bm := range perf.Benchmarks() {
		fmt.Fprintf(os.Stderr, "running %s ...\n", bm.Name)
		r := testing.Benchmark(bm.Func)
		res := Result{
			Name:        bm.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		fmt.Fprintf(os.Stderr, "  %s: %.3fms/op, %d allocs/op\n",
			bm.Name, res.NsPerOp/1e6, res.AllocsPerOp)
		pt.Results = append(pt.Results, res)
	}

	f := File{Schema: schema}
	if !*overwrite {
		data, err := os.ReadFile(*out)
		switch {
		case err == nil:
			if err := json.Unmarshal(data, &f); err != nil {
				fatalf("tbbench: %s exists but is not a bench file (pass -overwrite to replace it): %v", *out, err)
			}
			if f.Schema != schema {
				fatalf("tbbench: %s has schema %q, want %q", *out, f.Schema, schema)
			}
		case os.IsNotExist(err):
			// Fresh file.
		default:
			// An existing-but-unreadable trajectory must never be
			// silently replaced by a single fresh point.
			fatalf("tbbench: read %s: %v", *out, err)
		}
	}
	f.Points = append(f.Points, pt)

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatalf("tbbench: encode: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("tbbench: write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d point(s))\n", *out, len(f.Points))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
