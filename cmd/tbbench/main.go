// Command tbbench records and gates the repository's benchmark
// trajectory: it runs the tracked hot-path benchmarks of internal/perf —
// the large verified scenario grid, the sharded store, the Wing–Gong
// checker on long histories, and the simulator event loop — through
// testing.Benchmark.
//
// Record mode (the default) writes the results as a point in a
// BENCH_<date>.json trajectory file:
//
//	tbbench [-out BENCH_<date>.json] [-label string] [-overwrite] [-list]
//
// If the output file already exists, the new point is appended to its
// recorded points — a trajectory file is history and is never silently
// truncated (pass -overwrite to start a file over; an existing file that
// cannot be parsed is an error, not an empty trajectory). `make
// bench-json` is the canonical invocation; docs/PERFORMANCE.md explains
// how to read and compare the recorded points.
//
// Compare mode is the CI regression gate:
//
//	tbbench -compare BASELINE.json [-against FRESH.json] [-tolerance 0.25]
//	        [-metrics ns/op,allocs/op]
//
// It diffs a fresh run (or, with -against, an already-recorded file —
// what CI uses so the suite runs once) against the newest point of the
// committed baseline and exits non-zero if any gated benchmark metric
// exceeds baseline·(1+tolerance). -metrics narrows the gate: CI gates
// allocs/op only, because allocation counts are machine-independent
// while the committed wall-clock baselines come from a different
// machine class. Benchmarks without history in the baseline are
// skipped. `make bench-compare` wires this into CI's bench-json job.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"timebounds/internal/perf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tbbench:", err)
		os.Exit(1)
	}
}

func run() error {
	date := time.Now().Format("2006-01-02")
	var (
		out       = flag.String("out", "BENCH_"+date+".json", "output file (appended to if it exists)")
		label     = flag.String("label", "bench-json", "label for this point")
		overwrite = flag.Bool("overwrite", false, "discard an existing file's points instead of appending")
		list      = flag.Bool("list", false, "list the tracked benchmarks and exit")
		compare   = flag.String("compare", "", "baseline BENCH_*.json to gate against (newest point); exits non-zero on regression")
		against   = flag.String("against", "", "with -compare: already-recorded BENCH_*.json to judge (newest point) instead of running the suite")
		tolerance = flag.Float64("tolerance", 0.25, "with -compare: allowed slowdown fraction per metric (0.25 = fail beyond 25%)")
		metrics   = flag.String("metrics", "", "with -compare: comma-separated metrics to gate, from ns/op,allocs/op (empty = both; CI gates allocs/op, the machine-independent one)")
	)
	flag.Parse()
	if *against != "" && *compare == "" {
		return fmt.Errorf("-against only makes sense with -compare")
	}

	if *list {
		for _, bm := range perf.Benchmarks() {
			fmt.Printf("%-24s %s\n", bm.Name, bm.Brief)
		}
		return nil
	}
	if *compare != "" {
		gate, err := gatedMetrics(*metrics)
		if err != nil {
			return err
		}
		return runCompare(*compare, *against, *tolerance, gate)
	}

	pt := record(*label, date)
	f, err := perf.AppendPoint(*out, pt, *overwrite)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d point(s))\n", *out, len(f.Points))
	return nil
}

// record runs the tracked suite once and packages it as a point.
func record(label, date string) perf.Point {
	pt := perf.Point{
		Label:    label,
		Date:     date,
		Go:       runtime.Version(),
		MaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, bm := range perf.Benchmarks() {
		fmt.Fprintf(os.Stderr, "running %s ...\n", bm.Name)
		r := testing.Benchmark(bm.Func)
		m := perf.Measurement{
			Name:        bm.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			m.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				m.Metrics[k] = v
			}
		}
		fmt.Fprintf(os.Stderr, "  %s: %.3fms/op, %d allocs/op\n",
			bm.Name, m.NsPerOp/1e6, m.AllocsPerOp)
		pt.Results = append(pt.Results, m)
	}
	return pt
}

// gatedMetrics parses the -metrics flag into Compare's metric filter,
// rejecting unknown names — a typo'd metric would otherwise gate
// nothing and pass the CI gate vacuously.
func gatedMetrics(flagValue string) ([]string, error) {
	if flagValue == "" {
		return nil, nil
	}
	var out []string
	for _, m := range strings.Split(flagValue, ",") {
		switch m = strings.TrimSpace(m); m {
		case "":
		case "ns/op", "allocs/op":
			out = append(out, m)
		default:
			return nil, fmt.Errorf("unknown metric %q in -metrics (want ns/op,allocs/op)", m)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-metrics %q selects no metrics (want ns/op,allocs/op)", flagValue)
	}
	return out, nil
}

// runCompare gates a fresh point against the newest baseline point.
func runCompare(baselinePath, againstPath string, tolerance float64, metrics []string) error {
	baseFile, err := perf.ReadTrajectory(baselinePath)
	if err != nil {
		return err
	}
	base, ok := baseFile.Latest()
	if !ok {
		return fmt.Errorf("baseline %s has no recorded points", baselinePath)
	}
	var fresh perf.Point
	if againstPath != "" {
		freshFile, err := perf.ReadTrajectory(againstPath)
		if err != nil {
			return err
		}
		fresh, ok = freshFile.Latest()
		if !ok {
			return fmt.Errorf("%s has no recorded points", againstPath)
		}
	} else {
		fresh = record("compare", time.Now().Format("2006-01-02"))
	}

	gate := "ns/op,allocs/op"
	if len(metrics) > 0 {
		gate = strings.Join(metrics, ",")
	}
	fmt.Printf("comparing against %s (point %q, %s, go %s), tolerance %.0f%% on %s\n",
		baselinePath, base.Label, base.Date, base.Go, tolerance*100, gate)
	for _, bm := range base.Results {
		got, ok := fresh.Find(bm.Name)
		if !ok {
			fmt.Printf("  %-24s (missing from fresh run — skipped)\n", bm.Name)
			continue
		}
		ratio := "n/a" // a zero baseline has no meaningful ratio
		if bm.NsPerOp > 0 {
			ratio = fmt.Sprintf("%.2fx", got.NsPerOp/bm.NsPerOp)
		}
		fmt.Printf("  %-24s ns/op %.4g -> %.4g (%s)  allocs/op %d -> %d\n",
			bm.Name, bm.NsPerOp, got.NsPerOp, ratio, bm.AllocsPerOp, got.AllocsPerOp)
	}
	regs := perf.Compare(base, fresh, tolerance, metrics...)
	if len(regs) == 0 {
		fmt.Println("no regressions beyond tolerance")
		return nil
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", r)
	}
	return fmt.Errorf("%d benchmark metric(s) regressed beyond %.0f%%", len(regs), tolerance*100)
}
