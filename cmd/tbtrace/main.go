// Command tbtrace runs a small scenario and renders it as a space-time
// diagram (the textual analogue of the paper's figures) and, optionally, as
// JSON for external tooling.
//
// Usage:
//
//	tbtrace [-scenario quickstart|fig1|thmC1] [-width 100] [-json]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"timebounds/internal/adversary"
	"timebounds/internal/engine"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/runs"
	"timebounds/internal/tracefmt"
	"timebounds/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tbtrace:", err)
		os.Exit(1)
	}
}

func params() model.Params {
	p := model.Params{N: 3, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	p.Epsilon = p.OptimalSkew()
	return p
}

func run() error {
	var (
		scenario = flag.String("scenario", "quickstart", "scenario: quickstart|fig1|thmC1")
		width    = flag.Int("width", 100, "diagram width in columns")
		asJSON   = flag.Bool("json", false, "emit the run as JSON instead of a diagram")
	)
	flag.Parse()

	r, ops, caption, err := buildScenario(*scenario)
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := tracefmt.MarshalRun(r)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Println(caption)
	fmt.Print(tracefmt.Diagram{Width: *width, ShowMessages: true}.Render(r, ops))
	return nil
}

func buildScenario(name string) (runs.Run, []history.Record, string, error) {
	p := params()
	switch name {
	case "quickstart":
		inst, err := engine.Scenario{
			Backend:      engine.Algorithm1{},
			DataType:     types.NewRegister(0),
			Params:       p,
			Delay:        engine.DelaySpec{Mode: engine.DelayWorst},
			ClockOffsets: make([]model.Time, p.N),
		}.Build()
		if err != nil {
			return runs.Run{}, nil, "", err
		}
		inst.Invoke(0, 0, types.OpWrite, 7)
		inst.Invoke(p.Epsilon+1, 2, types.OpRead, nil)
		inst.Invoke(3*p.D, 1, types.OpRead, nil)
		if err := inst.Run(model.Infinity); err != nil {
			return runs.Run{}, nil, "", err
		}
		return runs.FromSim(inst.Simulator()), inst.History().Ops(),
			"Algorithm 1: write acks in ε+X; reads settle in d+ε-X (messages are the broadcast).", nil
	case "fig1":
		out, err := adversary.Figure1(p)
		if err != nil {
			return runs.Run{}, nil, "", err
		}
		caption := fmt.Sprintf(
			"Figure 1(a): zero-latency register; read misses the completed write(1): linearizable=%v",
			out.Linearizable())
		return out.Run, out.History.Ops(), caption, nil
	case "thmC1":
		// Render R3 of the Theorem C.1 family with a premature dequeue.
		outs, err := adversary.TheoremC1(adversary.C1Config{
			Params: p, OOPLatency: p.D, UseQueue: true,
		})
		if err != nil {
			return runs.Run{}, nil, "", err
		}
		last := outs[len(outs)-1]
		caption := fmt.Sprintf(
			"Theorem C.1 run R3, premature dequeues (latency d < d+m): linearizable=%v",
			last.Linearizable())
		return last.Run, last.History.Ops(), caption, nil
	default:
		return runs.Run{}, nil, "", fmt.Errorf("unknown scenario %q", name)
	}
}
