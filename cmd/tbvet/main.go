// Command tbvet runs the repository's supplementary static checks —
// currently the missing-package-doc check: every package (including
// commands and examples) must carry a package-level doc comment on at
// least one non-test file. It is wired into `make vet` next to go vet.
//
// Usage:
//
//	tbvet [dir]
//
// tbvet walks the tree rooted at dir (default ".") and exits non-zero
// listing every package directory without a doc comment.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	missing, err := missingPackageDocs(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tbvet: %v\n", err)
		os.Exit(1)
	}
	if len(missing) > 0 {
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "tbvet: package %s has no package doc comment\n", dir)
		}
		os.Exit(1)
	}
}

// missingPackageDocs returns the package directories under root whose
// non-test files all lack a package doc comment.
func missingPackageDocs(root string) ([]string, error) {
	// dir -> has at least one documented non-test file
	documented := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if _, seen := documented[dir]; !seen {
			documented[dir] = false
		}
		if documented[dir] {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("%s: %w", path, perr)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			documented[dir] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var missing []string
	for dir, ok := range documented {
		if !ok {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	return missing, nil
}
