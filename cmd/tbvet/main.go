// Command tbvet runs the repository's static-analysis suite
// (internal/lint) over the module tree: the determinism, hotpath,
// ctxhygiene, and deprecated analyzers plus the original package-doc
// check, all on a shared typed AST. It is wired into `make vet` next to
// go vet and into the dedicated CI lint job.
//
// Usage:
//
//	tbvet [-analyzers list] [-json] [-list] [dir]
//
// tbvet loads the module rooted at dir (default "."), runs the selected
// analyzers (default: all), honors //tbvet:ignore suppression
// directives, and exits non-zero if any finding survives. Findings go
// to stderr in vet's file:line:col form; -json writes the machine shape
// (the CI artifact) to stdout instead. -list prints the analyzer
// catalogue. See docs/STATIC_ANALYSIS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"timebounds/internal/lint"
)

func main() {
	analyzersFlag := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "write findings as JSON to stdout")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
			for _, e := range a.Exempt {
				fmt.Printf("%-12s   exempt %s: %s\n", "", e.Path, e.Reason)
			}
		}
		return
	}

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	analyzers := lint.All()
	if *analyzersFlag != "" {
		var err error
		analyzers, err = lint.ByName(*analyzersFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tbvet: %v\n", err)
			os.Exit(2)
		}
	}

	prog, err := lint.Load(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tbvet: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(prog, analyzers)

	if *jsonOut {
		names := make([]string, len(analyzers))
		for i, a := range analyzers {
			names[i] = a.Name
		}
		if findings == nil {
			findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		err := enc.Encode(struct {
			Module    string            `json:"module"`
			Analyzers []string          `json:"analyzers"`
			Findings  []lint.Diagnostic `json:"findings"`
		}{prog.Module, names, findings})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tbvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range findings {
			fmt.Fprintf(os.Stderr, "tbvet: %s\n", d)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
