// Command tbgrid expands a scenario grid — backends × objects × cluster
// sizes × tradeoff values × delay adversaries × seeds — and executes it in
// parallel on the engine, printing one report row per scenario: operation
// count, linearizability verdict, bound compliance, worst latency, and the
// tightest measured-vs-theoretical margin.
//
// Usage:
//
//	tbgrid [-backends algorithm1,all-oop,centralized,tob] [-types register,queue]
//	       [-ns 3,4] [-d 10ms] [-u 4ms] [-xs 0,3ms] [-delays random,worst]
//	       [-seeds 2] [-ops 4] [-workers 0] [-verify]
//	       [-adversary fig1,c1,c1-queue,d1,e1,e1-dict]
//	       [-faults all|crash,loss,drift,...]
//	       [-shards 8 [-keys 24]]
//
// With -adversary, the named lower-bound constructions are expanded
// alongside the regular cross product (premature and correct tunings both),
// and the witness table is appended to the report; see cmd/tbadv for the
// dedicated sweep runner.
//
// With -faults, the grid gains a fault-plan axis: every scenario point is
// additionally run under each named fault family (crash, churn, loss,
// duplication, partition, drift), and the fault-dichotomy table is appended
// to the report — every faulted run must land on exactly one verdict horn,
// within the crash-adjusted bound or a breach naming the broken model
// assumption. The zero-fault cross product still runs alongside.
//
// With -shards, tbgrid instead drives the engine's sharded path: a keyed
// workload over -keys keys is partitioned into -shards dictionary
// sub-clusters per backend × cluster size × -xs × -delays × seed, run
// across the worker pool, and folded into one sharded report per store
// (composed linearizability, aggregate bound margins, shard skew).
// -adversary does not combine with -shards.
//
// With -migrate (requires -shards ≥ 2), the keyed workload becomes a
// streamed Zipf schedule over -keys keys and each store runs twice: once
// under the static range partition to observe per-shard load, then — when
// the observed imbalance warrants it — again with the hot-split migration
// SplitHot plans from that load, cutting over mid-run. The second report
// carries the handoff table and the per-epoch composed verdict: the
// stitched cross-epoch check is what proves linearizability across the
// rebalancing, not just within each epoch.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"timebounds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tbgrid:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		backendsF = flag.String("backends", "algorithm1,all-oop", "comma-separated backends")
		typesF    = flag.String("types", "register,queue", "comma-separated object types")
		nsF       = flag.String("ns", "4", "comma-separated cluster sizes")
		d         = flag.Duration("d", 10*time.Millisecond, "message delay upper bound d")
		u         = flag.Duration("u", 4*time.Millisecond, "message delay uncertainty u")
		xsF       = flag.String("xs", "0", "comma-separated tradeoff values (durations)")
		delaysF   = flag.String("delays", "random", "comma-separated delay adversaries")
		seeds     = flag.Int("seeds", 2, "seeds per scenario point")
		ops       = flag.Int("ops", 4, "operations per process")
		workers   = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		verify    = flag.Bool("verify", false, "run the linearizability checker on every history")
		advF      = flag.String("adversary", "", "comma-separated lower-bound constructions to run alongside the grid")
		faultsF   = flag.String("faults", "", "fault-plan axis: all, or a comma-separated subset of "+strings.Join(timebounds.FaultSpecNames(), ","))
		shards    = flag.Int("shards", 0, "run the sharded keyed-workload path with this many shards (0 = off, -1 = one shard per key)")
		keys      = flag.Int("keys", 24, "key-space size for -shards")
		migrate   = flag.Bool("migrate", false, "with -shards: observe skew under a Zipf stream, plan a hot-split migration from the measured load, re-run across the cutover")
	)
	flag.Parse()

	if *shards != 0 {
		if *advF != "" {
			return fmt.Errorf("-adversary cannot be combined with -shards (adversary run families are unsharded)")
		}
		if *faultsF != "" {
			return fmt.Errorf("-faults cannot be combined with -shards (the fault axis applies to the unsharded grid)")
		}
		if *migrate {
			if *shards < 2 {
				return fmt.Errorf("-migrate needs -shards ≥ 2 (rebalancing moves keys between shards)")
			}
			return runMigrating(*backendsF, *nsF, *xsF, *delaysF, *d, *u, *shards, *keys, *ops, *seeds, *workers, *verify)
		}
		return runSharded(*backendsF, *nsF, *xsF, *delaysF, *d, *u, *shards, *keys, *ops, *seeds, *workers, *verify)
	}
	if *migrate {
		return fmt.Errorf("-migrate requires -shards (it drives the sharded keyed-workload path)")
	}

	var grid timebounds.Grid
	for _, name := range strings.Split(*backendsF, ",") {
		b, err := timebounds.BackendByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		grid.Backends = append(grid.Backends, b)
	}
	for _, name := range strings.Split(*typesF, ",") {
		dt, err := timebounds.DataTypeByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		grid.Objects = append(grid.Objects, dt)
	}
	for _, s := range strings.Split(*nsF, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
			return fmt.Errorf("bad n %q", s)
		}
		grid.Params = append(grid.Params, timebounds.Params{N: n, D: *d, U: *u})
	}
	for _, s := range strings.Split(*xsF, ",") {
		x, err := time.ParseDuration(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad x %q: %v", s, err)
		}
		grid.Xs = append(grid.Xs, x)
	}
	for _, s := range strings.Split(*delaysF, ",") {
		m, err := timebounds.DelayModeByName(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		grid.Delays = append(grid.Delays, timebounds.DelaySpec{Mode: m})
	}
	for s := int64(1); s <= int64(*seeds); s++ {
		grid.Seeds = append(grid.Seeds, s)
	}
	grid.Workloads = []timebounds.Workload{{OpsPerProcess: *ops}}
	grid.Verify = *verify
	if *faultsF != "" {
		// Keep the zero-fault point so the fault axis extends the grid
		// rather than replacing it.
		grid.Faults = []timebounds.FaultSpec{{}}
		names := timebounds.FaultSpecNames()
		if *faultsF != "all" {
			names = nil
			for _, name := range strings.Split(*faultsF, ",") {
				names = append(names, strings.TrimSpace(name))
			}
		}
		for _, name := range names {
			fs, err := timebounds.FaultSpecByName(name)
			if err != nil {
				return err
			}
			grid.Faults = append(grid.Faults, fs)
		}
	}
	if *advF != "" {
		for _, name := range strings.Split(*advF, ",") {
			for _, correct := range []bool{false, true} {
				as, err := timebounds.AdversaryByName(strings.TrimSpace(name), correct)
				if err != nil {
					return err
				}
				grid.Adversaries = append(grid.Adversaries, as)
			}
		}
	}

	scenarios := grid.Scenarios()
	rep := streamWithProgress(timebounds.NewEngine(*workers), scenarios)
	fmt.Print(rep)
	if wt := rep.RenderWitnesses(); wt != "" {
		fmt.Println("\nlower-bound witnesses:")
		fmt.Print(wt)
	}
	if ft := rep.RenderFaults(); ft != "" {
		fmt.Println("\nfault dichotomy:")
		fmt.Print(ft)
	}
	fmt.Printf("\n%d scenarios, %d operations\n", len(scenarios), rep.Ops())
	if err := rep.Err(); err != nil {
		return err
	}
	if *faultsF != "" {
		fmt.Println("all fault-free scenarios within bounds; every faulted run on exactly one dichotomy horn")
		return nil
	}
	fmt.Println("all scenarios within bounds, converged" + map[bool]string{true: ", linearizable", false: ""}[*verify])
	return nil
}

// streamWithProgress collects the scenarios through the engine's result
// stream, ticking a progress line on stderr as runs complete (Ctrl-C'ing
// the process kills the run; the stream itself would honor a cancelled
// context with a partial report). The collected Report is bit-identical
// to Engine.Run's.
func streamWithProgress(eng *timebounds.Engine, scenarios []timebounds.Scenario) timebounds.Report {
	results := make([]timebounds.Result, len(scenarios))
	done := 0
	for i, res := range eng.Stream(context.Background(), scenarios) {
		results[i] = res
		done++
		fmt.Fprintf(os.Stderr, "\r%d/%d scenarios", done, len(scenarios))
	}
	fmt.Fprintln(os.Stderr)
	return timebounds.Report{Results: results}
}

// runSharded drives the engine's sharded path: one sharded scenario per
// backend × cluster size × tradeoff × delay adversary × seed, each
// partitioning a generated key space into dictionary sub-clusters.
func runSharded(backendsF, nsF, xsF, delaysF string, d, u time.Duration, shards, keys, ops, seeds, workers int, verify bool) error {
	if shards < 0 {
		shards = 0 // engine convention: 0 = one shard per key
	}
	space := make([]string, keys)
	for i := range space {
		space[i] = fmt.Sprintf("key-%03d", i)
	}
	var xs []time.Duration
	for _, s := range strings.Split(xsF, ",") {
		x, err := time.ParseDuration(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad x %q: %v", s, err)
		}
		xs = append(xs, x)
	}
	var delays []timebounds.DelaySpec
	for _, s := range strings.Split(delaysF, ",") {
		m, err := timebounds.DelayModeByName(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		delays = append(delays, timebounds.DelaySpec{Mode: m})
	}
	eng := timebounds.NewEngine(workers)
	for _, name := range strings.Split(backendsF, ",") {
		b, err := timebounds.BackendByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		for _, s := range strings.Split(nsF, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
				return fmt.Errorf("bad n %q", s)
			}
			for _, x := range xs {
				for _, delay := range delays {
					for seed := int64(1); seed <= int64(seeds); seed++ {
						rep, err := eng.RunSharded(timebounds.ShardedScenario{
							Backend: b,
							Params:  timebounds.Params{N: n, D: d, U: u},
							X:       x,
							Seed:    seed,
							Delay:   delay,
							Workload: timebounds.ShardedWorkload{
								Name:   fmt.Sprintf("sharded/x=%s/%s", x, delay.Mode),
								Keys:   space,
								Shards: shards,
								PerKey: timebounds.Workload{OpsPerProcess: ops},
							},
							Verify: verify,
						})
						if err != nil {
							return err
						}
						fmt.Print(rep)
						fmt.Println()
						if err := rep.Err(); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	fmt.Println("all sharded stores within bounds, converged" + map[bool]string{true: ", composed linearizable", false: ""}[verify])
	return nil
}

// runMigrating is the -migrate path: per grid point it streams a Zipf
// keyed workload over a static range partition, asks SplitHot for a
// rebalancing migration from the observed per-shard load, and — when the
// skew warrants one — re-runs the identical workload with the migration
// cutting over mid-schedule, printing the handoff table and the composed
// cross-epoch verdict.
func runMigrating(backendsF, nsF, xsF, delaysF string, d, u time.Duration, shards, keys, ops, seeds, workers int, verify bool) error {
	space := timebounds.Space{N: keys}
	var xs []time.Duration
	for _, s := range strings.Split(xsF, ",") {
		x, err := time.ParseDuration(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad x %q: %v", s, err)
		}
		xs = append(xs, x)
	}
	var delays []timebounds.DelaySpec
	for _, s := range strings.Split(delaysF, ",") {
		m, err := timebounds.DelayModeByName(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		delays = append(delays, timebounds.DelaySpec{Mode: m})
	}
	eng := timebounds.NewEngine(workers)
	migrated := 0
	for _, name := range strings.Split(backendsF, ",") {
		b, err := timebounds.BackendByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		for _, s := range strings.Split(nsF, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
				return fmt.Errorf("bad n %q", s)
			}
			for _, x := range xs {
				for _, delay := range delays {
					for seed := int64(1); seed <= int64(seeds); seed++ {
						total := ops * n * shards
						w := timebounds.KeyedWorkload{
							Name:  fmt.Sprintf("migrating/x=%s/%s", x, delay.Mode),
							Space: space,
							Model: timebounds.Zipf{},
							Ops:   total,
						}
						base := timebounds.RangePartition(space, shards)
						ss := timebounds.ShardedScenario{
							Backend:  b,
							Params:   timebounds.Params{N: n, D: d, U: u},
							X:        x,
							Seed:     seed,
							Delay:    delay,
							Workload: w.Sharded(shards),
							Plan:     &timebounds.MigrationPlan{Base: base},
							Verify:   verify,
						}
						rep, err := eng.RunSharded(ss)
						if err != nil {
							return err
						}
						fmt.Print(rep)
						fmt.Println()
						if err := rep.Err(); err != nil {
							return err
						}
						// Cut over mid-schedule: the stream starts at d and
						// spaces ops 2d/n apart, so half the schedule sits on
						// each side of the handoff.
						cutover := d + time.Duration(total/2)*(2*d/time.Duration(n))
						mig := timebounds.SplitHot(base, rep.Stats.PerShardOps, rep.HotKeys, cutover, 1.5)
						if mig == nil {
							fmt.Println("observed load within threshold; no migration planned")
							continue
						}
						ss.Plan = &timebounds.MigrationPlan{Base: base, Migrations: []timebounds.Migration{*mig}}
						rep, err = eng.RunSharded(ss)
						if err != nil {
							return err
						}
						migrated++
						fmt.Print(rep)
						fmt.Println()
						if err := rep.Err(); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	fmt.Printf("%d stores rebalanced mid-run; every handoff verified across the cutover%s\n",
		migrated, map[bool]string{true: " (composed check over per-epoch and stitched whole-key histories)", false: ""}[verify])
	return nil
}
