// Command tbclassify prints the Chapter II classification matrix for every
// bundled data type, re-derived from the sequential specifications by the
// brute-force classifiers (internal/spec) over the default search domains —
// the executable version of the paper's operation taxonomy.
//
// Columns: class (Chapter V path), mutator/accessor (Defs. D.1–D.4),
// overwriter (Def. D.5), immediately non-self-commuting (Def. B.2),
// strongly so (Def. B.3), eventually non-self-commuting (Def. C.3), and
// non-self-last-permuting at k=3 (Def. C.5).
package main

import (
	"flag"
	"fmt"
	"time"

	"timebounds/internal/bounds"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}

func main() {
	var (
		derive = flag.Bool("bounds", false, "also print bounds derived from the classification")
		n      = flag.Int("n", 4, "processes (for derived-bound values)")
		d      = flag.Duration("d", 10*time.Millisecond, "delay bound d")
		u      = flag.Duration("u", 4*time.Millisecond, "delay uncertainty u")
	)
	flag.Parse()
	dts := []spec.DataType{
		types.NewRMWRegister(0),
		types.NewCounter(),
		types.NewQueue(),
		types.NewStack(),
		types.NewSet(),
		types.NewTree(),
		types.NewDict(),
		types.NewPQueue(),
		types.NewAccount(),
		types.NewPairArray(3, 5),
	}
	fmt.Printf("%-12s %-14s %-5s %-8s %-8s %-6s %-6s %-8s %-6s %-8s\n",
		"object", "operation", "class", "mutator", "accessor", "ovwr", "INSC", "strong", "ENSC", "lastperm")
	for _, dt := range dts {
		dom := types.DomainFor(dt)
		for _, c := range spec.ClassifyAll(dt, dom) {
			fmt.Printf("%-12s %-14s %-5s %-8s %-8s %-6s %-6s %-8s %-6s %-8s\n",
				dt.Name(), c.Kind, c.Class,
				yes(c.Mutator), yes(c.Accessor), yes(c.Overwriter),
				yes(c.INSC), yes(c.StronglyINSC), yes(c.ENSC), yes(c.LastPermuting3))
		}
	}
	if !*derive {
		return
	}
	p := model.Params{N: *n, D: *d, U: *u}
	p.Epsilon = p.OptimalSkew()
	fmt.Printf("\nderived bounds (n=%d d=%s u=%s ε=%s, X=0):\n", p.N, p.D, p.U, p.Epsilon)
	for _, dt := range dts {
		dom := types.DomainFor(dt)
		for _, der := range bounds.DeriveAll(dt, dom) {
			fmt.Printf("  %-12s %s\n", dt.Name(), bounds.FormatDerived(der, p, 0))
		}
	}
}
