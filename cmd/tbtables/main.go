// Command tbtables regenerates the paper's Tables I–IV (Chapter VI),
// printing for each operation the previous lower bound, the paper's new
// lower bound, Algorithm 1's upper bound, and a measured worst-case latency
// obtained by running the object under a mixed workload on the simulator
// with worst-case (slowest admissible) delays and maximal clock skew.
//
// Usage:
//
//	tbtables [-table N] [-n 4] [-d 10ms] [-u 4ms] [-x 0] [-ops 20] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"timebounds/internal/bounds"
	"timebounds/internal/experiments"
	"timebounds/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tbtables:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table = flag.Int("table", 0, "table number 1-4 (0 = all)")
		n     = flag.Int("n", 4, "number of processes")
		d     = flag.Duration("d", 10*time.Millisecond, "message delay upper bound d")
		u     = flag.Duration("u", 4*time.Millisecond, "message delay uncertainty u")
		eps   = flag.Duration("eps", 0, "clock skew bound ε (0 = optimal (1-1/n)u)")
		x     = flag.Duration("x", 0, "accessor/mutator tradeoff X")
		ops   = flag.Int("ops", 20, "operations per process in the measured workload")
		seed  = flag.Int64("seed", 1, "workload/delay seed")
	)
	flag.Parse()

	p := model.Params{N: *n, D: *d, U: *u, Epsilon: *eps}
	if p.Epsilon == 0 {
		p.Epsilon = p.OptimalSkew()
	}
	if err := p.Validate(); err != nil {
		return err
	}

	for _, tbl := range bounds.AllTables() {
		if *table != 0 && tbl.Number != *table {
			continue
		}
		measured, _, err := experiments.MeasureTable(tbl, p, experiments.MeasureOptions{
			X:               *x,
			Seed:            *seed,
			OpsPerProcess:   *ops,
			WorstCaseDelays: true,
		})
		if err != nil {
			return fmt.Errorf("table %d: %w", tbl.Number, err)
		}
		fmt.Println(bounds.Render(tbl, p, *x, measured))
	}
	return nil
}
