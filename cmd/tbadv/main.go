// Command tbadv runs the paper's lower-bound adversary constructions —
// Figure 1 and Theorems C.1, D.1, E.1 — as engine grids, sweeping the run
// families across (ε, u, d) parameter points and both tunings (premature:
// one time unit below the proved bound; correct: the proven algorithm), and
// prints the resulting witness table: per run, the operation whose latency
// witnesses the theoretical lower bound, its margin, and whether the
// adversary exposed a linearizability violation. Every row must HOLD the
// theorem dichotomy — a linearizable run below the bound would falsify the
// paper.
//
// With -faults, it additionally drives the engineered fault families —
// crash, churn, loss, duplication, partition, drift — and prints their
// dichotomy table: every faulted run must land on exactly one horn, within
// the crash-adjusted bound or a breach report naming the broken model
// assumption.
//
// Usage:
//
//	tbadv [-adversaries fig1,c1,c1-queue,d1,e1,e1-dict] [-backends algorithm1]
//	      [-n 3] [-ds 10ms] [-us 2ms,4ms] [-shift 1.0] [-modes premature,correct]
//	      [-faults all|fault-crash,fault-drift,...] [-workers 0] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"timebounds/internal/adversary"
	"timebounds/internal/engine"
	"timebounds/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tbadv:", err)
		os.Exit(1)
	}
}

// row is one witness-table entry, stable for the -json artifact. Holds is
// the family-level dichotomy verdict (a premature tuning's family holds by
// violating in at least one member run).
type row struct {
	Scenario string     `json:"scenario"`
	Family   string     `json:"family"`
	Kind     string     `json:"witness_op"`
	Latency  model.Time `json:"latency_ns"`
	Bound    model.Time `json:"bound_ns"`
	Margin   model.Time `json:"margin_ns"`
	Violated bool       `json:"violated"`
	Holds    bool       `json:"holds"`
}

// faultRow is one fault-dichotomy entry of the -faults artifact: the
// verdict horn plus, on the broken horn, the breached assumptions.
type faultRow struct {
	Scenario string   `json:"scenario"`
	Family   string   `json:"family"`
	Plan     string   `json:"plan"`
	Verdict  string   `json:"verdict"`
	Breaches []string `json:"breaches,omitempty"`
	Faults   int      `json:"faults_injected"`
	Pending  int      `json:"pending_ops"`
}

func run() error {
	var (
		advF     = flag.String("adversaries", strings.Join(adversary.SpecNames(), ","), "comma-separated constructions")
		backends = flag.String("backends", "algorithm1", "comma-separated backends to compose with")
		n        = flag.Int("n", 3, "cluster size")
		dsF      = flag.String("ds", "10ms", "comma-separated delay bounds d")
		usF      = flag.String("us", "4ms", "comma-separated delay uncertainties u")
		shift    = flag.Float64("shift", 1.0, "clock-shift fraction of the full proof shift")
		modesF   = flag.String("modes", "premature,correct", "tunings to drive: premature, correct")
		faultsF  = flag.String("faults", "", "fault families to drive: all, or a comma-separated subset of "+strings.Join(adversary.FaultFamilyNames(), ","))
		workers  = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		asJSON   = flag.Bool("json", false, "emit the witness (and fault) tables as JSON")
	)
	flag.Parse()

	sf := adversary.ShiftFraction{}
	if *shift != 1.0 {
		sf = adversary.Frac(*shift)
	}

	grid := engine.Grid{}
	for _, name := range strings.Split(*backends, ",") {
		b, err := engine.BackendByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		grid.Backends = append(grid.Backends, b)
	}
	for _, mode := range strings.Split(*modesF, ",") {
		mode = strings.TrimSpace(mode)
		var correct bool
		switch mode {
		case "premature":
			correct = false
		case "correct":
			correct = true
		default:
			return fmt.Errorf("unknown mode %q (want premature|correct)", mode)
		}
		for _, name := range strings.Split(*advF, ",") {
			as, err := adversary.SpecByName(strings.TrimSpace(name), correct, sf)
			if err != nil {
				return err
			}
			grid.Adversaries = append(grid.Adversaries, as)
		}
	}
	if *faultsF != "" {
		names := adversary.FaultFamilyNames()
		if *faultsF != "all" {
			names = nil
			for _, name := range strings.Split(*faultsF, ",") {
				names = append(names, strings.TrimSpace(name))
			}
		}
		for _, name := range names {
			as, err := adversary.FaultFamilyByName(name)
			if err != nil {
				return err
			}
			grid.Adversaries = append(grid.Adversaries, as)
		}
	}
	ds, err := durations(*dsF)
	if err != nil {
		return err
	}
	us, err := durations(*usF)
	if err != nil {
		return err
	}
	for _, d := range ds {
		for _, u := range us {
			grid.Params = append(grid.Params, model.Params{N: *n, D: d, U: u})
		}
	}

	rep := engine.New(*workers).Run(grid.Scenarios())
	verdicts := make(map[string]bool)
	for _, f := range rep.WitnessFamilies() {
		verdicts[f.Family] = f.Holds()
	}
	rows := make([]row, 0, len(rep.Results))
	for _, nw := range rep.Witnesses() {
		w := nw.Witness
		rows = append(rows, row{
			Scenario: nw.Scenario,
			Family:   w.Family,
			Kind:     string(w.Kind),
			Latency:  w.Latency,
			Bound:    w.Bound,
			Margin:   w.Margin(),
			Violated: w.Violated,
			Holds:    verdicts[w.Family],
		})
	}
	var frows []faultRow
	for _, nf := range rep.FaultReports() {
		fr := faultRow{
			Scenario: nf.Scenario,
			Family:   nf.Fault.Family,
			Plan:     nf.Fault.Plan,
			Verdict:  nf.Fault.Verdict,
			Faults:   nf.Fault.Stats.Total(),
			Pending:  nf.Fault.Pending,
		}
		for _, b := range nf.Fault.Breaches {
			fr.Breaches = append(fr.Breaches, b.String())
		}
		frows = append(frows, fr)
	}
	if *asJSON {
		var artifact any = rows
		if len(frows) > 0 {
			artifact = struct {
				Witnesses []row      `json:"witnesses"`
				Faults    []faultRow `json:"faults"`
			}{rows, frows}
		}
		data, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		fmt.Print(rep.RenderWitnesses())
		if len(frows) > 0 {
			fmt.Printf("\n%s", rep.RenderFaults())
		}
		fmt.Printf("\n%d adversary runs, %d operations\n", len(rows), rep.Ops())
	}
	if err := rep.Err(); err != nil {
		return err
	}
	if !*asJSON {
		fmt.Println("every family upholds the theorem dichotomy (a violation, or latency ≥ bound)")
		if len(frows) > 0 {
			fmt.Println("every faulted run lands on exactly one dichotomy horn (within-bound, or a named breach)")
		}
	}
	return nil
}

func durations(csv string) ([]model.Time, error) {
	var out []model.Time
	for _, s := range strings.Split(csv, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad duration %q: %v", s, err)
		}
		out = append(out, d)
	}
	return out, nil
}
