// Command tbstress runs the systematic correctness harnesses:
//
//	-mode exhaustive  enumerate the full adversary lattice of a small RMW
//	                  scenario (all delay/offset combinations) and check
//	                  every world
//	-mode campaign    randomized sweep across objects × delay policies ×
//	                  seeds, verifying latency bounds, convergence and
//	                  linearizability
//
// Exit status is non-zero if any world or run fails — suitable for CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"timebounds/internal/core"
	"timebounds/internal/explore"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tbstress:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode  = flag.String("mode", "campaign", "exhaustive|campaign")
		n     = flag.Int("n", 3, "number of processes")
		d     = flag.Duration("d", 10*time.Millisecond, "delay bound d")
		u     = flag.Duration("u", 4*time.Millisecond, "delay uncertainty u")
		seeds = flag.Int("seeds", 5, "seeds per object × policy (campaign)")
		ops   = flag.Int("ops", 4, "operations per process (campaign)")
		msgs  = flag.Int("msgs", 6, "independent delay slots (exhaustive)")
	)
	flag.Parse()
	p := model.Params{N: *n, D: *d, U: *u}
	p.Epsilon = p.OptimalSkew()

	switch *mode {
	case "exhaustive":
		sc := explore.Scenario{
			Params:   p,
			Config:   core.Config{Params: p},
			DataType: types.NewRMWRegister(0),
			Invocations: []explore.Invocation{
				{At: 2 * p.D, Proc: 0, Kind: types.OpRMW, Arg: 1},
				{At: 2*p.D + p.Epsilon - 1, Proc: 1, Kind: types.OpRMW, Arg: 2},
				{At: 8 * p.D, Proc: 2, Kind: types.OpRead},
			},
			MaxMessages: *msgs,
		}
		rep, err := explore.Exhaustive(sc)
		if err != nil {
			return err
		}
		fmt.Printf("explored %d adversary worlds: %d violations\n", rep.Worlds, len(rep.Violations))
		if !rep.OK() {
			v := rep.Violations[0]
			fmt.Printf("first violation: offsets=%v delays=%v diverged=%v\n%s\n",
				v.World.Offsets, v.World.DelayChoice, v.Diverged, v.History)
			return fmt.Errorf("%d violations", len(rep.Violations))
		}
	case "campaign":
		res, err := explore.Campaign(explore.CampaignConfig{
			Params: p,
			Objects: []spec.DataType{
				types.NewRMWRegister(0),
				types.NewQueue(),
				types.NewStack(),
				types.NewTree(),
				types.NewSet(),
				types.NewCounter(),
				types.NewDict(),
				types.NewPQueue(),
				types.NewAccount(),
			},
			Seeds:         *seeds,
			OpsPerProcess: *ops,
			Verify:        true,
		})
		if err != nil {
			return err
		}
		fmt.Printf("campaign: %d runs, %d operations, worst latency %s\n",
			res.Runs, res.Ops, res.WorstLatency)
		if !res.OK() {
			for _, f := range res.Failures {
				fmt.Println("  FAIL:", f)
			}
			return fmt.Errorf("%d failures", len(res.Failures))
		}
		fmt.Println("all runs linearizable, convergent and within the class bounds")
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}
