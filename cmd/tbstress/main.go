// Command tbstress runs the systematic correctness harnesses:
//
//	-mode exhaustive  enumerate the full adversary lattice of a small RMW
//	                  scenario (all delay/offset combinations) and check
//	                  every world
//	-mode campaign    randomized sweep across objects × delay policies ×
//	                  seeds, verifying latency bounds, convergence and
//	                  linearizability
//
//	-mode sharded     sharded keyed-workload sweep: shard counts × seeds,
//	                  verifying composed linearizability, convergence,
//	                  aggregate bounds, and worker-count determinism of
//	                  the merged report
//
//	-mode live        wall-clock goroutine clusters over the in-process
//	                  chan transport (and loopback TCP with -live-tcp):
//	                  safe runs must linearize post hoc, converge, and
//	                  answer under the estimated bounds; a deliberately
//	                  under-tuned run must land on a horn of the
//	                  premature-tuning dichotomy
//
// Exit status is non-zero if any world or run fails — suitable for CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"time"

	"timebounds/internal/core"
	"timebounds/internal/engine"
	"timebounds/internal/explore"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tbstress:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode    = flag.String("mode", "campaign", "exhaustive|campaign|sharded|live")
		n       = flag.Int("n", 3, "number of processes")
		d       = flag.Duration("d", 10*time.Millisecond, "delay bound d")
		u       = flag.Duration("u", 4*time.Millisecond, "delay uncertainty u")
		seeds   = flag.Int("seeds", 5, "seeds per object × policy (campaign) / per shard count (sharded) / per object (live)")
		ops     = flag.Int("ops", 4, "operations per process (campaign, sharded, live)")
		msgs    = flag.Int("msgs", 6, "independent delay slots (exhaustive)")
		keys    = flag.Int("keys", 12, "key-space size (sharded)")
		liveTCP = flag.Bool("live-tcp", false, "include a loopback-TCP cluster in the live sweep")
	)
	flag.Parse()
	p := model.Params{N: *n, D: *d, U: *u}
	p.Epsilon = p.OptimalSkew()

	switch *mode {
	case "exhaustive":
		sc := explore.Scenario{
			Params:   p,
			Config:   core.Config{Params: p},
			DataType: types.NewRMWRegister(0),
			Invocations: []explore.Invocation{
				{At: 2 * p.D, Proc: 0, Kind: types.OpRMW, Arg: 1},
				{At: 2*p.D + p.Epsilon - 1, Proc: 1, Kind: types.OpRMW, Arg: 2},
				{At: 8 * p.D, Proc: 2, Kind: types.OpRead},
			},
			MaxMessages: *msgs,
		}
		rep, err := explore.Exhaustive(sc)
		if err != nil {
			return err
		}
		fmt.Printf("explored %d adversary worlds: %d violations\n", rep.Worlds, len(rep.Violations))
		if !rep.OK() {
			v := rep.Violations[0]
			fmt.Printf("first violation: offsets=%v delays=%v diverged=%v\n%s\n",
				v.World.Offsets, v.World.DelayChoice, v.Diverged, v.History)
			return fmt.Errorf("%d violations", len(rep.Violations))
		}
	case "campaign":
		res, err := explore.Campaign(explore.CampaignConfig{
			Params: p,
			Objects: []spec.DataType{
				types.NewRMWRegister(0),
				types.NewQueue(),
				types.NewStack(),
				types.NewTree(),
				types.NewSet(),
				types.NewCounter(),
				types.NewDict(),
				types.NewPQueue(),
				types.NewAccount(),
			},
			Seeds:         *seeds,
			OpsPerProcess: *ops,
			Verify:        true,
		})
		if err != nil {
			return err
		}
		fmt.Printf("campaign: %d runs, %d operations, worst latency %s\n",
			res.Runs, res.Ops, res.WorstLatency)
		if !res.OK() {
			for _, f := range res.Failures {
				fmt.Println("  FAIL:", f)
			}
			return fmt.Errorf("%d failures", len(res.Failures))
		}
		fmt.Println("all runs linearizable, convergent and within the class bounds")
	case "sharded":
		if err := shardedSweep(p, *keys, *seeds, *ops); err != nil {
			return err
		}
	case "live":
		if err := liveSweep(p, *seeds, *ops, *liveTCP); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}

// shardedSweep stresses the engine's sharded path: every shard count from
// the coarsest (1) to the finest (one per key) across several seeds, each
// verified for composed linearizability, convergence, and aggregate
// bounds — and each merged report re-run single-threaded to pin the
// worker-count determinism the engine promises.
func shardedSweep(p model.Params, keys, seeds, ops int) error {
	space := make([]string, keys)
	for i := range space {
		space[i] = fmt.Sprintf("key-%03d", i)
	}
	var counts []int
	for _, c := range []int{1, 2, keys / 2, keys} { // coarsest → finest (one per key)
		if c >= 1 && (len(counts) == 0 || c > counts[len(counts)-1]) {
			counts = append(counts, c)
		}
	}
	runs, opsTotal := 0, 0
	for _, shards := range counts {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			ss := engine.ShardedScenario{
				Params: p,
				Seed:   seed,
				Workload: workload.Sharded{
					Keys:   space,
					Shards: shards,
					PerKey: workload.Spec{OpsPerProcess: ops},
				},
				Verify: true,
			}
			rep, err := engine.RunSharded(ss)
			if err != nil {
				return err
			}
			if err := rep.Err(); err != nil {
				return fmt.Errorf("shards=%d seed=%d: %w", shards, seed, err)
			}
			serial, err := engine.New(1).RunSharded(ss)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(rep, serial) {
				return fmt.Errorf("shards=%d seed=%d: merged report differs between parallel and single-worker runs", shards, seed)
			}
			runs++
			opsTotal += rep.Ops
		}
	}
	fmt.Printf("sharded sweep: %d stores (%d keys, shard counts %v), %d operations\n",
		runs, keys, counts, opsTotal)
	fmt.Println("all stores composed-linearizable, convergent, within bounds, and worker-count deterministic")
	return nil
}

// liveSweep stresses the live runtime: safe wall-clock clusters per object
// × seed over the chan transport (the delay adversary realized as
// synthetic message delays), optionally one over loopback TCP, and one
// deliberately under-tuned run that must land on a horn of the
// premature-tuning dichotomy.
func liveSweep(p model.Params, seeds, ops int, tcp bool) error {
	objects := []spec.DataType{
		types.NewRMWRegister(0),
		types.NewQueue(),
		types.NewCounter(),
	}
	eng := engine.New(0)
	runs, opsTotal := 0, 0
	for _, dt := range objects {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			res, err := eng.RunOne(engine.Scenario{
				Backend:  engine.Algorithm1{},
				DataType: dt,
				Params:   p,
				Seed:     seed,
				Workload: workload.Spec{OpsPerProcess: ops},
				Runtime:  engine.LiveRuntime(),
				Verify:   true,
			})
			if err != nil {
				return fmt.Errorf("live %s seed=%d: %w", dt.Name(), seed, err)
			}
			if !res.Linearizable || !res.Converged {
				return fmt.Errorf("live %s seed=%d: linearizable=%v converged=%v",
					dt.Name(), seed, res.Linearizable, res.Converged)
			}
			for _, bc := range res.Bounds {
				if !bc.OK {
					return fmt.Errorf("live %s seed=%d: class %v measured %s over bound %s",
						dt.Name(), seed, bc.Class, bc.Measured, bc.Bound)
				}
			}
			runs++
			opsTotal += res.Ops
		}
	}
	if tcp {
		res, err := eng.RunOne(engine.Scenario{
			Backend:  engine.Algorithm1{},
			DataType: types.NewRMWRegister(0),
			Params:   p,
			Seed:     1,
			Workload: workload.Spec{OpsPerProcess: ops},
			Runtime:  engine.LiveTCPRuntime(),
			Verify:   true,
		})
		if err != nil {
			return fmt.Errorf("live tcp: %w", err)
		}
		if !res.Linearizable || !res.Converged {
			return fmt.Errorf("live tcp: linearizable=%v converged=%v", res.Linearizable, res.Converged)
		}
		fmt.Println("tcp cluster:")
		fmt.Print(res.Live.Render())
		runs++
		opsTotal += res.Ops
	}
	// The dichotomy run: waits scaled to 3% of the estimated envelope must
	// break something or still pay bound-level latency.
	rt := engine.LiveRuntime()
	rt.Undertune = 0.03
	res, err := eng.RunOne(engine.Scenario{
		Backend:  engine.Algorithm1{},
		DataType: types.NewRMWRegister(0),
		Params:   p,
		Seed:     1,
		Workload: workload.Race(p, 0, time.Millisecond, 10, types.OpRMW),
		Runtime:  rt,
		Verify:   true,
	})
	if err != nil {
		return fmt.Errorf("live undertuned: %w", err)
	}
	if res.Live == nil || !res.Live.Dichotomy() {
		return fmt.Errorf("under-tuned live run linearizable, converged, and below every estimated bound — dichotomy falsified")
	}
	runs++
	opsTotal += res.Ops
	fmt.Printf("live sweep: %d clusters, %d operations\n", runs, opsTotal)
	fmt.Printf("undertuned dichotomy horn: violation=%v diverged=%v\n",
		res.Live.Violation, res.Live.Diverged)
	fmt.Println("all safe live runs linearizable, convergent, and within the estimated bounds")
	return nil
}
