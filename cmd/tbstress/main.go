// Command tbstress runs the systematic correctness harnesses:
//
//	-mode exhaustive  enumerate the full adversary lattice of a small RMW
//	                  scenario (all delay/offset combinations) and check
//	                  every world
//	-mode campaign    randomized sweep across objects × delay policies ×
//	                  seeds, verifying latency bounds, convergence and
//	                  linearizability
//
//	-mode sharded     sharded keyed-workload sweep: shard counts × seeds,
//	                  verifying composed linearizability, convergence,
//	                  aggregate bounds, and worker-count determinism of
//	                  the merged report
//
// Exit status is non-zero if any world or run fails — suitable for CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"time"

	"timebounds/internal/core"
	"timebounds/internal/engine"
	"timebounds/internal/explore"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tbstress:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode  = flag.String("mode", "campaign", "exhaustive|campaign|sharded")
		n     = flag.Int("n", 3, "number of processes")
		d     = flag.Duration("d", 10*time.Millisecond, "delay bound d")
		u     = flag.Duration("u", 4*time.Millisecond, "delay uncertainty u")
		seeds = flag.Int("seeds", 5, "seeds per object × policy (campaign) / per shard count (sharded)")
		ops   = flag.Int("ops", 4, "operations per process (campaign, sharded)")
		msgs  = flag.Int("msgs", 6, "independent delay slots (exhaustive)")
		keys  = flag.Int("keys", 12, "key-space size (sharded)")
	)
	flag.Parse()
	p := model.Params{N: *n, D: *d, U: *u}
	p.Epsilon = p.OptimalSkew()

	switch *mode {
	case "exhaustive":
		sc := explore.Scenario{
			Params:   p,
			Config:   core.Config{Params: p},
			DataType: types.NewRMWRegister(0),
			Invocations: []explore.Invocation{
				{At: 2 * p.D, Proc: 0, Kind: types.OpRMW, Arg: 1},
				{At: 2*p.D + p.Epsilon - 1, Proc: 1, Kind: types.OpRMW, Arg: 2},
				{At: 8 * p.D, Proc: 2, Kind: types.OpRead},
			},
			MaxMessages: *msgs,
		}
		rep, err := explore.Exhaustive(sc)
		if err != nil {
			return err
		}
		fmt.Printf("explored %d adversary worlds: %d violations\n", rep.Worlds, len(rep.Violations))
		if !rep.OK() {
			v := rep.Violations[0]
			fmt.Printf("first violation: offsets=%v delays=%v diverged=%v\n%s\n",
				v.World.Offsets, v.World.DelayChoice, v.Diverged, v.History)
			return fmt.Errorf("%d violations", len(rep.Violations))
		}
	case "campaign":
		res, err := explore.Campaign(explore.CampaignConfig{
			Params: p,
			Objects: []spec.DataType{
				types.NewRMWRegister(0),
				types.NewQueue(),
				types.NewStack(),
				types.NewTree(),
				types.NewSet(),
				types.NewCounter(),
				types.NewDict(),
				types.NewPQueue(),
				types.NewAccount(),
			},
			Seeds:         *seeds,
			OpsPerProcess: *ops,
			Verify:        true,
		})
		if err != nil {
			return err
		}
		fmt.Printf("campaign: %d runs, %d operations, worst latency %s\n",
			res.Runs, res.Ops, res.WorstLatency)
		if !res.OK() {
			for _, f := range res.Failures {
				fmt.Println("  FAIL:", f)
			}
			return fmt.Errorf("%d failures", len(res.Failures))
		}
		fmt.Println("all runs linearizable, convergent and within the class bounds")
	case "sharded":
		if err := shardedSweep(p, *keys, *seeds, *ops); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}

// shardedSweep stresses the engine's sharded path: every shard count from
// the coarsest (1) to the finest (one per key) across several seeds, each
// verified for composed linearizability, convergence, and aggregate
// bounds — and each merged report re-run single-threaded to pin the
// worker-count determinism the engine promises.
func shardedSweep(p model.Params, keys, seeds, ops int) error {
	space := make([]string, keys)
	for i := range space {
		space[i] = fmt.Sprintf("key-%03d", i)
	}
	var counts []int
	for _, c := range []int{1, 2, keys / 2, keys} { // coarsest → finest (one per key)
		if c >= 1 && (len(counts) == 0 || c > counts[len(counts)-1]) {
			counts = append(counts, c)
		}
	}
	runs, opsTotal := 0, 0
	for _, shards := range counts {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			ss := engine.ShardedScenario{
				Params: p,
				Seed:   seed,
				Workload: workload.Sharded{
					Keys:   space,
					Shards: shards,
					PerKey: workload.Spec{OpsPerProcess: ops},
				},
				Verify: true,
			}
			rep, err := engine.RunSharded(ss)
			if err != nil {
				return err
			}
			if err := rep.Err(); err != nil {
				return fmt.Errorf("shards=%d seed=%d: %w", shards, seed, err)
			}
			serial, err := engine.New(1).RunSharded(ss)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(rep, serial) {
				return fmt.Errorf("shards=%d seed=%d: merged report differs between parallel and single-worker runs", shards, seed)
			}
			runs++
			opsTotal += rep.Ops
		}
	}
	fmt.Printf("sharded sweep: %d stores (%d keys, shard counts %v), %d operations\n",
		runs, keys, counts, opsTotal)
	fmt.Println("all stores composed-linearizable, convergent, within bounds, and worker-count deterministic")
	return nil
}
