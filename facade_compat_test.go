package timebounds_test

// Regression tests for the deprecated compatibility surface — Config,
// NewCluster, RenderTable — pinning its behavior against the live engine
// so execution-layer redesigns (like the streaming Engine) cannot silently
// break the shims the pre-Scenario API still routes through.

import (
	"strings"
	"testing"
	"time"

	"timebounds"
)

// TestCompatNewClusterMatchesScenarioBuild drives the deprecated cluster
// and a Scenario.Build instance through the same invocations and requires
// bit-identical histories — the shim is a pure bridge, not a fork.
func TestCompatNewClusterMatchesScenarioBuild(t *testing.T) {
	cfg := facadeConfig(3)
	dt := timebounds.NewQueue()
	cluster, err := timebounds.NewCluster(cfg, dt)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	inst, err := cfg.Scenario(timebounds.NewQueue()).Build()
	if err != nil {
		t.Fatalf("Scenario.Build: %v", err)
	}
	for _, drive := range []interface {
		Invoke(at time.Duration, proc timebounds.ProcessID, kind timebounds.OpKind, arg timebounds.Value)
		Run(horizon time.Duration) error
	}{cluster, inst} {
		drive.Invoke(10*time.Millisecond, 0, timebounds.OpEnqueue, 1)
		drive.Invoke(12*time.Millisecond, 1, timebounds.OpEnqueue, 2)
		drive.Invoke(60*time.Millisecond, 2, timebounds.OpDequeue, nil)
		if err := drive.Run(time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
	}
	if got, want := cluster.History().String(), inst.History().String(); got != want {
		t.Fatalf("shim history diverged from Scenario.Build:\n--- shim ---\n%s\n--- scenario ---\n%s", got, want)
	}
	cState, cErr := cluster.ConvergedState()
	iState, iErr := inst.ConvergedState()
	if cErr != nil || iErr != nil || cState != iState {
		t.Fatalf("converged states differ: %q/%v vs %q/%v", cState, cErr, iState, iErr)
	}
}

// TestCompatConfigDefaultsAndBounds pins the Config-surface formulas the
// shims expose (optimal skew, bound helpers) to their engine values.
func TestCompatConfigDefaultsAndBounds(t *testing.T) {
	cfg := facadeConfig(4)
	if got, want := timebounds.OptimalSkew(cfg), 3*time.Millisecond; got != want {
		t.Errorf("OptimalSkew = %v, want (1-1/4)·4ms = %v", got, want)
	}
	eps := timebounds.OptimalSkew(cfg)
	if got, want := timebounds.UpperBoundOOP(cfg), cfg.D+eps; got != want {
		t.Errorf("UpperBoundOOP = %v, want d+ε = %v", got, want)
	}
	if got, want := timebounds.UpperBoundMutator(cfg), eps+cfg.X; got != want {
		t.Errorf("UpperBoundMutator = %v, want ε+X = %v", got, want)
	}
	if got, want := timebounds.UpperBoundAccessor(cfg), cfg.D+eps-cfg.X; got != want {
		t.Errorf("UpperBoundAccessor = %v, want d+ε-X = %v", got, want)
	}
	if got := timebounds.LowerBoundMutator(cfg); got != eps {
		t.Errorf("LowerBoundMutator = %v, want (1-1/n)u = %v", got, eps)
	}
}

// TestCompatRenderTableMeasuredColumn pins RenderTable: every row label
// renders, theoretical bounds appear, and a measured map fills the
// measured column.
func TestCompatRenderTableMeasuredColumn(t *testing.T) {
	cfg := facadeConfig(4)
	tables := timebounds.Tables()
	if len(tables) != 4 {
		t.Fatalf("Tables() returned %d tables, want 4", len(tables))
	}
	tbl := tables[0]
	plain := timebounds.RenderTable(tbl, cfg, nil)
	measured := make(map[string]timebounds.Time)
	for _, row := range tbl.Rows {
		if !strings.Contains(plain, row.Label) {
			t.Errorf("RenderTable missing row %q:\n%s", row.Label, plain)
		}
		measured[row.Label] = 1234567 * time.Nanosecond
	}
	withMeasured := timebounds.RenderTable(tbl, cfg, measured)
	if !strings.Contains(withMeasured, "1.234567ms") {
		t.Errorf("RenderTable ignored the measured column:\n%s", withMeasured)
	}
	if withMeasured == plain {
		t.Error("measured map did not change RenderTable output")
	}
}

// TestCompatClusterRunsOnStreamingEngine is the canary for execution-layer
// redesigns: a shim-built cluster scheduled through the deprecated Invoke
// path must produce the exact run RunScenario reports for the bridged
// scenario, even though RunScenario now collects over Engine.Stream.
func TestCompatClusterRunsOnStreamingEngine(t *testing.T) {
	cfg := facadeConfig(3)
	invs := []timebounds.Invocation{
		{At: 5 * time.Millisecond, Proc: 0, Kind: timebounds.OpWrite, Arg: 9},
		{At: 40 * time.Millisecond, Proc: 1, Kind: timebounds.OpRead},
		{At: 41 * time.Millisecond, Proc: 2, Kind: timebounds.OpRead},
	}
	cluster, err := timebounds.NewCluster(cfg, timebounds.NewRegister(0))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	for _, inv := range invs {
		cluster.Invoke(inv.At, inv.Proc, inv.Kind, inv.Arg)
	}
	if err := cluster.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}

	sc := cfg.Scenario(timebounds.NewRegister(0))
	sc.Workload = timebounds.Workload{Explicit: invs}
	sc.Verify = true
	res, err := timebounds.RunScenario(sc)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if got, want := cluster.History().String(), res.History.String(); got != want {
		t.Fatalf("deprecated path diverged from streaming engine:\n--- shim ---\n%s\n--- engine ---\n%s", got, want)
	}
	if !res.Linearizable {
		t.Error("bridged scenario history not linearizable")
	}
	state, err := cluster.ConvergedState()
	if err != nil || state != res.State {
		t.Errorf("states differ: shim %q (%v) vs engine %q", state, err, res.State)
	}
}
