module timebounds

go 1.24
