module timebounds

go 1.23
