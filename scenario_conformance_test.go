package timebounds_test

// Cross-backend conformance suite: the same seeded workload driven through
// all four backends must agree on the final object state and pass the
// linearizability checker, for every bundled data type; adversary grids —
// the lower-bound run families — must be bit-identical regardless of
// engine parallelism; and every faulted run, across all backends and
// bundled fault families, must land on exactly one dichotomy verdict.

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"timebounds"
)

// conformanceWorkload derives a seeded workload whose operations are
// globally sequential (every operation completes before the next begins on
// any backend: spacing 4d exceeds every backend's 2d worst case). The
// draw — which process issues which operation with which argument — is
// random, but the forced total order makes the final state a pure function
// of the draw, so every linearizable implementation must agree on it.
func conformanceWorkload(p timebounds.Params, dt timebounds.DataType, seed int64, ops int) timebounds.Workload {
	rng := rand.New(rand.NewSource(seed))
	mix := timebounds.DefaultMix(dt)
	counts := make(map[timebounds.OpKind]int)
	var invs []timebounds.Invocation
	at := p.D
	for i := 0; i < ops; i++ {
		w := mix[rng.Intn(len(mix))]
		var arg timebounds.Value
		if w.Arg != nil {
			arg = w.Arg(counts[w.Kind])
		}
		counts[w.Kind]++
		invs = append(invs, timebounds.Invocation{
			At:   at,
			Proc: timebounds.ProcessID(rng.Intn(p.N)),
			Kind: w.Kind,
			Arg:  arg,
		})
		at += 4 * p.D
	}
	return timebounds.Workload{Name: "conformance", Explicit: invs}
}

func TestConformanceCrossBackendStateAgreement(t *testing.T) {
	// Table-driven across all 10 bundled types: one seeded sequential
	// workload per type, executed on all 4 backends in one engine grid.
	// Every run must linearize and converge, and the four final states
	// must be identical.
	p := scenarioParams(3)
	for name, dt := range constructors() {
		t.Run(name, func(t *testing.T) {
			wl := conformanceWorkload(p, dt, 7, 8)
			grid := timebounds.Grid{
				Backends:  timebounds.Backends(),
				Objects:   []timebounds.DataType{dt},
				Params:    []timebounds.Params{p},
				Seeds:     []int64{7},
				Workloads: []timebounds.Workload{wl},
				Verify:    true,
			}
			rep := timebounds.RunScenarios(grid.Scenarios())
			if err := rep.Err(); err != nil {
				t.Fatalf("grid: %v", err)
			}
			var state string
			for i, res := range rep.Results {
				if !res.Checked || !res.Linearizable {
					t.Errorf("%s: history not linearizable:\n%s", res.Backend, res.History)
				}
				if !res.Converged {
					t.Errorf("%s: replicas diverged: %s", res.Backend, res.Diverged)
					continue
				}
				if i == 0 {
					state = res.State
				} else if res.State != state {
					t.Errorf("%s: final state %q differs from %s's %q",
						res.Backend, res.State, rep.Results[0].Backend, state)
				}
			}
		})
	}
}

func TestConformanceConcurrentWorkloadLinearizes(t *testing.T) {
	// The concurrent counterpart: a seeded closed-loop workload with
	// genuine cross-process races. Backends may order racing mutators
	// differently (so no cross-backend state assert), but every backend
	// must linearize and its own replicas must converge, for every type.
	p := scenarioParams(3)
	var objects []timebounds.DataType
	for _, dt := range constructors() {
		objects = append(objects, dt)
	}
	grid := timebounds.Grid{
		Backends:  timebounds.Backends(),
		Objects:   objects,
		Params:    []timebounds.Params{p},
		Seeds:     []int64{13},
		Workloads: []timebounds.Workload{{OpsPerProcess: 3}},
		Verify:    true,
	}
	scenarios := grid.Scenarios()
	if want := 4 * len(objects); len(scenarios) != want {
		t.Fatalf("grid expanded to %d scenarios, want %d", len(scenarios), want)
	}
	rep := timebounds.RunScenarios(scenarios)
	if err := rep.Err(); err != nil {
		t.Fatalf("grid: %v", err)
	}
	for _, res := range rep.Results {
		if !res.OK() {
			t.Errorf("%s: run not OK", res.Name)
		}
	}
}

func TestAdversaryGridDeterministicAcrossParallelism(t *testing.T) {
	// The same adversary grid — every bundled construction, premature and
	// correct tunings — must yield a bit-identical Report at parallelism 1
	// and N. This is the regression for the bridged-DelaySpec policy-reuse
	// hazard: adversary runs build their delay policies fresh per
	// expansion, so no state leaks between parallel runs.
	var grid timebounds.Grid
	for _, name := range timebounds.AdversaryNames() {
		for _, correct := range []bool{false, true} {
			as, err := timebounds.AdversaryByName(name, correct)
			if err != nil {
				t.Fatalf("AdversaryByName(%q): %v", name, err)
			}
			grid.Adversaries = append(grid.Adversaries, as)
		}
	}
	grid.Params = []timebounds.Params{scenarioParams(3), scenarioParams(4)}
	scenarios := grid.Scenarios()
	if len(scenarios) < 16 {
		t.Fatalf("adversary grid expanded to %d scenarios, want ≥ 16", len(scenarios))
	}
	sequential := timebounds.NewEngine(1).Run(scenarios)
	parallel := timebounds.NewEngine(8).Run(scenarios)
	if !reflect.DeepEqual(sequential, parallel) {
		t.Errorf("adversary reports differ between parallelism 1 and 8")
	}
	if err := parallel.Err(); err != nil {
		t.Fatalf("adversary grid: %v", err)
	}
	// The report must carry populated witnesses, and every family must
	// uphold the theorem dichotomy.
	if len(parallel.Witnesses()) != len(scenarios) {
		t.Fatalf("want a BoundWitness per adversary scenario, got %d/%d",
			len(parallel.Witnesses()), len(scenarios))
	}
	for _, f := range parallel.WitnessFamilies() {
		if !f.Holds() {
			t.Errorf("family %s: dichotomy falsified (max latency %s, bound %s, violated %v)",
				f.Family, f.MaxLatency, f.Bound, f.Violated)
		}
	}
}

// faultConformanceGrid is the fault battery's grid: all four backends ×
// the zero-fault spec plus every bundled fault family × fixed seeds, with
// verification on. RMW register keeps every backend on its hardest class
// (the one the crash-adjusted bounds constrain tightest).
func faultConformanceGrid() timebounds.Grid {
	return timebounds.Grid{
		Backends:  timebounds.Backends(),
		Objects:   []timebounds.DataType{timebounds.NewRMWRegister(0)},
		Params:    []timebounds.Params{scenarioParams(3)},
		Seeds:     []int64{7, 19},
		Workloads: []timebounds.Workload{{OpsPerProcess: 2}},
		Verify:    true,
		Faults:    append([]timebounds.FaultSpec{{}}, timebounds.FaultSpecs()...),
	}
}

func TestConformanceFaultDichotomyAcrossBackends(t *testing.T) {
	// Every faulted run — any backend, any bundled fault family, any seed —
	// must yield exactly one dichotomy verdict: within-bound with no
	// breaches, or assumption-broken with at least one named breach. Never
	// "unknown", never a hard failure. Zero-fault runs must stay exactly
	// what they always were: no fault report, no "faults=" name segment.
	grid := faultConformanceGrid()
	scenarios := grid.Scenarios()
	want := len(grid.Backends) * len(grid.Seeds) * (1 + len(timebounds.FaultSpecs()))
	if len(scenarios) != want {
		t.Fatalf("fault grid expanded to %d scenarios, want %d", len(scenarios), want)
	}
	rep := timebounds.RunScenarios(scenarios)
	if err := rep.Err(); err != nil {
		t.Fatalf("fault grid: %v", err)
	}
	faulted, zero := 0, 0
	for _, res := range rep.Results {
		if res.Err != "" {
			t.Errorf("%s: hard failure: %s", res.Name, res.Err)
			continue
		}
		if res.Fault == nil {
			zero++
			if strings.Contains(res.Name, "faults=") {
				t.Errorf("%s: faulted name but no fault report", res.Name)
			}
			if !res.OK() {
				t.Errorf("%s: zero-fault run not OK", res.Name)
			}
			continue
		}
		faulted++
		switch res.Fault.Verdict {
		case timebounds.VerdictWithinBound:
			if len(res.Fault.Breaches) != 0 {
				t.Errorf("%s: clean horn carries %d breaches", res.Name, len(res.Fault.Breaches))
			}
		case timebounds.VerdictAssumptionBroken:
			if len(res.Fault.Breaches) == 0 {
				t.Errorf("%s: broken horn names no breach", res.Name)
			}
		default:
			t.Errorf("%s: verdict %q is neither dichotomy horn", res.Name, res.Fault.Verdict)
		}
	}
	if wantZero := len(grid.Backends) * len(grid.Seeds); zero != wantZero {
		t.Errorf("zero-fault runs = %d, want %d", zero, wantZero)
	}
	if wantFaulted := len(scenarios) - len(grid.Backends)*len(grid.Seeds); faulted != wantFaulted {
		t.Errorf("faulted runs = %d, want %d", faulted, wantFaulted)
	}
}

func TestConformanceFaultGridDeterministicAcrossParallelism(t *testing.T) {
	// The fault axis must not cost the engine its determinism guarantee:
	// the full fault grid — zero-fault and faulted runs alike — yields a
	// bit-identical Report at parallelism 1 and 8. In particular the
	// zero-fault runs pin the pay-for-what-you-use regression: a grid that
	// merely carries a fault axis must not perturb fault-free results.
	scenarios := faultConformanceGrid().Scenarios()
	sequential := timebounds.NewEngine(1).Run(scenarios)
	parallel := timebounds.NewEngine(8).Run(scenarios)
	if !reflect.DeepEqual(sequential, parallel) {
		t.Errorf("fault grid reports differ between parallelism 1 and 8")
	}
}
