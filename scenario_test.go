package timebounds_test

// Scenario/Engine facade tests: every bundled data type runs one small
// scenario on every backend, every history linearizes, and measured
// latencies respect the Chapter V upper bounds; engine grids are
// deterministic regardless of parallelism.

import (
	"reflect"
	"testing"
	"time"

	"timebounds"
)

func scenarioParams(n int) timebounds.Params {
	return timebounds.Params{N: n, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
}

// constructors lists every bundled data type constructor in timebounds.go.
func constructors() map[string]timebounds.DataType {
	return map[string]timebounds.DataType{
		"register":     timebounds.NewRegister(0),
		"rmw-register": timebounds.NewRMWRegister(0),
		"queue":        timebounds.NewQueue(),
		"stack":        timebounds.NewStack(),
		"set":          timebounds.NewSet(),
		"tree":         timebounds.NewTree(),
		"counter":      timebounds.NewCounter(),
		"dict":         timebounds.NewDict(),
		"pqueue":       timebounds.NewPQueue(),
		"account":      timebounds.NewAccount(),
	}
}

func TestScenarioEveryTypeEveryBackend(t *testing.T) {
	// One small scenario per bundled data type per backend: the history
	// must linearize, replicas must converge, and measured latencies must
	// respect each backend's class bounds — in particular Algorithm 1's
	// Chapter V envelope (MOP ≤ ε+X, AOP ≤ d+ε-X, OOP ≤ d+ε).
	for name, dt := range constructors() {
		for _, backend := range timebounds.Backends() {
			res, err := timebounds.RunScenario(timebounds.Scenario{
				Backend:  backend,
				DataType: dt,
				Params:   scenarioParams(3),
				Seed:     11,
				Workload: timebounds.Workload{OpsPerProcess: 3},
				Verify:   true,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", backend.Name(), name, err)
			}
			if !res.Checked || !res.Linearizable {
				t.Errorf("%s/%s: history not linearizable:\n%s", backend.Name(), name, res.History)
			}
			if !res.Converged {
				t.Errorf("%s/%s: replicas diverged", backend.Name(), name)
			}
			if len(res.Bounds) == 0 {
				t.Errorf("%s/%s: no bound checks", backend.Name(), name)
			}
			for _, b := range res.Bounds {
				if !b.OK {
					t.Errorf("%s/%s: class %s worst latency %s exceeds bound %s",
						backend.Name(), name, b.Class, b.Measured, b.Bound)
				}
			}
		}
	}
}

func TestScenarioAlgorithm1ChapterVBounds(t *testing.T) {
	// Under worst-case delays the measured extremes meet the Chapter V
	// formulas exactly on the register: writes at ε+X, reads at d+ε-X.
	p := scenarioParams(4)
	p.Epsilon = p.OptimalSkew()
	x := 2 * time.Millisecond
	res, err := timebounds.RunScenario(timebounds.Scenario{
		DataType: timebounds.NewRegister(0),
		Params:   p,
		X:        x,
		Seed:     5,
		Delay:    timebounds.DelaySpec{Mode: timebounds.DelayWorst},
		Workload: timebounds.Workload{
			Mix: timebounds.OpMix{
				{Kind: timebounds.OpWrite, Weight: 1, Arg: func(i int) timebounds.Value { return i }},
				{Kind: timebounds.OpRead, Weight: 1},
			},
			OpsPerProcess: 6,
		},
	})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if got, want := res.PerKind[timebounds.OpWrite].Max, p.Epsilon+x; got != want {
		t.Errorf("worst write %s, want ε+X = %s", got, want)
	}
	if got, want := res.PerKind[timebounds.OpRead].Max, p.D+p.Epsilon-x; got != want {
		t.Errorf("worst read %s, want d+ε-X = %s", got, want)
	}
}

func TestEngineGridDeterministic(t *testing.T) {
	// A ≥16-scenario grid must yield a bit-identical Report regardless of
	// worker count (sequential vs. maximally parallel).
	grid := timebounds.Grid{
		Backends: timebounds.Backends(),
		Objects:  []timebounds.DataType{timebounds.NewRMWRegister(0), timebounds.NewQueue()},
		Params:   []timebounds.Params{scenarioParams(3), scenarioParams(4)},
		Seeds:    []int64{1},
		Workloads: []timebounds.Workload{
			{OpsPerProcess: 3},
		},
		Verify: true,
	}
	scenarios := grid.Scenarios()
	if len(scenarios) < 16 {
		t.Fatalf("grid expanded to %d scenarios, want ≥ 16", len(scenarios))
	}
	sequential := timebounds.NewEngine(1).Run(scenarios)
	parallel := timebounds.NewEngine(8).Run(scenarios)
	if err := parallel.Err(); err != nil {
		t.Fatalf("grid run: %v", err)
	}
	if !reflect.DeepEqual(sequential, parallel) {
		t.Errorf("parallel report differs from sequential report")
	}
	// And re-running the same scenarios reproduces the report exactly.
	again := timebounds.NewEngine(0).Run(scenarios)
	if !reflect.DeepEqual(parallel, again) {
		t.Errorf("same seed did not reproduce an identical report")
	}
	for i, res := range parallel.Results {
		if res.Ops == 0 {
			t.Errorf("scenario %d (%s): empty run", i, res.Name)
		}
	}
}

func TestRaceWorkloadStaysLinearizable(t *testing.T) {
	// Maximal-contention racing writes from every process at identical
	// instants — the lower-bound construction shape — still linearize.
	p := scenarioParams(3)
	res, err := timebounds.RunScenario(timebounds.Scenario{
		DataType: timebounds.NewRegister(0),
		Params:   p,
		Seed:     2,
		Delay:    timebounds.DelaySpec{Mode: timebounds.DelayExtremal},
		Workload: timebounds.RaceWorkload(p, p.D, 2*p.D, 2, timebounds.OpWrite, timebounds.OpRead),
		Verify:   true,
	})
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if !res.Linearizable {
		t.Errorf("racing history not linearizable:\n%s", res.History)
	}
}

func TestConfigScenarioBridge(t *testing.T) {
	// The deprecated Config surface and the Scenario bridge build the same
	// world: identical history for identical coordinates.
	cfg := facadeConfig(3)
	cluster, err := timebounds.NewCluster(cfg, timebounds.NewRegister(0))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cluster.Invoke(0, 0, timebounds.OpWrite, 7)
	cluster.Invoke(30*time.Millisecond, 1, timebounds.OpRead, nil)
	if err := cluster.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}

	sc := cfg.Scenario(timebounds.NewRegister(0))
	sc.Workload = timebounds.Workload{Explicit: []timebounds.Invocation{
		{At: 0, Proc: 0, Kind: timebounds.OpWrite, Arg: 7},
		{At: 30 * time.Millisecond, Proc: 1, Kind: timebounds.OpRead},
	}}
	res, err := timebounds.RunScenario(sc)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if got, want := res.History.String(), cluster.History().String(); got != want {
		t.Errorf("scenario history differs from shim history:\n%s\nvs\n%s", got, want)
	}
}

func TestBackendAndDelayLookups(t *testing.T) {
	for _, b := range timebounds.Backends() {
		got, err := timebounds.BackendByName(b.Name())
		if err != nil || got.Name() != b.Name() {
			t.Errorf("BackendByName(%q) = %v, %v", b.Name(), got, err)
		}
	}
	if _, err := timebounds.BackendByName("nope"); err == nil {
		t.Error("BackendByName accepted an unknown backend")
	}
	for _, m := range []timebounds.DelayMode{timebounds.DelayRandom, timebounds.DelayWorst, timebounds.DelayBest, timebounds.DelayExtremal} {
		got, err := timebounds.DelayModeByName(m.String())
		if err != nil || got != m {
			t.Errorf("DelayModeByName(%q) = %v, %v", m, got, err)
		}
	}
	if _, err := timebounds.DelayModeByName("nope"); err == nil {
		t.Error("DelayModeByName accepted an unknown mode")
	}
}
