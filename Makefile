GO ?= go

.PHONY: build test bench vet fmt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

test: vet
	$(GO) test -race ./...

# Benchmarks report simulated-model-time latencies as custom *-ms metrics;
# ns/op measures simulator throughput. Record trajectories with -count.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
