GO ?= go

.PHONY: build test test-adversary bench vet fmt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

test: vet
	$(GO) test -race ./...

# The lower-bound adversary suites: engine witness machinery, the theorem
# run families (correct witness ≥ bound, premature violation, shift
# threshold), the cross-backend conformance grid, and the checker property
# tests that back them.
test-adversary:
	$(GO) test -race -run 'Adversary|Witness|Conformance|Theorem|Figure1|Premature|Shrunk|Property|Family' ./internal/engine ./internal/adversary ./internal/check .

# Benchmarks report simulated-model-time latencies as custom *-ms metrics;
# ns/op measures simulator throughput. Record trajectories with -count.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
