GO ?= go

.PHONY: build test test-adversary bench bench-json vet fmt

build:
	$(GO) build ./...

# vet = go vet plus the repo's supplementary checks (cmd/tbvet):
# every package must carry a package-level doc comment.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/tbvet .

fmt:
	gofmt -l .

test: vet
	$(GO) test -race ./...

# The lower-bound adversary suites: engine witness machinery, the theorem
# run families (correct witness ≥ bound, premature violation, shift
# threshold), the cross-backend conformance grid, and the checker property
# tests that back them.
test-adversary:
	$(GO) test -race -run 'Adversary|Witness|Conformance|Theorem|Figure1|Premature|Shrunk|Property|Family' ./internal/engine ./internal/adversary ./internal/check .

# Benchmarks report simulated-model-time latencies as custom *-ms metrics;
# ns/op measures simulator throughput. Record trajectories with -count.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json records one point on the benchmark trajectory: the tracked
# hot-path suite (internal/perf — large verified grid, Wing–Gong checker,
# sim event loop) written as BENCH_<date>.json at the repo root. An
# existing file gains an appended point (a trajectory is history — it is
# never silently truncated); see docs/PERFORMANCE.md.
bench-json:
	$(GO) run ./cmd/tbbench $(BENCH_ARGS)
