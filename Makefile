GO ?= go

.PHONY: build test test-adversary test-faults test-keyspace test-live fuzz-smoke bench bench-json bench-compare cover vet vet-json fmt examples

build:
	$(GO) build ./...

# vet = go vet plus the repo's own analyzer suite (cmd/tbvet over
# internal/lint): determinism (no time.Now / global math/rand / unsorted
# map-order output in sim|engine|check|workload; internal/live is in
# scope but carries a recorded exemption — wall-clock is its point),
# hotpath (//tb:hotpath functions stay fmt-free, boxing-free,
# closure-capture-free), ctxhygiene (pipeline goroutine sends guarded by
# a cancellation arm), deprecated (no references to Deprecated-marked
# symbols or struct fields outside their declaring package), and pkgdoc
# (every package documented). See docs/STATIC_ANALYSIS.md; suppress a
# finding only with a reasoned //tbvet:ignore directive.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/tbvet .

# The CI lint artifact: the same suite, machine-readable. @-silenced so
# `make vet-json > findings.json` captures pure JSON.
vet-json:
	@$(GO) run ./cmd/tbvet -json .

fmt:
	gofmt -l .

test: vet
	$(GO) test -race ./...

# Coverage summary per package (uploaded as a CI artifact).
cover:
	$(GO) test -cover ./...

# Smoke-run every examples/ main end to end (each declares its own tiny
# grid, so the whole sweep is a few seconds). CI runs this so a facade or
# engine change cannot silently break a documented walkthrough.
examples:
	@set -e; for dir in examples/*/; do \
		echo "== $$dir"; \
		$(GO) run ./$$dir > /dev/null; \
	done; echo "all examples ran clean"

# The lower-bound adversary suites: engine witness machinery, the theorem
# run families (correct witness ≥ bound, premature violation, shift
# threshold), the cross-backend conformance grid, and the checker property
# tests that back them.
test-adversary:
	$(GO) test -race -run 'Adversary|Witness|Conformance|Theorem|Figure1|Premature|Shrunk|Property|Family' ./internal/engine ./internal/adversary ./internal/check .

# The fault battery: plan/injector unit tests, the replica lifecycle HSM,
# the engine's dichotomy-verdict machinery, the engineered fault adversary
# families (both horns pinned per run), crash-pending history semantics,
# and the facade-level fault conformance grid. Every faulted run must land
# on exactly one dichotomy horn — within the crash-adjusted bound, or a
# breach naming the broken model assumption. See docs/FAULTS.md.
test-faults:
	$(GO) test -race -run 'Fault|Lifecycle|Dichotomy|Horn|Crash|Churn|Drift' ./internal/fault ./internal/core ./internal/history ./internal/engine ./internal/adversary .

# The keyspace/migration suite under the race detector: popularity models
# and streamed keyed schedules, the versioned partition map and migration
# plan algebra, hot-key split planning, the engine's drain-then-cutover
# handoff with its per-epoch + stitched composed verification (including
# the regression where only the stitched cross-epoch check catches a
# corrupted state transfer), the skew sweep, and the facade surface.
test-keyspace:
	$(GO) test -race -run 'Keyspace|Space|Model|Zipf|HotSet|Workload|Partition|Plan|Migrat|Split|Handoff|Stream|Compose|Skew|Sharded' ./internal/keyspace ./internal/workload ./internal/check ./internal/engine ./internal/experiments .

# The live-runtime suite under the race detector: estimator envelope
# safety, tuner wait derivation, in-process and loopback-TCP goroutine
# clusters with post-hoc Wing–Gong checks, the undertuned premature-tuning
# dichotomy regression, and the engine's Runtime-axis integration. Live
# runs are wall-clock (seconds, not simulated), so the hard timeout keeps
# a wedged cluster from hanging CI.
test-live:
	$(GO) test -race -timeout 120s -run 'Estimator|Tuner|TestRun|TestConfig|TestScenarioLive|TestGridRuntimes' ./internal/live ./internal/engine

# A bounded differential-fuzz pass over the linearizability checker: the
# island-decomposed search (sequential and parallel) against the textbook
# Wing–Gong reference on decoded random histories. The committed corpus
# under internal/check/testdata/fuzz replays on every plain `go test`;
# this target additionally mutates for FUZZTIME.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzCheckIslands -fuzztime $(FUZZTIME) ./internal/check

# Benchmarks report simulated-model-time latencies as custom *-ms metrics;
# ns/op measures simulator throughput. Record trajectories with -count.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json records one point on the benchmark trajectory: the tracked
# hot-path suite (internal/perf — large verified grid, sharded store,
# Wing–Gong checker, sim event loop). BENCH_OUT picks the file (default:
# BENCH_<today>.json at the repo root) and BENCH_LABEL the point label —
# the knobs CI uses for its per-run artifact. An existing file gains an
# appended point (a trajectory is history — it is never silently
# truncated); see docs/PERFORMANCE.md.
BENCH_OUT ?=
BENCH_LABEL ?= bench-json
bench-json:
	$(GO) run ./cmd/tbbench -label "$(BENCH_LABEL)" $(if $(BENCH_OUT),-out "$(BENCH_OUT)")

# bench-compare is the regression gate: judge a fresh suite run (or, with
# BENCH_AGAINST, an already-recorded file) against the newest point of
# BENCH_BASELINE (default: the newest committed BENCH_*.json) and fail
# beyond BENCH_TOLERANCE (default 25%). BENCH_METRICS narrows the gated
# metrics (e.g. allocs/op — the machine-independent one CI gates on).
# A zero baseline gets absolute treatment: any drift beyond
# perf.ZeroBaselineEpsilon fails regardless of tolerance.
# The per-package steady-state allocation budgets (internal/perf,
# TestAllocBudgets) run first — an absolute, machine-independent gate
# that names the leaking package before the trajectory diff runs.
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
BENCH_TOLERANCE ?= 0.25
BENCH_METRICS ?=
bench-compare:
	@test -n "$(BENCH_BASELINE)" || { echo "bench-compare: no BENCH_*.json baseline found (set BENCH_BASELINE)"; exit 1; }
	$(GO) test -run TestAllocBudgets ./internal/perf
	$(GO) run ./cmd/tbbench -compare "$(BENCH_BASELINE)" -tolerance $(BENCH_TOLERANCE) $(if $(BENCH_AGAINST),-against "$(BENCH_AGAINST)") $(if $(BENCH_METRICS),-metrics "$(BENCH_METRICS)")
