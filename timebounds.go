// Package timebounds is a faithful, executable reproduction of
// "Time Bounds for Shared Objects in Partially Synchronous Systems"
// (Jiaqi Wang, Texas A&M, 2011; PODC'11 brief announcement).
//
// It provides:
//
//   - Algorithm 1 (Chapter V): a fast linearizable replication algorithm
//     for arbitrary data types in which pure mutators respond in ε+X, pure
//     accessors in d+ε-X, and all other operations in at most d+ε — all
//     well below the folklore 2d — run over a deterministic discrete-event
//     simulation of the partially synchronous model (delays in [d-u, d],
//     clock skew ≤ ε).
//   - The operation algebra of Chapter II (commutativity / permutation /
//     mutator / accessor / overwriter classification) with brute-force
//     classifiers.
//   - A linearizability checker, the time-shift/chop proof machinery of
//     Chapters III–IV, and executable versions of the lower-bound
//     constructions of Theorems C.1, D.1 and E.1.
//   - The per-object bound summaries of Chapter VI (Tables I–IV).
//
// Quick start — declare a Scenario and run it through the Engine:
//
//	res, err := timebounds.RunScenario(timebounds.Scenario{
//		Backend:  timebounds.Algorithm1(),
//		DataType: timebounds.NewRegister(0),
//		Params:   timebounds.Params{N: 4, D: 10 * time.Millisecond, U: 4 * time.Millisecond},
//		Verify:   true,
//	})
//	// res.PerKind, res.Bounds, res.Linearizable, …
//
// Scenario grids (sweeping backends × objects × parameters × workloads ×
// seeds) expand via Grid and run in parallel via Engine; see scenario.go.
// The pre-redesign Config/NewCluster one-shot surface remains as a thin
// deprecated shim over the same engine.
//
// # Facade map
//
// The public surface is grouped into sections (scenario.go carries §1–§7):
//
//   - §1 Core run surface — Scenario, Engine, Grid, Workload, the four
//     backends (Algorithm1, AllOOP, Centralized, TOB), and Result/Report.
//   - §2 Adversaries — DelaySpec delay shaping and the paper's lower-bound
//     constructions as AdversarySpec run families with dichotomy witnesses.
//   - §3 Sharding — ShardedScenario/ShardedWorkload: keyed workloads over
//     per-shard sub-clusters with a composed linearizability verdict.
//   - §4 Streaming & study — Engine.Stream, constant-memory Aggregate, and
//     load-sweep saturation studies (Study, RunStudy).
//   - §5 Faults — FaultSpec injection axes and the within-bound /
//     assumption-broken dichotomy verdict (FaultReport).
//   - §6 Live runtime — Scenario.Runtime: the same declaration executed as
//     a wall-clock goroutine cluster over a real Transport with online
//     (u, d) estimation, adaptive retuning, and post-hoc checking
//     (Runtime, TransportSpec, LiveReport).
//   - §7 Deprecated bridge — the pre-redesign Config surface.
//
// This file (timebounds.go) holds the fundamental aliases (DataType, Time,
// History, …), the bundled data types of Chapter VI, the operation
// algebra, bound tables, proof machinery, and the deprecated Config
// surface.
package timebounds

import (
	"time"

	"timebounds/internal/bounds"
	"timebounds/internal/check"
	"timebounds/internal/engine"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

// Re-exported fundamental types. Aliases keep the internal packages as the
// single source of truth while giving users one import.
type (
	// DataType is a deterministic sequential specification (Chapter II).
	DataType = spec.DataType
	// OpKind names an operation type, e.g. OpRead, OpEnqueue.
	OpKind = spec.OpKind
	// Value is an operation argument or return value.
	Value = spec.Value
	// ProcessID identifies a process (0 … N-1).
	ProcessID = model.ProcessID
	// Time is a point or duration in model time (integer nanoseconds).
	Time = model.Time
	// History is an invocation/response history.
	History = history.History
	// CheckResult is a linearizability verdict with a witness order.
	CheckResult = check.Result
	// Table is one of the paper's Tables I–IV.
	Table = bounds.Table
	// DelayPolicy chooses per-message delays for a simulation.
	DelayPolicy = sim.DelayPolicy
)

// Operation kinds of the bundled data types (Chapter VI).
const (
	OpWrite      = types.OpWrite
	OpRead       = types.OpRead
	OpRMW        = types.OpRMW
	OpEnqueue    = types.OpEnqueue
	OpDequeue    = types.OpDequeue
	OpPeek       = types.OpPeek
	OpPush       = types.OpPush
	OpPop        = types.OpPop
	OpTop        = types.OpTop
	OpIncrement  = types.OpIncrement
	OpGet        = types.OpGet
	OpInsert     = types.OpInsert
	OpRemove     = types.OpRemove
	OpContains   = types.OpContains
	OpTreeInsert = types.OpTreeInsert
	OpTreeDelete = types.OpTreeDelete
	OpTreeSearch = types.OpTreeSearch
	OpTreeDepth  = types.OpTreeDepth
	OpPut        = types.OpPut
	OpDelete     = types.OpDelete
	OpDictGet    = types.OpDictGet
	OpSize       = types.OpSize
	OpPQInsert   = types.OpPQInsert
	OpPQDelMin   = types.OpPQDeleteMin
	OpPQMin      = types.OpPQMin
	OpDeposit    = types.OpDeposit
	OpWithdraw   = types.OpWithdraw
	OpBalance    = types.OpBalance
)

// Edge is the argument of OpTreeInsert.
type Edge = types.Edge

// KV is the argument of OpPut.
type KV = types.KV

// Data type constructors (Chapter VI objects).

// NewRegister returns a read/write register with the given initial value.
func NewRegister(initial Value) DataType { return types.NewRegister(initial) }

// NewRMWRegister returns a read/write/read-modify-write register.
func NewRMWRegister(initial Value) DataType { return types.NewRMWRegister(initial) }

// NewQueue returns an empty FIFO queue (enqueue/dequeue/peek).
func NewQueue() DataType { return types.NewQueue() }

// NewStack returns an empty LIFO stack (push/pop/top).
func NewStack() DataType { return types.NewStack() }

// NewSet returns an empty set (insert/remove/contains).
func NewSet() DataType { return types.NewSet() }

// NewTree returns a rooted tree (insert/delete/search/depth).
func NewTree() DataType { return types.NewTree() }

// NewCounter returns a counter (increment/get).
func NewCounter() DataType { return types.NewCounter() }

// NewDict returns a dictionary (put/delete/dict-get/size).
func NewDict() DataType { return types.NewDict() }

// NewPQueue returns a min-priority queue (pq-insert/pq-delete-min/pq-min).
func NewPQueue() DataType { return types.NewPQueue() }

// NewAccount returns a bank account (deposit/withdraw/balance).
func NewAccount() DataType { return types.NewAccount() }

// Config configures a cluster of Algorithm 1 replicas.
//
// Deprecated: Config predates the Scenario API and survives as a shim; new
// code should declare a Scenario (see Config.Scenario for the bridge).
type Config struct {
	// N is the number of processes (≥ 1; the lower bounds need ≥ 3).
	N int
	// D is the message delay upper bound d.
	D time.Duration
	// U is the message delay uncertainty u; delays lie in [D-U, D].
	U time.Duration
	// Epsilon is the clock skew bound ε. Zero means the optimal
	// (1-1/n)·U of Lundelius–Lynch, which Chapter V assumes.
	Epsilon time.Duration
	// X is the accessor/mutator latency tradeoff in [0, D+Epsilon-U]:
	// pure mutators respond in Epsilon+X, pure accessors in D+Epsilon-X.
	X time.Duration
	// Seed drives the random delay policy when Delay is nil.
	Seed int64
	// Delay optionally fixes the message delay policy. Nil means seeded
	// uniform-random delays over [D-U, D].
	Delay DelayPolicy
	// ClockOffsets optionally fixes per-process clock offsets (pairwise
	// within Epsilon). Nil means offsets spread evenly across [−ε/2, +ε/2].
	ClockOffsets []time.Duration
}

// params converts the public config to model parameters.
func (c Config) params() model.Params {
	p := model.Params{N: c.N, D: c.D, U: c.U, Epsilon: c.Epsilon}
	if p.Epsilon == 0 {
		p.Epsilon = p.OptimalSkew()
	}
	return p
}

// Params exposes the resolved model parameters (with defaulted ε).
func (c Config) Params() model.Params { return c.params() }

// Cluster is a set of Algorithm 1 replicas of one data type wired through
// the deterministic simulator.
//
// Deprecated: Cluster predates the Scenario API; it is now a thin wrapper
// over the engine's Algorithm1 backend instance. New code should build an
// Instance via Scenario.Build or run whole scenarios via RunScenario.
type Cluster struct {
	inner engine.Instance
}

// NewCluster builds a cluster of cfg.N replicas of dt.
//
// Deprecated: declare a Scenario instead and call Scenario.Build (for a
// hand-driven instance) or RunScenario (for a measured run).
func NewCluster(cfg Config, dt DataType) (*Cluster, error) {
	inner, err := cfg.Scenario(dt).Build()
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// Invoke schedules an operation at real time at on process proc. If the
// process still has a pending operation then, the invocation is deferred to
// just after its response.
func (c *Cluster) Invoke(at time.Duration, proc ProcessID, kind OpKind, arg Value) {
	c.inner.Invoke(at, proc, kind, arg)
}

// Run drives the simulation until quiescence or the horizon.
func (c *Cluster) Run(horizon time.Duration) error { return c.inner.Run(horizon) }

// History returns the recorded history.
func (c *Cluster) History() *History { return c.inner.History() }

// DataType returns the replicated data type.
func (c *Cluster) DataType() DataType { return c.inner.DataType() }

// ConvergedState returns the common replica state encoding, or an error if
// replicas diverged.
func (c *Cluster) ConvergedState() (string, error) { return c.inner.ConvergedState() }

// CheckLinearizable decides whether h is a linearizable history of dt.
func CheckLinearizable(dt DataType, h *History) CheckResult { return check.Check(dt, h) }

// Tables returns the paper's Tables I–IV.
func Tables() []Table { return bounds.AllTables() }

// RenderTable formats a table for the given configuration, optionally with
// measured worst-case latencies per row label.
//
// Deprecated: RenderTable is part of the pre-Scenario surface; measured
// columns now come from Engine reports (internal/experiments.MeasureTable).
func RenderTable(t Table, cfg Config, measured map[string]Time) string {
	return bounds.Render(t, cfg.params(), cfg.X, measured)
}

// OptimalSkew returns the optimal clock skew (1-1/n)·u for the config.
func OptimalSkew(cfg Config) time.Duration { return cfg.params().OptimalSkew() }

// Bound formulas (Chapters IV–V), exposed for reporting and tests.

// LowerBoundINSC returns d+min{ε,u,d/3} (Theorem C.1).
func LowerBoundINSC(cfg Config) time.Duration { return bounds.StronglyINSCLower(cfg.params()) }

// LowerBoundMutator returns (1-1/n)·u (Theorem D.1 with k=n).
func LowerBoundMutator(cfg Config) time.Duration {
	p := cfg.params()
	return bounds.PermuteLower(p.N, p.U)
}

// UpperBoundOOP returns d+ε (Theorem D.2 of Chapter V).
func UpperBoundOOP(cfg Config) time.Duration { return bounds.UpperOOP(cfg.params()) }

// UpperBoundMutator returns ε+X.
func UpperBoundMutator(cfg Config) time.Duration {
	return bounds.UpperMutator(cfg.params(), cfg.X)
}

// UpperBoundAccessor returns d+ε-X.
func UpperBoundAccessor(cfg Config) time.Duration {
	return bounds.UpperAccessor(cfg.params(), cfg.X)
}

// UpperBoundPair returns d+2ε (|mop|+|aop|, Chapter V.D).
func UpperBoundPair(cfg Config) time.Duration { return bounds.UpperPair(cfg.params()) }
