package timebounds_test

import (
	"reflect"
	"testing"
	"time"

	"timebounds"
)

// The facade's sharded surface: a keyed workload partitioned into
// engine-managed sub-clusters, composed back into one report.
func facadeShardedScenario(seed int64) timebounds.ShardedScenario {
	return timebounds.ShardedScenario{
		Params: timebounds.Params{N: 3, D: 10 * time.Millisecond, U: 4 * time.Millisecond},
		Seed:   seed,
		Workload: timebounds.ShardedWorkload{
			Keys:   []string{"a", "b", "c", "d"},
			Shards: 2,
			PerKey: timebounds.Workload{OpsPerProcess: 2},
		},
		Verify: true,
	}
}

func TestFacadeRunSharded(t *testing.T) {
	rep, err := timebounds.RunSharded(facadeShardedScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if !rep.Linearizable() {
		t.Fatal("composed store must be linearizable")
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("ran %d shards, want 2", len(rep.Shards))
	}
}

func TestFacadeRunShardedDeterministic(t *testing.T) {
	a, err := timebounds.RunSharded(facadeShardedScenario(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := timebounds.NewEngine(1).RunSharded(facadeShardedScenario(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sharded report differs between default and single-worker engines")
	}
}

func TestFacadeKeyOpConstructors(t *testing.T) {
	rep, err := timebounds.RunSharded(timebounds.ShardedScenario{
		Params: timebounds.Params{N: 2, D: 10 * time.Millisecond, U: 4 * time.Millisecond},
		Workload: timebounds.ShardedWorkload{
			Explicit: []timebounds.KeyOp{
				timebounds.PutKey(0, 0, "k", "v"),
				timebounds.GetKey(50*time.Millisecond, 1, "k"),
				timebounds.DeleteKey(100*time.Millisecond, 0, "k"),
				timebounds.GetKey(150*time.Millisecond, 1, "k"),
			},
		},
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	ops := rep.Shards[0].History.Ops()
	if len(ops) != 4 {
		t.Fatalf("history has %d ops, want 4", len(ops))
	}
	if ops[1].Ret != "v" {
		t.Fatalf("settled get returned %v, want v", ops[1].Ret)
	}
	if ops[3].Ret != nil {
		t.Fatalf("get after delete returned %v, want nil", ops[3].Ret)
	}
}
