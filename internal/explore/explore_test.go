package explore_test

import (
	"context"
	"testing"
	"time"

	"timebounds/internal/core"
	"timebounds/internal/explore"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func params(n int) model.Params {
	p := model.Params{N: n, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	p.Epsilon = p.OptimalSkew()
	return p
}

// rmwScenario races two RMWs plus a late read across the whole lattice.
func rmwScenario(p model.Params, tuning core.Tuning) explore.Scenario {
	return explore.Scenario{
		Params:   p,
		Config:   core.Config{Params: p, Tuning: tuning},
		DataType: types.NewRMWRegister(0),
		Invocations: []explore.Invocation{
			{At: 2 * p.D, Proc: 0, Kind: types.OpRMW, Arg: 1},
			{At: 2*p.D + p.Epsilon - 1, Proc: 1, Kind: types.OpRMW, Arg: 2},
			{At: 8 * p.D, Proc: 2, Kind: types.OpRead},
		},
		MaxMessages: 5,
	}
}

func TestExhaustiveAlgorithmOneCorrectEverywhere(t *testing.T) {
	// Algorithm 1 must pass in EVERY world of the lattice: all
	// combinations of {d-u, d} delays (wrapped over 5 slots) × all
	// {0, -ε} offset assignments within ε.
	p := params(3)
	rep, err := explore.Exhaustive(rmwScenario(p, core.Tuning{}))
	if err != nil {
		t.Fatalf("Exhaustive: %v", err)
	}
	if rep.Worlds == 0 {
		t.Fatal("no worlds explored")
	}
	if !rep.OK() {
		v := rep.Violations[0]
		t.Fatalf("%d/%d worlds violated; first: world=%+v diverged=%v\n%s",
			len(rep.Violations), rep.Worlds, v.World, v.Diverged, v.History)
	}
	t.Logf("explored %d worlds, all linearizable and convergent", rep.Worlds)
}

func TestExhaustiveFindsPrematureViolations(t *testing.T) {
	// A premature self-add (Tuning ablation) must fail in at least one
	// world of the very same lattice.
	p := params(3)
	tuning := core.Tuning{SelfAddDelay: core.OverrideTime{Override: true, Value: 0}}
	rep, err := explore.Exhaustive(rmwScenario(p, tuning))
	if err != nil {
		t.Fatalf("Exhaustive: %v", err)
	}
	if rep.OK() {
		t.Fatalf("premature implementation passed all %d worlds; lattice too weak", rep.Worlds)
	}
	t.Logf("%d/%d worlds violated for the premature implementation",
		len(rep.Violations), rep.Worlds)
}

func TestExhaustiveQueueScenario(t *testing.T) {
	p := params(3)
	sc := explore.Scenario{
		Params:   p,
		Config:   core.Config{Params: p},
		DataType: types.NewQueue(),
		Invocations: []explore.Invocation{
			{At: 2 * p.D, Proc: 0, Kind: types.OpEnqueue, Arg: "a"},
			{At: 2 * p.D, Proc: 1, Kind: types.OpEnqueue, Arg: "b"},
			{At: 6 * p.D, Proc: 2, Kind: types.OpDequeue},
			{At: 9 * p.D, Proc: 2, Kind: types.OpDequeue},
		},
		MaxMessages: 4,
	}
	rep, err := explore.Exhaustive(sc)
	if err != nil {
		t.Fatalf("Exhaustive: %v", err)
	}
	if !rep.OK() {
		v := rep.Violations[0]
		t.Fatalf("queue scenario violated in world %+v:\n%s", v.World, v.History)
	}
}

func TestExhaustiveRejectsBadMenu(t *testing.T) {
	p := params(2)
	sc := explore.Scenario{
		Params:    p,
		Config:    core.Config{Params: p},
		DataType:  types.NewRegister(0),
		DelayMenu: []model.Time{p.D + 1},
	}
	if _, err := explore.Exhaustive(sc); err == nil {
		t.Error("menu delay beyond d accepted")
	}
}

func TestCampaignAllObjects(t *testing.T) {
	p := params(3)
	res, err := explore.Campaign(explore.CampaignConfig{
		Params: p,
		Objects: []spec.DataType{
			types.NewRMWRegister(0),
			types.NewQueue(),
			types.NewStack(),
			types.NewTree(),
			types.NewDict(),
			types.NewPQueue(),
		},
		Seeds:         3,
		OpsPerProcess: 3,
		Verify:        true,
	})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if !res.OK() {
		t.Fatalf("campaign failures: %v", res.Failures)
	}
	if res.Runs == 0 || res.Ops == 0 {
		t.Fatalf("empty campaign: %+v", res)
	}
	if res.WorstLatency > p.D+p.Epsilon {
		t.Errorf("worst latency %s exceeds d+ε", res.WorstLatency)
	}
	t.Logf("campaign: %d runs, %d ops, worst latency %s", res.Runs, res.Ops, res.WorstLatency)
}

// TestCampaignCancelledIsNotOK pins the partial-campaign trap: a
// campaign cut short by its context must not read as a passing one.
func TestCampaignCancelledIsNotOK(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled up front: nothing may run
	res, err := explore.CampaignContext(ctx, explore.CampaignConfig{
		Params:  params(3),
		Objects: []spec.DataType{types.NewRMWRegister(0)},
		Seeds:   2,
	})
	if err != nil {
		t.Fatalf("CampaignContext: %v", err)
	}
	if res.Incomplete == 0 {
		t.Fatal("cancelled campaign reported no incomplete scenarios")
	}
	if res.OK() {
		t.Fatal("cancelled partial campaign claims OK")
	}
}

func TestCampaignDetectsBrokenBounds(t *testing.T) {
	// Shrinking ε below the optimal skew while keeping max-skew offsets
	// is rejected at cluster construction — the campaign surfaces the
	// error rather than silently passing.
	p := params(3)
	p.Epsilon = 0
	_, err := explore.Campaign(explore.CampaignConfig{
		Params:  p,
		Objects: []spec.DataType{types.NewRegister(0)},
		Seeds:   1,
	})
	// With ε=0 the MaxSkewOffsets are all zero, so this actually runs;
	// bounds at ε=0 are tight (mutators respond instantly). Either a clean
	// run or an explicit error is acceptable; a panic is not.
	_ = err
}
