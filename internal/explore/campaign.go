package explore

import (
	"fmt"

	"timebounds/internal/core"
	"timebounds/internal/experiments"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/workload"
)

// CampaignConfig configures a randomized correctness campaign.
type CampaignConfig struct {
	Params model.Params
	// X is Algorithm 1's tradeoff parameter.
	X model.Time
	// Objects are the data types to exercise.
	Objects []spec.DataType
	// Seeds is how many seeds to run per object × policy.
	Seeds int
	// OpsPerProcess sizes each workload; keep small enough for the
	// checker (it is exhaustive in concurrency).
	OpsPerProcess int
	// Verify runs the linearizability checker on every history.
	Verify bool
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	// Runs is the number of workloads executed.
	Runs int
	// Ops is the total number of operations completed.
	Ops int
	// Failures lists human-readable descriptions of every failure.
	Failures []string
	// WorstLatency is the largest completed-operation latency seen.
	WorstLatency model.Time
}

// OK reports whether the campaign saw no failures.
func (r CampaignResult) OK() bool { return len(r.Failures) == 0 }

// policies returns the delay-policy constructors exercised per seed.
func policies(p model.Params) map[string]func(seed int64) sim.DelayPolicy {
	return map[string]func(seed int64) sim.DelayPolicy{
		"random": func(seed int64) sim.DelayPolicy {
			return sim.NewRandomDelay(seed, p.MinDelay(), p.D)
		},
		"slowest":  func(int64) sim.DelayPolicy { return sim.FixedDelay(p.D) },
		"fastest":  func(int64) sim.DelayPolicy { return sim.FixedDelay(p.MinDelay()) },
		"extremal": func(int64) sim.DelayPolicy { return sim.ExtremalDelay{Params: p} },
	}
}

// Campaign runs the randomized sweep: every object × policy × seed gets a
// generated workload; every history must complete, respect the class
// latency bounds, converge across replicas, and (optionally) linearize.
func Campaign(cfg CampaignConfig) (CampaignResult, error) {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return CampaignResult{}, err
	}
	if cfg.Seeds == 0 {
		cfg.Seeds = 5
	}
	if cfg.OpsPerProcess == 0 {
		cfg.OpsPerProcess = 4
	}
	var res CampaignResult
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}
	for _, dt := range cfg.Objects {
		mix := experiments.TableMix(dt)
		for polName, mkPolicy := range policies(p) {
			for seed := int64(1); seed <= int64(cfg.Seeds); seed++ {
				tag := fmt.Sprintf("%s/%s/seed=%d", dt.Name(), polName, seed)
				cluster, err := core.NewCluster(core.Config{Params: p, X: cfg.X}, dt, sim.Config{
					ClockOffsets: core.MaxSkewOffsets(p),
					Delay:        mkPolicy(seed),
					StrictDelays: true,
				})
				if err != nil {
					return res, fmt.Errorf("%s: %w", tag, err)
				}
				sched, err := workload.Generate(p, mix, workload.Options{
					Seed:          seed,
					OpsPerProcess: cfg.OpsPerProcess,
					Spacing:       2 * p.D,
					Start:         p.D,
				})
				if err != nil {
					return res, fmt.Errorf("%s: %w", tag, err)
				}
				rep, err := workload.Run(cluster, sched, workload.RunOptions{Verify: cfg.Verify})
				if err != nil {
					fail("%s: %v", tag, err)
					continue
				}
				res.Runs++
				res.Ops += rep.History.Len()
				if cfg.Verify && !rep.Linearizable {
					fail("%s: history not linearizable", tag)
				}
				if _, err := cluster.ConvergedState(); err != nil {
					fail("%s: %v", tag, err)
				}
				for kind, st := range rep.PerKind {
					bound := classBound(dt, kind, p, cfg.X)
					if st.Max > bound {
						fail("%s: %s worst latency %s exceeds bound %s", tag, kind, st.Max, bound)
					}
					if st.Max > res.WorstLatency {
						res.WorstLatency = st.Max
					}
				}
			}
		}
	}
	return res, nil
}

// classBound returns Algorithm 1's per-class latency bound.
func classBound(dt spec.DataType, kind spec.OpKind, p model.Params, x model.Time) model.Time {
	switch dt.Class(kind) {
	case spec.ClassPureMutator:
		return p.Epsilon + x
	case spec.ClassPureAccessor:
		return p.D + p.Epsilon - x
	default:
		return p.D + p.Epsilon
	}
}
