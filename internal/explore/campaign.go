package explore

import (
	"context"
	"fmt"
	"sort"

	"timebounds/internal/engine"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/workload"
)

// CampaignConfig configures a randomized correctness campaign.
type CampaignConfig struct {
	Params model.Params
	// X is Algorithm 1's tradeoff parameter.
	X model.Time
	// Objects are the data types to exercise.
	Objects []spec.DataType
	// Seeds is how many seeds to run per object × policy.
	Seeds int
	// OpsPerProcess sizes each workload; keep small enough for the
	// checker (it is exhaustive in concurrency).
	OpsPerProcess int
	// Verify runs the linearizability checker on every history.
	Verify bool
	// Workers caps parallelism (≤0 = all cores).
	Workers int
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	// Runs is the number of workloads executed.
	Runs int
	// Ops is the total number of operations completed.
	Ops int
	// Failures lists human-readable descriptions of every failure.
	Failures []string
	// WorstLatency is the largest completed-operation latency seen.
	WorstLatency model.Time
	// Incomplete counts scenarios that never reported because the
	// campaign's context was cancelled; 0 for a complete campaign.
	Incomplete int
}

// OK reports whether the campaign ran to completion with no failures —
// a cancelled partial campaign is not a passing one.
func (r CampaignResult) OK() bool { return len(r.Failures) == 0 && r.Incomplete == 0 }

// Campaign runs the randomized sweep as one engine grid — every object ×
// delay adversary × seed becomes a scenario, executed across the worker
// pool. Every history must complete, respect the class latency bounds,
// converge across replicas, and (optionally) linearize.
func Campaign(cfg CampaignConfig) (CampaignResult, error) {
	return CampaignContext(context.Background(), cfg)
}

// CampaignContext is Campaign with cancellation. It consumes the engine's
// result stream directly — each Result is folded into the campaign tally
// and dropped, so memory stays constant however many scenarios the grid
// expands to. Cancelling ctx returns the tally of the runs that finished.
func CampaignContext(ctx context.Context, cfg CampaignConfig) (CampaignResult, error) {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return CampaignResult{}, err
	}
	if cfg.Seeds == 0 {
		cfg.Seeds = 5
	}
	if cfg.OpsPerProcess == 0 {
		cfg.OpsPerProcess = 4
	}
	seeds := make([]int64, cfg.Seeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	grid := engine.Grid{
		Objects: cfg.Objects,
		Params:  []model.Params{p},
		Xs:      []model.Time{cfg.X},
		Seeds:   seeds,
		Delays: []engine.DelaySpec{
			{Mode: engine.DelayRandom},
			{Mode: engine.DelayWorst},
			{Mode: engine.DelayBest},
			{Mode: engine.DelayExtremal},
		},
		Workloads: []workload.Spec{{
			OpsPerProcess: cfg.OpsPerProcess,
			Spacing:       2 * p.D,
			Start:         p.D,
		}},
		Verify: cfg.Verify,
	}
	var res CampaignResult
	// Results stream in completion order; failures are keyed by input
	// index and sorted at the end so the failure list stays deterministic
	// at any worker count.
	type failure struct {
		index int
		msg   string
	}
	var failures []failure
	scenarios := grid.Scenarios()
	reported := 0
	for i, r := range engine.New(cfg.Workers).Stream(ctx, scenarios) {
		reported++
		fail := func(format string, args ...any) {
			failures = append(failures, failure{i, fmt.Sprintf(format, args...)})
		}
		if r.Err != "" {
			fail("%s: %s", r.Name, r.Err)
			continue
		}
		res.Runs++
		res.Ops += r.Ops
		if r.Checked && !r.Linearizable {
			fail("%s: history not linearizable", r.Name)
		}
		if !r.Converged {
			fail("%s: %s", r.Name, r.Diverged)
		}
		for _, b := range r.Bounds {
			if !b.OK {
				fail("%s: %s worst latency %s exceeds bound %s", r.Name, b.Class, b.Measured, b.Bound)
			}
		}
		if w := r.WorstLatency(); w > res.WorstLatency {
			res.WorstLatency = w
		}
	}
	sort.SliceStable(failures, func(a, b int) bool { return failures[a].index < failures[b].index })
	for _, f := range failures {
		res.Failures = append(res.Failures, f.msg)
	}
	res.Incomplete = len(scenarios) - reported
	return res, nil
}
