package explore

import (
	"fmt"

	"timebounds/internal/engine"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/workload"
)

// CampaignConfig configures a randomized correctness campaign.
type CampaignConfig struct {
	Params model.Params
	// X is Algorithm 1's tradeoff parameter.
	X model.Time
	// Objects are the data types to exercise.
	Objects []spec.DataType
	// Seeds is how many seeds to run per object × policy.
	Seeds int
	// OpsPerProcess sizes each workload; keep small enough for the
	// checker (it is exhaustive in concurrency).
	OpsPerProcess int
	// Verify runs the linearizability checker on every history.
	Verify bool
	// Workers caps parallelism (≤0 = all cores).
	Workers int
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	// Runs is the number of workloads executed.
	Runs int
	// Ops is the total number of operations completed.
	Ops int
	// Failures lists human-readable descriptions of every failure.
	Failures []string
	// WorstLatency is the largest completed-operation latency seen.
	WorstLatency model.Time
}

// OK reports whether the campaign saw no failures.
func (r CampaignResult) OK() bool { return len(r.Failures) == 0 }

// Campaign runs the randomized sweep as one engine grid — every object ×
// delay adversary × seed becomes a scenario, executed across the worker
// pool. Every history must complete, respect the class latency bounds,
// converge across replicas, and (optionally) linearize.
func Campaign(cfg CampaignConfig) (CampaignResult, error) {
	p := cfg.Params
	if err := p.Validate(); err != nil {
		return CampaignResult{}, err
	}
	if cfg.Seeds == 0 {
		cfg.Seeds = 5
	}
	if cfg.OpsPerProcess == 0 {
		cfg.OpsPerProcess = 4
	}
	seeds := make([]int64, cfg.Seeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	grid := engine.Grid{
		Objects: cfg.Objects,
		Params:  []model.Params{p},
		Xs:      []model.Time{cfg.X},
		Seeds:   seeds,
		Delays: []engine.DelaySpec{
			{Mode: engine.DelayRandom},
			{Mode: engine.DelayWorst},
			{Mode: engine.DelayBest},
			{Mode: engine.DelayExtremal},
		},
		Workloads: []workload.Spec{{
			OpsPerProcess: cfg.OpsPerProcess,
			Spacing:       2 * p.D,
			Start:         p.D,
		}},
		Verify: cfg.Verify,
	}
	rep := engine.New(cfg.Workers).Run(grid.Scenarios())
	var res CampaignResult
	for _, r := range rep.Results {
		if r.Err != "" {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: %s", r.Name, r.Err))
			continue
		}
		res.Runs++
		res.Ops += r.Ops
		if r.Checked && !r.Linearizable {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: history not linearizable", r.Name))
		}
		if !r.Converged {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: %s", r.Name, r.Diverged))
		}
		for _, b := range r.Bounds {
			if !b.OK {
				res.Failures = append(res.Failures, fmt.Sprintf(
					"%s: %s worst latency %s exceeds bound %s", r.Name, b.Class, b.Measured, b.Bound))
			}
		}
		if w := r.WorstLatency(); w > res.WorstLatency {
			res.WorstLatency = w
		}
	}
	return res, nil
}
