package explore_test

import (
	"testing"

	"timebounds/internal/core"
	"timebounds/internal/explore"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

// TestSoakCampaign is the wide randomized sweep: every bundled object ×
// every delay policy × many seeds. Skipped under -short.
func TestSoakCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	p := params(4)
	res, err := explore.Campaign(explore.CampaignConfig{
		Params: p,
		Objects: []spec.DataType{
			types.NewRMWRegister(0),
			types.NewQueue(),
			types.NewStack(),
			types.NewTree(),
			types.NewSet(),
			types.NewCounter(),
			types.NewDict(),
			types.NewPQueue(),
			types.NewAccount(),
		},
		Seeds:         6,
		OpsPerProcess: 4,
		Verify:        true,
	})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	if !res.OK() {
		for _, f := range res.Failures {
			t.Error(f)
		}
	}
	t.Logf("soak: %d runs, %d ops, worst latency %s", res.Runs, res.Ops, res.WorstLatency)
}

// TestSoakExhaustiveWiderLattice enumerates a larger lattice (3-delay menu)
// for the RMW race. Skipped under -short.
func TestSoakExhaustiveWiderLattice(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	p := params(3)
	sc := explore.Scenario{
		Params:   p,
		Config:   core.Config{Params: p},
		DataType: types.NewRMWRegister(0),
		Invocations: []explore.Invocation{
			{At: 2 * p.D, Proc: 0, Kind: types.OpRMW, Arg: 1},
			{At: 2*p.D + p.Epsilon - 1, Proc: 1, Kind: types.OpRMW, Arg: 2},
			{At: 8 * p.D, Proc: 2, Kind: types.OpRead},
		},
		// Three-point delay menu: fastest, midpoint, slowest.
		DelayMenu:   []model.Time{p.MinDelay(), p.D - p.U/2, p.D},
		MaxMessages: 6,
	}
	rep, err := explore.Exhaustive(sc)
	if err != nil {
		t.Fatalf("Exhaustive: %v", err)
	}
	if !rep.OK() {
		v := rep.Violations[0]
		t.Fatalf("%d/%d worlds violated; first world %+v:\n%s",
			len(rep.Violations), rep.Worlds, v.World, v.History)
	}
	t.Logf("soak: %d worlds, all correct", rep.Worlds)
}
