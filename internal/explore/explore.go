// Package explore provides two systematic correctness harnesses over the
// simulator:
//
//   - Exhaustive: enumerate the *entire* adversary lattice of a small
//     scenario — every combination of per-message delays drawn from a
//     finite menu (e.g. {d-u, d-u/2, d}) and per-process clock offsets
//     drawn from a finite menu within ε — run the implementation in every
//     resulting admissible world, and check each history for
//     linearizability and each replica set for convergence. For premature
//     implementations it returns the violating worlds; for Algorithm 1 it
//     proves correctness over the whole finite lattice.
//
//   - Campaign: a seeded randomized sweep (seeds × delay policies × skews ×
//     objects) for breadth beyond what exhaustive enumeration can afford.
//
// Both are used by tests and by cmd/tbstress.
package explore

import (
	"fmt"

	"timebounds/internal/check"
	"timebounds/internal/core"
	"timebounds/internal/engine"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
)

// Invocation is one scheduled operation of a scenario.
type Invocation struct {
	At   model.Time
	Proc model.ProcessID
	Kind spec.OpKind
	Arg  spec.Value
}

// Scenario is a fixed operation schedule explored across adversary worlds.
type Scenario struct {
	Params model.Params
	// Config is the Algorithm 1 configuration (X, tuning).
	Config core.Config
	// DataType is the replicated object.
	DataType spec.DataType
	// Invocations is the schedule.
	Invocations []Invocation
	// DelayMenu lists the admissible delays each message may take.
	// Empty defaults to {d-u, d}.
	DelayMenu []model.Time
	// OffsetMenu lists candidate clock offsets per process (assignments
	// whose spread exceeds ε are skipped). Empty defaults to {0, -ε}.
	OffsetMenu []model.Time
	// MaxMessages bounds the per-world message count that gets an
	// independent delay choice; messages beyond the bound reuse the menu
	// cyclically. This caps the lattice at |DelayMenu|^MaxMessages.
	// Zero defaults to 8.
	MaxMessages int
}

// World identifies one point of the adversary lattice.
type World struct {
	// DelayChoice[i] indexes DelayMenu for the i-th message (messages
	// beyond len(DelayChoice) wrap around).
	DelayChoice []int
	// Offsets are the per-process clock offsets.
	Offsets []model.Time
}

// Violation reports one failing world.
type Violation struct {
	World   World
	History *history.History
	// Diverged is non-nil when replicas disagreed after quiescence.
	Diverged error
}

// Report summarizes an exhaustive exploration.
type Report struct {
	// Worlds is the number of adversary worlds executed.
	Worlds int
	// Violations lists every failing world (non-linearizable history or
	// diverged replicas).
	Violations []Violation
}

// OK reports whether no world failed.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Exhaustive enumerates and checks every world of the scenario's lattice.
func Exhaustive(sc Scenario) (Report, error) {
	p := sc.Params
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	delayMenu := sc.DelayMenu
	if len(delayMenu) == 0 {
		delayMenu = []model.Time{p.MinDelay(), p.D}
	}
	for _, d := range delayMenu {
		if d < p.MinDelay() || d > p.D {
			return Report{}, fmt.Errorf("explore: menu delay %s outside [%s, %s]", d, p.MinDelay(), p.D)
		}
	}
	offsetMenu := sc.OffsetMenu
	if len(offsetMenu) == 0 {
		offsetMenu = []model.Time{0, -p.Epsilon}
	}
	maxMsgs := sc.MaxMessages
	if maxMsgs == 0 {
		maxMsgs = 8
	}

	var rep Report
	offsets := make([]model.Time, p.N)
	var enumOffsets func(i int) error
	var enumDelays func(choice []int) error

	runWorld := func(choice []int) error {
		world := World{
			DelayChoice: append([]int(nil), choice...),
			Offsets:     append([]model.Time(nil), offsets...),
		}
		delay := sim.FuncDelay(func(_, _ model.ProcessID, _ model.Time, seq int) model.Time {
			return delayMenu[choice[seq%len(choice)]]
		})
		// Build through the backend, not Scenario.Build: the lattice honors
		// the caller's Params verbatim (including an explicit ε = 0), while
		// Scenario would resolve ε = 0 to the optimal skew.
		inst, err := engine.Algorithm1{Tuning: sc.Config.Tuning}.Build(engine.BuildConfig{
			Params:   sc.Config.Params,
			X:        sc.Config.X,
			DataType: sc.DataType,
			Sim: sim.Config{
				ClockOffsets: world.Offsets,
				Delay:        delay,
				StrictDelays: true,
			},
		})
		if err != nil {
			return err
		}
		for _, inv := range sc.Invocations {
			inst.Invoke(inv.At, inv.Proc, inv.Kind, inv.Arg)
		}
		if err := inst.Run(model.Infinity); err != nil {
			return err
		}
		h := inst.History()
		if !h.Complete() {
			return fmt.Errorf("explore: pending operations in world %v", world)
		}
		rep.Worlds++
		_, convErr := inst.ConvergedState()
		res := check.Check(sc.DataType, h)
		if !res.Linearizable || convErr != nil {
			rep.Violations = append(rep.Violations, Violation{
				World: world, History: h, Diverged: convErr,
			})
		}
		return nil
	}

	enumDelays = func(choice []int) error {
		if len(choice) == maxMsgs {
			return runWorld(choice)
		}
		for i := range delayMenu {
			if err := enumDelays(append(choice, i)); err != nil {
				return err
			}
		}
		return nil
	}

	enumOffsets = func(i int) error {
		if i == p.N {
			// Skip assignments whose spread exceeds ε.
			minO, maxO := offsets[0], offsets[0]
			for _, o := range offsets[1:] {
				if o < minO {
					minO = o
				}
				if o > maxO {
					maxO = o
				}
			}
			if maxO-minO > p.Epsilon {
				return nil
			}
			return enumDelays(make([]int, 0, maxMsgs))
		}
		for _, o := range offsetMenu {
			offsets[i] = o
			if err := enumOffsets(i + 1); err != nil {
				return err
			}
		}
		return nil
	}

	if err := enumOffsets(0); err != nil {
		return Report{}, err
	}
	return rep, nil
}
