// Package model defines the primitive vocabulary shared by every layer of
// the timebounds library: process identifiers, model time, and the
// ⟨clock time, process id⟩ timestamps used by Algorithm 1 (Wang 2011,
// Chapter V) to totally order operations.
//
// All times are "model time": integer nanoseconds inside the deterministic
// discrete-event simulation, not wall-clock time. Real time and clock time
// are both expressed as Time; a process's clock time is its real time plus a
// constant offset (clocks run at the rate of real time, Chapter III.B.2).
package model

import (
	"fmt"
	"time"
)

// ProcessID identifies one of the n processes in the system. IDs are dense,
// starting at 0, so they double as slice indices.
type ProcessID int

// String implements fmt.Stringer.
func (p ProcessID) String() string { return fmt.Sprintf("p%d", int(p)) }

// Time is a point in model time (real time or clock time, depending on
// context). It is a time.Duration offset from the simulation epoch.
type Time = time.Duration

// Infinity is a time later than any event in a finite simulation. It is used
// as the horizon for "run forever" and as the initial minimum in scans.
const Infinity Time = 1<<63 - 1

// Timestamp is the logical timestamp ⟨clock time, process id⟩ attached to
// every broadcast operation in Algorithm 1. Timestamps are totally ordered
// lexicographically: first by clock time, then by process id.
type Timestamp struct {
	// Clock is the local clock time at which the operation was stamped.
	// Pure accessors stamp with (invocation clock time - X), pretending to
	// have been invoked X earlier (Chapter V.A.2).
	Clock Time
	// Proc is the invoking process, used as the tie-breaker.
	Proc ProcessID
}

// Less reports whether t orders strictly before o.
func (t Timestamp) Less(o Timestamp) bool {
	if t.Clock != o.Clock {
		return t.Clock < o.Clock
	}
	return t.Proc < o.Proc
}

// Compare returns -1, 0 or +1 as t orders before, equal to or after o.
func (t Timestamp) Compare(o Timestamp) int {
	switch {
	case t.Less(o):
		return -1
	case o.Less(t):
		return 1
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (t Timestamp) String() string {
	return fmt.Sprintf("⟨%s,%s⟩", t.Clock, t.Proc)
}

// Params bundles the timing parameters of the partially synchronous system
// model (Chapter III): message delays fall in [D-U, D] and the pairwise
// clock skew is bounded by Epsilon.
type Params struct {
	// N is the number of processes.
	N int
	// D is the message delay upper bound (d in the paper).
	D Time
	// U is the message delay uncertainty (u in the paper); delays are drawn
	// from [D-U, D]. Requires 0 <= U <= D.
	U Time
	// Epsilon is the bound on pairwise clock skew (ε in the paper).
	Epsilon Time
}

// Validate reports whether the parameters describe a well-formed system.
func (p Params) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("model: N must be >= 1, got %d", p.N)
	case p.D <= 0:
		return fmt.Errorf("model: D must be > 0, got %s", p.D)
	case p.U < 0 || p.U > p.D:
		return fmt.Errorf("model: U must be in [0, D=%s], got %s", p.D, p.U)
	case p.Epsilon < 0:
		return fmt.Errorf("model: Epsilon must be >= 0, got %s", p.Epsilon)
	}
	return nil
}

// MinDelay returns the smallest admissible message delay, D-U.
func (p Params) MinDelay() Time { return p.D - p.U }

// OptimalSkew returns the optimal achievable clock skew (1-1/n)·u proved by
// Lundelius and Lynch (1984) and assumed by Chapter V.
func (p Params) OptimalSkew() Time {
	if p.N == 0 {
		return 0
	}
	return Time(int64(p.U) * int64(p.N-1) / int64(p.N))
}

// MinOf3 returns min{a, b, c}; used for the recurring bound term
// min{ε, u, d/3}.
func MinOf3(a, b, c Time) Time {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}
