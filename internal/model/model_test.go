package model

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimestampOrdering(t *testing.T) {
	tests := []struct {
		a, b Timestamp
		less bool
	}{
		{Timestamp{1, 0}, Timestamp{2, 0}, true},
		{Timestamp{2, 0}, Timestamp{1, 0}, false},
		{Timestamp{1, 0}, Timestamp{1, 1}, true},
		{Timestamp{1, 1}, Timestamp{1, 0}, false},
		{Timestamp{1, 1}, Timestamp{1, 1}, false},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.less {
			t.Errorf("%v.Less(%v) = %v, want %v", tt.a, tt.b, got, tt.less)
		}
	}
}

func TestTimestampCompareConsistentWithLess(t *testing.T) {
	f := func(c1, c2 int32, p1, p2 uint8) bool {
		a := Timestamp{Clock: Time(c1), Proc: ProcessID(p1)}
		b := Timestamp{Clock: Time(c2), Proc: ProcessID(p2)}
		switch a.Compare(b) {
		case -1:
			return a.Less(b) && !b.Less(a)
		case 1:
			return b.Less(a) && !a.Less(b)
		default:
			return !a.Less(b) && !b.Less(a)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimestampTotalOrder(t *testing.T) {
	// Antisymmetry + transitivity on a small grid.
	var all []Timestamp
	for c := 0; c < 3; c++ {
		for p := 0; p < 3; p++ {
			all = append(all, Timestamp{Clock: Time(c), Proc: ProcessID(p)})
		}
	}
	for _, a := range all {
		for _, b := range all {
			if a.Less(b) && b.Less(a) {
				t.Fatalf("both %v < %v and %v < %v", a, b, b, a)
			}
			for _, c := range all {
				if a.Less(b) && b.Less(c) && !a.Less(c) {
					t.Fatalf("transitivity broken: %v %v %v", a, b, c)
				}
			}
		}
	}
}

func TestParamsValidate(t *testing.T) {
	ok := Params{N: 3, D: 10 * time.Millisecond, U: 4 * time.Millisecond, Epsilon: time.Millisecond}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{N: 0, D: time.Millisecond},
		{N: 1, D: 0},
		{N: 1, D: time.Millisecond, U: -1},
		{N: 1, D: time.Millisecond, U: 2 * time.Millisecond},
		{N: 1, D: time.Millisecond, Epsilon: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestOptimalSkew(t *testing.T) {
	tests := []struct {
		n    int
		u    Time
		want Time
	}{
		{2, 4 * time.Millisecond, 2 * time.Millisecond},
		{4, 4 * time.Millisecond, 3 * time.Millisecond},
		{8, 4 * time.Millisecond, 3500 * time.Microsecond},
		{1, 4 * time.Millisecond, 0},
	}
	for _, tt := range tests {
		p := Params{N: tt.n, U: tt.u}
		if got := p.OptimalSkew(); got != tt.want {
			t.Errorf("n=%d: OptimalSkew = %s, want %s", tt.n, got, tt.want)
		}
	}
	if (Params{}).OptimalSkew() != 0 {
		t.Error("zero params should yield zero skew")
	}
}

func TestMinOf3(t *testing.T) {
	if MinOf3(3, 1, 2) != 1 || MinOf3(1, 2, 3) != 1 || MinOf3(2, 3, 1) != 1 {
		t.Error("MinOf3 wrong")
	}
	if MinOf3(5, 5, 5) != 5 {
		t.Error("MinOf3 equal case wrong")
	}
}

func TestMinDelay(t *testing.T) {
	p := Params{N: 2, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	if p.MinDelay() != 6*time.Millisecond {
		t.Errorf("MinDelay = %s", p.MinDelay())
	}
}

func TestStringers(t *testing.T) {
	if ProcessID(3).String() != "p3" {
		t.Errorf("ProcessID stringer: %s", ProcessID(3))
	}
	ts := Timestamp{Clock: time.Millisecond, Proc: 1}
	if ts.String() == "" {
		t.Error("empty timestamp string")
	}
}
