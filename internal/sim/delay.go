// Package sim is a deterministic discrete-event simulator realizing the
// system model of Chapter III: n processes modeled as state machines driven
// by operation invocations, message receipts and timer expirations; a
// reliable message-passing layer whose delays lie in [d-u, d]; and
// drift-free local clocks offset from real time by at most ε pairwise.
//
// Determinism: events are ordered by (real time, sequence number), and all
// randomness comes from explicitly seeded policies, so a run is a pure
// function of its configuration.
package sim

import (
	"fmt"
	"math/rand"

	"timebounds/internal/model"
)

// DelayPolicy chooses the delay of each message. Implementations must be
// deterministic functions of their own state and the call arguments.
type DelayPolicy interface {
	// Delay returns the message delay for the seq-th message overall, sent
	// from one process to another at the given real time.
	Delay(from, to model.ProcessID, sentAt model.Time, seq int) model.Time
}

// FixedDelay delays every message by the same amount.
type FixedDelay model.Time

var _ DelayPolicy = FixedDelay(0)

// Delay implements DelayPolicy.
func (f FixedDelay) Delay(_, _ model.ProcessID, _ model.Time, _ int) model.Time {
	return model.Time(f)
}

// MatrixDelay assigns pairwise-uniform delays: every message from i to j
// takes M[i][j]. This is the delay shape used throughout the lower-bound
// constructions of Chapter IV.
type MatrixDelay struct {
	M [][]model.Time
}

var _ DelayPolicy = MatrixDelay{}

// NewMatrixDelay builds an n×n matrix with every entry set to def.
func NewMatrixDelay(n int, def model.Time) MatrixDelay {
	m := make([][]model.Time, n)
	for i := range m {
		m[i] = make([]model.Time, n)
		for j := range m[i] {
			m[i][j] = def
		}
	}
	return MatrixDelay{M: m}
}

// Set assigns the delay from process i to process j and returns the policy
// for chaining.
func (m MatrixDelay) Set(i, j model.ProcessID, d model.Time) MatrixDelay {
	m.M[i][j] = d
	return m
}

// Delay implements DelayPolicy.
func (m MatrixDelay) Delay(from, to model.ProcessID, _ model.Time, _ int) model.Time {
	return m.M[from][to]
}

// RandomDelay draws each delay independently and uniformly from
// [Min, Max], using a deterministic seeded source.
type RandomDelay struct {
	Min, Max model.Time
	rng      *rand.Rand
}

var _ DelayPolicy = (*RandomDelay)(nil)

// NewRandomDelay returns a seeded uniform-delay policy over [min, max].
func NewRandomDelay(seed int64, min, max model.Time) *RandomDelay {
	return &RandomDelay{Min: min, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay implements DelayPolicy.
func (r *RandomDelay) Delay(_, _ model.ProcessID, _ model.Time, _ int) model.Time {
	if r.Max <= r.Min {
		return r.Min
	}
	return r.Min + model.Time(r.rng.Int63n(int64(r.Max-r.Min)+1))
}

// FuncDelay adapts a function to a DelayPolicy.
type FuncDelay func(from, to model.ProcessID, sentAt model.Time, seq int) model.Time

var _ DelayPolicy = FuncDelay(nil)

// Delay implements DelayPolicy.
func (f FuncDelay) Delay(from, to model.ProcessID, sentAt model.Time, seq int) model.Time {
	return f(from, to, sentAt, seq)
}

// ExtremalDelay alternates deterministically between the fastest (d-u) and
// slowest (d) admissible delays based on message parity of the (from, to)
// pair, exercising maximal reordering without randomness.
type ExtremalDelay struct {
	Params model.Params
}

var _ DelayPolicy = ExtremalDelay{}

// Delay implements DelayPolicy.
func (e ExtremalDelay) Delay(from, to model.ProcessID, _ model.Time, seq int) model.Time {
	if (int(from)+int(to)+seq)%2 == 0 {
		return e.Params.D
	}
	return e.Params.MinDelay()
}

// ValidateDelay checks that a chosen delay is admissible under p.
func ValidateDelay(p model.Params, d model.Time) error {
	if d < p.MinDelay() || d > p.D {
		return fmt.Errorf("sim: delay %s outside admissible range [%s, %s]", d, p.MinDelay(), p.D)
	}
	return nil
}
