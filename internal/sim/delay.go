// Package sim is a deterministic discrete-event simulator realizing the
// system model of Chapter III: n processes modeled as state machines driven
// by operation invocations, message receipts and timer expirations; a
// reliable message-passing layer whose delays lie in [d-u, d]; and
// drift-free local clocks offset from real time by at most ε pairwise.
//
// Determinism: events are ordered by (real time, sequence number), and all
// randomness comes from explicitly seeded policies, so a run is a pure
// function of its configuration.
package sim

import (
	"fmt"
	"math/rand"

	"timebounds/internal/model"
)

// DelayPolicy chooses the delay of each message. Implementations must be
// deterministic functions of their own state and the call arguments.
type DelayPolicy interface {
	// Delay returns the message delay for the seq-th message overall, sent
	// from one process to another at the given real time.
	Delay(from, to model.ProcessID, sentAt model.Time, seq int) model.Time
}

// StaticDelays is implemented by delay policies whose delay depends only
// on the (from, to) pair — never on send time or message sequence. The
// simulator flattens such a policy into an n×n matrix once per run, so
// each Send costs a slice index instead of an interface call. FixedDelay
// and MatrixDelay — the shapes used by every lower-bound construction —
// qualify; time- or sequence-dependent policies must not implement it.
type StaticDelays interface {
	// DelayMatrix returns the row-major n×n delay matrix
	// (entry [from*n+to]) and true, or false if the policy cannot commit
	// to a static matrix for this n.
	DelayMatrix(n int) ([]model.Time, bool)
}

// FixedDelay delays every message by the same amount.
type FixedDelay model.Time

var _ DelayPolicy = FixedDelay(0)

// Delay implements DelayPolicy.
func (f FixedDelay) Delay(_, _ model.ProcessID, _ model.Time, _ int) model.Time {
	return model.Time(f)
}

// DelayMatrix implements StaticDelays.
func (f FixedDelay) DelayMatrix(n int) ([]model.Time, bool) {
	mat := make([]model.Time, n*n)
	for i := range mat {
		mat[i] = model.Time(f)
	}
	return mat, true
}

// MatrixDelay assigns pairwise-uniform delays: every message from i to j
// takes M[i][j]. This is the delay shape used throughout the lower-bound
// constructions of Chapter IV.
type MatrixDelay struct {
	M [][]model.Time
}

var _ DelayPolicy = MatrixDelay{}

// NewMatrixDelay builds an n×n matrix with every entry set to def.
func NewMatrixDelay(n int, def model.Time) MatrixDelay {
	m := make([][]model.Time, n)
	for i := range m {
		m[i] = make([]model.Time, n)
		for j := range m[i] {
			m[i][j] = def
		}
	}
	return MatrixDelay{M: m}
}

// Set assigns the delay from process i to process j and returns the policy
// for chaining.
func (m MatrixDelay) Set(i, j model.ProcessID, d model.Time) MatrixDelay {
	m.M[i][j] = d
	return m
}

// Delay implements DelayPolicy.
func (m MatrixDelay) Delay(from, to model.ProcessID, _ model.Time, _ int) model.Time {
	return m.M[from][to]
}

// DelayMatrix implements StaticDelays by flattening M. The flattened copy
// is taken at simulator construction; later Set calls do not affect a
// running simulator (policies must be deterministic anyway).
func (m MatrixDelay) DelayMatrix(n int) ([]model.Time, bool) {
	if len(m.M) != n {
		return nil, false
	}
	mat := make([]model.Time, 0, n*n)
	for _, row := range m.M {
		if len(row) != n {
			return nil, false
		}
		mat = append(mat, row...)
	}
	return mat, true
}

// RandomDelay draws each delay independently and uniformly from
// [Min, Max], using a deterministic seeded source.
type RandomDelay struct {
	Min, Max model.Time
	rng      *rand.Rand
}

var _ DelayPolicy = (*RandomDelay)(nil)

// NewRandomDelay returns a seeded uniform-delay policy over [min, max].
func NewRandomDelay(seed int64, min, max model.Time) *RandomDelay {
	return &RandomDelay{Min: min, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// Delay implements DelayPolicy.
func (r *RandomDelay) Delay(_, _ model.ProcessID, _ model.Time, _ int) model.Time {
	if r.Max <= r.Min {
		return r.Min
	}
	return r.Min + model.Time(r.rng.Int63n(int64(r.Max-r.Min)+1))
}

// FuncDelay adapts a function to a DelayPolicy.
type FuncDelay func(from, to model.ProcessID, sentAt model.Time, seq int) model.Time

var _ DelayPolicy = FuncDelay(nil)

// Delay implements DelayPolicy.
func (f FuncDelay) Delay(from, to model.ProcessID, sentAt model.Time, seq int) model.Time {
	return f(from, to, sentAt, seq)
}

// ExtremalDelay alternates deterministically between the fastest (d-u) and
// slowest (d) admissible delays based on message parity of the (from, to)
// pair, exercising maximal reordering without randomness.
type ExtremalDelay struct {
	Params model.Params
}

var _ DelayPolicy = ExtremalDelay{}

// Delay implements DelayPolicy.
func (e ExtremalDelay) Delay(from, to model.ProcessID, _ model.Time, seq int) model.Time {
	if (int(from)+int(to)+seq)%2 == 0 {
		return e.Params.D
	}
	return e.Params.MinDelay()
}

// ValidateDelay checks that a chosen delay is admissible under p.
func ValidateDelay(p model.Params, d model.Time) error {
	if d < p.MinDelay() || d > p.D {
		return fmt.Errorf("sim: delay %s outside admissible range [%s, %s]", d, p.MinDelay(), p.D)
	}
	return nil
}
