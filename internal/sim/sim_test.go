package sim_test

import (
	"testing"
	"time"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
)

func params(n int) model.Params {
	return model.Params{
		N:       n,
		D:       10 * time.Millisecond,
		U:       4 * time.Millisecond,
		Epsilon: 3 * time.Millisecond,
	}
}

// echoProc responds to every invocation immediately with its argument, and
// can ping-pong messages and set timers, for exercising the simulator.
type echoProc struct {
	gotMsgs   []any
	timerFire []model.Time
}

func (e *echoProc) OnInvoke(env sim.Env, id history.OpID, kind spec.OpKind, arg spec.Value) {
	switch kind {
	case "echo":
		env.Respond(id, arg)
	case "send":
		env.Send(model.ProcessID(arg.(int)), "ping")
		env.Respond(id, nil)
	case "broadcast":
		env.Broadcast("hello")
		env.Respond(id, nil)
	case "timer":
		env.SetTimerAfter(arg.(model.Time), "t")
		env.Respond(id, nil)
	case "timer-cancel":
		tid := env.SetTimerAfter(arg.(model.Time), "t")
		env.CancelTimer(tid)
		env.Respond(id, nil)
	}
}

func (e *echoProc) OnMessage(_ sim.Env, _ model.ProcessID, payload any) {
	e.gotMsgs = append(e.gotMsgs, payload)
}

func (e *echoProc) OnTimer(env sim.Env, _ any) {
	e.timerFire = append(e.timerFire, env.ClockTime())
}

func newSim(t *testing.T, cfg sim.Config, n int) (*sim.Simulator, []*echoProc) {
	t.Helper()
	if cfg.Params.N == 0 {
		cfg.Params = params(n)
	}
	procs := make([]sim.Process, n)
	echos := make([]*echoProc, n)
	for i := range procs {
		echos[i] = &echoProc{}
		procs[i] = echos[i]
	}
	s, err := sim.New(cfg, procs)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	return s, echos
}

func TestInvokeRespond(t *testing.T) {
	s, _ := newSim(t, sim.Config{}, 2)
	s.Invoke(0, 0, "echo", 42)
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ops := s.History().Ops()
	if len(ops) != 1 || ops[0].Pending || !spec.ValueEqual(ops[0].Ret, 42) {
		t.Fatalf("unexpected history: %v", ops)
	}
	if ops[0].Latency() != 0 {
		t.Errorf("echo latency %s, want 0", ops[0].Latency())
	}
}

func TestMessageDelayApplied(t *testing.T) {
	p := params(2)
	s, echos := newSim(t, sim.Config{Params: p, Delay: sim.FixedDelay(p.D)}, 2)
	s.Invoke(0, 0, "send", 1)
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	msgs := s.Messages()
	if len(msgs) != 1 {
		t.Fatalf("want 1 message, got %d", len(msgs))
	}
	if msgs[0].Delay != p.D || msgs[0].RecvAt != p.D {
		t.Errorf("message delay %s recv %s, want %s", msgs[0].Delay, msgs[0].RecvAt, p.D)
	}
	if len(echos[1].gotMsgs) != 1 {
		t.Errorf("recipient got %d messages, want 1", len(echos[1].gotMsgs))
	}
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	s, echos := newSim(t, sim.Config{}, 4)
	s.Invoke(0, 2, "broadcast", nil)
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, e := range echos {
		want := 1
		if i == 2 {
			want = 0 // no self-delivery
		}
		if len(e.gotMsgs) != want {
			t.Errorf("process %d got %d messages, want %d", i, len(e.gotMsgs), want)
		}
	}
}

func TestStrictDelaysRejectOutOfRange(t *testing.T) {
	p := params(2)
	s, _ := newSim(t, sim.Config{
		Params:       p,
		Delay:        sim.FixedDelay(p.D + 1),
		StrictDelays: true,
	}, 2)
	s.Invoke(0, 0, "send", 1)
	if err := s.Run(model.Infinity); err == nil {
		t.Error("expected error for delay > d under StrictDelays")
	}
}

func TestClockOffsetsVisibleToProcess(t *testing.T) {
	p := params(2)
	off := []model.Time{0, -p.Epsilon}
	s, echos := newSim(t, sim.Config{Params: p, ClockOffsets: off}, 2)
	s.Invoke(5*time.Millisecond, 1, "timer", model.Time(0))
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(echos[1].timerFire) != 1 {
		t.Fatalf("timer fired %d times, want 1", len(echos[1].timerFire))
	}
	wantClock := model.Time(5*time.Millisecond) - p.Epsilon
	if echos[1].timerFire[0] != wantClock {
		t.Errorf("timer clock time %s, want %s", echos[1].timerFire[0], wantClock)
	}
}

func TestClockSkewValidation(t *testing.T) {
	p := params(2)
	_, err := sim.New(sim.Config{
		Params:       p,
		ClockOffsets: []model.Time{0, p.Epsilon + 1},
	}, make([]sim.Process, 2))
	if err == nil {
		t.Error("expected skew > ε to be rejected")
	}
}

func TestTimerCancel(t *testing.T) {
	s, echos := newSim(t, sim.Config{}, 1)
	s.Invoke(0, 0, "timer-cancel", model.Time(time.Millisecond))
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(echos[0].timerFire) != 0 {
		t.Errorf("canceled timer fired %d times", len(echos[0].timerFire))
	}
}

func TestOnePendingOpPerProcessDefers(t *testing.T) {
	// A process with a pending op defers the next invocation until just
	// after the response.
	p := params(2)
	procs := []sim.Process{&slowProc{wait: p.D}, &slowProc{wait: p.D}}
	s, err := sim.New(sim.Config{Params: p}, procs)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	s.Invoke(0, 0, "op", nil)
	s.Invoke(1, 0, "op", nil) // lands while the first is pending
	if err := s.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ops := s.History().Ops()
	if len(ops) != 2 {
		t.Fatalf("want 2 ops, got %d", len(ops))
	}
	if ops[1].Invoke <= ops[0].Respond-1 {
		t.Errorf("second op invoked at %s, before first responded at %s", ops[1].Invoke, ops[0].Respond)
	}
}

// slowProc responds after a fixed wait.
type slowProc struct{ wait model.Time }

func (s *slowProc) OnInvoke(env sim.Env, id history.OpID, _ spec.OpKind, _ spec.Value) {
	env.SetTimerAfter(s.wait, id)
}
func (s *slowProc) OnMessage(sim.Env, model.ProcessID, any) {}
func (s *slowProc) OnTimer(env sim.Env, payload any) {
	if id, ok := payload.(history.OpID); ok {
		env.Respond(id, nil)
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() []string {
		p := params(3)
		s, _ := newSim(t, sim.Config{
			Params: p,
			Delay:  sim.NewRandomDelay(42, p.MinDelay(), p.D),
		}, 3)
		s.Invoke(0, 0, "broadcast", nil)
		s.Invoke(time.Millisecond, 1, "broadcast", nil)
		s.Invoke(2*time.Millisecond, 2, "broadcast", nil)
		if err := s.Run(model.Infinity); err != nil {
			t.Fatalf("Run: %v", err)
		}
		var log []string
		for _, m := range s.Messages() {
			log = append(log, m.From.String()+m.To.String()+m.RecvAt.String())
		}
		return log
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("different message counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at message %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestSelfSendRejected(t *testing.T) {
	p := params(2)
	procs := []sim.Process{&selfSender{}, &selfSender{}}
	s, err := sim.New(sim.Config{Params: p}, procs)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	s.Invoke(0, 0, "op", nil)
	if err := s.Run(model.Infinity); err == nil {
		t.Error("self-send should produce an error")
	}
}

type selfSender struct{}

func (s *selfSender) OnInvoke(env sim.Env, id history.OpID, _ spec.OpKind, _ spec.Value) {
	env.Send(env.Self(), "oops")
	env.Respond(id, nil)
}
func (s *selfSender) OnMessage(sim.Env, model.ProcessID, any) {}
func (s *selfSender) OnTimer(sim.Env, any)                    {}
