package sim

// Fault injection: the simulator consults a fault.Injector (Config.Faults)
// at each decision point — invoke arrival, message delivery, timer firing —
// and schedules the plan's crash/recover/retire events alongside the run's
// own events. Everything here is off the fault-free hot path: a run without
// an injector pays one nil check per decision point and nothing else.

import (
	"fmt"

	"timebounds/internal/fault"
	"timebounds/internal/model"
)

// Restartable is implemented by processes that survive a crash/recover
// cycle. Crash is called at the instant the process halts (its timers are
// already invalidated and its in-flight operation orphaned); Recover is
// called when it restarts, with a live Env so it can solicit state from its
// peers. Processes that do not implement it are simply silenced while down.
type Restartable interface {
	Process
	// Crash notifies the process it halted at the given real time. It must
	// not touch the Env — the process is down.
	Crash(at model.Time)
	// Recover restarts the process at env's current step.
	Recover(env Env)
}

// Retireable is implemented by processes that distinguish permanent
// departure (churn) from a crash. Retire is terminal: the simulator never
// delivers to, or recovers, a retired process.
type Retireable interface {
	Process
	Retire(at model.Time)
}

// scheduleFaults enqueues the plan's lifecycle events. It runs during New,
// so these events carry the smallest sequence numbers of the run and
// dispatch before any same-instant invoke or delivery.
func (s *Simulator) scheduleFaults() {
	plan := s.flt.Plan()
	for _, c := range plan.Crashes {
		ref := s.alloc()
		ev := &s.events[ref]
		ev.at, ev.kind, ev.proc = c.At, evCrash, c.Proc
		s.push(ref)
		if c.RecoverAt > 0 {
			ref := s.alloc()
			ev := &s.events[ref]
			ev.at, ev.kind, ev.proc = c.RecoverAt, evRecover, c.Proc
			s.push(ref)
		}
	}
	for _, r := range plan.Retires {
		ref := s.alloc()
		ev := &s.events[ref]
		ev.at, ev.kind, ev.proc = r.At, evRetire, r.Proc
		s.push(ref)
	}
}

// applyCrash halts (or retires) a process: its availability flips, its
// restart epoch advances so every timer armed before the crash is dead on
// arrival, its deferred invocations are stranded, and its single in-flight
// operation — if any — stays pending in the history forever.
func (s *Simulator) applyCrash(proc model.ProcessID, at model.Time, retire bool) {
	flt := s.flt
	if flt.Retired(proc) || (!retire && flt.Unavailable(proc)) {
		return
	}
	if retire {
		flt.MarkRetired(proc, at)
		s.record(proc, at, "retire")
	} else {
		flt.MarkDown(proc, at)
		s.record(proc, at, "crash")
	}
	s.epoch[proc]++
	if n := len(s.deferred[proc]); n > 0 {
		// The application layer invokes the next operation only after the
		// previous responds (Chapter III.A); queued invocations were never
		// issued, so they are stranded, not recorded.
		for i := 0; i < n; i++ {
			flt.NoteStrandedInvoke()
		}
		s.deferred[proc] = s.deferred[proc][:0]
	}
	if s.pending[proc] {
		flt.NotePendingAtCrash()
		s.pending[proc] = false
	}
	if retire {
		if r, ok := s.procs[proc].(Retireable); ok {
			r.Retire(at)
		}
		return
	}
	if r, ok := s.procs[proc].(Restartable); ok {
		r.Crash(at)
	}
}

// applyRecover restarts a crashed process.
func (s *Simulator) applyRecover(env *procEnv, proc model.ProcessID, at model.Time) {
	flt := s.flt
	if flt.Retired(proc) || !flt.Unavailable(proc) {
		return
	}
	flt.MarkUp(proc, at)
	s.record(proc, at, "recover")
	if r, ok := s.procs[proc].(Restartable); ok {
		r.Recover(env)
	}
}

// deliverCopies schedules a duplicated message: copies deliveries spaced
// spacing apart, the first at the policy's delay. Extra copies take fresh
// message sequence numbers so traces stay uniquely keyed.
func (e *procEnv) deliverCopies(seq int, to model.ProcessID, payload any, delay, spacing model.Time, copies int) {
	s := e.sim
	for c := 0; c < copies; c++ {
		recv := e.real + delay + spacing*model.Time(c)
		sq := seq
		if c > 0 {
			sq = s.msgSeq
			s.msgSeq++
		}
		if s.trace {
			s.msgs = append(s.msgs, MessageTrace{
				Seq: sq, From: e.proc, To: to, SentAt: e.real, RecvAt: recv, Delay: recv - e.real,
			})
		}
		ref := s.alloc()
		ev := &s.events[ref]
		ev.at, ev.kind, ev.proc = recv, evDeliver, to
		ev.from, ev.payload, ev.sentAt, ev.msgSeq = e.proc, payload, e.real, sq
		s.push(ref)
	}
}

// traceLost records a dropped message with an infinite receive time.
func (e *procEnv) traceLost(seq int, to model.ProcessID, delay model.Time) {
	s := e.sim
	if s.trace {
		s.msgs = append(s.msgs, MessageTrace{
			Seq: seq, From: e.proc, To: to, SentAt: e.real, RecvAt: model.Infinity, Delay: delay,
		})
	}
}

// faultMismatch builds the injector/cluster size configuration error.
func faultMismatch(got, want int) error {
	return fmt.Errorf("sim: fault injector validated for n=%d, cluster has n=%d", got, want)
}

// FaultStats snapshots the injector's accounting at the simulator's current
// time. ok is false when the run has no fault injector.
func (s *Simulator) FaultStats() (fault.Stats, bool) {
	if s.flt == nil {
		return fault.Stats{}, false
	}
	return s.flt.StatsAt(s.now), true
}
