package sim_test

import (
	"reflect"
	"testing"
	"time"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
)

// chatterProc stresses every event kind: each invocation broadcasts a
// round, arms two timers (one canceled), and responds on the second
// timer; each received message is echoed back once.
type chatterProc struct {
	echoed map[int]bool
}

type chatterMsg struct {
	Hop int
	Tag int
}

type respondTimer struct{ id history.OpID }
type doomedTimer struct{}

func (c *chatterProc) OnInvoke(env sim.Env, id history.OpID, kind spec.OpKind, arg spec.Value) {
	tag, _ := arg.(int)
	env.Broadcast(chatterMsg{Hop: 0, Tag: tag})
	doomed := env.SetTimerAfter(3*model.Time(time.Millisecond), doomedTimer{})
	env.SetTimerAfter(5*model.Time(time.Millisecond), respondTimer{id: id})
	env.CancelTimer(doomed)
}

func (c *chatterProc) OnMessage(env sim.Env, from model.ProcessID, payload any) {
	m, ok := payload.(chatterMsg)
	if !ok || m.Hop > 0 {
		return
	}
	if c.echoed == nil {
		c.echoed = make(map[int]bool)
	}
	if !c.echoed[m.Tag] {
		c.echoed[m.Tag] = true
		env.Send(from, chatterMsg{Hop: 1, Tag: m.Tag})
	}
}

func (c *chatterProc) OnTimer(env sim.Env, payload any) {
	switch t := payload.(type) {
	case respondTimer:
		env.Respond(t.id, nil)
	case doomedTimer:
		panic("canceled timer fired")
	}
}

func chatterSim(t *testing.T, delay sim.DelayPolicy) *sim.Simulator {
	t.Helper()
	p := model.Params{N: 3, D: 10 * model.Time(time.Millisecond), U: 4 * model.Time(time.Millisecond),
		Epsilon: 2 * model.Time(time.Millisecond)}
	procs := make([]sim.Process, p.N)
	for i := range procs {
		procs[i] = &chatterProc{}
	}
	s, err := sim.New(sim.Config{
		Params:       p,
		ClockOffsets: []model.Time{0, p.Epsilon / 2, -p.Epsilon / 2},
		Delay:        delay,
		StrictDelays: true,
	}, procs)
	if err != nil {
		t.Fatal(err)
	}
	// Colliding timestamps on purpose: simultaneous invocations at several
	// processes, plus back-to-back (deferred) invocations.
	ms := model.Time(time.Millisecond)
	for wave := 0; wave < 6; wave++ {
		at := model.Time(wave) * 7 * ms
		for proc := 0; proc < p.N; proc++ {
			s.Invoke(at, model.ProcessID(proc), "op", wave*10+proc)
			s.Invoke(at+1, model.ProcessID(proc), "op", wave*10+proc+100)
		}
	}
	return s
}

// TestBatchedDispatchEquivalence: Run's batched equal-timestamp dispatch
// must be unobservable — bit-identical history, step trace, and message
// trace versus the reference one-event-at-a-time loop, under both a
// static (matrix-precomputed) and a dynamic delay policy.
func TestBatchedDispatchEquivalence(t *testing.T) {
	ms := model.Time(time.Millisecond)
	policies := map[string]func() sim.DelayPolicy{
		"static-fixed":   func() sim.DelayPolicy { return sim.FixedDelay(10 * ms) },
		"dynamic-random": func() sim.DelayPolicy { return sim.NewRandomDelay(42, 6*ms, 10*ms) },
	}
	for name, mk := range policies {
		t.Run(name, func(t *testing.T) {
			batched := chatterSim(t, mk())
			reference := chatterSim(t, mk())
			if err := batched.Run(model.Infinity); err != nil {
				t.Fatalf("batched run: %v", err)
			}
			if err := reference.RunUnbatched(model.Infinity); err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if got, want := batched.History().String(), reference.History().String(); got != want {
				t.Errorf("histories differ:\nbatched:\n%s\nreference:\n%s", got, want)
			}
			if !reflect.DeepEqual(batched.Steps(), reference.Steps()) {
				t.Error("step traces differ between batched and reference dispatch")
			}
			if !reflect.DeepEqual(batched.Messages(), reference.Messages()) {
				t.Error("message traces differ between batched and reference dispatch")
			}
			if batched.History().Len() == 0 {
				t.Fatal("empty run proves nothing")
			}
		})
	}
}

// TestStaticDelayMatrixPrecomputed: fixed and matrix policies flatten into
// the per-pair matrix; the seeded random policy must not.
func TestStaticDelayMatrixPrecomputed(t *testing.T) {
	ms := model.Time(time.Millisecond)
	if s := chatterSim(t, sim.FixedDelay(10*ms)); !s.StaticDelayMatrix() {
		t.Error("FixedDelay should precompute a static delay matrix")
	}
	if s := chatterSim(t, sim.NewMatrixDelay(3, 10*ms)); !s.StaticDelayMatrix() {
		t.Error("MatrixDelay should precompute a static delay matrix")
	}
	if s := chatterSim(t, sim.NewRandomDelay(1, 6*ms, 10*ms)); s.StaticDelayMatrix() {
		t.Error("RandomDelay must not claim a static delay matrix")
	}
}

// TestStaticMatrixMatchesPolicyDelays: the precomputed-matrix fast path
// must deliver exactly the delays the policy interface would.
func TestStaticMatrixMatchesPolicyDelays(t *testing.T) {
	ms := model.Time(time.Millisecond)
	m := sim.NewMatrixDelay(3, 10*ms).Set(0, 1, 6*ms).Set(2, 0, 8*ms)
	s := chatterSim(t, m)
	if err := s.Run(model.Infinity); err != nil {
		t.Fatal(err)
	}
	for _, msg := range s.Messages() {
		want := m.Delay(msg.From, msg.To, msg.SentAt, msg.Seq)
		if msg.Delay != want {
			t.Fatalf("message %d %s→%s delayed %s, policy says %s",
				msg.Seq, msg.From, msg.To, msg.Delay, want)
		}
	}
}

// quietProc is a minimal steady-state process: every invocation broadcasts
// once and responds on a timer; messages are absorbed.
type quietProc struct{}

func (quietProc) OnInvoke(env sim.Env, id history.OpID, _ spec.OpKind, _ spec.Value) {
	env.Broadcast(7)
	env.SetTimerAfter(2*model.Time(time.Millisecond), respondTimer{id: id})
}
func (quietProc) OnMessage(sim.Env, model.ProcessID, any) {}
func (q quietProc) OnTimer(env sim.Env, payload any) {
	if t, ok := payload.(respondTimer); ok {
		env.Respond(t.id, nil)
	}
}

// TestEventLoopAllocs is the allocation-regression guard on the event
// loop: once the event slab, heap, and pools are warm, pushing a wave of
// invocations through Run must stay within a small per-wave allocation
// budget (history records and timer-map growth amortize; events, heap
// traffic, and Envs must not allocate at all).
func TestEventLoopAllocs(t *testing.T) {
	ms := model.Time(time.Millisecond)
	p := model.Params{N: 4, D: 10 * ms, U: 4 * ms, Epsilon: 2 * ms}
	procs := make([]sim.Process, p.N)
	for i := range procs {
		procs[i] = quietProc{}
	}
	s, err := sim.New(sim.Config{Params: p, Delay: sim.FixedDelay(10 * ms), StrictDelays: true,
		DiscardTraces: true}, procs)
	if err != nil {
		t.Fatal(err)
	}
	at := model.Time(0)
	wave := func() {
		for proc := 0; proc < p.N; proc++ {
			s.Invoke(at, model.ProcessID(proc), "op", nil)
		}
		at += 20 * ms
		if err := s.Run(at); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		wave() // warm the slab, heap, pools, and history capacity
	}
	// Each wave is 4 invokes + 12 sends/deliveries + 4 timers = 20 events.
	const eventsPerWave = 20
	avg := testing.AllocsPerRun(50, wave)
	if avg > 8 {
		t.Errorf("event loop allocates %.1f allocs per %d-event wave (budget 8): "+
			"the pooled loop should only pay amortized history/map growth", avg, eventsPerWave)
	}
}
