package sim

import (
	"fmt"
	"slices"

	"timebounds/internal/fault"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// Process is the state-machine interface implemented by shared-object
// implementations (Chapter III.B.1). The simulator calls exactly one
// handler per step; handlers interact with the world only through Env.
type Process interface {
	// OnInvoke delivers an operation invocation from the application layer.
	OnInvoke(env Env, id history.OpID, kind spec.OpKind, arg spec.Value)
	// OnMessage delivers a message from another process.
	OnMessage(env Env, from model.ProcessID, payload any)
	// OnTimer fires a timer previously set via Env.SetTimer*.
	OnTimer(env Env, payload any)
}

// Env is the narrow world interface handed to Process handlers during a
// step. Processes see only their local clock, never real time. An Env is
// valid only for the duration of the handler call it is passed to; the
// simulator reuses it between steps.
type Env interface {
	// Self returns the process's own id.
	Self() model.ProcessID
	// N returns the number of processes.
	N() int
	// ClockTime returns the local clock time of the current step.
	ClockTime() model.Time
	// Send transmits a message to another process (not to self).
	Send(to model.ProcessID, payload any)
	// Broadcast transmits a message to every other process.
	Broadcast(payload any)
	// SetTimerAfter schedules OnTimer(payload) after the given local-clock
	// duration and returns a handle for cancellation.
	SetTimerAfter(d model.Time, payload any) TimerID
	// CancelTimer cancels a pending timer; canceling an already-fired or
	// unknown timer is a no-op.
	CancelTimer(id TimerID)
	// Respond completes the operation with the given id and return value.
	Respond(id history.OpID, ret spec.Value)
}

// TimerID is a cancellation handle for a pending timer.
type TimerID int64

type eventKind int

const (
	evInvoke eventKind = iota + 1
	evDeliver
	evTimer
	evCrash
	evRecover
	evRetire
)

type event struct {
	at   model.Time // real time
	seq  int64      // tie-breaker: creation order
	kind eventKind
	proc model.ProcessID

	// evInvoke
	opID    history.OpID
	opKind  spec.OpKind
	opArg   spec.Value
	arrival model.Time // offered instant; < at for deferred invocations

	// evDeliver
	from    model.ProcessID
	payload any
	sentAt  model.Time
	msgSeq  int

	// evTimer
	timerID TimerID
	// due is the exact local-clock deadline of a timer armed under clock
	// drift; during its dispatch ClockTime returns due verbatim, so clock
	// arithmetic chained across timers stays exact despite the nonlinear
	// clock map. hasDue gates it (zero is a valid deadline).
	due    model.Time
	hasDue bool
	// epoch is the arming process's restart epoch; a crash advances the
	// epoch, invalidating every timer armed before it.
	epoch int32
}

// qitem is one scheduled event in the heap: the (at, seq) ordering key —
// real time, then creation sequence, the simulator's deterministic
// dispatch order — held inline so heap maintenance never probes the slab,
// plus the event's slab index.
type qitem struct {
	at  model.Time
	seq int64
	ref int32
}

func (a qitem) less(b qitem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// MessageTrace records one delivered (or in-flight) message, for the run
// machinery of internal/runs.
type MessageTrace struct {
	Seq      int
	From, To model.ProcessID
	SentAt   model.Time // real time
	RecvAt   model.Time // real time; model.Infinity if never delivered
	Delay    model.Time
}

// StepTrace records one process step (Chapter III.B.1: a quintuple; we
// record the observable coordinates).
type StepTrace struct {
	Proc      model.ProcessID
	RealTime  model.Time
	ClockTime model.Time
	Kind      string // "invoke", "deliver", "timer", "crash", "recover", "retire"
}

// Config configures a Simulator.
type Config struct {
	// Params are the system timing parameters.
	Params model.Params
	// ClockOffsets holds each process's clock offset c_j (clock time = real
	// time + c_j, Chapter III.B.2). Nil means all zeros. Pairwise
	// differences must be bounded by Params.Epsilon.
	ClockOffsets []model.Time
	// Delay chooses message delays. Nil defaults to FixedDelay(Params.D).
	// Policies implementing StaticDelays are flattened into a per-pair
	// matrix once at construction, so per-message lookups are a slice index.
	Delay DelayPolicy
	// StrictDelays makes the simulator return an error from Run if the
	// policy ever emits a delay outside [D-U, D]. Adversary experiments
	// that intentionally model inadmissible runs leave this false and
	// inspect the trace instead.
	StrictDelays bool
	// DiscardTraces skips recording the step and message traces, for runs
	// that will never be rendered or shifted (large measurement grids).
	// Steps and Messages return empty slices on such a simulator; the
	// history is always recorded.
	DiscardTraces bool
	// Faults is the run's fault injector, or nil for a fault-free run. It
	// must be freshly built (fault.NewInjector) for this run — injectors
	// carry per-run mutable state and are never shared.
	Faults *fault.Injector
}

// Simulator drives n processes through a single run.
//
// Events live in an index-addressed slab; the scheduling heap holds
// (at, seq, slab-index) triples, so heap maintenance compares and moves
// small pointer-free values — no slab probes, no GC write barriers — and
// dispatched slots are recycled through a free list, making the
// steady-state event loop allocation-free per event. The heap is 4-ary:
// pending sets are small and a shallower tree means fewer moves per pop.
type Simulator struct {
	cfg     Config
	procs   []Process
	events  []event // slab; grows only when the free list is empty
	freed   []int32 // recycled slab slots
	queue   []qitem // 4-ary min-heap ordered by (at, seq)
	batch   []int32 // reused equal-timestamp dispatch batch (slab indexes)
	env     procEnv // reused Env; valid only during one handler call
	seq     int64
	msgSeq  int
	now     model.Time
	hist    *history.History
	msgs    []MessageTrace
	steps   []StepTrace
	trace   bool   // record steps/msgs (= !cfg.DiscardTraces)
	pending []bool // per-process: has an operation in flight
	// deferred invocations waiting for the previous op of the process to
	// respond (the application layer invokes back-to-back, Chapter III.A).
	deferred [][]deferredInvoke
	// timerLive[id] reports whether timer id is pending (armed, un-fired,
	// un-canceled). Ids are dense, so a flat slice beats a map on the
	// timer-heavy hot path; one byte per timer ever armed.
	timerLive []bool
	nextTID   TimerID
	// delayMat is the flattened n×n delay matrix when cfg.Delay is static
	// (FixedDelay, MatrixDelay): delayMat[from*n+to]. Nil for dynamic
	// policies, which go through the DelayPolicy interface per message.
	delayMat []model.Time
	minD     model.Time // admissible delay range, for the strict fast path
	maxD     model.Time
	// flt is cfg.Faults; nil on the fault-free fast path. epoch holds each
	// process's restart epoch (crashes invalidate earlier timers); rates
	// holds per-process clock drift in ppm, nil when no clock drifts.
	flt   *fault.Injector
	epoch []int32
	rates []int64
	err   error
}

type deferredInvoke struct {
	kind spec.OpKind
	arg  spec.Value
	// arrival is the instant the invocation was originally offered, kept
	// so the history can record queueing wait (Record.Sojourn).
	arrival model.Time
}

// New creates a simulator for the given processes. len(procs) must equal
// cfg.Params.N.
func New(cfg Config, procs []Process) (*Simulator, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if len(procs) != cfg.Params.N {
		return nil, fmt.Errorf("sim: %d processes for N=%d", len(procs), cfg.Params.N)
	}
	if cfg.ClockOffsets == nil {
		cfg.ClockOffsets = make([]model.Time, cfg.Params.N)
	}
	if len(cfg.ClockOffsets) != cfg.Params.N {
		return nil, fmt.Errorf("sim: %d clock offsets for N=%d", len(cfg.ClockOffsets), cfg.Params.N)
	}
	for i, ci := range cfg.ClockOffsets {
		for j, cj := range cfg.ClockOffsets {
			skew := ci - cj
			if skew < 0 {
				skew = -skew
			}
			if skew > cfg.Params.Epsilon {
				return nil, fmt.Errorf("sim: clock skew |c%d-c%d|=%s exceeds ε=%s",
					i, j, skew, cfg.Params.Epsilon)
			}
		}
	}
	if cfg.Delay == nil {
		cfg.Delay = FixedDelay(cfg.Params.D)
	}
	s := &Simulator{
		cfg:      cfg,
		procs:    procs,
		hist:     history.New(),
		trace:    !cfg.DiscardTraces,
		pending:  make([]bool, cfg.Params.N),
		deferred: make([][]deferredInvoke, cfg.Params.N),
		minD:     cfg.Params.MinDelay(),
		maxD:     cfg.Params.D,
	}
	s.env.sim = s
	if sd, ok := cfg.Delay.(StaticDelays); ok {
		if mat, ok := sd.DelayMatrix(cfg.Params.N); ok && len(mat) == cfg.Params.N*cfg.Params.N {
			s.delayMat = mat
		}
	}
	if in := cfg.Faults; in != nil {
		if in.N() != cfg.Params.N {
			return nil, faultMismatch(in.N(), cfg.Params.N)
		}
		s.flt = in
		s.rates = in.Rates()
		s.epoch = make([]int32, cfg.Params.N)
		s.scheduleFaults()
	}
	return s, nil
}

// Params returns the simulator's timing parameters.
func (s *Simulator) Params() model.Params { return s.cfg.Params }

// History returns the history recorded so far.
func (s *Simulator) History() *history.History { return s.hist }

// Messages returns the message trace recorded so far (empty when
// Config.DiscardTraces is set).
func (s *Simulator) Messages() []MessageTrace {
	out := make([]MessageTrace, len(s.msgs))
	copy(out, s.msgs)
	return out
}

// Steps returns the step trace recorded so far (empty when
// Config.DiscardTraces is set).
func (s *Simulator) Steps() []StepTrace {
	out := make([]StepTrace, len(s.steps))
	copy(out, s.steps)
	return out
}

// ClockOffset returns process p's clock offset c_p.
func (s *Simulator) ClockOffset(p model.ProcessID) model.Time {
	return s.cfg.ClockOffsets[p]
}

// Reserve presizes the run's hot allocations for a schedule of about ops
// invocations: the history's record slab and the event slab and scheduling
// heap (one slot per in-flight invocation; message and timer events recycle
// through the free list on top of the same slab). Harnesses that know the
// schedule size up front (workload.Run) call this once so the event loop
// reaches its allocation-free steady state immediately instead of growing
// through the run.
func (s *Simulator) Reserve(ops int) {
	if ops <= 0 {
		return
	}
	s.hist.Grow(ops)
	s.events = slices.Grow(s.events, ops)
	s.queue = slices.Grow(s.queue, ops)
}

// alloc reserves a slab slot for a new event.
func (s *Simulator) alloc() int32 {
	if n := len(s.freed); n > 0 {
		ref := s.freed[n-1]
		s.freed = s.freed[:n-1]
		return ref
	}
	s.events = append(s.events, event{})
	return int32(len(s.events) - 1)
}

// release zeroes a drained slot and recycles it.
func (s *Simulator) release(ref int32) {
	s.events[ref] = event{}
	s.freed = append(s.freed, ref)
}

// push stamps the event's creation sequence and enqueues its slot.
//
//tb:hotpath
func (s *Simulator) push(ref int32) {
	seq := s.seq
	s.seq++
	s.events[ref].seq = seq
	it := qitem{at: s.events[ref].at, seq: seq, ref: ref}
	q := append(s.queue, it)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q[i].less(q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	s.queue = q
}

// pop removes and returns the earliest queued slot.
//
//tb:hotpath
func (s *Simulator) pop() int32 {
	q := s.queue
	n := len(q) - 1
	top := q[0].ref
	q[0] = q[n]
	q = q[:n]
	s.queue = q
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		least := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q[c].less(q[least]) {
				least = c
			}
		}
		if !q[least].less(q[i]) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

// Invoke schedules an operation invocation at the given real time. If the
// process still has a pending operation at that time, the invocation is
// deferred until immediately after the pending operation responds,
// preserving the one-pending-operation-per-process rule (Chapter III.A).
func (s *Simulator) Invoke(at model.Time, proc model.ProcessID, kind spec.OpKind, arg spec.Value) {
	ref := s.alloc()
	e := &s.events[ref]
	e.at, e.kind, e.proc = at, evInvoke, proc
	e.opKind, e.opArg, e.arrival = kind, arg, at
	s.push(ref)
}

// Run processes events until the queue drains (quiescence) or the horizon
// is reached. It returns the first configuration error encountered.
//
// Dispatch is batched: all events sharing the earliest delivery timestamp
// are drained from the queue in one pass and dispatched in creation
// order, so per-event heap traffic is paid once per distinct timestamp.
// Events pushed during a batch (always at later sequence numbers) form
// follow-up batches; the resulting dispatch order is identical to
// one-at-a-time dispatch. Events beyond the horizon stay queued.
//
//tb:hotpath
func (s *Simulator) Run(horizon model.Time) error {
	for len(s.queue) > 0 {
		t := s.queue[0].at
		if t > horizon {
			return s.err
		}
		if t < s.now {
			return s.timeRegression(t)
		}
		s.now = t
		// Drain the timestamp-t batch into the reused value buffer,
		// recycling slots immediately — handlers dispatch against the
		// copies. Heap pops yield ascending sequence numbers within an
		// equal timestamp, so batch order is creation order — the same
		// order repeated single-event dispatch would produce. Same-
		// timestamp events pushed by handlers below carry later sequence
		// numbers and are drained on the next pass.
		batch := s.batch[:0]
		for len(s.queue) > 0 && s.queue[0].at == t {
			batch = append(batch, s.pop())
		}
		s.batch = batch
		for _, ref := range batch {
			s.dispatch(ref)
			s.release(ref)
			if s.err != nil {
				return s.err
			}
		}
	}
	return s.err
}

// runUnbatched is the reference event loop: one heap pop, one dispatch.
// It is semantically identical to Run and exists so the equivalence tests
// can assert that batched dispatch is unobservable (bit-identical
// histories and traces).
func (s *Simulator) runUnbatched(horizon model.Time) error {
	for len(s.queue) > 0 {
		t := s.queue[0].at
		if t > horizon {
			return s.err
		}
		if t < s.now {
			return s.timeRegression(t)
		}
		s.now = t
		ref := s.pop()
		s.dispatch(ref)
		s.release(ref)
		if s.err != nil {
			return s.err
		}
	}
	return s.err
}

// timeRegression builds the monotonicity-violation error. It lives
// outside the event loop so the //tb:hotpath functions stay free of fmt.
func (s *Simulator) timeRegression(t model.Time) error {
	return fmt.Errorf("sim: time went backwards: %s < %s", t, s.now)
}

// dispatch runs the handler for the event in slot ref. The needed fields
// are copied to locals before the handler runs — handlers push events,
// which may grow the slab and move the slot. The caller releases the slot
// afterwards.
//
//tb:hotpath
func (s *Simulator) dispatch(ref int32) {
	e := &s.events[ref]
	proc, at := e.proc, e.at
	env := &s.env
	env.proc, env.real = proc, at
	switch e.kind {
	case evInvoke:
		if s.flt != nil && s.flt.Unavailable(proc) {
			// A down process's application layer is down with it: the
			// invocation is never issued and never becomes a record.
			s.flt.NoteStrandedInvoke()
			return
		}
		opKind, opArg, arrival := e.opKind, e.opArg, e.arrival
		if s.pending[proc] {
			// Defer until the current operation responds, remembering the
			// offered instant so the history keeps the queueing wait.
			s.deferred[proc] = append(s.deferred[proc], deferredInvoke{kind: opKind, arg: opArg, arrival: arrival})
			return
		}
		s.pending[proc] = true
		id := s.hist.InvokeArrived(proc, opKind, opArg, at, arrival)
		s.record(proc, at, "invoke")
		s.procs[proc].OnInvoke(env, id, opKind, opArg)
	case evDeliver:
		if s.flt != nil && s.flt.Unavailable(proc) {
			s.flt.NoteDroppedToDown()
			return
		}
		from, payload := e.from, e.payload
		s.record(proc, at, "deliver")
		s.procs[proc].OnMessage(env, from, payload)
	case evTimer:
		tid, payload := e.timerID, e.payload
		if !s.timerLive[tid] {
			return // canceled
		}
		if s.flt != nil && e.epoch != s.epoch[proc] {
			// Armed before a crash: the restart epoch moved on.
			s.timerLive[tid] = false
			s.flt.NoteTimerDropped()
			return
		}
		s.timerLive[tid] = false
		s.record(proc, at, "timer")
		if e.hasDue {
			env.due, env.hasDue = e.due, true
			s.procs[proc].OnTimer(env, payload)
			env.hasDue = false
			return
		}
		s.procs[proc].OnTimer(env, payload)
	case evCrash:
		s.applyCrash(proc, at, false)
	case evRecover:
		s.applyRecover(env, proc, at)
	case evRetire:
		s.applyCrash(proc, at, true)
	}
}

func (s *Simulator) record(p model.ProcessID, real model.Time, kind string) {
	if !s.trace {
		return
	}
	s.steps = append(s.steps, StepTrace{
		Proc:      p,
		RealTime:  real,
		ClockTime: s.clockAt(p, real),
		Kind:      kind,
	})
}

// clockAt maps real time to process p's local clock, drift-aware.
func (s *Simulator) clockAt(p model.ProcessID, real model.Time) model.Time {
	if s.rates != nil {
		if r := s.rates[p]; r != 0 {
			return fault.ClockAt(real, s.cfg.ClockOffsets[p], r)
		}
	}
	return real + s.cfg.ClockOffsets[p]
}

// procEnv implements Env for one step of one process. The simulator owns
// a single instance and re-points it at each dispatched step.
type procEnv struct {
	sim  *Simulator
	proc model.ProcessID
	real model.Time
	// due/hasDue carry the exact local-clock deadline of the timer being
	// dispatched, under clock drift (see event.due).
	due    model.Time
	hasDue bool
}

var _ Env = (*procEnv)(nil)

func (e *procEnv) Self() model.ProcessID { return e.proc }
func (e *procEnv) N() int                { return e.sim.cfg.Params.N }

func (e *procEnv) ClockTime() model.Time {
	if e.hasDue {
		return e.due
	}
	s := e.sim
	if s.rates != nil {
		if r := s.rates[e.proc]; r != 0 {
			return fault.ClockAt(e.real, s.cfg.ClockOffsets[e.proc], r)
		}
	}
	return e.real + s.cfg.ClockOffsets[e.proc]
}

// Send is on the per-message hot path; its error cases are delegated to
// cold helpers so the function body stays fmt-free.
//
//tb:hotpath
func (e *procEnv) Send(to model.ProcessID, payload any) {
	s := e.sim
	if to == e.proc {
		s.err = e.selfSendError()
		return
	}
	seq := s.msgSeq
	s.msgSeq++
	var delay model.Time
	if s.delayMat != nil {
		delay = s.delayMat[int(e.proc)*s.cfg.Params.N+int(to)]
	} else {
		delay = s.cfg.Delay.Delay(e.proc, to, e.real, seq)
	}
	if s.cfg.StrictDelays && (delay < s.minD || delay > s.maxD) {
		s.err = e.strictDelayError(seq, to, delay)
		return
	}
	if s.flt != nil {
		copies, spacing := s.flt.Deliveries(e.proc, to, e.real)
		if copies == 0 {
			e.traceLost(seq, to, delay)
			return
		}
		if copies > 1 {
			e.deliverCopies(seq, to, payload, delay, spacing, copies)
			return
		}
	}
	recv := e.real + delay
	if s.trace {
		s.msgs = append(s.msgs, MessageTrace{
			Seq: seq, From: e.proc, To: to, SentAt: e.real, RecvAt: recv, Delay: delay,
		})
	}
	ref := s.alloc()
	ev := &s.events[ref]
	ev.at, ev.kind, ev.proc = recv, evDeliver, to
	ev.from, ev.payload, ev.sentAt, ev.msgSeq = e.proc, payload, e.real, seq
	s.push(ref)
}

// selfSendError builds the self-send configuration error, off the Send
// hot path.
func (e *procEnv) selfSendError() error {
	return fmt.Errorf("sim: %s attempted to send to itself", e.proc)
}

// strictDelayError builds the inadmissible-delay error, off the Send hot
// path.
func (e *procEnv) strictDelayError(seq int, to model.ProcessID, delay model.Time) error {
	return fmt.Errorf("sim: message %d %s→%s: %w", seq, e.proc, to,
		ValidateDelay(e.sim.cfg.Params, delay))
}

func (e *procEnv) Broadcast(payload any) {
	for p := 0; p < e.sim.cfg.Params.N; p++ {
		if model.ProcessID(p) != e.proc {
			e.Send(model.ProcessID(p), payload)
		}
	}
}

func (e *procEnv) SetTimerAfter(d model.Time, payload any) TimerID {
	if d < 0 {
		d = 0
	}
	s := e.sim
	id := s.nextTID
	s.nextTID++
	s.timerLive = append(s.timerLive, true)
	ref := s.alloc()
	ev := &s.events[ref]
	at := e.real + d
	if s.rates != nil {
		if r := s.rates[e.proc]; r != 0 {
			// A drifting clock reads ClockTime()+d at real time
			// ClockInverse(due); storing due makes the deadline exact at
			// dispatch even though the clock map truncates.
			due := e.ClockTime() + d
			at = fault.ClockInverse(due, s.cfg.ClockOffsets[e.proc], r)
			if at < e.real {
				at = e.real
			}
			ev.due, ev.hasDue = due, true
		}
	}
	if s.epoch != nil {
		ev.epoch = s.epoch[e.proc]
	}
	ev.at, ev.kind, ev.proc = at, evTimer, e.proc
	ev.timerID, ev.payload = id, payload
	s.push(ref)
	return id
}

func (e *procEnv) CancelTimer(id TimerID) {
	if id >= 0 && int64(id) < int64(len(e.sim.timerLive)) {
		e.sim.timerLive[id] = false
	}
}

func (e *procEnv) Respond(id history.OpID, ret spec.Value) {
	if e.sim.flt != nil && e.sim.hist.Completed(id) {
		// Under fault injection a duplicated message can re-trigger the
		// response path for an operation the client already saw answered
		// (the at-most-once assumption is exactly what the dup fault
		// breaks). The client keeps the first response and drops the
		// copy; the injector's stats already account for the duplicate.
		return
	}
	if err := e.sim.hist.Respond(id, ret, e.real); err != nil {
		e.sim.err = err
		return
	}
	s := e.sim
	p := e.proc
	s.pending[p] = false
	if len(s.deferred[p]) > 0 {
		next := s.deferred[p][0]
		s.deferred[p] = s.deferred[p][1:]
		// Invoke immediately after the response, as the paper's
		// back-to-back operation sequences do. "After" is strict in the
		// continuous-time model (Chapter III.B.2: increasing clock times),
		// so the deferred invocation lands one tick later.
		ref := s.alloc()
		ev := &s.events[ref]
		ev.at, ev.kind, ev.proc = e.real+1, evInvoke, p
		ev.opKind, ev.opArg, ev.arrival = next.kind, next.arg, next.arrival
		s.push(ref)
	}
}
