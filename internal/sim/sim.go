package sim

import (
	"container/heap"
	"fmt"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// Process is the state-machine interface implemented by shared-object
// implementations (Chapter III.B.1). The simulator calls exactly one
// handler per step; handlers interact with the world only through Env.
type Process interface {
	// OnInvoke delivers an operation invocation from the application layer.
	OnInvoke(env Env, id history.OpID, kind spec.OpKind, arg spec.Value)
	// OnMessage delivers a message from another process.
	OnMessage(env Env, from model.ProcessID, payload any)
	// OnTimer fires a timer previously set via Env.SetTimer*.
	OnTimer(env Env, payload any)
}

// Env is the narrow world interface handed to Process handlers during a
// step. Processes see only their local clock, never real time.
type Env interface {
	// Self returns the process's own id.
	Self() model.ProcessID
	// N returns the number of processes.
	N() int
	// ClockTime returns the local clock time of the current step.
	ClockTime() model.Time
	// Send transmits a message to another process (not to self).
	Send(to model.ProcessID, payload any)
	// Broadcast transmits a message to every other process.
	Broadcast(payload any)
	// SetTimerAfter schedules OnTimer(payload) after the given local-clock
	// duration and returns a handle for cancellation.
	SetTimerAfter(d model.Time, payload any) TimerID
	// CancelTimer cancels a pending timer; canceling an already-fired or
	// unknown timer is a no-op.
	CancelTimer(id TimerID)
	// Respond completes the operation with the given id and return value.
	Respond(id history.OpID, ret spec.Value)
}

// TimerID is a cancellation handle for a pending timer.
type TimerID int64

type eventKind int

const (
	evInvoke eventKind = iota + 1
	evDeliver
	evTimer
)

type event struct {
	at   model.Time // real time
	seq  int64      // tie-breaker: creation order
	kind eventKind
	proc model.ProcessID

	// evInvoke
	opID   history.OpID
	opKind spec.OpKind
	opArg  spec.Value

	// evDeliver
	from    model.ProcessID
	payload any
	sentAt  model.Time
	msgSeq  int

	// evTimer
	timerID  TimerID
	canceled *bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// MessageTrace records one delivered (or in-flight) message, for the run
// machinery of internal/runs.
type MessageTrace struct {
	Seq      int
	From, To model.ProcessID
	SentAt   model.Time // real time
	RecvAt   model.Time // real time; model.Infinity if never delivered
	Delay    model.Time
}

// StepTrace records one process step (Chapter III.B.1: a quintuple; we
// record the observable coordinates).
type StepTrace struct {
	Proc      model.ProcessID
	RealTime  model.Time
	ClockTime model.Time
	Kind      string // "invoke", "deliver", "timer"
}

// Config configures a Simulator.
type Config struct {
	// Params are the system timing parameters.
	Params model.Params
	// ClockOffsets holds each process's clock offset c_j (clock time = real
	// time + c_j, Chapter III.B.2). Nil means all zeros. Pairwise
	// differences must be bounded by Params.Epsilon.
	ClockOffsets []model.Time
	// Delay chooses message delays. Nil defaults to FixedDelay(Params.D).
	Delay DelayPolicy
	// StrictDelays makes the simulator return an error from Run if the
	// policy ever emits a delay outside [D-U, D]. Adversary experiments
	// that intentionally model inadmissible runs leave this false and
	// inspect the trace instead.
	StrictDelays bool
}

// Simulator drives n processes through a single run.
type Simulator struct {
	cfg     Config
	procs   []Process
	queue   eventHeap
	seq     int64
	msgSeq  int
	now     model.Time
	hist    *history.History
	msgs    []MessageTrace
	steps   []StepTrace
	pending []bool // per-process: has an operation in flight
	// deferred invocations waiting for the previous op of the process to
	// respond (the application layer invokes back-to-back, Chapter III.A).
	deferred [][]deferredInvoke
	timers   map[TimerID]*bool
	nextTID  TimerID
	err      error
}

type deferredInvoke struct {
	kind spec.OpKind
	arg  spec.Value
}

// New creates a simulator for the given processes. len(procs) must equal
// cfg.Params.N.
func New(cfg Config, procs []Process) (*Simulator, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if len(procs) != cfg.Params.N {
		return nil, fmt.Errorf("sim: %d processes for N=%d", len(procs), cfg.Params.N)
	}
	if cfg.ClockOffsets == nil {
		cfg.ClockOffsets = make([]model.Time, cfg.Params.N)
	}
	if len(cfg.ClockOffsets) != cfg.Params.N {
		return nil, fmt.Errorf("sim: %d clock offsets for N=%d", len(cfg.ClockOffsets), cfg.Params.N)
	}
	for i, ci := range cfg.ClockOffsets {
		for j, cj := range cfg.ClockOffsets {
			skew := ci - cj
			if skew < 0 {
				skew = -skew
			}
			if skew > cfg.Params.Epsilon {
				return nil, fmt.Errorf("sim: clock skew |c%d-c%d|=%s exceeds ε=%s",
					i, j, skew, cfg.Params.Epsilon)
			}
		}
	}
	if cfg.Delay == nil {
		cfg.Delay = FixedDelay(cfg.Params.D)
	}
	s := &Simulator{
		cfg:      cfg,
		procs:    procs,
		hist:     history.New(),
		pending:  make([]bool, cfg.Params.N),
		deferred: make([][]deferredInvoke, cfg.Params.N),
		timers:   make(map[TimerID]*bool),
	}
	return s, nil
}

// Params returns the simulator's timing parameters.
func (s *Simulator) Params() model.Params { return s.cfg.Params }

// History returns the history recorded so far.
func (s *Simulator) History() *history.History { return s.hist }

// Messages returns the message trace recorded so far.
func (s *Simulator) Messages() []MessageTrace {
	out := make([]MessageTrace, len(s.msgs))
	copy(out, s.msgs)
	return out
}

// Steps returns the step trace recorded so far.
func (s *Simulator) Steps() []StepTrace {
	out := make([]StepTrace, len(s.steps))
	copy(out, s.steps)
	return out
}

// ClockOffset returns process p's clock offset c_p.
func (s *Simulator) ClockOffset(p model.ProcessID) model.Time {
	return s.cfg.ClockOffsets[p]
}

// Invoke schedules an operation invocation at the given real time. If the
// process still has a pending operation at that time, the invocation is
// deferred until immediately after the pending operation responds,
// preserving the one-pending-operation-per-process rule (Chapter III.A).
func (s *Simulator) Invoke(at model.Time, proc model.ProcessID, kind spec.OpKind, arg spec.Value) {
	s.push(&event{
		at: at, kind: evInvoke, proc: proc,
		opKind: kind, opArg: arg,
	})
}

func (s *Simulator) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

// Run processes events until the queue drains (quiescence) or the horizon
// is reached. It returns the first configuration error encountered.
func (s *Simulator) Run(horizon model.Time) error {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.at > horizon {
			return s.err
		}
		if e.at < s.now {
			return fmt.Errorf("sim: time went backwards: %s < %s", e.at, s.now)
		}
		s.now = e.at
		s.dispatch(e)
		if s.err != nil {
			return s.err
		}
	}
	return s.err
}

func (s *Simulator) dispatch(e *event) {
	env := &procEnv{sim: s, proc: e.proc, real: e.at}
	switch e.kind {
	case evInvoke:
		if s.pending[e.proc] {
			// Defer until the current operation responds.
			s.deferred[e.proc] = append(s.deferred[e.proc], deferredInvoke{kind: e.opKind, arg: e.opArg})
			return
		}
		s.pending[e.proc] = true
		id := s.hist.Invoke(e.proc, e.opKind, e.opArg, e.at)
		s.record(e.proc, e.at, "invoke")
		s.procs[e.proc].OnInvoke(env, id, e.opKind, e.opArg)
	case evDeliver:
		s.record(e.proc, e.at, "deliver")
		s.procs[e.proc].OnMessage(env, e.from, e.payload)
	case evTimer:
		if e.canceled != nil && *e.canceled {
			return
		}
		delete(s.timers, e.timerID)
		s.record(e.proc, e.at, "timer")
		s.procs[e.proc].OnTimer(env, e.payload)
	}
}

func (s *Simulator) record(p model.ProcessID, real model.Time, kind string) {
	s.steps = append(s.steps, StepTrace{
		Proc:      p,
		RealTime:  real,
		ClockTime: real + s.cfg.ClockOffsets[p],
		Kind:      kind,
	})
}

// procEnv implements Env for one step of one process.
type procEnv struct {
	sim  *Simulator
	proc model.ProcessID
	real model.Time
}

var _ Env = (*procEnv)(nil)

func (e *procEnv) Self() model.ProcessID { return e.proc }
func (e *procEnv) N() int                { return e.sim.cfg.Params.N }

func (e *procEnv) ClockTime() model.Time {
	return e.real + e.sim.cfg.ClockOffsets[e.proc]
}

func (e *procEnv) Send(to model.ProcessID, payload any) {
	if to == e.proc {
		e.sim.err = fmt.Errorf("sim: %s attempted to send to itself", e.proc)
		return
	}
	seq := e.sim.msgSeq
	e.sim.msgSeq++
	delay := e.sim.cfg.Delay.Delay(e.proc, to, e.real, seq)
	if e.sim.cfg.StrictDelays {
		if err := ValidateDelay(e.sim.cfg.Params, delay); err != nil {
			e.sim.err = fmt.Errorf("sim: message %d %s→%s: %w", seq, e.proc, to, err)
			return
		}
	}
	recv := e.real + delay
	e.sim.msgs = append(e.sim.msgs, MessageTrace{
		Seq: seq, From: e.proc, To: to, SentAt: e.real, RecvAt: recv, Delay: delay,
	})
	e.sim.push(&event{
		at: recv, kind: evDeliver, proc: to,
		from: e.proc, payload: payload, sentAt: e.real, msgSeq: seq,
	})
}

func (e *procEnv) Broadcast(payload any) {
	for p := 0; p < e.sim.cfg.Params.N; p++ {
		if model.ProcessID(p) != e.proc {
			e.Send(model.ProcessID(p), payload)
		}
	}
}

func (e *procEnv) SetTimerAfter(d model.Time, payload any) TimerID {
	if d < 0 {
		d = 0
	}
	id := e.sim.nextTID
	e.sim.nextTID++
	canceled := new(bool)
	e.sim.timers[id] = canceled
	e.sim.push(&event{
		at: e.real + d, kind: evTimer, proc: e.proc,
		timerID: id, payload: payload, canceled: canceled,
	})
	return id
}

func (e *procEnv) CancelTimer(id TimerID) {
	if flag, ok := e.sim.timers[id]; ok {
		*flag = true
		delete(e.sim.timers, id)
	}
}

func (e *procEnv) Respond(id history.OpID, ret spec.Value) {
	if err := e.sim.hist.Respond(id, ret, e.real); err != nil {
		e.sim.err = err
		return
	}
	s := e.sim
	p := e.proc
	s.pending[p] = false
	if len(s.deferred[p]) > 0 {
		next := s.deferred[p][0]
		s.deferred[p] = s.deferred[p][1:]
		// Invoke immediately after the response, as the paper's
		// back-to-back operation sequences do. "After" is strict in the
		// continuous-time model (Chapter III.B.2: increasing clock times),
		// so the deferred invocation lands one tick later.
		s.push(&event{
			at: e.real + 1, kind: evInvoke, proc: p,
			opKind: next.kind, opArg: next.arg,
		})
	}
}
