package sim_test

import (
	"testing"
	"time"

	"timebounds/internal/model"
	"timebounds/internal/sim"
)

func TestFixedDelay(t *testing.T) {
	d := sim.FixedDelay(7 * time.Millisecond)
	if got := d.Delay(0, 1, 0, 0); got != 7*time.Millisecond {
		t.Errorf("FixedDelay = %s", got)
	}
}

func TestMatrixDelay(t *testing.T) {
	m := sim.NewMatrixDelay(3, 10*time.Millisecond)
	m.Set(0, 1, 6*time.Millisecond).Set(1, 0, 8*time.Millisecond)
	if got := m.Delay(0, 1, 0, 0); got != 6*time.Millisecond {
		t.Errorf("m[0][1] = %s", got)
	}
	if got := m.Delay(1, 0, 0, 0); got != 8*time.Millisecond {
		t.Errorf("m[1][0] = %s", got)
	}
	if got := m.Delay(2, 1, 0, 0); got != 10*time.Millisecond {
		t.Errorf("default m[2][1] = %s", got)
	}
}

func TestRandomDelayInRangeAndDeterministic(t *testing.T) {
	min, max := 6*time.Millisecond, 10*time.Millisecond
	a := sim.NewRandomDelay(5, min, max)
	b := sim.NewRandomDelay(5, min, max)
	for i := 0; i < 200; i++ {
		da := a.Delay(0, 1, 0, i)
		db := b.Delay(0, 1, 0, i)
		if da != db {
			t.Fatalf("draw %d differs across equal seeds: %s vs %s", i, da, db)
		}
		if da < min || da > max {
			t.Fatalf("draw %d out of range: %s", i, da)
		}
	}
	// Degenerate range collapses to min.
	c := sim.NewRandomDelay(1, min, min)
	if got := c.Delay(0, 1, 0, 0); got != min {
		t.Errorf("degenerate range = %s", got)
	}
}

func TestExtremalDelayAlternates(t *testing.T) {
	p := params(2)
	e := sim.ExtremalDelay{Params: p}
	sawMin, sawMax := false, false
	for seq := 0; seq < 4; seq++ {
		switch e.Delay(0, 1, 0, seq) {
		case p.MinDelay():
			sawMin = true
		case p.D:
			sawMax = true
		default:
			t.Fatalf("extremal delay is neither extreme")
		}
	}
	if !sawMin || !sawMax {
		t.Error("extremal policy should produce both extremes")
	}
}

func TestFuncDelay(t *testing.T) {
	f := sim.FuncDelay(func(from, to model.ProcessID, _ model.Time, seq int) model.Time {
		return time.Duration(int(from)+int(to)+seq) * time.Millisecond
	})
	if got := f.Delay(1, 2, 0, 3); got != 6*time.Millisecond {
		t.Errorf("FuncDelay = %s", got)
	}
}

func TestValidateDelay(t *testing.T) {
	p := params(2)
	if err := sim.ValidateDelay(p, p.D); err != nil {
		t.Errorf("d rejected: %v", err)
	}
	if err := sim.ValidateDelay(p, p.MinDelay()); err != nil {
		t.Errorf("d-u rejected: %v", err)
	}
	if err := sim.ValidateDelay(p, p.D+1); err == nil {
		t.Error("d+1 accepted")
	}
	if err := sim.ValidateDelay(p, p.MinDelay()-1); err == nil {
		t.Error("d-u-1 accepted")
	}
}
