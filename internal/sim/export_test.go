package sim

import "timebounds/internal/model"

// RunUnbatched exposes the reference one-event-at-a-time loop to the
// equivalence tests, which assert Run's batched dispatch is unobservable.
func (s *Simulator) RunUnbatched(horizon model.Time) error {
	return s.runUnbatched(horizon)
}

// StaticDelayMatrix reports whether the simulator precomputed a static
// delay matrix for its policy.
func (s *Simulator) StaticDelayMatrix() bool { return s.delayMat != nil }
