package engine

// Live shard rebalancing for sharded scenarios (internal/keyspace): a
// ShardedScenario with a Plan routes every keyed operation by the
// partition map of its ownership epoch and realizes each migration with
// drain-then-cutover semantics:
//
//   - drain: operations on moving keys offered inside the drain window
//     before the cutover are deferred past it (they run on the
//     destination), so the source quiesces on those keys;
//   - drained read: the key's settled source value is computed by a
//     prefix simulation — the source shard's schedule truncated at the
//     cutover, re-run under the same seed, delay policy, and backend,
//     with a settled read appended. Event processing is time-ordered and
//     delay draws are consumed in send order, so the prefix run's state
//     at the cutover is bit-identical to the actual run's;
//   - cutover: a synthetic handoff write seeds the destination shard with
//     the drained value at the cutover instant, and post-cutover client
//     operations on moved keys invoke only after a settle window, so they
//     observe the transferred state.
//
// Verification splits each migrated key's history at the handoff: the
// per-epoch pieces (which include the synthetic write) and the stitched
// whole-key client history (which excludes it) are checked as separate
// check.Compose components. The stitched component is the cross-migration
// verdict — it fails exactly when the destination serves state no client
// operation wrote, which per-shard and per-epoch checks cannot see.

import (
	"fmt"
	"sort"

	"timebounds/internal/check"
	"timebounds/internal/history"
	"timebounds/internal/keyspace"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// corruptHandoff, when non-nil, rewrites the transferred value of every
// synthetic handoff write. Test-only: it models a broken state transfer,
// the failure mode only the stitched cross-epoch check can catch.
var corruptHandoff func(key string, v spec.Value) spec.Value

// Handoff records one migrated key's state transfer and its stitched
// cross-epoch verdict.
type Handoff struct {
	// Key is the migrated key; Migration indexes the plan's migration and
	// Cutover echoes its instant.
	Key       string
	Migration int
	Cutover   model.Time
	// From and To are the source and destination shards.
	From, To int
	// Transferred reports that a settled non-nil value was carried across
	// (false when the key was absent at the cutover).
	Transferred bool
	// Checked/Linearizable carry the key's stitched component verdict:
	// the whole client history of the key, across every epoch, excluding
	// synthetic handoff writes, checked from the empty object.
	Checked      bool
	Linearizable bool
}

// EpochStats summarizes shard skew within one ownership epoch.
type EpochStats struct {
	// Epoch indexes the ownership epoch (0 = before the first migration).
	Epoch int
	// Ops counts client operations routed in the epoch; MaxOps is the
	// busiest shard's share and Hottest its index.
	Ops     int
	MaxOps  int
	Hottest int
	// Imbalance is MaxOps over the epoch's mean per-shard ops (0 when the
	// epoch routed nothing).
	Imbalance float64
}

// handoffSpec is the expansion-time record of one key's migration.
type handoffSpec struct {
	key         string
	mig         int
	cutover     model.Time
	from, to    int
	value       spec.Value
	putAt       model.Time
	transferred bool
}

// syntheticID identifies a synthetic handoff write inside one shard's
// history: handoff writes get unique invocation instants at the cutover,
// so (shard, instant, key) pins the record.
type syntheticID struct {
	shard int
	at    model.Time
	key   string
}

// migrateState carries the migration bookkeeping from expansion to merge.
type migrateState struct {
	plan      keyspace.Plan
	maps      []keyspace.PartitionMap
	drain     model.Time
	settle    model.Time
	handoffs  []handoffSpec
	synthetic map[syntheticID]bool
	// perEpoch[e][s] counts client operations routed to shard s during
	// epoch e; keyOps counts client operations per touched key.
	perEpoch [][]int
	keyOps   map[string]int
	deferred int
}

// routedInv is one bucketed invocation with its generation-order
// tie-break.
type routedInv struct {
	inv workload.Invocation
	ord int
}

// shardScenario derives shard index's Scenario — the single construction
// both the static and migrating expansions (and the prefix simulations,
// which must replay a shard bit-identically) share.
func (ss ShardedScenario) shardScenario(index int, sp workload.Spec) Scenario {
	return Scenario{
		Name:     fmt.Sprintf("%s/shard=%d", ss.Name, index),
		Backend:  ss.Backend,
		DataType: types.NewDict(),
		Params:   ss.Params,
		X:        ss.X,
		// Shard-index-derived seeds keep the delay draws of the
		// sub-clusters independent while staying a pure function of
		// (Seed, shard index).
		Seed:     ss.Seed + int64(index)*1_000_003,
		Delay:    ss.Delay,
		Workload: sp,
		Faults:   ss.Faults,
		Verify:   ss.Verify,
		Horizon:  ss.Horizon,
	}
}

// resolvedDrain returns the drain window: the configured one, or a default
// generous enough that every pre-drain operation has completed and
// propagated by the cutover (at least 4d, and at least twice the mutator
// bound).
func (ss ShardedScenario) resolvedDrain() model.Time {
	if ss.Drain > 0 {
		return ss.Drain
	}
	drain := 4 * ss.Params.D
	if b := 2 * ss.Backend.Bound(ss.Params, ss.X, spec.ClassPureMutator); b > drain {
		drain = b
	}
	return drain
}

// expandMigrating is expand for scenarios with a migration plan: route
// every keyed operation by its epoch's partition map, defer operations on
// moving keys around each cutover, compute drained values by prefix
// simulation, and seed destinations with synthetic handoff writes. It
// runs serially before the worker pool, so the derived shard scenarios —
// and therefore the merged report — stay bit-identical at any worker
// count.
func (ss ShardedScenario) expandMigrating() (shardPlan, []Scenario, error) {
	ss = ss.resolved()
	fail := func(err error) (shardPlan, []Scenario, error) {
		return shardPlan{}, nil, fmt.Errorf("engine: sharded scenario %q: %w", ss.Name, err)
	}
	kp := *ss.Plan
	if err := kp.Validate(); err != nil {
		return fail(err)
	}
	if ss.Workload.Partition != nil {
		return fail(fmt.Errorf("a migration plan owns the partitioning; unset Workload.Partition"))
	}
	if ss.Workload.Shards != 0 && ss.Workload.Shards != kp.Base.Shards {
		return fail(fmt.Errorf("workload declares %d shards but the plan's base map has %d",
			ss.Workload.Shards, kp.Base.Shards))
	}
	if ss.Faults.enabled() {
		return fail(fmt.Errorf("migration plans do not compose with fault plans (the prefix simulation cannot replay injected faults)"))
	}
	maps, err := kp.Maps()
	if err != nil {
		return fail(err)
	}
	shards := kp.Base.Shards
	st := &migrateState{
		plan:      kp,
		maps:      maps,
		drain:     ss.resolvedDrain(),
		synthetic: make(map[syntheticID]bool),
		perEpoch:  make([][]int, kp.Epochs()),
		keyOps:    make(map[string]int),
	}
	st.settle = st.drain
	for e := range st.perEpoch {
		st.perEpoch[e] = make([]int, shards)
	}

	// Pass 1: route every client operation to (epoch, shard), deferring
	// operations on moving keys out of each drain window and settle
	// window. Deferred instants are spread one nanosecond apart so the
	// deferral pileup keeps a deterministic total order.
	buckets := make([][]routedInv, shards)
	shardKeys := make([]map[string]bool, shards)
	for i := range shardKeys {
		shardKeys[i] = make(map[string]bool)
	}
	earliest := make(map[string]model.Time) // key -> earliest final invocation instant
	total := 0
	moves := func(mi int, key string) bool {
		return maps[mi].ShardOf(key) != maps[mi+1].ShardOf(key)
	}
	err = ss.Workload.ForEachOp(ss.Params, ss.Seed, func(op workload.KeyOp, ord int) error {
		t := op.At
		e := kp.EpochAt(t)
		for {
			adjusted := false
			if e > 0 {
				if c := kp.Migrations[e-1].At; moves(e-1, op.Key) && t < c+st.settle {
					st.deferred++
					t = c + st.settle + model.Time(st.deferred)
					adjusted = true
				}
			}
			if e < len(kp.Migrations) {
				if c := kp.Migrations[e].At; moves(e, op.Key) && t >= c-st.drain {
					st.deferred++
					t = c + st.settle + model.Time(st.deferred)
					e++
					adjusted = true
				}
			}
			if !adjusted {
				break
			}
		}
		op.At = t
		inv, err := op.Invocation()
		if err != nil {
			return err
		}
		sh := maps[e].ShardOf(op.Key)
		buckets[sh] = append(buckets[sh], routedInv{inv: inv, ord: ord})
		shardKeys[sh][op.Key] = true
		st.perEpoch[e][sh]++
		st.keyOps[op.Key]++
		if first, ok := earliest[op.Key]; !ok || t < first {
			earliest[op.Key] = t
		}
		total++
		return nil
	})
	if err != nil {
		return fail(err)
	}

	// Pass 2: one migration at a time, in cutover order, compute each
	// moved touched key's drained source value by prefix simulation and
	// seed the destination with a synthetic handoff write. Later
	// migrations see earlier handoff writes in their prefixes, exactly as
	// the actual runs will.
	nextOrd := total
	for k, mig := range kp.Migrations {
		c := mig.At
		var moved []handoffSpec
		for key, first := range earliest {
			from, to := maps[k].ShardOf(key), maps[k+1].ShardOf(key)
			if from == to || first >= c {
				continue
			}
			moved = append(moved, handoffSpec{key: key, mig: k, cutover: c, from: from, to: to})
		}
		sort.Slice(moved, func(i, j int) bool { return moved[i].key < moved[j].key })
		bySource := make(map[int][]int) // source shard -> indices into moved
		var sources []int
		for i := range moved {
			s := moved[i].from
			if _, ok := bySource[s]; !ok {
				sources = append(sources, s)
			}
			bySource[s] = append(bySource[s], i)
		}
		sort.Ints(sources)
		for _, s := range sources {
			idxs := bySource[s]
			prefix := prefixInvocations(buckets[s], c)
			reads := len(prefix)
			for j, mi := range idxs {
				prefix = append(prefix, workload.Invocation{
					At:   c + model.Time(j),
					Proc: model.ProcessID(j % ss.Params.N),
					Kind: types.OpDictGet,
					Arg:  moved[mi].key,
				})
			}
			drained, err := ss.runPrefix(s, prefix, reads)
			if err != nil {
				return fail(fmt.Errorf("migration %d drain of shard %d: %w", k, s, err))
			}
			for j, mi := range idxs {
				moved[mi].value = drained[j]
			}
		}
		for i := range moved {
			h := &moved[i]
			if h.value == nil {
				// Absent at the cutover — nothing to transfer. (A key
				// whose live value is nil is indistinguishable from an
				// absent one; keyed generators write non-nil values.)
				st.handoffs = append(st.handoffs, *h)
				continue
			}
			v := h.value
			if corruptHandoff != nil {
				v = corruptHandoff(h.key, v)
			}
			h.transferred = true
			h.putAt = c + model.Time(i)
			buckets[h.to] = append(buckets[h.to], routedInv{
				inv: workload.Invocation{
					At:   h.putAt,
					Proc: model.ProcessID(i % ss.Params.N),
					Kind: types.OpPut,
					Arg:  types.KV{Key: h.key, Value: v},
				},
				ord: nextOrd,
			})
			nextOrd++
			shardKeys[h.to][h.key] = true
			st.synthetic[syntheticID{shard: h.to, at: h.putAt, key: h.key}] = true
			st.handoffs = append(st.handoffs, *h)
		}
	}

	// Materialize the per-shard scenarios, exactly like the static path.
	plan := shardPlan{ss: ss, mig: st}
	plan.shards = make([]workload.Shard, shards)
	label := ss.Workload.Name
	if label == "" {
		label = "sharded"
	}
	var scs []Scenario
	for i := range plan.shards {
		plan.shards[i].Index = i
		for key := range shardKeys[i] {
			plan.shards[i].Keys = append(plan.shards[i].Keys, key)
		}
		sort.Strings(plan.shards[i].Keys)
		b := buckets[i]
		sort.SliceStable(b, func(x, y int) bool {
			if b[x].inv.At != b[y].inv.At {
				return b[x].inv.At < b[y].inv.At
			}
			return b[x].ord < b[y].ord
		})
		invs := make([]workload.Invocation, len(b))
		for j, r := range b {
			invs[j] = r.inv
		}
		plan.shards[i].Spec = workload.Spec{
			Name:     fmt.Sprintf("%s/shard=%d", label, i),
			Explicit: invs,
		}
		if len(invs) == 0 {
			continue
		}
		plan.run = append(plan.run, i)
		scs = append(scs, ss.shardScenario(i, plan.shards[i].Spec))
	}
	return plan, scs, nil
}

// prefixInvocations returns the shard's invocations strictly before the
// cutover, in the final schedule order — the truncation the prefix
// simulation replays.
func prefixInvocations(b []routedInv, cutover model.Time) []workload.Invocation {
	pre := make([]routedInv, 0, len(b))
	for _, r := range b {
		if r.inv.At < cutover {
			pre = append(pre, r)
		}
	}
	sort.SliceStable(pre, func(x, y int) bool {
		if pre[x].inv.At != pre[y].inv.At {
			return pre[x].inv.At < pre[y].inv.At
		}
		return pre[x].ord < pre[y].ord
	})
	out := make([]workload.Invocation, len(pre))
	for i, r := range pre {
		out[i] = r.inv
	}
	return out
}

// runPrefix replays shard index's schedule prefix under the shard's exact
// seed, delay policy, and backend, and returns the responses of the
// appended settled reads (invocation indices ≥ reads). Delay draws are
// consumed in send order and events process in time order, so every state
// the prefix reaches before the cutover is bit-identical to the actual
// shard run's — the reads observe the value the source will actually hold
// at the handoff.
func (ss ShardedScenario) runPrefix(index int, invs []workload.Invocation, reads int) ([]spec.Value, error) {
	sc := ss.shardScenario(index, workload.Spec{
		Name:     fmt.Sprintf("prefix/shard=%d", index),
		Explicit: invs,
	})
	sc.Verify = false
	sc = sc.resolved()
	inst, err := sc.build(nil)
	if err != nil {
		return nil, err
	}
	sched, err := sc.Workload.Schedule(sc.Params, sc.Seed)
	if err != nil {
		return nil, err
	}
	rep, err := workload.Run(inst, sched, workload.RunOptions{Horizon: sc.Horizon})
	if err != nil {
		return nil, err
	}
	out := make([]spec.Value, len(invs)-reads)
	found := 0
	for _, op := range rep.History.Ops() {
		if int(op.ID) < reads {
			continue
		}
		if op.Pending {
			return nil, fmt.Errorf("drained read #%d still pending", op.ID)
		}
		out[int(op.ID)-reads] = op.Ret
		found++
	}
	if found != len(out) {
		return nil, fmt.Errorf("prefix run answered %d of %d drained reads", found, len(out))
	}
	return out, nil
}

// keyOf extracts the dictionary key of a history record; ok is false for
// non-dictionary operations.
func keyOf(op history.Record) (string, bool) {
	switch op.Kind {
	case types.OpPut:
		kv, ok := op.Arg.(types.KV)
		return kv.Key, ok
	case types.OpDictGet, types.OpDelete:
		k, ok := op.Arg.(string)
		return k, ok
	default:
		return "", false
	}
}

// isHandoff reports whether the record is a synthetic handoff write of
// the given shard.
func (st *migrateState) isHandoff(shard int, op history.Record) bool {
	if st == nil || shard < 0 || op.Kind != types.OpPut {
		return false
	}
	kv, ok := op.Arg.(types.KV)
	if !ok {
		return false
	}
	return st.synthetic[syntheticID{shard: shard, at: op.Invoke, key: kv.Key}]
}

// migratedKeys returns the distinct migrated (touched) keys, sorted.
func (st *migrateState) migratedKeys() []string {
	seen := make(map[string]bool)
	var keys []string
	for _, h := range st.handoffs {
		if !seen[h.key] {
			seen[h.key] = true
			keys = append(keys, h.key)
		}
	}
	sort.Strings(keys)
	return keys
}

// keyRecords collects key's records from the per-shard histories, split
// into per-epoch pieces following the plan's ownership timeline, plus the
// stitched client-only sequence (synthetic handoff writes excluded).
// Pieces and stitch are each in (Invoke, ID) order.
func (st *migrateState) keyRecords(key string, byShard map[int]*Result) (pieces map[int][]history.Record, stitched []history.Record) {
	pieces = make(map[int][]history.Record)
	for e := range st.maps {
		owner := st.maps[e].ShardOf(key)
		res := byShard[owner]
		if res == nil || res.History == nil {
			continue
		}
		var lo, hi model.Time
		if e > 0 {
			lo = st.plan.Migrations[e-1].At
		}
		hi = model.Infinity
		if e < len(st.plan.Migrations) {
			hi = st.plan.Migrations[e].At
		}
		for _, op := range res.History.Ops() {
			if k, ok := keyOf(op); !ok || k != key {
				continue
			}
			if op.Invoke < lo || op.Invoke >= hi {
				continue
			}
			pieces[e] = append(pieces[e], op)
			if !st.isHandoff(owner, op) {
				stitched = append(stitched, op)
			}
		}
	}
	return pieces, stitched
}

// checkRecords runs the linearizability checker on a rebuilt history of
// the given records (treated as a standalone object from the empty
// state).
func checkRecords(dt spec.DataType, records []history.Record) bool {
	h := history.New()
	h.Grow(len(records))
	for _, op := range records {
		id := h.InvokeArrived(op.Proc, op.Kind, op.Arg, op.Invoke, op.Arrival)
		if !op.Pending {
			// The source records come from completed fault-free runs;
			// Respond always follows Invoke there, so the error path is
			// unreachable.
			_ = h.Respond(id, op.Ret, op.Respond)
		}
	}
	return check.Check(dt, h).Linearizable
}

// finish folds the migration bookkeeping into the merged report: the
// per-epoch and stitched per-key components (when the scenario verified),
// the Handoff table, hot-key and per-epoch skew statistics.
func (st *migrateState) finish(out *ShardedReport, p shardPlan, components []check.Component) []check.Component {
	byShard := make(map[int]*Result)
	for ri, idx := range p.run {
		if ri < len(out.Shards) {
			byShard[idx] = &out.Shards[ri]
		}
	}
	dict := types.NewDict()
	stitchedVerdict := make(map[string]bool)
	if p.ss.Verify {
		for _, key := range st.migratedKeys() {
			pieces, stitched := st.keyRecords(key, byShard)
			epochs := make([]int, 0, len(pieces))
			for e := range pieces {
				epochs = append(epochs, e)
			}
			sort.Ints(epochs)
			for _, e := range epochs {
				components = append(components, check.EpochComponent(
					fmt.Sprintf("%s/key=%s/epoch=%d", p.ss.Name, key, e),
					e, true, checkRecords(dict, pieces[e])))
			}
			sort.SliceStable(stitched, func(i, j int) bool {
				if stitched[i].Invoke != stitched[j].Invoke {
					return stitched[i].Invoke < stitched[j].Invoke
				}
				return stitched[i].ID < stitched[j].ID
			})
			ok := checkRecords(dict, stitched)
			stitchedVerdict[key] = ok
			components = append(components, check.EpochComponent(
				fmt.Sprintf("%s/key=%s/stitched", p.ss.Name, key),
				check.WholeRun, true, ok))
		}
	}

	hs := append([]handoffSpec(nil), st.handoffs...)
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].mig != hs[j].mig {
			return hs[i].mig < hs[j].mig
		}
		return hs[i].key < hs[j].key
	})
	movedSeen := make(map[string]bool)
	for _, h := range hs {
		out.Handoffs = append(out.Handoffs, Handoff{
			Key:          h.key,
			Migration:    h.mig,
			Cutover:      h.cutover,
			From:         h.from,
			To:           h.to,
			Transferred:  h.transferred,
			Checked:      p.ss.Verify,
			Linearizable: stitchedVerdict[h.key],
		})
		if h.transferred {
			out.Stats.HandoffOps++
		}
		movedSeen[h.key] = true
	}
	out.Stats.MovedKeys = len(movedSeen)
	out.Stats.Epochs = st.plan.Epochs()
	out.Stats.DrainDeferred = st.deferred

	for e, ops := range st.perEpoch {
		es := EpochStats{Epoch: e}
		for s, n := range ops {
			es.Ops += n
			if n > es.MaxOps {
				es.MaxOps = n
				es.Hottest = s
			}
		}
		if mean := float64(es.Ops) / float64(len(ops)); mean > 0 {
			es.Imbalance = float64(es.MaxOps) / mean
		}
		out.Stats.PerEpoch = append(out.Stats.PerEpoch, es)
	}

	out.HotKeys = topKeys(st.keyOps, 10)
	return components
}

// topKeys returns the n most-operated keys (ties broken by key order) —
// the observed load table keyspace.SplitHot plans follow-up migrations
// from.
func topKeys(keyOps map[string]int, n int) []keyspace.KeyLoad {
	loads := make([]keyspace.KeyLoad, 0, len(keyOps))
	for k, ops := range keyOps {
		loads = append(loads, keyspace.KeyLoad{Key: k, Ops: ops})
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Ops != loads[j].Ops {
			return loads[i].Ops > loads[j].Ops
		}
		return loads[i].Key < loads[j].Key
	})
	if len(loads) > n {
		loads = loads[:n]
	}
	return loads
}
