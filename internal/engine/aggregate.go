package engine

import (
	"fmt"

	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/workload"
)

// Aggregate folds streamed Results into constant-memory summaries: online
// per-kind and per-class latency statistics (count/mean/M2 plus a
// fixed-size quantile sketch — see workload.OnlineStats), sojourn-time
// statistics for queueing analysis, verdict counters, and utilization
// accounting. It is the streaming replacement for retaining every Result
// (and its full history) of a large grid: a consumer folds each Result as
// it arrives and lets it go, so memory stays bounded by the sketch size
// regardless of grid size.
//
// Latency (invoke→respond) is the service time the paper's class bounds
// constrain; Sojourn (arrival→respond) additionally counts time an
// open-loop arrival waited behind the process's previous operation — the
// quantity that detaches from the bounds as offered load saturates.
type Aggregate struct {
	// Scenarios counts folded Results; Failed counts those with Err set.
	Scenarios int
	Failed    int
	// Errs keeps the first few failure messages verbatim (capped so a
	// failing mega-grid cannot grow the aggregate unboundedly).
	Errs []string
	// Ops counts completed operations.
	Ops int
	// NotLinearizable, Diverged and BoundExceeded count runs whose checker
	// verdict failed, whose replicas disagreed, and with at least one
	// class bound exceeded.
	NotLinearizable int
	Diverged        int
	BoundExceeded   int
	// PerKind holds service-latency summaries per operation kind; PerClass
	// holds sojourn-time summaries per operation class (the saturation
	// curves); Latency and Sojourn are the all-operation roll-ups.
	PerKind  map[spec.OpKind]*workload.OnlineStats
	PerClass map[spec.OpClass]*workload.OnlineStats
	Latency  *workload.OnlineStats
	Sojourn  *workload.OnlineStats
	// busy sums per-op service time and capacity sums run span × N — the
	// terms of Utilization. span sums run spans alone — the denominator of
	// Throughput.
	busy     model.Time
	capacity model.Time
	span     model.Time

	// errCap bounds len(Errs).
	errCap int
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		PerKind:  make(map[spec.OpKind]*workload.OnlineStats),
		PerClass: make(map[spec.OpClass]*workload.OnlineStats),
		Latency:  workload.NewOnlineStats(),
		Sojourn:  workload.NewOnlineStats(),
		errCap:   16,
	}
}

// Add folds one Result. dt classifies operation kinds for the per-class
// sojourn summaries (pass the scenario's data type); nil skips per-class
// aggregation. The Result is not retained.
func (a *Aggregate) Add(dt spec.DataType, res Result) {
	a.Scenarios++
	if res.Err != "" {
		a.Failed++
		if len(a.Errs) < a.errCap {
			a.Errs = append(a.Errs, fmt.Sprintf("%s: %s", res.Name, res.Err))
		}
		return
	}
	if res.Checked && !res.Linearizable {
		a.NotLinearizable++
	}
	if !res.Converged {
		a.Diverged++
	}
	for _, b := range res.Bounds {
		if !b.OK {
			a.BoundExceeded++
			break
		}
	}
	if res.History == nil {
		a.Ops += res.Ops
		return
	}
	var first model.Time = model.Infinity
	var last model.Time
	for _, op := range res.History.Ops() {
		if op.Pending {
			continue
		}
		a.Ops++
		lat, soj := op.Latency(), op.Sojourn()
		a.Latency.Observe(lat)
		a.Sojourn.Observe(soj)
		a.busy += lat
		ks, ok := a.PerKind[op.Kind]
		if !ok {
			ks = workload.NewOnlineStats()
			a.PerKind[op.Kind] = ks
		}
		ks.Observe(lat)
		if dt != nil {
			class := dt.Class(op.Kind)
			cs, ok := a.PerClass[class]
			if !ok {
				cs = workload.NewOnlineStats()
				a.PerClass[class] = cs
			}
			cs.Observe(soj)
		}
		if op.Arrival < first {
			first = op.Arrival
		}
		if op.Respond > last {
			last = op.Respond
		}
	}
	if last > first {
		a.capacity += (last - first) * model.Time(res.Params.N)
		a.span += last - first
	}
}

// Utilization returns the measured busy fraction: total service time over
// total process-time capacity (run span × N, summed over runs). It
// approaches 1 as open-loop offered load saturates the processes.
func (a *Aggregate) Utilization() float64 {
	if a.capacity <= 0 {
		return 0
	}
	return float64(a.busy) / float64(a.capacity)
}

// Throughput returns the measured completion rate in ops/sec: operations
// the folded histories actually completed, over their summed run spans.
// This is the λ of Little's law as observed — NOT the offered load. The
// two agree only when every scheduled operation completed; on cancelled
// or saturated grids (Report.Incomplete > 0, operations still queued at
// the horizon) offered load counts work that never finished and would
// overstate every derived occupancy figure.
func (a *Aggregate) Throughput() float64 {
	if a.span <= 0 {
		return 0
	}
	return float64(a.Latency.Count()) / (float64(a.span) / 1e9)
}

// InFlight returns Little's-law mean occupancy L = λW over the completed
// work: measured throughput × mean sojourn. Computed entirely from folded
// results, it stays honest on cancelled and saturated runs, where the
// historical planned-load version (offered load × mean sojourn) counted
// operations that never ran.
func (a *Aggregate) InFlight() float64 {
	return a.Throughput() * float64(a.Sojourn.Mean()) / 1e9
}

// OK reports whether every folded Result completed, linearized (when
// checked), converged, and stayed within its class bounds.
func (a *Aggregate) OK() bool {
	return a.Failed == 0 && a.NotLinearizable == 0 && a.Diverged == 0 && a.BoundExceeded == 0
}

// KindStats snapshots the per-kind service-latency summaries into the
// exact-stats shape (P99 from the sketch; see workload.OnlineStats).
func (a *Aggregate) KindStats() map[spec.OpKind]workload.Stats {
	out := make(map[spec.OpKind]workload.Stats, len(a.PerKind))
	for kind, s := range a.PerKind {
		out[kind] = s.Stats(kind)
	}
	return out
}
