package engine

import (
	"fmt"
	"sort"

	"timebounds/internal/check"
	"timebounds/internal/core"
	"timebounds/internal/fault"
	"timebounds/internal/model"
	"timebounds/internal/runs"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/workload"
)

// DelayMode names a bundled message-delay policy shape.
type DelayMode int

const (
	// DelayRandom draws each delay uniformly from [d-u, d] with the
	// scenario seed (the default).
	DelayRandom DelayMode = iota
	// DelayWorst fixes every delay at the slowest admissible d, surfacing
	// worst-case latencies.
	DelayWorst
	// DelayBest fixes every delay at the fastest admissible d-u.
	DelayBest
	// DelayExtremal alternates deterministically between d-u and d,
	// exercising maximal reordering without randomness.
	DelayExtremal
)

// String implements fmt.Stringer.
func (m DelayMode) String() string {
	switch m {
	case DelayRandom:
		return "random"
	case DelayWorst:
		return "worst"
	case DelayBest:
		return "best"
	case DelayExtremal:
		return "extremal"
	default:
		return fmt.Sprintf("delay(%d)", int(m))
	}
}

// DelayModeByName resolves a delay mode by its String name.
func DelayModeByName(name string) (DelayMode, error) {
	for _, m := range []DelayMode{DelayRandom, DelayWorst, DelayBest, DelayExtremal} {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("engine: unknown delay mode %q (want random|worst|best|extremal)", name)
}

// DelaySpec declares a message-delay adversary as a value, so scenario
// grids can sweep it. Policy, when set, overrides Mode — the hook for
// handcrafted delay matrices (internal/adversary-style constructions).
type DelaySpec struct {
	Mode DelayMode
	// Policy builds a custom policy for a run; it must return a fresh
	// deterministic policy per call so parallel runs stay isolated.
	Policy func(p model.Params, seed int64) sim.DelayPolicy
	// Label names a custom Policy in derived scenario names (so grids
	// sweeping several custom adversaries keep distinct names); empty
	// means "custom".
	Label string
}

// validate rejects a mode outside the bundled set (a typo'd constant would
// otherwise silently run the random adversary).
func (ds DelaySpec) validate() error {
	if ds.Policy != nil {
		return nil
	}
	switch ds.Mode {
	case DelayRandom, DelayWorst, DelayBest, DelayExtremal:
		return nil
	default:
		return fmt.Errorf("engine: unknown delay mode %d", int(ds.Mode))
	}
}

// build returns the run's delay policy.
func (ds DelaySpec) build(p model.Params, seed int64) sim.DelayPolicy {
	if ds.Policy != nil {
		return ds.Policy(p, seed)
	}
	switch ds.Mode {
	case DelayWorst:
		return sim.FixedDelay(p.D)
	case DelayBest:
		return sim.FixedDelay(p.MinDelay())
	case DelayExtremal:
		return sim.ExtremalDelay{Params: p}
	default:
		return sim.NewRandomDelay(seed, p.MinDelay(), p.D)
	}
}

// name labels the delay spec in scenario names.
func (ds DelaySpec) name() string {
	if ds.Policy != nil {
		if ds.Label != "" {
			return ds.Label
		}
		return "custom"
	}
	return ds.Mode.String()
}

// Scenario is one point of an experiment: Backend × Workload × model
// parameters × delay policy × clock offsets. A Scenario plus its Seed fully
// determines a run, so reports are reproducible bit for bit.
type Scenario struct {
	// Name labels the scenario in the report; empty names are derived from
	// the coordinates.
	Name string
	// Backend is the implementation strategy; nil means Algorithm1.
	Backend Backend
	// DataType is the replicated object (required).
	DataType spec.DataType
	// Params are the system timing parameters. Epsilon 0 resolves to the
	// optimal (1-1/n)·u skew Chapter V assumes.
	Params model.Params
	// X is Algorithm 1's accessor/mutator tradeoff.
	X model.Time
	// Seed drives workload generation and the random delay policy.
	Seed int64
	// Delay is the message-delay adversary.
	Delay DelaySpec
	// ClockOffsets fixes per-process clock offsets (pairwise within ε).
	// Nil spreads offsets evenly across [-ε/2, +ε/2] (worst admissible skew).
	ClockOffsets []model.Time
	// Workload is the operation-stream spec; zero value means a small
	// closed-loop run of the object's default mix.
	Workload workload.Spec
	// Runtime selects where the scenario executes. The zero value is the
	// deterministic simulator; a live Runtime (engine.LiveRuntime and
	// friends) runs a wall-clock goroutine cluster over a real transport
	// with online (u, d) estimation, verified post hoc. Live scenarios
	// reject Faults, Witness, Trace, and custom delay policies.
	Runtime Runtime
	// Verify runs the linearizability checker on the resulting history.
	// Only for histories small enough for exhaustive search.
	Verify bool
	// Horizon bounds the simulation; zero picks a generous default.
	Horizon model.Time
	// Faults injects a fault plan (crashes, churn, loss, duplication,
	// partitions, clock drift) into the run. The zero value injects
	// nothing and leaves the run bit-identical to a fault-free scenario.
	// A faulted run records a FaultReport with its dichotomy verdict.
	Faults FaultSpec
	// Witness, when set, records a BoundWitness in the Result: the
	// completed operation among Witness.Kinds with the largest latency,
	// compared against the declared theoretical lower bound. Adversary
	// scenarios (AdversarySpec.Scenarios) set it automatically.
	Witness *WitnessSpec
	// Trace records the full run (views + messages) in Result.Run, for
	// diagram rendering and run-composition analysis. Costs memory on
	// large grids; leave off unless the run will be inspected.
	Trace bool
	// expandErr carries a grid-expansion failure (e.g. an inadmissible
	// adversary family) into the run, so it surfaces as a Result error
	// rather than being silently dropped.
	expandErr error
}

// resolved returns the scenario with defaults filled in.
func (sc Scenario) resolved() Scenario {
	if sc.Backend == nil {
		sc.Backend = Algorithm1{}
	}
	if sc.Params.Epsilon == 0 {
		sc.Params.Epsilon = sc.Params.OptimalSkew()
	}
	sc.Workload = sc.Workload.WithDefaults(sc.Params, sc.DataType)
	if sc.Name == "" {
		object := "?"
		if sc.DataType != nil {
			object = sc.DataType.Name()
		}
		faults := ""
		if sc.Faults.enabled() {
			faults = "/faults=" + sc.Faults.label()
		}
		rt := ""
		if sc.Runtime.Live() {
			rt = "/rt=" + sc.Runtime.label()
		}
		sc.Name = fmt.Sprintf("%s/%s/n=%d,d=%s,u=%s,ε=%s/x=%s/%s/%s%s%s/seed=%d",
			sc.Backend.Name(), object, sc.Params.N, sc.Params.D, sc.Params.U,
			sc.Params.Epsilon, sc.X, sc.Delay.name(), workloadLabel(sc.Workload), rt, faults, sc.Seed)
	}
	return sc
}

// workloadLabel names a workload for derived scenario names, so grids that
// sweep workloads (or parameter sets) keep distinct names.
func workloadLabel(wl workload.Spec) string {
	if wl.Name != "" {
		return wl.Name
	}
	if len(wl.Explicit) > 0 {
		return fmt.Sprintf("explicit-%d", len(wl.Explicit))
	}
	return fmt.Sprintf("%s-%d", wl.Mode, wl.OpsPerProcess)
}

// Build constructs the scenario's isolated instance without running it —
// the hook for tools that drive the simulator directly (tracing, custom
// invocation patterns) while still constructing every world via a Backend.
// Instances built this way always record step/message traces.
func (sc Scenario) Build() (Instance, error) {
	sc = sc.resolved()
	sc.Trace = true // direct drivers inspect the simulator; keep its traces
	_, in, err := sc.faultRuntime()
	if err != nil {
		return nil, fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
	}
	inst, err := sc.build(in)
	if err != nil {
		return nil, fmt.Errorf("engine: scenario %q: %w", sc.Name, err)
	}
	return inst, nil
}

// build constructs the instance for an already-resolved scenario, with
// bare errors (run and Report.Err add the scenario context exactly once).
// Untraced scenarios get a simulator that skips step/message trace
// recording — measurement grids never read those traces, and not
// recording them is a measurable win on large grids. in is the run's
// fault injector (nil for fault-free scenarios).
func (sc Scenario) build(in *fault.Injector) (Instance, error) {
	if sc.expandErr != nil {
		return nil, sc.expandErr
	}
	if sc.DataType == nil {
		return nil, fmt.Errorf("engine: scenario has no data type")
	}
	if err := sc.Params.Validate(); err != nil {
		return nil, err
	}
	if err := sc.Delay.validate(); err != nil {
		return nil, err
	}
	offsets := sc.ClockOffsets
	if offsets == nil {
		offsets = core.MaxSkewOffsets(sc.Params)
	} else {
		offsets = append([]model.Time(nil), offsets...)
	}
	return sc.Backend.Build(BuildConfig{
		Params:   sc.Params,
		X:        sc.X,
		DataType: sc.DataType,
		Sim: sim.Config{
			ClockOffsets:  offsets,
			Delay:         sc.Delay.build(sc.Params, sc.Seed),
			StrictDelays:  true,
			DiscardTraces: !sc.Trace,
			Faults:        in,
		},
	})
}

// runConfig carries the worker-pool checker resources into a run: the
// per-data-type shared transition caches plus the worker's check.Options
// (reusable arena, island-parallelism budget). The options' Cache field
// is filled per run from the cache set once the data type is known.
type runConfig struct {
	caches *check.CacheSet
	check  check.Options
}

// run executes the scenario in isolation and reduces it to a Result.
// cfg optionally shares checker transition state and scratch across a
// grid's runs.
func (sc Scenario) run(cfg runConfig) Result {
	sc = sc.resolved()
	res := Result{
		Name:    sc.Name,
		Backend: sc.Backend.Name(),
		Params:  sc.Params,
		X:       sc.X,
		Seed:    sc.Seed,
	}
	if sc.DataType != nil {
		res.Object = sc.DataType.Name()
	}
	if sc.Runtime.Live() {
		return sc.runLive(cfg)
	}
	plan, in, err := sc.faultRuntime()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	inst, err := sc.build(in)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	sched, err := sc.Workload.Schedule(sc.Params, sc.Seed)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	opts := cfg.check
	opts.Cache = cfg.caches.For(sc.DataType)
	rep, err := workload.Run(inst, sched, workload.RunOptions{
		Horizon:      sc.Horizon,
		Verify:       sc.Verify,
		Check:        opts,
		AllowPending: plan.Active(), // crash-orphaned ops stay pending forever
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Ops = rep.History.Len()
	res.History = rep.History
	res.PerKind = rep.PerKind
	res.Checked = rep.Checked
	res.Linearizable = rep.Linearizable
	res.Pending = rep.Pending
	if state, err := inst.ConvergedState(); err == nil {
		res.Converged = true
		res.State = state
	} else {
		res.Diverged = err.Error()
	}
	res.Bounds = boundChecks(sc, inst.DataType(), rep.PerKind)
	if plan.Active() {
		stats, _ := inst.Simulator().FaultStats()
		offsets := sc.ClockOffsets
		if offsets == nil {
			offsets = core.MaxSkewOffsets(sc.Params)
		}
		res.Fault = faultReport(sc, inst.DataType(), plan, in, res, offsets, stats)
	}
	if sc.Witness != nil {
		res.Witness = witnessOf(*sc.Witness, res)
	}
	if sc.Trace {
		run := runs.FromSim(inst.Simulator())
		res.Run = &run
	}
	return res
}

// witnessOf locates the bound witness in a finished run: the completed
// operation among the declared kinds with the largest latency. For pair
// bounds the witnessed latency is the sum of the per-kind worst cases (the
// witness operation is still the single slowest one).
func witnessOf(w WitnessSpec, res Result) *BoundWitness {
	wanted := func(k spec.OpKind) bool {
		if len(w.Kinds) == 0 {
			return true
		}
		for _, wk := range w.Kinds {
			if wk == k {
				return true
			}
		}
		return false
	}
	bw := &BoundWitness{
		Family:              w.Family,
		Bound:               w.Bound,
		Violated:            res.Checked && !res.Linearizable,
		Diverged:            res.Diverged != "",
		RequireLinearizable: w.RequireLinearizable,
		FaultDichotomy:      w.FaultDichotomy,
	}
	if res.Fault != nil {
		bw.FaultVerdict = res.Fault.Verdict
	}
	perKind := make(map[spec.OpKind]model.Time)
	found := false
	for _, op := range res.History.Ops() {
		if op.Pending || !wanted(op.Kind) {
			continue
		}
		l := op.Latency()
		if l > perKind[op.Kind] {
			perKind[op.Kind] = l
		}
		if !found || l > bw.Latency {
			bw.Kind, bw.Op, bw.Latency = op.Kind, op.ID, l
			found = true
		}
	}
	if w.Pair {
		var sum model.Time
		for _, l := range perKind {
			sum += l
		}
		bw.Latency = sum
	}
	return bw
}

// boundChecks compares measured worst-case latencies per operation class
// against the backend's theoretical bound for that class. The instance's
// data type decides classes (so all-OOP wrapping is respected).
func boundChecks(sc Scenario, dt spec.DataType, perKind map[spec.OpKind]workload.Stats) []BoundCheck {
	worst := make(map[spec.OpClass]model.Time)
	count := make(map[spec.OpClass]int)
	for kind, st := range perKind {
		class := dt.Class(kind)
		if _, ok := worst[class]; !ok {
			worst[class] = 0 // record the class even if its worst case is 0
		}
		if st.Max > worst[class] {
			worst[class] = st.Max
		}
		count[class] += st.Count
	}
	classes := make([]spec.OpClass, 0, len(worst))
	for class := range worst {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	out := make([]BoundCheck, 0, len(classes))
	for _, class := range classes {
		bound := sc.Backend.Bound(sc.Params, sc.X, class)
		out = append(out, BoundCheck{
			Class:    class,
			Count:    count[class],
			Bound:    bound,
			Measured: worst[class],
			OK:       worst[class] <= bound,
		})
	}
	return out
}
