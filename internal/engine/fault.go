package engine

import (
	"fmt"
	"strings"

	"timebounds/internal/fault"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// FaultSpec is the grid axis for fault injection: a named, parameter-
// generic builder of fault plans. The zero value means no faults — a
// scenario with a zero FaultSpec takes the exact fault-free path it always
// did (pay-for-what-you-use), down to bit-identical Results.
type FaultSpec struct {
	// Name labels the spec in scenario names, reports and -faults flags.
	Name string
	// Build produces the run's fault plan; it must be a deterministic pure
	// function of (p, seed). Nil disables fault injection.
	Build func(p model.Params, seed int64) *fault.Plan
}

// enabled reports whether the spec injects anything.
func (fs FaultSpec) enabled() bool { return fs.Build != nil }

// label names the spec in derived scenario names.
func (fs FaultSpec) label() string {
	if fs.Name != "" {
		return fs.Name
	}
	return "faults"
}

// The two horns of a faulted run's dichotomy verdict: every faulted run
// yields exactly one of them, never "unknown".
const (
	// VerdictWithinBound: the history linearizes, the serving copies agree,
	// and every completed operation paid at most its class bound plus the
	// plan's fault allowance — the model's guarantees survived the faults.
	VerdictWithinBound = "within-bound"
	// VerdictAssumptionBroken: the run shows what broke — the report's
	// breaches pinpoint the violated model assumptions and the observed
	// symptoms, each with a magnitude.
	VerdictAssumptionBroken = "assumption-broken"
)

// FaultReport is the dichotomy verdict of one faulted run.
type FaultReport struct {
	// Family is the fault spec's name; Plan the concrete plan's.
	Family string
	Plan   string
	// Verdict is VerdictWithinBound or VerdictAssumptionBroken.
	Verdict string
	// Breaches pinpoint the broken assumptions and observed symptoms;
	// empty exactly when the verdict is within-bound.
	Breaches []fault.Breach
	// Stats accounts for the faults that materialized.
	Stats fault.Stats
	// Pending counts operations left pending forever (crash-orphaned).
	Pending int
}

// WithinBound reports the verdict's clean horn.
func (fr FaultReport) WithinBound() bool { return fr.Verdict == VerdictWithinBound }

// Summary renders the verdict with its dominant breach, for tables.
func (fr FaultReport) Summary() string {
	if fr.Verdict != VerdictAssumptionBroken || len(fr.Breaches) == 0 {
		return fr.Verdict
	}
	return fr.Verdict + ": " + fr.Breaches[0].String()
}

// FaultSpecs returns the bundled fault families, one per fault axis the
// model can break: crash/recover, crash without recovery, churn, message
// loss, duplication, partition, and the two drift regimes.
func FaultSpecs() []FaultSpec {
	return []FaultSpec{
		{Name: "crash-recover", Build: func(p model.Params, _ int64) *fault.Plan { return fault.CrashRecover(p) }},
		{Name: "crash", Build: func(p model.Params, _ int64) *fault.Plan { return fault.CrashForever(p) }},
		{Name: "churn", Build: func(p model.Params, _ int64) *fault.Plan { return fault.Churn(p) }},
		{Name: "loss", Build: func(p model.Params, _ int64) *fault.Plan { return fault.Lossy(p) }},
		{Name: "dup", Build: func(p model.Params, _ int64) *fault.Plan { return fault.Duplicating(p) }},
		{Name: "partition", Build: func(p model.Params, _ int64) *fault.Plan { return fault.Partitioned(p) }},
		{Name: "drift-mild", Build: func(p model.Params, _ int64) *fault.Plan { return fault.DriftMild(p) }},
		{Name: "drift", Build: func(p model.Params, _ int64) *fault.Plan { return fault.DriftHarsh(p) }},
	}
}

// FaultSpecNames lists the bundled fault family names, in FaultSpecs order.
func FaultSpecNames() []string {
	specs := FaultSpecs()
	names := make([]string, len(specs))
	for i, fs := range specs {
		names[i] = fs.Name
	}
	return names
}

// FaultSpecByName resolves a bundled fault family by name.
func FaultSpecByName(name string) (FaultSpec, error) {
	for _, fs := range FaultSpecs() {
		if fs.Name == name {
			return fs, nil
		}
	}
	return FaultSpec{}, fmt.Errorf("engine: unknown fault family %q (want %s)",
		name, strings.Join(FaultSpecNames(), "|"))
}

// faultRuntime builds the plan and per-run injector for a resolved
// scenario; (nil, nil, nil) when the scenario injects no faults.
func (sc Scenario) faultRuntime() (*fault.Plan, *fault.Injector, error) {
	if !sc.Faults.enabled() {
		return nil, nil, nil
	}
	plan := sc.Faults.Build(sc.Params, sc.Seed)
	in, err := fault.NewInjector(plan, sc.Params.N)
	if err != nil {
		return nil, nil, err
	}
	return plan, in, nil
}

// faultReport renders the run's dichotomy verdict. The clean horn requires
// the history to linearize (when checked), the serving copies to agree, no
// operation stranded pending, and every completed operation within its
// class bound plus the plan's crash-adjusted allowance. Anything else is
// the broken horn, with the injected faults and observed symptoms rendered
// as breaches — which model assumption broke, and by how much.
func faultReport(sc Scenario, dt spec.DataType, plan *fault.Plan, in *fault.Injector,
	res Result, offsets []model.Time, stats fault.Stats) *FaultReport {

	fr := &FaultReport{
		Family:  sc.Faults.label(),
		Plan:    plan.Name,
		Stats:   stats,
		Pending: res.Pending,
	}
	// The drift/window horizon is the run's last response: fault activity
	// after every operation answered cannot have delayed one.
	var lastRespond model.Time
	for _, op := range res.History.Ops() {
		if !op.Pending && op.Respond > lastRespond {
			lastRespond = op.Respond
		}
	}
	// Crash-adjusted class bounds: the theoretical bound plus the plan's
	// allowance for the fault windows overlapping the operation.
	var worstExcess model.Time
	var worstOp history.OpID
	var worstKind spec.OpKind
	for _, op := range res.History.Ops() {
		if op.Pending {
			continue
		}
		bound := sc.Backend.Bound(sc.Params, sc.X, dt.Class(op.Kind)) +
			plan.Allowance(op.Invoke, op.Respond, lastRespond)
		if excess := op.Latency() - bound; excess > worstExcess {
			worstExcess, worstOp, worstKind = excess, op.ID, op.Kind
		}
	}
	// Drift past the ε skew envelope breaks the model's precondition even
	// before a symptom materializes, so it is itself the broken horn.
	skewExcess := plan.SkewExcess(offsets, sc.Params.Epsilon, lastRespond)

	clean := res.Converged && (!res.Checked || res.Linearizable) &&
		res.Pending == 0 && worstExcess == 0 && skewExcess == 0
	if clean {
		fr.Verdict = VerdictWithinBound
		return fr
	}
	fr.Verdict = VerdictAssumptionBroken
	if in != nil {
		fr.Breaches = in.InjectedBreaches(lastRespond)
	}
	if skewExcess > 0 {
		fr.Breaches = append(fr.Breaches, fault.Breach{
			Assumption: fault.AssumptionBoundedSkew,
			Detail:     fmt.Sprintf("worst pairwise clock skew exceeds ε=%s by %s by the run's end", sc.Params.Epsilon, skewExcess),
			Amount:     skewExcess,
		})
	}
	if res.Checked && !res.Linearizable {
		fr.Breaches = append(fr.Breaches, fault.Breach{
			Assumption: fault.SymptomLinearizability,
			Detail:     "the faulted history admits no linearization",
		})
	}
	if !res.Converged {
		fr.Breaches = append(fr.Breaches, fault.Breach{
			Assumption: fault.SymptomConvergence,
			Detail:     res.Diverged,
		})
	}
	if worstExcess > 0 {
		fr.Breaches = append(fr.Breaches, fault.Breach{
			Assumption: fault.SymptomClassBound,
			Detail: fmt.Sprintf("operation %d (%s) exceeded its crash-adjusted %s bound by %s",
				worstOp, worstKind, dt.Class(worstKind), worstExcess),
			Amount: worstExcess,
		})
	}
	return fr
}
