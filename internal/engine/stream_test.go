package engine

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"timebounds/internal/check"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// streamGrid builds a deterministic verified grid big enough to keep a
// worker pool busy.
func streamGrid(seeds int) []Scenario {
	ss := make([]int64, seeds)
	for i := range ss {
		ss[i] = int64(i + 1)
	}
	return Grid{
		Backends: []Backend{Algorithm1{}, Centralized{}},
		Objects:  []spec.DataType{types.NewRegister(0), types.NewCounter()},
		Params:   []model.Params{engParams(3)},
		Seeds:    ss,
		Workloads: []workload.Spec{{
			OpsPerProcess: 6,
		}},
		Verify: true,
	}.Scenarios()
}

// referenceBatchRun is the pre-streaming batch path — the sequential
// scenario loop Run used before it was rebuilt over Stream — retained here
// as the bit-identical oracle.
func referenceBatchRun(scenarios []Scenario) Report {
	results := make([]Result, len(scenarios))
	var caches *check.CacheSet
	if !disableSharedChecker {
		caches = check.NewCacheSet()
	}
	for i, sc := range scenarios {
		results[i] = sc.run(runConfig{caches: caches, check: check.Options{NoIslands: disableIslandCheck}})
	}
	return Report{Results: results}
}

// TestRunOnStreamMatchesBatchPath asserts the acceptance criterion: Run
// rebuilt on Stream produces bit-identical Reports vs. the batch path, at
// workers 1 and 8.
func TestRunOnStreamMatchesBatchPath(t *testing.T) {
	scenarios := streamGrid(4)
	want := referenceBatchRun(scenarios)
	if err := want.Err(); err != nil {
		t.Fatalf("reference batch run failed: %v", err)
	}
	for _, workers := range []int{1, 8} {
		got := New(workers).Run(scenarios)
		if got.Incomplete != 0 {
			t.Fatalf("workers=%d: complete Run reported Incomplete=%d", workers, got.Incomplete)
		}
		if !reflect.DeepEqual(stripHistories(want), stripHistories(got)) {
			t.Fatalf("workers=%d: Report differs from the batch path", workers)
		}
		// Histories compare by content (pointers differ per run).
		for i := range want.Results {
			if want.Results[i].History.String() != got.Results[i].History.String() {
				t.Fatalf("workers=%d: scenario %d history differs", workers, i)
			}
		}
	}
}

// stripHistories zeroes the per-result history pointers so DeepEqual
// compares everything else bit for bit.
func stripHistories(r Report) Report {
	out := Report{Results: make([]Result, len(r.Results)), Incomplete: r.Incomplete}
	copy(out.Results, r.Results)
	for i := range out.Results {
		out.Results[i].History = nil
	}
	return out
}

// TestStreamYieldsEveryScenarioExactlyOnce checks completion-order
// delivery covers the input exactly, and each yielded Result matches the
// batch path's at the same index.
func TestStreamYieldsEveryScenarioExactlyOnce(t *testing.T) {
	scenarios := streamGrid(3)
	want := referenceBatchRun(scenarios)
	seen := make(map[int]int)
	for i, res := range New(4).Stream(context.Background(), scenarios) {
		seen[i]++
		if res.Name != want.Results[i].Name {
			t.Fatalf("index %d: name %q, want %q", i, res.Name, want.Results[i].Name)
		}
	}
	if len(seen) != len(scenarios) {
		t.Fatalf("stream yielded %d distinct indexes, want %d", len(seen), len(scenarios))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d yielded %d times", i, n)
		}
	}
}

// TestStreamCancellationPartialAndNoLeaks cancels mid-grid and asserts a
// prompt partial Report with every worker goroutine gone.
func TestStreamCancellationPartialAndNoLeaks(t *testing.T) {
	scenarios := streamGrid(16) // 128 scenarios
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	e := New(4)
	n := 0
	for range e.Stream(ctx, scenarios) {
		n++
		if n == 5 {
			cancel()
		}
	}
	cancel()
	if n >= len(scenarios) {
		t.Fatalf("cancellation did not cut the stream short (%d of %d yielded)", n, len(scenarios))
	}
	if n < 5 {
		t.Fatalf("stream ended after %d results, before the cancellation point", n)
	}
	waitForGoroutines(t, before)

	// RunContext: the partial report keeps input order and counts the
	// scenarios that never reported.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2() // cancelled up front: nothing may start
	rep := e.RunContext(ctx2, scenarios)
	if len(rep.Results)+rep.Incomplete != len(scenarios) {
		t.Fatalf("partial report: %d results + %d incomplete != %d scenarios",
			len(rep.Results), rep.Incomplete, len(scenarios))
	}
	waitForGoroutines(t, before)
}

// TestStreamEarlyBreakStopsWorkers breaks out of the iterator and asserts
// the pool unwinds.
func TestStreamEarlyBreakStopsWorkers(t *testing.T) {
	scenarios := streamGrid(16)
	before := runtime.NumGoroutine()
	for i := range New(4).Stream(context.Background(), scenarios) {
		_ = i
		break
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines waits for the goroutine count to return to (near) the
// baseline; workers still alive after the deadline are a leak.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestRunContextCompleteEqualsRun sanity-checks that an uncancelled
// RunContext is exactly Run.
func TestRunContextCompleteEqualsRun(t *testing.T) {
	scenarios := streamGrid(2)
	a := New(2).RunContext(context.Background(), scenarios)
	b := New(2).Run(scenarios)
	if !reflect.DeepEqual(stripHistories(a), stripHistories(b)) {
		t.Fatal("RunContext(background) differs from Run")
	}
}
