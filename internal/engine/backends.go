package engine

import (
	"fmt"

	"timebounds/internal/baseline"
	"timebounds/internal/bounds"
	"timebounds/internal/core"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/tob"
	"timebounds/internal/workload"
)

// Instance is one runnable replicated object wired into a fresh simulator.
// It is the engine's unit of isolation: every scenario run builds its own.
type Instance interface {
	workload.Target
	// ConvergedState returns the common canonical state encoding of the
	// object's authoritative copies, or an error if they diverged.
	ConvergedState() (string, error)
}

// BuildConfig is everything a Backend needs to construct an Instance.
type BuildConfig struct {
	// Params are the timing parameters (ε already resolved).
	Params model.Params
	// X is the accessor/mutator tradeoff (Algorithm 1 only; others ignore it).
	X model.Time
	// DataType is the sequential specification to replicate.
	DataType spec.DataType
	// Sim is the simulator configuration (delay policy, clock offsets,
	// strictness). Params is overwritten with BuildConfig.Params.
	Sim sim.Config
}

// Backend is an implementation strategy for a linearizable shared object:
// Algorithm 1, the folklore baselines, or total-order broadcast. Backends
// are stateless descriptors; Build gives each run an isolated instance.
type Backend interface {
	// Name is the stable identifier used in reports and flags.
	Name() string
	// Build constructs an isolated instance for one run.
	Build(cfg BuildConfig) (Instance, error)
	// Bound returns the backend's theoretical worst-case response time for
	// operations of the given class, for measured-vs-bound margins.
	Bound(p model.Params, x model.Time, class spec.OpClass) model.Time
}

// Algorithm1 is the paper's Chapter V algorithm: pure mutators in ε+X,
// pure accessors in d+ε-X, everything else in d+ε.
type Algorithm1 struct {
	// Tuning optionally overrides the algorithm's wait durations. Zero
	// value means the proven-correct defaults; only the lower-bound
	// machinery sets it, to build deliberately premature implementations.
	Tuning core.Tuning
}

// Name implements Backend.
func (Algorithm1) Name() string { return "algorithm1" }

// Build implements Backend.
func (a Algorithm1) Build(cfg BuildConfig) (Instance, error) {
	return core.NewCluster(core.Config{Params: cfg.Params, X: cfg.X, Tuning: a.Tuning},
		cfg.DataType, cfg.Sim)
}

// WithTuning implements TunableBackend: it returns an Algorithm1 with the
// tuning applied, the hook adversary specs use to build deliberately
// premature implementations.
func (a Algorithm1) WithTuning(t core.Tuning) Backend {
	a.Tuning = t
	return a
}

// Bound implements Backend.
func (Algorithm1) Bound(p model.Params, x model.Time, class spec.OpClass) model.Time {
	switch class {
	case spec.ClassPureMutator:
		return bounds.UpperMutator(p, x)
	case spec.ClassPureAccessor:
		return bounds.UpperAccessor(p, x)
	default:
		return bounds.UpperOOP(p)
	}
}

// AllOOP is the folklore timestamp-total-order implementation: Algorithm 1
// with every operation forced onto the ordered OOP path, so everything
// responds in at most d+ε regardless of class.
type AllOOP struct{}

// Name implements Backend.
func (AllOOP) Name() string { return "all-oop" }

// Build implements Backend.
func (AllOOP) Build(cfg BuildConfig) (Instance, error) {
	return core.NewCluster(core.Config{Params: cfg.Params, X: cfg.X},
		baseline.AllOOP{Inner: cfg.DataType}, cfg.Sim)
}

// Bound implements Backend.
func (AllOOP) Bound(p model.Params, _ model.Time, _ spec.OpClass) model.Time {
	return bounds.UpperOOP(p)
}

// Centralized is the folklore coordinator baseline: process 0 owns the
// object and every remote operation is a request/response round trip, so
// the worst case is 2d.
type Centralized struct{}

// Name implements Backend.
func (Centralized) Name() string { return "centralized" }

// Build implements Backend.
func (Centralized) Build(cfg BuildConfig) (Instance, error) {
	procs := make([]sim.Process, cfg.Params.N)
	states := make([]interface{ StateEncoding() string }, cfg.Params.N)
	for i := range procs {
		c := baseline.NewCentralized(0, cfg.DataType)
		procs[i] = c
		states[i] = c
	}
	s, err := sim.New(withParams(cfg), procs)
	if err != nil {
		return nil, err
	}
	// Only the coordinator's copy is authoritative.
	return &simInstance{s: s, dt: cfg.DataType, states: states[:1]}, nil
}

// Bound implements Backend.
func (Centralized) Bound(p model.Params, _ model.Time, _ spec.OpClass) model.Time {
	return bounds.CentralizedUpper(p)
}

// TOB is the sequencer-based total-order-broadcast baseline: process 0
// sequences every operation; a non-sequencer operation costs one hop in and
// one ordered hop out, so the worst case is 2d — no faster than the
// centralized scheme, exactly as Chapter I.A.3 observes.
type TOB struct{}

// Name implements Backend.
func (TOB) Name() string { return "tob" }

// Build implements Backend.
func (TOB) Build(cfg BuildConfig) (Instance, error) {
	procs := make([]sim.Process, cfg.Params.N)
	states := make([]interface{ StateEncoding() string }, cfg.Params.N)
	for i := range procs {
		o := tob.NewObject(model.ProcessID(i), 0, cfg.DataType)
		procs[i] = o
		states[i] = o
	}
	s, err := sim.New(withParams(cfg), procs)
	if err != nil {
		return nil, err
	}
	return &simInstance{s: s, dt: cfg.DataType, states: states}, nil
}

// Bound implements Backend.
func (TOB) Bound(p model.Params, _ model.Time, _ spec.OpClass) model.Time {
	return 2 * p.D
}

// withParams stamps the scenario params into the sim config.
func withParams(cfg BuildConfig) sim.Config {
	sc := cfg.Sim
	sc.Params = cfg.Params
	return sc
}

// NewSimInstance adapts a raw simulator plus per-process state probes to
// the Instance interface, for custom backends defined outside this package
// (e.g. the adversary package's deliberately broken Figure 1
// implementation). Convergence compares every probe against the first.
func NewSimInstance(s *sim.Simulator, dt spec.DataType, states []interface{ StateEncoding() string }) Instance {
	return &simInstance{s: s, dt: dt, states: states}
}

// simInstance adapts a raw simulator plus per-process state probes to the
// Instance interface, for backends that are not core clusters.
type simInstance struct {
	s      *sim.Simulator
	dt     spec.DataType
	states []interface{ StateEncoding() string }
}

var _ Instance = (*simInstance)(nil)

func (i *simInstance) Invoke(at model.Time, proc model.ProcessID, kind spec.OpKind, arg spec.Value) {
	i.s.Invoke(at, proc, kind, arg)
}

func (i *simInstance) Run(horizon model.Time) error { return i.s.Run(horizon) }

func (i *simInstance) History() *history.History { return i.s.History() }

func (i *simInstance) DataType() spec.DataType { return i.dt }

func (i *simInstance) Simulator() *sim.Simulator { return i.s }

func (i *simInstance) ConvergedState() (string, error) {
	enc := i.states[0].StateEncoding()
	for j, st := range i.states {
		if got := st.StateEncoding(); got != enc {
			return "", fmt.Errorf("engine: copy %d state %q != copy 0 state %q", j, got, enc)
		}
	}
	return enc, nil
}

// Backends returns every bundled backend, Algorithm 1 first.
func Backends() []Backend {
	return []Backend{Algorithm1{}, AllOOP{}, Centralized{}, TOB{}}
}

// BackendByName resolves a backend by its Name, for flags and configs.
func BackendByName(name string) (Backend, error) {
	for _, b := range Backends() {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("engine: unknown backend %q (want algorithm1|all-oop|centralized|tob)", name)
}
