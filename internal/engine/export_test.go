package engine

import "timebounds/internal/spec"

// SetSharedCheckerDisabled toggles cross-run checker-state sharing, so the
// equivalence tests can prove sharing is unobservable in Reports. It
// returns a restore function.
func SetSharedCheckerDisabled(v bool) (restore func()) {
	prev := disableSharedChecker
	disableSharedChecker = v
	return func() { disableSharedChecker = prev }
}

// SetIslandCheckDisabled toggles within-history concurrency-island
// decomposition in the verifier, so the equivalence tests can prove
// island-parallel checking is unobservable in Reports. It returns a
// restore function.
func SetIslandCheckDisabled(v bool) (restore func()) {
	prev := disableIslandCheck
	disableIslandCheck = v
	return func() { disableIslandCheck = prev }
}

// ExpandSharded exposes the sharded expansion, and MergeSharded the
// fold from per-shard Results back into a ShardedReport, so tests can
// inject doctored shard results (e.g. a per-shard linearizability
// violation) and assert the composed verdict fails.
func ExpandSharded(ss ShardedScenario) (plan ShardPlan, scs []Scenario, err error) {
	return ss.expand()
}

// ShardPlan aliases the unexported plan type for test signatures.
type ShardPlan = shardPlan

// MergeSharded folds an engine Report of per-shard results into the
// sharded report under the given plan.
func MergeSharded(plan ShardPlan, rep Report) ShardedReport { return plan.merge(rep) }

// SetCorruptHandoff installs a rewrite of every synthetic handoff write's
// transferred value — a modeled broken state transfer, the failure mode
// only the stitched cross-epoch check can catch. It returns a restore
// function.
func SetCorruptHandoff(f func(key string, v spec.Value) spec.Value) (restore func()) {
	prev := corruptHandoff
	corruptHandoff = f
	return func() { corruptHandoff = prev }
}
