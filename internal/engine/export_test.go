package engine

// SetSharedCheckerDisabled toggles cross-run checker-state sharing, so the
// equivalence tests can prove sharing is unobservable in Reports. It
// returns a restore function.
func SetSharedCheckerDisabled(v bool) (restore func()) {
	prev := disableSharedChecker
	disableSharedChecker = v
	return func() { disableSharedChecker = prev }
}
