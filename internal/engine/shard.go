package engine

import (
	"fmt"
	"sort"
	"strings"

	"timebounds/internal/check"
	"timebounds/internal/keyspace"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/workload"
)

// ShardedScenario runs one keyed workload as engine-managed per-shard
// sub-clusters: the key space is partitioned into shards, every shard
// becomes an ordinary Scenario over its own dictionary sub-cluster
// (isolated simulator, own delay draws), the shards run across the
// engine's worker pool, and the per-shard Results fold back into a single
// ShardedReport — a composed linearizability verdict (linearizability is
// local, so the store is linearizable iff every shard is), aggregate
// latency-vs-bound margins, and shard-skew statistics.
//
// This is the engine-managed form of what examples/kvstore used to
// hand-roll with per-key schedule bookkeeping.
type ShardedScenario struct {
	// Name labels the sharded run; empty names are derived from the
	// coordinates.
	Name string
	// Backend is the implementation strategy of every shard; nil means
	// Algorithm1.
	Backend Backend
	// Params are the per-shard system timing parameters.
	Params model.Params
	// X is Algorithm 1's accessor/mutator tradeoff.
	X model.Time
	// Seed drives the keyed workload generation and each shard's delay
	// draws (shard i runs under a seed derived from Seed and i).
	Seed int64
	// Delay is the message-delay adversary, applied per shard.
	Delay DelaySpec
	// Workload is the keyed operation-stream spec.
	Workload workload.Sharded
	// Faults injects a fault plan into every shard's sub-cluster.
	Faults FaultSpec
	// Verify runs the linearizability checker on every shard history and
	// composes the verdicts.
	Verify bool
	// Horizon bounds each shard simulation; zero picks a generous default.
	Horizon model.Time
	// Plan, when set, replaces the workload's partition function with a
	// versioned range partition map plus a migration schedule
	// (internal/keyspace): operations route by the map of their ownership
	// epoch, each migration runs drain-then-cutover with a synthetic
	// state-transfer write, and — with Verify — every migrated key's
	// history is split at the handoff and recomposed through check.Compose
	// (see migrate.go). The plan's base map decides the shard count;
	// Workload.Partition must be nil and Workload.Shards must be 0 or
	// match.
	Plan *keyspace.Plan
	// Drain is the quiesce window before each cutover: operations on
	// moving keys offered within Drain of the cutover are deferred past
	// it. It must exceed the mutator bound so drained state is settled; 0
	// picks max(4d, 2×mutator bound). Migrated keys' post-cutover
	// operations are also deferred to at least cutover+Drain (the settle
	// window).
	Drain model.Time
}

// resolved fills the derived name in.
func (ss ShardedScenario) resolved() ShardedScenario {
	if ss.Backend == nil {
		ss.Backend = Algorithm1{}
	}
	if ss.Params.Epsilon == 0 {
		// Same default the per-shard scenarios resolve to; the merged
		// bound checks must use identical parameters.
		ss.Params.Epsilon = ss.Params.OptimalSkew()
	}
	if ss.Name == "" {
		label := ss.Workload.Name
		if label == "" {
			label = "sharded"
		}
		// Shards 0 means one shard per key; the partition size is only
		// known after expansion, so the name echoes the declared value.
		keys := len(ss.Workload.Keys)
		if ss.Workload.StreamOps != nil {
			keys = ss.Workload.KeySpace
		}
		shards := ss.Workload.Shards
		migs := ""
		if ss.Plan != nil {
			shards = ss.Plan.Base.Shards
			migs = fmt.Sprintf(",migs=%d", len(ss.Plan.Migrations))
		}
		ss.Name = fmt.Sprintf("%s/%s/n=%d,d=%s,u=%s/keys=%d,shards=%d%s/seed=%d",
			label, ss.Backend.Name(), ss.Params.N, ss.Params.D, ss.Params.U,
			keys, shards, migs, ss.Seed)
	}
	return ss
}

// shardPlan carries the expansion bookkeeping from expand to merge.
type shardPlan struct {
	ss     ShardedScenario
	shards []workload.Shard // every shard, including empty ones
	run    []int            // indices into shards of the scenarios actually run
	mig    *migrateState    // migration bookkeeping; nil without a Plan
}

// expand partitions the keyed workload and derives one Scenario per
// non-empty shard. Empty shards (keys whose explicit schedule holds no
// operations) contribute no history and are vacuously linearizable, so
// they are planned but not run. Scenarios with a migration plan route by
// ownership epoch instead (migrate.go).
func (ss ShardedScenario) expand() (shardPlan, []Scenario, error) {
	if ss.Plan != nil {
		return ss.expandMigrating()
	}
	ss = ss.resolved()
	shards, err := ss.Workload.Expand(ss.Params, ss.Seed)
	if err != nil {
		return shardPlan{}, nil, fmt.Errorf("engine: sharded scenario %q: %w", ss.Name, err)
	}
	plan := shardPlan{ss: ss, shards: shards}
	var scs []Scenario
	for i, sh := range shards {
		if len(sh.Spec.Explicit) == 0 {
			continue
		}
		plan.run = append(plan.run, i)
		scs = append(scs, ss.shardScenario(sh.Index, sh.Spec))
	}
	return plan, scs, nil
}

// Scenarios returns the per-shard engine scenarios the sharded scenario
// expands into, for tools that want to inspect or re-run the expansion.
func (ss ShardedScenario) Scenarios() ([]Scenario, error) {
	_, scs, err := ss.expand()
	return scs, err
}

// ShardStats summarizes how evenly the keyed workload spread across the
// sub-clusters.
type ShardStats struct {
	// Shards is the partition size; Empty counts shards that received no
	// operations (planned but not run).
	Shards int
	Empty  int
	// MinOps/MaxOps/MeanOps summarize completed operations per shard
	// (empty shards count as 0).
	MinOps  int
	MaxOps  int
	MeanOps float64
	// Imbalance is MaxOps / MeanOps: 1 means perfectly balanced; large
	// values mean one shard carries the workload (MeanOps 0 yields 0).
	Imbalance float64
	// SlowestShard names the shard with the largest worst-case latency.
	SlowestShard string
	// WorstLatency is that shard's worst completed-operation latency.
	WorstLatency model.Time
	// PerShardOps is each shard's completed client-operation count
	// (synthetic handoff writes excluded), indexed by shard — the observed
	// load keyspace.SplitHot plans follow-up migrations from.
	PerShardOps []int
	// Epochs, MovedKeys, HandoffOps, and DrainDeferred summarize a
	// migration plan's execution: ownership epochs run, distinct keys
	// relocated, synthetic state-transfer writes issued, and client
	// operations deferred out of drain/settle windows. All zero without a
	// Plan (Epochs is 0, not 1, for static partitions).
	Epochs        int
	MovedKeys     int
	HandoffOps    int
	DrainDeferred int
	// PerEpoch summarizes skew per ownership epoch; nil without a Plan.
	PerEpoch []EpochStats
}

// ShardedReport is the folded outcome of one sharded scenario: the
// per-shard Results plus the composed verdicts of the whole store.
type ShardedReport struct {
	// Name identifies the sharded scenario.
	Name string
	// Shards holds the per-shard Results, in shard order (empty shards
	// omitted — they hold no history).
	Shards []Result
	// Composition is the per-shard linearizability composition; its
	// verdict is the store's (locality of linearizability).
	Composition check.Composition
	// PerKind aggregates latency statistics across every shard, computed
	// from the merged per-shard histories.
	PerKind map[spec.OpKind]workload.Stats
	// Bounds compares the worst measured latency across shards per
	// operation class against the backend's theoretical bound.
	Bounds []BoundCheck
	// Stats summarizes shard skew.
	Stats ShardStats
	// Ops is the total number of completed client operations across
	// shards (synthetic handoff writes are accounted in
	// Stats.HandoffOps, not here).
	Ops int
	// Handoffs records each migrated key's state transfer and its
	// stitched cross-epoch verdict, in (migration, key) order; nil
	// without a Plan.
	Handoffs []Handoff
	// HotKeys are the most-operated observed keys (top 10, by client
	// operation count), for load-driven hot-key splitting
	// (keyspace.SplitHot); nil without a Plan.
	HotKeys []keyspace.KeyLoad
}

// Linearizable reports the composed store verdict (only meaningful when
// the scenario verified).
func (r ShardedReport) Linearizable() bool { return r.Composition.Linearizable() }

// OK reports whether every shard ran, converged, linearized (when
// checked), and stayed within every class bound.
func (r ShardedReport) OK() bool { return r.Err() == nil }

// Err returns the first shard failure, composition violation, or bound
// violation as an error, or nil.
func (r ShardedReport) Err() error {
	for _, res := range r.Shards {
		if res.Err != "" {
			return fmt.Errorf("engine: shard %q: %s", res.Name, res.Err)
		}
		if !res.Converged {
			return fmt.Errorf("engine: shard %q: %s", res.Name, res.Diverged)
		}
	}
	if len(r.Shards) > 0 && r.Shards[0].Checked {
		if err := r.Composition.Err(); err != nil {
			return fmt.Errorf("engine: sharded scenario %q: %w", r.Name, err)
		}
	}
	for _, b := range r.Bounds {
		if !b.OK {
			return fmt.Errorf("engine: sharded scenario %q: %s worst latency %s exceeds bound %s",
				r.Name, b.Class, b.Measured, b.Bound)
		}
	}
	return nil
}

// String renders the sharded report: one row per shard plus the composed
// verdict, aggregate bounds, and skew line.
func (r ShardedReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Name)
	w := 8
	for _, res := range r.Shards {
		if len(res.Name) > w {
			w = len(res.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %5s  %-6s  %10s  %s\n", w, "shard", "ops", "linear", "worst", "state")
	for _, res := range r.Shards {
		if res.Err != "" {
			fmt.Fprintf(&b, "%-*s  ERROR %s\n", w, res.Name, res.Err)
			continue
		}
		lin := "-"
		if res.Checked {
			lin = fmt.Sprintf("%v", res.Linearizable)
		}
		state := res.State
		if !res.Converged {
			state = "DIVERGED"
		}
		if len(state) > 32 {
			state = state[:29] + "..."
		}
		fmt.Fprintf(&b, "%-*s  %5d  %-6s  %10s  %s\n", w, res.Name, res.Ops, lin, res.WorstLatency(), state)
	}
	for _, bc := range r.Bounds {
		fmt.Fprintf(&b, "class %-4s  count=%-5d worst=%-10s bound=%-10s margin=%s\n",
			bc.Class, bc.Count, bc.Measured, bc.Bound, bc.Margin())
	}
	fmt.Fprintf(&b, "shards=%d (empty=%d) ops min/mean/max = %d/%.1f/%d, imbalance=%.2f, slowest=%s (%s)\n",
		r.Stats.Shards, r.Stats.Empty, r.Stats.MinOps, r.Stats.MeanOps, r.Stats.MaxOps,
		r.Stats.Imbalance, r.Stats.SlowestShard, r.Stats.WorstLatency)
	for _, es := range r.Stats.PerEpoch {
		fmt.Fprintf(&b, "epoch %d  ops=%-6d max=%-6d hottest=shard %d  imbalance=%.2f\n",
			es.Epoch, es.Ops, es.MaxOps, es.Hottest, es.Imbalance)
	}
	if len(r.Handoffs) > 0 {
		fmt.Fprintf(&b, "migrations: %d keys moved, %d handoff writes, %d ops drain-deferred\n",
			r.Stats.MovedKeys, r.Stats.HandoffOps, r.Stats.DrainDeferred)
		for _, h := range r.Handoffs {
			verdict := "-"
			if h.Checked {
				verdict = fmt.Sprintf("%v", h.Linearizable)
			}
			fmt.Fprintf(&b, "  mig %d @%s  %s: shard %d → %d  transferred=%v  stitched-linearizable=%s\n",
				h.Migration, h.Cutover, h.Key, h.From, h.To, h.Transferred, verdict)
		}
	}
	if len(r.Shards) > 0 && r.Shards[0].Checked {
		fmt.Fprintf(&b, "composed linearizable: %v\n", r.Linearizable())
	}
	return b.String()
}

// RunSharded expands the sharded scenario, runs its shards across the
// worker pool, and folds the per-shard Results into one ShardedReport.
// Same scenario ⇒ bit-identical report at any worker count, exactly like
// Run.
func (e *Engine) RunSharded(ss ShardedScenario) (ShardedReport, error) {
	plan, scs, err := ss.expand()
	if err != nil {
		return ShardedReport{}, err
	}
	return plan.merge(e.Run(scs)), nil
}

// RunSharded executes a sharded scenario on a default engine; shorthand
// for New(0).RunSharded.
func RunSharded(ss ShardedScenario) (ShardedReport, error) { return New(0).RunSharded(ss) }

// merge folds the per-shard engine Results back into the store-level
// report: composed linearizability (per-shard components plus, under a
// migration plan, the per-epoch and stitched per-key components), aggregate
// per-kind stats recomputed from the merged histories, per-class
// worst-vs-bound checks, and skew.
func (p shardPlan) merge(rep Report) ShardedReport {
	out := ShardedReport{
		Name:   p.ss.Name,
		Shards: rep.Results,
	}
	out.Stats.Shards = len(p.shards)
	out.Stats.Empty = len(p.shards) - len(p.run)
	out.Stats.MinOps = -1 // sentinel until the first shard (or empty shard) is folded
	out.Stats.PerShardOps = make([]int, len(p.shards))

	// On the streaming path the cross-shard latency aggregate folds
	// through OnlineStats sketches — constant memory per kind instead of
	// one retained sample per operation, matching the streaming schedule's
	// constant-memory contract. Static specs keep the exact
	// SummarizeSamples fold (percentiles from full samples).
	streaming := p.ss.Workload.StreamOps != nil
	var latencies map[spec.OpKind][]model.Time
	var online map[spec.OpKind]*workload.OnlineStats
	if streaming {
		online = make(map[spec.OpKind]*workload.OnlineStats)
	} else {
		latencies = make(map[spec.OpKind][]model.Time)
	}
	observe := func(kind spec.OpKind, l model.Time) {
		if streaming {
			os, ok := online[kind]
			if !ok {
				os = workload.NewOnlineStats()
				online[kind] = os
			}
			os.Observe(l)
		} else {
			latencies[kind] = append(latencies[kind], l)
		}
	}

	components := make([]check.Component, 0, len(rep.Results))
	worstByClass := make(map[spec.OpClass]model.Time)
	countByClass := make(map[spec.OpClass]int)
	for ri, res := range rep.Results {
		shardIdx := -1
		if ri < len(p.run) {
			shardIdx = p.run[ri]
		}
		components = append(components, check.Component{
			Name:         res.Name,
			Epoch:        check.WholeRun,
			Checked:      res.Checked,
			Linearizable: res.Linearizable,
		})
		clientOps := res.Ops
		if res.History != nil {
			for _, op := range res.History.Ops() {
				if op.Pending {
					continue
				}
				if p.mig.isHandoff(shardIdx, op) {
					// Synthetic state-transfer writes are the migration
					// mechanism, not client traffic: they stay out of the
					// client aggregates and are accounted in HandoffOps.
					clientOps--
					continue
				}
				observe(op.Kind, op.Latency())
			}
		}
		out.Ops += clientOps
		if shardIdx >= 0 && shardIdx < len(out.Stats.PerShardOps) {
			out.Stats.PerShardOps[shardIdx] = clientOps
		}
		if clientOps < out.Stats.MinOps || out.Stats.MinOps < 0 {
			out.Stats.MinOps = clientOps
		}
		if clientOps > out.Stats.MaxOps {
			out.Stats.MaxOps = clientOps
		}
		if wl := res.WorstLatency(); wl > out.Stats.WorstLatency || out.Stats.SlowestShard == "" {
			out.Stats.WorstLatency = wl
			out.Stats.SlowestShard = res.Name
		}
		for _, bc := range res.Bounds {
			if _, ok := worstByClass[bc.Class]; !ok {
				worstByClass[bc.Class] = 0
			}
			if bc.Measured > worstByClass[bc.Class] {
				worstByClass[bc.Class] = bc.Measured
			}
			countByClass[bc.Class] += bc.Count
		}
	}
	if out.Stats.Empty > 0 || out.Stats.MinOps < 0 {
		out.Stats.MinOps = 0
	}
	if out.Stats.Shards > 0 {
		out.Stats.MeanOps = float64(out.Ops) / float64(out.Stats.Shards)
	}
	if out.Stats.MeanOps > 0 {
		out.Stats.Imbalance = float64(out.Stats.MaxOps) / out.Stats.MeanOps
	}
	if p.mig != nil {
		components = p.mig.finish(&out, p, components)
	}
	out.Composition = check.Compose(components...)
	if streaming {
		out.PerKind = make(map[spec.OpKind]workload.Stats, len(online))
		for kind, os := range online {
			out.PerKind[kind] = os.Stats(kind)
		}
	} else {
		out.PerKind = workload.SummarizeSamples(latencies)
	}

	classes := make([]spec.OpClass, 0, len(worstByClass))
	for class := range worstByClass {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, class := range classes {
		bound := p.ss.Backend.Bound(p.ss.Params, p.ss.X, class)
		out.Bounds = append(out.Bounds, BoundCheck{
			Class:    class,
			Count:    countByClass[class],
			Bound:    bound,
			Measured: worstByClass[class],
			OK:       worstByClass[class] <= bound,
		})
	}
	return out
}
