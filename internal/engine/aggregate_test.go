package engine

import (
	"context"
	"testing"

	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// TestAggregateMatchesExactStats is the acceptance criterion for online
// aggregation: folding a grid's streamed Results into an Aggregate must
// reproduce the exact (retain-everything) statistics — count, min, max and
// mean bit for bit, and p99 within the documented sketch error (the
// sketch rounds up to a bucket edge, never down, by at most 2^-7).
func TestAggregateMatchesExactStats(t *testing.T) {
	dt := types.NewRegister(0)
	scenarios := streamGrid(6)
	agg := NewAggregate()
	exact := make(map[spec.OpKind][]model.Time)
	for _, res := range New(4).Stream(context.Background(), scenarios) {
		agg.Add(dt, res)
		for _, op := range res.History.Ops() {
			exact[op.Kind] = append(exact[op.Kind], op.Latency())
		}
	}
	want := workload.SummarizeSamples(exact)
	got := agg.KindStats()
	if len(got) != len(want) {
		t.Fatalf("aggregate has %d kinds, exact fold has %d", len(got), len(want))
	}
	for kind, w := range want {
		g, ok := got[kind]
		if !ok {
			t.Fatalf("kind %s missing from aggregate", kind)
		}
		if g.Count != w.Count || g.Min != w.Min || g.Max != w.Max || g.Mean != w.Mean {
			t.Errorf("%s: online {count %d min %s max %s mean %s} vs exact {%d %s %s %s}",
				kind, g.Count, g.Min, g.Max, g.Mean, w.Count, w.Min, w.Max, w.Mean)
		}
		if g.P99 < w.P99 {
			t.Errorf("%s: sketched p99 %s underestimates exact %s", kind, g.P99, w.P99)
		}
		if float64(g.P99) > float64(w.P99)*(1+1.0/128)+1 {
			t.Errorf("%s: sketched p99 %s beyond 0.8%% of exact %s", kind, g.P99, w.P99)
		}
		// The bucket edge must never out-report the tracked extremes:
		// on tiny histories the p99 order statistic IS the max, and an
		// unclamped upper edge would exceed it (the PR 5 regression).
		if g.P99 > g.Max || g.P99 < g.Min {
			t.Errorf("%s: sketched p99 %s outside tracked [%s, %s]", kind, g.P99, g.Min, g.Max)
		}
	}
	if !agg.OK() {
		t.Errorf("clean grid aggregated as failing: %+v", agg.Errs)
	}
	if agg.Scenarios != len(scenarios) {
		t.Errorf("aggregate saw %d scenarios, want %d", agg.Scenarios, len(scenarios))
	}
	if u := agg.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %v outside (0, 1] for an unsaturated closed loop", u)
	}
}

// TestAggregateInFlightOnCancelledRuns is the regression for the
// planned-vs-completed occupancy bug: on a cancelled grid, utilization,
// throughput, and Little's-law InFlight must be computed from the work
// that actually completed, not the offered schedule. Folding a partial
// result set must yield exactly the same per-scenario-derived figures as
// folding those same results out of a complete run — and a fold that saw
// no histories at all must report zero occupancy, not a planned-load
// figure for work that never ran.
func TestAggregateInFlightOnCancelledRuns(t *testing.T) {
	dt := types.NewRegister(0)
	scenarios := streamGrid(4)
	full := New(2).Run(scenarios)
	if err := full.Err(); err != nil {
		t.Fatal(err)
	}

	// A cancelled run delivers a strict subset of results. Simulate the
	// subset deterministically (Stream's cut point is scheduling-
	// dependent) and fold it.
	partial := NewAggregate()
	for _, res := range full.Results[:len(full.Results)/3] {
		partial.Add(dt, res)
	}
	want := NewAggregate()
	for _, res := range full.Results {
		want.Add(dt, res)
	}

	if tp := partial.Throughput(); tp <= 0 {
		t.Fatalf("partial fold throughput = %v, want > 0", tp)
	}
	if fl := partial.InFlight(); fl <= 0 {
		t.Fatalf("partial fold InFlight = %v, want > 0", fl)
	}
	if u := partial.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("partial fold utilization = %v outside (0, 1]", u)
	}
	// Completed-work accounting: L = λW exactly, from measured terms.
	for _, agg := range []*Aggregate{partial, want} {
		lw := agg.Throughput() * float64(agg.Sojourn.Mean()) / 1e9
		if got := agg.InFlight(); got != lw {
			t.Fatalf("InFlight = %v, want λW = %v", got, lw)
		}
	}

	// No histories folded at all (every result dropped before reporting):
	// occupancy must be zero, not offered-load × anything.
	empty := NewAggregate()
	empty.Add(dt, Result{Name: "counted-only", Ops: 64, Converged: true})
	if empty.Throughput() != 0 || empty.InFlight() != 0 || empty.Utilization() != 0 {
		t.Fatalf("history-free fold reports occupancy: throughput=%v inflight=%v util=%v",
			empty.Throughput(), empty.InFlight(), empty.Utilization())
	}
}

func TestAggregateCountsFailures(t *testing.T) {
	agg := NewAggregate()
	agg.Add(nil, Result{Name: "boom", Err: "exploded"})
	agg.Add(nil, Result{Name: "ok", Converged: true})
	if agg.Failed != 1 || len(agg.Errs) != 1 || agg.OK() {
		t.Fatalf("failure accounting wrong: %+v", agg)
	}
	agg2 := NewAggregate()
	agg2.Add(nil, Result{Name: "viol", Checked: true, Linearizable: false, Converged: true})
	agg2.Add(nil, Result{Name: "div", Converged: false})
	agg2.Add(nil, Result{Name: "exceed", Converged: true, Bounds: []BoundCheck{{OK: false}}})
	if agg2.NotLinearizable != 1 || agg2.Diverged != 1 || agg2.BoundExceeded != 1 || agg2.OK() {
		t.Fatalf("verdict counters wrong: %+v", agg2)
	}
}

// TestAggregateErrsCapped keeps a failing mega-grid from growing the
// aggregate unboundedly.
func TestAggregateErrsCapped(t *testing.T) {
	agg := NewAggregate()
	for i := 0; i < 100; i++ {
		agg.Add(nil, Result{Name: "boom", Err: "exploded"})
	}
	if agg.Failed != 100 {
		t.Fatalf("Failed = %d, want 100", agg.Failed)
	}
	if len(agg.Errs) > 16 {
		t.Fatalf("Errs grew to %d entries, want ≤ 16", len(agg.Errs))
	}
}

// TestSojournSeesQueueingDelay drives one process open-loop faster than
// its service rate and asserts sojourn time (arrival→response) grows while
// service latency stays within the class bound — the signal the Study API
// detects saturation with.
func TestSojournSeesQueueingDelay(t *testing.T) {
	p := engParams(3)
	// Offered interarrival far below the ~d service time of an OOP-class
	// operation: arrivals must queue behind the one-pending rule.
	sc := Scenario{
		DataType: types.NewRMWRegister(0),
		Params:   p,
		Seed:     1,
		Delay:    DelaySpec{Mode: DelayWorst},
		Workload: workload.Spec{
			Mode:          workload.Open,
			Mix:           workload.OpMix{{Kind: types.OpRMW, Weight: 1, Arg: func(i int) spec.Value { return i }}},
			OpsPerProcess: 10,
			Spacing:       p.D / 10,
			Start:         p.D,
		},
	}
	res, err := New(1).RunOne(sc)
	if err != nil {
		t.Fatal(err)
	}
	bound := Algorithm1{}.Bound(p, 0, spec.ClassOther)
	sawQueueing := false
	for _, op := range res.History.Ops() {
		if op.Latency() > bound {
			t.Errorf("op %d service latency %s exceeds bound %s", op.ID, op.Latency(), bound)
		}
		if op.Sojourn() > op.Latency() {
			sawQueueing = true
			if op.Arrival >= op.Invoke {
				t.Errorf("op %d: deferred op has arrival %s ≥ invoke %s", op.ID, op.Arrival, op.Invoke)
			}
		}
	}
	if !sawQueueing {
		t.Fatal("an overloaded open loop recorded no queueing wait (Sojourn == Latency everywhere)")
	}
}
