package engine

import (
	"strings"
	"testing"
	"time"

	"timebounds/internal/core"
	"timebounds/internal/fault"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

func liveParams() model.Params {
	return model.Params{
		N: 3,
		D: 4 * time.Millisecond,
		U: 3 * time.Millisecond,
	}
}

func liveWorkload() workload.Spec {
	return workload.Spec{
		Mode:          workload.Closed,
		OpsPerProcess: 5,
		Spacing:       2 * time.Millisecond,
	}
}

// TestScenarioLiveChanRun drives a live scenario through the full engine
// surface: Runtime axis, post-hoc verification, and the LiveReport.
func TestScenarioLiveChanRun(t *testing.T) {
	res, err := New(1).RunOne(Scenario{
		Backend:  Algorithm1{},
		DataType: types.NewRMWRegister(0),
		Params:   liveParams(),
		Workload: liveWorkload(),
		Runtime:  LiveRuntime(),
		Verify:   true,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable || !res.Converged {
		t.Fatalf("live run failed: linearizable=%v converged=%v", res.Linearizable, res.Converged)
	}
	if res.Live == nil {
		t.Fatal("live scenario produced no LiveReport")
	}
	if res.Live.Transport != "chan" {
		t.Fatalf("transport = %q, want chan", res.Live.Transport)
	}
	if res.Live.Estimate.FromPrior {
		t.Fatalf("estimator never left its prior: %+v", res.Live.Estimate)
	}
	if len(res.Live.Classes) == 0 {
		t.Fatal("LiveReport has no per-class margins")
	}
	for _, c := range res.Live.Classes {
		if c.Bound <= 0 || c.Count == 0 {
			t.Fatalf("degenerate class row %+v", c)
		}
	}
	if len(res.Bounds) != len(res.Live.Classes) {
		t.Fatalf("Result.Bounds has %d rows, LiveReport %d", len(res.Bounds), len(res.Live.Classes))
	}
	if !strings.Contains(res.Name, "rt=live-chan") {
		t.Fatalf("resolved name %q missing runtime coordinate", res.Name)
	}
	if out := res.Live.Render(); !strings.Contains(out, "transport=chan") {
		t.Fatalf("Render output missing transport: %q", out)
	}
}

// TestScenarioLiveUndertunedDichotomy asserts the engine-level verdict:
// an under-tuned live run is OK iff it lands on a dichotomy horn, and the
// report surfaces the horn rather than an error.
func TestScenarioLiveUndertunedDichotomy(t *testing.T) {
	rt := LiveRuntime()
	rt.Undertune = 0.03
	sc := Scenario{
		Backend:  Algorithm1{},
		DataType: types.NewRMWRegister(0),
		Params:   liveParams(),
		Workload: workload.Race(liveParams(), 0, time.Millisecond, 10, types.OpRMW),
		Runtime:  rt,
		Verify:   true,
		Seed:     11,
	}
	res, err := New(1).RunOne(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Live == nil {
		t.Fatal("no LiveReport")
	}
	if !res.Live.Undertuned() {
		t.Fatalf("report does not know it was undertuned: %+v", res.Live)
	}
	if !res.Live.Dichotomy() {
		t.Fatalf("under-tuned live run linearizable, converged, and below every bound — dichotomy falsified: %s", res.Live.Render())
	}
	if !res.OK() {
		t.Fatalf("dichotomy-satisfying undertuned run should be OK, got %+v", res)
	}
}

// TestScenarioLiveRejections pins the live runtime's declared exclusions:
// faults, witnesses, non-Algorithm1 backends, backend tuning overrides,
// and custom delay policies are simulator-only.
func TestScenarioLiveRejections(t *testing.T) {
	base := Scenario{
		Backend:  Algorithm1{},
		DataType: types.NewRMWRegister(0),
		Params:   liveParams(),
		Workload: liveWorkload(),
		Runtime:  LiveRuntime(),
	}
	cases := map[string]func(sc Scenario) Scenario{
		"faults": func(sc Scenario) Scenario {
			sc.Faults = FaultSpec{Name: "crash", Build: func(model.Params, int64) *fault.Plan {
				return &fault.Plan{}
			}}
			return sc
		},
		"backend": func(sc Scenario) Scenario { sc.Backend = AllOOP{}; return sc },
		"tuning": func(sc Scenario) Scenario {
			b := Algorithm1{}
			b.Tuning.ExecuteWait = core.OverrideTime{Override: true, Value: 0}
			sc.Backend = b
			return sc
		},
		"delay-policy": func(sc Scenario) Scenario {
			sc.Delay = DelaySpec{Policy: func(p model.Params, seed int64) sim.DelayPolicy { return nil }}
			return sc
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			res := mutate(base).run(runConfig{})
			if res.Err == "" {
				t.Fatalf("live scenario with %s accepted; want rejection", name)
			}
		})
	}
}

// TestGridRuntimesAxis checks the Runtimes axis expands alongside the
// simulator and stamps the runtime coordinate into scenario names.
func TestGridRuntimesAxis(t *testing.T) {
	scs := Grid{
		Objects:  []spec.DataType{types.NewRMWRegister(0)},
		Params:   []model.Params{liveParams()},
		Runtimes: []Runtime{{}, LiveRuntime()},
		Workloads: []workload.Spec{
			liveWorkload(),
		},
	}.Scenarios()
	if len(scs) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(scs))
	}
	if scs[0].Runtime.Live() || !scs[1].Runtime.Live() {
		t.Fatalf("runtime axis misordered: %+v", scs)
	}
}
