package engine

import (
	"strings"
	"testing"

	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

func engParams(n int) model.Params {
	p := model.Params{N: n, D: 10_000_000, U: 4_000_000}
	p.Epsilon = p.OptimalSkew()
	return p
}

func TestGridExpansionDefaultsAndOrder(t *testing.T) {
	g := Grid{
		Objects: []spec.DataType{types.NewQueue()},
		Params:  []model.Params{engParams(3)},
	}
	scs := g.Scenarios()
	if len(scs) != 1 {
		t.Fatalf("minimal grid expanded to %d scenarios, want 1", len(scs))
	}
	g.Backends = Backends()
	g.Seeds = []int64{1, 2, 3}
	g.Xs = []model.Time{0, 1_000_000}
	scs = g.Scenarios()
	if want := 4 * 3 * 2; len(scs) != want {
		t.Fatalf("grid expanded to %d scenarios, want %d", len(scs), want)
	}
	// Backend-major order: the first six scenarios are algorithm1.
	for i := 0; i < 6; i++ {
		if scs[i].Backend.Name() != "algorithm1" {
			t.Errorf("scenario %d backend %s, want algorithm1 first", i, scs[i].Backend.Name())
		}
	}
}

func TestScenarioDefaultNameEncodesCoordinates(t *testing.T) {
	res := Run([]Scenario{{
		Backend:  TOB{},
		DataType: types.NewCounter(),
		Params:   engParams(3),
		Seed:     9,
		Delay:    DelaySpec{Mode: DelayWorst},
		Workload: workload.Spec{OpsPerProcess: 2},
	}}).Results[0]
	for _, part := range []string{"tob", "counter", "n=3", "worst", "seed=9"} {
		if !strings.Contains(res.Name, part) {
			t.Errorf("derived name %q missing %q", res.Name, part)
		}
	}
}

func TestScenarioErrorsAreResults(t *testing.T) {
	rep := Run([]Scenario{
		{DataType: nil, Params: engParams(3)},                    // no data type
		{DataType: types.NewQueue(), Params: model.Params{N: 0}}, // invalid params
	})
	for i, res := range rep.Results {
		if res.Err == "" {
			t.Errorf("scenario %d: expected an error result", i)
		}
	}
	if rep.Err() == nil {
		t.Error("Report.Err() should surface scenario failures")
	}
	if rep.OK() {
		t.Error("Report.OK() should be false")
	}
}

func TestCentralizedAndTOBWithin2D(t *testing.T) {
	p := engParams(4)
	for _, b := range []Backend{Centralized{}, TOB{}} {
		res := Run([]Scenario{{
			Backend:  b,
			DataType: types.NewRMWRegister(0),
			Params:   p,
			Seed:     1,
			Delay:    DelaySpec{Mode: DelayWorst},
			Workload: workload.Spec{OpsPerProcess: 4},
			Verify:   true,
		}}).Results[0]
		if res.Err != "" {
			t.Fatalf("%s: %s", b.Name(), res.Err)
		}
		if !res.Linearizable {
			t.Errorf("%s: history not linearizable", b.Name())
		}
		if worst := res.WorstLatency(); worst > 2*p.D {
			t.Errorf("%s: worst latency %s exceeds 2d = %s", b.Name(), worst, 2*p.D)
		}
	}
}

func TestReportStringRendersEveryScenario(t *testing.T) {
	rep := Run(Grid{
		Backends: []Backend{Algorithm1{}, AllOOP{}},
		Objects:  []spec.DataType{types.NewQueue()},
		Params:   []model.Params{engParams(3)},
		Workloads: []workload.Spec{{
			OpsPerProcess: 2,
		}},
		Verify: true,
	}.Scenarios())
	out := rep.String()
	for _, res := range rep.Results {
		if !strings.Contains(out, res.Name) {
			t.Errorf("report table missing scenario %q:\n%s", res.Name, out)
		}
	}
	if _, ok := rep.ByName(rep.Results[0].Name); !ok {
		t.Error("ByName failed for an existing scenario")
	}
}
