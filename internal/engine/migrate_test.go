package engine_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"timebounds/internal/check"
	"timebounds/internal/engine"
	"timebounds/internal/fault"
	"timebounds/internal/keyspace"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// migratingScenario is a streamed Zipf workload over a 200-key universe,
// range-partitioned across 3 shards, with one planned migration moving the
// hottest key off shard 0 mid-run.
func migratingScenario(seed int64) engine.ShardedScenario {
	space := keyspace.Space{N: 200}
	plan := &keyspace.Plan{
		Base: keyspace.RangePartition(space, 3),
		Migrations: []keyspace.Migration{
			{At: 400 * time.Millisecond, Moves: []keyspace.Move{keyspace.MoveKey(space.Key(0), 2)}, Reason: "planned"},
		},
	}
	w := keyspace.Workload{Space: space, Model: keyspace.Zipf{S: 1.3}, Ops: 120}
	return engine.ShardedScenario{
		Params:   model.Params{N: 3, D: 10 * time.Millisecond, U: 4 * time.Millisecond},
		Seed:     seed,
		Workload: w.Sharded(3),
		Plan:     plan,
		Verify:   true,
	}
}

func TestRunShardedMigrationGreen(t *testing.T) {
	rep, err := engine.RunSharded(migratingScenario(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if !rep.Linearizable() {
		t.Fatal("migrated store must stay linearizable")
	}
	if rep.Stats.Epochs != 2 || len(rep.Stats.PerEpoch) != 2 {
		t.Fatalf("epoch stats = %+v", rep.Stats)
	}
	// Zipf key 0 dominates the stream, so the plan's moved key is touched:
	// the migration must actually transfer state.
	if rep.Stats.MovedKeys != 1 || len(rep.Handoffs) != 1 {
		t.Fatalf("moved %d keys, %d handoffs; want 1/1", rep.Stats.MovedKeys, len(rep.Handoffs))
	}
	h := rep.Handoffs[0]
	if h.Key != "key-000" || h.From != 0 || h.To != 2 || h.Migration != 0 {
		t.Fatalf("handoff = %+v", h)
	}
	if !h.Checked || !h.Linearizable {
		t.Fatalf("stitched verdict missing: %+v", h)
	}
	if rep.Stats.HandoffOps != 1 || !h.Transferred {
		// The hottest Zipf key sees puts long before the cutover, so a
		// settled value must carry across.
		t.Fatalf("handoff did not transfer: %+v", h)
	}
	// Composition carries per-shard, per-epoch, and stitched components.
	if got := len(rep.Composition.ByEpoch(check.WholeRun)); got < len(rep.Shards)+1 {
		t.Fatalf("whole-run components = %d, want per-shard + stitched", got)
	}
	if len(rep.Composition.ByEpoch(0)) == 0 || len(rep.Composition.ByEpoch(1)) == 0 {
		t.Fatalf("per-epoch components missing: %+v", rep.Composition.Components)
	}
	// Client accounting: per-shard ops sum to the report total, and the
	// synthetic handoff write stays out of both.
	sum := 0
	for _, n := range rep.Stats.PerShardOps {
		sum += n
	}
	if sum != rep.Ops {
		t.Fatalf("PerShardOps sums to %d, report says %d", sum, rep.Ops)
	}
	perKind := 0
	for _, st := range rep.PerKind {
		perKind += st.Count
	}
	if perKind != rep.Ops {
		t.Fatalf("PerKind covers %d ops, report says %d", perKind, rep.Ops)
	}
	epochOps := 0
	for _, es := range rep.Stats.PerEpoch {
		epochOps += es.Ops
	}
	if epochOps != rep.Ops {
		t.Fatalf("per-epoch ops sum to %d, report says %d", epochOps, rep.Ops)
	}
	if len(rep.HotKeys) == 0 || rep.HotKeys[0].Key != "key-000" {
		t.Fatalf("hot-key table = %+v, want key-000 on top", rep.HotKeys)
	}
	if !strings.Contains(rep.String(), "migrations:") {
		t.Fatal("report rendering lost the migration block")
	}
}

// TestRunShardedMigrationDeterministicAcrossWorkers pins the scaling
// contract on the migration path: expansion (including the prefix
// simulations) runs serially, so the merged report is bit-identical at any
// worker count.
func TestRunShardedMigrationDeterministicAcrossWorkers(t *testing.T) {
	var reports []engine.ShardedReport
	for _, workers := range []int{1, 8} {
		rep, err := engine.New(workers).RunSharded(migratingScenario(11))
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatal("migrating report differs between 1 worker and 8 workers")
	}
}

// handoffScenario is the minimal explicit migration shape: key "m" is
// written on shard 0, moves to shard 1 at the cutover, and is read after
// the settle window.
func handoffScenario() engine.ShardedScenario {
	c := 100 * time.Millisecond
	return engine.ShardedScenario{
		Params: model.Params{N: 3, D: 10 * time.Millisecond, U: 4 * time.Millisecond},
		Seed:   3,
		Workload: workload.Sharded{
			Name: "handoff",
			Explicit: []workload.KeyOp{
				workload.Put(time.Millisecond, 0, "m", "settled"),
				workload.Put(time.Millisecond, 1, "a", "x"),
				workload.Get(c+50*time.Millisecond, 2, "m"),
				workload.Get(c+60*time.Millisecond, 0, "a"),
			},
		},
		Plan: &keyspace.Plan{
			// Keys below "n" on shard 0, the rest on shard 1.
			Base: keyspace.PartitionMap{Shards: 2, Splits: []string{"n"}, Owners: []int{0, 1}},
			Migrations: []keyspace.Migration{
				{At: c, Moves: []keyspace.Move{keyspace.MoveKey("m", 1)}},
			},
		},
		Drain:  40 * time.Millisecond,
		Verify: true,
	}
}

// TestShardedHandoffCorruptionOnlyComposedCheckCatches is the regression
// the migration verifier exists for: a corrupted state transfer that every
// per-shard and per-epoch check accepts — the destination's history is
// internally consistent, synthetic write included — and that only the
// stitched cross-epoch client history (and therefore the composed verdict)
// rejects.
func TestShardedHandoffCorruptionOnlyComposedCheckCatches(t *testing.T) {
	// Sanity: the uncorrupted run is green and transfers the settled value.
	rep, err := engine.RunSharded(handoffScenario())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Handoffs) != 1 || !rep.Handoffs[0].Transferred || !rep.Handoffs[0].Linearizable {
		t.Fatalf("honest handoff = %+v", rep.Handoffs)
	}
	for _, res := range rep.Shards {
		for _, op := range res.History.Ops() {
			if op.Kind == types.OpDictGet && op.Arg == "m" && op.Ret != "settled" {
				t.Fatalf("post-migration read returned %v, want the transferred value", op.Ret)
			}
		}
	}

	restore := engine.SetCorruptHandoff(func(key string, v spec.Value) spec.Value {
		return "corrupted"
	})
	defer restore()

	rep, err = engine.RunSharded(handoffScenario())
	if err != nil {
		t.Fatal(err)
	}

	// Every per-shard and per-epoch component still passes: each shard —
	// and each epoch slice — is internally consistent, because the
	// synthetic write itself carries the corrupted value.
	var stitched []check.Component
	for _, comp := range rep.Composition.Components {
		isStitched := strings.Contains(comp.Name, "/stitched")
		if isStitched {
			stitched = append(stitched, comp)
			continue
		}
		if !comp.Checked || !comp.Linearizable {
			t.Fatalf("non-stitched component %q failed; the corruption must be invisible below the stitched check", comp.Name)
		}
	}
	if len(stitched) != 1 || stitched[0].Linearizable {
		t.Fatalf("stitched components = %+v; want exactly one, failing", stitched)
	}
	if rep.Linearizable() {
		t.Fatal("composed verdict accepted a corrupted handoff")
	}
	if rep.Handoffs[0].Linearizable {
		t.Fatalf("handoff verdict accepted corruption: %+v", rep.Handoffs[0])
	}
	err = rep.Err()
	if err == nil || !strings.Contains(err.Error(), "stitched") {
		t.Fatalf("Err() = %v, want the stitched component named", err)
	}
}

// TestShardedMigrationChain moves one key 0 → 1 → 0 across two migrations:
// three epochs, two handoffs, and a stitched history spanning all of them.
func TestShardedMigrationChain(t *testing.T) {
	c1, c2 := 100*time.Millisecond, 300*time.Millisecond
	ss := engine.ShardedScenario{
		Params: model.Params{N: 3, D: 10 * time.Millisecond, U: 4 * time.Millisecond},
		Seed:   5,
		Workload: workload.Sharded{
			Name: "chain",
			Explicit: []workload.KeyOp{
				workload.Put(time.Millisecond, 0, "m", "v0"),
				workload.Put(time.Millisecond, 1, "z", "anchor"),
				workload.Get(c1+50*time.Millisecond, 2, "m"),
				workload.Put(c1+60*time.Millisecond, 0, "m", "v1"),
				workload.Get(c2+50*time.Millisecond, 1, "m"),
			},
		},
		Plan: &keyspace.Plan{
			Base: keyspace.PartitionMap{Shards: 2, Splits: []string{"n"}, Owners: []int{0, 1}},
			Migrations: []keyspace.Migration{
				{At: c1, Moves: []keyspace.Move{keyspace.MoveKey("m", 1)}},
				{At: c2, Moves: []keyspace.Move{keyspace.MoveKey("m", 0)}},
			},
		},
		Drain:  40 * time.Millisecond,
		Verify: true,
	}
	rep, err := engine.RunSharded(ss)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Epochs != 3 || len(rep.Handoffs) != 2 {
		t.Fatalf("epochs=%d handoffs=%d, want 3/2", rep.Stats.Epochs, len(rep.Handoffs))
	}
	for i, h := range rep.Handoffs {
		if h.Migration != i || h.Key != "m" || !h.Transferred || !h.Linearizable {
			t.Fatalf("handoff %d = %+v", i, h)
		}
	}
	// The final read must observe the v1 written in the middle epoch and
	// carried back to shard 0.
	found := false
	for _, res := range rep.Shards {
		for _, op := range res.History.Ops() {
			if op.Kind == types.OpDictGet && op.Arg == "m" && op.Invoke >= c2 {
				found = true
				if op.Ret != "v1" {
					t.Fatalf("post-chain read returned %v, want v1", op.Ret)
				}
			}
		}
	}
	if !found {
		t.Fatal("post-chain read missing from the histories")
	}
}

// TestShardedMigrationUntouchedKeyNoHandoff: moving a range nobody writes
// transfers nothing — no handoff rows, no synthetic writes.
func TestShardedMigrationUntouchedKeyNoHandoff(t *testing.T) {
	ss := handoffScenario()
	ss.Plan.Migrations[0].Moves = []keyspace.Move{keyspace.MoveKey("idle", 1)}
	rep, err := engine.RunSharded(ss)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Handoffs) != 0 || rep.Stats.MovedKeys != 0 || rep.Stats.HandoffOps != 0 {
		t.Fatalf("untouched move produced handoffs: %+v", rep.Handoffs)
	}
	if rep.Stats.Epochs != 2 {
		t.Fatalf("epochs = %d, want 2", rep.Stats.Epochs)
	}
}

// TestSplitHotFollowUpMigration closes the loop the report's observed-load
// tables exist for: run under a static plan, let SplitHot read the skew
// out of the report, and re-run with the planned hot-key migration.
func TestSplitHotFollowUpMigration(t *testing.T) {
	ss := migratingScenario(13)
	ss.Plan = &keyspace.Plan{Base: ss.Plan.Base} // static first pass
	rep, err := engine.RunSharded(ss)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Epochs != 1 || len(rep.Handoffs) != 0 {
		t.Fatalf("static plan ran %d epochs, %d handoffs", rep.Stats.Epochs, len(rep.Handoffs))
	}
	// Zipf over a range partition piles the load onto shard 0.
	mig := keyspace.SplitHot(ss.Plan.Base, rep.Stats.PerShardOps, rep.HotKeys, 400*time.Millisecond, 1.5)
	if mig == nil {
		t.Fatalf("skewed load planned no migration: perShard=%v hot=%v", rep.Stats.PerShardOps, rep.HotKeys)
	}
	ss.Plan.Migrations = []keyspace.Migration{*mig}
	rebalanced, err := engine.RunSharded(ss)
	if err != nil {
		t.Fatal(err)
	}
	if err := rebalanced.Err(); err != nil {
		t.Fatal(err)
	}
	if rebalanced.Stats.MovedKeys == 0 {
		t.Fatal("follow-up migration moved nothing")
	}
	if !rebalanced.Linearizable() {
		t.Fatal("rebalanced store must stay linearizable")
	}
	// The rebalance must actually relieve the hot shard in its final epoch.
	last := rebalanced.Stats.PerEpoch[len(rebalanced.Stats.PerEpoch)-1]
	first := rebalanced.Stats.PerEpoch[0]
	if first.Ops > 0 && last.Ops > 0 && last.Imbalance >= first.Imbalance+0.5 {
		t.Fatalf("imbalance grew after the hot-split: %v -> %v", first.Imbalance, last.Imbalance)
	}
}

func TestShardedMigrationGuards(t *testing.T) {
	base := handoffScenario()

	ss := base
	ss.Workload.Partition = func(string, int) int { return 0 }
	if _, err := engine.RunSharded(ss); err == nil || !strings.Contains(err.Error(), "Partition") {
		t.Errorf("plan alongside Workload.Partition accepted: %v", err)
	}

	ss = base
	ss.Workload.Shards = 5 // plan's base map has 2
	if _, err := engine.RunSharded(ss); err == nil {
		t.Error("shard-count mismatch accepted")
	}

	ss = base
	ss.Faults = engine.FaultSpec{Name: "crash", Build: func(model.Params, int64) *fault.Plan {
		return &fault.Plan{}
	}}
	if _, err := engine.RunSharded(ss); err == nil || !strings.Contains(err.Error(), "fault") {
		t.Errorf("plan alongside an enabled fault spec accepted: %v", err)
	}

	ss = handoffScenario() // fresh Plan pointer before mutating it
	ss.Plan.Migrations = []keyspace.Migration{{At: 0}}
	if _, err := engine.RunSharded(ss); err == nil {
		t.Error("invalid plan accepted")
	}
}
