package engine

import (
	"fmt"
	"sort"
	"strings"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/runs"
	"timebounds/internal/spec"
	"timebounds/internal/workload"
)

// BoundWitness records how one adversary-scenario run witnesses a
// theoretical lower bound: the constrained operation with the largest
// latency, the bound itself, and whether the run's history failed the
// linearizability check. The theorems' dichotomy — an implementation
// either pays at least the bound or produces a non-linearizable history
// somewhere in the run family — is judged per family (FamilyWitness), not
// per run: an indistinguishability family deliberately contains members
// that linearize below the bound on their own.
type BoundWitness struct {
	// Family groups the runs of one adversary family (one adversary ×
	// backend × parameter point × seed) for the family-level verdict.
	Family string
	// Kind and Op identify the witness operation (the completed operation
	// among the declared witness kinds with the largest latency).
	Kind spec.OpKind
	Op   history.OpID
	// Latency is the witnessed latency: the worst case among the witness
	// kinds, or — for pair bounds — the sum of the per-kind worst cases.
	Latency model.Time
	// Bound is the theoretical lower bound under test.
	Bound model.Time
	// Violated reports that the run's history is not linearizable: the
	// adversary caught an implementation tuned below the bound.
	Violated bool
	// Diverged reports that the authoritative copies disagreed after the
	// run — another way a premature implementation breaks (recorded for
	// diagnostics; the dichotomy is judged on Violated and Latency).
	Diverged bool
	// RequireLinearizable marks a proven-correct tuning, echoed from the
	// witness spec: the family verdict then forbids violations.
	RequireLinearizable bool
	// FaultVerdict echoes the run's FaultReport verdict (empty when the
	// run injected no faults); FaultDichotomy marks a fault family judged
	// by the dichotomy — every member must land on exactly one horn.
	FaultVerdict   string
	FaultDichotomy bool
}

// Margin returns Latency - Bound: how far above the lower bound the
// implementation paid (negative for premature implementations).
func (w BoundWitness) Margin() model.Time { return w.Latency - w.Bound }

// Holds reports the dichotomy restricted to this single run: either the
// witnessed latency is at least the bound, or the run exposes a violation.
// Only meaningful for single-run families; grids should judge
// FamilyWitness.Holds.
func (w BoundWitness) Holds() bool { return w.Violated || w.Latency >= w.Bound }

// FamilyWitness aggregates one adversary run family: the theorem's
// dichotomy says an implementation either pays at least the bound
// somewhere in the family or some member's history is not linearizable.
type FamilyWitness struct {
	// Family is the family key shared by the member runs.
	Family string
	// Bound is the theoretical lower bound the family witnesses.
	Bound model.Time
	// MaxLatency is the largest witnessed latency across the members.
	MaxLatency model.Time
	// Violated is true if any member's history failed linearizability.
	Violated bool
	// Diverged is true if any member's authoritative copies disagreed.
	Diverged bool
	// RequireLinearizable marks a proven-correct tuning: the verdict then
	// forbids violations and divergence rather than accepting them as the
	// dichotomy's other horn.
	RequireLinearizable bool
	// Runs counts the member runs.
	Runs int
	// FaultDichotomy marks a fault family: the verdict is the dichotomy
	// count — every member within-bound or assumption-broken, never
	// unknown. WithinBound and Broken count the members on each horn.
	FaultDichotomy bool
	WithinBound    int
	Broken         int
}

// Holds reports the family-level verdict. For a premature tuning it is
// the theorems' dichotomy — a violation somewhere, or witnessed latency
// at least the bound; a correct implementation driven below the bound
// through the whole family would falsify it. For a proven-correct tuning
// (RequireLinearizable) the violation horn is a bug, not a witness: every
// member must linearize and converge AND the latency must meet the bound.
func (f FamilyWitness) Holds() bool {
	if f.FaultDichotomy {
		// A fault family holds exactly when every member produced one of
		// the two horns — "unknown" (neither verdict) falsifies it.
		return f.Runs > 0 && f.WithinBound+f.Broken == f.Runs
	}
	if f.RequireLinearizable {
		return !f.Violated && !f.Diverged && f.MaxLatency >= f.Bound
	}
	return f.Violated || f.MaxLatency >= f.Bound
}

// BoundCheck compares the measured worst-case latency of one operation
// class against the backend's theoretical bound.
type BoundCheck struct {
	// Class is the Chapter V operation class (MOP/AOP/OOP).
	Class spec.OpClass
	// Count is how many completed operations fell in the class.
	Count int
	// Bound is the backend's theoretical worst case for the class.
	Bound model.Time
	// Measured is the observed worst-case latency.
	Measured model.Time
	// OK is Measured ≤ Bound.
	OK bool
}

// Margin returns Bound - Measured (negative on violation).
func (b BoundCheck) Margin() model.Time { return b.Bound - b.Measured }

// Result is the structured outcome of one scenario run. It contains only
// model-time quantities, so equal seeds yield bit-identical Results.
type Result struct {
	// Name identifies the scenario.
	Name string
	// Backend, Object, Params, X, Seed echo the scenario coordinates.
	Backend string
	Object  string
	Params  model.Params
	X       model.Time
	Seed    int64
	// Err is non-empty if the run failed outright.
	Err string
	// Ops is the number of completed operations.
	Ops int
	// History is the run's full invocation/response history.
	History *history.History
	// PerKind holds latency statistics per operation kind.
	PerKind map[spec.OpKind]workload.Stats
	// Bounds holds the per-class measured-vs-theoretical comparisons.
	Bounds []BoundCheck
	// Checked is true if the linearizability checker ran; Linearizable is
	// its verdict.
	Checked      bool
	Linearizable bool
	// Converged is true if all authoritative copies agreed after the run;
	// State is their common encoding. On divergence, Diverged carries the
	// detail (which copy disagreed, both encodings).
	Converged bool
	State     string
	Diverged  string
	// Pending counts operations still pending at the horizon — nonzero
	// only in faulted runs, where a crash can orphan an in-flight op.
	Pending int
	// Fault records the dichotomy verdict when the scenario injected a
	// fault plan; nil for fault-free runs.
	Fault *FaultReport
	// Witness records the lower-bound witness when the scenario declared
	// one (adversary scenarios); nil otherwise.
	Witness *BoundWitness
	// Live records the wall-clock run's estimator envelope and per-class
	// measured-vs-estimated-bound margins when the scenario ran on the
	// live runtime; nil for simulated runs.
	Live *LiveReport
	// Run is the recorded run (views + messages) when the scenario asked
	// for a trace; nil otherwise.
	Run *runs.Run
}

// OK reports whether the run completed, stayed within every class bound,
// converged, and (if checked) linearized. Witness scenarios are only held
// to run completion here: violations and divergence are the expected
// outcomes of a premature tuning, and the theorem dichotomy is judged
// across the whole family — by Report.OK and Report.Err via
// WitnessFamilies — not per run.
func (r Result) OK() bool {
	if r.Err != "" {
		return false
	}
	if r.Fault != nil {
		// A faulted run is OK when it completed and landed on one of the
		// dichotomy's two horns — the broken horn is a valid outcome, not
		// a failure. Verdict completeness is judged per family.
		return r.Fault.Verdict != ""
	}
	if r.Witness != nil {
		return true
	}
	if r.Live != nil && r.Live.Undertuned() {
		// A deliberately under-tuned live run is the premature-tuning
		// adversary on the wall clock: breaking (violation, divergence) or
		// bound-level latency are its expected outcomes. It fails only by
		// falsifying the dichotomy.
		return r.Live.Dichotomy()
	}
	if !r.Converged {
		return false
	}
	if r.Checked && !r.Linearizable {
		return false
	}
	for _, b := range r.Bounds {
		if !b.OK {
			return false
		}
	}
	return true
}

// WorstLatency returns the largest completed-operation latency of the run.
func (r Result) WorstLatency() model.Time {
	var worst model.Time
	for _, st := range r.PerKind {
		if st.Max > worst {
			worst = st.Max
		}
	}
	return worst
}

// MinMargin returns the tightest bound margin across classes (how close
// the run came to its theoretical envelope); 0 with no bounds.
func (r Result) MinMargin() model.Time {
	var min model.Time
	for i, b := range r.Bounds {
		if i == 0 || b.Margin() < min {
			min = b.Margin()
		}
	}
	return min
}

// Report aggregates the results of a scenario grid, in input order.
type Report struct {
	Results []Result
	// Incomplete counts scenarios that never reported because the run was
	// cancelled (Engine.RunContext); 0 for a complete grid. OK and Err
	// judge only the recorded Results — callers deciding whether a
	// cancelled grid "passed" must check Incomplete themselves.
	Incomplete int
}

// OK reports whether every scenario run is OK and every adversary run
// family upholds its witness dichotomy — the same verdict Err reports,
// as a boolean.
func (r Report) OK() bool {
	for _, res := range r.Results {
		if !res.OK() {
			return false
		}
	}
	for _, f := range r.WitnessFamilies() {
		if !f.Holds() {
			return false
		}
	}
	return true
}

// Err returns the first scenario failure as an error, or nil. Witness
// scenarios fail only when their family's witness dichotomy breaks (every
// member linearizable yet all below the declared lower bound), not on the
// violations a premature tuning is expected to produce.
func (r Report) Err() error {
	for _, res := range r.Results {
		if res.Err != "" {
			return fmt.Errorf("engine: scenario %q: %s", res.Name, res.Err)
		}
		if res.Fault != nil {
			if res.Fault.Verdict == "" {
				return fmt.Errorf("engine: scenario %q: faulted run produced no dichotomy verdict", res.Name)
			}
			continue // the broken horn is a valid faulted-run outcome
		}
		if res.Witness != nil {
			continue // violations and divergence are judged per family below
		}
		if res.Live != nil && res.Live.Undertuned() {
			if !res.Live.Dichotomy() {
				return fmt.Errorf("engine: scenario %q: under-tuned live run linearizable, converged, and below every estimated bound — dichotomy falsified", res.Name)
			}
			continue // breaking is the expected outcome of under-tuning
		}
		if !res.Converged {
			return fmt.Errorf("engine: scenario %q: %s", res.Name, res.Diverged)
		}
		if res.Checked && !res.Linearizable {
			return fmt.Errorf("engine: scenario %q: history not linearizable", res.Name)
		}
		for _, b := range res.Bounds {
			if !b.OK {
				return fmt.Errorf("engine: scenario %q: %s worst latency %s exceeds bound %s",
					res.Name, b.Class, b.Measured, b.Bound)
			}
		}
	}
	for _, f := range r.WitnessFamilies() {
		if f.Holds() {
			continue
		}
		if f.RequireLinearizable && f.Violated {
			return fmt.Errorf("engine: adversary family %q: correct tuning produced a non-linearizable history", f.Family)
		}
		if f.RequireLinearizable && f.Diverged {
			return fmt.Errorf("engine: adversary family %q: correct tuning diverged", f.Family)
		}
		return fmt.Errorf("engine: adversary family %q: every run linearizable yet max witness latency %s below lower bound %s",
			f.Family, f.MaxLatency, f.Bound)
	}
	return nil
}

// Witnesses returns the lower-bound witnesses of the grid in input order,
// paired with their scenario names. Non-witness scenarios are skipped.
func (r Report) Witnesses() []NamedWitness {
	var out []NamedWitness
	for _, res := range r.Results {
		if res.Witness != nil {
			out = append(out, NamedWitness{Scenario: res.Name, Witness: *res.Witness})
		}
	}
	return out
}

// NamedWitness pairs a scenario name with its BoundWitness.
type NamedWitness struct {
	Scenario string
	Witness  BoundWitness
}

// WitnessFamilies aggregates the grid's witnesses per adversary run
// family, in order of first appearance.
func (r Report) WitnessFamilies() []FamilyWitness {
	var order []string
	byKey := make(map[string]*FamilyWitness)
	for _, res := range r.Results {
		if res.Witness == nil {
			continue
		}
		w := res.Witness
		key := w.Family
		if key == "" {
			key = res.Name // ungrouped witnesses stand alone
		}
		f, ok := byKey[key]
		if !ok {
			f = &FamilyWitness{
				Family:              key,
				Bound:               w.Bound,
				RequireLinearizable: w.RequireLinearizable,
				FaultDichotomy:      w.FaultDichotomy,
			}
			byKey[key] = f
			order = append(order, key)
		}
		f.Runs++
		if w.Latency > f.MaxLatency {
			f.MaxLatency = w.Latency
		}
		if w.Violated {
			f.Violated = true
		}
		if w.Diverged {
			f.Diverged = true
		}
		switch w.FaultVerdict {
		case VerdictWithinBound:
			f.WithinBound++
		case VerdictAssumptionBroken:
			f.Broken++
		}
	}
	out := make([]FamilyWitness, 0, len(order))
	for _, key := range order {
		out = append(out, *byKey[key])
	}
	return out
}

// RenderWitnesses renders the grid's witness table: one row per adversary
// run with the witness operation, bound, and margin, and a verdict column
// carrying the family-level dichotomy.
func (r Report) RenderWitnesses() string {
	ws := r.Witnesses()
	if len(ws) == 0 {
		return ""
	}
	verdicts := make(map[string]bool)
	for _, f := range r.WitnessFamilies() {
		verdicts[f.Family] = f.Holds()
	}
	w := 8
	for _, nw := range ws {
		if len(nw.Scenario) > w {
			w = len(nw.Scenario)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %-14s  %10s  %10s  %10s  %-8s  %s\n",
		w, "scenario", "witness-op", "latency", "bound", "margin", "violated", "family-verdict")
	for _, nw := range ws {
		bw := nw.Witness
		key := bw.Family
		if key == "" {
			key = nw.Scenario
		}
		verdict := "HOLDS"
		if !verdicts[key] {
			verdict = "FALSIFIED"
		}
		fmt.Fprintf(&b, "%-*s  %-14s  %10s  %10s  %10s  %-8v  %s\n",
			w, nw.Scenario, bw.Kind, bw.Latency, bw.Bound, bw.Margin(), bw.Violated, verdict)
	}
	return b.String()
}

// NamedFault pairs a scenario name with its FaultReport.
type NamedFault struct {
	Scenario string
	Fault    FaultReport
}

// FaultReports returns the grid's fault verdicts in input order, skipping
// fault-free scenarios.
func (r Report) FaultReports() []NamedFault {
	var out []NamedFault
	for _, res := range r.Results {
		if res.Fault != nil {
			out = append(out, NamedFault{Scenario: res.Name, Fault: *res.Fault})
		}
	}
	return out
}

// RenderFaults renders the grid's fault-verdict table: one row per faulted
// run with its family, verdict, fault accounting, and — on the broken horn
// — the dominant breach.
func (r Report) RenderFaults() string {
	frs := r.FaultReports()
	if len(frs) == 0 {
		return ""
	}
	w, fw := 8, 6
	for _, nf := range frs {
		if len(nf.Scenario) > w {
			w = len(nf.Scenario)
		}
		if len(nf.Fault.Family) > fw {
			fw = len(nf.Fault.Family)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %-*s  %-17s  %6s  %7s  %s\n",
		w, "scenario", fw, "family", "verdict", "faults", "pending", "breach")
	for _, nf := range frs {
		fr := nf.Fault
		breach := "-"
		if len(fr.Breaches) > 0 {
			breach = fr.Breaches[0].String()
		}
		fmt.Fprintf(&b, "%-*s  %-*s  %-17s  %6d  %7d  %s\n",
			w, nf.Scenario, fw, fr.Family, fr.Verdict, fr.Stats.Total(), fr.Pending, breach)
	}
	return b.String()
}

// ByName returns the named result and whether it exists.
func (r Report) ByName(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return Result{}, false
}

// Ops returns the total number of completed operations across the grid.
func (r Report) Ops() int {
	total := 0
	for _, res := range r.Results {
		total += res.Ops
	}
	return total
}

// String renders the report as an aligned table: one row per scenario with
// its verdicts, worst latency, and tightest bound margin.
func (r Report) String() string {
	var b strings.Builder
	w := 8
	for _, res := range r.Results {
		if len(res.Name) > w {
			w = len(res.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %5s  %-6s  %-7s  %10s  %10s  %s\n",
		w, "scenario", "ops", "linear", "bounds", "worst", "margin", "state")
	for _, res := range r.Results {
		if res.Err != "" {
			fmt.Fprintf(&b, "%-*s  ERROR %s\n", w, res.Name, res.Err)
			continue
		}
		lin := "-"
		if res.Checked {
			lin = fmt.Sprintf("%v", res.Linearizable)
		}
		boundsOK := "ok"
		for _, bc := range res.Bounds {
			if !bc.OK {
				boundsOK = "EXCEED"
			}
		}
		state := res.State
		if !res.Converged {
			state = "DIVERGED"
		}
		if len(state) > 24 {
			state = state[:21] + "..."
		}
		fmt.Fprintf(&b, "%-*s  %5d  %-6s  %-7s  %10s  %10s  %s\n",
			w, res.Name, res.Ops, lin, boundsOK, res.WorstLatency(), res.MinMargin(), state)
	}
	return b.String()
}

// RenderKinds renders one result's per-kind latency table, kinds sorted.
func RenderKinds(res Result) string {
	kinds := make([]string, 0, len(res.PerKind))
	for k := range res.PerKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var b strings.Builder
	for _, k := range kinds {
		st := res.PerKind[spec.OpKind(k)]
		fmt.Fprintf(&b, "  %-14s count=%-4d min=%-10s mean=%-10s p99=%-10s max=%s\n",
			k, st.Count, st.Min, st.Mean, st.P99, st.Max)
	}
	return b.String()
}
