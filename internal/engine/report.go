package engine

import (
	"fmt"
	"sort"
	"strings"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/workload"
)

// BoundCheck compares the measured worst-case latency of one operation
// class against the backend's theoretical bound.
type BoundCheck struct {
	// Class is the Chapter V operation class (MOP/AOP/OOP).
	Class spec.OpClass
	// Count is how many completed operations fell in the class.
	Count int
	// Bound is the backend's theoretical worst case for the class.
	Bound model.Time
	// Measured is the observed worst-case latency.
	Measured model.Time
	// OK is Measured ≤ Bound.
	OK bool
}

// Margin returns Bound - Measured (negative on violation).
func (b BoundCheck) Margin() model.Time { return b.Bound - b.Measured }

// Result is the structured outcome of one scenario run. It contains only
// model-time quantities, so equal seeds yield bit-identical Results.
type Result struct {
	// Name identifies the scenario.
	Name string
	// Backend, Object, Params, X, Seed echo the scenario coordinates.
	Backend string
	Object  string
	Params  model.Params
	X       model.Time
	Seed    int64
	// Err is non-empty if the run failed outright.
	Err string
	// Ops is the number of completed operations.
	Ops int
	// History is the run's full invocation/response history.
	History *history.History
	// PerKind holds latency statistics per operation kind.
	PerKind map[spec.OpKind]workload.Stats
	// Bounds holds the per-class measured-vs-theoretical comparisons.
	Bounds []BoundCheck
	// Checked is true if the linearizability checker ran; Linearizable is
	// its verdict.
	Checked      bool
	Linearizable bool
	// Converged is true if all authoritative copies agreed after the run;
	// State is their common encoding. On divergence, Diverged carries the
	// detail (which copy disagreed, both encodings).
	Converged bool
	State     string
	Diverged  string
}

// OK reports whether the run completed, stayed within every class bound,
// converged, and (if checked) linearized.
func (r Result) OK() bool {
	if r.Err != "" || !r.Converged {
		return false
	}
	if r.Checked && !r.Linearizable {
		return false
	}
	for _, b := range r.Bounds {
		if !b.OK {
			return false
		}
	}
	return true
}

// WorstLatency returns the largest completed-operation latency of the run.
func (r Result) WorstLatency() model.Time {
	var worst model.Time
	for _, st := range r.PerKind {
		if st.Max > worst {
			worst = st.Max
		}
	}
	return worst
}

// MinMargin returns the tightest bound margin across classes (how close
// the run came to its theoretical envelope); 0 with no bounds.
func (r Result) MinMargin() model.Time {
	var min model.Time
	for i, b := range r.Bounds {
		if i == 0 || b.Margin() < min {
			min = b.Margin()
		}
	}
	return min
}

// Report aggregates the results of a scenario grid, in input order.
type Report struct {
	Results []Result
}

// OK reports whether every scenario run is OK.
func (r Report) OK() bool {
	for _, res := range r.Results {
		if !res.OK() {
			return false
		}
	}
	return true
}

// Err returns the first scenario failure as an error, or nil.
func (r Report) Err() error {
	for _, res := range r.Results {
		if res.Err != "" {
			return fmt.Errorf("engine: scenario %q: %s", res.Name, res.Err)
		}
		if !res.Converged {
			return fmt.Errorf("engine: scenario %q: %s", res.Name, res.Diverged)
		}
		if res.Checked && !res.Linearizable {
			return fmt.Errorf("engine: scenario %q: history not linearizable", res.Name)
		}
		for _, b := range res.Bounds {
			if !b.OK {
				return fmt.Errorf("engine: scenario %q: %s worst latency %s exceeds bound %s",
					res.Name, b.Class, b.Measured, b.Bound)
			}
		}
	}
	return nil
}

// ByName returns the named result and whether it exists.
func (r Report) ByName(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return Result{}, false
}

// Ops returns the total number of completed operations across the grid.
func (r Report) Ops() int {
	total := 0
	for _, res := range r.Results {
		total += res.Ops
	}
	return total
}

// String renders the report as an aligned table: one row per scenario with
// its verdicts, worst latency, and tightest bound margin.
func (r Report) String() string {
	var b strings.Builder
	w := 8
	for _, res := range r.Results {
		if len(res.Name) > w {
			w = len(res.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %5s  %-6s  %-7s  %10s  %10s  %s\n",
		w, "scenario", "ops", "linear", "bounds", "worst", "margin", "state")
	for _, res := range r.Results {
		if res.Err != "" {
			fmt.Fprintf(&b, "%-*s  ERROR %s\n", w, res.Name, res.Err)
			continue
		}
		lin := "-"
		if res.Checked {
			lin = fmt.Sprintf("%v", res.Linearizable)
		}
		boundsOK := "ok"
		for _, bc := range res.Bounds {
			if !bc.OK {
				boundsOK = "EXCEED"
			}
		}
		state := res.State
		if !res.Converged {
			state = "DIVERGED"
		}
		if len(state) > 24 {
			state = state[:21] + "..."
		}
		fmt.Fprintf(&b, "%-*s  %5d  %-6s  %-7s  %10s  %10s  %s\n",
			w, res.Name, res.Ops, lin, boundsOK, res.WorstLatency(), res.MinMargin(), state)
	}
	return b.String()
}

// RenderKinds renders one result's per-kind latency table, kinds sorted.
func RenderKinds(res Result) string {
	kinds := make([]string, 0, len(res.PerKind))
	for k := range res.PerKind {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var b strings.Builder
	for _, k := range kinds {
		st := res.PerKind[spec.OpKind(k)]
		fmt.Fprintf(&b, "  %-14s count=%-4d min=%-10s mean=%-10s p99=%-10s max=%s\n",
			k, st.Count, st.Min, st.Mean, st.P99, st.Max)
	}
	return b.String()
}
