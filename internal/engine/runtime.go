package engine

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"timebounds/internal/check"
	"timebounds/internal/live"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

func init() {
	// The tree data type's operations carry Edge structs; the live TCP
	// transport's gob wire format must know them up front.
	live.RegisterWireValue(types.Edge{})
}

// RuntimeMode selects where a scenario executes.
type RuntimeMode int

const (
	// RuntimeSim runs the scenario in the deterministic discrete-event
	// simulator (the default; bit-identical reports per seed).
	RuntimeSim RuntimeMode = iota
	// RuntimeLive runs the scenario as a wall-clock goroutine cluster
	// (internal/live): real transports, online (u, d) estimation, and
	// adaptive retuning, verified post hoc by the same checker.
	RuntimeLive
)

// TransportKind names a live transport.
type TransportKind int

const (
	// TransportChan is the in-process channel transport, with the
	// scenario's delay adversary realized as synthetic message delays.
	TransportChan TransportKind = iota
	// TransportTCP is loopback TCP with gob framing; delays are whatever
	// the kernel's loopback path gives, and the scenario's delay
	// adversary does not apply.
	TransportTCP
)

// TransportSpec selects a live scenario's transport as a value, so grids
// can sweep it. Custom, when set, overrides Kind with a user-provided
// live.Transport implementation.
type TransportSpec struct {
	Kind TransportKind
	// Custom plugs in a user transport; the bundled Kinds ignore it.
	Custom live.Transport
	// Label names a Custom transport in derived scenario names; empty
	// falls back to its Name.
	Label string
}

func (t TransportSpec) name() string {
	if t.Custom != nil {
		if t.Label != "" {
			return t.Label
		}
		return t.Custom.Name()
	}
	switch t.Kind {
	case TransportTCP:
		return "tcp"
	default:
		return "chan"
	}
}

// EstimatorConfig re-exports the live estimator configuration as part of
// the engine's runtime surface.
type EstimatorConfig = live.EstimatorConfig

// Estimate re-exports the live estimator's padded (d̂, û, ε̂) envelope.
type Estimate = live.Estimate

// Runtime is the scenario axis selecting simulated versus live execution.
// The zero value is the simulator — zero-cost, and every existing
// scenario keeps its exact meaning. A live runtime selects the transport,
// estimator configuration, warm-up, and retuning cadence; scaling
// Undertune below 1 deliberately tunes Algorithm 1's waits under the
// estimated envelope, which must reproduce the premature-tuning
// dichotomy (violation, divergence, or bound-level latency).
type Runtime struct {
	// Mode selects the runtime; the zero value is the simulator.
	Mode RuntimeMode
	// Transport selects the live transport (chan by default).
	Transport TransportSpec
	// Estimator configures the (u, d) estimator window, margin, and
	// prior; the zero value gets conservative defaults.
	Estimator EstimatorConfig
	// WarmupProbes is how many probe rounds warm the estimator before
	// load starts; 0 picks the default.
	WarmupProbes int
	// RetuneEvery is the adaptive retuning period; 0 picks the default,
	// negative disables mid-run retuning.
	RetuneEvery model.Time
	// Undertune, when in (0, 1), scales every tuned wait below the
	// estimated envelope — the live premature-tuning adversary.
	Undertune float64
	// Overhead is the scheduling-lateness allowance added to the
	// operational bound checks (a wall-clock run pays timer-firing and
	// goroutine-wakeup costs the model does not know); 0 picks 10ms.
	Overhead model.Time
	// Drain bounds the post-load wait for responses and quiescence;
	// 0 picks the live default (the scenario Horizon, when set, wins).
	Drain model.Time
}

// Live reports whether the runtime executes on the wall clock.
func (r Runtime) Live() bool { return r.Mode == RuntimeLive }

// label names the runtime in derived scenario names.
func (r Runtime) label() string {
	s := "live-" + r.Transport.name()
	if r.Undertuned() {
		s += fmt.Sprintf(",undertune=%g", r.Undertune)
	}
	return s
}

// Undertuned reports whether the runtime deliberately tunes below the
// estimated envelope.
func (r Runtime) Undertuned() bool { return r.Undertune > 0 && r.Undertune < 1 }

// LiveRuntime returns a live Runtime over the in-process chan transport.
func LiveRuntime() Runtime { return Runtime{Mode: RuntimeLive} }

// LiveTCPRuntime returns a live Runtime over loopback TCP.
func LiveTCPRuntime() Runtime {
	return Runtime{Mode: RuntimeLive, Transport: TransportSpec{Kind: TransportTCP}}
}

// overhead resolves the scheduling-lateness allowance.
func (r Runtime) overhead() model.Time {
	if r.Overhead > 0 {
		return r.Overhead
	}
	return model.Time(10 * time.Millisecond)
}

// LiveClass is one operation class of a live run: measured latency
// distribution against the Chapter V bound computed from the *estimated*
// (u, d, ε) — the margins the live runtime exists to report.
type LiveClass struct {
	// Class is the Chapter V operation class (MOP/AOP/OOP).
	Class spec.OpClass
	// Count is how many completed operations fell in the class.
	Count int
	// P99 and Max summarize the measured wall-clock latencies.
	P99 model.Time
	Max model.Time
	// Bound is the class's Chapter V bound at the final estimated
	// (d̂, û, ε̂) — ε̂+X, d̂+ε̂−X, or d̂+ε̂.
	Bound model.Time
	// OK is P99 ≤ Bound + Overhead: the class's tail meets its estimated
	// bound up to the scheduling allowance.
	OK bool
}

// Margin returns Bound - P99 (negative when the tail exceeds the bound).
func (c LiveClass) Margin() model.Time { return c.Bound - c.P99 }

// LiveReport records what a live run measured: the estimator's envelope,
// the retuning activity, and per-class measured-vs-estimated-bound
// margins. For Result.Bounds the engine judges latencies against the
// *peak* applied envelope plus Overhead (every wait armed during the run
// derives from some applied estimate ≤ the peak); the Classes table here
// keeps the honest final-estimate margins.
type LiveReport struct {
	// Transport names the transport the run used.
	Transport string
	// Estimate is the estimator's final envelope; EstimatedParams the
	// model parameters derived from it (the paper's (n, d, u, ε) with
	// estimated values).
	Estimate        Estimate
	EstimatedParams model.Params
	// Peak is the componentwise-largest envelope the tuner ever applied.
	Peak Estimate
	// Samples counts observed one-way delays; Retunes counts mid-run
	// envelope changes after the initial install.
	Samples int
	Retunes int
	// Undertune echoes the runtime's deliberate under-tuning factor
	// (0 for a safe run); Overhead the scheduling allowance used in OK.
	Undertune float64
	Overhead  model.Time
	// Warmup and Elapsed are wall time before load and in total.
	Warmup  model.Time
	Elapsed model.Time
	// Violation is a failed post-hoc linearizability check; Diverged
	// unequal final replica states.
	Violation bool
	Diverged  bool
	// Classes are the per-class measured-vs-estimated-bound margins.
	Classes []LiveClass
}

// Undertuned reports whether the run deliberately tuned below the
// estimated envelope.
func (l *LiveReport) Undertuned() bool { return l.Undertune > 0 && l.Undertune < 1 }

// Dichotomy reports the premature-tuning dichotomy for this run: an
// under-tuned implementation must either break (violation or divergence)
// or pay bound-level latency in some class. For a safe run it trivially
// reports whether anything broke or hit a bound.
func (l *LiveReport) Dichotomy() bool {
	if l.Violation || l.Diverged {
		return true
	}
	for _, c := range l.Classes {
		if c.Max >= c.Bound {
			return true
		}
	}
	return false
}

// Render renders the per-class margin table with the estimator summary.
func (l *LiveReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "transport=%s  %s  retunes=%d\n", l.Transport, l.Estimate, l.Retunes)
	fmt.Fprintf(&b, "  %-14s  %5s  %10s  %10s  %12s  %10s  %s\n",
		"class", "count", "p99", "max", "bound(est)", "margin", "ok")
	for _, c := range l.Classes {
		fmt.Fprintf(&b, "  %-14s  %5d  %10s  %10s  %12s  %10s  %v\n",
			c.Class, c.Count, c.P99, c.Max, c.Bound, c.Margin(), c.OK)
	}
	return b.String()
}

// liveTransport builds the scenario's live transport. The chan transport
// realizes the scenario's delay adversary as synthetic message delays
// drawn from [d−u, d], giving the estimator a known ground truth; TCP
// takes the loopback path as it is.
func (sc Scenario) liveTransport() (live.Transport, error) {
	if tr := sc.Runtime.Transport.Custom; tr != nil {
		return tr, nil
	}
	switch sc.Runtime.Transport.Kind {
	case TransportTCP:
		return &live.TCPTransport{}, nil
	case TransportChan:
	default:
		return nil, fmt.Errorf("unknown live transport kind %d", int(sc.Runtime.Transport.Kind))
	}
	if sc.Delay.Policy != nil {
		return nil, fmt.Errorf("custom delay policies are simulator-bound; live scenarios use the bundled modes")
	}
	p := sc.Params
	var delay live.DelayFunc
	switch sc.Delay.Mode {
	case DelayWorst:
		delay = live.FixedDelay(p.D)
	case DelayBest:
		delay = live.FixedDelay(p.MinDelay())
	case DelayExtremal:
		delay = live.AlternatingDelay(p.MinDelay(), p.D)
	default:
		delay = live.UniformDelay(sc.Seed, p.MinDelay(), p.D)
	}
	return &live.ChanTransport{Delay: delay}, nil
}

// runLive executes a live-runtime scenario: run the wall-clock cluster,
// check the recorded history post hoc with the worker's checker
// resources, and reduce to a Result carrying a LiveReport.
func (sc Scenario) runLive(cfg runConfig) Result {
	res := Result{
		Name:    sc.Name,
		Backend: sc.Backend.Name(),
		Params:  sc.Params,
		X:       sc.X,
		Seed:    sc.Seed,
	}
	if sc.DataType != nil {
		res.Object = sc.DataType.Name()
	}
	fail := func(err error) Result {
		res.Err = err.Error()
		return res
	}
	if sc.expandErr != nil {
		return fail(sc.expandErr)
	}
	if sc.DataType == nil {
		return fail(fmt.Errorf("scenario has no data type"))
	}
	if err := sc.Params.Validate(); err != nil {
		return fail(err)
	}
	switch b := sc.Backend.(type) {
	case Algorithm1:
		if b.Tuning != (Algorithm1{}).Tuning {
			return fail(fmt.Errorf("live runtime derives its tuning from the estimator; use Runtime.Undertune instead of backend Tuning overrides"))
		}
	default:
		return fail(fmt.Errorf("live runtime supports the algorithm1 backend only, not %s", sc.Backend.Name()))
	}
	if sc.Faults.enabled() {
		return fail(fmt.Errorf("live runtime does not inject fault plans; use the simulated runtime for fault scenarios"))
	}
	if sc.Witness != nil {
		return fail(fmt.Errorf("live runtime does not run adversary witness scenarios"))
	}
	if sc.Trace {
		return fail(fmt.Errorf("live runtime records histories, not simulator traces"))
	}
	tr, err := sc.liveTransport()
	if err != nil {
		return fail(err)
	}
	sched, err := sc.Workload.Schedule(sc.Params, sc.Seed)
	if err != nil {
		return fail(err)
	}
	invs := make([]live.Invocation, len(sched.Invocations))
	for i, inv := range sched.Invocations {
		invs[i] = live.Invocation{At: inv.At, Proc: inv.Proc, Kind: inv.Kind, Arg: inv.Arg}
	}
	drain := sc.Runtime.Drain
	if sc.Horizon > 0 {
		drain = sc.Horizon
	}
	rr, err := live.Run(live.Config{
		N:            sc.Params.N,
		X:            sc.X,
		DataType:     sc.DataType,
		Transport:    tr,
		Estimator:    sc.Runtime.Estimator,
		Undertune:    sc.Runtime.Undertune,
		WarmupProbes: sc.Runtime.WarmupProbes,
		RetuneEvery:  sc.Runtime.RetuneEvery,
		ClockOffsets: sc.ClockOffsets,
		Drain:        drain,
	}, invs)
	if err != nil {
		return fail(err)
	}
	h := rr.History
	res.History = h
	res.Pending = rr.Pending
	res.Ops = h.Len() - rr.Pending
	if rr.Pending > 0 {
		return fail(fmt.Errorf("live run left %d operations without a response within the drain window", rr.Pending))
	}
	res.PerKind = workload.Summarize(h)
	if sc.Verify {
		opts := cfg.check
		opts.Cache = cfg.caches.For(sc.DataType)
		res.Checked = true
		res.Linearizable = check.CheckOpts(sc.DataType, h, opts).Linearizable
	}
	res.Converged = !rr.Diverged()
	if res.Converged {
		if len(rr.States) > 0 {
			res.State = rr.States[0]
		}
	} else {
		res.Diverged = fmt.Sprintf("live replicas diverged: %v", rr.States)
	}

	estimated := model.Params{N: sc.Params.N, D: rr.Estimate.D, U: rr.Estimate.U, Epsilon: rr.Estimate.Epsilon}
	peak := model.Params{N: sc.Params.N, D: rr.Peak.D, U: rr.Peak.U, Epsilon: rr.Peak.Epsilon}
	overhead := sc.Runtime.overhead()

	// Per-class wall-clock latency samples, classed by the data type.
	samples := make(map[spec.OpClass][]model.Time)
	counts := make(map[spec.OpClass]int)
	for _, op := range h.Ops() {
		if op.Pending {
			continue
		}
		class := sc.DataType.Class(op.Kind)
		samples[class] = append(samples[class], op.Latency())
		counts[class]++
	}
	classes := make([]spec.OpClass, 0, len(samples))
	for class := range samples {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	lr := &LiveReport{
		Transport:       tr.Name(),
		Estimate:        rr.Estimate,
		EstimatedParams: estimated,
		Peak:            rr.Peak,
		Samples:         rr.Samples,
		Retunes:         rr.Retunes,
		Undertune:       sc.Runtime.Undertune,
		Overhead:        overhead,
		Warmup:          rr.Warmup,
		Elapsed:         rr.Elapsed,
		Violation:       res.Checked && !res.Linearizable,
		Diverged:        !res.Converged,
	}
	res.Bounds = res.Bounds[:0]
	for _, class := range classes {
		ls := samples[class]
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		idx := (len(ls)*99 + 99) / 100
		if idx >= len(ls) {
			idx = len(ls) - 1
		}
		p99, max := ls[idx], ls[len(ls)-1]
		bound := sc.Backend.Bound(estimated, sc.X, class)
		lr.Classes = append(lr.Classes, LiveClass{
			Class: class,
			Count: counts[class],
			P99:   p99,
			Max:   max,
			Bound: bound,
			OK:    p99 <= bound+overhead,
		})
		// The engine-level pass/fail envelope: waits armed during the run
		// derive from estimates ≤ the peak, plus real scheduling lateness.
		opBound := sc.Backend.Bound(peak, sc.X, class) + overhead
		res.Bounds = append(res.Bounds, BoundCheck{
			Class:    class,
			Count:    counts[class],
			Bound:    opBound,
			Measured: max,
			OK:       max <= opBound,
		})
	}
	res.Live = lr
	return res
}
