package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/workload"
)

// Study declares a load-sweep saturation study: one scenario template
// driven by open-loop traffic across an axis of offered rates, each point
// folded online into constant-memory summaries (no retained histories),
// with an optional bisection search for the saturation knee — the lowest
// offered load at which the p99 sojourn time of some operation class
// detaches from the backend's theoretical service bound.
//
// The paper's Chapter V bounds are per-operation worst cases under the
// one-pending-operation-per-process rule; under open-loop arrivals the
// simulator defers an arrival while the process's previous operation is
// pending, so sojourn time (arrival→response, history.Record.Sojourn)
// grows without bound once the offered per-process rate exceeds the
// service rate while service latency stays within its bound. A Study maps
// where that detachment happens for a backend and mix.
type Study struct {
	// Name labels the study in reports; empty derives one.
	Name string
	// Base is the scenario template: Backend, DataType, Params, X, Delay,
	// ClockOffsets, Verify and Seed are used; its Workload is replaced per
	// point by an open-loop spec realizing the offered load.
	Base Scenario
	// Mix optionally fixes the operation mix; nil uses the object default.
	Mix workload.OpMix
	// Loads is the explicit offered-load axis in aggregate operations per
	// second across all processes, ascending. Empty means Ramp.
	Loads []float64
	// Ramp auto-generates a geometric axis when Loads is empty.
	Ramp LoadRamp
	// OpsPerPoint is how many operations each process offers per point
	// (default 50). More ops sharpen the p99 at the cost of longer runs.
	OpsPerPoint int
	// Seeds are the seeds run per point (default {Base.Seed}); the point's
	// summaries aggregate across them.
	Seeds []int64
	// KneeFactor is the detachment threshold K: a point is saturated when
	// some class's p99 sojourn ≥ K × the backend's bound for that class
	// (default 2).
	KneeFactor float64
	// KneeTol is the relative load tolerance the knee bisection narrows
	// the bracket to (default 0.10, i.e. knee located within 10%).
	KneeTol float64
	// MaxBisections caps the bisection steps (default 8).
	MaxBisections int
	// OnPoint, when set, observes each completed point in completion order
	// (axis points first, then bisection probes) — the progress hook for
	// cmd/ tools.
	OnPoint func(StudyPoint)
}

// LoadRamp generates a geometric offered-load axis: Points samples from
// From to To inclusive, each a constant factor above the last.
type LoadRamp struct {
	// From and To are aggregate offered loads in ops/sec, 0 < From ≤ To.
	From, To float64
	// Points is the sample count (≥ 2, or 1 when From == To).
	Points int
}

// Axis expands the ramp into explicit loads.
func (r LoadRamp) Axis() ([]float64, error) {
	if !(r.From > 0) || math.IsInf(r.From, 0) || !finite(r.To) {
		return nil, fmt.Errorf("engine: study ramp %g → %g must span positive finite offered loads (ops/sec)", r.From, r.To)
	}
	if r.To < r.From {
		return nil, fmt.Errorf("engine: study ramp end %g precedes its start %g — sweep loads ascending (swap From and To)", r.To, r.From)
	}
	if r.From == r.To {
		return []float64{r.From}, nil
	}
	if r.Points < 2 {
		return nil, fmt.Errorf("engine: study ramp needs ≥ 2 points to span %g → %g (got %d)", r.From, r.To, r.Points)
	}
	out := make([]float64, r.Points)
	ratio := math.Pow(r.To/r.From, 1/float64(r.Points-1))
	load := r.From
	for i := range out {
		out[i] = load
		load *= ratio
	}
	out[r.Points-1] = r.To // pin the endpoint against drift
	return out, nil
}

// StudyPoint is one measured offered-load point.
type StudyPoint struct {
	// Load is the aggregate offered load (ops/sec across all processes);
	// Spacing is the per-process interarrival gap realizing it.
	Load    float64
	Spacing model.Time
	// Agg is the point's online aggregate (per-kind service stats,
	// per-class sojourn stats, verdict counters, utilization terms).
	Agg *Aggregate
	// PerClass snapshots the per-class sojourn summaries: P50/P99 per
	// class, against the backend's Bound. Margin is Bound×K − P99
	// (negative means detached).
	PerClass []ClassLoad
	// Utilization is the measured busy fraction (service time over
	// process-time capacity); InFlight is Little's-law mean occupancy over
	// the completed work (measured throughput × mean sojourn — see
	// Aggregate.InFlight; offered load would overstate occupancy whenever
	// some scheduled operations never completed).
	Utilization float64
	InFlight    float64
	// Saturated reports the detachment verdict: some class's p99 sojourn
	// reached K × its service bound.
	Saturated bool
	// Probe marks points added by the knee bisection rather than the axis.
	Probe bool
}

// ClassLoad is one class's sojourn summary at one offered load.
type ClassLoad struct {
	Class spec.OpClass
	// Bound is the backend's theoretical service bound for the class.
	Bound model.Time
	// Count, P50, P99 and Max summarize the class's sojourn times.
	Count int
	P50   model.Time
	P99   model.Time
	Max   model.Time
}

// Detached reports whether the class's p99 sojourn reached k× its bound.
func (c ClassLoad) Detached(k float64) bool {
	return c.Bound > 0 && float64(c.P99) >= k*float64(c.Bound)
}

// Knee is a located saturation knee.
type Knee struct {
	// Load is the detected knee: the lowest measured offered load that
	// saturated. Low is the other side of the final bracket — the
	// highest load measured still attached.
	Load float64
	Low  float64
	// Class is the first operation class that detached at Load, with its
	// p99 sojourn and service bound there.
	Class spec.OpClass
	P99   model.Time
	Bound model.Time
}

// StudyReport is the outcome of a study run.
type StudyReport struct {
	// Name echoes the study.
	Name string
	// Points are the measured points — axis plus bisection probes —
	// sorted by ascending load.
	Points []StudyPoint
	// Knee is the located saturation knee, nil when the axis never
	// saturated (or saturated from its very first point, leaving no
	// bracket to search).
	Knee *Knee
	// Incomplete is true when the run was cancelled before the axis (and
	// knee search) finished; Points holds what completed.
	Incomplete bool
}

// String renders the latency-vs-offered-load table: one row per point and
// class with p50/p99 sojourn, the class bound, utilization, and a knee
// marker on the first saturated point at or above the knee.
func (r StudyReport) String() string {
	var b strings.Builder
	if r.Name != "" {
		fmt.Fprintf(&b, "study %s\n", r.Name)
	}
	fmt.Fprintf(&b, "%12s  %-6s  %8s  %10s  %10s  %10s  %5s  %s\n",
		"load(ops/s)", "class", "count", "p50", "p99", "bound", "util", "knee")
	marked := false
	for _, pt := range r.Points {
		for i, cl := range pt.PerClass {
			mark := ""
			if i == 0 {
				if r.Knee != nil && !marked && pt.Load >= r.Knee.Load && pt.Saturated {
					mark = "◀ knee"
					marked = true
				} else if pt.Saturated {
					mark = "saturated"
				}
			}
			load, util := "", ""
			if i == 0 {
				load = fmt.Sprintf("%.1f", pt.Load)
				util = fmt.Sprintf("%.2f", pt.Utilization)
			}
			fmt.Fprintf(&b, "%12s  %-6s  %8d  %10s  %10s  %10s  %5s  %s\n",
				load, cl.Class, cl.Count, cl.P50, cl.P99, cl.Bound, util, mark)
		}
	}
	if r.Knee != nil {
		fmt.Fprintf(&b, "knee: %s p99 %s ≥ K×bound at ≈%.1f ops/s (bracket %.1f–%.1f)\n",
			r.Knee.Class, r.Knee.P99, r.Knee.Load, r.Knee.Low, r.Knee.Load)
	} else if !r.Incomplete {
		fmt.Fprintf(&b, "no saturation knee within the swept axis\n")
	}
	return b.String()
}

// resolve fills defaults and validates the study.
func (s Study) resolve() (Study, []float64, error) {
	if s.Base.DataType == nil {
		return s, nil, fmt.Errorf("engine: study has no data type")
	}
	if s.Base.Backend == nil {
		s.Base.Backend = Algorithm1{}
	}
	if s.Base.Params.Epsilon == 0 {
		s.Base.Params.Epsilon = s.Base.Params.OptimalSkew()
	}
	if err := s.Base.Params.Validate(); err != nil {
		return s, nil, err
	}
	if s.OpsPerPoint == 0 {
		s.OpsPerPoint = 50
	}
	if len(s.Seeds) == 0 {
		seed := s.Base.Seed
		if seed == 0 {
			seed = 1
		}
		s.Seeds = []int64{seed}
	}
	if s.KneeFactor == 0 {
		s.KneeFactor = 2
	}
	if s.KneeFactor <= 1 {
		return s, nil, fmt.Errorf("engine: study knee factor %g must exceed 1 (p99 ≥ K×bound)", s.KneeFactor)
	}
	if s.KneeTol == 0 {
		s.KneeTol = 0.10
	}
	if s.MaxBisections == 0 {
		s.MaxBisections = 8
	}
	if s.Mix == nil {
		s.Mix = workload.DefaultMix(s.Base.DataType)
	}
	if s.Name == "" {
		s.Name = fmt.Sprintf("%s/%s", s.Base.Backend.Name(), s.Base.DataType.Name())
	}
	axis := s.Loads
	if len(axis) == 0 {
		var err error
		axis, err = s.Ramp.Axis()
		if err != nil {
			return s, nil, err
		}
	}
	for i, load := range axis {
		// !(load > 0) rather than load <= 0: NaN fails every comparison
		// and must not slip through as an "ascending positive" load.
		if !(load > 0) || math.IsInf(load, 0) {
			return s, nil, fmt.Errorf("engine: study load %g (point %d) must be a positive finite offered rate (ops/sec)", load, i)
		}
		if i > 0 && !(load > axis[i-1]) {
			return s, nil, fmt.Errorf("engine: study loads must ascend (point %d: %g after %g)", i, load, axis[i-1])
		}
	}
	return s, axis, nil
}

// finite reports v is neither NaN nor ±Inf.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// spacing converts an aggregate offered load into the per-process
// interarrival gap (≥ 1ns) realizing it.
func (s Study) spacing(load float64) model.Time {
	gap := model.Time(math.Round(float64(s.Base.Params.N) * 1e9 / load))
	if gap < 1 {
		gap = 1
	}
	return gap
}

// scenarios expands one offered-load point into its per-seed scenarios.
func (s Study) scenarios(load float64) []Scenario {
	gap := s.spacing(load)
	out := make([]Scenario, 0, len(s.Seeds))
	for _, seed := range s.Seeds {
		sc := s.Base
		sc.Seed = seed
		sc.Name = fmt.Sprintf("study/%s/load=%.1f/seed=%d", s.Name, load, seed)
		sc.Workload = workload.Spec{
			Name:          fmt.Sprintf("open-%.1f", load),
			Mode:          workload.Open,
			Mix:           s.Mix,
			OpsPerProcess: s.OpsPerPoint,
			Spacing:       gap,
			Start:         s.Base.Params.D,
		}
		out = append(out, sc)
	}
	return out
}

// runPoint measures one offered load: its per-seed scenarios stream
// through the engine and fold into one Aggregate. ok is false when ctx
// was cancelled before every scenario reported; err surfaces scenario
// failures (a study must never mistake a broken point for an attached
// one).
func (s Study) runPoint(ctx context.Context, e *Engine, load float64, probe bool) (StudyPoint, bool, error) {
	scs := s.scenarios(load)
	agg := NewAggregate()
	for _, res := range e.Stream(ctx, scs) {
		agg.Add(s.Base.DataType, res)
	}
	if agg.Failed > 0 {
		return StudyPoint{}, false, fmt.Errorf("engine: study point at %.1f ops/s: %d of %d scenarios failed: %s",
			load, agg.Failed, len(scs), agg.Errs[0])
	}
	pt := StudyPoint{
		Load:        load,
		Spacing:     s.spacing(load),
		Agg:         agg,
		Utilization: agg.Utilization(),
		Probe:       probe,
	}
	classes := make([]spec.OpClass, 0, len(agg.PerClass))
	for class := range agg.PerClass {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, class := range classes {
		cs := agg.PerClass[class]
		cl := ClassLoad{
			Class: class,
			Bound: s.Base.Backend.Bound(s.Base.Params, s.Base.X, class),
			Count: cs.Count(),
			P50:   cs.P50(),
			P99:   cs.P99(),
			Max:   cs.Max(),
		}
		pt.PerClass = append(pt.PerClass, cl)
		if cl.Detached(s.KneeFactor) {
			pt.Saturated = true
		}
	}
	// Little's law over the completed work: measured throughput, not the
	// offered load — on a cancelled or saturating point the two diverge,
	// and planned-load occupancy would count operations that never ran.
	pt.InFlight = agg.InFlight()
	return pt, agg.Scenarios == len(scs), nil
}

// Run executes the study on the engine: every axis point streams through
// the worker pool and folds online, then — when the axis brackets a
// detachment — a geometric bisection narrows the knee to within KneeTol.
// Cancelling ctx returns promptly with the points measured so far and
// Incomplete set. The report is a pure function of the study declaration:
// same study ⇒ identical report at any worker count.
func (s Study) Run(ctx context.Context, e *Engine) (StudyReport, error) {
	s, axis, err := s.resolve()
	if err != nil {
		return StudyReport{}, err
	}
	if e == nil {
		e = New(0)
	}
	rep := StudyReport{Name: s.Name}
	emit := func(pt StudyPoint) {
		rep.Points = append(rep.Points, pt)
		if s.OnPoint != nil {
			s.OnPoint(pt)
		}
	}
	for _, load := range axis {
		pt, ok, err := s.runPoint(ctx, e, load, false)
		if err != nil {
			return StudyReport{}, err
		}
		if !ok {
			rep.Incomplete = true
			sortPoints(rep.Points)
			return rep, nil
		}
		emit(pt)
	}
	// Bracket the knee on the axis: the last attached point before the
	// first saturated one.
	first := -1
	for i, pt := range rep.Points {
		if pt.Saturated {
			first = i
			break
		}
	}
	if first <= 0 {
		sortPoints(rep.Points)
		return rep, nil // never saturated, or no attached point below
	}
	lo, hi := rep.Points[first-1], rep.Points[first]
	for i := 0; i < s.MaxBisections && hi.Load/lo.Load > 1+s.KneeTol; i++ {
		mid := math.Sqrt(lo.Load * hi.Load)
		pt, ok, err := s.runPoint(ctx, e, mid, true)
		if err != nil {
			return StudyReport{}, err
		}
		if !ok {
			rep.Incomplete = true
			break
		}
		emit(pt)
		if pt.Saturated {
			hi = pt
		} else {
			lo = pt
		}
	}
	for _, cl := range hi.PerClass {
		if cl.Detached(s.KneeFactor) {
			rep.Knee = &Knee{
				Load: hi.Load, Low: lo.Load,
				Class: cl.Class, P99: cl.P99, Bound: cl.Bound,
			}
			break
		}
	}
	sortPoints(rep.Points)
	return rep, nil
}

// sortPoints orders points by ascending load (stable for equal loads).
func sortPoints(pts []StudyPoint) {
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Load < pts[j].Load })
}
