package engine_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"timebounds/internal/engine"
	"timebounds/internal/model"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

func shardedScenario(seed int64, shards int) engine.ShardedScenario {
	return engine.ShardedScenario{
		Params: model.Params{N: 3, D: 10 * time.Millisecond, U: 4 * time.Millisecond},
		Seed:   seed,
		Workload: workload.Sharded{
			Keys:   []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"},
			Shards: shards,
			PerKey: workload.Spec{OpsPerProcess: 2},
		},
		Verify: true,
	}
}

func TestRunShardedVerifiedStore(t *testing.T) {
	rep, err := engine.New(0).RunSharded(shardedScenario(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Shards) != 3 {
		t.Fatalf("ran %d shards, want 3", len(rep.Shards))
	}
	if !rep.Linearizable() {
		t.Fatal("the composed store must be linearizable")
	}
	if rep.Ops == 0 {
		t.Fatal("no operations completed")
	}
	total := 0
	for _, st := range rep.PerKind {
		total += st.Count
	}
	if total != rep.Ops {
		t.Fatalf("aggregate PerKind covers %d ops, report says %d", total, rep.Ops)
	}
	if len(rep.Bounds) == 0 {
		t.Fatal("aggregate bound checks missing")
	}
	for _, b := range rep.Bounds {
		if !b.OK {
			t.Fatalf("class %s measured %s exceeds bound %s", b.Class, b.Measured, b.Bound)
		}
	}
	if rep.Stats.Shards != 3 || rep.Stats.MaxOps == 0 || rep.Stats.SlowestShard == "" {
		t.Fatalf("skew stats incomplete: %+v", rep.Stats)
	}
	if rep.Stats.Imbalance < 1 {
		t.Fatalf("imbalance %v < 1 is impossible (max/mean)", rep.Stats.Imbalance)
	}
}

// TestRunShardedDeterministicAcrossWorkers pins the scaling contract:
// same seed and shard count ⇒ bit-identical merged report at any worker
// count.
func TestRunShardedDeterministicAcrossWorkers(t *testing.T) {
	var reports []engine.ShardedReport
	for _, workers := range []int{1, 2, 8} {
		rep, err := engine.New(workers).RunSharded(shardedScenario(11, 4))
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("merged report differs between 1 worker and %d workers", []int{1, 2, 8}[i])
		}
	}
}

// TestRunShardedSeedSensitive guards against accidentally reusing one
// shard's delay draws for all shards: different seeds must move the
// measured latencies.
func TestRunShardedSeedSensitive(t *testing.T) {
	a, err := engine.New(0).RunSharded(shardedScenario(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.New(0).RunSharded(shardedScenario(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.PerKind, b.PerKind) {
		t.Fatal("different seeds produced identical aggregate latency stats")
	}
}

// TestShardedCompositionViolationFailsVerdict injects a per-shard
// linearizability violation into the merge and asserts the composed
// verdict (and Err) fail — the locality direction the engine relies on.
func TestShardedCompositionViolationFailsVerdict(t *testing.T) {
	plan, scs, err := engine.ExpandSharded(shardedScenario(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	rep := engine.Run(scs)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}

	honest := engine.MergeSharded(plan, rep)
	if !honest.Linearizable() || honest.Err() != nil {
		t.Fatalf("honest merge should pass: %v", honest.Err())
	}

	rep.Results[1].Linearizable = false
	doctored := engine.MergeSharded(plan, rep)
	if doctored.Linearizable() {
		t.Fatal("a violating shard must fail the composed verdict")
	}
	err = doctored.Err()
	if err == nil {
		t.Fatal("Err() must surface the composition failure")
	}
	if !strings.Contains(err.Error(), rep.Results[1].Name) {
		t.Fatalf("error %q does not name the violating shard %q", err, rep.Results[1].Name)
	}
	if failing := doctored.Composition.Failing(); len(failing) != 1 || failing[0] != rep.Results[1].Name {
		t.Fatalf("Failing() = %v, want the doctored shard", failing)
	}
}

// TestShardedShardErrorSurfaces: a failed shard run fails the report.
func TestShardedShardErrorSurfaces(t *testing.T) {
	plan, scs, err := engine.ExpandSharded(shardedScenario(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	rep := engine.Run(scs)
	rep.Results[0].Err = "boom"
	merged := engine.MergeSharded(plan, rep)
	if merged.OK() {
		t.Fatal("a shard error must fail the merged report")
	}
	if err := merged.Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Err() = %v, want the shard failure", err)
	}
}

// TestShardedExplicitStoreSettledReads drives the kvstore shape through
// the engine path: racing writes settle, and late reads observe the
// winning value in the converged shard states.
func TestShardedExplicitStoreSettledReads(t *testing.T) {
	d := 10 * time.Millisecond
	ss := engine.ShardedScenario{
		Params: model.Params{N: 4, D: d, U: 4 * time.Millisecond},
		Seed:   99,
		Workload: workload.Sharded{
			Name: "kv",
			Keys: []string{"alpha", "beta"},
			Explicit: []workload.KeyOp{
				workload.Put(0, 0, "alpha", 1),
				workload.Put(2*time.Millisecond, 2, "alpha", 2),
				workload.Put(0, 1, "beta", "hello"),
				workload.Get(6*d, 3, "alpha"),
				workload.Get(6*d, 1, "beta"),
			},
		},
		Verify: true,
	}
	rep, err := engine.RunSharded(ss)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("ran %d shards, want one per key", len(rep.Shards))
	}
	if !rep.Linearizable() {
		t.Fatal("store must be linearizable")
	}
	// The late read of beta must return the settled value.
	for _, res := range rep.Shards {
		for _, op := range res.History.Ops() {
			if op.Kind == types.OpDictGet && op.Arg == "beta" && op.Ret != "hello" {
				t.Fatalf("settled read of beta returned %v, want hello", op.Ret)
			}
		}
	}
}

// TestShardedEmptyShardVacuous: a key with no explicit operations leaves
// its shard planned but not run, and the report stays consistent.
func TestShardedEmptyShardVacuous(t *testing.T) {
	ss := engine.ShardedScenario{
		Params: model.Params{N: 3, D: 10 * time.Millisecond, U: 4 * time.Millisecond},
		Workload: workload.Sharded{
			Keys: []string{"used", "idle"},
			Explicit: []workload.KeyOp{
				workload.Put(0, 0, "used", 1),
				workload.Get(50*time.Millisecond, 1, "used"),
			},
		},
		Verify: true,
	}
	rep, err := engine.RunSharded(ss)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Shards) != 1 {
		t.Fatalf("ran %d shards, want only the non-empty one", len(rep.Shards))
	}
	if rep.Stats.Shards != 2 || rep.Stats.Empty != 1 || rep.Stats.MinOps != 0 {
		t.Fatalf("skew stats should count the empty shard: %+v", rep.Stats)
	}
	if !rep.Linearizable() {
		t.Fatal("an empty shard is vacuously linearizable")
	}
}
