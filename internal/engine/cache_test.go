package engine_test

import (
	"reflect"
	"testing"
	"time"

	"timebounds/internal/engine"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// cacheGrid is a verified multi-backend grid whose runs share checker
// state through the engine's per-datatype cache set.
func cacheGrid() []engine.Scenario {
	ms := model.Time(time.Millisecond)
	return engine.Grid{
		Backends: engine.Backends(),
		Objects:  []spec.DataType{types.NewRegister(0), types.NewQueue()},
		Params:   []model.Params{{N: 3, D: 10 * ms, U: 4 * ms}},
		Seeds:    []int64{1, 2, 3},
		Delays: []engine.DelaySpec{
			{Mode: engine.DelayRandom},
			{Mode: engine.DelayExtremal},
		},
		Workloads: []workload.Spec{{OpsPerProcess: 4}},
		Verify:    true,
	}.Scenarios()
}

// TestSharedCheckerStateUnobservable reuses the workers-1-vs-8
// determinism harness with the cross-run checker cache switched on and
// off: all four Reports must be bit-identical. This is the engine-level
// guarantee that memoized checking (and its sharing across the worker
// pool) cannot change a verdict.
func TestSharedCheckerStateUnobservable(t *testing.T) {
	scenarios := cacheGrid()
	if len(scenarios) < 16 {
		t.Fatalf("grid expanded to %d scenarios, want ≥ 16", len(scenarios))
	}

	sharedSeq := engine.New(1).Run(scenarios)
	sharedPar := engine.New(8).Run(scenarios)

	restore := engine.SetSharedCheckerDisabled(true)
	unsharedSeq := engine.New(1).Run(scenarios)
	unsharedPar := engine.New(8).Run(scenarios)
	restore()

	if err := sharedPar.Err(); err != nil {
		t.Fatalf("grid run: %v", err)
	}
	if !reflect.DeepEqual(sharedSeq, sharedPar) {
		t.Error("shared-cache Report differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(unsharedSeq, unsharedPar) {
		t.Error("uncached Report differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(sharedSeq, unsharedSeq) {
		t.Error("shared-cache Report differs from uncached Report")
	}
	checked := 0
	for _, res := range sharedSeq.Results {
		if res.Checked {
			checked++
		}
		if !res.Linearizable {
			t.Errorf("%s: not linearizable", res.Name)
		}
	}
	if checked != len(scenarios) {
		t.Fatalf("only %d/%d runs were verified", checked, len(scenarios))
	}
}

// TestIslandCheckingUnobservable is the same harness for the verifier's
// concurrency-island decomposition (the tentpole acceptance criterion):
// Reports must be bit-identical at workers 1 and 8, islands on and off.
// At 8 workers with islands on, verified histories fan their islands out
// across the pool's worker budget; at 1 worker islands run sequentially;
// with islands off every history takes the single whole-history search.
func TestIslandCheckingUnobservable(t *testing.T) {
	scenarios := cacheGrid()

	islandSeq := engine.New(1).Run(scenarios)
	islandPar := engine.New(8).Run(scenarios)

	restore := engine.SetIslandCheckDisabled(true)
	wholeSeq := engine.New(1).Run(scenarios)
	wholePar := engine.New(8).Run(scenarios)
	restore()

	if err := islandPar.Err(); err != nil {
		t.Fatalf("grid run: %v", err)
	}
	if !reflect.DeepEqual(islandSeq, islandPar) {
		t.Error("island-checking Report differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(wholeSeq, wholePar) {
		t.Error("whole-history Report differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(islandSeq, wholeSeq) {
		t.Error("island-checking Report differs from whole-history Report")
	}
}
