package engine

import (
	"fmt"

	"timebounds/internal/core"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/workload"
)

// AdversaryRun is one member of a lower-bound adversary's run family: a
// delay assignment, a clock assignment, and an explicit invocation schedule
// — the (delay matrix, clock shift, schedule) triple of the paper's proofs.
// Each run expands to one ordinary engine Scenario.
type AdversaryRun struct {
	// Name labels the run within its family ("R1", "R2", …).
	Name string
	// ClockOffsets fixes the per-process clock offsets (pairwise within ε).
	ClockOffsets []model.Time
	// Delay is the run's message-delay adversary. Policy builders are
	// invoked fresh per run, so expanding the same family twice (or running
	// it at any parallelism) never shares policy state between runs.
	Delay DelaySpec
	// Schedule is the explicit invocation schedule of the run.
	Schedule []workload.Invocation
	// Faults, when set, overrides the spec-level fault plan for this run —
	// for families whose members differ in when (or whether) faults strike.
	Faults FaultSpec
}

// AdversarySpec is a first-class, named lower-bound adversary: a generator
// of the run family of one of the paper's constructions (Theorems C.1, D.1,
// E.1, Figure 1), parameter-generic so grids can sweep it across (ε, u, d)
// exactly like a DelaySpec. Every generated scenario carries a WitnessSpec,
// so its Result records a BoundWitness — the operation whose latency
// witnesses the theoretical lower bound, or the linearizability violation
// that catches an implementation tuned below it.
type AdversarySpec struct {
	// Name identifies the adversary in scenario names and witness tables.
	Name string
	// DataType is the object the construction drives (required).
	DataType spec.DataType
	// Backend, when set, overrides the composed backend — for
	// constructions that test a bespoke implementation rather than a
	// tuning (Figure 1's zero-latency register).
	Backend Backend
	// X returns Algorithm 1's tradeoff parameter for the construction; nil
	// means 0.
	X func(p model.Params) model.Time
	// Tuning returns the implementation tuning under test (premature when
	// it targets a latency below the bound); nil keeps the proven-correct
	// defaults. It only takes effect on backends implementing
	// TunableBackend; other backends run untuned (they are "correct" by
	// construction, so the witness dichotomy still applies).
	Tuning func(p model.Params) core.Tuning
	// Runs generates the run family for one parameter point. It must be a
	// deterministic pure function of p, and every run must carry its own
	// fresh delay-policy state.
	Runs func(p model.Params) ([]AdversaryRun, error)
	// Bound returns the theoretical lower bound the family witnesses.
	Bound func(p model.Params) model.Time
	// WitnessKinds are the operation kinds the bound constrains; the
	// witness is taken among completed operations of these kinds.
	WitnessKinds []spec.OpKind
	// PairWitness sums the per-kind worst cases (|OP| + |AOP| bounds such
	// as Theorem E.1) instead of taking their maximum.
	PairWitness bool
	// RequireLinearizable declares that the tuning under test is the
	// proven-correct one, so every member run must linearize and converge
	// — a violation then FALSIFIES the family instead of trivially
	// satisfying the dichotomy, which is what catches a regression in the
	// algorithm itself. Leave false for premature tunings, whose
	// violations are the expected outcome.
	RequireLinearizable bool
	// Faults injects a fault plan into every member run (individual runs
	// may override it via AdversaryRun.Faults).
	Faults FaultSpec
	// FaultDichotomy judges the family by the fault-verdict dichotomy:
	// every member must land on exactly one of within-bound or
	// assumption-broken — a run with neither verdict falsifies the family.
	FaultDichotomy bool
}

// Scenarios expands the adversary's run family at one parameter point into
// ordinary engine scenarios: backend × run, each with the run's delay
// matrix, clock assignment, explicit schedule, the spec's tuning (when the
// backend is tunable), linearizability checking, and a witness declaration.
// Epsilon 0 resolves to the optimal skew before the family is generated, so
// constructions see the same parameters the run will use.
func (as AdversarySpec) Scenarios(b Backend, p model.Params, seed int64) ([]Scenario, error) {
	if as.Runs == nil {
		return nil, fmt.Errorf("engine: adversary %q has no run generator", as.Name)
	}
	if as.Backend != nil {
		b = as.Backend
	}
	if b == nil {
		b = Algorithm1{}
	}
	if p.Epsilon == 0 {
		p.Epsilon = p.OptimalSkew()
	}
	var x model.Time
	if as.X != nil {
		x = as.X(p)
	}
	if as.Tuning != nil {
		if tb, ok := b.(TunableBackend); ok {
			b = tb.WithTuning(as.Tuning(p))
		}
	}
	runs, err := as.Runs(p)
	if err != nil {
		return nil, fmt.Errorf("engine: adversary %q: %w", as.Name, err)
	}
	var bound model.Time
	if as.Bound != nil {
		bound = as.Bound(p)
	}
	family := fmt.Sprintf("adversary/%s/%s/%s/n=%d,d=%s,u=%s,ε=%s/x=%s/seed=%d",
		as.Name, b.Name(), as.DataType.Name(), p.N, p.D, p.U, p.Epsilon, x, seed)
	out := make([]Scenario, 0, len(runs))
	for _, r := range runs {
		delay := r.Delay
		if delay.Policy != nil && delay.Label == "" {
			delay.Label = as.Name
		}
		faults := as.Faults
		if r.Faults.enabled() {
			faults = r.Faults
		}
		out = append(out, Scenario{
			Name: fmt.Sprintf("adversary/%s/%s/%s/%s/n=%d,d=%s,u=%s,ε=%s/x=%s/seed=%d",
				as.Name, r.Name, b.Name(), as.DataType.Name(),
				p.N, p.D, p.U, p.Epsilon, x, seed),
			Backend:      b,
			DataType:     as.DataType,
			Params:       p,
			X:            x,
			Seed:         seed,
			Delay:        delay,
			ClockOffsets: r.ClockOffsets,
			Workload:     workload.Spec{Name: r.Name, Explicit: append([]workload.Invocation(nil), r.Schedule...)},
			Verify:       true,
			Faults:       faults,
			Witness: &WitnessSpec{
				Family:              family,
				Kinds:               append([]spec.OpKind(nil), as.WitnessKinds...),
				Pair:                as.PairWitness,
				Bound:               bound,
				RequireLinearizable: as.RequireLinearizable,
				FaultDichotomy:      as.FaultDichotomy,
			},
		})
	}
	return out, nil
}

// WitnessSpec asks a scenario run to record a BoundWitness: the completed
// operation among Kinds whose latency realizes the declared theoretical
// lower bound.
type WitnessSpec struct {
	// Family groups this scenario with the other members of its adversary
	// run family for the family-level dichotomy verdict; empty means the
	// scenario stands alone.
	Family string
	// Kinds are the operation kinds the bound constrains; empty means every
	// kind in the history.
	Kinds []spec.OpKind
	// Pair sums the per-kind worst cases instead of taking their maximum
	// (for combined |OP| + |AOP| bounds).
	Pair bool
	// Bound is the theoretical lower bound being witnessed.
	Bound model.Time
	// RequireLinearizable marks a proven-correct tuning: violations and
	// divergence falsify the family instead of satisfying the dichotomy.
	RequireLinearizable bool
	// FaultDichotomy judges the family by the fault-verdict dichotomy
	// (see AdversarySpec.FaultDichotomy).
	FaultDichotomy bool
}

// TunableBackend is a backend whose wait durations can be overridden —
// the hook adversary specs use to build deliberately premature
// implementations. Algorithm1 implements it.
type TunableBackend interface {
	Backend
	// WithTuning returns a copy of the backend with the tuning applied.
	WithTuning(t core.Tuning) Backend
}
