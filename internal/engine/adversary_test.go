package engine

// Unit tests for the adversary-scenario machinery: spec expansion, witness
// recording (max and pair semantics), tunable backends, and trace capture.
// The bundled constructions themselves are tested in internal/adversary;
// here a synthetic spec keeps the engine layer self-contained.

import (
	"strings"
	"testing"

	"timebounds/internal/core"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// testAdversary is a minimal two-run family on a register: each run writes
// from two processes and reads the result, under a fixed delay matrix.
func testAdversary(bound model.Time) AdversarySpec {
	return AdversarySpec{
		Name:         "toy",
		DataType:     types.NewRegister(0),
		Bound:        func(model.Params) model.Time { return bound },
		WitnessKinds: []spec.OpKind{types.OpWrite},
		Runs: func(p model.Params) ([]AdversaryRun, error) {
			mk := func(name string, gap model.Time) AdversaryRun {
				return AdversaryRun{
					Name:         name,
					ClockOffsets: make([]model.Time, p.N),
					Delay: DelaySpec{Label: "toy", Policy: func(model.Params, int64) sim.DelayPolicy {
						return sim.NewMatrixDelay(p.N, p.D)
					}},
					Schedule: []workload.Invocation{
						{At: p.D, Proc: 0, Kind: types.OpWrite, Arg: 1},
						{At: p.D + gap, Proc: 1, Kind: types.OpWrite, Arg: 2},
						{At: 10 * p.D, Proc: 2, Kind: types.OpRead},
					},
				}
			}
			return []AdversaryRun{mk("R1", 0), mk("R2", p.U)}, nil
		},
	}
}

func TestAdversarySpecExpansion(t *testing.T) {
	p := engParams(3)
	scs, err := testAdversary(1).Scenarios(nil, p, 7)
	if err != nil {
		t.Fatalf("Scenarios: %v", err)
	}
	if len(scs) != 2 {
		t.Fatalf("want 2 scenarios, got %d", len(scs))
	}
	family := ""
	for i, sc := range scs {
		if !sc.Verify {
			t.Errorf("run %d: adversary scenarios must verify linearizability", i)
		}
		if sc.Witness == nil {
			t.Fatalf("run %d: no witness spec", i)
		}
		if sc.Witness.Bound != 1 {
			t.Errorf("run %d: bound %s, want 1ns", i, sc.Witness.Bound)
		}
		if i == 0 {
			family = sc.Witness.Family
		} else if sc.Witness.Family != family {
			t.Errorf("runs share a family: %q vs %q", sc.Witness.Family, family)
		}
		if !strings.Contains(sc.Name, "toy") || !strings.Contains(sc.Name, "algorithm1") {
			t.Errorf("run %d: name %q missing coordinates", i, sc.Name)
		}
	}
	if scs[0].Name == scs[1].Name {
		t.Errorf("family members share the scenario name %q", scs[0].Name)
	}
}

func TestAdversaryRunRecordsWitness(t *testing.T) {
	p := engParams(3)
	scs, err := testAdversary(1).Scenarios(nil, p, 1)
	if err != nil {
		t.Fatalf("Scenarios: %v", err)
	}
	rep := Run(scs)
	if err := rep.Err(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, res := range rep.Results {
		if res.Witness == nil {
			t.Fatalf("%s: no witness", res.Name)
		}
		w := res.Witness
		if w.Kind != types.OpWrite {
			t.Errorf("%s: witness kind %s, want write", res.Name, w.Kind)
		}
		if want := res.PerKind[types.OpWrite].Max; w.Latency != want {
			t.Errorf("%s: witness latency %s, want worst write %s", res.Name, w.Latency, want)
		}
		if w.Violated {
			t.Errorf("%s: correct run flagged as violated", res.Name)
		}
		if w.Margin() != w.Latency-w.Bound {
			t.Errorf("%s: margin arithmetic off", res.Name)
		}
	}
	fams := rep.WitnessFamilies()
	if len(fams) != 1 || fams[0].Runs != 2 {
		t.Fatalf("want one family of 2 runs, got %+v", fams)
	}
	if !fams[0].Holds() {
		t.Errorf("family should hold: latency %s ≥ bound %s", fams[0].MaxLatency, fams[0].Bound)
	}
	if out := rep.RenderWitnesses(); !strings.Contains(out, "HOLDS") {
		t.Errorf("witness table missing verdict:\n%s", out)
	}
}

func TestFamilyDichotomyFalsifiable(t *testing.T) {
	// A bound no implementation meets (and no violation): the family must
	// report FALSIFIED and Report.Err must surface it — this is the check
	// that would catch a broken lower-bound proof.
	p := engParams(3)
	scs, err := testAdversary(model.Infinity).Scenarios(nil, p, 1)
	if err != nil {
		t.Fatalf("Scenarios: %v", err)
	}
	rep := Run(scs)
	fams := rep.WitnessFamilies()
	if len(fams) != 1 || fams[0].Holds() {
		t.Fatalf("unreachable bound should falsify the family: %+v", fams)
	}
	if rep.Err() == nil {
		t.Error("Report.Err must surface a falsified family")
	}
	if rep.OK() {
		t.Error("Report.OK must agree with Err on a falsified family")
	}
	if out := rep.RenderWitnesses(); !strings.Contains(out, "FALSIFIED") {
		t.Errorf("witness table missing FALSIFIED verdict:\n%s", out)
	}
}

func TestPairWitnessSumsPerKindWorstCases(t *testing.T) {
	p := engParams(3)
	as := testAdversary(1)
	as.WitnessKinds = []spec.OpKind{types.OpWrite, types.OpRead}
	as.PairWitness = true
	scs, err := as.Scenarios(nil, p, 1)
	if err != nil {
		t.Fatalf("Scenarios: %v", err)
	}
	res := Run(scs[:1]).Results[0]
	if res.Err != "" {
		t.Fatalf("%s", res.Err)
	}
	want := res.PerKind[types.OpWrite].Max + res.PerKind[types.OpRead].Max
	if res.Witness.Latency != want {
		t.Errorf("pair witness %s, want write+read worst %s", res.Witness.Latency, want)
	}
}

func TestTunableBackendReceivesTuning(t *testing.T) {
	// A spec with a mutator override must reach the Algorithm1 backend:
	// the write latency drops to the override instead of ε+X.
	p := engParams(3)
	as := testAdversary(0)
	as.Tuning = func(model.Params) core.Tuning {
		return core.Tuning{MutatorResponse: core.OverrideTime{Override: true, Value: 1}}
	}
	scs, err := as.Scenarios(Algorithm1{}, p, 1)
	if err != nil {
		t.Fatalf("Scenarios: %v", err)
	}
	res := Run(scs[:1]).Results[0]
	if res.Err != "" {
		t.Fatalf("%s", res.Err)
	}
	if got := res.PerKind[types.OpWrite].Max; got != 1 {
		t.Errorf("tuned write latency %s, want 1ns override", got)
	}
	// A non-tunable backend runs the same family untuned.
	scs, err = as.Scenarios(AllOOP{}, p, 1)
	if err != nil {
		t.Fatalf("Scenarios: %v", err)
	}
	res = Run(scs[:1]).Results[0]
	if got := res.PerKind[types.OpWrite].Max; got != p.D+p.Epsilon {
		t.Errorf("all-oop write latency %s, want untuned d+ε %s", got, p.D+p.Epsilon)
	}
}

func TestScenarioTraceCapturesRun(t *testing.T) {
	p := engParams(3)
	res := Run([]Scenario{{
		DataType: types.NewRegister(0),
		Params:   p,
		Workload: workload.Spec{OpsPerProcess: 2},
		Trace:    true,
	}}).Results[0]
	if res.Err != "" {
		t.Fatalf("%s", res.Err)
	}
	if res.Run == nil || len(res.Run.Views) != p.N {
		t.Fatalf("trace not captured: %+v", res.Run)
	}
}
