package engine

import (
	"fmt"

	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/workload"
)

// Grid declares a cross product of scenario coordinates. Every axis left
// empty falls back to a single default, so a Grid with just Objects and
// Params expands to one Algorithm 1 scenario per object.
type Grid struct {
	// Backends to compare; empty means {Algorithm1}.
	Backends []Backend
	// Objects are the data types to exercise (required).
	Objects []spec.DataType
	// Params are the parameter sets to sweep (required). Epsilon 0 resolves
	// to the optimal skew per set.
	Params []model.Params
	// Xs are the tradeoff values; empty means {0}.
	Xs []model.Time
	// Seeds drive workloads and random delays; empty means {1}.
	Seeds []int64
	// Delays are the delay adversaries; empty means {random}.
	Delays []DelaySpec
	// Workloads are the op-stream specs; empty means one zero-value Spec
	// (small closed loop of each object's default mix).
	Workloads []workload.Spec
	// Adversaries are lower-bound adversary specs to expand alongside the
	// regular cross product: every adversary's run family is expanded per
	// backend × params, with the first seed (an adversary brings its own
	// object, delay matrices, clock shifts, explicit schedule, and
	// simulation horizon, so the Objects / Delays / Workloads / Xs /
	// Horizon axes do not apply, and its runs are seed-independent so the
	// Seeds axis would only duplicate them; a spec with its own Backend
	// override expands once, not per grid backend). An inadmissible family
	// surfaces as an error Result under the adversary's name.
	Adversaries []AdversarySpec
	// Faults are fault-plan axes crossed with the regular product (not with
	// the adversaries, which bring their own fault plans); empty means one
	// fault-free run per point. Include a zero FaultSpec member to keep the
	// fault-free point alongside the faulted ones.
	Faults []FaultSpec
	// Runtimes are execution runtimes crossed with the product; empty
	// means the simulator. Include the zero Runtime to keep simulated
	// points alongside live ones. Live runtimes reject fault axes — a
	// grid crossing both surfaces the rejection as error Results.
	Runtimes []Runtime
	// Verify runs the linearizability checker on every run.
	Verify bool
	// Horizon bounds each simulation; zero picks a generous default.
	Horizon model.Time
}

// Scenarios expands the grid into the full cross product, in a fixed
// deterministic order (backend-major, then object, params, X, delay,
// workload, fault plan, seed).
func (g Grid) Scenarios() []Scenario {
	backends := g.Backends
	if len(backends) == 0 {
		backends = []Backend{Algorithm1{}}
	}
	xs := g.Xs
	if len(xs) == 0 {
		xs = []model.Time{0}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	delays := g.Delays
	if len(delays) == 0 {
		delays = []DelaySpec{{Mode: DelayRandom}}
	}
	workloads := g.Workloads
	if len(workloads) == 0 {
		workloads = []workload.Spec{{}}
	}
	faults := g.Faults
	if len(faults) == 0 {
		faults = []FaultSpec{{}}
	}
	runtimes := g.Runtimes
	if len(runtimes) == 0 {
		runtimes = []Runtime{{}}
	}
	var out []Scenario
	for bi, b := range backends {
		for _, as := range g.Adversaries {
			if as.Backend != nil && bi > 0 {
				continue // the override would yield per-backend duplicates
			}
			// One expansion per parameter point: an adversary family is
			// fully determined by its construction (the bundled delay
			// matrices and schedules never consume the seed), so sweeping
			// the Seeds axis would only duplicate verified runs.
			seed := seeds[0]
			for _, p := range g.Params {
				scs, err := as.Scenarios(b, p, seed)
				if err != nil {
					out = append(out, Scenario{
						Name:      fmt.Sprintf("adversary/%s/%s/n=%d,d=%s,u=%s/seed=%d", as.Name, b.Name(), p.N, p.D, p.U, seed),
						expandErr: err,
					})
					continue
				}
				out = append(out, scs...)
			}
		}
		for _, dt := range g.Objects {
			for _, p := range g.Params {
				for _, x := range xs {
					for _, d := range delays {
						for _, wl := range workloads {
							for _, rt := range runtimes {
								for _, fs := range faults {
									for _, seed := range seeds {
										out = append(out, Scenario{
											Backend:  b,
											DataType: dt,
											Params:   p,
											X:        x,
											Seed:     seed,
											Delay:    d,
											Workload: wl,
											Runtime:  rt,
											Faults:   fs,
											Verify:   g.Verify,
											Horizon:  g.Horizon,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}
