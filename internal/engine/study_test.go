package engine

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// studyBase is a small template that saturates quickly: worst-case delays
// make OOP service ≈ d, so per-process service rate ≈ 1/d ≈ 100 ops/s at
// d = 10ms and the 3-process aggregate saturates near 300 ops/s.
func studyBase() Scenario {
	return Scenario{
		DataType: types.NewRMWRegister(0),
		Params:   engParams(3),
		Seed:     1,
		Delay:    DelaySpec{Mode: DelayWorst},
	}
}

func TestStudyFindsSaturationKnee(t *testing.T) {
	study := Study{
		Base:        studyBase(),
		Loads:       []float64{30, 100, 600, 2000},
		OpsPerPoint: 12,
	}
	rep, err := study.Run(context.Background(), New(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete {
		t.Fatal("uncancelled study reported incomplete")
	}
	if len(rep.Points) < len(study.Loads) {
		t.Fatalf("report has %d points, want ≥ %d (axis + probes)", len(rep.Points), len(study.Loads))
	}
	if rep.Knee == nil {
		t.Fatalf("no knee detected across %v:\n%s", study.Loads, rep)
	}
	if rep.Knee.Load < 100 || rep.Knee.Load > 2000 {
		t.Errorf("knee at %.1f ops/s, expected within the saturating bracket (100, 2000]", rep.Knee.Load)
	}
	if rep.Knee.P99 < rep.Knee.Bound*2 {
		t.Errorf("knee p99 %s below K×bound %s", rep.Knee.P99, 2*rep.Knee.Bound)
	}
	// The bisection narrowed the bracket to the default 10% tolerance.
	if rep.Knee.Load/rep.Knee.Low > 1.101 {
		t.Errorf("knee bracket %.1f–%.1f wider than 10%%", rep.Knee.Low, rep.Knee.Load)
	}
	// Low loads stay attached, and utilization grows monotonically-ish:
	// the first point must be far less utilized than the last.
	first, last := rep.Points[0], rep.Points[len(rep.Points)-1]
	if first.Saturated {
		t.Error("lowest load already saturated — axis start too high for the test")
	}
	if !last.Saturated {
		t.Error("highest load not saturated")
	}
	if first.Utilization >= last.Utilization {
		t.Errorf("utilization %v at %.0f ops/s not below %v at %.0f ops/s",
			first.Utilization, first.Load, last.Utilization, last.Load)
	}
	out := rep.String()
	if !strings.Contains(out, "knee") {
		t.Errorf("rendered study missing knee marker:\n%s", out)
	}
}

// TestStudyDeterministicAcrossWorkers: same study ⇒ identical report at
// any worker count (the streaming analogue of Run's bit-identical rule).
func TestStudyDeterministicAcrossWorkers(t *testing.T) {
	study := Study{
		Base:        studyBase(),
		Loads:       []float64{50, 400},
		OpsPerPoint: 8,
	}
	a, err := study.Run(context.Background(), New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := study.Run(context.Background(), New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		pa, pb := a.Points[i], b.Points[i]
		if pa.Load != pb.Load || pa.Spacing != pb.Spacing || pa.Saturated != pb.Saturated ||
			pa.Utilization != pb.Utilization || !reflect.DeepEqual(pa.PerClass, pb.PerClass) {
			t.Fatalf("point %d differs across worker counts:\n%+v\n%+v", i, pa, pb)
		}
	}
	if !reflect.DeepEqual(a.Knee, b.Knee) {
		t.Fatalf("knees differ: %+v vs %+v", a.Knee, b.Knee)
	}
}

func TestStudyCancellationPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	points := 0
	study := Study{
		Base:        studyBase(),
		Loads:       []float64{10, 20, 40, 80, 160, 320},
		OpsPerPoint: 8,
		OnPoint: func(StudyPoint) {
			points++
			if points == 2 {
				cancel()
			}
		},
	}
	rep, err := study.Run(ctx, New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Incomplete {
		t.Fatal("cancelled study not marked incomplete")
	}
	if len(rep.Points) >= len(study.Loads) {
		t.Fatalf("cancelled study still measured all %d axis points", len(rep.Points))
	}
}

// TestStudySurfacesScenarioFailures: a study whose scenarios fail must
// error out, never report a clean "no knee" answer.
func TestStudySurfacesScenarioFailures(t *testing.T) {
	study := Study{
		Base:        studyBase(),
		Loads:       []float64{50},
		OpsPerPoint: 4,
		// A zero-weight mix makes every point's schedule generation fail.
		Mix: workload.OpMix{{Kind: types.OpRMW, Weight: 0}},
	}
	_, err := study.Run(context.Background(), New(1))
	if err == nil {
		t.Fatal("study with failing scenarios returned a clean report")
	}
	if !strings.Contains(err.Error(), "scenarios failed") {
		t.Errorf("error %q does not name the scenario failure", err)
	}
}

func TestStudyValidation(t *testing.T) {
	base := studyBase()
	cases := []struct {
		name string
		s    Study
		want string
	}{
		{"no data type", Study{}, "data type"},
		{"ramp end precedes start", Study{Base: base, Ramp: LoadRamp{From: 100, To: 10, Points: 4}}, "precedes"},
		{"non-positive ramp start", Study{Base: base, Ramp: LoadRamp{From: 0, To: 10, Points: 4}}, "positive"},
		{"one-point ramp span", Study{Base: base, Ramp: LoadRamp{From: 10, To: 100, Points: 1}}, "points"},
		{"non-positive load", Study{Base: base, Loads: []float64{-5}}, "positive"},
		{"NaN load", Study{Base: base, Loads: []float64{math.NaN()}}, "positive finite"},
		{"infinite load", Study{Base: base, Loads: []float64{math.Inf(1)}}, "positive finite"},
		{"NaN breaks ascent", Study{Base: base, Loads: []float64{10, math.NaN()}}, ""},
		{"NaN ramp", Study{Base: base, Ramp: LoadRamp{From: math.NaN(), To: 10, Points: 3}}, "finite"},
		{"descending loads", Study{Base: base, Loads: []float64{100, 50}}, "ascend"},
		{"knee factor below 1", Study{Base: base, Loads: []float64{10}, KneeFactor: 0.5}, "knee factor"},
	}
	for _, tc := range cases {
		_, err := tc.s.Run(context.Background(), New(1))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestLoadRampGeometricAxis(t *testing.T) {
	axis, err := LoadRamp{From: 10, To: 1000, Points: 5}.Axis()
	if err != nil {
		t.Fatal(err)
	}
	if len(axis) != 5 || axis[0] != 10 || axis[4] != 1000 {
		t.Fatalf("axis %v", axis)
	}
	want := math.Pow(100, 1.0/4) // constant factor spanning 10 → 1000 in 4 steps
	for i := 1; i < len(axis); i++ {
		if ratio := axis[i] / axis[i-1]; math.Abs(ratio-want) > 0.01 {
			t.Fatalf("axis %v not geometric: step %d ratio %v, want %v", axis, i, ratio, want)
		}
	}
	flat, err := LoadRamp{From: 42, To: 42}.Axis()
	if err != nil || len(flat) != 1 || flat[0] != 42 {
		t.Fatalf("flat ramp: %v %v", flat, err)
	}
}
