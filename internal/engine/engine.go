// Package engine is the execution core of the timebounds library: it runs
// Scenarios — Backend × Workload × model parameters × delay policy × clock
// offsets — across a worker pool, each run on its own isolated simulator,
// and aggregates the outcomes into a structured Report (per-class latency
// statistics, measured-vs-theoretical bound margins, linearizability
// verdicts, replica convergence).
//
// Execution is streaming-first: Stream yields Results in completion order
// as an iterator (StreamChan is the channel form), honoring context
// cancellation without leaking workers; Run is a thin collect-over-Stream
// that reassembles input order. Constant-memory consumers fold the stream
// into an Aggregate (online statistics, no retained histories), and Study
// sweeps open-loop offered load over the stream to find saturation knees.
//
// The public facade (package timebounds), every cmd/ tool, and the
// experiment harnesses (internal/experiments, internal/explore) are built
// on this package. The lower-bound proof machinery (internal/adversary)
// runs through it too: an AdversarySpec expands a theorem's run family —
// delay matrices, clock shifts, premature tunings — into ordinary
// scenarios whose Results carry BoundWitnesses, so upper-bound workloads
// and lower-bound constructions share one execution path.
package engine

import (
	"context"
	"iter"
	"runtime"
	"sync"

	"timebounds/internal/check"
)

// Engine runs scenario grids in parallel. The zero value is ready to use.
type Engine struct {
	// Workers caps concurrent scenario runs; ≤0 means GOMAXPROCS.
	Workers int
}

// New returns an engine with the given worker cap (≤0 means GOMAXPROCS).
func New(workers int) *Engine { return &Engine{Workers: workers} }

// disableSharedChecker turns off cross-run checker-state sharing; the
// equivalence tests flip it to prove sharing is unobservable in Reports.
var disableSharedChecker = false

// disableIslandCheck turns off within-history island decomposition in the
// verifier; the equivalence tests flip it to prove island-parallel
// checking is unobservable in Reports.
var disableIslandCheck = false

// IndexedResult pairs a streamed Result with the input index of its
// scenario, so completion-order consumers can reassemble input order.
type IndexedResult struct {
	// Index is the scenario's position in the Stream/StreamChan input.
	Index int
	// Result is the scenario's structured outcome.
	Result Result
}

// Stream executes the scenarios across the worker pool and returns an
// iterator yielding (input index, Result) pairs in completion order. Each
// scenario still gets a fresh simulator, delay policy, and workload drawn
// from its own seed, so every yielded Result is bit-identical to what Run
// would report at that index — only the yield order depends on scheduling.
//
// Cancelling ctx stops the stream promptly: no new scenarios start,
// in-flight runs finish but may be dropped, and the iterator ends after
// the pool drains — consumers get a partial result set, never a leaked
// worker. Breaking out of the loop early cancels the same way.
//
// Verified runs share memoized checker state for the lifetime of the
// stream: one transition cache per data type (check.CacheSet), safe across
// the worker pool because object states are immutable and the cache is
// internally locked. Sharing only reuses deterministic
// (state, operation) → (state, return) computations, so it cannot change
// any verdict — only make it cheaper.
func (e *Engine) Stream(ctx context.Context, scenarios []Scenario) iter.Seq2[int, Result] {
	return func(yield func(int, Result) bool) {
		ctx, cancel := context.WithCancel(ctx)
		ch := e.StreamChan(ctx, scenarios)
		defer func() {
			cancel()
			for range ch { // unblock and drain the pool so workers exit
			}
		}()
		for ir := range ch {
			if !yield(ir.Index, ir.Result) {
				return
			}
		}
	}
}

// StreamChan is the channel form of Stream, for consumers that select
// across sources (cmd/ progress loops). The channel closes once every
// worker has exited — after all scenarios completed, or promptly after
// ctx is cancelled. The caller must either drain the channel or cancel
// ctx; otherwise workers block forever on the send.
func (e *Engine) StreamChan(ctx context.Context, scenarios []Scenario) <-chan IndexedResult {
	var caches *check.CacheSet
	if !disableSharedChecker {
		caches = check.NewCacheSet()
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers < 1 {
		workers = 1
	}
	out := make(chan IndexedResult)
	next := make(chan int)
	done := ctx.Done()
	go func() {
		defer close(next)
		for i := range scenarios {
			select {
			case next <- i:
			case <-done:
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns one checker arena for the stream's lifetime,
			// so steady-state verified runs reuse search scratch instead of
			// allocating it per history. Verified histories may additionally
			// fan their concurrency islands out across the pool's worker
			// budget (see internal/check); like the shared caches, neither
			// reuse nor fan-out can change a verdict — only its cost.
			arena := check.NewArena()
			for i := range next {
				res := scenarios[i].run(runConfig{
					caches: caches,
					check: check.Options{
						Arena:     arena,
						Workers:   workers,
						NoIslands: disableIslandCheck,
					},
				})
				select {
				case out <- IndexedResult{Index: i, Result: res}:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Run executes every scenario and returns their results in input order.
// It is a thin collect over Stream: each scenario gets a fresh simulator,
// delay policy, and workload drawn from its own seed, so the Report is a
// pure function of the scenario list — same scenarios ⇒ identical Report,
// regardless of worker count or completion order.
func (e *Engine) Run(scenarios []Scenario) Report {
	return e.RunContext(context.Background(), scenarios)
}

// RunContext is Run with cancellation: it collects the Stream into a
// Report until ctx is cancelled, then returns promptly with a partial
// Report — the Results completed so far, still in input order, with
// Report.Incomplete counting the scenarios that never reported.
func (e *Engine) RunContext(ctx context.Context, scenarios []Scenario) Report {
	results := make([]Result, len(scenarios))
	got := make([]bool, len(scenarios))
	n := 0
	for i, res := range e.Stream(ctx, scenarios) {
		results[i] = res
		got[i] = true
		n++
	}
	if n == len(scenarios) {
		return Report{Results: results}
	}
	partial := make([]Result, 0, n)
	for i, ok := range got {
		if ok {
			partial = append(partial, results[i])
		}
	}
	return Report{Results: partial, Incomplete: len(scenarios) - n}
}

// RunOne executes a single scenario synchronously.
func (e *Engine) RunOne(sc Scenario) (Result, error) {
	rep := e.Run([]Scenario{sc})
	return rep.Results[0], rep.Err()
}

// Run executes scenarios on a default engine; shorthand for New(0).Run.
func Run(scenarios []Scenario) Report { return New(0).Run(scenarios) }
