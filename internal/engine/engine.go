// Package engine is the execution core of the timebounds library: it runs
// Scenarios — Backend × Workload × model parameters × delay policy × clock
// offsets — across a worker pool, each run on its own isolated simulator,
// and aggregates the outcomes into a structured Report (per-class latency
// statistics, measured-vs-theoretical bound margins, linearizability
// verdicts, replica convergence).
//
// The public facade (package timebounds), every cmd/ tool, and the
// experiment harnesses (internal/experiments, internal/explore) are built
// on this package. The lower-bound proof machinery (internal/adversary)
// runs through it too: an AdversarySpec expands a theorem's run family —
// delay matrices, clock shifts, premature tunings — into ordinary
// scenarios whose Results carry BoundWitnesses, so upper-bound workloads
// and lower-bound constructions share one execution path.
package engine

import (
	"runtime"
	"sync"

	"timebounds/internal/check"
)

// Engine runs scenario grids in parallel. The zero value is ready to use.
type Engine struct {
	// Workers caps concurrent scenario runs; ≤0 means GOMAXPROCS.
	Workers int
}

// New returns an engine with the given worker cap (≤0 means GOMAXPROCS).
func New(workers int) *Engine { return &Engine{Workers: workers} }

// disableSharedChecker turns off cross-run checker-state sharing; the
// equivalence tests flip it to prove sharing is unobservable in Reports.
var disableSharedChecker = false

// Run executes every scenario and returns their results in input order.
// Each scenario gets a fresh simulator, delay policy, and workload drawn
// from its own seed, so the Report is a pure function of the scenario list:
// same scenarios ⇒ identical Report, regardless of worker count.
//
// Verified runs share memoized checker state: one transition cache per
// data type (check.CacheSet), safe across the worker pool because object
// states are immutable and the cache is internally locked. Sharing only
// reuses deterministic (state, operation) → (state, return) computations,
// so it cannot change any verdict — only make it cheaper.
func (e *Engine) Run(scenarios []Scenario) Report {
	results := make([]Result, len(scenarios))
	var caches *check.CacheSet
	if !disableSharedChecker {
		caches = check.NewCacheSet()
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers <= 1 {
		for i, sc := range scenarios {
			results[i] = sc.run(caches)
		}
		return Report{Results: results}
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = scenarios[i].run(caches)
			}
		}()
	}
	for i := range scenarios {
		next <- i
	}
	close(next)
	wg.Wait()
	return Report{Results: results}
}

// RunOne executes a single scenario synchronously.
func (e *Engine) RunOne(sc Scenario) (Result, error) {
	rep := e.Run([]Scenario{sc})
	return rep.Results[0], rep.Err()
}

// Run executes scenarios on a default engine; shorthand for New(0).Run.
func Run(scenarios []Scenario) Report { return New(0).Run(scenarios) }
