package engine

import (
	"reflect"
	"strings"
	"testing"

	"timebounds/internal/fault"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

func TestFaultSpecRegistry(t *testing.T) {
	names := FaultSpecNames()
	if len(names) != len(FaultSpecs()) {
		t.Fatalf("names %d != specs %d", len(names), len(FaultSpecs()))
	}
	for _, name := range names {
		fs, err := FaultSpecByName(name)
		if err != nil {
			t.Fatalf("FaultSpecByName(%q): %v", name, err)
		}
		if fs.Name != name || !fs.enabled() {
			t.Fatalf("FaultSpecByName(%q) = %+v", name, fs)
		}
	}
	if _, err := FaultSpecByName("meteor"); err == nil {
		t.Fatal("unknown family should error")
	}
}

// TestEveryFaultFamilyYieldsDichotomyVerdict is the engine-level core of
// the PR: every bundled fault family, run against Algorithm 1 with the
// checker on, produces exactly one of the two dichotomy verdicts — and a
// broken verdict always names at least one breached assumption.
func TestEveryFaultFamilyYieldsDichotomyVerdict(t *testing.T) {
	p := engParams(3)
	for _, fs := range FaultSpecs() {
		res := Run([]Scenario{{
			DataType: types.NewRMWRegister(0),
			Params:   p,
			Seed:     1,
			Faults:   fs,
			Verify:   true,
			Workload: workload.Spec{OpsPerProcess: 3},
		}}).Results[0]
		if res.Err != "" {
			t.Errorf("%s: run error: %s", fs.Name, res.Err)
			continue
		}
		if res.Fault == nil {
			t.Errorf("%s: no fault report", fs.Name)
			continue
		}
		switch res.Fault.Verdict {
		case VerdictWithinBound:
			if len(res.Fault.Breaches) != 0 {
				t.Errorf("%s: within-bound verdict carries breaches: %v", fs.Name, res.Fault.Breaches)
			}
		case VerdictAssumptionBroken:
			if len(res.Fault.Breaches) == 0 {
				t.Errorf("%s: broken verdict names no breached assumption", fs.Name)
			}
		default:
			t.Errorf("%s: verdict %q is neither horn", fs.Name, res.Fault.Verdict)
		}
		if !res.OK() {
			t.Errorf("%s: faulted result with a verdict must be OK", fs.Name)
		}
		if !strings.Contains(res.Name, "faults="+fs.Name) {
			t.Errorf("%s: derived name %q missing fault label", fs.Name, res.Name)
		}
	}
}

// TestZeroFaultScenarioUnchanged pins pay-for-what-you-use: a scenario with
// the zero FaultSpec takes the fault-free path — no fault report, no
// pending ops, no fault label in the name.
func TestZeroFaultScenarioUnchanged(t *testing.T) {
	res := Run([]Scenario{{
		DataType: types.NewCounter(),
		Params:   engParams(3),
		Seed:     4,
		Verify:   true,
		Workload: workload.Spec{OpsPerProcess: 2},
	}}).Results[0]
	if res.Err != "" {
		t.Fatalf("run error: %s", res.Err)
	}
	if res.Fault != nil {
		t.Fatalf("fault-free run recorded a fault report: %+v", res.Fault)
	}
	if res.Pending != 0 {
		t.Fatalf("fault-free run pending = %d", res.Pending)
	}
	if strings.Contains(res.Name, "faults=") {
		t.Fatalf("fault-free name %q carries a fault label", res.Name)
	}
}

// TestFaultedRunsBitIdenticalAcrossWorkers pins determinism: the same
// faulted grid produces reflect.DeepEqual reports at 1 and 8 workers.
func TestFaultedRunsBitIdenticalAcrossWorkers(t *testing.T) {
	var scs []Scenario
	for _, fs := range FaultSpecs() {
		scs = append(scs, Scenario{
			DataType: types.NewRMWRegister(0),
			Params:   engParams(3),
			Seed:     2,
			Faults:   fs,
			Verify:   true,
			Workload: workload.Spec{OpsPerProcess: 3},
		})
	}
	seq := New(1).Run(scs)
	par := New(8).Run(scs)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("faulted reports differ between 1 and 8 workers")
	}
}

func TestGridFaultAxisExpansion(t *testing.T) {
	crash, err := FaultSpecByName("crash")
	if err != nil {
		t.Fatal(err)
	}
	g := Grid{
		Objects: []spec.DataType{types.NewQueue()},
		Params:  []model.Params{engParams(3)},
		Faults:  []FaultSpec{{}, crash},
	}
	scs := g.Scenarios()
	if len(scs) != 2 {
		t.Fatalf("grid expanded to %d scenarios, want 2", len(scs))
	}
	if scs[0].Faults.enabled() {
		t.Error("first point should be fault-free")
	}
	if !scs[1].Faults.enabled() || scs[1].Faults.Name != "crash" {
		t.Errorf("second point faults = %+v, want crash", scs[1].Faults)
	}
}

// TestFamilyWitnessFaultDichotomy exercises the family verdict arithmetic:
// a fault family holds iff every member landed on one of the two horns.
func TestFamilyWitnessFaultDichotomy(t *testing.T) {
	f := FamilyWitness{FaultDichotomy: true, Runs: 3, WithinBound: 1, Broken: 2}
	if !f.Holds() {
		t.Error("complete dichotomy should hold")
	}
	f.Broken = 1 // one member produced no verdict
	if f.Holds() {
		t.Error("a verdict-less member must falsify the family")
	}
	if (FamilyWitness{FaultDichotomy: true}).Holds() {
		t.Error("an empty fault family holds vacuously? it must not")
	}
}

// TestFaultReportSummaryAndRender smoke-tests the human-facing surfaces.
func TestFaultReportSummaryAndRender(t *testing.T) {
	rep := Run([]Scenario{{
		DataType: types.NewRMWRegister(0),
		Params:   engParams(3),
		Seed:     3,
		Faults:   FaultSpec{Name: "crash", Build: func(p model.Params, _ int64) *fault.Plan { return fault.CrashForever(p) }},
		Verify:   true,
		Workload: workload.Spec{OpsPerProcess: 3},
	}})
	frs := rep.FaultReports()
	if len(frs) != 1 {
		t.Fatalf("FaultReports len = %d, want 1", len(frs))
	}
	if sum := frs[0].Fault.Summary(); sum == "" {
		t.Error("empty summary")
	}
	table := rep.RenderFaults()
	for _, part := range []string{"scenario", "verdict", frs[0].Fault.Verdict} {
		if !strings.Contains(table, part) {
			t.Errorf("RenderFaults missing %q:\n%s", part, table)
		}
	}
	if err := rep.Err(); err != nil {
		t.Errorf("faulted grid with verdicts should pass Report.Err: %v", err)
	}
}
