package types

import (
	"strconv"

	"timebounds/internal/spec"
)

// Operation kinds on bank accounts.
const (
	// OpDeposit adds the (int) amount and returns nil. Pure mutator,
	// eventually self-commuting, non-overwriter (like increment).
	OpDeposit spec.OpKind = "deposit"
	// OpWithdraw deducts the (int) amount if the balance covers it and
	// returns whether it succeeded. Both mutator and accessor → OOP, and
	// strongly immediately non-self-commuting: two withdrawals of the full
	// balance cannot both succeed.
	OpWithdraw spec.OpKind = "withdraw"
	// OpBalance returns the balance. Pure accessor.
	OpBalance spec.OpKind = "balance"
)

// Account is a bank account — the applied shared object the paper's
// introduction motivates (electronic commerce). deposit rides the ε+X fast
// path, withdraw needs the totally ordered d+ε path (it is strongly
// immediately non-self-commuting, so by Theorem C.1 no implementation can
// answer it in less than d+min{ε,u,d/3}), and balance takes d+ε-X.
type Account struct{}

var _ spec.DataType = Account{}

// NewAccount returns an account with balance zero.
func NewAccount() Account { return Account{} }

// Name implements spec.DataType.
func (Account) Name() string { return "account" }

// InitialState implements spec.DataType.
func (Account) InitialState() spec.State { return int(0) }

// Apply implements spec.DataType.
func (Account) Apply(s spec.State, kind spec.OpKind, arg spec.Value) (spec.State, spec.Value) {
	bal, _ := s.(int)
	switch kind {
	case OpDeposit:
		amt, _ := arg.(int)
		if amt < 0 {
			return spec.BoxInt(bal), nil
		}
		// BoxInt keeps the running balance out of the allocator on the
		// replica re-apply hot path (see types.Counter.Apply).
		return spec.BoxInt(bal + amt), nil
	case OpWithdraw:
		amt, _ := arg.(int)
		if amt < 0 || amt > bal {
			return spec.BoxInt(bal), false
		}
		return spec.BoxInt(bal - amt), true
	case OpBalance:
		v := spec.BoxInt(bal)
		return v, v
	default:
		return spec.BoxInt(bal), nil
	}
}

// Kinds implements spec.DataType.
func (Account) Kinds() []spec.OpKind { return []spec.OpKind{OpDeposit, OpWithdraw, OpBalance} }

// Class implements spec.DataType.
func (Account) Class(kind spec.OpKind) spec.OpClass {
	switch kind {
	case OpDeposit:
		return spec.ClassPureMutator
	case OpBalance:
		return spec.ClassPureAccessor
	default:
		return spec.ClassOther
	}
}

// EncodeState implements spec.DataType.
func (Account) EncodeState(s spec.State) string {
	bal, _ := s.(int)
	return "acct:" + strconv.Itoa(bal)
}
