package types

import (
	"fmt"
	"sort"
	"strings"

	"timebounds/internal/spec"
)

// Operation kinds on dictionaries.
const (
	// OpPut maps a key to a value (argument is a KV) and returns nil.
	// Pure mutator; overwrites only its own key, so it is a non-overwriter
	// of the whole dictionary state.
	OpPut spec.OpKind = "put"
	// OpDelete removes a key and returns nil. Pure mutator.
	OpDelete spec.OpKind = "delete"
	// OpDictGet returns the value mapped to a key, or nil. Pure accessor.
	OpDictGet spec.OpKind = "dict-get"
	// OpSize returns the number of keys. Pure accessor.
	OpSize spec.OpKind = "size"
)

// KV is the argument of OpPut.
type KV struct {
	Key   string
	Value spec.Value
}

// dictState is an immutable key → value snapshot.
type dictState map[string]spec.Value

// Dict is a map/dictionary shared object. It is not one of the paper's
// Table objects but exercises the same algebra: put is an eventually
// non-self-commuting (per key) pure mutator, get/size are pure accessors,
// and the (put, get) pair falls under Theorem E.1's non-overwriting case
// because a put does not erase other keys.
type Dict struct{}

var _ spec.DataType = Dict{}

// NewDict returns an initially empty dictionary.
func NewDict() Dict { return Dict{} }

// Name implements spec.DataType.
func (Dict) Name() string { return "dict" }

// InitialState implements spec.DataType.
func (Dict) InitialState() spec.State { return dictState(nil) }

func (d dictState) clone() dictState {
	next := make(dictState, len(d)+1)
	for k, v := range d {
		next[k] = v
	}
	return next
}

// Apply implements spec.DataType.
func (Dict) Apply(s spec.State, kind spec.OpKind, arg spec.Value) (spec.State, spec.Value) {
	d, _ := s.(dictState)
	switch kind {
	case OpPut:
		kv, ok := arg.(KV)
		if !ok {
			return d, nil
		}
		next := d.clone()
		next[kv.Key] = kv.Value
		return next, nil
	case OpDelete:
		key, ok := arg.(string)
		if !ok {
			return d, nil
		}
		if _, exists := d[key]; !exists {
			return d, nil
		}
		next := d.clone()
		delete(next, key)
		return next, nil
	case OpDictGet:
		key, _ := arg.(string)
		v, exists := d[key]
		if !exists {
			return d, nil
		}
		return d, v
	case OpSize:
		return d, len(d)
	default:
		return d, nil
	}
}

// Kinds implements spec.DataType.
func (Dict) Kinds() []spec.OpKind { return []spec.OpKind{OpPut, OpDelete, OpDictGet, OpSize} }

// Class implements spec.DataType.
func (Dict) Class(kind spec.OpKind) spec.OpClass {
	switch kind {
	case OpPut, OpDelete:
		return spec.ClassPureMutator
	case OpDictGet, OpSize:
		return spec.ClassPureAccessor
	default:
		return spec.ClassOther
	}
}

// EncodeState implements spec.DataType.
func (Dict) EncodeState(s spec.State) string {
	d, _ := s.(dictState)
	parts := make([]string, 0, len(d))
	for k, v := range d {
		// Canonical rendering on both sides: keys are quoted/escaped so a
		// key containing '=' or ',' cannot forge another state's encoding,
		// and int 1 / string "1" values do not collide — checker memo and
		// the shared transition caches treat encodings as injective.
		parts = append(parts, fmt.Sprintf("%s=%s", spec.CanonicalValue(k), spec.CanonicalValue(v)))
	}
	sort.Strings(parts)
	return "dict:{" + strings.Join(parts, ",") + "}"
}
