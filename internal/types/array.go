package types

import (
	"fmt"

	"timebounds/internal/spec"
)

// OpUpdateNext is the UpdateNext(i, a, b) operation of Chapter II.B on an
// integer array of size 2: it returns the i-th element (1-based) and
// updates the (i+1)-th element with b; if i indexes the last element it
// modifies nothing. It is the paper's example of an operation that is
// immediately non-self-commuting but *not* strongly so.
const OpUpdateNext spec.OpKind = "update-next"

// UpdateNextArg is the argument (i, b) of OpUpdateNext; the return value a
// is derived by the specification.
type UpdateNextArg struct {
	// I is the 1-based index to read.
	I int
	// B is the value written to element I+1 (ignored when I == 2).
	B int
}

// pairState is the immutable [2]int array state.
type pairState [2]int

// PairArray is the two-element integer array of Chapter II.B equipped with
// UpdateNext, plus read/write on the whole pair for test convenience.
type PairArray struct {
	initial pairState
}

var _ spec.DataType = (*PairArray)(nil)

// NewPairArray returns an array initialized with [x, y].
func NewPairArray(x, y int) *PairArray {
	return &PairArray{initial: pairState{x, y}}
}

// Name implements spec.DataType.
func (*PairArray) Name() string { return "pair-array" }

// InitialState implements spec.DataType.
func (p *PairArray) InitialState() spec.State { return p.initial }

// Apply implements spec.DataType.
func (*PairArray) Apply(s spec.State, kind spec.OpKind, arg spec.Value) (spec.State, spec.Value) {
	st, _ := s.(pairState)
	switch kind {
	case OpUpdateNext:
		a, ok := arg.(UpdateNextArg)
		if !ok || a.I < 1 || a.I > 2 {
			return st, nil
		}
		ret := st[a.I-1]
		if a.I == 2 {
			return st, ret
		}
		next := st
		next[a.I] = a.B
		return next, ret
	default:
		return st, nil
	}
}

// Kinds implements spec.DataType.
func (*PairArray) Kinds() []spec.OpKind { return []spec.OpKind{OpUpdateNext} }

// Class implements spec.DataType: UpdateNext both observes and mutates, so
// it runs on the OOP path.
func (*PairArray) Class(spec.OpKind) spec.OpClass { return spec.ClassOther }

// EncodeState implements spec.DataType.
func (*PairArray) EncodeState(s spec.State) string {
	st, _ := s.(pairState)
	return fmt.Sprintf("arr:[%d %d]", st[0], st[1])
}
