package types_test

import (
	"testing"

	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func TestAccountSemantics(t *testing.T) {
	a := types.NewAccount()
	s := a.InitialState()
	s, _ = apply(t, a, s, types.OpDeposit, 100)
	_, bal := apply(t, a, s, types.OpBalance, nil)
	if !spec.ValueEqual(bal, 100) {
		t.Errorf("balance = %v, want 100", bal)
	}
	s, ok := apply(t, a, s, types.OpWithdraw, 70)
	if !spec.ValueEqual(ok, true) {
		t.Errorf("withdraw(70) = %v, want true", ok)
	}
	s2, ok := apply(t, a, s, types.OpWithdraw, 70)
	if !spec.ValueEqual(ok, false) {
		t.Errorf("overdraft withdraw = %v, want false", ok)
	}
	if a.EncodeState(s2) != a.EncodeState(s) {
		t.Error("failed withdrawal changed the balance")
	}
	// Negative amounts are rejected as no-ops.
	s3, _ := apply(t, a, s, types.OpDeposit, -5)
	if a.EncodeState(s3) != a.EncodeState(s) {
		t.Error("negative deposit changed the balance")
	}
	if _, ok := apply(t, a, s, types.OpWithdraw, -5); !spec.ValueEqual(ok, false) {
		t.Error("negative withdrawal should fail")
	}
}

func TestWithdrawStronglyINSC(t *testing.T) {
	// Two withdrawals of the full balance: each alone succeeds, but no
	// order allows both — the Theorem C.1 shape on an applied object.
	a := types.NewAccount()
	dom := types.DefaultDomain(a)
	w, ok := spec.FindStronglyImmediatelyNonSelfCommuting(a, types.OpWithdraw, dom)
	if !ok {
		t.Fatal("withdraw should be strongly immediately non-self-commuting")
	}
	if err := spec.VerifyImmediatelyNonCommuting(a, w); err != nil {
		t.Fatalf("witness fails: %v", err)
	}
}

func TestDepositEventuallySelfCommutes(t *testing.T) {
	a := types.NewAccount()
	dom := types.DefaultDomain(a)
	if !spec.EventuallySelfCommuting(a, types.OpDeposit, dom) {
		t.Error("deposits should eventually self-commute")
	}
	if !spec.IsNonOverwriter(a, types.OpDeposit, dom) {
		t.Error("deposit should be a non-overwriter")
	}
	if !spec.IsPureMutator(a, types.OpDeposit, dom) {
		t.Error("deposit should be a pure mutator")
	}
	if !spec.IsPureAccessor(a, types.OpBalance, dom) {
		t.Error("balance should be a pure accessor")
	}
}

func TestAccountMoneyConservation(t *testing.T) {
	// Property: balance equals deposits minus successful withdrawals and
	// never goes negative, over random scripts.
	a := types.NewAccount()
	s := a.InitialState()
	deposited, withdrawn := 0, 0
	amounts := []int{10, 25, 40, 100}
	for i := 0; i < 200; i++ {
		amt := amounts[i%len(amounts)]
		if i%3 == 0 {
			s, _ = a.Apply(s, types.OpDeposit, amt)
			deposited += amt
		} else {
			var ok spec.Value
			s, ok = a.Apply(s, types.OpWithdraw, amt)
			if b, _ := ok.(bool); b {
				withdrawn += amt
			}
		}
		_, bal := a.Apply(s, types.OpBalance, nil)
		b, _ := bal.(int)
		if b != deposited-withdrawn {
			t.Fatalf("step %d: balance %d != %d-%d", i, b, deposited, withdrawn)
		}
		if b < 0 {
			t.Fatalf("step %d: negative balance %d", i, b)
		}
	}
}
