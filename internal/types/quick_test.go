package types_test

// Property-based tests (testing/quick) on the sequential data types: purity
// of Apply, determinism, canonical encodings, and structural invariants
// under random operation sequences.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"timebounds/internal/spec"
	"timebounds/internal/types"
)

// opScript is a compact random program over a data type: each byte selects
// an operation kind and a small argument.
type opScript []byte

// Generate implements quick.Generator.
func (opScript) Generate(r *rand.Rand, size int) []byte {
	n := r.Intn(size + 1)
	b := make([]byte, n)
	r.Read(b)
	return b
}

// decode maps a script byte onto one of the type's kinds plus an argument.
func decode(dt spec.DataType, b byte) (spec.OpKind, spec.Value) {
	kinds := dt.Kinds()
	kind := kinds[int(b)%len(kinds)]
	arg := int(b >> 4)
	switch kind {
	case types.OpTreeInsert:
		nodes := []string{"a", "b", "c", "d"}
		return kind, types.Edge{Node: nodes[arg%4], Parent: nodes[(arg+1)%4]}
	case types.OpTreeDelete, types.OpTreeSearch:
		nodes := []string{"a", "b", "c", types.TreeRoot}
		return kind, nodes[arg%4]
	case types.OpUpdateNext:
		return kind, types.UpdateNextArg{I: 1 + arg%2, B: arg}
	case types.OpPut:
		keys := []string{"a", "b", "c"}
		return kind, types.KV{Key: keys[arg%3], Value: arg}
	case types.OpDelete, types.OpDictGet:
		keys := []string{"a", "b", "c"}
		return kind, keys[arg%3]
	case types.OpRead, types.OpPeek, types.OpTop, types.OpPop,
		types.OpDequeue, types.OpGet, types.OpTreeDepth,
		types.OpSize, types.OpPQDeleteMin, types.OpPQMin:
		return kind, nil
	default:
		return kind, arg
	}
}

func run(dt spec.DataType, script []byte) (spec.State, []spec.Value) {
	s := dt.InitialState()
	rets := make([]spec.Value, 0, len(script))
	for _, b := range script {
		kind, arg := decode(dt, b)
		var ret spec.Value
		s, ret = dt.Apply(s, kind, arg)
		rets = append(rets, ret)
	}
	return s, rets
}

func allTypes() []spec.DataType {
	return []spec.DataType{
		types.NewRMWRegister(0),
		types.NewCounter(),
		types.NewQueue(),
		types.NewStack(),
		types.NewSet(),
		types.NewTree(),
		types.NewPairArray(1, 2),
		types.NewDict(),
		types.NewPQueue(),
	}
}

// TestQuickDeterminism: replaying the same script twice yields identical
// final encodings and identical return values (Definition A.1).
func TestQuickDeterminism(t *testing.T) {
	for _, dt := range allTypes() {
		dt := dt
		f := func(script opScript) bool {
			s1, r1 := run(dt, script)
			s2, r2 := run(dt, script)
			if dt.EncodeState(s1) != dt.EncodeState(s2) {
				return false
			}
			for i := range r1 {
				if !spec.ValueEqual(r1[i], r2[i]) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", dt.Name(), err)
		}
	}
}

// TestQuickPurity: applying an extra operation never disturbs the
// pre-application state's encoding (states are immutable values).
func TestQuickPurity(t *testing.T) {
	for _, dt := range allTypes() {
		dt := dt
		f := func(script opScript, extra byte) bool {
			s, _ := run(dt, script)
			before := dt.EncodeState(s)
			kind, arg := decode(dt, extra)
			dt.Apply(s, kind, arg)
			return dt.EncodeState(s) == before
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", dt.Name(), err)
		}
	}
}

// TestQuickBuiltSequencesLegal: sequences built by deriving returns from
// the specification are always legal.
func TestQuickBuiltSequencesLegal(t *testing.T) {
	for _, dt := range allTypes() {
		dt := dt
		f := func(script opScript) bool {
			invs := make([]spec.Invocation, len(script))
			for i, b := range script {
				kind, arg := decode(dt, b)
				invs[i] = spec.Invocation{Kind: kind, Arg: arg}
			}
			seq, _ := spec.Build(dt, invs...)
			return spec.Legal(dt, seq)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", dt.Name(), err)
		}
	}
}

// TestQuickQueueStackSizeInvariant: the number of elements equals
// successful inserts minus successful removals, and never goes negative.
func TestQuickQueueStackSizeInvariant(t *testing.T) {
	q := types.NewQueue()
	f := func(script opScript) bool {
		s := q.InitialState()
		size := 0
		for _, b := range script {
			kind, arg := decode(q, b)
			var ret spec.Value
			s, ret = q.Apply(s, kind, arg)
			switch kind {
			case types.OpEnqueue:
				size++
			case types.OpDequeue:
				if ret != nil {
					size--
				}
			}
			if size < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickTreeParentsExist: every non-root node's parent is in the tree
// (no dangling edges survive any operation sequence).
func TestQuickTreeParentsExist(t *testing.T) {
	tr := types.NewTree()
	f := func(script opScript) bool {
		s := tr.InitialState()
		for _, b := range script {
			kind, arg := decode(tr, b)
			s, _ = tr.Apply(s, kind, arg)
			// Depth must never report a malformed (cyclic/dangling) tree.
			if _, d := tr.Apply(s, types.OpTreeDepth, nil); d == -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSetIdempotent: inserting an element twice equals inserting once.
func TestQuickSetIdempotent(t *testing.T) {
	set := types.NewSet()
	f := func(script opScript, v uint8) bool {
		s, _ := run(set, script)
		s1, _ := set.Apply(s, types.OpInsert, int(v))
		s2, _ := set.Apply(s1, types.OpInsert, int(v))
		return set.EncodeState(s1) == set.EncodeState(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
