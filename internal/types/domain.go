package types

import (
	"sync"

	"timebounds/internal/spec"
)

// domainCache memoizes DomainFor per data-type name: grids and tools used
// to re-derive the same domain for every scenario; now there is one
// cached entry point.
var domainCache sync.Map // data-type name -> spec.Domain

// DomainFor is the cached entry point for classifier search domains: the
// brute-force classifiers (internal/spec) and bound derivation
// (internal/bounds) re-consult the same domain for every operation kind,
// and grid tooling does so for every scenario, so the construction is
// memoized per data-type name. The returned Domain is shared — callers
// must treat it as read-only. Use DefaultDomain for a fresh private copy.
func DomainFor(dt spec.DataType) spec.Domain {
	name := dt.Name()
	if v, ok := domainCache.Load(name); ok {
		return v.(spec.Domain)
	}
	dom := DefaultDomain(dt)
	domainCache.Store(name, dom)
	return dom
}

// DefaultDomain returns a small, representative search domain for the given
// data type, sufficient for the brute-force classifiers in internal/spec to
// rediscover every property the paper claims for its operations. The
// domains are deliberately tiny — the classifiers enumerate prefixes ×
// arguments × permutations — but each contains the witnesses used in
// Chapters I–II.
func DefaultDomain(dt spec.DataType) spec.Domain {
	switch dt.Name() {
	case "register", "rmw-register":
		return registerDomain()
	case "counter":
		return counterDomain()
	case "queue":
		return queueDomain()
	case "stack":
		return stackDomain()
	case "set":
		return setDomain()
	case "tree":
		return treeDomain()
	case "pair-array":
		return pairArrayDomain()
	case "dict":
		return dictDomain()
	case "pqueue":
		return pqueueDomain()
	case "account":
		return accountDomain()
	default:
		return spec.Domain{Prefixes: [][]spec.Invocation{nil}}
	}
}

func registerDomain() spec.Domain {
	return spec.Domain{
		Prefixes: [][]spec.Invocation{
			nil,
			{{Kind: OpWrite, Arg: 0}},
			{{Kind: OpWrite, Arg: 1}},
			{{Kind: OpWrite, Arg: 0}, {Kind: OpWrite, Arg: 1}},
		},
		Args: map[spec.OpKind][]spec.Value{
			OpWrite: {0, 1, 2, 3},
			OpRead:  {nil},
			OpRMW:   {1, 2, 3},
		},
	}
}

func counterDomain() spec.Domain {
	return spec.Domain{
		Prefixes: [][]spec.Invocation{
			nil,
			{{Kind: OpIncrement, Arg: 1}},
			{{Kind: OpIncrement, Arg: 2}},
		},
		Args: map[spec.OpKind][]spec.Value{
			OpIncrement: {1, 2},
			OpGet:       {nil},
		},
	}
}

func queueDomain() spec.Domain {
	return spec.Domain{
		Prefixes: [][]spec.Invocation{
			nil,
			{{Kind: OpEnqueue, Arg: 10}},
			{{Kind: OpEnqueue, Arg: 10}, {Kind: OpEnqueue, Arg: 20}},
		},
		Args: map[spec.OpKind][]spec.Value{
			OpEnqueue: {1, 2, 3, 4},
			OpDequeue: {nil},
			OpPeek:    {nil},
		},
	}
}

func stackDomain() spec.Domain {
	return spec.Domain{
		Prefixes: [][]spec.Invocation{
			nil,
			{{Kind: OpPush, Arg: 10}},
			{{Kind: OpPush, Arg: 10}, {Kind: OpPush, Arg: 20}},
		},
		Args: map[spec.OpKind][]spec.Value{
			OpPush: {1, 2, 3, 4},
			OpPop:  {nil},
			OpTop:  {nil},
		},
	}
}

func setDomain() spec.Domain {
	return spec.Domain{
		Prefixes: [][]spec.Invocation{
			nil,
			{{Kind: OpInsert, Arg: 1}},
			{{Kind: OpInsert, Arg: 1}, {Kind: OpInsert, Arg: 2}},
		},
		Args: map[spec.OpKind][]spec.Value{
			OpInsert:   {1, 2},
			OpRemove:   {1, 2},
			OpContains: {1, 2},
		},
	}
}

func treeDomain() spec.Domain {
	return spec.Domain{
		Prefixes: [][]spec.Invocation{
			nil,
			{{Kind: OpTreeInsert, Arg: Edge{Node: "a", Parent: TreeRoot}}},
			{
				{Kind: OpTreeInsert, Arg: Edge{Node: "a", Parent: TreeRoot}},
				{Kind: OpTreeInsert, Arg: Edge{Node: "b", Parent: "a"}},
			},
			// Two siblings plus a deeper node: placements of x under
			// root/a/c form the last-wins witness family for Definition
			// C.5 (insert moves an existing node).
			{
				{Kind: OpTreeInsert, Arg: Edge{Node: "a", Parent: TreeRoot}},
				{Kind: OpTreeInsert, Arg: Edge{Node: "c", Parent: TreeRoot}},
			},
		},
		Args: map[spec.OpKind][]spec.Value{
			OpTreeInsert: {
				Edge{Node: "x", Parent: TreeRoot},
				Edge{Node: "x", Parent: "a"},
				Edge{Node: "x", Parent: "c"},
				Edge{Node: "y", Parent: "a"},
			},
			OpTreeDelete: {"a", "b", "x"},
			OpTreeSearch: {"a", "x"},
			OpTreeDepth:  {nil},
		},
	}
}

func dictDomain() spec.Domain {
	return spec.Domain{
		Prefixes: [][]spec.Invocation{
			nil,
			{{Kind: OpPut, Arg: KV{Key: "a", Value: 1}}},
			{{Kind: OpPut, Arg: KV{Key: "a", Value: 1}}, {Kind: OpPut, Arg: KV{Key: "b", Value: 2}}},
		},
		Args: map[spec.OpKind][]spec.Value{
			OpPut: {
				KV{Key: "a", Value: 1},
				KV{Key: "a", Value: 2},
				KV{Key: "b", Value: 3},
			},
			OpDelete:  {"a", "b"},
			OpDictGet: {"a", "b"},
			OpSize:    {nil},
		},
	}
}

func pqueueDomain() spec.Domain {
	return spec.Domain{
		Prefixes: [][]spec.Invocation{
			nil,
			{{Kind: OpPQInsert, Arg: 5}},
			{{Kind: OpPQInsert, Arg: 5}, {Kind: OpPQInsert, Arg: 2}},
		},
		Args: map[spec.OpKind][]spec.Value{
			OpPQInsert:    {1, 2, 3},
			OpPQDeleteMin: {nil},
			OpPQMin:       {nil},
		},
	}
}

func accountDomain() spec.Domain {
	return spec.Domain{
		Prefixes: [][]spec.Invocation{
			nil,
			{{Kind: OpDeposit, Arg: 100}},
			{{Kind: OpDeposit, Arg: 100}, {Kind: OpWithdraw, Arg: 30}},
		},
		Args: map[spec.OpKind][]spec.Value{
			OpDeposit:  {50, 100},
			OpWithdraw: {70, 100},
			OpBalance:  {nil},
		},
	}
}

func pairArrayDomain() spec.Domain {
	return spec.Domain{
		Prefixes: [][]spec.Invocation{
			nil,
			// A prefix that changes element 2, so later UpdateNext(2,…)
			// returns differ across prefixes (accessor detection).
			{{Kind: OpUpdateNext, Arg: UpdateNextArg{I: 1, B: 9}}},
		},
		Args: map[spec.OpKind][]spec.Value{
			OpUpdateNext: {
				UpdateNextArg{I: 1, B: 7},
				UpdateNextArg{I: 1, B: 9},
				UpdateNextArg{I: 2, B: 7},
			},
		},
	}
}
