package types

import (
	"strings"

	"timebounds/internal/spec"
)

// Operation kinds on queues.
const (
	// OpEnqueue appends the argument to the tail and returns nil.
	// Pure mutator; eventually non-self-any-permuting (Chapter II.C).
	OpEnqueue spec.OpKind = "enqueue"
	// OpDequeue removes and returns the head, or nil when empty.
	// Strongly immediately non-self-commuting (Chapter II.B).
	OpDequeue spec.OpKind = "dequeue"
	// OpPeek returns the head without removing it, or nil when empty.
	// Pure accessor.
	OpPeek spec.OpKind = "peek"
)

// queueState is an immutable FIFO snapshot.
type queueState []spec.Value

// Queue is a FIFO queue with enqueue/dequeue/peek (Chapter VI.B).
type Queue struct{}

var _ spec.DataType = Queue{}

// NewQueue returns an initially empty queue.
func NewQueue() Queue { return Queue{} }

// Name implements spec.DataType.
func (Queue) Name() string { return "queue" }

// InitialState implements spec.DataType.
func (Queue) InitialState() spec.State { return queueState(nil) }

// Apply implements spec.DataType.
func (Queue) Apply(s spec.State, kind spec.OpKind, arg spec.Value) (spec.State, spec.Value) {
	q, _ := s.(queueState)
	switch kind {
	case OpEnqueue:
		next := make(queueState, 0, len(q)+1)
		next = append(next, q...)
		next = append(next, arg)
		return next, nil
	case OpDequeue:
		if len(q) == 0 {
			return q, nil
		}
		next := make(queueState, len(q)-1)
		copy(next, q[1:])
		return next, q[0]
	case OpPeek:
		if len(q) == 0 {
			return q, nil
		}
		return q, q[0]
	default:
		return q, nil
	}
}

// Kinds implements spec.DataType.
func (Queue) Kinds() []spec.OpKind { return []spec.OpKind{OpEnqueue, OpDequeue, OpPeek} }

// Class implements spec.DataType.
func (Queue) Class(kind spec.OpKind) spec.OpClass {
	switch kind {
	case OpEnqueue:
		return spec.ClassPureMutator
	case OpPeek:
		return spec.ClassPureAccessor
	default:
		return spec.ClassOther
	}
}

// EncodeState implements spec.DataType.
func (Queue) EncodeState(s spec.State) string {
	q, _ := s.(queueState)
	parts := make([]string, len(q))
	for i, v := range q {
		// Type-faithful rendering: int 1 and string "1" must not collide
		// (checker memo + shared transition caches key on encodings).
		parts[i] = spec.CanonicalValue(v)
	}
	return "q:[" + strings.Join(parts, " ") + "]"
}
