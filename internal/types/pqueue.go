package types

import (
	"fmt"
	"sort"
	"strings"

	"timebounds/internal/spec"
)

// Operation kinds on priority queues.
const (
	// OpPQInsert inserts an integer priority and returns nil. Pure
	// mutator — and, unlike push/enqueue, eventually SELF-COMMUTING:
	// the multiset does not remember insertion order, so the (1-1/k)u
	// last-permuting lower bound does not apply to it.
	OpPQInsert spec.OpKind = "pq-insert"
	// OpPQDeleteMin removes and returns the smallest element (nil when
	// empty). Strongly immediately non-self-commuting, like dequeue/pop.
	OpPQDeleteMin spec.OpKind = "pq-delete-min"
	// OpPQMin returns the smallest element without removing it. Pure
	// accessor.
	OpPQMin spec.OpKind = "pq-min"
)

// pqState is an immutable sorted multiset of int priorities.
type pqState []int

// PQueue is a min-priority queue. It rounds out the classification matrix:
// its mutator commutes with itself (contrast enqueue/push) while its
// delete-min is strongly immediately non-self-commuting (like
// dequeue/pop), so the d+min{ε,u,d/3} bound applies to delete-min but the
// (1-1/k)u last-permuting bound does not apply to insert.
type PQueue struct{}

var _ spec.DataType = PQueue{}

// NewPQueue returns an initially empty priority queue.
func NewPQueue() PQueue { return PQueue{} }

// Name implements spec.DataType.
func (PQueue) Name() string { return "pqueue" }

// InitialState implements spec.DataType.
func (PQueue) InitialState() spec.State { return pqState(nil) }

// Apply implements spec.DataType.
func (PQueue) Apply(s spec.State, kind spec.OpKind, arg spec.Value) (spec.State, spec.Value) {
	pq, _ := s.(pqState)
	switch kind {
	case OpPQInsert:
		v, ok := arg.(int)
		if !ok {
			return pq, nil
		}
		next := make(pqState, 0, len(pq)+1)
		next = append(next, pq...)
		next = append(next, v)
		sort.Ints(next)
		return next, nil
	case OpPQDeleteMin:
		if len(pq) == 0 {
			return pq, nil
		}
		next := make(pqState, len(pq)-1)
		copy(next, pq[1:])
		return next, pq[0]
	case OpPQMin:
		if len(pq) == 0 {
			return pq, nil
		}
		return pq, pq[0]
	default:
		return pq, nil
	}
}

// Kinds implements spec.DataType.
func (PQueue) Kinds() []spec.OpKind {
	return []spec.OpKind{OpPQInsert, OpPQDeleteMin, OpPQMin}
}

// Class implements spec.DataType.
func (PQueue) Class(kind spec.OpKind) spec.OpClass {
	switch kind {
	case OpPQInsert:
		return spec.ClassPureMutator
	case OpPQMin:
		return spec.ClassPureAccessor
	default:
		return spec.ClassOther
	}
}

// EncodeState implements spec.DataType.
func (PQueue) EncodeState(s spec.State) string {
	pq, _ := s.(pqState)
	parts := make([]string, len(pq))
	for i, v := range pq {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "pq:[" + strings.Join(parts, " ") + "]"
}
