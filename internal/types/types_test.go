package types_test

import (
	"testing"

	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func apply(t *testing.T, dt spec.DataType, s spec.State, kind spec.OpKind, arg spec.Value) (spec.State, spec.Value) {
	t.Helper()
	return dt.Apply(s, kind, arg)
}

func TestRegisterSemantics(t *testing.T) {
	reg := types.NewRMWRegister(7)
	s := reg.InitialState()
	s, ret := apply(t, reg, s, types.OpRead, nil)
	if !spec.ValueEqual(ret, 7) {
		t.Errorf("initial read = %v, want 7", ret)
	}
	s, ret = apply(t, reg, s, types.OpWrite, 9)
	if ret != nil {
		t.Errorf("write returned %v, want nil", ret)
	}
	s, ret = apply(t, reg, s, types.OpRMW, 11)
	if !spec.ValueEqual(ret, 9) {
		t.Errorf("rmw returned %v, want old value 9", ret)
	}
	_, ret = apply(t, reg, s, types.OpRead, nil)
	if !spec.ValueEqual(ret, 11) {
		t.Errorf("read after rmw = %v, want 11", ret)
	}
}

func TestPlainRegisterIgnoresRMW(t *testing.T) {
	reg := types.NewRegister(1)
	s := reg.InitialState()
	s2, ret := reg.Apply(s, types.OpRMW, 5)
	if ret != nil {
		t.Errorf("rmw on plain register returned %v, want nil", ret)
	}
	if reg.EncodeState(s2) != reg.EncodeState(s) {
		t.Error("rmw on plain register must not change state")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := types.NewQueue()
	s := q.InitialState()
	for i := 1; i <= 3; i++ {
		s, _ = apply(t, q, s, types.OpEnqueue, i)
	}
	for want := 1; want <= 3; want++ {
		var ret spec.Value
		s, ret = apply(t, q, s, types.OpDequeue, nil)
		if !spec.ValueEqual(ret, want) {
			t.Fatalf("dequeue = %v, want %d", ret, want)
		}
	}
	_, ret := apply(t, q, s, types.OpDequeue, nil)
	if ret != nil {
		t.Errorf("dequeue on empty queue = %v, want nil", ret)
	}
	_, ret = apply(t, q, s, types.OpPeek, nil)
	if ret != nil {
		t.Errorf("peek on empty queue = %v, want nil", ret)
	}
}

func TestStackLIFO(t *testing.T) {
	st := types.NewStack()
	s := st.InitialState()
	for i := 1; i <= 3; i++ {
		s, _ = apply(t, st, s, types.OpPush, i)
	}
	_, top := apply(t, st, s, types.OpTop, nil)
	if !spec.ValueEqual(top, 3) {
		t.Errorf("top = %v, want 3", top)
	}
	for want := 3; want >= 1; want-- {
		var ret spec.Value
		s, ret = apply(t, st, s, types.OpPop, nil)
		if !spec.ValueEqual(ret, want) {
			t.Fatalf("pop = %v, want %d", ret, want)
		}
	}
	_, ret := apply(t, st, s, types.OpPop, nil)
	if ret != nil {
		t.Errorf("pop on empty stack = %v, want nil", ret)
	}
}

func TestStatesAreImmutable(t *testing.T) {
	q := types.NewQueue()
	s0 := q.InitialState()
	s1, _ := q.Apply(s0, types.OpEnqueue, "a")
	enc1 := q.EncodeState(s1)
	// Applying more operations to s1 must not disturb s1 itself.
	if _, _ = q.Apply(s1, types.OpEnqueue, "b"); q.EncodeState(s1) != enc1 {
		t.Error("enqueue mutated its input state")
	}
	if _, _ = q.Apply(s1, types.OpDequeue, nil); q.EncodeState(s1) != enc1 {
		t.Error("dequeue mutated its input state")
	}
	if q.EncodeState(s0) != q.EncodeState(q.InitialState()) {
		t.Error("initial state was mutated")
	}
}

func TestSetSemantics(t *testing.T) {
	set := types.NewSet()
	s := set.InitialState()
	s, _ = apply(t, set, s, types.OpInsert, 1)
	s, _ = apply(t, set, s, types.OpInsert, 2)
	s, _ = apply(t, set, s, types.OpInsert, 1) // duplicate
	_, ret := apply(t, set, s, types.OpContains, 1)
	if !spec.ValueEqual(ret, true) {
		t.Errorf("contains(1) = %v, want true", ret)
	}
	s, _ = apply(t, set, s, types.OpRemove, 1)
	_, ret = apply(t, set, s, types.OpContains, 1)
	if !spec.ValueEqual(ret, false) {
		t.Errorf("contains(1) after remove = %v, want false", ret)
	}
	// Insert order must not affect the canonical encoding.
	a := set.InitialState()
	a, _ = set.Apply(a, types.OpInsert, 1)
	a, _ = set.Apply(a, types.OpInsert, 2)
	b := set.InitialState()
	b, _ = set.Apply(b, types.OpInsert, 2)
	b, _ = set.Apply(b, types.OpInsert, 1)
	if set.EncodeState(a) != set.EncodeState(b) {
		t.Errorf("encodings differ by insert order: %q vs %q", set.EncodeState(a), set.EncodeState(b))
	}
}

func TestTreeSemantics(t *testing.T) {
	tr := types.NewTree()
	s := tr.InitialState()
	_, depth := apply(t, tr, s, types.OpTreeDepth, nil)
	if !spec.ValueEqual(depth, 0) {
		t.Errorf("depth of root-only tree = %v, want 0", depth)
	}
	s, _ = apply(t, tr, s, types.OpTreeInsert, types.Edge{Node: "a", Parent: types.TreeRoot})
	s, _ = apply(t, tr, s, types.OpTreeInsert, types.Edge{Node: "b", Parent: "a"})
	_, depth = apply(t, tr, s, types.OpTreeDepth, nil)
	if !spec.ValueEqual(depth, 2) {
		t.Errorf("depth = %v, want 2", depth)
	}
	_, found := apply(t, tr, s, types.OpTreeSearch, "b")
	if !spec.ValueEqual(found, true) {
		t.Errorf("search(b) = %v, want true", found)
	}
	// Deleting an inner node is a no-op; deleting a leaf works.
	s2, _ := apply(t, tr, s, types.OpTreeDelete, "a")
	if tr.EncodeState(s2) != tr.EncodeState(s) {
		t.Error("deleting inner node a should be a no-op")
	}
	s3, _ := apply(t, tr, s, types.OpTreeDelete, "b")
	_, found = apply(t, tr, s3, types.OpTreeSearch, "b")
	if !spec.ValueEqual(found, false) {
		t.Errorf("search(b) after delete = %v, want false", found)
	}
	// Insert under a missing parent is a no-op.
	s4, _ := apply(t, tr, s, types.OpTreeInsert, types.Edge{Node: "z", Parent: "nope"})
	if tr.EncodeState(s4) != tr.EncodeState(s) {
		t.Error("insert under missing parent should be a no-op")
	}
	// The root may not be deleted.
	s5, _ := apply(t, tr, s, types.OpTreeDelete, types.TreeRoot)
	if tr.EncodeState(s5) != tr.EncodeState(s) {
		t.Error("deleting the root should be a no-op")
	}
}

func TestPairArrayUpdateNext(t *testing.T) {
	arr := types.NewPairArray(3, 5)
	s := arr.InitialState()
	s, ret := apply(t, arr, s, types.OpUpdateNext, types.UpdateNextArg{I: 1, B: 9})
	if !spec.ValueEqual(ret, 3) {
		t.Errorf("UpdateNext(1) returned %v, want 3", ret)
	}
	s, ret = apply(t, arr, s, types.OpUpdateNext, types.UpdateNextArg{I: 2, B: 0})
	if !spec.ValueEqual(ret, 9) {
		t.Errorf("UpdateNext(2) returned %v, want updated 9", ret)
	}
	// I == 2 modifies nothing.
	if arr.EncodeState(s) != "arr:[3 9]" {
		t.Errorf("state = %s, want arr:[3 9]", arr.EncodeState(s))
	}
	// Out-of-range index is a no-op returning nil.
	_, ret = apply(t, arr, s, types.OpUpdateNext, types.UpdateNextArg{I: 3, B: 1})
	if ret != nil {
		t.Errorf("out-of-range UpdateNext returned %v, want nil", ret)
	}
}

func TestCounterSemantics(t *testing.T) {
	ctr := types.NewCounter()
	s := ctr.InitialState()
	s, _ = apply(t, ctr, s, types.OpIncrement, 2)
	s, _ = apply(t, ctr, s, types.OpIncrement, 3)
	_, ret := apply(t, ctr, s, types.OpGet, nil)
	if !spec.ValueEqual(ret, 5) {
		t.Errorf("get = %v, want 5", ret)
	}
}

func TestEncodeStateCanonical(t *testing.T) {
	// Equal states must encode equally; different states must not.
	q := types.NewQueue()
	a, _ := q.Apply(q.InitialState(), types.OpEnqueue, 1)
	b, _ := q.Apply(q.InitialState(), types.OpEnqueue, 1)
	if q.EncodeState(a) != q.EncodeState(b) {
		t.Error("equal queue states encode differently")
	}
	c, _ := q.Apply(q.InitialState(), types.OpEnqueue, 2)
	if q.EncodeState(a) == q.EncodeState(c) {
		t.Error("different queue states encode equally")
	}
}
