package types

import (
	"fmt"
	"sort"
	"strings"

	"timebounds/internal/spec"
)

// Operation kinds on rooted trees (Chapter VI.C).
const (
	// OpTreeInsert places a node under a parent (argument is an Edge) and
	// returns nil: a new node is attached, an existing node is moved. The
	// last placement of a node wins, which makes insert eventually
	// non-self-last-permuting (Table IV's (1-1/n)u row). No-op if the
	// parent is absent or the move would create a cycle. Pure mutator.
	OpTreeInsert spec.OpKind = "tree-insert"
	// OpTreeDelete removes a leaf node (argument is the node name) and
	// returns nil. No-op if the node is absent, is the root, or has
	// children. Pure mutator.
	OpTreeDelete spec.OpKind = "tree-delete"
	// OpTreeSearch reports whether a node is present. Pure accessor.
	OpTreeSearch spec.OpKind = "tree-search"
	// OpTreeDepth returns the depth of the tree (root alone = 0).
	// Pure accessor.
	OpTreeDepth spec.OpKind = "tree-depth"
)

// Edge is the argument of OpTreeInsert: attach Node under Parent.
type Edge struct {
	Node   string
	Parent string
}

// TreeRoot is the name of the fixed root node.
const TreeRoot = "root"

// treeState maps node name -> parent name; the root maps to itself.
// States are immutable: Apply always copies.
type treeState map[string]string

// Tree is a rooted tree with insert/delete (pure mutators) and search/depth
// (pure accessors); there is no operation that is both mutator and
// accessor (Chapter VI.C).
type Tree struct{}

var _ spec.DataType = Tree{}

// NewTree returns a tree containing only the root.
func NewTree() Tree { return Tree{} }

// Name implements spec.DataType.
func (Tree) Name() string { return "tree" }

// InitialState implements spec.DataType.
func (Tree) InitialState() spec.State {
	return treeState{TreeRoot: TreeRoot}
}

func (t treeState) clone() treeState {
	next := make(treeState, len(t))
	for k, v := range t {
		next[k] = v
	}
	return next
}

func (t treeState) hasChildren(node string) bool {
	for n, p := range t {
		if p == node && n != node {
			return true
		}
	}
	return false
}

// inSubtree reports whether candidate lies in the subtree rooted at node
// (inclusive of node itself when they are equal).
func (t treeState) inSubtree(candidate, node string) bool {
	if candidate == node {
		return true
	}
	cur := candidate
	for i := 0; i <= len(t); i++ {
		parent, ok := t[cur]
		if !ok || parent == cur {
			return false
		}
		if parent == node {
			return true
		}
		cur = parent
	}
	return false
}

func (t treeState) depthOf(node string) int {
	depth := 0
	for node != TreeRoot {
		node = t[node]
		depth++
		if depth > len(t) { // defensive: malformed state
			return -1
		}
	}
	return depth
}

// Apply implements spec.DataType.
func (Tree) Apply(s spec.State, kind spec.OpKind, arg spec.Value) (spec.State, spec.Value) {
	t, _ := s.(treeState)
	switch kind {
	case OpTreeInsert:
		e, ok := arg.(Edge)
		if !ok || e.Node == TreeRoot {
			return t, nil
		}
		if _, parentExists := t[e.Parent]; !parentExists {
			return t, nil
		}
		if t.inSubtree(e.Parent, e.Node) {
			return t, nil // moving a node under its own descendant
		}
		next := t.clone()
		next[e.Node] = e.Parent
		return next, nil
	case OpTreeDelete:
		node, ok := arg.(string)
		if !ok || node == TreeRoot {
			return t, nil
		}
		if _, exists := t[node]; !exists || t.hasChildren(node) {
			return t, nil
		}
		next := t.clone()
		delete(next, node)
		return next, nil
	case OpTreeSearch:
		node, _ := arg.(string)
		_, exists := t[node]
		return t, exists
	case OpTreeDepth:
		maxDepth := 0
		for n := range t {
			if d := t.depthOf(n); d > maxDepth {
				maxDepth = d
			}
		}
		return t, maxDepth
	default:
		return t, nil
	}
}

// Kinds implements spec.DataType.
func (Tree) Kinds() []spec.OpKind {
	return []spec.OpKind{OpTreeInsert, OpTreeDelete, OpTreeSearch, OpTreeDepth}
}

// Class implements spec.DataType.
func (Tree) Class(kind spec.OpKind) spec.OpClass {
	switch kind {
	case OpTreeInsert, OpTreeDelete:
		return spec.ClassPureMutator
	case OpTreeSearch, OpTreeDepth:
		return spec.ClassPureAccessor
	default:
		return spec.ClassOther
	}
}

// EncodeState implements spec.DataType.
func (Tree) EncodeState(s spec.State) string {
	t, _ := s.(treeState)
	parts := make([]string, 0, len(t))
	for n, p := range t {
		parts = append(parts, fmt.Sprintf("%s<%s", n, p))
	}
	sort.Strings(parts)
	return "tree:{" + strings.Join(parts, ",") + "}"
}
