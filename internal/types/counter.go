package types

import (
	"strconv"

	"timebounds/internal/spec"
)

// Operation kinds on counters.
const (
	// OpIncrement adds the (int) argument to the counter and returns nil.
	// Pure mutator, eventually self-commuting, non-overwriter — the
	// increment example of Chapter I.C.
	OpIncrement spec.OpKind = "increment"
	// OpGet returns the counter value. Pure accessor.
	OpGet spec.OpKind = "get"
)

// Counter is a shared integer counter supporting increment and get. It is
// the paper's running example of a mutator that commutes with itself yet
// does not overwrite the whole state (Chapter I.C, item 3).
type Counter struct{}

var _ spec.DataType = Counter{}

// NewCounter returns a counter starting at zero.
func NewCounter() Counter { return Counter{} }

// Name implements spec.DataType.
func (Counter) Name() string { return "counter" }

// InitialState implements spec.DataType.
func (Counter) InitialState() spec.State { return int(0) }

// Apply implements spec.DataType.
func (Counter) Apply(s spec.State, kind spec.OpKind, arg spec.Value) (spec.State, spec.Value) {
	cur, _ := s.(int)
	switch kind {
	case OpIncrement:
		delta, _ := arg.(int)
		// BoxInt (and returning s unchanged below) keeps the running value
		// out of the allocator: every replica re-applies every mutator, so
		// naive interface boxing here dominated grid-run allocations.
		return spec.BoxInt(cur + delta), nil
	case OpGet:
		v := spec.BoxInt(cur)
		return v, v
	default:
		return spec.BoxInt(cur), nil
	}
}

// Kinds implements spec.DataType.
func (Counter) Kinds() []spec.OpKind { return []spec.OpKind{OpIncrement, OpGet} }

// Class implements spec.DataType.
func (Counter) Class(kind spec.OpKind) spec.OpClass {
	switch kind {
	case OpIncrement:
		return spec.ClassPureMutator
	case OpGet:
		return spec.ClassPureAccessor
	default:
		return spec.ClassOther
	}
}

// EncodeState implements spec.DataType.
func (Counter) EncodeState(s spec.State) string {
	cur, _ := s.(int)
	return "ctr:" + strconv.Itoa(cur)
}
