package types

import (
	"fmt"
	"sort"
	"strings"

	"timebounds/internal/spec"
)

// Operation kinds on sets.
const (
	// OpInsert adds the argument to the set and returns nil.
	// Pure mutator, eventually self-commuting (Definition C.6 example).
	OpInsert spec.OpKind = "insert"
	// OpRemove removes the argument from the set and returns nil.
	// Pure mutator, eventually self-commuting.
	OpRemove spec.OpKind = "remove"
	// OpContains reports whether the argument is in the set. Pure accessor.
	OpContains spec.OpKind = "contains"
)

// setState is an immutable sorted-by-encoding element list.
type setState []spec.Value

// Set is a mathematical set with insert/remove/contains; the paper's
// example of eventually self-commuting mutators (Chapter II.C).
type Set struct{}

var _ spec.DataType = Set{}

// NewSet returns an initially empty set.
func NewSet() Set { return Set{} }

// Name implements spec.DataType.
func (Set) Name() string { return "set" }

// InitialState implements spec.DataType.
func (Set) InitialState() spec.State { return setState(nil) }

func encodeElem(v spec.Value) string { return fmt.Sprintf("%#v", v) }

// Apply implements spec.DataType.
func (Set) Apply(s spec.State, kind spec.OpKind, arg spec.Value) (spec.State, spec.Value) {
	set, _ := s.(setState)
	switch kind {
	case OpInsert:
		key := encodeElem(arg)
		for _, v := range set {
			if encodeElem(v) == key {
				return set, nil
			}
		}
		next := make(setState, 0, len(set)+1)
		next = append(next, set...)
		next = append(next, arg)
		sort.Slice(next, func(i, j int) bool { return encodeElem(next[i]) < encodeElem(next[j]) })
		return next, nil
	case OpRemove:
		key := encodeElem(arg)
		next := make(setState, 0, len(set))
		for _, v := range set {
			if encodeElem(v) != key {
				next = append(next, v)
			}
		}
		return next, nil
	case OpContains:
		key := encodeElem(arg)
		for _, v := range set {
			if encodeElem(v) == key {
				return set, true
			}
		}
		return set, false
	default:
		return set, nil
	}
}

// Kinds implements spec.DataType.
func (Set) Kinds() []spec.OpKind { return []spec.OpKind{OpInsert, OpRemove, OpContains} }

// Class implements spec.DataType.
func (Set) Class(kind spec.OpKind) spec.OpClass {
	switch kind {
	case OpInsert, OpRemove:
		return spec.ClassPureMutator
	case OpContains:
		return spec.ClassPureAccessor
	default:
		return spec.ClassOther
	}
}

// EncodeState implements spec.DataType.
func (Set) EncodeState(s spec.State) string {
	set, _ := s.(setState)
	parts := make([]string, len(set))
	for i, v := range set {
		parts[i] = encodeElem(v)
	}
	return "set:{" + strings.Join(parts, ",") + "}"
}
