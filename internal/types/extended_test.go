package types_test

// Tests for the extension data types (dict, priority queue) and their
// classification properties beyond the paper's Table objects.

import (
	"testing"

	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func TestDictSemantics(t *testing.T) {
	d := types.NewDict()
	s := d.InitialState()
	s, _ = apply(t, d, s, types.OpPut, types.KV{Key: "a", Value: 1})
	s, _ = apply(t, d, s, types.OpPut, types.KV{Key: "b", Value: 2})
	s, _ = apply(t, d, s, types.OpPut, types.KV{Key: "a", Value: 3}) // overwrite a
	_, got := apply(t, d, s, types.OpDictGet, "a")
	if !spec.ValueEqual(got, 3) {
		t.Errorf("get(a) = %v, want 3", got)
	}
	_, size := apply(t, d, s, types.OpSize, nil)
	if !spec.ValueEqual(size, 2) {
		t.Errorf("size = %v, want 2", size)
	}
	s, _ = apply(t, d, s, types.OpDelete, "a")
	_, got = apply(t, d, s, types.OpDictGet, "a")
	if got != nil {
		t.Errorf("get(a) after delete = %v, want nil", got)
	}
	// Deleting a missing key is a no-op.
	s2, _ := apply(t, d, s, types.OpDelete, "zzz")
	if d.EncodeState(s2) != d.EncodeState(s) {
		t.Error("delete of missing key changed state")
	}
}

func TestDictEncodingCanonical(t *testing.T) {
	d := types.NewDict()
	a := d.InitialState()
	a, _ = d.Apply(a, types.OpPut, types.KV{Key: "x", Value: 1})
	a, _ = d.Apply(a, types.OpPut, types.KV{Key: "y", Value: 2})
	b := d.InitialState()
	b, _ = d.Apply(b, types.OpPut, types.KV{Key: "y", Value: 2})
	b, _ = d.Apply(b, types.OpPut, types.KV{Key: "x", Value: 1})
	if d.EncodeState(a) != d.EncodeState(b) {
		t.Error("dict encoding depends on insertion order")
	}
}

func TestPQueueSemantics(t *testing.T) {
	pq := types.NewPQueue()
	s := pq.InitialState()
	for _, v := range []int{5, 1, 3} {
		s, _ = apply(t, pq, s, types.OpPQInsert, v)
	}
	_, min := apply(t, pq, s, types.OpPQMin, nil)
	if !spec.ValueEqual(min, 1) {
		t.Errorf("min = %v, want 1", min)
	}
	for _, want := range []int{1, 3, 5} {
		var got spec.Value
		s, got = apply(t, pq, s, types.OpPQDeleteMin, nil)
		if !spec.ValueEqual(got, want) {
			t.Fatalf("delete-min = %v, want %d", got, want)
		}
	}
	_, got := apply(t, pq, s, types.OpPQDeleteMin, nil)
	if got != nil {
		t.Errorf("delete-min on empty = %v, want nil", got)
	}
}

func TestPQInsertEventuallySelfCommutes(t *testing.T) {
	// Contrast with push/enqueue: the priority queue forgets insertion
	// order, so insert eventually self-commutes and the (1-1/k)u
	// last-permuting bound does not apply to it.
	pq := types.NewPQueue()
	dom := types.DefaultDomain(pq)
	if !spec.EventuallySelfCommuting(pq, types.OpPQInsert, dom) {
		t.Error("pq-insert should eventually self-commute")
	}
	if _, ok := spec.FindNonSelfLastPermuting(pq, types.OpPQInsert, 3, dom); ok {
		t.Error("pq-insert must not be non-self-last-permuting")
	}
}

func TestPQDeleteMinStronglyINSC(t *testing.T) {
	// delete-min behaves like dequeue/pop: the d+min{ε,u,d/3} bound
	// applies via strongly immediate non-self-commutativity.
	pq := types.NewPQueue()
	dom := types.DefaultDomain(pq)
	w, ok := spec.FindStronglyImmediatelyNonSelfCommuting(pq, types.OpPQDeleteMin, dom)
	if !ok {
		t.Fatal("pq-delete-min should be strongly immediately non-self-commuting")
	}
	if err := spec.VerifyImmediatelyNonCommuting(pq, w); err != nil {
		t.Fatalf("witness fails: %v", err)
	}
}

func TestDictPutNonOverwriterOfWholeState(t *testing.T) {
	// put(a,·) after put(b,·) keeps b — unlike write on a register, put
	// does not overwrite the whole state, so the Theorem E.1 pair bound
	// d+min{ε,u,d/3} applies to (put, get).
	d := types.NewDict()
	dom := types.DefaultDomain(d)
	if !spec.IsNonOverwriter(d, types.OpPut, dom) {
		t.Error("put should be a non-overwriter")
	}
}

func TestExtendedClassifications(t *testing.T) {
	for _, dt := range []spec.DataType{types.NewDict(), types.NewPQueue()} {
		dom := types.DefaultDomain(dt)
		for _, kind := range dt.Kinds() {
			mut := spec.IsMutator(dt, kind, dom)
			acc := spec.IsAccessor(dt, kind, dom)
			switch dt.Class(kind) {
			case spec.ClassPureMutator:
				if !mut || acc {
					t.Errorf("%s/%s declared MOP but mutator=%v accessor=%v", dt.Name(), kind, mut, acc)
				}
			case spec.ClassPureAccessor:
				if mut || !acc {
					t.Errorf("%s/%s declared AOP but mutator=%v accessor=%v", dt.Name(), kind, mut, acc)
				}
			case spec.ClassOther:
				if !mut || !acc {
					t.Errorf("%s/%s declared OOP but mutator=%v accessor=%v", dt.Name(), kind, mut, acc)
				}
			}
		}
	}
}

func TestDictPutGetPairTheoremE1Assumptions(t *testing.T) {
	// A, B, C of Theorem E.1 hold for (put, get) on distinct keys with
	// distinct values observed via get of one key… put(a,1)/put(a,2):
	// order determines get(a), and neither put erases the other.
	d := types.NewDict()
	put := func(k string, v int) spec.Op {
		return spec.Op{Kind: types.OpPut, Arg: types.KV{Key: k, Value: v}}
	}
	get := func(k string, v spec.Value) spec.Op {
		return spec.Op{Kind: types.OpDictGet, Arg: k, Ret: v}
	}
	op1, op2 := put("a", 1), put("a", 2)
	// C: the two orders disagree on get(a).
	if !spec.Legal(d, spec.Sequence{op1, op2, get("a", 2)}) {
		t.Error("C: put1∘put2∘get(2) should be legal")
	}
	if spec.Legal(d, spec.Sequence{op2, op1, get("a", 2)}) {
		t.Error("C: put2∘put1∘get(2) should be illegal")
	}
}
