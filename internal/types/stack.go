package types

import (
	"strings"

	"timebounds/internal/spec"
)

// Operation kinds on stacks.
const (
	// OpPush pushes the argument and returns nil. Pure mutator;
	// eventually non-self-any-permuting (Chapter II.C).
	OpPush spec.OpKind = "push"
	// OpPop removes and returns the top element, or nil when empty.
	// Strongly immediately non-self-commuting (Chapter II.B).
	OpPop spec.OpKind = "pop"
	// OpTop returns the top element without removing it, or nil when
	// empty. Pure accessor (called "peek" on stacks in Chapter VI.B).
	OpTop spec.OpKind = "top"
)

// stackState is an immutable LIFO snapshot; the last element is the top.
type stackState []spec.Value

// Stack is a LIFO stack with push/pop/top (Chapter VI.B).
type Stack struct{}

var _ spec.DataType = Stack{}

// NewStack returns an initially empty stack.
func NewStack() Stack { return Stack{} }

// Name implements spec.DataType.
func (Stack) Name() string { return "stack" }

// InitialState implements spec.DataType.
func (Stack) InitialState() spec.State { return stackState(nil) }

// Apply implements spec.DataType.
func (Stack) Apply(s spec.State, kind spec.OpKind, arg spec.Value) (spec.State, spec.Value) {
	st, _ := s.(stackState)
	switch kind {
	case OpPush:
		next := make(stackState, 0, len(st)+1)
		next = append(next, st...)
		next = append(next, arg)
		return next, nil
	case OpPop:
		if len(st) == 0 {
			return st, nil
		}
		next := make(stackState, len(st)-1)
		copy(next, st[:len(st)-1])
		return next, st[len(st)-1]
	case OpTop:
		if len(st) == 0 {
			return st, nil
		}
		return st, st[len(st)-1]
	default:
		return st, nil
	}
}

// Kinds implements spec.DataType.
func (Stack) Kinds() []spec.OpKind { return []spec.OpKind{OpPush, OpPop, OpTop} }

// Class implements spec.DataType.
func (Stack) Class(kind spec.OpKind) spec.OpClass {
	switch kind {
	case OpPush:
		return spec.ClassPureMutator
	case OpTop:
		return spec.ClassPureAccessor
	default:
		return spec.ClassOther
	}
}

// EncodeState implements spec.DataType.
func (Stack) EncodeState(s spec.State) string {
	st, _ := s.(stackState)
	parts := make([]string, len(st))
	for i, v := range st {
		// Type-faithful rendering: int 1 and string "1" must not collide
		// (checker memo + shared transition caches key on encodings).
		parts[i] = spec.CanonicalValue(v)
	}
	return "s:[" + strings.Join(parts, " ") + "]"
}
