package types_test

import (
	"reflect"
	"testing"

	"timebounds/internal/types"
)

// TestDomainForCachesPerTypeName: the cached entry point must hand back
// the same shared Domain for repeated lookups (no re-derivation) and keep
// distinct types distinct.
func TestDomainForCachesPerTypeName(t *testing.T) {
	q := types.NewQueue()
	d1 := types.DomainFor(q)
	d2 := types.DomainFor(q)
	if len(d1.Prefixes) == 0 || len(d1.Args) == 0 {
		t.Fatal("queue domain is empty")
	}
	// Same backing storage: the cache returned the shared instance.
	if &d1.Prefixes[0] != &d2.Prefixes[0] {
		t.Error("DomainFor re-derived the domain instead of caching it")
	}
	if !reflect.DeepEqual(d1, types.DefaultDomain(q)) {
		t.Error("cached domain differs from a fresh derivation")
	}
	reg := types.NewRegister(0)
	if reflect.DeepEqual(types.DomainFor(reg), d1) {
		t.Error("register and queue must not share a domain")
	}
}
