// Package types provides the sequential data types studied in the paper:
// read/write and read-modify-write registers (Chapter VI.A), queues and
// stacks (VI.B), rooted trees (VI.C), plus the counter, set and UpdateNext
// array used as examples in Chapters I–II. Every type implements
// spec.DataType with immutable states and a canonical encoding.
package types

import "timebounds/internal/spec"

// Operation kinds on registers.
const (
	// OpWrite writes the argument into the register and returns nil.
	// Pure mutator; eventually non-self-last-permuting; overwriter.
	OpWrite spec.OpKind = "write"
	// OpRead returns the register's value. Pure accessor.
	OpRead spec.OpKind = "read"
	// OpRMW atomically returns the old value and writes the argument.
	// Strongly immediately non-self-commuting (Chapter II.B).
	OpRMW spec.OpKind = "rmw"
)

// Register is a read/write register holding a single value. Its initial
// value is configurable so that prefixes like ρ = write(0) can instead be
// expressed as initializations, matching the paper's initialization remark
// after Corollary B.4.
type Register struct {
	initial spec.Value
	withRMW bool
}

var _ spec.DataType = (*Register)(nil)

// NewRegister returns a read/write register with the given initial value.
func NewRegister(initial spec.Value) *Register {
	return &Register{initial: initial}
}

// NewRMWRegister returns a register that additionally supports the
// read-modify-write operation (a Read/Write/Read-Modify-Write register,
// Chapter VI.A).
func NewRMWRegister(initial spec.Value) *Register {
	return &Register{initial: initial, withRMW: true}
}

// Name implements spec.DataType.
func (r *Register) Name() string {
	if r.withRMW {
		return "rmw-register"
	}
	return "register"
}

// InitialState implements spec.DataType.
func (r *Register) InitialState() spec.State { return r.initial }

// Apply implements spec.DataType.
func (r *Register) Apply(s spec.State, kind spec.OpKind, arg spec.Value) (spec.State, spec.Value) {
	switch kind {
	case OpWrite:
		return arg, nil
	case OpRead:
		return s, s
	case OpRMW:
		if !r.withRMW {
			return s, nil
		}
		return arg, s
	default:
		return s, nil
	}
}

// Kinds implements spec.DataType.
func (r *Register) Kinds() []spec.OpKind {
	if r.withRMW {
		return []spec.OpKind{OpWrite, OpRead, OpRMW}
	}
	return []spec.OpKind{OpWrite, OpRead}
}

// Class implements spec.DataType: write is a pure mutator, read a pure
// accessor, and read-modify-write is on the totally ordered OOP path.
func (r *Register) Class(kind spec.OpKind) spec.OpClass {
	switch kind {
	case OpWrite:
		return spec.ClassPureMutator
	case OpRead:
		return spec.ClassPureAccessor
	default:
		return spec.ClassOther
	}
}

// EncodeState implements spec.DataType. Values render type-faithfully
// (spec.CanonicalValue): int 1 and string "1" are behaviourally distinct
// states and must not share an encoding — checker memoization and the
// engine's shared transition caches key on it.
func (r *Register) EncodeState(s spec.State) string { return "reg:" + spec.CanonicalValue(s) }
