package bounds

import (
	"fmt"
	"strings"

	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

// RowKind distinguishes single-operation rows from operation-pair rows.
type RowKind int

// Row kinds.
const (
	// RowSingle is a bound on one operation type.
	RowSingle RowKind = iota + 1
	// RowPair is a bound on the sum of two operation types.
	RowPair
)

// Row is one line of a Chapter VI table: an operation (or pair), the
// paper's previous lower bound, the paper's new lower bound, and the upper
// bound from Algorithm 1. Bounds are closures over the system parameters so
// rows render for any (d, u, ε, X).
type Row struct {
	Kind RowKind
	// Label is the operation name(s), e.g. "dequeue" or "enqueue + peek".
	Label string
	// Ops are the operation kinds: one for RowSingle, two for RowPair.
	Ops []spec.OpKind
	// PrevLower is the pre-paper lower bound.
	PrevLower func(p model.Params) model.Time
	// PrevLowerRef cites where the previous bound comes from.
	PrevLowerRef string
	// NewLower is the paper's lower bound ("" formula when unchanged).
	NewLower func(p model.Params) model.Time
	// NewLowerName is the formula as printed in the paper.
	NewLowerName string
	// Upper is Algorithm 1's upper bound, given X.
	Upper func(p model.Params, x model.Time) model.Time
	// UpperName is the formula as printed in the paper.
	UpperName string
}

// Table is one of the paper's Tables I–IV.
type Table struct {
	// Number is the table number, 1-4.
	Number int
	// Title matches the paper's caption.
	Title string
	// Object is the data type summarized.
	Object spec.DataType
	Rows   []Row
}

// prevU2 is the u/2 previous lower bound [1], [3].
func prevU2(p model.Params) model.Time { return p.U / 2 }

// prevD is the d previous lower bound [3], [5].
func prevD(p model.Params) model.Time { return p.D }

func lbINSC(p model.Params) model.Time { return StronglyINSCLower(p) }

func lbPermute(p model.Params) model.Time { return PermuteLower(p.N, p.U) }

func ubOOP(p model.Params, _ model.Time) model.Time { return UpperOOP(p) }

func ubMut(p model.Params, x model.Time) model.Time { return UpperMutator(p, x) }

func ubAcc(p model.Params, x model.Time) model.Time { return UpperAccessor(p, x) }

func ubPair(p model.Params, _ model.Time) model.Time { return UpperPair(p) }

// TableI returns Table I: operations on a read/write/read-modify-write
// register.
func TableI() Table {
	return Table{
		Number: 1,
		Title:  "Summary of Operation Time Bounds on Read/Write/Read-Modify-Write Register",
		Object: types.NewRMWRegister(0),
		Rows: []Row{
			{
				Kind: RowSingle, Label: "read-modify-write", Ops: []spec.OpKind{types.OpRMW},
				PrevLower: prevD, PrevLowerRef: "[3]",
				NewLower: lbINSC, NewLowerName: "d+min{ε,u,d/3}",
				Upper: ubOOP, UpperName: "d+ε",
			},
			{
				Kind: RowSingle, Label: "write", Ops: []spec.OpKind{types.OpWrite},
				PrevLower: prevU2, PrevLowerRef: "[1]",
				NewLower: lbPermute, NewLowerName: "(1-1/n)u",
				Upper: ubMut, UpperName: "ε+X",
			},
			{
				Kind: RowSingle, Label: "read", Ops: []spec.OpKind{types.OpRead},
				PrevLower: prevU2, PrevLowerRef: "[3]",
				NewLower: nil, NewLowerName: "-",
				Upper: ubAcc, UpperName: "d+ε-X",
			},
			{
				Kind: RowPair, Label: "write + read", Ops: []spec.OpKind{types.OpWrite, types.OpRead},
				PrevLower: prevD, PrevLowerRef: "[5]",
				NewLower: PairLowerOverwriting, NewLowerName: "d",
				Upper: ubPair, UpperName: "d+2ε",
			},
		},
	}
}

// TableII returns Table II: operations on a queue.
func TableII() Table {
	return Table{
		Number: 2,
		Title:  "Summary of Operation Time Bounds on Queue",
		Object: types.NewQueue(),
		Rows: []Row{
			{
				Kind: RowSingle, Label: "enqueue", Ops: []spec.OpKind{types.OpEnqueue},
				PrevLower: prevU2, PrevLowerRef: "[1]",
				NewLower: lbPermute, NewLowerName: "(1-1/n)u",
				Upper: ubMut, UpperName: "ε+X",
			},
			{
				Kind: RowSingle, Label: "dequeue", Ops: []spec.OpKind{types.OpDequeue},
				PrevLower: prevD, PrevLowerRef: "[3]",
				NewLower: lbINSC, NewLowerName: "d+min{ε,u,d/3}",
				Upper: ubOOP, UpperName: "d+ε",
			},
			{
				Kind: RowPair, Label: "enqueue + peek", Ops: []spec.OpKind{types.OpEnqueue, types.OpPeek},
				PrevLower: prevD, PrevLowerRef: "[3]",
				NewLower: PairLowerNonOverwriting, NewLowerName: "d+min{ε,u,d/3}",
				Upper: ubPair, UpperName: "d+2ε",
			},
		},
	}
}

// TableIII returns Table III: operations on a stack.
func TableIII() Table {
	return Table{
		Number: 3,
		Title:  "Summary of Operation Time Bounds on Stack",
		Object: types.NewStack(),
		Rows: []Row{
			{
				Kind: RowSingle, Label: "push", Ops: []spec.OpKind{types.OpPush},
				PrevLower: prevU2, PrevLowerRef: "[1]",
				NewLower: lbPermute, NewLowerName: "(1-1/n)u",
				Upper: ubMut, UpperName: "ε+X",
			},
			{
				Kind: RowSingle, Label: "pop", Ops: []spec.OpKind{types.OpPop},
				PrevLower: prevD, PrevLowerRef: "[3]",
				NewLower: lbINSC, NewLowerName: "d+min{ε,u,d/3}",
				Upper: ubOOP, UpperName: "d+ε",
			},
			{
				Kind: RowPair, Label: "push + peek", Ops: []spec.OpKind{types.OpPush, types.OpTop},
				PrevLower: prevD, PrevLowerRef: "[3]",
				NewLower: PairLowerNonOverwriting, NewLowerName: "d+min{ε,u,d/3}",
				Upper: ubPair, UpperName: "d+2ε",
			},
		},
	}
}

// TableIV returns Table IV: operations on a rooted tree.
func TableIV() Table {
	return Table{
		Number: 4,
		Title:  "Conclusions of Operation Time Bounds on Tree",
		Object: types.NewTree(),
		Rows: []Row{
			{
				Kind: RowSingle, Label: "insert", Ops: []spec.OpKind{types.OpTreeInsert},
				PrevLower: prevU2, PrevLowerRef: "[3]",
				NewLower: lbPermute, NewLowerName: "(1-1/n)u",
				Upper: ubMut, UpperName: "ε+X",
			},
			{
				Kind: RowSingle, Label: "delete", Ops: []spec.OpKind{types.OpTreeDelete},
				PrevLower: prevU2, PrevLowerRef: "[3]",
				NewLower: lbPermute, NewLowerName: "(1-1/n)u",
				Upper: ubMut, UpperName: "ε+X",
			},
			{
				Kind: RowPair, Label: "insert + depth", Ops: []spec.OpKind{types.OpTreeInsert, types.OpTreeDepth},
				PrevLower: prevD, PrevLowerRef: "[3]",
				NewLower: PairLowerNonOverwriting, NewLowerName: "d+min{ε,u,d/3}",
				Upper: ubPair, UpperName: "d+2ε",
			},
			{
				Kind: RowPair, Label: "delete + depth", Ops: []spec.OpKind{types.OpTreeDelete, types.OpTreeDepth},
				PrevLower: prevD, PrevLowerRef: "[3]",
				NewLower: PairLowerNonOverwriting, NewLowerName: "d+min{ε,u,d/3}",
				Upper: ubPair, UpperName: "d+2ε",
			},
		},
	}
}

// AllTables returns Tables I–IV in order.
func AllTables() []Table {
	return []Table{TableI(), TableII(), TableIII(), TableIV()}
}

// Render formats a table for the given parameters, one row per line, with
// both the symbolic formulas and the concrete values. measured optionally
// supplies a measured worst-case latency per row label.
func Render(t Table, p model.Params, x model.Time, measured map[string]model.Time) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table %s — %s\n", roman(t.Number), t.Title)
	fmt.Fprintf(&sb, "  (n=%d d=%s u=%s ε=%s X=%s)\n", p.N, p.D, p.U, p.Epsilon, x)
	fmt.Fprintf(&sb, "  %-18s %-14s %-22s %-18s %s\n",
		"operation", "prev LB", "new LB", "upper bound", "measured")
	for _, r := range t.Rows {
		prev := "-"
		if r.PrevLower != nil {
			prev = fmt.Sprintf("%s %s", r.PrevLower(p), r.PrevLowerRef)
		}
		lower := "-"
		if r.NewLower != nil {
			lower = fmt.Sprintf("%s = %s", r.NewLowerName, r.NewLower(p))
		}
		upper := fmt.Sprintf("%s = %s", r.UpperName, r.Upper(p, x))
		meas := "-"
		if m, ok := measured[r.Label]; ok {
			meas = m.String()
		}
		fmt.Fprintf(&sb, "  %-18s %-14s %-22s %-18s %s\n", r.Label, prev, lower, upper, meas)
	}
	return sb.String()
}

func roman(n int) string {
	switch n {
	case 1:
		return "I"
	case 2:
		return "II"
	case 3:
		return "III"
	case 4:
		return "IV"
	default:
		return fmt.Sprintf("%d", n)
	}
}
