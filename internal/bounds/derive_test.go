package bounds_test

// The derivation engine must reconstruct the paper's hand-written Tables
// I–IV purely from the operation algebra: for every table row, the derived
// lower/upper bound formula names agree with the published ones. This
// closes the loop between Chapter II (classification), Chapters IV–V
// (bounds) and Chapter VI (tables).

import (
	"fmt"
	"testing"

	"timebounds/internal/bounds"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func TestDerivationReconstructsTables(t *testing.T) {
	for _, tbl := range bounds.AllTables() {
		dom := types.DefaultDomain(tbl.Object)
		derived := make(map[spec.OpKind]bounds.Derived)
		for _, d := range bounds.DeriveAll(tbl.Object, dom) {
			derived[d.Kind] = d
		}
		// Documented exception: the thesis's Table IV prints (1-1/n)u for
		// tree delete, but leaf-delete does not satisfy Definition C.5 —
		// two legal delete permutations with different last operations can
		// be equivalent — so only the k=2 bound u/2 is derivable from the
		// algebra. See EXPERIMENTS.md "Deviations".
		exceptions := map[string]string{"4/delete": "u/2"}
		for _, row := range tbl.Rows {
			switch row.Kind {
			case bounds.RowSingle:
				d, ok := derived[row.Ops[0]]
				if !ok {
					t.Errorf("table %d %s: no derivation", tbl.Number, row.Label)
					continue
				}
				wantLB := row.NewLowerName
				if exc, isExc := exceptions[fmt.Sprintf("%d/%s", tbl.Number, row.Label)]; isExc {
					wantLB = exc
				}
				if d.LowerName != wantLB {
					t.Errorf("table %d %s: derived LB %q, published/expected %q",
						tbl.Number, row.Label, d.LowerName, wantLB)
				}
				if d.UpperName != row.UpperName {
					t.Errorf("table %d %s: derived UB %q, published %q",
						tbl.Number, row.Label, d.UpperName, row.UpperName)
				}
			case bounds.RowPair:
				dp := bounds.DerivePair(tbl.Object, row.Ops[0], row.Ops[1], dom)
				if dp.LowerName != row.NewLowerName {
					t.Errorf("table %d %s: derived pair LB %q, published %q",
						tbl.Number, row.Label, dp.LowerName, row.NewLowerName)
				}
			}
		}
	}
}

func TestDerivationExtensionObjects(t *testing.T) {
	// The engine assigns sensible bounds to objects the paper never
	// tabulated.
	pq := types.NewPQueue()
	dom := types.DefaultDomain(pq)
	byKind := make(map[spec.OpKind]bounds.Derived)
	for _, d := range bounds.DeriveAll(pq, dom) {
		byKind[d.Kind] = d
	}
	// delete-min is strongly INSC → d+m, like dequeue/pop.
	if got := byKind[types.OpPQDeleteMin].LowerName; got != "d+min{ε,u,d/3}" {
		t.Errorf("pq-delete-min LB %q", got)
	}
	// insert eventually self-commutes → NO permute bound (contrast
	// push/enqueue).
	if got := byKind[types.OpPQInsert].LowerName; got != "-" {
		t.Errorf("pq-insert LB %q, want none", got)
	}

	d := types.NewDict()
	dDom := types.DefaultDomain(d)
	// put is a non-overwriting mutator that get can order → Theorem E.1.
	pair := bounds.DerivePair(d, types.OpPut, types.OpDictGet, dDom)
	if pair.LowerName != "d+min{ε,u,d/3}" {
		t.Errorf("(put, get) pair LB %q, want d+min{ε,u,d/3}", pair.LowerName)
	}
}

func TestDerivationRegisterPairIsD(t *testing.T) {
	// write overwrites the whole register, so (write, read) keeps the
	// classic d — the distinction Theorem E.1's preamble draws.
	reg := types.NewRegister(0)
	dom := types.DefaultDomain(reg)
	pair := bounds.DerivePair(reg, types.OpWrite, types.OpRead, dom)
	if pair.LowerName != "d" {
		t.Errorf("(write, read) pair LB %q, want d", pair.LowerName)
	}
}

func TestDerivationCommutingPairHasNoBound(t *testing.T) {
	// increment and get on a counter: get distinguishes increments, so
	// they do NOT commute and a bound applies; but set-insert with
	// contains on a *different* element is immediately commuting… use
	// counter increment + size-style accessor on set: insert vs contains
	// of the same element does not commute. Use an actually-commuting
	// pair: set remove + contains over a domain where remove is a no-op.
	set := types.NewSet()
	dom := spec.Domain{
		Prefixes: [][]spec.Invocation{nil}, // empty set: remove is a no-op
		Args: map[spec.OpKind][]spec.Value{
			types.OpRemove:   {1},
			types.OpContains: {2},
		},
	}
	pair := bounds.DerivePair(set, types.OpRemove, types.OpContains, dom)
	if pair.LowerName != "-" {
		t.Errorf("no-op remove vs contains(other) pair LB %q, want -", pair.LowerName)
	}
}

func TestFormatDerived(t *testing.T) {
	reg := types.NewRMWRegister(0)
	dom := types.DefaultDomain(reg)
	d := bounds.DeriveKind(reg, types.OpRMW, dom)
	p := params()
	s := bounds.FormatDerived(d, p, 0)
	if s == "" {
		t.Error("empty format")
	}
}
