package bounds

import (
	"fmt"

	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// Derived is a time-bound assignment for one operation kind, produced
// purely from the operation algebra (no hand-written table): the
// classification determines which theorem applies.
type Derived struct {
	Kind  spec.OpKind
	Class spec.OpClass
	// LowerName names the applicable lower-bound formula ("-" if none of
	// the paper's single-operation theorems applies).
	LowerName string
	// Lower evaluates the lower bound (nil when LowerName is "-").
	Lower func(p model.Params) model.Time
	// UpperName names Algorithm 1's upper-bound formula for the class.
	UpperName string
	// Upper evaluates the upper bound.
	Upper func(p model.Params, x model.Time) model.Time
}

// DeriveKind classifies one operation kind over the search domain and
// assigns the paper's bounds:
//
//   - strongly immediately non-self-commuting → Theorem C.1's
//     d + min{ε,u,d/3};
//   - pure mutator with a k=3 non-self-last-permuting witness → Theorem
//     D.1's (1-1/n)u (the witness family extends with more instances);
//   - pure mutator that is eventually non-self-commuting but lacks a k=3
//     witness → the k=2 specialization (1-1/2)u = u/2;
//   - otherwise no single-operation lower bound from the paper.
//
// The upper bound is Algorithm 1's per-class response time.
func DeriveKind(dt spec.DataType, kind spec.OpKind, dom spec.Domain) Derived {
	d := Derived{Kind: kind, Class: dt.Class(kind), LowerName: "-"}
	switch d.Class {
	case spec.ClassPureMutator:
		d.UpperName = "ε+X"
		d.Upper = func(p model.Params, x model.Time) model.Time { return UpperMutator(p, x) }
	case spec.ClassPureAccessor:
		d.UpperName = "d+ε-X"
		d.Upper = func(p model.Params, x model.Time) model.Time { return UpperAccessor(p, x) }
	default:
		d.UpperName = "d+ε"
		d.Upper = func(p model.Params, _ model.Time) model.Time { return UpperOOP(p) }
	}

	if _, strong := spec.FindStronglyImmediatelyNonSelfCommuting(dt, kind, dom); strong {
		d.LowerName = "d+min{ε,u,d/3}"
		d.Lower = StronglyINSCLower
		return d
	}
	if d.Class != spec.ClassPureMutator {
		// Immediately non-self-commuting but not strongly so (e.g.
		// UpdateNext): Kosa's d bound applies, not Theorem C.1.
		if _, insc := spec.FindImmediatelyNonCommuting(dt, kind, kind, dom); insc {
			d.LowerName = "d"
			d.Lower = func(p model.Params) model.Time { return p.D }
		}
		return d
	}
	if _, ok := spec.FindNonSelfLastPermuting(dt, kind, 3, dom); ok {
		d.LowerName = "(1-1/n)u"
		d.Lower = func(p model.Params) model.Time { return PermuteLower(p.N, p.U) }
		return d
	}
	if _, ok := spec.FindEventuallyNonSelfCommuting(dt, kind, dom); ok {
		d.LowerName = "u/2"
		d.Lower = func(p model.Params) model.Time { return PermuteLower(2, p.U) }
		return d
	}
	return d
}

// DerivedPair is a bound assignment for a (pure mutator, pure accessor)
// pair.
type DerivedPair struct {
	Mutator, Accessor spec.OpKind
	// LowerName names the pair lower bound: Theorem E.1's d+min{ε,u,d/3}
	// when the mutator is non-overwriting (and the pair immediately does
	// not commute), the classic d otherwise, or "-" when the accessor
	// cannot even immediately distinguish the mutator.
	LowerName string
	Lower     func(p model.Params) model.Time
	// UpperName is always Algorithm 1's d+2ε.
	UpperName string
	Upper     func(p model.Params, x model.Time) model.Time
}

// DerivePair assigns the paper's |OP|+|AOP| bounds to a pure-mutator /
// pure-accessor pair from the algebra (Chapter IV.E):
//
//   - the pair must immediately not commute (otherwise no bound applies);
//   - a non-overwriting mutator gets Theorem E.1's d+min{ε,u,d/3};
//   - an overwriting mutator (write) keeps the classic d.
func DerivePair(dt spec.DataType, mop, aop spec.OpKind, dom spec.Domain) DerivedPair {
	out := DerivedPair{
		Mutator: mop, Accessor: aop,
		LowerName: "-",
		UpperName: "d+2ε",
		Upper:     func(p model.Params, _ model.Time) model.Time { return UpperPair(p) },
	}
	if _, nc := spec.FindImmediatelyNonCommuting(dt, mop, aop, dom); !nc {
		return out
	}
	if spec.IsNonOverwriter(dt, mop, dom) {
		out.LowerName = "d+min{ε,u,d/3}"
		out.Lower = PairLowerNonOverwriting
		return out
	}
	out.LowerName = "d"
	out.Lower = PairLowerOverwriting
	return out
}

// DeriveAll derives bounds for every kind of a data type.
func DeriveAll(dt spec.DataType, dom spec.Domain) []Derived {
	kinds := dt.Kinds()
	out := make([]Derived, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, DeriveKind(dt, k, dom))
	}
	return out
}

// FormatDerived renders one derived assignment at concrete parameters.
func FormatDerived(d Derived, p model.Params, x model.Time) string {
	lower := "-"
	if d.Lower != nil {
		lower = fmt.Sprintf("%s = %s", d.LowerName, d.Lower(p))
	}
	return fmt.Sprintf("%-14s %-5s LB %-24s UB %s = %s",
		d.Kind, d.Class, lower, d.UpperName, d.Upper(p, x))
}
