package bounds_test

import (
	"strings"
	"testing"
	"time"

	"timebounds/internal/bounds"
	"timebounds/internal/model"
	"timebounds/internal/spec"
)

func params() model.Params {
	p := model.Params{N: 4, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	p.Epsilon = p.OptimalSkew()
	return p
}

func TestM(t *testing.T) {
	p := params() // ε=3ms, u=4ms, d/3=3.33ms → m=ε=3ms
	if got := bounds.M(p); got != 3*time.Millisecond {
		t.Errorf("m = %s, want 3ms", got)
	}
	p.D = 15 * time.Millisecond
	p.Epsilon = 5 * time.Millisecond // ε=5ms, d/3=5ms, u=4ms → m=u
	if got := bounds.M(p); got != 4*time.Millisecond {
		t.Errorf("m = %s, want u=4ms", got)
	}
	p.D = 9 * time.Millisecond
	p.U = 8 * time.Millisecond
	p.Epsilon = 8 * time.Millisecond // d/3=3ms smallest
	if got := bounds.M(p); got != p.D/3 {
		t.Errorf("m = %s, want d/3=%s", got, p.D/3)
	}
}

func TestFormulaValues(t *testing.T) {
	p := params()
	if got := bounds.StronglyINSCLower(p); got != 13*time.Millisecond {
		t.Errorf("INSC lower = %s, want 13ms", got)
	}
	if got := bounds.PermuteLower(4, p.U); got != 3*time.Millisecond {
		t.Errorf("permute lower = %s, want 3ms", got)
	}
	if got := bounds.PermuteLower(2, p.U); got != 2*time.Millisecond {
		t.Errorf("k=2 permute lower = %s, want u/2 = 2ms", got)
	}
	if bounds.PermuteLower(0, p.U) != 0 {
		t.Error("k=0 should yield 0")
	}
	if got := bounds.PairLowerNonOverwriting(p); got != 13*time.Millisecond {
		t.Errorf("pair lower = %s", got)
	}
	if got := bounds.PairLowerOverwriting(p); got != p.D {
		t.Errorf("overwriting pair lower = %s, want d", got)
	}
	if got := bounds.UpperOOP(p); got != 13*time.Millisecond {
		t.Errorf("OOP upper = %s", got)
	}
	if got := bounds.UpperMutator(p, 2*time.Millisecond); got != 5*time.Millisecond {
		t.Errorf("mutator upper = %s", got)
	}
	if got := bounds.UpperAccessor(p, 2*time.Millisecond); got != 11*time.Millisecond {
		t.Errorf("accessor upper = %s", got)
	}
	if got := bounds.UpperPair(p); got != 16*time.Millisecond {
		t.Errorf("pair upper = %s", got)
	}
	if got := bounds.CentralizedUpper(p); got != 20*time.Millisecond {
		t.Errorf("centralized upper = %s", got)
	}
}

func TestTightness(t *testing.T) {
	p := params()
	if !bounds.TightINSC(p) {
		t.Error("ε ≤ u and ε ≤ d/3 should be tight")
	}
	loose := p
	loose.Epsilon = p.D/3 + 1
	if bounds.TightINSC(loose) {
		t.Error("ε > d/3 should not be tight")
	}
	if !bounds.TightMutator(p, 0) {
		t.Error("X=0 at optimal ε should be tight")
	}
	if bounds.TightMutator(p, 1) {
		t.Error("X>0 should not be tight")
	}
}

func TestUpperAtLeastLowerEverywhere(t *testing.T) {
	// Internal consistency: for every table row and a grid of parameter
	// points, UB ≥ LB (otherwise the formulas contradict each other).
	grid := []model.Params{}
	for _, n := range []int{2, 3, 4, 8} {
		for _, u := range []model.Time{time.Millisecond, 4 * time.Millisecond, 9 * time.Millisecond} {
			p := model.Params{N: n, D: 10 * time.Millisecond, U: u}
			p.Epsilon = p.OptimalSkew()
			grid = append(grid, p)
		}
	}
	for _, tbl := range bounds.AllTables() {
		for _, row := range tbl.Rows {
			if row.NewLower == nil {
				continue
			}
			for _, p := range grid {
				lb := row.NewLower(p)
				ub := row.Upper(p, 0)
				if ub < lb {
					t.Errorf("table %d %s at n=%d u=%s: UB %s < LB %s",
						tbl.Number, row.Label, p.N, p.U, ub, lb)
				}
				if row.PrevLower != nil && row.PrevLower(p) > lb {
					t.Errorf("table %d %s at n=%d u=%s: paper's new LB %s below previous LB %s",
						tbl.Number, row.Label, p.N, p.U, lb, row.PrevLower(p))
				}
			}
		}
	}
}

func TestTablesWellFormed(t *testing.T) {
	tables := bounds.AllTables()
	if len(tables) != 4 {
		t.Fatalf("want 4 tables, got %d", len(tables))
	}
	for i, tbl := range tables {
		if tbl.Number != i+1 {
			t.Errorf("table %d numbered %d", i+1, tbl.Number)
		}
		if tbl.Object == nil {
			t.Errorf("table %d has no object", tbl.Number)
		}
		kinds := make(map[spec.OpKind]bool)
		for _, k := range tbl.Object.Kinds() {
			kinds[k] = true
		}
		for _, row := range tbl.Rows {
			wantOps := 1
			if row.Kind == bounds.RowPair {
				wantOps = 2
			}
			if len(row.Ops) != wantOps {
				t.Errorf("table %d %s: %d ops, want %d", tbl.Number, row.Label, len(row.Ops), wantOps)
			}
			for _, op := range row.Ops {
				if !kinds[op] {
					t.Errorf("table %d %s: op %q not on object %s", tbl.Number, row.Label, op, tbl.Object.Name())
				}
			}
			if row.Upper == nil {
				t.Errorf("table %d %s: missing upper bound", tbl.Number, row.Label)
			}
		}
	}
}

func TestRenderIncludesMeasured(t *testing.T) {
	p := params()
	out := bounds.Render(bounds.TableI(), p, 0, map[string]model.Time{
		"write": 3 * time.Millisecond,
	})
	if !strings.Contains(out, "Table I") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "3ms") {
		t.Error("missing measured value")
	}
	if !strings.Contains(out, "(1-1/n)u") {
		t.Error("missing formula name")
	}
}
