// Package bounds encodes the paper's time-bound formulas (Chapters IV–V)
// and the per-object summaries of Chapter VI (Tables I–IV), so the tables
// can be regenerated — including the measured column — by cmd/tbtables and
// the benchmarks.
package bounds

import (
	"timebounds/internal/model"
)

// M returns m = min{ε, u, d/3}, the recurring lower-bound term of
// Theorems C.1 and E.1.
func M(p model.Params) model.Time {
	return model.MinOf3(p.Epsilon, p.U, p.D/3)
}

// StronglyINSCLower returns the Theorem C.1 lower bound d + min{ε, u, d/3}
// for strongly immediately non-self-commuting operations (read-modify-
// write, dequeue, pop) in systems of n ≥ 3 processes.
func StronglyINSCLower(p model.Params) model.Time { return p.D + M(p) }

// PermuteLower returns the Theorem D.1 lower bound (1-1/k)·u for operation
// types with k pairwise non-equivalent-permutation instances. For
// eventually non-self-last-permuting types (write, enqueue, push) k = n.
func PermuteLower(k int, u model.Time) model.Time {
	if k <= 0 {
		return 0
	}
	return model.Time(int64(u) * int64(k-1) / int64(k))
}

// PairLowerNonOverwriting returns the Theorem E.1 lower bound
// d + min{ε, u, d/3} on |OP| + |AOP| for an immediately self-commuting,
// eventually non-self-commuting, non-overwriting pure mutator OP and a pure
// accessor AOP that immediately do not commute (push+peek, enqueue+peek,
// insert+depth).
func PairLowerNonOverwriting(p model.Params) model.Time { return p.D + M(p) }

// PairLowerOverwriting returns the lower bound d on |OP| + |AOP| when OP
// overwrites the whole state (write + read), from Lipton–Sandberg / Kosa.
func PairLowerOverwriting(p model.Params) model.Time { return p.D }

// Upper bounds achieved by Algorithm 1 (Chapter V.D), parameterized by X.

// UpperOOP returns the d+ε upper bound for OOP operations (Theorem D.2).
func UpperOOP(p model.Params) model.Time { return p.D + p.Epsilon }

// UpperMutator returns the ε+X response time of pure mutators.
func UpperMutator(p model.Params, x model.Time) model.Time { return p.Epsilon + x }

// UpperAccessor returns the d+ε-X response time of pure accessors.
func UpperAccessor(p model.Params, x model.Time) model.Time { return p.D + p.Epsilon - x }

// UpperPair returns |mop| + |aop| = d + 2ε (Theorem D.1 of Chapter V.D —
// independent of X).
func UpperPair(p model.Params) model.Time { return p.D + 2*p.Epsilon }

// CentralizedUpper returns the 2d worst case of the centralized baseline.
func CentralizedUpper(p model.Params) model.Time { return 2 * p.D }

// TightINSC reports whether the Theorem C.1 bound is tight under p:
// ε ≤ u and ε ≤ d/3 make d+ε meet d+min{ε,u,d/3}.
func TightINSC(p model.Params) bool {
	return p.Epsilon <= p.U && p.Epsilon <= p.D/3
}

// TightMutator reports whether the pure-mutator bound is tight: with
// optimal ε = (1-1/n)u and X = 0, the ε response time equals the
// (1-1/n)u lower bound.
func TightMutator(p model.Params, x model.Time) bool {
	return x == 0 && p.Epsilon == p.OptimalSkew()
}
