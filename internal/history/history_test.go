package history_test

import (
	"strings"
	"testing"
	"time"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/types"
)

const ms = model.Time(time.Millisecond)

func TestInvokeRespondLifecycle(t *testing.T) {
	h := history.New()
	id := h.Invoke(0, types.OpWrite, 1, 2*ms)
	if h.Complete() || h.PendingCount() != 1 {
		t.Error("freshly invoked op should be pending")
	}
	if err := h.Respond(id, nil, 5*ms); err != nil {
		t.Fatalf("Respond: %v", err)
	}
	if !h.Complete() || h.Len() != 1 {
		t.Error("history should be complete")
	}
	op := h.Ops()[0]
	if op.Latency() != 3*ms {
		t.Errorf("latency %s, want 3ms", op.Latency())
	}
	if op.Pending {
		t.Error("op still marked pending")
	}
}

func TestPendingLatencyIsInfinite(t *testing.T) {
	h := history.New()
	h.Invoke(1, types.OpRead, nil, 0)
	op := h.Ops()[0]
	if op.Latency() != model.Infinity {
		t.Errorf("pending latency %s, want Infinity", op.Latency())
	}
	if !strings.Contains(op.String(), "pending") {
		t.Errorf("pending op string %q", op.String())
	}
}

func TestOpsSortedByInvocation(t *testing.T) {
	h := history.New()
	a := h.Invoke(0, types.OpWrite, 1, 9*ms)
	b := h.Invoke(1, types.OpWrite, 2, 3*ms)
	_ = h.Respond(a, nil, 10*ms)
	_ = h.Respond(b, nil, 4*ms)
	ops := h.Ops()
	if ops[0].ID != b || ops[1].ID != a {
		t.Errorf("ops not sorted by invocation: %v", ops)
	}
}

func TestMaxLatencyPerKind(t *testing.T) {
	h := history.New()
	w := h.Invoke(0, types.OpWrite, 1, 0)
	_ = h.Respond(w, nil, 3*ms)
	r := h.Invoke(1, types.OpRead, nil, 0)
	_ = h.Respond(r, 1, 13*ms)
	if got, ok := h.MaxLatency(types.OpWrite); !ok || got != 3*ms {
		t.Errorf("write max %s ok=%v", got, ok)
	}
	if got, ok := h.MaxLatency(""); !ok || got != 13*ms {
		t.Errorf("overall max %s ok=%v", got, ok)
	}
	if _, ok := h.MaxLatency(types.OpDequeue); ok {
		t.Error("absent kind should report !ok")
	}
	pendingOnly := history.New()
	pendingOnly.Invoke(0, types.OpRead, nil, 0)
	if _, ok := pendingOnly.MaxLatency(""); ok {
		t.Error("pending-only history should report !ok")
	}
}

func TestStringListsAllOps(t *testing.T) {
	h := history.New()
	a := h.Invoke(0, types.OpWrite, 7, 0)
	_ = h.Respond(a, nil, ms)
	h.Invoke(1, types.OpRead, nil, 2*ms)
	s := h.String()
	if !strings.Contains(s, "write(7)") || !strings.Contains(s, "pending") {
		t.Errorf("history string missing entries:\n%s", s)
	}
}
