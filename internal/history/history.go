// Package history records operation invocations and responses observed at
// the application layer of a run (Chapter III.A), in real time. Histories
// are the input to the linearizability checker (internal/check) and the
// latency harness (internal/workload).
package history

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// OpID identifies an operation within one history.
type OpID int

// Record is one operation execution: an invocation and, unless the
// operation is still pending, a matching response.
type Record struct {
	ID   OpID
	Proc model.ProcessID
	Kind spec.OpKind
	Arg  spec.Value
	// Ret is the response value; meaningless while Pending.
	Ret spec.Value
	// Invoke is the real time of the invocation.
	Invoke model.Time
	// Arrival is the real time the operation was offered to the process.
	// It equals Invoke unless the invocation was deferred behind a still-
	// pending operation (the one-pending-operation-per-process rule), in
	// which case Arrival is the original offered instant and Invoke the
	// later actual invocation. Sojourn measures from Arrival; the
	// linearizability checker and the class bounds measure from Invoke.
	Arrival model.Time
	// Respond is the real time of the response; meaningless while Pending.
	Respond model.Time
	// Pending is true if no response has been recorded.
	Pending bool
}

// Latency returns the operation's response time (Respond - Invoke): the
// service latency the paper's per-class bounds constrain.
func (r Record) Latency() model.Time {
	if r.Pending {
		return model.Infinity
	}
	return r.Respond - r.Invoke
}

// Sojourn returns the operation's arrival-to-response time
// (Respond - Arrival): service latency plus any wait spent deferred behind
// the process's previous operation. Under open-loop (offered-rate) traffic
// this is the queueing-theoretic sojourn time — the quantity that detaches
// from the service bounds as offered load saturates a process.
func (r Record) Sojourn() model.Time {
	if r.Pending {
		return model.Infinity
	}
	return r.Respond - r.Arrival
}

// Wait returns the time the operation spent deferred before invocation
// (Invoke - Arrival); zero for operations invoked at their offered instant.
func (r Record) Wait() model.Time { return r.Invoke - r.Arrival }

// String implements fmt.Stringer.
func (r Record) String() string {
	if r.Pending {
		return fmt.Sprintf("#%d %s %s(%v) @%s pending", r.ID, r.Proc, r.Kind, r.Arg, r.Invoke)
	}
	return fmt.Sprintf("#%d %s %s(%v)→%v [%s,%s]",
		r.ID, r.Proc, r.Kind, r.Arg, r.Ret, r.Invoke, r.Respond)
}

// History is a set of operation records collected from one run.
type History struct {
	ops    []Record
	nextID OpID
}

// New returns an empty history.
func New() *History { return &History{} }

// Invoke records a new invocation (offered and invoked at the same
// instant) and returns its id.
func (h *History) Invoke(proc model.ProcessID, kind spec.OpKind, arg spec.Value, at model.Time) OpID {
	return h.InvokeArrived(proc, kind, arg, at, at)
}

// InvokeArrived records an invocation that was offered at arrival but
// actually invoked at the (no earlier) time at — the deferred-invocation
// shape the simulator produces when an open-loop arrival lands while the
// process's previous operation is still pending.
func (h *History) InvokeArrived(proc model.ProcessID, kind spec.OpKind, arg spec.Value, at, arrival model.Time) OpID {
	if arrival > at {
		arrival = at
	}
	id := h.nextID
	h.nextID++
	h.ops = append(h.ops, Record{
		ID: id, Proc: proc, Kind: kind, Arg: arg, Invoke: at, Arrival: arrival, Pending: true,
	})
	return id
}

// Respond records the response of a previously invoked operation.
func (h *History) Respond(id OpID, ret spec.Value, at model.Time) error {
	// Ids are assigned densely in invocation order, so the record for id
	// lives at index id — the scan below only backs up the invariant.
	if i := int(id); i >= 0 && i < len(h.ops) && h.ops[i].ID == id {
		return h.respondAt(i, ret, at)
	}
	for i := range h.ops {
		if h.ops[i].ID != id {
			continue
		}
		return h.respondAt(i, ret, at)
	}
	return fmt.Errorf("history: response for unknown op #%d", id)
}

func (h *History) respondAt(i int, ret spec.Value, at model.Time) error {
	if !h.ops[i].Pending {
		return fmt.Errorf("history: duplicate response for op #%d", h.ops[i].ID)
	}
	if at < h.ops[i].Invoke {
		return fmt.Errorf("history: response at %s before invocation at %s", at, h.ops[i].Invoke)
	}
	h.ops[i].Pending = false
	h.ops[i].Ret = ret
	h.ops[i].Respond = at
	return nil
}

// Ops returns a copy of the records, sorted by invocation time then id.
func (h *History) Ops() []Record {
	return h.AppendOps(nil)
}

// AppendOps appends the records, sorted by invocation time then id, to
// dst and returns the extended slice. Passing a reused buffer (dst[:0])
// makes the copy allocation-free once the buffer has grown to the
// history size — the checker's arena path (internal/check.Arena).
func (h *History) AppendOps(dst []Record) []Record {
	base := len(dst)
	dst = append(dst, h.ops...)
	out := dst[base:]
	slices.SortFunc(out, func(a, b Record) int {
		if a.Invoke != b.Invoke {
			return cmp.Compare(a.Invoke, b.Invoke)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return dst
}

// Grow reserves capacity for n additional records, so a run whose
// operation count is known up front (a scheduled workload) appends its
// records without incremental reallocation.
func (h *History) Grow(n int) {
	if n <= 0 {
		return
	}
	h.ops = slices.Grow(h.ops, n)
}

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// PendingCount returns the number of operations without a response.
func (h *History) PendingCount() int {
	n := 0
	for _, op := range h.ops {
		if op.Pending {
			n++
		}
	}
	return n
}

// Complete reports whether every invocation has a matching response.
func (h *History) Complete() bool { return h.PendingCount() == 0 }

// Completed reports whether the operation has a recorded response.
// Unknown ids report false.
func (h *History) Completed(id OpID) bool {
	if i := int(id); i >= 0 && i < len(h.ops) && h.ops[i].ID == id {
		return !h.ops[i].Pending
	}
	for i := range h.ops {
		if h.ops[i].ID == id {
			return !h.ops[i].Pending
		}
	}
	return false
}

// MaxLatency returns the largest completed-operation latency for the given
// kind ("" means all kinds) and whether any such operation exists.
func (h *History) MaxLatency(kind spec.OpKind) (model.Time, bool) {
	var maxL model.Time
	found := false
	for _, op := range h.ops {
		if op.Pending || (kind != "" && op.Kind != kind) {
			continue
		}
		if l := op.Latency(); !found || l > maxL {
			maxL = l
		}
		found = true
	}
	return maxL, found
}

// String implements fmt.Stringer.
func (h *History) String() string {
	ops := h.Ops()
	lines := make([]string, len(ops))
	for i, op := range ops {
		lines[i] = op.String()
	}
	return strings.Join(lines, "\n")
}
