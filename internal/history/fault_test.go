package history_test

// Crash-shaped history semantics: operations orphaned by a crashed
// replica stay pending forever, deferred invocations keep their offered
// (Arrival) instant, and the duplicate-response guard that fault
// injection leans on (History.Completed) answers correctly at every
// lifecycle stage.

import (
	"testing"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/types"
)

func TestCrashOrphanedOpStaysPendingForever(t *testing.T) {
	// A crash strands the in-flight operation: no response ever arrives,
	// so Latency and Sojourn are infinite and the history never completes.
	h := history.New()
	id := h.Invoke(0, types.OpWrite, 1, 2*ms)
	_ = id
	done := h.Invoke(1, types.OpRead, nil, 3*ms)
	if err := h.Respond(done, 0, 5*ms); err != nil {
		t.Fatalf("Respond: %v", err)
	}
	if h.Complete() {
		t.Fatal("history with a crash-orphaned op must not be complete")
	}
	if got := h.PendingCount(); got != 1 {
		t.Fatalf("PendingCount = %d, want 1", got)
	}
	for _, op := range h.Ops() {
		if op.ID == id {
			if op.Latency() != model.Infinity {
				t.Errorf("orphaned op latency %s, want infinity", op.Latency())
			}
			if op.Sojourn() != model.Infinity {
				t.Errorf("orphaned op sojourn %s, want infinity", op.Sojourn())
			}
		}
	}
	// MaxLatency skips the orphan: only completed operations are measured
	// against the class bounds.
	if max, ok := h.MaxLatency(""); !ok || max != 2*ms {
		t.Errorf("MaxLatency = %s,%v, want 2ms,true", max, ok)
	}
}

func TestCrashDeferredInvocationKeepsArrival(t *testing.T) {
	// An operation offered while its process's previous one was stranded
	// behind a crash window invokes late: Arrival stays the offered
	// instant, Invoke the actual one. The class bounds (Latency) measure
	// from Invoke; the sojourn — what the client experienced — from
	// Arrival. The crash's queueing cost is exactly Wait.
	h := history.New()
	id := h.InvokeArrived(0, types.OpWrite, 7, 9*ms, 4*ms)
	if err := h.Respond(id, nil, 12*ms); err != nil {
		t.Fatalf("Respond: %v", err)
	}
	op := h.Ops()[0]
	if op.Arrival != 4*ms || op.Invoke != 9*ms {
		t.Fatalf("arrival/invoke = %s/%s, want 4ms/9ms", op.Arrival, op.Invoke)
	}
	if op.Wait() != 5*ms {
		t.Errorf("wait %s, want 5ms", op.Wait())
	}
	if op.Latency() != 3*ms {
		t.Errorf("latency %s, want 3ms (measured from the actual invocation)", op.Latency())
	}
	if op.Sojourn() != 8*ms {
		t.Errorf("sojourn %s, want 8ms (measured from the offered instant)", op.Sojourn())
	}

	// An arrival claimed after the invocation is clamped: invocations
	// cannot precede their offer.
	h2 := history.New()
	id = h2.InvokeArrived(0, types.OpWrite, 7, 3*ms, 6*ms)
	if op := h2.Ops()[0]; op.Arrival != 3*ms || op.Wait() != 0 {
		t.Errorf("clamped arrival/wait = %s/%s, want 3ms/0s", op.Arrival, op.Wait())
	}
	_ = id
}

func TestCompletedTracksResponses(t *testing.T) {
	// Completed is the duplicate-response guard the simulator consults
	// under fault injection: false while pending, true once responded,
	// false for ids the history never issued.
	h := history.New()
	id := h.Invoke(0, types.OpWrite, 1, 1*ms)
	if h.Completed(id) {
		t.Error("pending op reported completed")
	}
	if err := h.Respond(id, nil, 2*ms); err != nil {
		t.Fatalf("Respond: %v", err)
	}
	if !h.Completed(id) {
		t.Error("responded op reported pending")
	}
	if h.Completed(id + 1) {
		t.Error("unknown op reported completed")
	}
	if h.Completed(-1) {
		t.Error("negative op id reported completed")
	}
	// The duplicate itself still errors — dropping it is the simulator's
	// policy decision, not the history's.
	if err := h.Respond(id, nil, 3*ms); err == nil {
		t.Error("duplicate response should error at the history layer")
	}
}
