package experiments

import (
	"testing"

	"timebounds/internal/bounds"
	"timebounds/internal/model"
	"timebounds/internal/types"
)

func TestMeasureTableIWorstCaseMatchesFormulas(t *testing.T) {
	p := DefaultParams(4)
	measured, rep, err := MeasureTable(bounds.TableI(), p, MeasureOptions{
		Seed: 1, WorstCaseDelays: true, OpsPerProcess: 8,
	})
	if err != nil {
		t.Fatalf("MeasureTable: %v", err)
	}
	if got, want := measured["write"], p.Epsilon; got != want {
		t.Errorf("write worst case %s, want ε = %s", got, want)
	}
	if got, want := measured["read"], p.D+p.Epsilon; got != want {
		t.Errorf("read worst case %s, want d+ε = %s", got, want)
	}
	if got := measured["read-modify-write"]; got > p.D+p.Epsilon {
		t.Errorf("rmw worst case %s exceeds d+ε = %s", got, p.D+p.Epsilon)
	}
	if got, want := measured["write + read"], p.D+2*p.Epsilon; got != want {
		t.Errorf("write+read %s, want d+2ε = %s", got, want)
	}
	if rep.History.Len() == 0 {
		t.Error("empty history")
	}
}

func TestMeasureAllTablesComplete(t *testing.T) {
	p := DefaultParams(3)
	for _, tbl := range bounds.AllTables() {
		measured, _, err := MeasureTable(tbl, p, MeasureOptions{Seed: 2, OpsPerProcess: 6})
		if err != nil {
			t.Fatalf("table %d: %v", tbl.Number, err)
		}
		for _, row := range tbl.Rows {
			if _, ok := measured[row.Label]; !ok {
				t.Errorf("table %d: no measurement for %q", tbl.Number, row.Label)
			}
		}
	}
}

func TestMeasuredRespectsBoundsOnAllTables(t *testing.T) {
	// Every measured single-op worst case must lie within
	// [new lower bound, upper bound] — the paper's central claim.
	p := DefaultParams(4)
	for _, tbl := range bounds.AllTables() {
		measured, _, err := MeasureTable(tbl, p, MeasureOptions{
			Seed: 3, WorstCaseDelays: true, OpsPerProcess: 8,
		})
		if err != nil {
			t.Fatalf("table %d: %v", tbl.Number, err)
		}
		for _, row := range tbl.Rows {
			got := measured[row.Label]
			if upper := row.Upper(p, 0); got > upper {
				t.Errorf("table %d %s: measured %s exceeds upper bound %s",
					tbl.Number, row.Label, got, upper)
			}
			if row.Kind != bounds.RowSingle || row.NewLower == nil {
				continue
			}
			if lower := row.NewLower(p); got < lower {
				t.Errorf("table %d %s: measured worst case %s below lower bound %s",
					tbl.Number, row.Label, got, lower)
			}
		}
	}
}

func TestXSweepTradeoffShape(t *testing.T) {
	p := DefaultParams(4)
	pts, err := XSweep(p, 5, 4)
	if err != nil {
		t.Fatalf("XSweep: %v", err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Mutator <= pts[i-1].Mutator {
			t.Errorf("mutator latency should increase with X: %v then %v", pts[i-1], pts[i])
		}
		if pts[i].Accessor >= pts[i-1].Accessor {
			t.Errorf("accessor latency should decrease with X: %v then %v", pts[i-1], pts[i])
		}
	}
	for _, pt := range pts {
		if pt.Pair != p.D+2*p.Epsilon {
			t.Errorf("X=%s: pair %s, want constant d+2ε = %s", pt.X, pt.Pair, p.D+2*p.Epsilon)
		}
	}
}

func TestNSweepTightness(t *testing.T) {
	pts, err := NSweep(10_000_000, 4_000_000, 6, 5)
	if err != nil {
		t.Fatalf("NSweep: %v", err)
	}
	for _, pt := range pts {
		if pt.MeasuredMutator != pt.OptimalSkew {
			t.Errorf("n=%d: measured mutator %s, want (1-1/n)u = %s",
				pt.N, pt.MeasuredMutator, pt.OptimalSkew)
		}
		if pt.MutatorBound != pt.OptimalSkew {
			t.Errorf("n=%d: bound mismatch %s vs %s", pt.N, pt.MutatorBound, pt.OptimalSkew)
		}
	}
}

func TestCompareBaselinesShape(t *testing.T) {
	// The paper's headline: Algorithm 1 beats the folklore implementations
	// on pure mutators (ε+X ≪ d+ε and ≪ 2d) and accessors, while OOP ops
	// match the all-OOP path.
	p := DefaultParams(4)
	cmp, err := CompareBaselines(p, 0, 6, 8)
	if err != nil {
		t.Fatalf("CompareBaselines: %v", err)
	}
	fastWrite := cmp.Fast[types.OpWrite].Max
	oopWrite := cmp.AllOOP[types.OpWrite].Max
	if fastWrite >= oopWrite {
		t.Errorf("fast write %s should beat all-OOP write %s", fastWrite, oopWrite)
	}
	centWorst := cmp.Centralized[types.OpWrite].Max
	if c := cmp.Centralized[types.OpRead].Max; c > centWorst {
		centWorst = c
	}
	if centWorst > 2*p.D {
		t.Errorf("centralized worst %s exceeds 2d", centWorst)
	}
	if fastWrite >= 2*p.D {
		t.Errorf("fast write %s should be well below 2d = %s", fastWrite, 2*p.D)
	}
	if got := cmp.Fast[types.OpRMW].Max; got > p.D+p.Epsilon {
		t.Errorf("fast rmw %s exceeds d+ε", got)
	}
}

func TestMeasureTableVerifySmall(t *testing.T) {
	// Small verified workloads confirm linearizability end-to-end under
	// random delays and max skew.
	p := DefaultParams(3)
	for _, tbl := range []bounds.Table{bounds.TableI(), bounds.TableII()} {
		_, rep, err := MeasureTable(tbl, p, MeasureOptions{
			Seed: 7, OpsPerProcess: 3, Verify: true,
		})
		if err != nil {
			t.Fatalf("table %d: %v", tbl.Number, err)
		}
		if !rep.Checked || !rep.Linearizable {
			t.Errorf("table %d: verified workload not linearizable", tbl.Number)
		}
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(4)
	if p.Epsilon != model.Time(3_000_000) {
		t.Errorf("ε = %s, want 3ms (=(1-1/4)·4ms)", p.Epsilon)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestOOPGapSweepSitsBetweenTheCurves(t *testing.T) {
	// The gap experiment (E15): across u, the measured OOP latency and the
	// engine-run adversary witness both lie between Theorem C.1's lower
	// bound and Algorithm 1's d+ε upper bound; the curves coincide (gap 0)
	// exactly while ε = (1-1/n)u stays within min{u, d/3}.
	d := model.Time(10_000_000)
	us := []model.Time{1_000_000, 2_000_000, 4_000_000, 6_000_000, 8_000_000}
	pts, err := OOPGapSweep(3, d, us, 1)
	if err != nil {
		t.Fatalf("OOPGapSweep: %v", err)
	}
	if len(pts) != len(us) {
		t.Fatalf("got %d points, want %d", len(pts), len(us))
	}
	for _, g := range pts {
		if g.Lower > g.Upper {
			t.Errorf("u=%s: lower %s above upper %s", g.U, g.Lower, g.Upper)
		}
		if g.Measured < g.Lower || g.Measured > g.Upper {
			t.Errorf("u=%s: measured %s outside [%s, %s]", g.U, g.Measured, g.Lower, g.Upper)
		}
		if g.Witness < g.Lower || g.Witness > g.Upper {
			t.Errorf("u=%s: witness %s outside [%s, %s]", g.U, g.Witness, g.Lower, g.Upper)
		}
		tight := g.Epsilon <= g.U && g.Epsilon <= d/3
		if tight && g.Gap() != 0 {
			t.Errorf("u=%s: expected tight bounds, gap %s", g.U, g.Gap())
		}
		if !tight && g.Gap() <= 0 {
			t.Errorf("u=%s: expected a positive gap, got %s", g.U, g.Gap())
		}
	}
}
