package experiments

import (
	"context"
	"fmt"
	"strings"

	"timebounds/internal/bounds"
	"timebounds/internal/engine"
	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// LoadSweepOptions configures a saturation/queueing study (the ROADMAP's
// latency-vs-offered-load experiment): one backend × object template
// driven open-loop across an offered-rate axis, each point folded online
// (constant memory) with a knee search on top.
type LoadSweepOptions struct {
	// Backend is the implementation under load; nil means Algorithm 1.
	Backend engine.Backend
	// Object is the replicated data type; nil means the rmw register.
	Object spec.DataType
	// Params are the model timing parameters.
	Params model.Params
	// X is Algorithm 1's tradeoff parameter.
	X model.Time
	// Seed drives workloads and random delays.
	Seed int64
	// Loads is the explicit offered-load axis (aggregate ops/sec); empty
	// means Ramp.
	Loads []float64
	// Ramp generates a geometric axis when Loads is empty. With From and
	// To unset, the span defaults to 0.1×–10× the nominal aggregate
	// service rate n/(2d) — the one place that formula lives — over
	// Ramp.Points points (8 when that is unset too).
	Ramp engine.LoadRamp
	// OpsPerPoint sizes each point (ops per process; default 50).
	OpsPerPoint int
	// Workers caps engine parallelism (≤0 = all cores).
	Workers int
	// OnPoint observes each measured point in completion order — the
	// progress hook cmd/tbsweep uses.
	OnPoint func(engine.StudyPoint)
}

// LoadSweep runs the saturation study and returns its report. Worst-case
// delays make the service-time ceiling deterministic, so the detachment
// point is a property of the backend, not of delay luck.
func LoadSweep(ctx context.Context, opt LoadSweepOptions) (engine.StudyReport, error) {
	backend := opt.Backend
	if backend == nil {
		backend = engine.Algorithm1{}
	}
	object := opt.Object
	if object == nil {
		object = defaultLoadObject()
	}
	ramp := opt.Ramp
	if len(opt.Loads) == 0 && ramp.From == 0 && ramp.To == 0 {
		// Default axis: span well below to well above the nominal
		// aggregate service rate n/(2d) (every process serving ~2d-cost
		// operations back to back).
		nominal := float64(opt.Params.N) * 1e9 / float64(2*opt.Params.D)
		points := ramp.Points
		if points == 0 {
			points = 8
		}
		ramp = engine.LoadRamp{From: nominal / 10, To: nominal * 10, Points: points}
	}
	study := engine.Study{
		Base: engine.Scenario{
			Backend:  backend,
			DataType: object,
			Params:   opt.Params,
			X:        opt.X,
			Seed:     opt.Seed,
			Delay:    engine.DelaySpec{Mode: engine.DelayWorst},
		},
		Loads:       opt.Loads,
		Ramp:        ramp,
		OpsPerPoint: opt.OpsPerPoint,
		OnPoint:     opt.OnPoint,
	}
	return study.Run(ctx, engine.New(opt.Workers))
}

func defaultLoadObject() spec.DataType {
	return bounds.TableI().Object
}

// LoadSweepCSV renders a study report as CSV: one row per measured point
// and operation class with the sojourn percentiles, the class's service
// bound, the bound margin (bound − p99 sojourn; negative once detached),
// utilization, and a knee marker on the detected knee point.
func LoadSweepCSV(rep engine.StudyReport) string {
	var b strings.Builder
	b.WriteString("load_ops_per_sec,class,count,p50_ns,p99_ns,bound_ns,margin_ns,utilization,knee\n")
	for _, pt := range rep.Points {
		knee := ""
		if rep.Knee != nil && pt.Load == rep.Knee.Load {
			knee = "knee"
		}
		for _, cl := range pt.PerClass {
			fmt.Fprintf(&b, "%.3f,%s,%d,%d,%d,%d,%d,%.4f,%s\n",
				pt.Load, cl.Class, cl.Count, int64(cl.P50), int64(cl.P99),
				int64(cl.Bound), int64(cl.Bound-cl.P99), pt.Utilization, knee)
		}
	}
	return b.String()
}
