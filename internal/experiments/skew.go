package experiments

import (
	"context"
	"fmt"
	"strings"

	"timebounds/internal/engine"
	"timebounds/internal/keyspace"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// SkewSweepOptions configures the skew study: how the saturation knee of a
// sharded keyed store moves as the workload's Zipf exponent grows. Under a
// range partition a hotter head piles traffic onto one shard, so the
// store's effective capacity is the hottest shard's — the knee load falls
// as the exponent rises, which is exactly the planet-scale argument for
// live rebalancing (keyspace.SplitHot).
type SkewSweepOptions struct {
	// Backend is the implementation under load; nil means Algorithm 1.
	Backend engine.Backend
	// Params are the model timing parameters.
	Params model.Params
	// X is Algorithm 1's tradeoff parameter.
	X model.Time
	// Seed drives workload generation and per-shard delay draws.
	Seed int64
	// Space is the key universe; a zero value means 100 000 keys.
	Space keyspace.Space
	// Shards is the range-partition size (default 8).
	Shards int
	// Exponents is the Zipf-exponent axis (each > 1); empty means
	// {1.01, 1.2, 1.5, 2.0}.
	Exponents []float64
	// Loads is the per-exponent offered-load axis in aggregate ops/sec,
	// ascending; empty spans 0.5×–8× the nominal aggregate service rate
	// n/(2d) over 5 points.
	Loads []float64
	// OpsPerPoint is the operations streamed per measured point
	// (default 300).
	OpsPerPoint int
	// KneeFactor is the detachment threshold K: a point saturates when
	// some shard's per-kind p99 sojourn ≥ K × that class's service bound
	// (default 2).
	KneeFactor float64
	// Workers caps engine parallelism (≤0 = all cores).
	Workers int
	// OnPoint observes each measured point in completion order.
	OnPoint func(SkewCell)
}

// SkewCell is one measured (exponent, load) cell.
type SkewCell struct {
	// Exponent is the Zipf exponent; Load the aggregate offered ops/sec.
	Exponent float64
	Load     float64
	// Ops counts completed client operations; Imbalance and Hottest come
	// from the sharded report's skew stats.
	Ops       int
	Imbalance float64
	Hottest   int
	// WorstP99 is the largest per-shard per-kind p99 sojourn, Bound the
	// service bound of the class that came closest to (or past)
	// detachment.
	WorstP99 model.Time
	Bound    model.Time
	// Saturated reports WorstP99 ≥ K × Bound.
	Saturated bool
}

// SkewKnee is one exponent's located knee.
type SkewKnee struct {
	Exponent float64
	// Found reports whether the axis saturated; Load is the lowest
	// saturated load (0 when not Found) and Imbalance the skew measured
	// there.
	Found     bool
	Load      float64
	Imbalance float64
}

// SkewReport is the outcome of a skew sweep.
type SkewReport struct {
	// Points holds every measured cell, exponent-major then ascending
	// load.
	Points []SkewCell
	// Knees holds one entry per exponent, in axis order.
	Knees []SkewKnee
}

// SkewSweep measures the knee-load-vs-exponent surface. Every point is a
// full sharded engine run (streamed Zipf schedule, range partition), so
// the result is deterministic in (options, seed) at any worker count.
func SkewSweep(ctx context.Context, opt SkewSweepOptions) (SkewReport, error) {
	backend := opt.Backend
	if backend == nil {
		backend = engine.Algorithm1{}
	}
	space := opt.Space
	if space.N == 0 {
		space.N = 100_000
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = 8
	}
	exponents := opt.Exponents
	if len(exponents) == 0 {
		exponents = []float64{1.01, 1.2, 1.5, 2.0}
	}
	loads := opt.Loads
	if len(loads) == 0 {
		nominal := float64(opt.Params.N) * 1e9 / float64(2*opt.Params.D)
		loads = []float64{nominal / 2, nominal, nominal * 2, nominal * 4, nominal * 8}
	}
	ops := opt.OpsPerPoint
	if ops <= 0 {
		ops = 300
	}
	kneeFactor := opt.KneeFactor
	if kneeFactor == 0 {
		kneeFactor = 2
	}
	if kneeFactor <= 1 {
		return SkewReport{}, fmt.Errorf("experiments: skew knee factor %g must exceed 1", kneeFactor)
	}
	for i := 1; i < len(loads); i++ {
		if loads[i] <= loads[i-1] {
			return SkewReport{}, fmt.Errorf("experiments: skew load axis not ascending at %g", loads[i])
		}
	}

	eng := engine.New(opt.Workers)
	dict := types.NewDict()
	var rep SkewReport
	for _, s := range exponents {
		knee := SkewKnee{Exponent: s}
		for _, load := range loads {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			w := keyspace.Workload{
				Space:   space,
				Model:   keyspace.Zipf{S: s},
				Ops:     ops,
				Spacing: model.Time(1e9 / load),
			}
			sr, err := eng.RunSharded(engine.ShardedScenario{
				Backend:  backend,
				Params:   opt.Params,
				X:        opt.X,
				Seed:     opt.Seed,
				Workload: w.Sharded(shards),
				Plan:     &keyspace.Plan{Base: keyspace.RangePartition(space, shards)},
			})
			if err != nil {
				return rep, err
			}
			pt := SkewCell{
				Exponent:  s,
				Load:      load,
				Ops:       sr.Ops,
				Imbalance: sr.Stats.Imbalance,
				Hottest:   hottestShard(sr.Stats.PerShardOps),
			}
			// Saturation is per shard: the hottest shard detaches first,
			// long before the store-wide aggregate does.
			for _, res := range sr.Shards {
				if res.History == nil {
					continue
				}
				online := make(map[spec.OpKind]*workload.OnlineStats)
				for _, op := range res.History.Ops() {
					if op.Pending {
						continue
					}
					os, ok := online[op.Kind]
					if !ok {
						os = workload.NewOnlineStats()
						online[op.Kind] = os
					}
					os.Observe(op.Sojourn())
				}
				for kind, os := range online {
					st := os.Stats(kind)
					bound := backend.Bound(opt.Params, opt.X, dict.Class(kind))
					if st.P99 > pt.WorstP99 {
						pt.WorstP99 = st.P99
						pt.Bound = bound
					}
					if float64(st.P99) >= kneeFactor*float64(bound) {
						pt.Saturated = true
					}
				}
			}
			rep.Points = append(rep.Points, pt)
			if opt.OnPoint != nil {
				opt.OnPoint(pt)
			}
			if pt.Saturated && !knee.Found {
				knee.Found = true
				knee.Load = pt.Load
				knee.Imbalance = pt.Imbalance
			}
		}
		rep.Knees = append(rep.Knees, knee)
	}
	return rep, nil
}

func hottestShard(perShard []int) int {
	hottest := 0
	for i := range perShard {
		if perShard[i] > perShard[hottest] {
			hottest = i
		}
	}
	return hottest
}

// SkewSweepCSV renders the sweep as CSV: one row per measured
// (exponent, load) cell with the skew and detachment columns, a knee
// marker on each exponent's first saturated cell, and one knee summary row
// per exponent.
func SkewSweepCSV(rep SkewReport) string {
	var b strings.Builder
	b.WriteString("zipf_exponent,load_ops_per_sec,ops,imbalance,hottest_shard,worst_p99_ns,bound_ns,saturated,knee\n")
	marked := make(map[float64]bool)
	kneeAt := make(map[float64]float64)
	for _, k := range rep.Knees {
		if k.Found {
			kneeAt[k.Exponent] = k.Load
		}
	}
	for _, pt := range rep.Points {
		knee := ""
		if at, ok := kneeAt[pt.Exponent]; ok && !marked[pt.Exponent] && pt.Load == at {
			knee = "knee"
			marked[pt.Exponent] = true
		}
		fmt.Fprintf(&b, "%.3f,%.3f,%d,%.4f,%d,%d,%d,%v,%s\n",
			pt.Exponent, pt.Load, pt.Ops, pt.Imbalance, pt.Hottest,
			int64(pt.WorstP99), int64(pt.Bound), pt.Saturated, knee)
	}
	for _, k := range rep.Knees {
		load := ""
		if k.Found {
			load = fmt.Sprintf("%.3f", k.Load)
		}
		fmt.Fprintf(&b, "knee,%.3f,%s,%.4f\n", k.Exponent, load, k.Imbalance)
	}
	return b.String()
}
