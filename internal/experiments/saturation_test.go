package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestLoadSweepCSVGolden pins the -sweep load CSV byte for byte: the
// simulation is deterministic in model time, so the sweep (axis points,
// bisection probes, knee marker and all) must reproduce exactly on any
// machine at any worker count. Regenerate with -update-golden after an
// intentional format or engine change.
func TestLoadSweepCSVGolden(t *testing.T) {
	rep, err := LoadSweep(context.Background(), LoadSweepOptions{
		Params:      DefaultParams(3),
		Seed:        1,
		Loads:       []float64{30, 120, 900},
		OpsPerPoint: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete {
		t.Fatal("sweep incomplete")
	}
	got := LoadSweepCSV(rep)
	path := filepath.Join("testdata", "load_sweep.golden.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/experiments -run LoadSweepCSVGolden -update-golden` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("CSV diverged from golden %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
	// Shape checks independent of the exact bytes: a knee marker exists
	// and the header names every promised column.
	if !strings.Contains(got, ",knee\n") && !strings.Contains(got, ",knee") {
		t.Error("CSV missing knee column/marker")
	}
	for _, col := range []string{"load_ops_per_sec", "p50_ns", "p99_ns", "bound_ns", "margin_ns", "utilization", "knee"} {
		if !strings.Contains(got, col) {
			t.Errorf("CSV header missing %q", col)
		}
	}
	if rep.Knee == nil {
		t.Error("sweep found no knee despite a 30×-spanning axis")
	} else if !strings.Contains(got, "knee\n") {
		t.Error("knee detected but no row carries the knee marker")
	}
}

// TestLoadSweepDefaultsRampAroundNominalRate checks the auto axis spans
// the nominal service rate so a default sweep brackets the knee.
func TestLoadSweepDefaultsRampAroundNominalRate(t *testing.T) {
	rep, err := LoadSweep(context.Background(), LoadSweepOptions{
		Params:      DefaultParams(3),
		Seed:        1,
		OpsPerPoint: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) < 8 {
		t.Fatalf("default ramp measured %d points, want ≥ 8", len(rep.Points))
	}
	if rep.Knee == nil {
		t.Error("default ramp failed to bracket the saturation knee")
	}
}
