package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// skewTestOptions is a small deterministic sweep: two exponents, three
// loads, a few hundred streamed ops per cell.
func skewTestOptions() SkewSweepOptions {
	return SkewSweepOptions{
		Params:      DefaultParams(3),
		Seed:        1,
		Shards:      4,
		Exponents:   []float64{1.1, 2.0},
		Loads:       []float64{60, 600, 6000},
		OpsPerPoint: 120,
	}
}

// TestSkewSweepCSVGolden pins the -sweep skew CSV byte for byte, exactly
// like the load-sweep golden: the streamed schedules, per-shard runs, and
// knee scan are deterministic in model time. Regenerate with
// -update-golden after an intentional change.
func TestSkewSweepCSVGolden(t *testing.T) {
	rep, err := SkewSweep(context.Background(), skewTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := SkewSweepCSV(rep)
	path := filepath.Join("testdata", "skew_sweep.golden.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/experiments -run SkewSweepCSVGolden -update-golden` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("CSV diverged from golden %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
	for _, col := range []string{"zipf_exponent", "load_ops_per_sec", "imbalance", "hottest_shard", "worst_p99_ns", "bound_ns", "saturated", "knee"} {
		if !strings.Contains(got, col) {
			t.Errorf("CSV header missing %q", col)
		}
	}
	if len(rep.Points) != 6 {
		t.Fatalf("sweep measured %d cells, want 2 exponents × 3 loads", len(rep.Points))
	}
	if len(rep.Knees) != 2 {
		t.Fatalf("sweep produced %d knee rows, want one per exponent", len(rep.Knees))
	}
}

// TestSkewSweepSkewConcentratesLoad checks the physics the sweep exists
// to show: at a higher Zipf exponent the range partition's hottest shard
// carries a larger share of the traffic.
func TestSkewSweepSkewConcentratesLoad(t *testing.T) {
	rep, err := SkewSweep(context.Background(), skewTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	byExp := map[float64]float64{}
	for _, pt := range rep.Points {
		if pt.Imbalance > byExp[pt.Exponent] {
			byExp[pt.Exponent] = pt.Imbalance
		}
	}
	if byExp[2.0] <= byExp[1.1] {
		t.Fatalf("imbalance did not grow with the exponent: %v", byExp)
	}
}

// TestSkewSweepDeterministic: identical options ⇒ identical CSV bytes,
// the property the golden test relies on.
func TestSkewSweepDeterministic(t *testing.T) {
	a, err := SkewSweep(context.Background(), skewTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SkewSweep(context.Background(), skewTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if SkewSweepCSV(a) != SkewSweepCSV(b) {
		t.Fatal("skew sweep not deterministic")
	}
}

func TestSkewSweepOptionValidation(t *testing.T) {
	opt := skewTestOptions()
	opt.KneeFactor = 0.5
	if _, err := SkewSweep(context.Background(), opt); err == nil {
		t.Error("knee factor ≤ 1 accepted")
	}
	opt = skewTestOptions()
	opt.Loads = []float64{100, 50}
	if _, err := SkewSweep(context.Background(), opt); err == nil {
		t.Error("descending load axis accepted")
	}
}
