// Package experiments packages the paper's evaluation artifacts as callable
// experiments: measured Tables I–IV, the X tradeoff sweep, the n → (1-1/n)u
// skew sweep, and the Algorithm-1-vs-baseline comparison. Everything runs
// through the scenario engine (internal/engine) — each experiment declares a
// scenario list and lets the engine execute it across the worker pool —
// so cmd/tbtables, cmd/tbsweep and bench_test.go are thin wrappers over
// this package and the numbers in EXPERIMENTS.md are reproducible from one
// place.
package experiments

import (
	"errors"
	"fmt"

	"timebounds/internal/adversary"
	"timebounds/internal/bounds"
	"timebounds/internal/engine"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// TableMix returns a representative operation mix for one of the paper's
// table objects.
func TableMix(dt spec.DataType) workload.OpMix { return workload.DefaultMix(dt) }

// MeasureOptions configures a table measurement.
type MeasureOptions struct {
	// X is Algorithm 1's tradeoff parameter.
	X model.Time
	// Seed drives workload generation and random delays.
	Seed int64
	// OpsPerProcess sizes the workload (default 20).
	OpsPerProcess int
	// WorstCaseDelays uses the slowest admissible delay (d) everywhere
	// instead of seeded random delays, to surface worst-case latencies.
	WorstCaseDelays bool
	// Verify runs the linearizability checker (only for small workloads).
	Verify bool
}

// scenario builds the measurement scenario for a table object.
func (opt MeasureOptions) scenario(dt spec.DataType, p model.Params) engine.Scenario {
	ops := opt.OpsPerProcess
	if ops == 0 {
		ops = 20
	}
	delay := engine.DelaySpec{Mode: engine.DelayRandom}
	if opt.WorstCaseDelays {
		delay.Mode = engine.DelayWorst
	}
	return engine.Scenario{
		Backend:  engine.Algorithm1{},
		DataType: dt,
		Params:   p,
		X:        opt.X,
		Seed:     opt.Seed,
		Delay:    delay,
		Workload: workload.Spec{
			Mix:           TableMix(dt),
			OpsPerProcess: ops,
			Spacing:       2 * p.D,
			Start:         p.D,
		},
		Verify: opt.Verify,
	}
}

// MeasureTable runs the table's object under a mixed workload and returns
// the measured worst-case latency per table-row label (pair rows get the
// sum of the two worst cases), plus the full report.
func MeasureTable(t bounds.Table, p model.Params, opt MeasureOptions) (map[string]model.Time, workload.Report, error) {
	res := engine.Run([]engine.Scenario{opt.scenario(t.Object, p)}).Results[0]
	if res.Err != "" {
		return nil, workload.Report{}, errors.New(res.Err)
	}
	measured := make(map[string]model.Time, len(t.Rows))
	for _, row := range t.Rows {
		switch row.Kind {
		case bounds.RowSingle:
			measured[row.Label] = res.PerKind[row.Ops[0]].Max
		case bounds.RowPair:
			measured[row.Label] = res.PerKind[row.Ops[0]].Max + res.PerKind[row.Ops[1]].Max
		}
	}
	return measured, workload.Report{
		PerKind:      res.PerKind,
		History:      res.History,
		Checked:      res.Checked,
		Linearizable: res.Linearizable,
	}, nil
}

// TradeoffPoint is one X-sweep sample (experiment E13).
type TradeoffPoint struct {
	X        model.Time
	Mutator  model.Time // measured worst-case pure-mutator latency (ε+X)
	Accessor model.Time // measured worst-case pure-accessor latency (d+ε-X)
	Pair     model.Time // their sum (d+2ε, constant in X)
}

// XSweep measures the accessor/mutator tradeoff across steps X values
// spanning [0, d+ε-u] on a register; the sample scenarios run in parallel
// on the engine.
func XSweep(p model.Params, steps int, seed int64) ([]TradeoffPoint, error) {
	if steps < 2 {
		return nil, fmt.Errorf("experiments: steps must be ≥ 2")
	}
	maxX := p.D + p.Epsilon - p.U
	scenarios := make([]engine.Scenario, 0, steps)
	for i := 0; i < steps; i++ {
		x := model.Time(int64(maxX) * int64(i) / int64(steps-1))
		scenarios = append(scenarios,
			MeasureOptions{X: x, Seed: seed, WorstCaseDelays: true}.scenario(bounds.TableI().Object, p))
	}
	rep := engine.Run(scenarios)
	out := make([]TradeoffPoint, 0, steps)
	for _, res := range rep.Results {
		if res.Err != "" {
			return nil, errors.New(res.Err)
		}
		w := res.PerKind[types.OpWrite].Max
		r := res.PerKind[types.OpRead].Max
		out = append(out, TradeoffPoint{X: res.X, Mutator: w, Accessor: r, Pair: w + r})
	}
	return out, nil
}

// SkewPoint is one n-sweep sample (experiment E14).
type SkewPoint struct {
	N int
	// OptimalSkew is (1-1/n)u.
	OptimalSkew model.Time
	// MutatorBound is the matching (1-1/n)u mutator lower bound.
	MutatorBound model.Time
	// MeasuredMutator is the measured worst-case mutator latency at X=0
	// with optimal ε; tightness means it equals OptimalSkew.
	MeasuredMutator model.Time
}

// NSweep measures mutator latency against (1-1/n)u for n = 2 … maxN, one
// engine scenario per cluster size, run in parallel.
func NSweep(d, u model.Time, maxN int, seed int64) ([]SkewPoint, error) {
	var scenarios []engine.Scenario
	for n := 2; n <= maxN; n++ {
		p := model.Params{N: n, D: d, U: u}
		p.Epsilon = p.OptimalSkew()
		scenarios = append(scenarios,
			MeasureOptions{Seed: seed, WorstCaseDelays: true}.scenario(bounds.TableI().Object, p))
	}
	rep := engine.Run(scenarios)
	var out []SkewPoint
	for _, res := range rep.Results {
		if res.Err != "" {
			return nil, errors.New(res.Err)
		}
		out = append(out, SkewPoint{
			N:               res.Params.N,
			OptimalSkew:     res.Params.Epsilon,
			MutatorBound:    bounds.PermuteLower(res.Params.N, res.Params.U),
			MeasuredMutator: res.PerKind[types.OpWrite].Max,
		})
	}
	return out, nil
}

// GapPoint is one sample of the upper-vs-lower gap experiment (E15): where
// the measured OOP latency sits between the matching theoretical curves as
// the delay uncertainty u grows. Lower comes from Theorem C.1's adversary
// grid (run through the engine, its witness recorded per family), Upper
// from Algorithm 1's d+ε guarantee, and Measured from a maximally
// contended read-modify-write workload under worst-case delays. Tightness
// (Lower == Upper) holds exactly while ε = (1-1/n)u ≤ min{u, d/3}.
type GapPoint struct {
	// U is the swept delay uncertainty; Epsilon the optimal skew (1-1/n)u.
	U       model.Time
	Epsilon model.Time
	// Lower is Theorem C.1's d + min{ε,u,d/3} lower bound.
	Lower model.Time
	// Upper is Algorithm 1's d + ε OOP upper bound.
	Upper model.Time
	// Witness is the adversary grid's witnessed worst latency for the
	// correct tuning (max across the R1/R2/R3 family).
	Witness model.Time
	// Measured is the worst rmw latency of the contended workload.
	Measured model.Time
}

// Gap returns Upper - Lower, the distance between the two curves.
func (g GapPoint) Gap() model.Time { return g.Upper - g.Lower }

// OOPGapSweep runs the gap experiment across the given u values: for each
// parameter point it expands Theorem C.1's correct-tuning adversary family
// and a contended rmw race workload into one engine grid (all scenarios
// execute in parallel) and reads the witness and measured curves out of
// the Report. Every returned point satisfies Lower ≤ Measured ≤ Upper for
// a correct implementation.
func OOPGapSweep(n int, d model.Time, us []model.Time, seed int64) ([]GapPoint, error) {
	spec := adversary.C1Spec(false, true, adversary.ShiftFraction{})
	var scenarios []engine.Scenario
	var famSizes []int
	for _, u := range us {
		p := model.Params{N: n, D: d, U: u}
		p.Epsilon = p.OptimalSkew()
		scenarios = append(scenarios, engine.Scenario{
			Backend:  engine.Algorithm1{},
			DataType: types.NewRMWRegister(0),
			Params:   p,
			Seed:     seed,
			Delay:    engine.DelaySpec{Mode: engine.DelayWorst},
			Workload: workload.Race(p, p.D, p.D/2, 2, types.OpRMW),
		})
		fam, err := spec.Scenarios(engine.Algorithm1{}, p, seed)
		if err != nil {
			return nil, err
		}
		scenarios = append(scenarios, fam...)
		famSizes = append(famSizes, len(fam))
	}
	rep := engine.Run(scenarios)
	if err := rep.Err(); err != nil {
		return nil, err
	}
	out := make([]GapPoint, 0, len(us))
	idx := 0
	for i, u := range us {
		p := model.Params{N: n, D: d, U: u}
		p.Epsilon = p.OptimalSkew()
		measured := rep.Results[idx]
		var witness model.Time
		for _, res := range rep.Results[idx+1 : idx+1+famSizes[i]] {
			if res.Witness != nil && res.Witness.Latency > witness {
				witness = res.Witness.Latency
			}
		}
		idx += 1 + famSizes[i]
		out = append(out, GapPoint{
			U:        u,
			Epsilon:  p.Epsilon,
			Lower:    bounds.StronglyINSCLower(p),
			Upper:    bounds.UpperOOP(p),
			Witness:  witness,
			Measured: measured.PerKind[types.OpRMW].Max,
		})
	}
	return out, nil
}

// BaselineComparison holds worst-case latencies of the four
// implementations on the same register workload (experiment E12).
type BaselineComparison struct {
	// Fast holds Algorithm 1's per-kind worst cases.
	Fast map[spec.OpKind]workload.Stats
	// AllOOP holds the folklore total-order-broadcast worst cases
	// (every operation ≤ d+ε).
	AllOOP map[spec.OpKind]workload.Stats
	// Centralized holds the coordinator round-trip worst cases (≤ 2d).
	Centralized map[spec.OpKind]workload.Stats
	// TOB holds the sequencer-based total-order-broadcast worst cases
	// (≤ 2d; Chapter I.A.3's "no faster than centralized" observation).
	TOB map[spec.OpKind]workload.Stats
}

// CompareBaselines runs the same register workload on Algorithm 1, the
// all-OOP folklore implementation, the centralized baseline, and the TOB
// baseline — four scenarios, identical schedule, executed in parallel.
func CompareBaselines(p model.Params, x model.Time, seed int64, opsPerProcess int) (BaselineComparison, error) {
	if opsPerProcess == 0 {
		opsPerProcess = 20
	}
	dt := types.NewRMWRegister(0)
	grid := engine.Grid{
		Backends: engine.Backends(),
		Objects:  []spec.DataType{dt},
		Params:   []model.Params{p},
		Xs:       []model.Time{x},
		Seeds:    []int64{seed},
		Delays:   []engine.DelaySpec{{Mode: engine.DelayWorst}},
		Workloads: []workload.Spec{{
			Mix:           TableMix(dt),
			OpsPerProcess: opsPerProcess,
			Spacing:       2 * p.D,
			Start:         p.D,
		}},
	}
	rep := engine.Run(grid.Scenarios())
	var cmp BaselineComparison
	for _, res := range rep.Results {
		if res.Err != "" {
			return cmp, fmt.Errorf("%s: %s", res.Backend, res.Err)
		}
		switch res.Backend {
		case engine.Algorithm1{}.Name():
			cmp.Fast = res.PerKind
		case engine.AllOOP{}.Name():
			cmp.AllOOP = res.PerKind
		case engine.Centralized{}.Name():
			cmp.Centralized = res.PerKind
		case engine.TOB{}.Name():
			cmp.TOB = res.PerKind
		}
	}
	return cmp, nil
}

// DefaultParams returns the parameter set used throughout EXPERIMENTS.md:
// n processes, d = 10ms, u = 4ms, optimal ε.
func DefaultParams(n int) model.Params {
	p := model.Params{N: n, D: 10_000_000, U: 4_000_000}
	p.Epsilon = p.OptimalSkew()
	return p
}
