// Package experiments packages the paper's evaluation artifacts as callable
// experiments: measured Tables I–IV, the X tradeoff sweep, the n → (1-1/n)u
// skew sweep, and the Algorithm-1-vs-baseline comparison. cmd/tbtables,
// cmd/tbsweep and bench_test.go are thin wrappers over this package, so the
// numbers in EXPERIMENTS.md are reproducible from one place.
package experiments

import (
	"fmt"
	"strconv"

	"timebounds/internal/baseline"
	"timebounds/internal/bounds"
	"timebounds/internal/core"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// TableMix returns a representative operation mix for one of the paper's
// table objects.
func TableMix(dt spec.DataType) workload.OpMix {
	intArg := func(i int) spec.Value { return i }
	switch dt.Name() {
	case "register", "rmw-register":
		return workload.OpMix{
			{Kind: types.OpWrite, Weight: 3, Arg: intArg},
			{Kind: types.OpRead, Weight: 3},
			{Kind: types.OpRMW, Weight: 2, Arg: intArg},
		}
	case "queue":
		return workload.OpMix{
			{Kind: types.OpEnqueue, Weight: 4, Arg: intArg},
			{Kind: types.OpDequeue, Weight: 2},
			{Kind: types.OpPeek, Weight: 2},
		}
	case "stack":
		return workload.OpMix{
			{Kind: types.OpPush, Weight: 4, Arg: intArg},
			{Kind: types.OpPop, Weight: 2},
			{Kind: types.OpTop, Weight: 2},
		}
	case "tree":
		return workload.OpMix{
			{Kind: types.OpTreeInsert, Weight: 4, Arg: func(i int) spec.Value {
				parent := types.TreeRoot
				if i > 0 {
					parent = "n" + strconv.Itoa((i-1)/2)
				}
				return types.Edge{Node: "n" + strconv.Itoa(i), Parent: parent}
			}},
			{Kind: types.OpTreeDelete, Weight: 1, Arg: func(i int) spec.Value {
				return "n" + strconv.Itoa(i*3)
			}},
			{Kind: types.OpTreeSearch, Weight: 2, Arg: func(i int) spec.Value {
				return "n" + strconv.Itoa(i)
			}},
			{Kind: types.OpTreeDepth, Weight: 1},
		}
	case "dict":
		keys := []string{"a", "b", "c", "d"}
		return workload.OpMix{
			{Kind: types.OpPut, Weight: 4, Arg: func(i int) spec.Value {
				return types.KV{Key: keys[i%len(keys)], Value: i}
			}},
			{Kind: types.OpDelete, Weight: 1, Arg: func(i int) spec.Value { return keys[i%len(keys)] }},
			{Kind: types.OpDictGet, Weight: 2, Arg: func(i int) spec.Value { return keys[i%len(keys)] }},
			{Kind: types.OpSize, Weight: 1},
		}
	case "pqueue":
		return workload.OpMix{
			{Kind: types.OpPQInsert, Weight: 4, Arg: intArg},
			{Kind: types.OpPQDeleteMin, Weight: 2},
			{Kind: types.OpPQMin, Weight: 2},
		}
	case "set":
		return workload.OpMix{
			{Kind: types.OpInsert, Weight: 3, Arg: intArg},
			{Kind: types.OpRemove, Weight: 1, Arg: intArg},
			{Kind: types.OpContains, Weight: 2, Arg: intArg},
		}
	case "counter":
		return workload.OpMix{
			{Kind: types.OpIncrement, Weight: 3, Arg: intArg},
			{Kind: types.OpGet, Weight: 2},
		}
	case "account":
		return workload.OpMix{
			{Kind: types.OpDeposit, Weight: 3, Arg: func(i int) spec.Value { return 50 + i }},
			{Kind: types.OpWithdraw, Weight: 2, Arg: func(i int) spec.Value { return 40 + i*7 }},
			{Kind: types.OpBalance, Weight: 2},
		}
	default:
		kinds := dt.Kinds()
		mix := make(workload.OpMix, 0, len(kinds))
		for _, k := range kinds {
			mix = append(mix, workload.WeightedOp{Kind: k, Weight: 1, Arg: intArg})
		}
		return mix
	}
}

// MeasureOptions configures a table measurement.
type MeasureOptions struct {
	// X is Algorithm 1's tradeoff parameter.
	X model.Time
	// Seed drives workload generation and random delays.
	Seed int64
	// OpsPerProcess sizes the workload (default 20).
	OpsPerProcess int
	// WorstCaseDelays uses the slowest admissible delay (d) everywhere
	// instead of seeded random delays, to surface worst-case latencies.
	WorstCaseDelays bool
	// Verify runs the linearizability checker (only for small workloads).
	Verify bool
}

// MeasureTable runs the table's object under a mixed workload and returns
// the measured worst-case latency per table-row label (pair rows get the
// sum of the two worst cases), plus the full report.
func MeasureTable(t bounds.Table, p model.Params, opt MeasureOptions) (map[string]model.Time, workload.Report, error) {
	if opt.OpsPerProcess == 0 {
		opt.OpsPerProcess = 20
	}
	simCfg := workload.NewSimConfig(p, opt.Seed)
	if opt.WorstCaseDelays {
		simCfg.Delay = sim.FixedDelay(p.D)
	}
	cluster, err := core.NewCluster(core.Config{Params: p, X: opt.X}, t.Object, simCfg)
	if err != nil {
		return nil, workload.Report{}, err
	}
	sched, err := workload.Generate(p, TableMix(t.Object), workload.Options{
		Seed:          opt.Seed,
		OpsPerProcess: opt.OpsPerProcess,
		Spacing:       2 * p.D,
		Start:         p.D,
	})
	if err != nil {
		return nil, workload.Report{}, err
	}
	rep, err := workload.Run(cluster, sched, workload.RunOptions{Verify: opt.Verify})
	if err != nil {
		return nil, workload.Report{}, err
	}
	measured := make(map[string]model.Time, len(t.Rows))
	for _, row := range t.Rows {
		switch row.Kind {
		case bounds.RowSingle:
			measured[row.Label] = rep.PerKind[row.Ops[0]].Max
		case bounds.RowPair:
			measured[row.Label] = rep.PerKind[row.Ops[0]].Max + rep.PerKind[row.Ops[1]].Max
		}
	}
	return measured, rep, nil
}

// TradeoffPoint is one X-sweep sample (experiment E13).
type TradeoffPoint struct {
	X        model.Time
	Mutator  model.Time // measured worst-case pure-mutator latency (ε+X)
	Accessor model.Time // measured worst-case pure-accessor latency (d+ε-X)
	Pair     model.Time // their sum (d+2ε, constant in X)
}

// XSweep measures the accessor/mutator tradeoff across steps X values
// spanning [0, d+ε-u] on a register.
func XSweep(p model.Params, steps int, seed int64) ([]TradeoffPoint, error) {
	if steps < 2 {
		return nil, fmt.Errorf("experiments: steps must be ≥ 2")
	}
	maxX := p.D + p.Epsilon - p.U
	out := make([]TradeoffPoint, 0, steps)
	for i := 0; i < steps; i++ {
		x := model.Time(int64(maxX) * int64(i) / int64(steps-1))
		measured, _, err := MeasureTable(bounds.TableI(), p, MeasureOptions{
			X: x, Seed: seed, WorstCaseDelays: true,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, TradeoffPoint{
			X:        x,
			Mutator:  measured["write"],
			Accessor: measured["read"],
			Pair:     measured["write"] + measured["read"],
		})
	}
	return out, nil
}

// SkewPoint is one n-sweep sample (experiment E14).
type SkewPoint struct {
	N int
	// OptimalSkew is (1-1/n)u.
	OptimalSkew model.Time
	// MutatorBound is the matching (1-1/n)u mutator lower bound.
	MutatorBound model.Time
	// MeasuredMutator is the measured worst-case mutator latency at X=0
	// with optimal ε; tightness means it equals OptimalSkew.
	MeasuredMutator model.Time
}

// NSweep measures mutator latency against (1-1/n)u for n = 2 … maxN.
func NSweep(d, u model.Time, maxN int, seed int64) ([]SkewPoint, error) {
	var out []SkewPoint
	for n := 2; n <= maxN; n++ {
		p := model.Params{N: n, D: d, U: u}
		p.Epsilon = p.OptimalSkew()
		measured, _, err := MeasureTable(bounds.TableI(), p, MeasureOptions{
			Seed: seed, WorstCaseDelays: true,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SkewPoint{
			N:               n,
			OptimalSkew:     p.OptimalSkew(),
			MutatorBound:    bounds.PermuteLower(n, u),
			MeasuredMutator: measured["write"],
		})
	}
	return out, nil
}

// BaselineComparison holds worst-case latencies of the three
// implementations on the same register workload (experiment E12).
type BaselineComparison struct {
	// Fast holds Algorithm 1's per-kind worst cases.
	Fast map[spec.OpKind]workload.Stats
	// AllOOP holds the folklore total-order-broadcast worst cases
	// (every operation ≤ d+ε).
	AllOOP map[spec.OpKind]workload.Stats
	// Centralized holds the coordinator round-trip worst cases (≤ 2d).
	Centralized map[spec.OpKind]workload.Stats
}

// CompareBaselines runs the same register workload on Algorithm 1, the
// all-OOP folklore implementation, and the centralized baseline.
func CompareBaselines(p model.Params, x model.Time, seed int64, opsPerProcess int) (BaselineComparison, error) {
	if opsPerProcess == 0 {
		opsPerProcess = 20
	}
	dt := types.NewRMWRegister(0)
	mix := TableMix(dt)
	sched, err := workload.Generate(p, mix, workload.Options{
		Seed:          seed,
		OpsPerProcess: opsPerProcess,
		Spacing:       2 * p.D,
		Start:         p.D,
	})
	if err != nil {
		return BaselineComparison{}, err
	}
	var cmp BaselineComparison

	// Algorithm 1.
	fast, err := core.NewCluster(core.Config{Params: p, X: x}, dt, simCfgWorst(p, seed))
	if err != nil {
		return BaselineComparison{}, err
	}
	rep, err := workload.Run(fast, sched, workload.RunOptions{})
	if err != nil {
		return BaselineComparison{}, fmt.Errorf("fast: %w", err)
	}
	cmp.Fast = rep.PerKind

	// Folklore all-OOP.
	oop, err := core.NewCluster(core.Config{Params: p, X: x}, baseline.AllOOP{Inner: dt}, simCfgWorst(p, seed))
	if err != nil {
		return BaselineComparison{}, err
	}
	rep, err = workload.Run(oop, sched, workload.RunOptions{})
	if err != nil {
		return BaselineComparison{}, fmt.Errorf("all-oop: %w", err)
	}
	cmp.AllOOP = rep.PerKind

	// Centralized.
	procs := make([]sim.Process, p.N)
	for i := range procs {
		procs[i] = baseline.NewCentralized(0, dt)
	}
	s, err := sim.New(simCfgWithParams(p, seed), procs)
	if err != nil {
		return BaselineComparison{}, err
	}
	for _, inv := range sched.Invocations {
		s.Invoke(inv.At, inv.Proc, inv.Kind, inv.Arg)
	}
	if err := s.Run(model.Infinity); err != nil {
		return BaselineComparison{}, fmt.Errorf("centralized: %w", err)
	}
	if !s.History().Complete() {
		return BaselineComparison{}, fmt.Errorf("centralized: pending operations")
	}
	cmp.Centralized = workload.Summarize(s.History())
	return cmp, nil
}

func simCfgWorst(p model.Params, seed int64) sim.Config {
	cfg := workload.NewSimConfig(p, seed)
	cfg.Delay = sim.FixedDelay(p.D)
	return cfg
}

func simCfgWithParams(p model.Params, seed int64) sim.Config {
	cfg := simCfgWorst(p, seed)
	cfg.Params = p
	return cfg
}

// DefaultParams returns the parameter set used throughout EXPERIMENTS.md:
// n processes, d = 10ms, u = 4ms, optimal ε.
func DefaultParams(n int) model.Params {
	p := model.Params{N: n, D: 10_000_000, U: 4_000_000}
	p.Epsilon = p.OptimalSkew()
	return p
}
