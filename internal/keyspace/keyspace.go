// Package keyspace models planet-scale keyed workloads: popularity
// distributions (Zipf, hot-set, uniform) over key universes of 10^5–10^6
// keys, multi-tenant traffic mixes with per-tenant rates, and live shard
// rebalancing — a range-based versioned PartitionMap plus a Migration
// schedule with drain-then-cutover semantics that the engine executes and
// verifies across the handoff (internal/engine, ShardedScenario.Plan).
//
// The package never materializes the key universe: a Workload emits a
// workload.Sharded whose schedule is a constant-memory stream — memory is
// bounded by the operation count and the partition's range table, not by
// Space.N — which is what makes the tracked engine/zipf-store benchmark
// feasible at ≥100k keys.
package keyspace

import (
	"fmt"
	"math/rand"
	"strconv"

	"timebounds/internal/model"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

// Space is a sized key universe with deterministic zero-padded names, so
// lexicographic key order equals index order and range partitioning over
// strings behaves like range partitioning over indices.
type Space struct {
	// N is the universe size; keys are indexed 0..N-1.
	N int
	// Prefix prepends every key name; empty means "key-".
	Prefix string
}

// prefix returns the effective name prefix.
func (s Space) prefix() string {
	if s.Prefix == "" {
		return "key-"
	}
	return s.Prefix
}

// Width returns the zero-padding width: enough digits for N-1.
func (s Space) Width() int {
	w := 1
	for n := s.N - 1; n >= 10; n /= 10 {
		w++
	}
	return w
}

// Key returns the name of the i-th key.
func (s Space) Key(i int) string {
	return fmt.Sprintf("%s%0*d", s.prefix(), s.Width(), i)
}

// Index parses a key name back to its index, rejecting names outside the
// space.
func (s Space) Index(key string) (int, error) {
	p := s.prefix()
	if len(key) <= len(p) || key[:len(p)] != p {
		return 0, fmt.Errorf("keyspace: key %q is not in space %q", key, p)
	}
	i, err := strconv.Atoi(key[len(p):])
	if err != nil || i < 0 || i >= s.N {
		return 0, fmt.Errorf("keyspace: key %q indexes outside the %d-key space", key, s.N)
	}
	return i, nil
}

// Validate rejects empty universes.
func (s Space) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("keyspace: space has %d keys; want ≥ 1", s.N)
	}
	return nil
}

// A Model is a popularity distribution over a key universe. Samplers are
// pure functions of their seeded source, so a workload's key sequence is
// fully determined by (model, space, seed).
type Model interface {
	// Name labels the model in workload names ("zipf(1.2)").
	Name() string
	// Sampler returns a deterministic key-index sampler over [0, n) drawing
	// from the given seeded source.
	Sampler(n int, rng *rand.Rand) func() int
}

// Zipf is the power-law popularity model: key i is drawn with probability
// ∝ (V+i)^(-S). The rank-ordered keys are the index-ordered keys, so under
// range partitioning the lowest range is the hottest shard — the shape the
// skew sweeps and hot-split planner exercise.
type Zipf struct {
	// S is the exponent (> 1); 0 resolves to 1.2.
	S float64
	// V is the offset (≥ 1); 0 resolves to 1.
	V float64
}

// Name implements Model.
func (z Zipf) Name() string { return fmt.Sprintf("zipf(%g)", z.exponent()) }

func (z Zipf) exponent() float64 {
	if z.S == 0 {
		return 1.2
	}
	return z.S
}

func (z Zipf) offset() float64 {
	if z.V == 0 {
		return 1
	}
	return z.V
}

// Sampler implements Model via the seeded rand.Zipf generator.
func (z Zipf) Sampler(n int, rng *rand.Rand) func() int {
	gen := rand.NewZipf(rng, z.exponent(), z.offset(), uint64(n-1))
	return func() int { return int(gen.Uint64()) }
}

// HotSet concentrates Weight of the traffic on the Hot lowest-indexed keys
// and spreads the rest uniformly — the "celebrity keys" shape.
type HotSet struct {
	// Hot is the hot-set size; 0 resolves to max(1, n/1000).
	Hot int
	// Weight is the probability of drawing from the hot set; 0 resolves
	// to 0.9.
	Weight float64
}

// Name implements Model.
func (h HotSet) Name() string { return fmt.Sprintf("hotset(%d@%g)", h.Hot, h.weight()) }

func (h HotSet) weight() float64 {
	if h.Weight == 0 {
		return 0.9
	}
	return h.Weight
}

// Sampler implements Model.
func (h HotSet) Sampler(n int, rng *rand.Rand) func() int {
	hot := h.Hot
	if hot <= 0 {
		hot = n / 1000
		if hot < 1 {
			hot = 1
		}
	}
	if hot > n {
		hot = n
	}
	w := h.weight()
	return func() int {
		if rng.Float64() < w {
			return rng.Intn(hot)
		}
		return rng.Intn(n)
	}
}

// Uniform draws every key with equal probability — the skew-free baseline.
type Uniform struct{}

// Name implements Model.
func (Uniform) Name() string { return "uniform" }

// Sampler implements Model.
func (Uniform) Sampler(n int, rng *rand.Rand) func() int {
	return func() int { return rng.Intn(n) }
}

// Tenant is one traffic class of a multi-tenant mix: a named share of the
// operation stream with its own popularity model.
type Tenant struct {
	// Name labels the tenant (value provenance in generated writes).
	Name string
	// Weight is the tenant's relative share of the stream (> 0).
	Weight int
	// Model is the tenant's popularity model; nil inherits the workload's.
	Model Model
}

// MixWeights sets the put/get/delete ratio of generated keyed traffic.
// The zero value resolves to the write-biased 4/3/1 default.
type MixWeights struct {
	Put, Get, Del int
}

func (m MixWeights) resolved() MixWeights {
	if m.Put == 0 && m.Get == 0 && m.Del == 0 {
		return MixWeights{Put: 4, Get: 3, Del: 1}
	}
	return m
}

func (m MixWeights) total() int { return m.Put + m.Get + m.Del }

// Workload generates a keyed operation stream over a key universe: Ops
// open-loop arrivals spaced Spacing apart, each drawing a tenant (by
// weight), a key (from the tenant's popularity model), and an operation
// kind (from the put/get/delete mix). It emits a workload.Sharded whose
// schedule streams — constant memory in Space.N.
type Workload struct {
	// Name labels the workload in reports; empty derives one from the
	// model and space.
	Name string
	// Space is the key universe.
	Space Space
	// Model is the popularity distribution; nil means Uniform.
	Model Model
	// Tenants optionally split the stream into weighted traffic classes;
	// empty means one anonymous tenant on Model.
	Tenants []Tenant
	// Ops is the total number of operations generated (> 0).
	Ops int
	// Start is the first arrival instant; 0 resolves to d.
	Start model.Time
	// Spacing is the cluster-wide inter-arrival gap (offered load =
	// 1e9/Spacing ops/sec); 0 resolves to 2d/n, the closed-loop-equivalent
	// default.
	Spacing model.Time
	// Mix is the put/get/delete ratio; the zero value is 4/3/1.
	Mix MixWeights
}

// label returns the derived workload name.
func (w Workload) label() string {
	if w.Name != "" {
		return w.Name
	}
	return fmt.Sprintf("%s/%dkeys", w.model().Name(), w.Space.N)
}

func (w Workload) model() Model {
	if w.Model == nil {
		return Uniform{}
	}
	return w.Model
}

// Validate rejects unusable generator specs.
func (w Workload) Validate() error {
	if err := w.Space.Validate(); err != nil {
		return err
	}
	if w.Ops <= 0 {
		return fmt.Errorf("keyspace: workload %q generates %d ops; want ≥ 1", w.label(), w.Ops)
	}
	if w.Spacing < 0 {
		return fmt.Errorf("keyspace: workload %q spacing %v is negative", w.label(), w.Spacing)
	}
	for _, t := range w.Tenants {
		if t.Weight <= 0 {
			return fmt.Errorf("keyspace: tenant %q weight %d; want > 0", t.Name, t.Weight)
		}
	}
	return nil
}

// resolvedTiming fills Start and Spacing from the model parameters.
func (w Workload) resolvedTiming(p model.Params) (start, spacing model.Time) {
	start, spacing = w.Start, w.Spacing
	if start == 0 {
		start = p.D
	}
	if spacing == 0 {
		spacing = 2 * p.D / model.Time(p.N)
	}
	return start, spacing
}

// Rate returns the offered cluster-wide load in ops/sec implied by the
// spacing under params p.
func (w Workload) Rate(p model.Params) float64 {
	_, spacing := w.resolvedTiming(p)
	if spacing <= 0 {
		return 0
	}
	return 1e9 / float64(spacing)
}

// Stream calls fn for every generated keyed operation in arrival order.
// The sequence is a pure function of (workload, p, seed): one seeded
// source drives tenant choice, key choice, and kind choice. Memory is
// O(tenants), never O(Space.N).
func (w Workload) Stream(p model.Params, seed int64, fn func(op workload.KeyOp) error) error {
	if err := w.Validate(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	tenants := w.Tenants
	if len(tenants) == 0 {
		tenants = []Tenant{{Name: "default", Weight: 1}}
	}
	samplers := make([]func() int, len(tenants))
	totalWeight := 0
	for i, t := range tenants {
		m := t.Model
		if m == nil {
			m = w.model()
		}
		samplers[i] = m.Sampler(w.Space.N, rng)
		totalWeight += t.Weight
	}
	mix := w.Mix.resolved()
	start, spacing := w.resolvedTiming(p)
	at := start
	for i := 0; i < w.Ops; i++ {
		ti := 0
		if len(tenants) > 1 {
			pick := rng.Intn(totalWeight)
			for j, t := range tenants {
				if pick < t.Weight {
					ti = j
					break
				}
				pick -= t.Weight
			}
		}
		key := w.Space.Key(samplers[ti]())
		proc := model.ProcessID(i % p.N)
		op := workload.KeyOp{At: at, Proc: proc, Key: key}
		switch pick := rng.Intn(mix.total()); {
		case pick < mix.Put:
			op.Kind = types.OpPut
			// Values carry tenant provenance and the op ordinal, so every
			// write is distinguishable and never nil (nil is the dict's
			// "absent" and the migration handoff's empty-slot marker).
			op.Value = tenants[ti].Name + "#" + strconv.Itoa(i)
		case pick < mix.Put+mix.Get:
			op.Kind = types.OpDictGet
		default:
			op.Kind = types.OpDelete
		}
		if err := fn(op); err != nil {
			return err
		}
		at += spacing
	}
	return nil
}

// Sharded emits the engine-ready keyed spec: a workload.Sharded whose
// schedule is this generator's stream (constant memory in Space.N),
// partitioned into the given number of shards by FNV hash. For range
// partitioning and live rebalancing, pair the spec with a Plan on
// engine.ShardedScenario instead — the plan's partition map overrides
// hashing.
func (w Workload) Sharded(shards int) workload.Sharded {
	ops := w.Ops
	return workload.Sharded{
		Name:     w.label(),
		Shards:   shards,
		KeySpace: w.Space.N,
		StreamOps: func(p model.Params, seed int64, fn func(op workload.KeyOp) error) error {
			return w.Stream(p, seed, fn)
		},
		StreamLen: ops,
	}
}

// KeyLoad pairs a key with its observed operation count — the unit of the
// hot-split planner's input and the ShardedReport's hot-key table.
type KeyLoad struct {
	Key string
	Ops int
}
