package keyspace

import (
	"reflect"
	"testing"
	"time"

	"timebounds/internal/model"
)

func TestRangePartition(t *testing.T) {
	s := Space{N: 100}
	m := RangePartition(s, 4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Version != 0 || m.Shards != 4 || len(m.Splits) != 3 {
		t.Fatalf("map = %+v", m)
	}
	for i := 0; i < s.N; i++ {
		if got, want := m.ShardOf(s.Key(i)), i*4/100; got != want {
			t.Fatalf("ShardOf(%s) = %d, want %d", s.Key(i), got, want)
		}
	}
	rs := m.Ranges()
	if len(rs) != 4 || rs[0].Range.Lo != "" || rs[3].Range.Hi != "" {
		t.Fatalf("Ranges() = %+v", rs)
	}
	for i, r := range rs {
		if r.Shard != i {
			t.Fatalf("range %d owned by %d", i, r.Shard)
		}
	}
	// Degenerate shapes clamp instead of failing.
	if got := RangePartition(Space{N: 3}, 10); got.Shards != 3 {
		t.Fatalf("oversharded map has %d shards", got.Shards)
	}
	if got := RangePartition(s, 0); got.Shards != 1 {
		t.Fatalf("unsharded map has %d shards", got.Shards)
	}
}

func TestPartitionMapValidate(t *testing.T) {
	for name, m := range map[string]PartitionMap{
		"no shards":      {},
		"owner mismatch": {Shards: 2, Splits: []string{"k"}, Owners: []int{0}},
		"unsorted":       {Shards: 2, Splits: []string{"b", "a"}, Owners: []int{0, 1, 0}},
		"bad owner":      {Shards: 2, Owners: []int{5}},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestApplyMoveKey(t *testing.T) {
	s := Space{N: 100}
	m := RangePartition(s, 2) // shard 0: [0,50), shard 1: [50,100)
	key := s.Key(10)
	next, err := m.Apply(Migration{At: time.Second, Moves: []Move{MoveKey(key, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if next.Version != 1 {
		t.Fatalf("Version = %d, want 1", next.Version)
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.N; i++ {
		want := 0
		if i >= 50 || i == 10 {
			want = 1
		}
		if got := next.ShardOf(s.Key(i)); got != want {
			t.Fatalf("after move, ShardOf(%s) = %d, want %d", s.Key(i), got, want)
		}
	}
	// The original map is untouched (Apply clones).
	if m.ShardOf(key) != 0 || m.Version != 0 {
		t.Fatal("Apply mutated its receiver")
	}
}

func TestApplyRangeAndCoalesce(t *testing.T) {
	s := Space{N: 100}
	m := RangePartition(s, 4)
	// Move shard 1's whole range [25,50) to shard 0: the table should
	// coalesce back to three ranges.
	next, err := m.Apply(Migration{At: time.Second, Moves: []Move{{Range: KeyRange{Lo: s.Key(25), Hi: s.Key(50)}, To: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Owners) != 3 {
		t.Fatalf("coalesce left %d ranges: %+v", len(next.Owners), next)
	}
	for i := 0; i < 50; i++ {
		if next.ShardOf(s.Key(i)) != 0 {
			t.Fatalf("key %d not on shard 0", i)
		}
	}
	// Unbounded tail move.
	tail, err := next.Apply(Migration{At: 2 * time.Second, Moves: []Move{{Range: KeyRange{Lo: s.Key(75)}, To: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tail.ShardOf(s.Key(99)); got != 0 {
		t.Fatalf("tail key on shard %d", got)
	}
	if tail.Version != 2 {
		t.Fatalf("Version = %d", tail.Version)
	}
}

func TestApplyErrors(t *testing.T) {
	m := RangePartition(Space{N: 100}, 2)
	if _, err := m.Apply(Migration{Moves: []Move{MoveKey("key-01", 9)}}); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := m.Apply(Migration{Moves: []Move{{Range: KeyRange{Lo: "b", Hi: "a"}, To: 0}}}); err == nil {
		t.Error("empty range accepted")
	}
}

func TestKeyRange(t *testing.T) {
	r := KeyRange{Lo: "b", Hi: "d"}
	for key, want := range map[string]bool{"a": false, "b": true, "c": true, "d": false} {
		if got := r.Contains(key); got != want {
			t.Errorf("Contains(%q) = %v", key, got)
		}
	}
	if !(KeyRange{Lo: "b"}).Contains("zzz") {
		t.Error("unbounded range rejected tail key")
	}
	if got := (KeyRange{Lo: "b"}).String(); got != "[b,∞)" {
		t.Errorf("String() = %q", got)
	}
}

func TestPlanEpochs(t *testing.T) {
	s := Space{N: 100}
	plan := Plan{
		Base: RangePartition(s, 2),
		Migrations: []Migration{
			{At: 10 * time.Millisecond, Moves: []Move{MoveKey(s.Key(10), 1)}},
			{At: 20 * time.Millisecond, Moves: []Move{MoveKey(s.Key(10), 0)}},
		},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.Epochs() != 3 {
		t.Fatalf("Epochs() = %d", plan.Epochs())
	}
	for at, want := range map[model.Time]int{
		0:                     0,
		9 * time.Millisecond:  0,
		10 * time.Millisecond: 1, // an op at exactly the cutover is post-cutover
		19 * time.Millisecond: 1,
		20 * time.Millisecond: 2,
		time.Hour:             2,
	} {
		if got := plan.EpochAt(at); got != want {
			t.Errorf("EpochAt(%v) = %d, want %d", at, got, want)
		}
	}
	maps, err := plan.Maps()
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 3 {
		t.Fatalf("Maps() returned %d epochs", len(maps))
	}
	key := s.Key(10)
	for _, tc := range []struct {
		at   model.Time
		want int
	}{{0, 0}, {15 * time.Millisecond, 1}, {time.Minute, 0}} {
		got, err := plan.ShardOf(key, tc.at)
		if err != nil || got != tc.want {
			t.Errorf("ShardOf(%s, %v) = %d, %v; want %d", key, tc.at, got, err, tc.want)
		}
	}
	if maps[2].Version != 2 {
		t.Fatalf("final map version %d", maps[2].Version)
	}
	if !reflect.DeepEqual(maps[0], plan.Base) {
		t.Fatal("epoch-0 map differs from Base")
	}
}

func TestPlanValidateErrors(t *testing.T) {
	base := RangePartition(Space{N: 100}, 2)
	for name, plan := range map[string]Plan{
		"bad base":     {Base: PartitionMap{}},
		"zero cutover": {Base: base, Migrations: []Migration{{At: 0}}},
		"unordered": {Base: base, Migrations: []Migration{
			{At: 2 * time.Second}, {At: time.Second},
		}},
		"bad move": {Base: base, Migrations: []Migration{
			{At: time.Second, Moves: []Move{MoveKey("k", 7)}},
		}},
	} {
		if err := plan.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestSplitHot(t *testing.T) {
	s := Space{N: 100}
	m := RangePartition(s, 4) // shard 0 owns [0,25)
	hot := []KeyLoad{
		{Key: s.Key(0), Ops: 300},
		{Key: s.Key(1), Ops: 200},
		{Key: s.Key(30), Ops: 150}, // on shard 1, must be skipped
		{Key: s.Key(2), Ops: 100},
	}
	mig := SplitHot(m, []int{700, 150, 100, 50}, hot, time.Second, 2.0)
	if mig == nil {
		t.Fatal("imbalanced load produced no migration")
	}
	if mig.At != time.Second || mig.Reason != "hot-split" {
		t.Fatalf("migration = %+v", mig)
	}
	// Hottest shard 0 (700 ops, mean 250): budget (700-250)/2 = 225, so the
	// top key (300 ops) alone covers it. All moves target coldest shard 3.
	if len(mig.Moves) != 1 || mig.Moves[0].To != 3 || mig.Moves[0].Range.Lo != s.Key(0) {
		t.Fatalf("moves = %+v", mig.Moves)
	}
	if _, err := m.Apply(*mig); err != nil {
		t.Fatalf("planned migration does not apply: %v", err)
	}
}

func TestSplitHotNothingToDo(t *testing.T) {
	s := Space{N: 100}
	m := RangePartition(s, 4)
	hot := []KeyLoad{{Key: s.Key(0), Ops: 10}}
	if mig := SplitHot(m, []int{100, 100, 100, 100}, hot, time.Second, 2.0); mig != nil {
		t.Fatalf("balanced load planned %+v", mig)
	}
	if mig := SplitHot(RangePartition(s, 1), []int{100}, hot, time.Second, 2.0); mig != nil {
		t.Fatal("single-shard map planned a migration")
	}
	if mig := SplitHot(m, []int{100, 100}, hot, time.Second, 2.0); mig != nil {
		t.Fatal("mismatched shardOps accepted")
	}
	if mig := SplitHot(m, []int{0, 0, 0, 0}, hot, time.Second, 2.0); mig != nil {
		t.Fatal("zero load planned a migration")
	}
	// Hot keys all on other shards: nothing movable.
	if mig := SplitHot(m, []int{700, 100, 100, 100}, []KeyLoad{{Key: s.Key(50), Ops: 500}}, time.Second, 2.0); mig != nil {
		t.Fatal("migration with no movable keys")
	}
}
