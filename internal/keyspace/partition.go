package keyspace

import (
	"fmt"
	"sort"

	"timebounds/internal/model"
)

// A KeyRange is the half-open lexicographic interval [Lo, Hi). Hi == ""
// means "to the end of the key space" (the empty string sorts before every
// key, so it can never be a real upper bound).
type KeyRange struct {
	Lo, Hi string
}

// Contains reports whether the key falls inside the range.
func (r KeyRange) Contains(key string) bool {
	return key >= r.Lo && (r.Hi == "" || key < r.Hi)
}

// String implements fmt.Stringer.
func (r KeyRange) String() string {
	hi := r.Hi
	if hi == "" {
		hi = "∞"
	}
	return fmt.Sprintf("[%s,%s)", r.Lo, hi)
}

// PartitionMap is a versioned range-based assignment of the key space to
// shards: the interior split points carve the (lexicographically ordered)
// key space into len(Splits)+1 contiguous ranges, and Owners names each
// range's shard. Range partitioning — rather than hashing — is what makes
// live rebalancing expressible: a Migration moves a contiguous range (or
// one key) by editing the table and bumping Version.
type PartitionMap struct {
	// Version counts applied migrations; RangePartition starts at 0.
	Version int
	// Shards is the shard count; owners index [0, Shards).
	Shards int
	// Splits are the interior range boundaries, strictly ascending. Range i
	// covers [Splits[i-1], Splits[i]), with the first range open below and
	// the last open above.
	Splits []string
	// Owners[i] is the shard owning range i; len(Owners) == len(Splits)+1.
	Owners []int
}

// RangePartition assigns the space's keys to shards in equal contiguous
// index ranges — shard i owns keys [i·N/shards, (i+1)·N/shards). Because
// Space keys are zero-padded, index ranges are lexicographic ranges.
func RangePartition(space Space, shards int) PartitionMap {
	if shards < 1 {
		shards = 1
	}
	if shards > space.N {
		shards = space.N
	}
	m := PartitionMap{Shards: shards, Owners: make([]int, shards)}
	for i := 1; i < shards; i++ {
		m.Splits = append(m.Splits, space.Key(i*space.N/shards))
	}
	for i := range m.Owners {
		m.Owners[i] = i
	}
	return m
}

// Validate rejects malformed maps.
func (m PartitionMap) Validate() error {
	if m.Shards < 1 {
		return fmt.Errorf("keyspace: partition map has %d shards; want ≥ 1", m.Shards)
	}
	if len(m.Owners) != len(m.Splits)+1 {
		return fmt.Errorf("keyspace: partition map has %d owners for %d splits; want splits+1",
			len(m.Owners), len(m.Splits))
	}
	for i := 1; i < len(m.Splits); i++ {
		if m.Splits[i-1] >= m.Splits[i] {
			return fmt.Errorf("keyspace: partition splits not strictly ascending at %q ≥ %q",
				m.Splits[i-1], m.Splits[i])
		}
	}
	for i, o := range m.Owners {
		if o < 0 || o >= m.Shards {
			return fmt.Errorf("keyspace: range %d owned by shard %d of %d", i, o, m.Shards)
		}
	}
	return nil
}

// ShardOf returns the shard owning the key: binary search over the split
// points, O(log ranges).
func (m PartitionMap) ShardOf(key string) int {
	// sort.SearchStrings returns the first split > key when key sits inside
	// a range, i.e. the range index.
	i := sort.Search(len(m.Splits), func(i int) bool { return m.Splits[i] > key })
	return m.Owners[i]
}

// Ranges returns the map's range table: each range with its owner, in key
// order.
func (m PartitionMap) Ranges() []RangeOwner {
	out := make([]RangeOwner, len(m.Owners))
	for i := range m.Owners {
		var r KeyRange
		if i > 0 {
			r.Lo = m.Splits[i-1]
		}
		if i < len(m.Splits) {
			r.Hi = m.Splits[i]
		}
		out[i] = RangeOwner{Range: r, Shard: m.Owners[i]}
	}
	return out
}

// RangeOwner pairs a key range with its owning shard.
type RangeOwner struct {
	Range KeyRange
	Shard int
}

// clone deep-copies the map so Apply never aliases the input's tables.
func (m PartitionMap) clone() PartitionMap {
	m.Splits = append([]string(nil), m.Splits...)
	m.Owners = append([]int(nil), m.Owners...)
	return m
}

// split ensures `at` is a range boundary, subdividing the containing range
// if needed. The empty string (the space's lower bound) is already a
// boundary.
func (m *PartitionMap) split(at string) {
	if at == "" {
		return
	}
	i := sort.SearchStrings(m.Splits, at)
	if i < len(m.Splits) && m.Splits[i] == at {
		return
	}
	// Insert the boundary; the new upper sub-range keeps the old owner.
	m.Splits = append(m.Splits, "")
	copy(m.Splits[i+1:], m.Splits[i:])
	m.Splits[i] = at
	m.Owners = append(m.Owners, 0)
	copy(m.Owners[i+2:], m.Owners[i+1:])
	m.Owners[i+1] = m.Owners[i]
}

// coalesce merges adjacent ranges with the same owner, keeping the table
// minimal (and Apply idempotent in shape).
func (m *PartitionMap) coalesce() {
	splits, owners := m.Splits[:0], m.Owners[:1]
	for i := 0; i < len(m.Splits); i++ {
		if m.Owners[i+1] == owners[len(owners)-1] {
			continue
		}
		splits = append(splits, m.Splits[i])
		owners = append(owners, m.Owners[i+1])
	}
	m.Splits, m.Owners = splits, owners
}

// A Move relocates every key of one range to the shard To.
type Move struct {
	Range KeyRange
	To    int
}

// MoveKey is the single-key move: the range covering exactly key. It
// relies on no real key sorting inside (key, key+"\x00"), which holds for
// any key set that does not embed NUL bytes.
func MoveKey(key string, to int) Move {
	return Move{Range: KeyRange{Lo: key, Hi: key + "\x00"}, To: to}
}

// Migration is one planned rebalance: at the cutover instant At, ownership
// of every moved range flips from its current shard to Move.To. The engine
// realizes drain-then-cutover semantics around At: operations on moving
// keys arriving inside the drain window are deferred past the cutover, the
// source shard's settled value is read out, and a synthetic handoff write
// seeds the destination (engine.ShardedScenario, docs/ARCHITECTURE.md).
type Migration struct {
	// At is the cutover instant.
	At model.Time
	// Moves are the relocated ranges.
	Moves []Move
	// Reason labels the migration in reports ("planned", "hot-split", ...).
	Reason string
}

// Apply returns the map after the migration: moved ranges change owner,
// boundaries are split and re-coalesced as needed, and Version increments.
func (m PartitionMap) Apply(mig Migration) (PartitionMap, error) {
	out := m.clone()
	for _, mv := range mig.Moves {
		if mv.To < 0 || mv.To >= m.Shards {
			return PartitionMap{}, fmt.Errorf("keyspace: migration at %s moves %s to shard %d of %d",
				mig.At, mv.Range, mv.To, m.Shards)
		}
		if mv.Range.Hi != "" && mv.Range.Hi <= mv.Range.Lo {
			return PartitionMap{}, fmt.Errorf("keyspace: migration at %s moves empty range %s",
				mig.At, mv.Range)
		}
		out.split(mv.Range.Lo)
		out.split(mv.Range.Hi)
		for i := range out.Owners {
			var lo, hi string
			if i > 0 {
				lo = out.Splits[i-1]
			}
			if i < len(out.Splits) {
				hi = out.Splits[i]
			}
			if lo >= mv.Range.Lo && (mv.Range.Hi == "" || (hi != "" && hi <= mv.Range.Hi)) {
				out.Owners[i] = mv.To
			}
		}
	}
	out.coalesce()
	out.Version++
	return out, nil
}

// Plan is a partition map plus its scheduled migrations: the full
// ownership timeline of a run. Epoch e is the interval between migration
// e-1's cutover and migration e's (epoch 0 runs under Base), so a run with
// k migrations spans k+1 epochs.
type Plan struct {
	// Base is the epoch-0 partition map.
	Base PartitionMap
	// Migrations are the scheduled rebalances, strictly ascending in At.
	Migrations []Migration
}

// Validate rejects malformed plans: a broken base map, unordered or
// zero-time cutovers, or a migration whose application fails.
func (p Plan) Validate() error {
	if err := p.Base.Validate(); err != nil {
		return err
	}
	m := p.Base
	var err error
	for i, mig := range p.Migrations {
		if mig.At <= 0 {
			return fmt.Errorf("keyspace: migration %d cuts over at %s; want > 0", i, mig.At)
		}
		if i > 0 && mig.At <= p.Migrations[i-1].At {
			return fmt.Errorf("keyspace: migration %d at %s not after migration %d at %s",
				i, mig.At, i-1, p.Migrations[i-1].At)
		}
		if m, err = m.Apply(mig); err != nil {
			return err
		}
	}
	return nil
}

// Epochs returns the number of ownership epochs (migrations + 1).
func (p Plan) Epochs() int { return len(p.Migrations) + 1 }

// EpochAt returns the epoch containing instant t: the number of cutovers
// at or before t (an operation at exactly the cutover runs post-cutover).
func (p Plan) EpochAt(t model.Time) int {
	return sort.Search(len(p.Migrations), func(i int) bool { return p.Migrations[i].At > t })
}

// Maps returns the per-epoch partition maps: Maps()[e] is the ownership
// during epoch e. The fold fails only on an invalid plan.
func (p Plan) Maps() ([]PartitionMap, error) {
	out := make([]PartitionMap, p.Epochs())
	out[0] = p.Base
	for i, mig := range p.Migrations {
		m, err := out[i].Apply(mig)
		if err != nil {
			return nil, err
		}
		out[i+1] = m
	}
	return out, nil
}

// ShardOf returns the shard owning the key at instant t.
func (p Plan) ShardOf(key string, t model.Time) (int, error) {
	maps, err := p.Maps()
	if err != nil {
		return 0, err
	}
	return maps[p.EpochAt(t)].ShardOf(key), nil
}
