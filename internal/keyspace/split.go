package keyspace

import (
	"sort"

	"timebounds/internal/model"
)

// SplitHot plans the load-driven follow-up migration: when the observed
// per-shard operation counts are imbalanced beyond threshold (hottest /
// mean > threshold), it peels the hottest observed keys off the hottest
// shard and moves them to the least-loaded shard, as single-key moves at
// the given cutover instant. It returns nil when the load is already
// within threshold, the partition has fewer than two shards, or no listed
// hot key lives on the hot shard — "nothing to do" is a verdict, not an
// error.
//
// shardOps[i] is shard i's observed completed-operation count and hot is
// the observed per-key load (engine.ShardedReport.Stats.PerShardOps and
// .HotKeys feed this directly). Keys move until the transferred load
// reaches half the hot shard's excess over the mean — enough to close most
// of the gap without overshooting into a reverse imbalance.
func SplitHot(m PartitionMap, shardOps []int, hot []KeyLoad, at model.Time, threshold float64) *Migration {
	if m.Shards < 2 || len(shardOps) != m.Shards || threshold <= 0 {
		return nil
	}
	total := 0
	hottest, coldest := 0, 0
	for i, ops := range shardOps {
		total += ops
		if ops > shardOps[hottest] {
			hottest = i
		}
		if ops < shardOps[coldest] {
			coldest = i
		}
	}
	mean := float64(total) / float64(m.Shards)
	if mean == 0 || float64(shardOps[hottest]) <= threshold*mean {
		return nil
	}

	// Deterministic candidate order: by observed load descending, ties by
	// key ascending.
	cand := append([]KeyLoad(nil), hot...)
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].Ops != cand[j].Ops {
			return cand[i].Ops > cand[j].Ops
		}
		return cand[i].Key < cand[j].Key
	})
	budget := (float64(shardOps[hottest]) - mean) / 2
	mig := &Migration{At: at, Reason: "hot-split"}
	moved := 0.0
	for _, kl := range cand {
		if moved >= budget {
			break
		}
		if m.ShardOf(kl.Key) != hottest {
			continue
		}
		mig.Moves = append(mig.Moves, MoveKey(kl.Key, coldest))
		moved += float64(kl.Ops)
	}
	if len(mig.Moves) == 0 {
		return nil
	}
	return mig
}
