package keyspace

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

func testParams() model.Params {
	return model.Params{N: 4, D: 10 * time.Millisecond, U: 4 * time.Millisecond, Epsilon: time.Millisecond}
}

func TestSpaceNaming(t *testing.T) {
	s := Space{N: 120_000}
	if got := s.Width(); got != 6 {
		t.Fatalf("Width() = %d, want 6", got)
	}
	if got := s.Key(7); got != "key-000007" {
		t.Fatalf("Key(7) = %q", got)
	}
	if got := s.Key(119_999); got != "key-119999" {
		t.Fatalf("Key(119999) = %q", got)
	}
	// Zero-padding makes lexicographic order equal index order.
	if s.Key(99_999) >= s.Key(100_000) {
		t.Fatalf("lexicographic order broken: %q >= %q", s.Key(99_999), s.Key(100_000))
	}
	for _, i := range []int{0, 1, 99, 100_000, 119_999} {
		idx, err := s.Index(s.Key(i))
		if err != nil || idx != i {
			t.Fatalf("Index(Key(%d)) = %d, %v", i, idx, err)
		}
	}
	for _, bad := range []string{"", "key-", "other-0001", "key-120000", "key--1", "key-x"} {
		if _, err := s.Index(bad); err == nil {
			t.Errorf("Index(%q) accepted", bad)
		}
	}
	if err := (Space{}).Validate(); err == nil {
		t.Fatal("empty space validated")
	}
}

func TestSpacePrefix(t *testing.T) {
	s := Space{N: 10, Prefix: "user:"}
	if got := s.Key(3); got != "user:3" {
		t.Fatalf("Key(3) = %q", got)
	}
	if idx, err := s.Index("user:3"); err != nil || idx != 3 {
		t.Fatalf("Index = %d, %v", idx, err)
	}
}

// sampleCounts draws k samples from the model over an n-key space.
func sampleCounts(m Model, n, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	sample := m.Sampler(n, rng)
	counts := make([]int, n)
	for i := 0; i < k; i++ {
		counts[sample()]++
	}
	return counts
}

func TestModelsDeterministic(t *testing.T) {
	for _, m := range []Model{Zipf{}, Zipf{S: 1.5, V: 2}, HotSet{}, HotSet{Hot: 5, Weight: 0.5}, Uniform{}} {
		a := sampleCounts(m, 1000, 5000, 42)
		b := sampleCounts(m, 1000, 5000, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: sample sequence not deterministic at key %d", m.Name(), i)
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	counts := sampleCounts(Zipf{S: 1.2}, 100_000, 20_000, 1)
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	// Under zipf(1.2) the 100 lowest-ranked keys of a 100k universe carry
	// well over half the traffic; uniform would give them 0.1%.
	if head < 10_000 {
		t.Fatalf("zipf head traffic %d/20000; want skew toward low indices", head)
	}
}

func TestHotSetSkew(t *testing.T) {
	counts := sampleCounts(HotSet{Hot: 10, Weight: 0.9}, 10_000, 20_000, 1)
	hot := 0
	for i := 0; i < 10; i++ {
		hot += counts[i]
	}
	if hot < 17_000 || hot > 20_000 {
		t.Fatalf("hot-set traffic %d/20000; want ≈ 18000", hot)
	}
}

func TestModelNames(t *testing.T) {
	for name, m := range map[string]Model{
		"zipf(1.2)":     Zipf{},
		"zipf(1.5)":     Zipf{S: 1.5},
		"hotset(0@0.9)": HotSet{},
		"hotset(5@0.5)": HotSet{Hot: 5, Weight: 0.5},
		"uniform":       Uniform{},
	} {
		if got := m.Name(); got != name {
			t.Errorf("Name() = %q, want %q", got, name)
		}
	}
}

func TestWorkloadStreamDeterministic(t *testing.T) {
	w := Workload{Space: Space{N: 50_000}, Model: Zipf{}, Ops: 400}
	p := testParams()
	collect := func() []workload.KeyOp {
		var ops []workload.KeyOp
		if err := w.Stream(p, 7, func(op workload.KeyOp) error {
			ops = append(ops, op)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return ops
	}
	a, b := collect(), collect()
	if len(a) != 400 {
		t.Fatalf("stream emitted %d ops, want 400", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not deterministic at op %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWorkloadStreamShape(t *testing.T) {
	w := Workload{Space: Space{N: 1000}, Ops: 240}
	p := testParams()
	start, spacing := w.resolvedTiming(p)
	if start != p.D {
		t.Fatalf("default start = %v, want d", start)
	}
	if spacing != 2*p.D/model.Time(p.N) {
		t.Fatalf("default spacing = %v, want 2d/n", spacing)
	}
	i := 0
	kinds := map[spec.OpKind]int{}
	err := w.Stream(p, 3, func(op workload.KeyOp) error {
		if want := start + model.Time(i)*spacing; op.At != want {
			t.Fatalf("op %d at %v, want %v", i, op.At, want)
		}
		if op.Proc != model.ProcessID(i%p.N) {
			t.Fatalf("op %d proc %d, want round-robin %d", i, op.Proc, i%p.N)
		}
		if op.Kind == types.OpPut {
			v, ok := op.Value.(string)
			if !ok || !strings.HasPrefix(v, "default#") {
				t.Fatalf("op %d put value %v; want tenant-tagged string", i, op.Value)
			}
		} else if op.Value != nil {
			t.Fatalf("op %d %v carries a value", i, op.Kind)
		}
		kinds[op.Kind]++
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Default mix 4/3/1: every kind should appear.
	for _, k := range []spec.OpKind{types.OpPut, types.OpDictGet, types.OpDelete} {
		if kinds[k] == 0 {
			t.Fatalf("mix never produced %v (got %v)", k, kinds)
		}
	}
	if kinds[types.OpPut] <= kinds[types.OpDelete] {
		t.Fatalf("write-biased mix inverted: %v", kinds)
	}
}

func TestWorkloadTenants(t *testing.T) {
	w := Workload{
		Space: Space{N: 1000},
		Ops:   600,
		Tenants: []Tenant{
			{Name: "web", Weight: 3, Model: HotSet{Hot: 2, Weight: 0.99}},
			{Name: "batch", Weight: 1, Model: Uniform{}},
		},
		Mix: MixWeights{Put: 1}, // all writes, so every op carries provenance
	}
	byTenant := map[string]int{}
	err := w.Stream(testParams(), 11, func(op workload.KeyOp) error {
		name, _, ok := strings.Cut(op.Value.(string), "#")
		if !ok {
			t.Fatalf("value %v lacks tenant tag", op.Value)
		}
		byTenant[name]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if byTenant["web"]+byTenant["batch"] != 600 {
		t.Fatalf("tenant split %v does not cover the stream", byTenant)
	}
	// 3:1 weights; allow generous sampling slack.
	if byTenant["web"] < 380 || byTenant["batch"] < 80 {
		t.Fatalf("tenant weights not respected: %v", byTenant)
	}
}

func TestWorkloadValidate(t *testing.T) {
	base := Workload{Space: Space{N: 10}, Ops: 5}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, w := range map[string]Workload{
		"no space":    {Ops: 5},
		"no ops":      {Space: Space{N: 10}},
		"neg spacing": {Space: Space{N: 10}, Ops: 5, Spacing: -1},
		"zero weight": {Space: Space{N: 10}, Ops: 5, Tenants: []Tenant{{Name: "t"}}},
	} {
		if err := w.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	if err := (Workload{Ops: 5}).Stream(testParams(), 1, func(workload.KeyOp) error { return nil }); err == nil {
		t.Error("Stream accepted invalid workload")
	}
}

func TestWorkloadRate(t *testing.T) {
	w := Workload{Space: Space{N: 10}, Ops: 5, Spacing: time.Millisecond}
	if got := w.Rate(testParams()); got != 1000 {
		t.Fatalf("Rate = %v, want 1000 ops/sec", got)
	}
}

func TestWorkloadSharded(t *testing.T) {
	w := Workload{Space: Space{N: 5000}, Model: Zipf{}, Ops: 120}
	s := w.Sharded(8)
	if s.Name != "zipf(1.2)/5000keys" || s.Shards != 8 || s.KeySpace != 5000 || s.StreamLen != 120 {
		t.Fatalf("Sharded spec = %+v", s)
	}
	if s.StreamOps == nil {
		t.Fatal("Sharded spec has no stream")
	}
	n := 0
	if err := s.StreamOps(testParams(), 1, func(workload.KeyOp) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 120 {
		t.Fatalf("stream emitted %d ops, want 120", n)
	}
}
