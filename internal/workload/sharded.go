package workload

import (
	"fmt"
	"hash/fnv"
	"sort"

	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

// A Sharded spec is the keyed analogue of Spec: a key space plus a per-key
// operation stream, partitioned into shards. Each shard becomes one
// ordinary explicit Spec over a dictionary object restricted to the
// shard's keys; the engine runs one isolated sub-cluster per shard and
// composes the per-shard verdicts (linearizability is local, so the
// composed store is linearizable iff every shard is — see
// internal/check.Compose).
type Sharded struct {
	// Name labels the workload in reports ("" is fine).
	Name string
	// Keys is the key space. May be left empty when Explicit is set, in
	// which case the key space is derived from the explicit operations in
	// first-appearance order.
	Keys []string
	// Shards is the number of sub-clusters the key space is partitioned
	// into; 0 means one shard per key (the finest partition).
	Shards int
	// Partition maps a key to a shard index in [0, shards); nil means
	// FNV-1a hash partitioning. It must be a pure function.
	Partition func(key string, shards int) int
	// PerKey generates each key's operation stream. Its Mix defaults to a
	// put/get/delete mix on the key itself; Explicit inside PerKey is
	// rejected (use the Sharded.Explicit hook for handcrafted schedules).
	PerKey Spec
	// Explicit, when non-empty, is the complete keyed schedule and PerKey
	// is ignored — the hook for handcrafted stores (examples/kvstore).
	Explicit []KeyOp
	// StreamOps, when set, generates the complete keyed schedule as a
	// stream — fn is called once per operation, in generation order — and
	// Keys, PerKey and Explicit must be unset. This is the constant-memory
	// path for planet-scale key universes (internal/keyspace): expansion
	// memory is bounded by the operation count and the keys actually
	// touched, never by the universe size. The stream must be a pure
	// function of (p, seed).
	StreamOps func(p model.Params, seed int64, fn func(op KeyOp) error) error
	// StreamLen is the number of operations StreamOps emits, used to size
	// buffers up front; 0 is allowed (buffers grow).
	StreamLen int
	// KeySpace is the size of the streaming key universe, used to clamp
	// the shard count; required (> 0) when StreamOps is set.
	KeySpace int
}

// KeyOp is one keyed operation of a sharded workload: a put, get, or
// delete on Key. It is translated into the equivalent dictionary
// invocation of the key's shard.
type KeyOp struct {
	At   model.Time
	Proc model.ProcessID
	// Kind is a dictionary operation kind: types.OpPut, types.OpDictGet,
	// or types.OpDelete.
	Kind spec.OpKind
	Key  string
	// Value is the value written (OpPut only).
	Value spec.Value
}

// Put returns a keyed write of key=value by proc at the given time.
func Put(at model.Time, proc model.ProcessID, key string, value spec.Value) KeyOp {
	return KeyOp{At: at, Proc: proc, Kind: types.OpPut, Key: key, Value: value}
}

// Get returns a keyed read of key by proc at the given time.
func Get(at model.Time, proc model.ProcessID, key string) KeyOp {
	return KeyOp{At: at, Proc: proc, Kind: types.OpDictGet, Key: key}
}

// Del returns a keyed delete of key by proc at the given time.
func Del(at model.Time, proc model.ProcessID, key string) KeyOp {
	return KeyOp{At: at, Proc: proc, Kind: types.OpDelete, Key: key}
}

// keyOpOf reverses invocation for the known key: it lifts a per-key
// generated dictionary invocation back into keyed form, so every schedule
// mode can be walked through one KeyOp iterator (ForEachOp).
func keyOpOf(inv Invocation, key string) (KeyOp, error) {
	op := KeyOp{At: inv.At, Proc: inv.Proc, Kind: inv.Kind, Key: key}
	switch inv.Kind {
	case types.OpPut:
		kv, ok := inv.Arg.(types.KV)
		if !ok {
			return KeyOp{}, fmt.Errorf("workload: per-key put on %q carries %T, want types.KV", key, inv.Arg)
		}
		op.Value = kv.Value
	case types.OpDictGet, types.OpDelete:
	default:
		return KeyOp{}, fmt.Errorf("workload: per-key schedule emitted non-dictionary op %q on %q", inv.Kind, key)
	}
	return op, nil
}

// Invocation translates the keyed operation into its dictionary form —
// the exported face of the translation Expand applies, for routers
// (engine migration expansion) that bucket KeyOps themselves.
func (op KeyOp) Invocation() (Invocation, error) { return op.invocation() }

// invocation translates the keyed operation into its dictionary form.
func (op KeyOp) invocation() (Invocation, error) {
	inv := Invocation{At: op.At, Proc: op.Proc, Kind: op.Kind}
	switch op.Kind {
	case types.OpPut:
		inv.Arg = types.KV{Key: op.Key, Value: op.Value}
	case types.OpDictGet, types.OpDelete:
		inv.Arg = op.Key
	default:
		return Invocation{}, fmt.Errorf("workload: keyed op kind %q is not a dictionary operation (want put|dict-get|delete)", op.Kind)
	}
	return inv, nil
}

// keySpace returns the effective key space: Keys, or — when empty — the
// distinct explicit keys in first-appearance order.
func (s Sharded) keySpace() ([]string, error) {
	keys := s.Keys
	if len(keys) == 0 {
		seen := make(map[string]bool)
		for _, op := range s.Explicit {
			if !seen[op.Key] {
				seen[op.Key] = true
				keys = append(keys, op.Key)
			}
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("workload: sharded spec %q has no keys and no explicit operations", s.Name)
	}
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			return nil, fmt.Errorf("workload: sharded spec %q declares key %q twice", s.Name, k)
		}
		seen[k] = true
	}
	if len(s.Keys) > 0 {
		for _, op := range s.Explicit {
			if !seen[op.Key] {
				return nil, fmt.Errorf("workload: explicit operation on key %q outside the declared key space", op.Key)
			}
		}
	}
	return keys, nil
}

// ShardCount returns the effective shard count for the given key space
// size: Shards clamped to [1, keys], with 0 meaning one shard per key.
func (s Sharded) ShardCount(keys int) int {
	n := s.Shards
	if n <= 0 || n > keys {
		n = keys
	}
	return n
}

// hashShard is the default partition: FNV-1a of the key, mod shards.
func hashShard(key string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(shards))
}

// shardOf places the key at key-space position pos: the explicit
// Partition if set; otherwise each key gets its own shard when the
// partition is finest (shards == keys, so hashing could only collide),
// and FNV hashing when it is coarser. Out-of-range placements from a
// buggy Partition are rejected.
func (s Sharded) shardOf(key string, pos, shards, keyCount int) (int, error) {
	var idx int
	switch {
	case s.Partition != nil:
		idx = s.Partition(key, shards)
	case shards == keyCount:
		idx = pos
	default:
		idx = hashShard(key, shards)
	}
	if idx < 0 || idx >= shards {
		return 0, fmt.Errorf("workload: partition placed key %q in shard %d of %d", key, idx, shards)
	}
	return idx, nil
}

// keySeed derives the per-key schedule seed: independent streams per key,
// deterministic in (seed, key) only — never in the partition — so the
// per-key streams (and thus the merged shard schedules) are a pure
// function of the spec and seed.
func keySeed(seed int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return seed ^ int64(h.Sum64())
}

// keyMix is the default per-key operation mix: a write-biased
// put/get/delete stream on the key.
func keyMix(key string) OpMix {
	return OpMix{
		{Kind: types.OpPut, Weight: 4, Arg: func(i int) spec.Value { return types.KV{Key: key, Value: i} }},
		{Kind: types.OpDictGet, Weight: 3, Arg: func(int) spec.Value { return key }},
		{Kind: types.OpDelete, Weight: 1, Arg: func(int) spec.Value { return key }},
	}
}

// Shard is one expanded shard: its keys and the merged explicit Spec the
// engine runs on the shard's own dictionary sub-cluster.
type Shard struct {
	// Index is the shard's position in [0, ShardCount).
	Index int
	// Keys are the shard's keys, in key-space order.
	Keys []string
	// Spec is the shard's explicit operation schedule.
	Spec Spec
}

// ForEachOp walks every keyed operation of the spec in generation order —
// the ord tie-break Expand sorts with: explicit operations in slice order,
// per-key generated streams key by key, or the StreamOps stream. It is the
// one iterator behind Expand's streaming path and the engine's
// migration-aware routing, and never materializes more than one key's
// schedule at a time.
func (s Sharded) ForEachOp(p model.Params, seed int64, fn func(op KeyOp, ord int) error) error {
	if s.StreamOps != nil {
		if len(s.Keys) > 0 || len(s.Explicit) > 0 {
			return fmt.Errorf("workload: sharded spec %q sets StreamOps alongside Keys/Explicit; a streaming spec is the whole schedule", s.Name)
		}
		if s.KeySpace <= 0 {
			return fmt.Errorf("workload: streaming sharded spec %q needs KeySpace > 0", s.Name)
		}
		ord := 0
		return s.StreamOps(p, seed, func(op KeyOp) error {
			err := fn(op, ord)
			ord++
			return err
		})
	}
	if len(s.Explicit) > 0 {
		for ord, op := range s.Explicit {
			if err := fn(op, ord); err != nil {
				return err
			}
		}
		return nil
	}
	if len(s.PerKey.Explicit) > 0 {
		return fmt.Errorf("workload: sharded spec %q sets PerKey.Explicit; use Sharded.Explicit for handcrafted schedules", s.Name)
	}
	keys, err := s.keySpace()
	if err != nil {
		return err
	}
	ord := 0
	for _, key := range keys {
		per := s.PerKey
		if per.Mix == nil && len(per.PerProcess) == 0 {
			per.Mix = keyMix(key)
		}
		per = per.WithDefaults(p, nil)
		sched, err := per.Schedule(p, keySeed(seed, key))
		if err != nil {
			return fmt.Errorf("workload: key %q: %w", key, err)
		}
		for _, inv := range sched.Invocations {
			op, err := keyOpOf(inv, key)
			if err != nil {
				return err
			}
			if err := fn(op, ord); err != nil {
				return err
			}
			ord++
		}
	}
	return nil
}

// expandStream is Expand for streaming specs: one pass over the stream,
// bucketing operations into shards by the partition function. Memory is
// O(operations + touched keys) — the key universe (KeySpace) is never
// enumerated, which is the whole point of the streaming path.
func (s Sharded) expandStream(p model.Params, seed int64) ([]Shard, error) {
	if s.Shards <= 0 {
		// "One shard per key" would materialize the universe; a streaming
		// spec must pick its partition size.
		return nil, fmt.Errorf("workload: streaming sharded spec %q needs explicit Shards ≥ 1", s.Name)
	}
	shards := s.ShardCount(s.KeySpace)
	out := make([]Shard, shards)
	for i := range out {
		out[i].Index = i
	}
	type timed struct {
		inv Invocation
		ord int
	}
	buckets := make([][]timed, shards)
	touched := make(map[string]int) // key -> shard, also the dedup set
	err := s.ForEachOp(p, seed, func(op KeyOp, ord int) error {
		idx, ok := touched[op.Key]
		if !ok {
			var err error
			if idx, err = s.shardOf(op.Key, -1, shards, -1); err != nil {
				return err
			}
			touched[op.Key] = idx
			out[idx].Keys = append(out[idx].Keys, op.Key)
		}
		inv, err := op.invocation()
		if err != nil {
			return err
		}
		buckets[idx] = append(buckets[idx], timed{inv: inv, ord: ord})
		return nil
	})
	if err != nil {
		return nil, err
	}
	name := s.Name
	if name == "" {
		name = "sharded"
	}
	for i := range out {
		sort.Strings(out[i].Keys)
		b := buckets[i]
		sort.SliceStable(b, func(x, y int) bool {
			if b[x].inv.At != b[y].inv.At {
				return b[x].inv.At < b[y].inv.At
			}
			return b[x].ord < b[y].ord
		})
		invs := make([]Invocation, len(b))
		for j, t := range b {
			invs[j] = t.inv
		}
		out[i].Spec = Spec{
			Name:     fmt.Sprintf("%s/shard=%d", name, i),
			Explicit: invs,
		}
	}
	return out, nil
}

// Expand partitions the key space and merges each shard's per-key
// operation streams into one explicit Spec per shard, ordered by
// invocation time (ties in key-space order). The result is a pure
// function of (spec, p, seed): same inputs ⇒ identical shards, which is
// what makes engine-level sharded reports bit-reproducible.
func (s Sharded) Expand(p model.Params, seed int64) ([]Shard, error) {
	if s.StreamOps != nil {
		return s.expandStream(p, seed)
	}
	keys, err := s.keySpace()
	if err != nil {
		return nil, err
	}
	shards := s.ShardCount(len(keys))
	out := make([]Shard, shards)
	for i := range out {
		out[i].Index = i
	}
	place := make(map[string]int, len(keys))
	for i, k := range keys {
		idx, err := s.shardOf(k, i, shards, len(keys))
		if err != nil {
			return nil, err
		}
		place[k] = idx
		out[idx].Keys = append(out[idx].Keys, k)
	}

	type timed struct {
		inv Invocation
		ord int // global generation order, the tie-break
	}
	buckets := make([][]timed, shards)
	add := func(key string, inv Invocation, ord int) {
		idx := place[key]
		buckets[idx] = append(buckets[idx], timed{inv: inv, ord: ord})
	}

	if len(s.Explicit) > 0 {
		for ord, op := range s.Explicit {
			inv, err := op.invocation()
			if err != nil {
				return nil, err
			}
			add(op.Key, inv, ord)
		}
	} else {
		if len(s.PerKey.Explicit) > 0 {
			return nil, fmt.Errorf("workload: sharded spec %q sets PerKey.Explicit; use Sharded.Explicit for handcrafted schedules", s.Name)
		}
		ord := 0
		for _, key := range keys {
			per := s.PerKey
			if per.Mix == nil && len(per.PerProcess) == 0 {
				per.Mix = keyMix(key)
			}
			per = per.WithDefaults(p, nil)
			sched, err := per.Schedule(p, keySeed(seed, key))
			if err != nil {
				return nil, fmt.Errorf("workload: key %q: %w", key, err)
			}
			for _, inv := range sched.Invocations {
				add(key, inv, ord)
				ord++
			}
		}
	}

	name := s.Name
	if name == "" {
		name = "sharded"
	}
	for i := range out {
		b := buckets[i]
		sort.SliceStable(b, func(x, y int) bool {
			if b[x].inv.At != b[y].inv.At {
				return b[x].inv.At < b[y].inv.At
			}
			return b[x].ord < b[y].ord
		})
		invs := make([]Invocation, len(b))
		for j, t := range b {
			invs[j] = t.inv
		}
		out[i].Spec = Spec{
			Name:     fmt.Sprintf("%s/shard=%d", name, i),
			Explicit: invs,
		}
	}
	return out, nil
}
