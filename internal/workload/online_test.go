package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// sketchRelErr is the documented quantile error bound: 2^-sketchSubBits.
const sketchRelErr = 1.0 / (1 << sketchSubBits)

// exactPercentile applies SummarizeSamples' order-statistic convention.
func exactPercentile(sorted []model.Time, p int) model.Time {
	idx := (len(sorted)*p + p) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func TestOnlineStatsMatchesExactFold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 7, 100, 5000} {
		samples := make([]model.Time, n)
		s := NewOnlineStats()
		for i := range samples {
			// A latency-shaped distribution: microseconds to tens of ms.
			v := model.Time(rng.Int63n(30_000_000) + 1_000)
			samples[i] = v
			s.Observe(v)
		}
		sorted := append([]model.Time(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum int64
		for _, v := range sorted {
			sum += int64(v)
		}
		if s.Count() != n {
			t.Fatalf("n=%d: count %d", n, s.Count())
		}
		if s.Min() != sorted[0] || s.Max() != sorted[n-1] {
			t.Fatalf("n=%d: min/max %s/%s, want %s/%s", n, s.Min(), s.Max(), sorted[0], sorted[n-1])
		}
		if want := model.Time(sum / int64(n)); s.Mean() != want {
			t.Fatalf("n=%d: mean %s, want exact %s", n, s.Mean(), want)
		}
		for _, p := range []int{50, 90, 99} {
			exact := exactPercentile(sorted, p)
			got := s.Percentile(p)
			if got < exact {
				t.Fatalf("n=%d p%d: sketch %s underestimates exact %s", n, p, got, exact)
			}
			if float64(got) > float64(exact)*(1+sketchRelErr)+1 {
				t.Fatalf("n=%d p%d: sketch %s beyond %.2f%% of exact %s",
					n, p, got, sketchRelErr*100, exact)
			}
		}
	}
}

// TestOnlineStatsPercentileClampedToExtremes pins the upper-bucket-edge
// rule on the histories where it bites: with one or two samples, every
// percentile's order statistic is an observed value, so reporting the
// (rounded-up) bucket edge would exceed the true maximum. Percentile must
// clamp to the tracked min/max, making tiny-history sketches exact.
func TestOnlineStatsPercentileClampedToExtremes(t *testing.T) {
	// A value one past a bucket edge, so its upper edge rounds well up.
	v := model.Time(1<<21 + 1)
	s := NewOnlineStats()
	s.Observe(v)
	for _, p := range []int{0, 50, 99, 100} {
		if got := s.Percentile(p); got != v {
			t.Fatalf("single sample: p%d = %s, want exactly %s", p, got, v)
		}
	}

	s2 := NewOnlineStats()
	lo, hi := model.Time(1<<20+3), model.Time(1<<22+5)
	s2.Observe(hi)
	s2.Observe(lo)
	for _, p := range []int{0, 50, 99, 100} {
		got := s2.Percentile(p)
		if got < lo || got > hi {
			t.Fatalf("two samples: p%d = %s outside observed [%s, %s]", p, got, lo, hi)
		}
	}
	if got := s2.Percentile(99); got != hi {
		t.Fatalf("two samples: p99 = %s, want the max %s (order statistic), not a bucket edge", got, hi)
	}
}

// TestOnlineStatsSingleSampleMatchesSummarize: a one-sample OnlineStats
// snapshot must agree field for field with the exact SummarizeSamples
// fold — the degenerate history where any sketch slack would show.
func TestOnlineStatsSingleSampleMatchesSummarize(t *testing.T) {
	const kind = spec.OpKind("read")
	v := model.Time(7_777_777)
	s := NewOnlineStats()
	s.Observe(v)
	got := s.Stats(kind)
	want := SummarizeSamples(map[spec.OpKind][]model.Time{kind: {v}})[kind]
	if got != want {
		t.Fatalf("single-sample snapshot %+v, want exact %+v", got, want)
	}
}

func TestOnlineStatsSmallValuesExact(t *testing.T) {
	s := NewOnlineStats()
	for v := model.Time(0); v < 1<<(sketchSubBits+1); v++ {
		s.Observe(v)
	}
	// Values below 2^(subBits+1) land in exact unit buckets.
	for _, p := range []int{50, 99} {
		sorted := make([]model.Time, 1<<(sketchSubBits+1))
		for i := range sorted {
			sorted[i] = model.Time(i)
		}
		if got, want := s.Percentile(p), exactPercentile(sorted, p); got != want {
			t.Fatalf("p%d: %s, want exact %s", p, got, want)
		}
	}
}

func TestOnlineStatsMergeEquivalentToSingleStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole := NewOnlineStats()
	parts := []*OnlineStats{NewOnlineStats(), NewOnlineStats(), NewOnlineStats()}
	for i := 0; i < 3000; i++ {
		v := model.Time(rng.Int63n(50_000_000))
		whole.Observe(v)
		parts[i%3].Observe(v)
	}
	merged := NewOnlineStats()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Min() != whole.Min() ||
		merged.Max() != whole.Max() || merged.Mean() != whole.Mean() {
		t.Fatal("merged summary differs from single-stream summary")
	}
	if merged.P99() != whole.P99() || merged.P50() != whole.P50() {
		t.Fatal("merged sketch quantiles differ from single-stream sketch")
	}
	if math.Abs(float64(merged.StdDev()-whole.StdDev())) > 2 {
		t.Fatalf("merged stddev %s vs %s", merged.StdDev(), whole.StdDev())
	}
}

func TestOnlineStatsStatsSnapshot(t *testing.T) {
	s := NewOnlineStats()
	for _, v := range []model.Time{10, 20, 30} {
		s.Observe(v)
	}
	st := s.Stats(spec.OpKind("read"))
	if st.Kind != "read" || st.Count != 3 || st.Min != 10 || st.Max != 30 || st.Mean != 20 {
		t.Fatalf("snapshot %+v", st)
	}
}

func TestBucketMonotoneAndBounded(t *testing.T) {
	prev := uint32(0)
	for _, v := range []model.Time{0, 1, 255, 256, 257, 1000, 1 << 20, 1<<20 + 1<<13, 1 << 40, model.Time(1<<62) + 12345} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucket index not monotone at %d", v)
		}
		prev = b
		if upper := bucketUpper(b); upper < v {
			t.Fatalf("bucket upper %d below value %d", upper, v)
		} else if v >= 1<<(sketchSubBits+1) && float64(upper) > float64(v)*(1+sketchRelErr) {
			t.Fatalf("bucket upper %d beyond relative error of %d", upper, v)
		}
	}
}
