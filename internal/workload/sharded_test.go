package workload

import (
	"reflect"
	"testing"
	"time"

	"timebounds/internal/model"
	"timebounds/internal/types"
)

func shardedParams() model.Params {
	p := model.Params{N: 3, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	p.Epsilon = p.OptimalSkew()
	return p
}

func TestShardedExpandDeterministic(t *testing.T) {
	s := Sharded{
		Keys:   []string{"alpha", "beta", "gamma", "delta", "epsilon"},
		Shards: 2,
		PerKey: Spec{OpsPerProcess: 3},
	}
	p := shardedParams()
	a, err := s.Expand(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Expand(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 {
		t.Fatalf("expanded to %d shards, want 2", len(a))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Keys, b[i].Keys) {
			t.Fatalf("shard %d keys differ across expansions: %v vs %v", i, a[i].Keys, b[i].Keys)
		}
		if !reflect.DeepEqual(a[i].Spec.Explicit, b[i].Spec.Explicit) {
			t.Fatalf("shard %d schedules differ across identical expansions", i)
		}
	}
	c, err := s.Expand(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if !reflect.DeepEqual(a[i].Spec.Explicit, c[i].Spec.Explicit) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should draw different per-key schedules")
	}
}

func TestShardedPartitionCoversEveryKeyOnce(t *testing.T) {
	s := Sharded{
		Keys:   []string{"a", "b", "c", "d", "e", "f", "g"},
		Shards: 3,
		PerKey: Spec{OpsPerProcess: 1},
	}
	shards, err := s.Expand(shardedParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for _, sh := range shards {
		for _, k := range sh.Keys {
			seen[k]++
		}
	}
	for _, k := range s.Keys {
		if seen[k] != 1 {
			t.Fatalf("key %q placed in %d shards, want exactly 1", k, seen[k])
		}
	}
}

func TestShardedExplicitPartitionFunc(t *testing.T) {
	order := []string{"a", "b", "c", "d"}
	s := Sharded{
		Keys:   order,
		Shards: 2,
		// Round-robin by key-space position via a lookup, so the function
		// stays pure in its (key, shards) arguments.
		Partition: func(key string, shards int) int {
			for i, k := range order {
				if k == key {
					return i % shards
				}
			}
			return 0
		},
		PerKey: Spec{OpsPerProcess: 1},
	}
	shards, err := s.Expand(shardedParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := shards[0].Keys; !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("shard 0 keys = %v, want [a c]", got)
	}
	if got := shards[1].Keys; !reflect.DeepEqual(got, []string{"b", "d"}) {
		t.Fatalf("shard 1 keys = %v, want [b d]", got)
	}
}

func TestShardedOutOfRangePartitionRejected(t *testing.T) {
	s := Sharded{
		Keys:      []string{"a", "b"},
		Shards:    2,
		Partition: func(string, int) int { return 7 },
		PerKey:    Spec{OpsPerProcess: 1},
	}
	if _, err := s.Expand(shardedParams(), 1); err == nil {
		t.Fatal("an out-of-range partition must be rejected")
	}
}

func TestShardedZeroShardsMeansOnePerKey(t *testing.T) {
	s := Sharded{Keys: []string{"x", "y", "z"}, PerKey: Spec{OpsPerProcess: 1}}
	shards, err := s.Expand(shardedParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("Shards=0 expanded to %d shards, want one per key", len(shards))
	}
	for _, sh := range shards {
		if len(sh.Keys) != 1 {
			t.Fatalf("shard %d holds keys %v, want exactly one", sh.Index, sh.Keys)
		}
	}
}

func TestShardedShardsClampedToKeySpace(t *testing.T) {
	s := Sharded{Keys: []string{"x", "y"}, Shards: 10, PerKey: Spec{OpsPerProcess: 1}}
	shards, err := s.Expand(shardedParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("10 shards over 2 keys expanded to %d shards, want 2", len(shards))
	}
}

func TestShardedExplicitScheduleRoutesByKey(t *testing.T) {
	s := Sharded{
		Explicit: []KeyOp{
			Put(0, 0, "k1", 1),
			Put(time.Millisecond, 1, "k2", "v"),
			Get(2*time.Millisecond, 2, "k1"),
			Del(3*time.Millisecond, 0, "k2"),
		},
	}
	shards, err := s.Expand(shardedParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("derived key space expanded to %d shards, want 2 (one per key)", len(shards))
	}
	byKey := make(map[string][]Invocation)
	for _, sh := range shards {
		if len(sh.Keys) != 1 {
			t.Fatalf("shard holds keys %v, want one", sh.Keys)
		}
		byKey[sh.Keys[0]] = sh.Spec.Explicit
	}
	k1 := byKey["k1"]
	if len(k1) != 2 || k1[0].Kind != types.OpPut || k1[1].Kind != types.OpDictGet {
		t.Fatalf("k1 schedule = %v, want put then dict-get", k1)
	}
	if kv, ok := k1[0].Arg.(types.KV); !ok || kv.Key != "k1" || kv.Value != 1 {
		t.Fatalf("k1 put arg = %v, want KV{k1, 1}", k1[0].Arg)
	}
	k2 := byKey["k2"]
	if len(k2) != 2 || k2[0].Kind != types.OpPut || k2[1].Kind != types.OpDelete {
		t.Fatalf("k2 schedule = %v, want put then delete", k2)
	}
	if k2[1].Arg != "k2" {
		t.Fatalf("delete arg = %v, want the key", k2[1].Arg)
	}
}

func TestShardedExplicitSchedulesSortedByTime(t *testing.T) {
	s := Sharded{
		Keys:   []string{"a", "b"},
		Shards: 1,
		Explicit: []KeyOp{
			Put(5*time.Millisecond, 0, "a", 1),
			Put(time.Millisecond, 1, "b", 2),
			Get(3*time.Millisecond, 2, "a"),
		},
	}
	shards, err := s.Expand(shardedParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	invs := shards[0].Spec.Explicit
	for i := 1; i < len(invs); i++ {
		if invs[i].At < invs[i-1].At {
			t.Fatalf("shard schedule out of time order at %d: %v", i, invs)
		}
	}
}

func TestShardedValidation(t *testing.T) {
	p := shardedParams()
	cases := map[string]Sharded{
		"no keys":           {},
		"duplicate keys":    {Keys: []string{"a", "a"}, PerKey: Spec{OpsPerProcess: 1}},
		"undeclared key":    {Keys: []string{"a"}, Explicit: []KeyOp{Put(0, 0, "b", 1)}},
		"non-dict keyed op": {Explicit: []KeyOp{{At: 0, Proc: 0, Kind: types.OpRead, Key: "a"}}},
		"per-key explicit":  {Keys: []string{"a"}, PerKey: Spec{Explicit: []Invocation{{Kind: types.OpPut}}}},
	}
	for name, s := range cases {
		if _, err := s.Expand(p, 1); err == nil {
			t.Errorf("%s: expected an expansion error", name)
		}
	}
}
