package workload_test

import (
	"testing"
	"time"

	"timebounds/internal/core"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
	"timebounds/internal/workload"
)

func params(n int) model.Params {
	p := model.Params{N: n, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	p.Epsilon = p.OptimalSkew()
	return p
}

func regMix() workload.OpMix {
	return workload.OpMix{
		{Kind: types.OpWrite, Weight: 1, Arg: func(i int) spec.Value { return i }},
		{Kind: types.OpRead, Weight: 1},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := params(3)
	opt := workload.Options{Seed: 9, OpsPerProcess: 10, Spacing: p.D, Start: p.D}
	a, err := workload.Generate(p, regMix(), opt)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := workload.Generate(p, regMix(), opt)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(a.Invocations) != len(b.Invocations) {
		t.Fatal("different lengths")
	}
	for i := range a.Invocations {
		if a.Invocations[i] != b.Invocations[i] {
			t.Fatalf("invocation %d differs: %+v vs %+v", i, a.Invocations[i], b.Invocations[i])
		}
	}
	if want := p.N * opt.OpsPerProcess; len(a.Invocations) != want {
		t.Errorf("generated %d invocations, want %d", len(a.Invocations), want)
	}
}

func TestGenerateRejectsBadMix(t *testing.T) {
	p := params(2)
	if _, err := workload.Generate(p, nil, workload.Options{OpsPerProcess: 1}); err == nil {
		t.Error("empty mix accepted")
	}
	bad := workload.OpMix{{Kind: types.OpRead, Weight: 0}}
	if _, err := workload.Generate(p, bad, workload.Options{OpsPerProcess: 1}); err == nil {
		t.Error("zero weight accepted")
	}
}

func TestRunProducesStats(t *testing.T) {
	p := params(3)
	cluster, err := core.NewCluster(core.Config{Params: p}, types.NewRegister(0),
		workload.NewSimConfig(p, 3))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	sched, err := workload.Generate(p, regMix(), workload.Options{
		Seed: 3, OpsPerProcess: 5, Spacing: 2 * p.D, Start: p.D,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rep, err := workload.Run(cluster, sched, workload.RunOptions{Verify: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Checked || !rep.Linearizable {
		t.Error("verified run should be linearizable")
	}
	total := 0
	for kind, st := range rep.PerKind {
		total += st.Count
		if st.Min > st.Max || st.Mean < st.Min || st.Mean > st.Max {
			t.Errorf("%s: inconsistent stats %+v", kind, st)
		}
		if st.P99 < st.Min || st.P99 > st.Max {
			t.Errorf("%s: P99 %s outside [min,max]", kind, st.P99)
		}
	}
	if total != 15 {
		t.Errorf("stats cover %d ops, want 15", total)
	}
	// Latency bounds hold under random delays too.
	if w := rep.PerKind[types.OpWrite]; w.Max > p.Epsilon {
		t.Errorf("write max %s exceeds ε", w.Max)
	}
	if r := rep.PerKind[types.OpRead]; r.Max > p.D+p.Epsilon {
		t.Errorf("read max %s exceeds d+ε", r.Max)
	}
}

func TestWorstPair(t *testing.T) {
	p := params(3)
	cluster, err := core.NewCluster(core.Config{Params: p}, types.NewRegister(0),
		workload.NewSimConfig(p, 4))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	sched, err := workload.Generate(p, regMix(), workload.Options{
		Seed: 4, OpsPerProcess: 4, Spacing: 2 * p.D, Start: p.D,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rep, err := workload.Run(cluster, sched, workload.RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := rep.PerKind[types.OpWrite].Max + rep.PerKind[types.OpRead].Max
	if got := rep.WorstPair(types.OpWrite, types.OpRead); got != want {
		t.Errorf("WorstPair = %s, want %s", got, want)
	}
}

func TestSummarizeSkipsPending(t *testing.T) {
	p := params(2)
	cluster, err := core.NewCluster(core.Config{Params: p}, types.NewRegister(0),
		workload.NewSimConfig(p, 5))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	cluster.Invoke(0, 0, types.OpWrite, 1)
	// Horizon cuts before the write responds.
	if err := cluster.Run(p.Epsilon / 2); err != nil {
		t.Fatalf("Run: %v", err)
	}
	stats := workload.Summarize(cluster.History())
	if len(stats) != 0 {
		t.Errorf("pending-only history should yield no stats, got %v", stats)
	}
}

func TestNewSimConfig(t *testing.T) {
	p := params(4)
	cfg := workload.NewSimConfig(p, 1)
	if cfg.Delay == nil || !cfg.StrictDelays {
		t.Error("NewSimConfig should set a strict delay policy")
	}
	if len(cfg.ClockOffsets) != p.N {
		t.Errorf("offsets length %d", len(cfg.ClockOffsets))
	}
}
