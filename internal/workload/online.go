package workload

import (
	"math"
	"math/bits"
	"sort"

	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// OnlineStats is a constant-memory streaming summary of a latency
// distribution: exact count/min/max/sum (so Mean matches the batch fold in
// SummarizeSamples bit for bit), Welford's M2 for variance, and a
// fixed-size log-bucketed quantile sketch.
//
// The sketch is an HDR-style histogram: values below 2^(sketchSubBits+1)
// ns land in exact unit buckets; larger values share one bucket per
// 2^-sketchSubBits relative slice of their octave. Percentile reads return
// the inclusive upper edge of the bucket holding the requested order
// statistic, so a sketched percentile never underestimates the exact one
// and overestimates it by at most a factor of 2^-sketchSubBits (≈ 0.8%).
// The bucket count is bounded by the value range alone — ≤ ~7.5k buckets
// for the full int64 nanosecond range — never by the number of
// observations, which is what lets a streaming consumer aggregate
// million-run grids without retaining histories.
type OnlineStats struct {
	count int64
	sum   int64
	min   model.Time
	max   model.Time
	mean  float64 // Welford running mean (float; Mean() uses sum/count)
	m2    float64 // Welford sum of squared deviations
	// sketch maps bucket index → observation count. Sparse: only buckets
	// that ever received an observation exist.
	sketch map[uint32]int64
}

// sketchSubBits is the sketch's per-octave resolution: 2^sketchSubBits
// buckets per power of two, giving ≤ 2^-sketchSubBits (≈ 0.78%) relative
// quantile error. Values below 2^(sketchSubBits+1) are exact.
const sketchSubBits = 7

// NewOnlineStats returns an empty streaming summary.
func NewOnlineStats() *OnlineStats {
	return &OnlineStats{sketch: make(map[uint32]int64)}
}

// Observe folds one latency into the summary. Negative values are clamped
// to zero (latencies and sojourns are non-negative by construction).
//
//tb:hotpath
func (s *OnlineStats) Observe(v model.Time) {
	if v < 0 {
		v = 0
	}
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.count++
	s.sum += int64(v)
	delta := float64(v) - s.mean
	s.mean += delta / float64(s.count)
	s.m2 += delta * (float64(v) - s.mean)
	if s.sketch == nil {
		s.sketch = make(map[uint32]int64)
	}
	s.sketch[bucketOf(v)]++
}

// Merge folds another summary into s (for combining per-worker or
// per-point summaries). Variance merging uses Chan et al.'s parallel
// update; sketches merge bucket-wise, so quantile error does not grow.
//
//tb:hotpath
func (s *OnlineStats) Merge(o *OnlineStats) {
	if o == nil || o.count == 0 {
		return
	}
	if s.count == 0 {
		*s = OnlineStats{count: o.count, sum: o.sum, min: o.min, max: o.max, mean: o.mean, m2: o.m2,
			sketch: make(map[uint32]int64, len(o.sketch))}
		for b, c := range o.sketch {
			s.sketch[b] = c
		}
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	delta := o.mean - s.mean
	total := s.count + o.count
	s.m2 += o.m2 + delta*delta*float64(s.count)*float64(o.count)/float64(total)
	s.mean += delta * float64(o.count) / float64(total)
	s.count = total
	s.sum += o.sum
	for b, c := range o.sketch {
		s.sketch[b] += c
	}
}

// Count returns the number of observations.
func (s *OnlineStats) Count() int { return int(s.count) }

// Min returns the smallest observation (0 when empty).
func (s *OnlineStats) Min() model.Time {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *OnlineStats) Max() model.Time { return s.max }

// Mean returns the truncating integer mean, the same sum/count fold
// SummarizeSamples uses (0 when empty).
func (s *OnlineStats) Mean() model.Time {
	if s.count == 0 {
		return 0
	}
	return model.Time(s.sum / s.count)
}

// StdDev returns the population standard deviation (0 when empty).
func (s *OnlineStats) StdDev() model.Time {
	if s.count == 0 {
		return 0
	}
	return model.Time(math.Sqrt(s.m2 / float64(s.count)))
}

// Percentile returns the p-th percentile from the sketch, using the same
// order-statistic index SummarizeSamples uses — idx = (count·p+p)/100,
// clamped — so a sketched P99 is comparable to an exact Stats.P99: equal
// below 2^(sketchSubBits+1) ns, otherwise within +2^-sketchSubBits
// relative (the sketch rounds up to its bucket edge, never down).
func (s *OnlineStats) Percentile(p int) model.Time {
	if s.count == 0 {
		return 0
	}
	idx := (s.count*int64(p) + int64(p)) / 100
	if idx >= s.count {
		idx = s.count - 1
	}
	buckets := make([]uint32, 0, len(s.sketch))
	for b := range s.sketch {
		buckets = append(buckets, b)
	}
	// Bucket indexes order by magnitude, so a sorted scan visits
	// observations in nondecreasing value order.
	sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
	var seen int64
	for _, b := range buckets {
		seen += s.sketch[b]
		if seen > idx {
			v := bucketUpper(b)
			// The sketch cannot beat the exact extremes it tracks.
			if v > s.max {
				v = s.max
			}
			if v < s.min {
				v = s.min
			}
			return v
		}
	}
	return s.max
}

// P50 returns the sketched median.
func (s *OnlineStats) P50() model.Time { return s.Percentile(50) }

// P99 returns the sketched 99th percentile.
func (s *OnlineStats) P99() model.Time { return s.Percentile(99) }

// Stats snapshots the summary into the batch Stats shape: count, min, max
// and mean are exact; P99 comes from the sketch (see Percentile for the
// error bound).
func (s *OnlineStats) Stats(kind spec.OpKind) Stats {
	return Stats{
		Kind:  kind,
		Count: s.Count(),
		Min:   s.Min(),
		Max:   s.Max(),
		Mean:  s.Mean(),
		P99:   s.P99(),
	}
}

// bucketOf maps a non-negative value to its sketch bucket. Values below
// 2^(sketchSubBits+1) map to themselves (exact); a larger value with
// floor(log2) = e keeps its top sketchSubBits mantissa bits:
//
//	index = (e - sketchSubBits + 1) << sketchSubBits | mantissaTopBits
//
// which is monotone in the value, so bucket order is value order.
func bucketOf(v model.Time) uint32 {
	u := uint64(v)
	if u < 1<<(sketchSubBits+1) {
		return uint32(u)
	}
	e := uint32(bits.Len64(u)) - 1 // floor(log2 u) ≥ sketchSubBits+1
	shift := e - sketchSubBits
	mantissa := uint32(u>>shift) & (1<<sketchSubBits - 1)
	return (shift+1)<<sketchSubBits | mantissa
}

// bucketUpper returns the largest value mapping to the bucket — the
// inclusive upper edge Percentile reports.
func bucketUpper(b uint32) model.Time {
	if b < 1<<(sketchSubBits+1) {
		return model.Time(b)
	}
	shift := b>>sketchSubBits - 1
	mantissa := uint64(1<<sketchSubBits | b&(1<<sketchSubBits-1))
	return model.Time((mantissa+1)<<shift - 1)
}
