package workload

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"timebounds/internal/model"
	"timebounds/internal/types"
)

// streamSpec is a small deterministic streaming workload over an oversized
// key universe: only a handful of keys are touched, which is what the
// constant-memory claim rests on.
func streamSpec(ops int) Sharded {
	return Sharded{
		Name:     "stream",
		Shards:   3,
		KeySpace: 1_000_000,
		StreamOps: func(p model.Params, seed int64, fn func(op KeyOp) error) error {
			at := p.D
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("key-%06d", (i*3+int(seed))%7)
				proc := model.ProcessID(i % p.N)
				var op KeyOp
				switch i % 3 {
				case 0:
					op = Put(at, proc, key, i)
				case 1:
					op = Get(at, proc, key)
				default:
					op = Del(at, proc, key)
				}
				if err := fn(op); err != nil {
					return err
				}
				at += time.Millisecond
			}
			return nil
		},
		StreamLen: ops,
	}
}

func TestStreamingExpandDeterministic(t *testing.T) {
	s := streamSpec(60)
	p := shardedParams()
	a, err := s.Expand(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Expand(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("streaming expansion not deterministic")
	}
	c, err := s.Expand(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestStreamingExpandCoversStream(t *testing.T) {
	s := streamSpec(60)
	p := shardedParams()
	shards, err := s.Expand(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 {
		t.Fatalf("expanded to %d shards, want 3", len(shards))
	}
	totalOps, totalKeys := 0, 0
	seen := map[string]int{}
	for i, sh := range shards {
		if sh.Index != i {
			t.Fatalf("shard %d has index %d", i, sh.Index)
		}
		if want := fmt.Sprintf("stream/shard=%d", i); sh.Spec.Name != want {
			t.Fatalf("shard name %q, want %q", sh.Spec.Name, want)
		}
		totalOps += len(sh.Spec.Explicit)
		totalKeys += len(sh.Keys)
		for _, k := range sh.Keys {
			seen[k]++
		}
		for j := 1; j < len(sh.Spec.Explicit); j++ {
			if sh.Spec.Explicit[j].At < sh.Spec.Explicit[j-1].At {
				t.Fatalf("shard %d schedule out of order at %d", i, j)
			}
		}
	}
	if totalOps != 60 {
		t.Fatalf("shards hold %d ops, want 60", totalOps)
	}
	// Only the touched keys (7 of the million) appear, each exactly once.
	if totalKeys != 7 {
		t.Fatalf("shards hold %d keys, want the 7 touched", totalKeys)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %q assigned to %d shards", k, n)
		}
	}
}

func TestStreamingRoutesByPartition(t *testing.T) {
	s := streamSpec(30)
	s.Partition = func(key string, shards int) int { return 1 } // everything on shard 1
	shards, err := s.Expand(shardedParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards[0].Spec.Explicit) != 0 || len(shards[2].Spec.Explicit) != 0 {
		t.Fatal("constant partition leaked ops off shard 1")
	}
	if len(shards[1].Spec.Explicit) != 30 {
		t.Fatalf("shard 1 holds %d ops, want 30", len(shards[1].Spec.Explicit))
	}
}

func TestForEachOpStreamOrdinals(t *testing.T) {
	s := streamSpec(10)
	p := shardedParams()
	next := 0
	err := s.ForEachOp(p, 1, func(op KeyOp, ord int) error {
		if ord != next {
			t.Fatalf("ord %d, want %d", ord, next)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 10 {
		t.Fatalf("iterated %d ops, want 10", next)
	}
	// Errors from fn stop the walk and propagate.
	sentinel := errors.New("stop")
	calls := 0
	err = s.ForEachOp(p, 1, func(KeyOp, int) error {
		calls++
		if calls == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("ForEachOp error = %v, want sentinel", err)
	}
}

func TestForEachOpMatchesExpandModes(t *testing.T) {
	p := shardedParams()
	for name, s := range map[string]Sharded{
		"explicit": {
			Explicit: []KeyOp{
				Put(p.D, 0, "a", 1),
				Get(p.D+time.Millisecond, 1, "b"),
				Del(p.D+2*time.Millisecond, 2, "a"),
			},
		},
		"perkey": {
			Keys:   []string{"a", "b"},
			Shards: 2,
			PerKey: Spec{OpsPerProcess: 2},
		},
	} {
		var walked []KeyOp
		if err := s.ForEachOp(p, 9, func(op KeyOp, ord int) error {
			if ord != len(walked) {
				t.Fatalf("%s: ord %d at position %d", name, ord, len(walked))
			}
			walked = append(walked, op)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The walk carries exactly the ops Expand buckets.
		shards, err := s.Expand(p, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total := 0
		for _, sh := range shards {
			total += len(sh.Spec.Explicit)
		}
		if total != len(walked) {
			t.Fatalf("%s: walk saw %d ops, expansion %d", name, len(walked), total)
		}
	}
}

func TestStreamingSpecGuards(t *testing.T) {
	p := shardedParams()
	base := streamSpec(5)

	s := base
	s.Keys = []string{"a"}
	if _, err := s.Expand(p, 1); err == nil {
		t.Error("StreamOps alongside Keys accepted")
	}

	s = base
	s.Explicit = []KeyOp{Put(p.D, 0, "a", 1)}
	if _, err := s.Expand(p, 1); err == nil {
		t.Error("StreamOps alongside Explicit accepted")
	}

	s = base
	s.KeySpace = 0
	if _, err := s.Expand(p, 1); err == nil {
		t.Error("streaming spec without KeySpace accepted")
	}

	s = base
	s.Shards = 0
	if _, err := s.Expand(p, 1); err == nil {
		t.Error("streaming spec with one-shard-per-key accepted (would materialize the universe)")
	}

	s = base
	s.Partition = func(string, int) int { return 99 }
	if _, err := s.Expand(p, 1); err == nil {
		t.Error("out-of-range partition accepted on the streaming path")
	}

	s = base
	s.StreamOps = func(p model.Params, seed int64, fn func(op KeyOp) error) error {
		return fn(KeyOp{At: p.D, Kind: "bogus", Key: "a"})
	}
	if _, err := s.Expand(p, 1); err == nil {
		t.Error("non-dictionary op kind accepted")
	}
}

func TestKeyOpInvocation(t *testing.T) {
	put := Put(time.Second, 1, "k", "v")
	inv, err := put.Invocation()
	if err != nil {
		t.Fatal(err)
	}
	if inv.Kind != types.OpPut || inv.Arg != (types.KV{Key: "k", Value: "v"}) {
		t.Fatalf("put invocation = %+v", inv)
	}
	get, err := Get(time.Second, 1, "k").Invocation()
	if err != nil || get.Arg != "k" {
		t.Fatalf("get invocation = %+v, %v", get, err)
	}
	if _, err := (KeyOp{Kind: "bogus"}).Invocation(); err == nil {
		t.Fatal("bogus kind accepted")
	}
}
