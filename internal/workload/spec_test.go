package workload

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"timebounds/internal/model"
	"timebounds/internal/types"
)

func specParams(n int) model.Params {
	p := model.Params{N: n, D: 10_000_000, U: 4_000_000}
	p.Epsilon = p.OptimalSkew()
	return p
}

func TestSpecScheduleDeterministic(t *testing.T) {
	p := specParams(3)
	s := Spec{Mix: DefaultMix(types.NewQueue()), OpsPerProcess: 4, Spacing: 2 * p.D, Start: p.D}
	a, err := s.Schedule(p, 7)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	b, err := s.Schedule(p, 7)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different schedules")
	}
	c, err := s.Schedule(p, 8)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
	if got, want := len(a.Invocations), p.N*4; got != want {
		t.Errorf("%d invocations, want %d", got, want)
	}
}

func TestSpecOpenLoopExactSpacing(t *testing.T) {
	p := specParams(2)
	s := Spec{
		Mode:          Open,
		Mix:           OpMix{{Kind: types.OpIncrement, Weight: 1}},
		OpsPerProcess: 4,
		Spacing:       5_000_000,
		Start:         1_000_000,
	}
	sched, err := s.Schedule(p, 1)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	for _, inv := range sched.Invocations {
		if off := (inv.At - 1_000_000) % 5_000_000; off != 0 {
			t.Errorf("open-loop invocation at %s not on the fixed-rate lattice", inv.At)
		}
	}
}

func TestSpecRampShrinksGaps(t *testing.T) {
	p := specParams(1)
	s := Spec{
		Mode:          Open,
		Mix:           OpMix{{Kind: types.OpIncrement, Weight: 1}},
		OpsPerProcess: 5,
		Spacing:       8_000_000,
		Start:         0,
		Ramp:          0.25, // gaps shrink to a quarter by the end
	}
	sched, err := s.Schedule(p, 1)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	invs := sched.Invocations
	first := invs[1].At - invs[0].At
	last := invs[len(invs)-1].At - invs[len(invs)-2].At
	if last >= first {
		t.Errorf("ramp 0.25: last gap %s not smaller than first gap %s", last, first)
	}
	if first != 8_000_000 {
		t.Errorf("first gap %s, want the unscaled spacing", first)
	}
}

func TestSpecPerProcessMixes(t *testing.T) {
	// Process 0 only increments (mutator), process 1 only reads (accessor).
	p := specParams(2)
	s := Spec{
		PerProcess: []OpMix{
			{{Kind: types.OpIncrement, Weight: 1}},
			{{Kind: types.OpGet, Weight: 1}},
		},
		OpsPerProcess: 3,
		Spacing:       2 * p.D,
		Start:         p.D,
	}
	sched, err := s.Schedule(p, 3)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	for _, inv := range sched.Invocations {
		want := types.OpIncrement
		if inv.Proc == 1 {
			want = types.OpGet
		}
		if inv.Kind != want {
			t.Errorf("process %s issued %s, want %s", inv.Proc, inv.Kind, want)
		}
	}
}

func TestSpecExplicitVerbatim(t *testing.T) {
	p := specParams(2)
	invs := []Invocation{
		{At: 1, Proc: 0, Kind: types.OpWrite, Arg: 1},
		{At: 2, Proc: 1, Kind: types.OpRead},
	}
	sched, err := Spec{Explicit: invs, OpsPerProcess: 99}.Schedule(p, 42)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if !reflect.DeepEqual(sched.Invocations, invs) {
		t.Errorf("explicit schedule altered: %v", sched.Invocations)
	}
}

func TestSpecErrors(t *testing.T) {
	p := specParams(2)
	if _, err := (Spec{OpsPerProcess: 1}).Schedule(p, 1); err == nil {
		t.Error("no mix and no explicit schedule accepted")
	}
	bad := Spec{Mix: OpMix{{Kind: types.OpRead, Weight: 0}}, OpsPerProcess: 1}
	if _, err := bad.Schedule(p, 1); err == nil {
		t.Error("zero-weight mix accepted")
	}
	neg := Spec{Mix: OpMix{{Kind: types.OpRead, Weight: 1}}, OpsPerProcess: 1, Ramp: -1}
	if _, err := neg.Schedule(p, 1); err == nil {
		t.Error("negative ramp accepted")
	}
}

func TestSpecValidateRejectsDegenerateRates(t *testing.T) {
	p := specParams(2)
	mix := OpMix{{Kind: types.OpRead, Weight: 1}}

	// Open-loop with zero spacing: an undefined (infinite) offered rate.
	zero := Spec{Mode: Open, Mix: mix, OpsPerProcess: 3}
	if err := zero.Validate(); err == nil {
		t.Error("open-loop spec with zero spacing (zero/undefined rate) accepted")
	} else if !strings.Contains(err.Error(), "rate") {
		t.Errorf("zero-rate error not actionable: %v", err)
	}

	// Negative spacing: every gap negative, so the stream's last
	// invocation precedes its first — the schedule ends before it starts.
	back := Spec{Mode: Open, Mix: mix, OpsPerProcess: 3, Spacing: -time.Millisecond}
	if err := back.Validate(); err == nil {
		t.Error("negative-rate (negative spacing) spec accepted")
	}
	if _, err := back.Schedule(p, 1); err == nil {
		t.Error("Schedule accepted a negative-spacing open-loop spec")
	}
	// Closed loops reject it too — a backwards schedule is never valid.
	back.Mode = Closed
	if err := back.Validate(); err == nil {
		t.Error("negative-spacing closed-loop spec accepted")
	}

	// A ramp whose end precedes its start: the negative scale schedules
	// the final gaps before the earlier ones.
	ramp := Spec{Mix: mix, OpsPerProcess: 3, Spacing: time.Millisecond, Ramp: -0.5}
	if err := ramp.Validate(); err == nil {
		t.Error("ramp with end preceding start accepted")
	} else if !strings.Contains(err.Error(), "ramp") {
		t.Errorf("ramp error not actionable: %v", err)
	}
	if _, err := ramp.Schedule(p, 1); err == nil {
		t.Error("Schedule accepted a backwards ramp")
	}

	// The valid shapes still pass: open with positive spacing, closed
	// with zero spacing (defaulted later), explicit schedules verbatim.
	for _, good := range []Spec{
		{Mode: Open, Mix: mix, OpsPerProcess: 3, Spacing: time.Millisecond},
		{Mode: Closed, Mix: mix, OpsPerProcess: 3},
		{Mode: Open, Explicit: []Invocation{{At: -1, Proc: 0, Kind: types.OpRead}}},
		{Mode: Open, Mix: mix, OpsPerProcess: 1}, // single op: no interarrival gap needed
	} {
		if err := good.Validate(); err != nil {
			t.Errorf("valid spec rejected: %v (%+v)", err, good)
		}
	}
}

func TestSpecRate(t *testing.T) {
	if r := (Spec{Spacing: 2 * time.Millisecond}).Rate(); r != 500 {
		t.Errorf("rate %v, want 500 ops/s at 2ms spacing", r)
	}
	if r := (Spec{}).Rate(); r != 0 {
		t.Errorf("unset spacing rate %v, want 0", r)
	}
}

func TestWithDefaultsFillsMixAndSizing(t *testing.T) {
	p := specParams(3)
	s := Spec{}.WithDefaults(p, types.NewQueue())
	if s.Mix == nil || s.OpsPerProcess == 0 || s.Spacing == 0 || s.Start == 0 {
		t.Errorf("defaults not filled: %+v", s)
	}
	explicit := Spec{Explicit: []Invocation{{At: 1, Proc: 0, Kind: types.OpRead}}}
	if got := explicit.WithDefaults(p, types.NewQueue()); got.Mix != nil || got.OpsPerProcess != 0 {
		t.Error("explicit specs must not grow generator defaults")
	}
}
