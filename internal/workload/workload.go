// Package workload generates operation schedules, runs them through an
// implementation, and measures per-kind latency statistics. It is the
// engine behind the measured columns of Tables I–IV (cmd/tbtables) and the
// benchmarks in bench_test.go.
package workload

import (
	"fmt"
	"sort"

	"timebounds/internal/check"
	"timebounds/internal/core"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
)

// OpMix selects operation kinds with weights.
type OpMix []WeightedOp

// WeightedOp pairs an operation kind, its relative weight, and an argument
// generator.
type WeightedOp struct {
	Kind spec.OpKind
	// Weight is the relative selection weight (> 0).
	Weight int
	// Arg produces the argument for the i-th generated operation of this
	// kind. Nil means nil arguments.
	Arg func(i int) spec.Value
}

// Schedule is a list of timed invocations for a cluster.
type Schedule struct {
	Invocations []Invocation
}

// Invocation is one scheduled operation.
type Invocation struct {
	At   model.Time
	Proc model.ProcessID
	Kind spec.OpKind
	Arg  spec.Value
}

// Options configures schedule generation.
type Options struct {
	// Seed makes generation deterministic.
	Seed int64
	// OpsPerProcess is how many operations each process issues.
	OpsPerProcess int
	// Spacing is the mean gap between consecutive invocations of one
	// process; actual gaps are uniform in [Spacing/2, 3·Spacing/2].
	Spacing model.Time
	// Start is the real time of the first wave of invocations.
	Start model.Time
}

// Generate builds a random closed-loop schedule: each process issues
// OpsPerProcess operations drawn from the mix, with jittered spacing.
// It is shorthand for a closed-loop Spec; Spec is the richer surface
// (open loops, ramps, per-process mixes, explicit schedules).
func Generate(p model.Params, mix OpMix, opt Options) (Schedule, error) {
	if len(mix) == 0 {
		return Schedule{}, fmt.Errorf("workload: empty mix")
	}
	return Spec{
		Mix:           mix,
		OpsPerProcess: opt.OpsPerProcess,
		Spacing:       opt.Spacing,
		Start:         opt.Start,
	}.Schedule(p, opt.Seed)
}

// Stats summarizes the latency distribution of one operation kind.
type Stats struct {
	Kind  spec.OpKind
	Count int
	Min   model.Time
	Max   model.Time
	Mean  model.Time
	P99   model.Time
}

// Report is the outcome of one measured run.
type Report struct {
	// PerKind holds the latency statistics per operation kind.
	PerKind map[spec.OpKind]Stats
	// History is the raw history.
	History *history.History
	// Checked is true if the linearizability checker ran.
	Checked bool
	// Linearizable is the checker verdict (meaningful when Checked).
	Linearizable bool
	// Pending counts operations still pending at the horizon; nonzero only
	// when RunOptions.AllowPending accepted an incomplete history.
	Pending int
}

// WorstPair returns the sum of the worst-case latencies of two kinds.
func (r Report) WorstPair(a, b spec.OpKind) model.Time {
	return r.PerKind[a].Max + r.PerKind[b].Max
}

// RunOptions configures Run.
type RunOptions struct {
	// Horizon bounds the simulation; zero defaults to a generous multiple
	// of the schedule span.
	Horizon model.Time
	// Verify runs the linearizability checker on the resulting history.
	// Only use for histories small enough for exhaustive search.
	Verify bool
	// Check carries the verifier's resource options (shared transition
	// cache, reusable arena, island-parallelism budget) by value, exactly
	// as check.CheckOpts receives them. This is the one way to configure
	// the checker; the four field-at-a-time knobs below are deprecated
	// shims that fold into it.
	Check check.Options
	// Checker optionally shares a transition cache with the verifier.
	//
	// Deprecated: set Check.Cache instead.
	Checker *check.Cache
	// Arena optionally reuses checker scratch across runs.
	//
	// Deprecated: set Check.Arena instead.
	Arena *check.Arena
	// CheckWorkers caps island-parallel checking within a verified
	// history.
	//
	// Deprecated: set Check.Workers instead.
	CheckWorkers int
	// NoIslands forces the verifier's single whole-history search.
	//
	// Deprecated: set Check.NoIslands instead.
	NoIslands bool
	// AllowPending accepts a history with operations still pending at the
	// horizon instead of failing the run — required for fault scenarios,
	// where a crash legitimately orphans its in-flight operation. The
	// checker treats forever-pending operations as removable, so Verify
	// still composes.
	AllowPending bool
}

// checkOptions folds the deprecated field-at-a-time checker knobs into
// the coherent Check options value; a field set in Check wins over its
// deprecated twin.
func (o RunOptions) checkOptions() check.Options {
	opt := o.Check
	if opt.Cache == nil {
		opt.Cache = o.Checker
	}
	if opt.Arena == nil {
		opt.Arena = o.Arena
	}
	if opt.Workers == 0 {
		opt.Workers = o.CheckWorkers
	}
	if !opt.NoIslands {
		opt.NoIslands = o.NoIslands
	}
	return opt
}

// Target is the slice of a shared-object instance the harness needs: the
// scheduling surface plus access to the recorded history and the simulator.
// *core.Cluster and every engine backend instance satisfy it.
type Target interface {
	Invoke(at model.Time, proc model.ProcessID, kind spec.OpKind, arg spec.Value)
	Run(horizon model.Time) error
	History() *history.History
	DataType() spec.DataType
	Simulator() *sim.Simulator
}

var _ Target = (*core.Cluster)(nil)

// Run executes a schedule on a fresh instance and collects statistics.
func Run(target Target, sched Schedule, opt RunOptions) (Report, error) {
	horizon := opt.Horizon
	if horizon == 0 {
		var last model.Time
		for _, inv := range sched.Invocations {
			if inv.At > last {
				last = inv.At
			}
		}
		horizon = last + 1000*target.Simulator().Params().D
	}
	// The schedule's length is the run's record count (open-loop deferrals
	// reuse the same record), so the history and event slabs can be sized
	// once up front instead of growing through the run.
	target.Simulator().Reserve(len(sched.Invocations))
	for _, inv := range sched.Invocations {
		target.Invoke(inv.At, inv.Proc, inv.Kind, inv.Arg)
	}
	if err := target.Run(horizon); err != nil {
		return Report{}, err
	}
	h := target.History()
	if !h.Complete() && !opt.AllowPending {
		return Report{}, fmt.Errorf("workload: %d operations still pending at horizon", h.PendingCount())
	}
	rep := Report{PerKind: Summarize(h), History: h, Pending: h.PendingCount()}
	if opt.Verify {
		rep.Checked = true
		rep.Linearizable = check.CheckOpts(target.DataType(), h, opt.checkOptions()).Linearizable
	}
	return rep, nil
}

// NewSimConfig builds a sim.Config with a seeded random delay policy over
// the admissible range and evenly spread clock offsets within ε — the
// wiring the engine uses for DelayRandom scenarios, exposed for
// hand-driven core clusters in tests.
func NewSimConfig(p model.Params, seed int64) sim.Config {
	return sim.Config{
		Params:       p,
		ClockOffsets: core.MaxSkewOffsets(p),
		Delay:        sim.NewRandomDelay(seed, p.MinDelay(), p.D),
		StrictDelays: true,
	}
}

// Summarize computes per-kind latency statistics from a history.
func Summarize(h *history.History) map[spec.OpKind]Stats {
	byKind := make(map[spec.OpKind][]model.Time)
	for _, op := range h.Ops() {
		if op.Pending {
			continue
		}
		byKind[op.Kind] = append(byKind[op.Kind], op.Latency())
	}
	return SummarizeSamples(byKind)
}

// SummarizeSamples folds raw per-kind latency samples into Stats — the
// single fold behind Summarize and the engine's cross-shard aggregation
// (which must recompute from samples, because percentiles do not compose
// across shards). Sample slices are sorted in place.
func SummarizeSamples(byKind map[spec.OpKind][]model.Time) map[spec.OpKind]Stats {
	out := make(map[spec.OpKind]Stats, len(byKind))
	for kind, ls := range byKind {
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		var sum int64
		for _, l := range ls {
			sum += int64(l)
		}
		idx := (len(ls)*99 + 99) / 100
		if idx >= len(ls) {
			idx = len(ls) - 1
		}
		out[kind] = Stats{
			Kind:  kind,
			Count: len(ls),
			Min:   ls[0],
			Max:   ls[len(ls)-1],
			Mean:  model.Time(sum / int64(len(ls))),
			P99:   ls[idx],
		}
	}
	return out
}
