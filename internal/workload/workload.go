// Package workload generates operation schedules, runs them through an
// implementation, and measures per-kind latency statistics. It is the
// engine behind the measured columns of Tables I–IV (cmd/tbtables) and the
// benchmarks in bench_test.go.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"timebounds/internal/check"
	"timebounds/internal/core"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
)

// OpMix selects operation kinds with weights.
type OpMix []WeightedOp

// WeightedOp pairs an operation kind, its relative weight, and an argument
// generator.
type WeightedOp struct {
	Kind spec.OpKind
	// Weight is the relative selection weight (> 0).
	Weight int
	// Arg produces the argument for the i-th generated operation of this
	// kind. Nil means nil arguments.
	Arg func(i int) spec.Value
}

// Schedule is a list of timed invocations for a cluster.
type Schedule struct {
	Invocations []Invocation
}

// Invocation is one scheduled operation.
type Invocation struct {
	At   model.Time
	Proc model.ProcessID
	Kind spec.OpKind
	Arg  spec.Value
}

// Options configures schedule generation.
type Options struct {
	// Seed makes generation deterministic.
	Seed int64
	// OpsPerProcess is how many operations each process issues.
	OpsPerProcess int
	// Spacing is the mean gap between consecutive invocations of one
	// process; actual gaps are uniform in [Spacing/2, 3·Spacing/2].
	Spacing model.Time
	// Start is the real time of the first wave of invocations.
	Start model.Time
}

// Generate builds a random closed-loop schedule: each process issues
// OpsPerProcess operations drawn from the mix, with jittered spacing.
// Invocations landing while a previous operation is pending are deferred by
// the simulator, so the schedule is a lower bound on invocation times.
func Generate(p model.Params, mix OpMix, opt Options) (Schedule, error) {
	if len(mix) == 0 {
		return Schedule{}, fmt.Errorf("workload: empty mix")
	}
	total := 0
	for _, w := range mix {
		if w.Weight <= 0 {
			return Schedule{}, fmt.Errorf("workload: weight %d for %q", w.Weight, w.Kind)
		}
		total += w.Weight
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	counts := make(map[spec.OpKind]int, len(mix))
	var sched Schedule
	for proc := 0; proc < p.N; proc++ {
		at := opt.Start
		for i := 0; i < opt.OpsPerProcess; i++ {
			pick := rng.Intn(total)
			var chosen WeightedOp
			for _, w := range mix {
				if pick < w.Weight {
					chosen = w
					break
				}
				pick -= w.Weight
			}
			var arg spec.Value
			if chosen.Arg != nil {
				arg = chosen.Arg(counts[chosen.Kind])
			}
			counts[chosen.Kind]++
			sched.Invocations = append(sched.Invocations, Invocation{
				At:   at,
				Proc: model.ProcessID(proc),
				Kind: chosen.Kind,
				Arg:  arg,
			})
			half := int64(opt.Spacing) / 2
			jitter := model.Time(0)
			if half > 0 {
				jitter = model.Time(rng.Int63n(2*half+1) - half)
			}
			at += opt.Spacing + jitter
		}
	}
	return sched, nil
}

// Stats summarizes the latency distribution of one operation kind.
type Stats struct {
	Kind  spec.OpKind
	Count int
	Min   model.Time
	Max   model.Time
	Mean  model.Time
	P99   model.Time
}

// Report is the outcome of one measured run.
type Report struct {
	// PerKind holds the latency statistics per operation kind.
	PerKind map[spec.OpKind]Stats
	// History is the raw history.
	History *history.History
	// Checked is true if the linearizability checker ran.
	Checked bool
	// Linearizable is the checker verdict (meaningful when Checked).
	Linearizable bool
}

// WorstPair returns the sum of the worst-case latencies of two kinds.
func (r Report) WorstPair(a, b spec.OpKind) model.Time {
	return r.PerKind[a].Max + r.PerKind[b].Max
}

// RunOptions configures Run.
type RunOptions struct {
	// Horizon bounds the simulation; zero defaults to a generous multiple
	// of the schedule span.
	Horizon model.Time
	// Verify runs the linearizability checker on the resulting history.
	// Only use for histories small enough for exhaustive search.
	Verify bool
}

// Run executes a schedule on a fresh cluster and collects statistics.
func Run(cluster *core.Cluster, sched Schedule, opt RunOptions) (Report, error) {
	horizon := opt.Horizon
	if horizon == 0 {
		var last model.Time
		for _, inv := range sched.Invocations {
			if inv.At > last {
				last = inv.At
			}
		}
		horizon = last + 1000*cluster.Simulator().Params().D
	}
	for _, inv := range sched.Invocations {
		cluster.Invoke(inv.At, inv.Proc, inv.Kind, inv.Arg)
	}
	if err := cluster.Run(horizon); err != nil {
		return Report{}, err
	}
	h := cluster.History()
	if !h.Complete() {
		return Report{}, fmt.Errorf("workload: %d operations still pending at horizon", h.PendingCount())
	}
	rep := Report{PerKind: Summarize(h), History: h}
	if opt.Verify {
		rep.Checked = true
		rep.Linearizable = check.Check(cluster.DataType(), h).Linearizable
	}
	return rep, nil
}

// Summarize computes per-kind latency statistics from a history.
func Summarize(h *history.History) map[spec.OpKind]Stats {
	byKind := make(map[spec.OpKind][]model.Time)
	for _, op := range h.Ops() {
		if op.Pending {
			continue
		}
		byKind[op.Kind] = append(byKind[op.Kind], op.Latency())
	}
	out := make(map[spec.OpKind]Stats, len(byKind))
	for kind, ls := range byKind {
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		var sum int64
		for _, l := range ls {
			sum += int64(l)
		}
		idx := (len(ls)*99 + 99) / 100
		if idx >= len(ls) {
			idx = len(ls) - 1
		}
		out[kind] = Stats{
			Kind:  kind,
			Count: len(ls),
			Min:   ls[0],
			Max:   ls[len(ls)-1],
			Mean:  model.Time(sum / int64(len(ls))),
			P99:   ls[idx],
		}
	}
	return out
}

// NewSimConfig builds a sim.Config with a seeded random delay policy over
// the admissible range and evenly spread clock offsets within ε.
func NewSimConfig(p model.Params, seed int64) sim.Config {
	return sim.Config{
		Params:       p,
		ClockOffsets: core.MaxSkewOffsets(p),
		Delay:        sim.NewRandomDelay(seed, p.MinDelay(), p.D),
		StrictDelays: true,
	}
}
