package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

// Mode selects how a Spec paces invocations.
type Mode int

const (
	// Closed is a closed-loop workload: each process issues its next
	// operation a jittered gap after the previous one (gaps uniform in
	// [Spacing/2, 3·Spacing/2]), modelling think time.
	Closed Mode = iota
	// Open is an open-loop workload: invocations arrive at exact fixed-rate
	// instants regardless of completions (the simulator defers an arrival
	// only while the process's previous operation is still pending).
	Open
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Closed:
		return "closed"
	case Open:
		return "open"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Spec is a declarative operation-stream specification: what each process
// issues, how fast, and with what shape. A Spec plus (params, seed) fully
// determines a Schedule, so scenarios built from Specs are reproducible.
type Spec struct {
	// Name labels the workload in reports ("" is fine).
	Name string
	// Mode is closed- or open-loop pacing.
	Mode Mode
	// Mix is the operation mix every process draws from. Nil means the
	// object's default mix (DefaultMix) chosen by the scenario runner.
	Mix OpMix
	// PerProcess optionally overrides the mix per process: process i draws
	// from PerProcess[i mod len(PerProcess)]. Empty means all use Mix.
	PerProcess []OpMix
	// OpsPerProcess is how many operations each process issues.
	OpsPerProcess int
	// Spacing is the target gap between consecutive invocations of one
	// process (mean gap when Closed, exact interarrival when Open).
	Spacing model.Time
	// Start is the real time of the first wave of invocations.
	Start model.Time
	// Ramp scales the last gap relative to the first: 1 (or 0) keeps the
	// rate constant, 0.25 shrinks gaps to a quarter by the final operation
	// (load ramps up), 4 slows down by 4×.
	Ramp float64
	// Explicit, when non-empty, is used verbatim as the schedule and every
	// generator field above is ignored. This is the hook for handcrafted
	// and adversarial schedules (the shape the lower-bound constructions of
	// internal/adversary use).
	Explicit []Invocation
}

// WithDefaults fills unset sizing fields: 5 ops/process, spacing 2d,
// start d, and — when Mix is nil — the object's default mix.
func (s Spec) WithDefaults(p model.Params, dt spec.DataType) Spec {
	if len(s.Explicit) > 0 {
		return s
	}
	if s.OpsPerProcess == 0 {
		s.OpsPerProcess = 5
	}
	if s.Spacing == 0 {
		s.Spacing = 2 * p.D
	}
	if s.Start == 0 {
		s.Start = p.D
	}
	if s.Mix == nil && len(s.PerProcess) == 0 && dt != nil {
		s.Mix = DefaultMix(dt)
	}
	return s
}

// Rate returns the spec's offered per-process rate in operations per
// second (1/Spacing); 0 when Spacing is unset or non-positive.
func (s Spec) Rate() float64 {
	if s.Spacing <= 0 {
		return 0
	}
	return 1e9 / float64(s.Spacing)
}

// Validate rejects generator specs that cannot describe a causal operation
// stream. It catches two shapes Schedule used to accept silently:
//
//   - an open-loop spec with zero or negative offered rate (Spacing ≤ 0
//     once defaults are resolved) — arrivals would pile onto one instant
//     or march backwards in time;
//   - a ramp whose end precedes its start: negative Spacing (every gap is
//     negative, so the stream's last invocation lands before its first) or
//     negative Ramp (the gap scale crosses zero mid-stream, scheduling
//     later operations before earlier ones).
//
// Explicit schedules are exempt — they are taken verbatim, adversarial
// shapes included.
func (s Spec) Validate() error {
	if len(s.Explicit) > 0 {
		return nil
	}
	if s.Spacing < 0 {
		return fmt.Errorf("workload: spec %q spacing %v is negative — the stream would end before it starts; use a positive spacing (gap between invocations)", s.Name, s.Spacing)
	}
	if s.Mode == Open && s.Spacing == 0 && s.OpsPerProcess > 1 {
		return fmt.Errorf("workload: open-loop spec %q has zero spacing (offered rate ∞/undefined) — set Spacing to the interarrival gap, e.g. Spacing: 2*d for rate n/(2d)", s.Name)
	}
	if s.Ramp < 0 {
		return fmt.Errorf("workload: spec %q ramp %v is negative — the ramp's end gap (Spacing×Ramp) precedes its start; use Ramp in (0, ∞), e.g. 0.25 to quadruple the rate", s.Name, s.Ramp)
	}
	return nil
}

// Schedule expands the spec into a concrete invocation schedule for an
// n-process system. The result is a pure function of (spec, p.N, seed).
func (s Spec) Schedule(p model.Params, seed int64) (Schedule, error) {
	if len(s.Explicit) > 0 {
		return Schedule{Invocations: append([]Invocation(nil), s.Explicit...)}, nil
	}
	if s.Mix == nil && len(s.PerProcess) == 0 {
		return Schedule{}, fmt.Errorf("workload: spec %q has no mix and no explicit schedule", s.Name)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[spec.OpKind]int)
	var sched Schedule
	for proc := 0; proc < p.N; proc++ {
		mix := s.Mix
		if len(s.PerProcess) > 0 {
			mix = s.PerProcess[proc%len(s.PerProcess)]
		}
		total := 0
		for _, w := range mix {
			if w.Weight <= 0 {
				return Schedule{}, fmt.Errorf("workload: weight %d for %q", w.Weight, w.Kind)
			}
			total += w.Weight
		}
		if total == 0 {
			return Schedule{}, fmt.Errorf("workload: empty mix for process %d", proc)
		}
		at := s.Start
		for i := 0; i < s.OpsPerProcess; i++ {
			pick := rng.Intn(total)
			var chosen WeightedOp
			for _, w := range mix {
				if pick < w.Weight {
					chosen = w
					break
				}
				pick -= w.Weight
			}
			var arg spec.Value
			if chosen.Arg != nil {
				arg = chosen.Arg(counts[chosen.Kind])
			}
			counts[chosen.Kind]++
			sched.Invocations = append(sched.Invocations, Invocation{
				At:   at,
				Proc: model.ProcessID(proc),
				Kind: chosen.Kind,
				Arg:  arg,
			})
			at += s.gap(rng, i)
		}
	}
	return sched, nil
}

// gap returns the pause after the i-th operation: the ramp-scaled spacing,
// jittered when closed-loop.
func (s Spec) gap(rng *rand.Rand, i int) model.Time {
	base := s.Spacing
	if s.Ramp > 0 && s.Ramp != 1 && s.OpsPerProcess > 1 {
		frac := float64(i) / float64(s.OpsPerProcess-1)
		base = model.Time(float64(s.Spacing) * (1 + (s.Ramp-1)*frac))
	}
	if s.Mode == Open {
		return base
	}
	half := int64(base) / 2
	if half <= 0 {
		return base
	}
	return base + model.Time(rng.Int63n(2*half+1)-half)
}

// Race returns a Spec whose explicit schedule makes every process invoke
// the given kinds back-to-back at the same instants — the maximal-contention
// shape the paper's lower-bound constructions use. Waves advance by gap per
// kind: the j-th kind of round r fires on every process at
// start + (r·len(kinds)+j)·gap.
func Race(p model.Params, start, gap model.Time, rounds int, kinds ...spec.OpKind) Spec {
	var invs []Invocation
	at := start
	for r := 0; r < rounds; r++ {
		for _, k := range kinds {
			for proc := 0; proc < p.N; proc++ {
				invs = append(invs, Invocation{At: at, Proc: model.ProcessID(proc), Kind: k, Arg: r*p.N + proc})
			}
			at += gap
		}
	}
	return Spec{Name: "race", Explicit: invs}
}

// DefaultMix returns a representative operation mix for each bundled data
// type (the mixes behind the measured columns of Tables I–IV); unknown
// types get a uniform mix over their kinds.
func DefaultMix(dt spec.DataType) OpMix {
	intArg := func(i int) spec.Value { return i }
	switch dt.Name() {
	case "register", "rmw-register":
		return OpMix{
			{Kind: types.OpWrite, Weight: 3, Arg: intArg},
			{Kind: types.OpRead, Weight: 3},
			{Kind: types.OpRMW, Weight: 2, Arg: intArg},
		}
	case "queue":
		return OpMix{
			{Kind: types.OpEnqueue, Weight: 4, Arg: intArg},
			{Kind: types.OpDequeue, Weight: 2},
			{Kind: types.OpPeek, Weight: 2},
		}
	case "stack":
		return OpMix{
			{Kind: types.OpPush, Weight: 4, Arg: intArg},
			{Kind: types.OpPop, Weight: 2},
			{Kind: types.OpTop, Weight: 2},
		}
	case "tree":
		return OpMix{
			{Kind: types.OpTreeInsert, Weight: 4, Arg: func(i int) spec.Value {
				parent := types.TreeRoot
				if i > 0 {
					parent = "n" + strconv.Itoa((i-1)/2)
				}
				return types.Edge{Node: "n" + strconv.Itoa(i), Parent: parent}
			}},
			{Kind: types.OpTreeDelete, Weight: 1, Arg: func(i int) spec.Value {
				return "n" + strconv.Itoa(i*3)
			}},
			{Kind: types.OpTreeSearch, Weight: 2, Arg: func(i int) spec.Value {
				return "n" + strconv.Itoa(i)
			}},
			{Kind: types.OpTreeDepth, Weight: 1},
		}
	case "dict":
		keys := []string{"a", "b", "c", "d"}
		return OpMix{
			{Kind: types.OpPut, Weight: 4, Arg: func(i int) spec.Value {
				return types.KV{Key: keys[i%len(keys)], Value: i}
			}},
			{Kind: types.OpDelete, Weight: 1, Arg: func(i int) spec.Value { return keys[i%len(keys)] }},
			{Kind: types.OpDictGet, Weight: 2, Arg: func(i int) spec.Value { return keys[i%len(keys)] }},
			{Kind: types.OpSize, Weight: 1},
		}
	case "pqueue":
		return OpMix{
			{Kind: types.OpPQInsert, Weight: 4, Arg: intArg},
			{Kind: types.OpPQDeleteMin, Weight: 2},
			{Kind: types.OpPQMin, Weight: 2},
		}
	case "set":
		return OpMix{
			{Kind: types.OpInsert, Weight: 3, Arg: intArg},
			{Kind: types.OpRemove, Weight: 1, Arg: intArg},
			{Kind: types.OpContains, Weight: 2, Arg: intArg},
		}
	case "counter":
		return OpMix{
			{Kind: types.OpIncrement, Weight: 3, Arg: intArg},
			{Kind: types.OpGet, Weight: 2},
		}
	case "account":
		return OpMix{
			{Kind: types.OpDeposit, Weight: 3, Arg: func(i int) spec.Value { return 50 + i }},
			{Kind: types.OpWithdraw, Weight: 2, Arg: func(i int) spec.Value { return 40 + i*7 }},
			{Kind: types.OpBalance, Weight: 2},
		}
	default:
		kinds := dt.Kinds()
		mix := make(OpMix, 0, len(kinds))
		for _, k := range kinds {
			mix = append(mix, WeightedOp{Kind: k, Weight: 1, Arg: intArg})
		}
		return mix
	}
}
