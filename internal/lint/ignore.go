package lint

import (
	"fmt"
	"strings"
)

// frameworkName is the pseudo-analyzer name under which the framework
// reports directive problems (malformed, unknown analyzer, stale). These
// findings cannot themselves be suppressed.
const frameworkName = "tbvet"

// ignoreDirective is one parsed //tbvet:ignore comment.
//
// The directive form is
//
//	//tbvet:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// and it suppresses findings of the named analyzers on the directive's
// own line (trailing placement) or the line directly below (standalone
// placement). The reason is mandatory: a suppression without a recorded
// justification is a finding in its own right. A directive that matches
// no finding of an active analyzer is stale and reported as an error, so
// suppressions cannot outlive the code they excused.
type ignoreDirective struct {
	file      string
	line      int
	col       int
	names     []string // analyzers named by the directive
	malformed bool
	unknown   []string // named analyzers that do not exist
}

const ignorePrefix = "tbvet:ignore"

// parseIgnores collects every //tbvet:ignore directive in prog.
func parseIgnores(prog *Program) []ignoreDirective {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	var out []ignoreDirective
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					d := ignoreDirective{
						file: prog.relFile(pos.Filename),
						line: pos.Line,
						col:  pos.Column,
					}
					rest := text[len(ignorePrefix):]
					namesPart, reason, found := strings.Cut(rest, " -- ")
					if !found || strings.TrimSpace(reason) == "" || strings.TrimSpace(namesPart) == "" {
						d.malformed = true
						out = append(out, d)
						continue
					}
					for _, name := range strings.Split(namesPart, ",") {
						name = strings.TrimSpace(name)
						if name == "" {
							continue
						}
						if !known[name] {
							d.unknown = append(d.unknown, name)
							continue
						}
						d.names = append(d.names, name)
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// applyIgnores filters diags through the //tbvet:ignore directives and
// appends framework findings for malformed, unknown-analyzer, and stale
// directives.
func applyIgnores(prog *Program, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	directives := parseIgnores(prog)
	if len(directives) == 0 {
		return diags
	}
	active := map[string]bool{}
	for _, a := range analyzers {
		active[a.Name] = true
	}
	matched := make([]bool, len(directives))
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for i, dir := range directives {
			if dir.file != d.File || (d.Line != dir.line && d.Line != dir.line+1) {
				continue
			}
			for _, name := range dir.names {
				if name == d.Analyzer {
					suppressed = true
					matched[i] = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	report := func(dir ignoreDirective, format string, args ...any) {
		kept = append(kept, Diagnostic{
			Analyzer: frameworkName,
			File:     dir.file,
			Line:     dir.line,
			Col:      dir.col,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for i, dir := range directives {
		if dir.malformed {
			report(dir, "malformed //tbvet:ignore directive (want //tbvet:ignore <analyzer> -- <reason>)")
			continue
		}
		for _, name := range dir.unknown {
			report(dir, "unknown analyzer %q in //tbvet:ignore directive", name)
		}
		// Stale check: only judged against analyzers that actually ran, so
		// a subset run cannot spuriously flag directives for the analyzers
		// it skipped. A directive naming only skipped analyzers is left
		// alone entirely.
		ranAny := false
		for _, name := range dir.names {
			if active[name] {
				ranAny = true
			}
		}
		if ranAny && !matched[i] {
			report(dir, "stale //tbvet:ignore directive: no %s finding on line %d or %d",
				strings.Join(dir.names, ","), dir.line, dir.line+1)
		}
	}
	return kept
}
