package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package of a loaded module tree.
// Test files (_test.go) are deliberately excluded: the analyzers state
// invariants about shipped code, and tests are free to use wall clocks,
// global randomness, and deprecated shims.
type Package struct {
	// ImportPath is the module-qualified import path.
	ImportPath string
	// Rel is the package directory relative to the module root, in slash
	// form ("." for the root package).
	Rel string
	// Dir is the absolute package directory.
	Dir string
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression, definition, and use maps
	// for the package's files.
	Info *types.Info
}

// Program is a loaded module tree: every non-test package under the module
// root, parsed and type-checked against a shared FileSet.
type Program struct {
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Root is the absolute module root directory.
	Root string
	// Module is the module path from go.mod.
	Module string
	// Packages lists every package under Root, sorted by import path.
	Packages []*Package

	byPath     map[string]*Package
	deprecated map[types.Object]string // lazily built by deprecatedObjects
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// Load parses and type-checks every non-test package under root, which
// must be a module root (contain go.mod). Module-internal imports are
// resolved from source within root; everything else (the standard
// library) goes through go/importer's source importer, so loading needs
// no compiled artifacts and no dependencies outside the standard library.
func Load(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: root %s is not a module root: %w", root, err)
	}
	m := moduleRe.FindSubmatch(gomod)
	if m == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	prog := &Program{
		Fset:   token.NewFileSet(),
		Root:   root,
		Module: string(m[1]),
		byPath: map[string]*Package{},
	}
	std := importer.ForCompiler(prog.Fset, "source", nil)
	loading := map[string]bool{}
	var load func(importPath string) (*Package, error)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == prog.Module || strings.HasPrefix(path, prog.Module+"/") {
			pkg, err := load(path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
		return std.Import(path)
	})
	load = func(importPath string) (*Package, error) {
		if pkg, ok := prog.byPath[importPath]; ok {
			return pkg, nil
		}
		if loading[importPath] {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		loading[importPath] = true
		defer delete(loading, importPath)

		rel := "."
		if importPath != prog.Module {
			rel = strings.TrimPrefix(importPath, prog.Module+"/")
		}
		dir := filepath.Join(root, filepath.FromSlash(rel))
		names, err := goFileNames(dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		files := make([]*ast.File, 0, len(names))
		for _, name := range names {
			f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(importPath, prog.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
		}
		pkg := &Package{
			ImportPath: importPath,
			Rel:        rel,
			Dir:        dir,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		}
		prog.byPath[importPath] = pkg
		prog.Packages = append(prog.Packages, pkg)
		return pkg, nil
	}

	// Walk the tree for package directories; imports fill in dependencies
	// first, so Packages accumulates in dependency-then-walk order and is
	// sorted once at the end.
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return fs.SkipDir
		}
		names, err := goFileNames(path)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := prog.Module
		if rel != "." {
			importPath = prog.Module + "/" + filepath.ToSlash(rel)
		}
		_, err = load(importPath)
		return err
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].ImportPath < prog.Packages[j].ImportPath
	})
	return prog, nil
}

// goFileNames lists the non-test .go files of dir, sorted.
func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	return names, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// relFile returns path relative to the program root in slash form, for
// stable cross-machine diagnostic output.
func (p *Program) relFile(path string) string {
	if rel, err := filepath.Rel(p.Root, path); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}
