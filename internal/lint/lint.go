// Package lint is the repository's static-analysis framework: a typed-AST
// multi-analyzer suite over the whole module tree, built only on the
// standard library (go/ast, go/types, go/importer). cmd/tbvet is the
// driver; `make vet` and the CI lint job run it over ./... and fail on
// any finding.
//
// The suite enforces statically the invariants the test suite pins
// dynamically — determinism of Reports, allocation discipline on
// //tb:hotpath functions, cancellation hygiene in the streaming pipeline,
// and the retirement of the pre-Scenario facade shims — so new code
// cannot quietly regress them between test runs. See
// docs/STATIC_ANALYSIS.md for the analyzer catalogue and the
// //tbvet:ignore suppression directive.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position. File is
// relative to the loaded module root, so output is stable across
// machines and checkouts.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the familiar file:line:col vet shape,
// with the analyzer name trailing in brackets.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Analyzer is one static check run over every package it applies to.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -analyzers selection,
	// and //tbvet:ignore directives.
	Name string
	// Doc is a one-line description for the driver's -list output.
	Doc string
	// Packages restricts the analyzer to packages whose module-relative
	// path has one of these prefixes; empty means every package.
	Packages []string
	// Exempt lists packages deliberately carved out of the analyzer's
	// scope, each with a recorded reason. An exemption is documentation
	// made executable: the package appears in Packages (it is in scope,
	// not silently unscanned) but is skipped, and the driver's -list
	// output names the exemption and why.
	Exempt []Exemption
	// Run reports the analyzer's findings for one package.
	Run func(*Pass)
}

// Exemption is one deliberately excluded package subtree with the reason
// it is allowed to break the analyzer's invariant.
type Exemption struct {
	// Path is the module-relative package path prefix exempted.
	Path string
	// Reason records why the exemption is sound.
	Reason string
}

// matchesPrefix reports whether rel equals prefix or sits under it.
func matchesPrefix(rel, prefix string) bool {
	return rel == prefix || strings.HasPrefix(rel, prefix+"/")
}

// Exempted returns the exemption covering pkg, if any.
func (a *Analyzer) Exempted(pkg *Package) (Exemption, bool) {
	for _, e := range a.Exempt {
		if matchesPrefix(pkg.Rel, e.Path) {
			return e, true
		}
	}
	return Exemption{}, false
}

// applies reports whether the analyzer covers pkg: in scope via Packages
// (or unrestricted) and not explicitly exempted.
func (a *Analyzer) applies(pkg *Package) bool {
	if _, ok := a.Exempted(pkg); ok {
		return false
	}
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if matchesPrefix(pkg.Rel, p) {
			return true
		}
	}
	return false
}

// Pass carries one (analyzer, package) run and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     p.Prog.relFile(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Hotpath, CtxHygiene, Deprecated, PkgDoc}
}

// ByName resolves a comma-separated analyzer selection against All.
func ByName(names string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty analyzer selection %q", names)
	}
	return out, nil
}

// Run executes the analyzers over every package of prog, applies the
// //tbvet:ignore suppression directives, and returns the surviving
// diagnostics sorted by (file, line, column, analyzer, message) — a
// deterministic order regardless of package load or map iteration order.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			if !a.applies(pkg) {
				continue
			}
			a.Run(&Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags})
		}
	}
	diags = applyIgnores(prog, analyzers, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}
