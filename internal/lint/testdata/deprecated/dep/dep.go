// Package dep declares deprecated shims for the analyzer goldens.
package dep

// Legacy is the pre-redesign entry point.
//
// Deprecated: use Fresh instead.
func Legacy() int { return legacy() }

// Shim survives only for compatibility.
//
// Deprecated: declare a Plan instead.
type Shim struct {
	N int
}

func legacy() int { return 1 }

// Fresh is the replacement.
func Fresh() int { return 2 }
