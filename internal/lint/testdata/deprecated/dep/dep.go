// Package dep declares deprecated shims for the analyzer goldens.
package dep

// Legacy is the pre-redesign entry point.
//
// Deprecated: use Fresh instead.
func Legacy() int { return legacy() }

// Shim survives only for compatibility.
//
// Deprecated: declare a Plan instead.
type Shim struct {
	N int
}

// Options is the live options surface; only some fields are retired.
type Options struct {
	// Level is current API.
	Level int
	// Verbose survives only for old call sites.
	//
	// Deprecated: set Level instead.
	Verbose bool
}

// apply reads the retired field from inside the declaring package, which
// stays exempt (the shim has to be folded into its replacement somewhere).
func (o Options) apply() int {
	if o.Verbose {
		return 2
	}
	return o.Level
}

// Effective is the supported accessor.
func (o Options) Effective() int { return o.apply() }

func legacy() int { return 1 }

// Fresh is the replacement.
func Fresh() int { return 2 }
