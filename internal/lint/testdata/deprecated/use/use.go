// Package use references the deprecated shims from outside their
// declaring package.
package use

import "fixture/dep"

// Old still calls the shim.
func Old() int {
	return dep.Legacy() // want "reference to deprecated dep.Legacy"
}

// Hold still names the shim type.
func Hold() int {
	var s dep.Shim // want "reference to deprecated dep.Shim"
	return s.N
}

// New uses the replacement.
func New() int {
	return dep.Fresh()
}

// Noisy sets the retired field through a composite-literal key.
func Noisy() int {
	o := dep.Options{Verbose: true} // want "reference to deprecated field dep.Verbose"
	return o.Effective()
}

// Peek reads the retired field through a selector.
func Peek(o dep.Options) bool {
	return o.Verbose // want "reference to deprecated field dep.Verbose"
}

// Tuned uses only current fields of the same struct.
func Tuned() int {
	o := dep.Options{Level: 3}
	return o.Effective()
}
