// Package use references the deprecated shims from outside their
// declaring package.
package use

import "fixture/dep"

// Old still calls the shim.
func Old() int {
	return dep.Legacy() // want "reference to deprecated dep.Legacy"
}

// Hold still names the shim type.
func Hold() int {
	var s dep.Shim // want "reference to deprecated dep.Shim"
	return s.N
}

// New uses the replacement.
func New() int {
	return dep.Fresh()
}
