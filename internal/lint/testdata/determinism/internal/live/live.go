// Package live mirrors the real internal/live: wall-clock reads are the
// point of the package, and the determinism analyzer exempts it by path
// with a recorded reason instead of leaving it silently unscanned. No
// want comments here — a finding in this file is an analyzer bug.
package live

import "time"

// Epoch reads the wall clock, which the exemption allows.
func Epoch() int64 {
	return time.Now().UnixNano()
}
