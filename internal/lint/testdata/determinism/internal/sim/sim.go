// Package sim seeds determinism violations for the analyzer goldens.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// Tick reads the wall clock.
func Tick() int64 {
	return time.Now().UnixNano() // want "time.Now is nondeterministic"
}

// Jitter draws from the global source.
func Jitter() int {
	return rand.Intn(8) // want "global math/rand source"
}

// Seeded is fine: the generator carries an explicit seed.
func Seeded(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(8)
}

// Keys leaks map iteration order into its result.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "accumulates map iteration order"
		out = append(out, k)
	}
	return out
}

// SortedKeys sorts before returning, so the map order never escapes.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SortedLateKeys sorts through a closure-taking API; still fine.
func SortedLateKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Totals only folds order-insensitively; ranging the map is fine.
func Totals(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
