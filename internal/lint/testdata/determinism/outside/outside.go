// Package outside sits outside the determinism analyzer's scope, so its
// wall-clock read must produce no finding.
package outside

import "time"

// Stamp may read the wall clock here.
func Stamp() int64 {
	return time.Now().UnixNano()
}
