// Package engine seeds ctxhygiene violations for the analyzer goldens.
package engine

import "context"

// Pump fans values out with no cancellation arm: a stalled consumer
// leaks the goroutine.
func Pump(ctx context.Context, in []int) <-chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, v := range in {
			out <- v // want "not guarded by a select"
		}
	}()
	return out
}

// PumpGuarded pairs every send with a ctx.Done arm.
func PumpGuarded(ctx context.Context, in []int) <-chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, v := range in {
			select {
			case out <- v:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// PumpNonBlocking uses a default arm: the send cannot block.
func PumpNonBlocking(in []int) <-chan int {
	out := make(chan int, 1)
	go func() {
		defer close(out)
		for _, v := range in {
			select {
			case out <- v:
			default:
			}
		}
	}()
	return out
}

// Inline sends from the caller's goroutine are outside this analyzer's
// contract (the caller controls its own lifetime).
func Inline(out chan<- int, v int) {
	out <- v
}
