package bad // want "package bad has no package doc comment"

// Answer is documented, but the package is not.
func Answer() int { return 42 }
