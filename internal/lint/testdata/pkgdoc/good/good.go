// Package good carries a package doc comment.
package good

// Answer is documented enough.
func Answer() int { return 42 }
