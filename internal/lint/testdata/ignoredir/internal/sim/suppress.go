// Package sim exercises the //tbvet:ignore suppression directive.
package sim

import "time"

// Stamp is allowed its wall-clock read: the trailing directive
// suppresses the determinism finding.
func Stamp() int64 {
	return time.Now().UnixNano() //tbvet:ignore determinism -- fixture: the wall clock is the point here
}

// Epoch is covered by a standalone directive on the preceding line.
func Epoch() int64 {
	//tbvet:ignore determinism -- fixture: preceding-line placement
	return time.Now().UnixNano()
}

// Clean has nothing to suppress, so the directive below is stale.
func Clean() int64 {
	//tbvet:ignore determinism -- fixture: nothing to excuse // want "stale //tbvet:ignore directive"
	return 42
}

// Unknown names an analyzer that does not exist.
func Unknown() int64 {
	//tbvet:ignore nosuch -- fixture: unknown analyzer // want "unknown analyzer \"nosuch\""
	return 42
}

// Malformed omits the mandatory reason separator.
func Malformed() int64 {
	//tbvet:ignore determinism missing the separator // want "malformed //tbvet:ignore directive"
	return 42
}
