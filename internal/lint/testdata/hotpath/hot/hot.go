// Package hot seeds hotpath violations for the analyzer goldens.
package hot

import "fmt"

type stats struct{ n int }

// Observe formats inside a marked fold.
//
//tb:hotpath
func (s *stats) Observe(v int) {
	s.n += v
	fmt.Println(v) // want "call to fmt.Println" // want "value boxed into"
}

// Box builds []any from ints, boxing each element.
//
//tb:hotpath
func Box(vs []int) []any {
	out := make([]any, 0, len(vs))
	for _, v := range vs {
		out = append(out, v) // want "value boxed into"
	}
	return out
}

// Widen boxes through its return value.
//
//tb:hotpath
func Widen(v int) any {
	return v // want "value boxed into"
}

// Capture lets closures over the loop variable escape.
//
//tb:hotpath
func Capture(vs []int) []func() int {
	var fs []func() int
	for _, v := range vs {
		fs = append(fs, func() int { return v }) // want "captures loop variable"
	}
	return fs
}

// PointerPass converts a pointer to an interface: pointer-shaped, free.
//
//tb:hotpath
func PointerPass(s *stats) any {
	return s
}

// Immediate invokes its closure in place; nothing escapes.
//
//tb:hotpath
func Immediate(vs []int) int {
	total := 0
	for _, v := range vs {
		total += func() int { return v }()
	}
	return total
}

// Cold is unmarked and free to do all of the above.
func Cold(v int) any {
	fmt.Println(v)
	return v
}
