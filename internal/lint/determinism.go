package lint

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the reproduction's headline invariant — a Report
// is a pure function of its Scenarios — at the source level, in the
// packages that execute and verify runs:
//
//   - no time.Now: simulated code sees only model.Time threaded through
//     the Scenario; wall-clock reads make runs unrepeatable.
//   - no global math/rand source: every random draw must come from an
//     explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed))), so a
//     scenario's seed fully determines its workload and delays.
//   - no map-ordered output: a slice built while ranging over a map holds
//     the runtime's random iteration order; if it is never sorted before
//     leaving the function it can reach a Report or rendered table and
//     break bit-identical output across runs and worker counts.
//
// internal/live is in scope but explicitly exempted: the live runtime is
// wall-clock by design, so the exemption records the deliberate exception
// instead of leaving the package silently unscanned.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, the global math/rand source, and unsorted map-iteration output in the sim/engine/check/workload/keyspace packages",
	Packages: []string{
		"internal/sim",
		"internal/engine",
		"internal/check",
		"internal/workload",
		"internal/keyspace",
		"internal/live",
	},
	Exempt: []Exemption{{
		Path: "internal/live",
		Reason: "the live runtime is wall-clock by design: it timestamps real " +
			"message delays with the host clock and retunes from them; its runs " +
			"are checked post hoc, not reproduced bit-identically",
	}},
	Run: runDeterminism,
}

// seededRandConstructors are the math/rand package-level functions that
// build explicitly seeded generators rather than drawing from the global
// source.
var seededRandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes a *rand.Rand; deterministic given a seeded one
	// math/rand/v2 constructors, should the tree ever migrate.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil { // methods are fine: the receiver carries the source
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(sel.Pos(), "time.Now is nondeterministic under simulation; thread model.Time through the Scenario instead")
				}
			case "math/rand", "math/rand/v2":
				if !seededRandConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(), "rand.%s draws from the global math/rand source; use an explicitly seeded rand.New(rand.NewSource(seed))", fn.Name())
				}
			}
			return true
		})
		checkMapOrderFile(pass, f)
	}
}

// checkMapOrderFile applies the map-iteration-order check to every
// function body in f. Each innermost function body is its own scope: a
// range-over-map inside a closure must sort within that closure.
func checkMapOrderFile(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				checkMapOrderBody(pass, fn.Body)
			}
		case *ast.FuncLit:
			checkMapOrderBody(pass, fn.Body)
		}
		return true
	})
}

// checkMapOrderBody reports range-over-map loops in body that append to a
// slice variable which is never subsequently passed to a sort.* or
// slices.* call within the same body. Nested function literals are
// skipped — they are checked as their own scopes.
func checkMapOrderBody(pass *Pass, body *ast.BlockStmt) {
	type pending struct {
		loop *ast.RangeStmt
		obj  types.Object
		name string
	}
	var loops []pending
	inspectSkippingFuncLits(body, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		tv, ok := pass.Pkg.Info.Types[rs.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		// Collect the slice variables appended to inside the loop body
		// (including inside closures launched from it).
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Rhs {
				call, ok := as.Rhs[i].(*ast.CallExpr)
				if !ok || !isBuiltin(pass.Pkg.Info, call.Fun, "append") {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Pkg.Info.ObjectOf(id)
				if obj == nil {
					continue
				}
				loops = append(loops, pending{loop: rs, obj: obj, name: id.Name})
			}
			return true
		})
	})
	if len(loops) == 0 {
		return
	}
	// A loop's slice is redeemed by any later sort.*/slices.* call in the
	// same body that mentions the variable (sort.Strings(s), sort.Slice(s,
	// ...), slices.SortFunc(s, ...), sort.Sort(byKey(s)), ...).
	reported := map[*ast.RangeStmt]bool{}
	for _, p := range loops {
		if reported[p.loop] {
			continue
		}
		sorted := false
		inspectSkippingFuncLits(body, func(n ast.Node) {
			if sorted {
				return
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() < p.loop.End() {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return
			}
			if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
				return
			}
			ast.Inspect(call, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.ObjectOf(id) == p.obj {
					sorted = true
				}
				return !sorted
			})
		})
		if !sorted {
			reported[p.loop] = true
			pass.Reportf(p.loop.Pos(), "slice %q accumulates map iteration order and is never sorted in this function; sort it before it escapes", p.name)
		}
	}
}

// inspectSkippingFuncLits walks the statements of body without descending
// into nested function literals. The sort-args of sort.Slice-style calls
// are still visited by callers via ast.Inspect on the call itself.
func inspectSkippingFuncLits(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// isBuiltin reports whether fun resolves to the named builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
