package lint

import (
	"go/ast"
)

// CtxHygiene enforces the streaming pipeline's no-leaked-worker
// guarantee statically: every goroutine launched with `go func(...)`
// in the pipeline packages must guard each blocking channel send with a
// select that also carries an escape arm — a receive case (ctx.Done(),
// a quit channel, ...) or a default. An unguarded send is exactly how a
// worker outlives a cancelled stream: the consumer stops draining, the
// send blocks forever, and the goroutine leaks. stream_test.go pins
// this dynamically by counting goroutines; this analyzer pins it at the
// source so a new pipeline stage cannot merge without its cancellation
// arm.
var CtxHygiene = &Analyzer{
	Name: "ctxhygiene",
	Doc:  "require every channel send in a pipeline goroutine to sit in a select with a cancellation arm",
	Packages: []string{
		"internal/engine",
		"internal/workload",
	},
	Run: runCtxHygiene,
}

func runCtxHygiene(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineSends(pass, lit.Body)
			return true
		})
	}
}

// checkGoroutineSends reports each send statement in body that is not
// the communication of a select case whose select carries an escape arm.
func checkGoroutineSends(pass *Pass, body *ast.BlockStmt) {
	// Sends that are a select case's communication are collected from the
	// selects themselves; any other send is unguarded by construction.
	guarded := map[*ast.SendStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		escape := false
		var sends []*ast.SendStmt
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			switch comm := cc.Comm.(type) {
			case nil:
				escape = true // default: the send cannot block
			case *ast.SendStmt:
				sends = append(sends, comm)
			default:
				escape = true // a receive case: ctx.Done(), quit, result, ...
			}
		}
		if escape {
			for _, s := range sends {
				guarded[s] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		s, ok := n.(*ast.SendStmt)
		if !ok || guarded[s] {
			return true
		}
		pass.Reportf(s.Pos(), "goroutine send is not guarded by a select with a cancellation arm; add a ctx.Done()/quit case so a stalled consumer cannot leak this worker")
		return true
	})
}
