package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Deprecated keeps the pre-Scenario facade retired: non-test code may
// not reference a symbol — top-level or struct field — whose doc comment
// carries a standard "Deprecated:" paragraph from outside the package
// that declares it. The declaring package itself is exempt — the facade
// keeps the Config/NewCluster/RenderTable shims alive and bridges them
// onto the Scenario API, and workload folds its retired RunOptions
// checker knobs into check.Options — and test files are never loaded, so
// the shims' regression tests keep working. Everything else (cmd tools,
// examples, new subsystems) must use the replacement named in the
// deprecation note.
var Deprecated = &Analyzer{
	Name: "deprecated",
	Doc:  "forbid references to Deprecated-marked module symbols (including struct fields) from outside their declaring package",
	Run:  runDeprecated,
}

var deprecatedRe = regexp.MustCompile(`(?ms)^Deprecated: (.*?)(?:\n\n|\z)`)

// deprecationNote returns the first sentence of the doc group's
// Deprecated: paragraph, if any.
func deprecationNote(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	m := deprecatedRe.FindStringSubmatch(doc.Text())
	if m == nil {
		return "", false
	}
	note := strings.Join(strings.Fields(m[1]), " ")
	if i := strings.Index(note, ". "); i >= 0 {
		note = note[:i]
	}
	return strings.TrimSuffix(note, "."), true
}

// deprecatedObjects lazily indexes every Deprecated-marked top-level
// object of the program, mapping it to its deprecation note.
func (p *Program) deprecatedObjects() map[types.Object]string {
	if p.deprecated != nil {
		return p.deprecated
	}
	p.deprecated = map[types.Object]string{}
	record := func(pkg *Package, id *ast.Ident, note string) {
		if obj := pkg.Info.Defs[id]; obj != nil {
			p.deprecated[obj] = note
		}
	}
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if note, ok := deprecationNote(d.Doc); ok {
						record(pkg, d.Name, note)
					}
				case *ast.GenDecl:
					declNote, declOK := deprecationNote(d.Doc)
					for _, s := range d.Specs {
						switch s := s.(type) {
						case *ast.TypeSpec:
							if note, ok := deprecationNote(s.Doc); ok {
								record(pkg, s.Name, note)
							} else if declOK {
								record(pkg, s.Name, declNote)
							}
							// Struct fields carry their own Deprecated:
							// paragraphs (option-surface shims like the old
							// RunOptions checker knobs); index them so
							// selector and composite-literal references are
							// policed like top-level symbols.
							if st, ok := s.Type.(*ast.StructType); ok {
								for _, field := range st.Fields.List {
									note, ok := deprecationNote(field.Doc)
									if !ok {
										note, ok = deprecationNote(field.Comment)
									}
									if !ok {
										continue
									}
									for _, name := range field.Names {
										record(pkg, name, note)
									}
								}
							}
						case *ast.ValueSpec:
							note, ok := deprecationNote(s.Doc)
							if !ok {
								note, ok = declNote, declOK
							}
							if ok {
								for _, name := range s.Names {
									record(pkg, name, note)
								}
							}
						}
					}
				}
			}
		}
	}
	return p.deprecated
}

func runDeprecated(pass *Pass) {
	dep := pass.Prog.deprecatedObjects()
	if len(dep) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == pass.Pkg.Types {
				return true
			}
			if note, ok := dep[obj]; ok {
				what := ""
				if v, isVar := obj.(*types.Var); isVar && v.IsField() {
					what = "field "
				}
				pass.Reportf(id.Pos(), "reference to deprecated %s%s.%s (deprecated: %s)", what, obj.Pkg().Name(), obj.Name(), note)
			}
			return true
		})
	}
}
