package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts `// want "regex"` expectation comments from fixture
// sources. Multiple wants may share a line.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// expectation is one want comment: a diagnostic must land on (file,
// line) with a message matching re.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadExpectations scans every .go file under root for want comments.
func loadExpectations(t *testing.T, root string) []*expectation {
	t.Helper()
	var out []*expectation
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regex %q: %v", rel, line, m[1], err)
				}
				out = append(out, &expectation{file: filepath.ToSlash(rel), line: line, re: re})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runFixture loads the named testdata module, runs the full analyzer
// suite, and matches the findings against the fixture's want comments:
// every finding must be expected, and every expectation must be hit.
func runFixture(t *testing.T, name string) []Diagnostic {
	t.Helper()
	root := filepath.Join("testdata", name)
	prog, err := Load(root)
	if err != nil {
		t.Fatalf("Load(%s): %v", root, err)
	}
	diags := Run(prog, All())
	wants := loadExpectations(t, root)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
	return diags
}

func TestDeterminismGolden(t *testing.T) { runFixture(t, "determinism") }
func TestHotpathGolden(t *testing.T)     { runFixture(t, "hotpath") }
func TestCtxHygieneGolden(t *testing.T)  { runFixture(t, "ctxhygiene") }
func TestDeprecatedGolden(t *testing.T)  { runFixture(t, "deprecated") }
func TestPkgDocGolden(t *testing.T)      { runFixture(t, "pkgdoc") }
func TestIgnoreDirectives(t *testing.T)  { runFixture(t, "ignoredir") }

// TestDeterminismExemptionIsLoadBearing proves the internal/live carve-out
// does real work: the fixture's internal/live package reads time.Now and
// reports nothing under the shipped analyzer (runFixture above), but a
// copy of the analyzer with the exemption stripped must flag it. The
// package is in scope and skipped, not silently unscanned.
func TestDeterminismExemptionIsLoadBearing(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "determinism"))
	if err != nil {
		t.Fatal(err)
	}
	stripped := *Determinism
	stripped.Exempt = nil
	hit := false
	for _, d := range Run(prog, []*Analyzer{&stripped}) {
		if strings.HasPrefix(d.File, "internal/live/") && strings.Contains(d.Message, "time.Now") {
			hit = true
		}
	}
	if !hit {
		t.Fatal("stripping the internal/live exemption produced no time.Now finding; the exemption is vacuous")
	}
	if _, ok := Determinism.Exempted(&Package{Rel: "internal/live"}); !ok {
		t.Fatal("Determinism does not exempt internal/live")
	}
	if _, ok := Determinism.Exempted(&Package{Rel: "internal/engine"}); ok {
		t.Fatal("Determinism exempts internal/engine; the carve-out leaks")
	}
}

// TestDeterministicOutput pins the framework's output contract: two runs
// over the same tree yield identical ordered findings.
func TestDeterministicOutput(t *testing.T) {
	a := runFixture(t, "determinism")
	b := runFixture(t, "determinism")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs disagree:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("fixture produced no findings; determinism check is vacuous")
	}
}

// TestAnalyzerSelection checks subset runs: selecting only pkgdoc over
// the determinism fixture must not report determinism findings, and the
// fixture's determinism-only //tbvet:ignore directives (none) stay out
// of the stale check.
func TestAnalyzerSelection(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "determinism"))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := ByName("pkgdoc")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run(prog, sel); len(diags) != 0 {
		t.Fatalf("pkgdoc-only run over determinism fixture reported: %v", diags)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestSubsetRunSkipsForeignIgnores pins the stale-directive scoping: a
// directive naming an analyzer that did not run is neither applied nor
// reported stale.
func TestSubsetRunSkipsForeignIgnores(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "ignoredir"))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := ByName("pkgdoc")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(prog, sel) {
		// The malformed and unknown-analyzer directives still surface (they
		// are broken syntax regardless of selection); stale determinism
		// directives must not.
		if strings.Contains(d.Message, "stale") {
			t.Errorf("subset run reported a foreign directive as stale: %s", d)
		}
	}
}

// TestCleanTree is the shipped-tree gate in test form: the full analyzer
// suite over this repository reports nothing. CI additionally enforces
// this through `make vet`, but keeping it in `go test` means a bare test
// run catches a violation too.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	prog, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(prog.Packages))
	}
	for _, d := range Run(prog, All()) {
		t.Errorf("finding on shipped tree: %s", d)
	}
}
