package lint

import "strings"

// PkgDoc is the original tbvet check, migrated into the framework: every
// package — library, command, and example alike — must carry a
// package-level doc comment on at least one non-test file.
var PkgDoc = &Analyzer{
	Name: "pkgdoc",
	Doc:  "require a package doc comment on every package",
	Run:  runPkgDoc,
}

func runPkgDoc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return
		}
	}
	// Files are sorted by name, so the anchor position is stable.
	pass.Reportf(pass.Pkg.Files[0].Name.Pos(), "package %s has no package doc comment", pass.Pkg.Types.Name())
}
