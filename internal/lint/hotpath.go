package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotpath enforces allocation discipline on functions annotated with a
// //tb:hotpath doc-comment directive — the simulator event loop, the
// checker frontier walk, the OnlineStats fold, and whatever future code
// opts in. Inside a marked function:
//
//   - no fmt.* calls: formatting allocates and drags reflection into the
//     loop; cold error paths must be extracted into unmarked helpers.
//   - no boxing into interface{}/any: converting a non-pointer-shaped
//     concrete value (int, string, struct, slice, ...) to an interface
//     heap-allocates. Pointer-shaped values (*T, chan, map, func) convert
//     without allocating and are allowed.
//   - no escaping closures over loop variables: since Go 1.22 each
//     iteration's variable is distinct, so a closure that outlives the
//     loop body forces a heap allocation per iteration.
//
// The check is intraprocedural by design: a marked function may call
// unmarked helpers, which keeps cold paths out of the hot function's
// body and its inlining budget — exactly the refactor the analyzer is
// meant to force.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid fmt calls, interface boxing, and escaping loop-variable closures in //tb:hotpath functions",
	Run:  runHotpath,
}

// hotpathMarker is the doc-comment line that opts a function in.
const hotpathMarker = "tb:hotpath"

// isHotpath reports whether the doc group carries the marker directive.
func isHotpath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == hotpathMarker {
			return true
		}
	}
	return false
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd.Doc) {
				continue
			}
			h := &hotwalker{pass: pass, fname: fd.Name.Name, immediate: map[*ast.FuncLit]bool{}}
			h.walkBody(fd.Body, pass.Pkg.Info.Defs[fd.Name].Type().(*types.Signature), nil)
		}
	}
}

// hotwalker walks one marked function, tracking the enclosing signature
// (for return-statement boxing) and the loop variables in scope (for
// escaping-closure detection).
type hotwalker struct {
	pass  *Pass
	fname string
	// immediate marks function literals that are invoked in place
	// (CallExpr.Fun); they run within the iteration and never escape.
	immediate map[*ast.FuncLit]bool
}

// walkBody checks one function body. sig is the body's own signature;
// loopVars maps the loop variables of enclosing loops within the marked
// function.
func (h *hotwalker) walkBody(body *ast.BlockStmt, sig *types.Signature, loopVars map[types.Object]bool) {
	info := h.pass.Pkg.Info
	var walk func(n ast.Node, loopVars map[types.Object]bool) bool
	walk = func(n ast.Node, loopVars map[types.Object]bool) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// An immediately-invoked literal runs within the iteration and
			// never escapes; anything else (stored, passed, deferred,
			// go'ed) is treated as escaping, and its captures of enclosing
			// loop variables are reported here, once per variable. Either
			// way the body is walked with the literal's own signature.
			litSig, ok := info.Types[n].Type.(*types.Signature)
			if !ok {
				return false
			}
			if h.immediate[n] {
				h.walkBody(n.Body, litSig, loopVars)
				return false
			}
			if len(loopVars) > 0 {
				for _, id := range capturedLoopVars(info, n, loopVars) {
					h.pass.Reportf(id.Pos(), "closure in //tb:hotpath function %s captures loop variable %q, forcing a per-iteration heap allocation; hoist the variable or restructure the loop", h.fname, id.Name)
				}
			}
			h.walkBody(n.Body, litSig, nil)
			return false
		case *ast.RangeStmt:
			inner := loopVars
			if n.Tok == token.DEFINE {
				inner = extendLoopVars(info, inner, n.Key, n.Value)
			}
			if n.X != nil {
				walkNode(n.X, loopVars, walk)
			}
			walkNode(n.Body, inner, walk)
			return false
		case *ast.ForStmt:
			inner := loopVars
			if as, ok := n.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				exprs := make([]ast.Expr, len(as.Lhs))
				copy(exprs, as.Lhs)
				inner = extendLoopVars(info, inner, exprs...)
			}
			if n.Init != nil {
				walkNode(n.Init, loopVars, walk)
			}
			if n.Cond != nil {
				walkNode(n.Cond, inner, walk)
			}
			if n.Post != nil {
				walkNode(n.Post, inner, walk)
			}
			walkNode(n.Body, inner, walk)
			return false
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				h.immediate[lit] = true
			}
			h.checkCall(n)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if lt := info.TypeOf(n.Lhs[i]); lt != nil {
						h.checkBox(n.Rhs[i], lt)
					}
				}
			}
		case *ast.ReturnStmt:
			results := sig.Results()
			if len(n.Results) == results.Len() {
				for i, res := range n.Results {
					h.checkBox(res, results.At(i).Type())
				}
			}
		case *ast.SendStmt:
			if ch, ok := info.TypeOf(n.Chan).Underlying().(*types.Chan); ok {
				h.checkBox(n.Value, ch.Elem())
			}
		case *ast.CompositeLit:
			h.checkCompositeLit(n)
		}
		return true
	}
	walkNode(body, loopVars, walk)
}

// walkNode runs walk over n, threading the loop-variable scope.
func walkNode(n ast.Node, loopVars map[types.Object]bool, walk func(ast.Node, map[types.Object]bool) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		return walk(m, loopVars)
	})
}

// extendLoopVars returns base extended with the objects defined by the
// given loop-variable expressions.
func extendLoopVars(info *types.Info, base map[types.Object]bool, exprs ...ast.Expr) map[types.Object]bool {
	out := map[types.Object]bool{}
	for o := range base {
		out[o] = true
	}
	for _, e := range exprs {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// capturedLoopVars returns the identifiers inside lit that reference loop
// variables from the enclosing scopes, one per distinct variable.
func capturedLoopVars(info *types.Info, lit *ast.FuncLit, loopVars map[types.Object]bool) []*ast.Ident {
	seen := map[types.Object]bool{}
	var out []*ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj != nil && loopVars[obj] && !seen[obj] {
			seen[obj] = true
			out = append(out, id)
		}
		return true
	})
	return out
}

// checkCall reports fmt calls and boxing at call boundaries (arguments,
// conversions, append into interface-element slices).
func (h *hotwalker) checkCall(call *ast.CallExpr) {
	info := h.pass.Pkg.Info
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			h.pass.Reportf(call.Pos(), "call to fmt.%s in //tb:hotpath function %s; extract the cold path into an unmarked helper", fn.Name(), h.fname)
		}
	}
	// Conversion: T(x) where T is an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			h.checkBox(call.Args[0], tv.Type)
		}
		return
	}
	// Builtins: only append can box (into a []any-style slice).
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" && call.Ellipsis == 0 && len(call.Args) > 1 {
				if sl, ok := info.TypeOf(call).Underlying().(*types.Slice); ok {
					for _, arg := range call.Args[1:] {
						h.checkBox(arg, sl.Elem())
					}
				}
			}
			return
		}
	}
	sig, ok := info.TypeOf(call.Fun).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != 0 {
				continue // s... passes the slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		h.checkBox(arg, pt)
	}
}

// checkCompositeLit reports boxing of elements into interface-typed
// slots of slice, array, and map literals.
func (h *hotwalker) checkCompositeLit(lit *ast.CompositeLit) {
	t := h.pass.Pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		h.checkLitElems(lit, u.Elem())
	case *types.Array:
		h.checkLitElems(lit, u.Elem())
	case *types.Map:
		for _, e := range lit.Elts {
			if kv, ok := e.(*ast.KeyValueExpr); ok {
				h.checkBox(kv.Key, u.Key())
				h.checkBox(kv.Value, u.Elem())
			}
		}
	}
}

func (h *hotwalker) checkLitElems(lit *ast.CompositeLit, elem types.Type) {
	for _, e := range lit.Elts {
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			e = kv.Value
		}
		h.checkBox(e, elem)
	}
}

// checkBox reports expr if assigning it to a slot of type dst boxes a
// concrete non-pointer-shaped value into an interface.
func (h *hotwalker) checkBox(expr ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	src := h.pass.Pkg.Info.TypeOf(expr)
	if src == nil {
		return
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch src.Underlying().(type) {
	case *types.Interface:
		return // interface-to-interface carries the existing box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: converts without allocating
	}
	h.pass.Reportf(expr.Pos(), "%s value boxed into %s in //tb:hotpath function %s; keep hot data monomorphic", src.String(), dst.String(), h.fname)
}
