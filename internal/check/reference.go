package check

import (
	"strings"

	"timebounds/internal/history"
	"timebounds/internal/spec"
)

// This file holds the textbook Wing–Gong search exactly as first
// implemented: memoization on a (done-set, state) string key, an O(n)
// completed-ops scan per node, and a full candidate sweep with per-pred
// minimality checks. It is retained as the oracle the equivalence tests
// compare the optimized checker against (TestCheckMatchesReference), and
// as the engine behind Explain's diagnostics, where clarity beats speed.

// checkReference decides linearizability with the unoptimized search.
func checkReference(dt spec.DataType, h *history.History) Result {
	ops := h.Ops()
	n := len(ops)
	if n == 0 {
		return Result{Linearizable: true}
	}

	c := &refChecker{
		dt:   dt,
		ops:  ops,
		done: make([]bool, n),
		memo: make(map[string]bool),
	}
	// Precompute the real-time precedence relation: pred[i] lists indexes
	// that must be linearized before op i may be chosen.
	c.pred = make([][]int, n)
	for i := range ops {
		for j := range ops {
			if i == j {
				continue
			}
			// ops[j] precedes ops[i] iff ops[j] responded strictly before
			// ops[i] was invoked.
			if !ops[j].Pending && ops[j].Respond < ops[i].Invoke {
				c.pred[i] = append(c.pred[i], j)
			}
		}
	}

	ok := c.search(dt.InitialState())
	res := Result{Linearizable: ok, StatesExplored: len(c.memo)}
	if ok {
		res.Witness = make([]history.OpID, len(c.order))
		for i, idx := range c.order {
			res.Witness[i] = c.ops[idx].ID
		}
	}
	return res
}

type refChecker struct {
	dt    spec.DataType
	ops   []history.Record
	done  []bool
	order []int
	pred  [][]int
	memo  map[string]bool
}

// remainingCompleted counts completed (non-pending) ops not yet linearized.
func (c *refChecker) remainingCompleted() int {
	n := 0
	for i, op := range c.ops {
		if !op.Pending && !c.done[i] {
			n++
		}
	}
	return n
}

// key encodes (done set, state) for memoization.
func (c *refChecker) key(state spec.State) string {
	var sb strings.Builder
	sb.Grow(len(c.done) + 16)
	for _, d := range c.done {
		if d {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	sb.WriteByte('|')
	sb.WriteString(c.dt.EncodeState(state))
	return sb.String()
}

// search tries to linearize all completed operations from the given state.
// Pending operations are linearized opportunistically when doing so unblocks
// progress; they never have to be linearized.
func (c *refChecker) search(state spec.State) bool {
	if c.remainingCompleted() == 0 {
		return true
	}
	k := c.key(state)
	if failed, seen := c.memo[k]; seen {
		return !failed
	}

	for i, op := range c.ops {
		if c.done[i] {
			continue
		}
		if !c.minimal(i) {
			continue
		}
		next, ret := c.dt.Apply(state, op.Kind, op.Arg)
		if !op.Pending && !spec.ValueEqual(ret, op.Ret) {
			// A completed op must return exactly what the spec dictates.
			continue
		}
		c.done[i] = true
		c.order = append(c.order, i)
		if c.search(next) {
			return true
		}
		c.order = c.order[:len(c.order)-1]
		c.done[i] = false
	}
	c.memo[k] = true // dead end from this (done set, state)
	return false
}

// minimal reports whether op i may be linearized next: every operation that
// really-time-precedes it is already linearized.
func (c *refChecker) minimal(i int) bool {
	for _, j := range c.pred[i] {
		if !c.done[j] {
			return false
		}
	}
	return true
}
