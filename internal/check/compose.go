package check

import (
	"fmt"
	"strings"
)

// Linearizability is local (Herlihy & Wing 1990, Theorem 1): a history of
// a system of independently specified objects is linearizable iff each
// per-object subhistory is linearizable. Composition is that theorem as a
// verdict: it folds the per-component checker verdicts of a partitioned
// system — the engine's per-shard sub-clusters — into the verdict for the
// whole composed object, without ever checking the (exponentially larger)
// combined history.

// WholeRun marks a component spanning every ownership epoch — the Epoch
// value of components of systems whose partition never changes (and of the
// per-shard components of a migrating store, which run the whole timeline).
const WholeRun = -1

// Component is one independently checked object of a composed system: a
// shard of a sharded store, any disjoint sub-object, or — for a store
// whose partition changes mid-run — one epoch slice of a migrated key's
// history.
type Component struct {
	// Name identifies the component (e.g. the shard's scenario name).
	Name string
	// Epoch keys the component to one ownership epoch of a migrating
	// system: epoch e is the interval between cutover e and cutover e+1.
	// WholeRun (-1) marks components spanning every epoch. A stitched
	// cross-migration component carries the epoch it stitches into (the
	// later one).
	Epoch int
	// Checked reports whether the linearizability checker ran on the
	// component's history.
	Checked bool
	// Linearizable is the component's checker verdict (meaningful only
	// when Checked).
	Linearizable bool
}

// EpochComponent builds a component pinned to one ownership epoch.
func EpochComponent(name string, epoch int, checked, linearizable bool) Component {
	return Component{Name: name, Epoch: epoch, Checked: checked, Linearizable: linearizable}
}

// Composition is the locality verdict over a set of components.
type Composition struct {
	// Components are the per-object verdicts, in composition order.
	Components []Component
}

// Compose builds the composed verdict for a system partitioned into the
// given independently checked components.
func Compose(components ...Component) Composition {
	return Composition{Components: append([]Component(nil), components...)}
}

// Checked reports whether every component was checked — the composed
// verdict is only as strong as its weakest member, so an unchecked
// component leaves the composition unchecked. An empty composition is
// vacuously checked.
func (c Composition) Checked() bool {
	for _, comp := range c.Components {
		if !comp.Checked {
			return false
		}
	}
	return true
}

// Linearizable reports the composed verdict: every component checked and
// linearizable. By locality this is exactly the verdict a (intractable)
// direct check of the combined history would return.
func (c Composition) Linearizable() bool {
	if !c.Checked() {
		return false
	}
	for _, comp := range c.Components {
		if !comp.Linearizable {
			return false
		}
	}
	return true
}

// Failing returns the names of components that were checked and found
// non-linearizable — the objects that break the composition.
func (c Composition) Failing() []string {
	var out []string
	for _, comp := range c.Components {
		if comp.Checked && !comp.Linearizable {
			out = append(out, comp.Name)
		}
	}
	return out
}

// ByEpoch returns the components pinned to the given epoch, in
// composition order (pass WholeRun for the epoch-spanning components).
func (c Composition) ByEpoch(epoch int) []Component {
	var out []Component
	for _, comp := range c.Components {
		if comp.Epoch == epoch {
			out = append(out, comp)
		}
	}
	return out
}

// Err returns nil when the composition is checked and linearizable, and
// otherwise an error naming the first failing (or unchecked) component.
func (c Composition) Err() error {
	if failing := c.Failing(); len(failing) > 0 {
		return fmt.Errorf("check: composed object not linearizable: component %q failed (%s)",
			failing[0], strings.Join(failing, ", "))
	}
	for _, comp := range c.Components {
		if !comp.Checked {
			return fmt.Errorf("check: composed verdict incomplete: component %q not checked", comp.Name)
		}
	}
	return nil
}
