package check

import "testing"

func TestComposeAllLinearizable(t *testing.T) {
	c := Compose(
		Component{Name: "shard-0", Checked: true, Linearizable: true},
		Component{Name: "shard-1", Checked: true, Linearizable: true},
	)
	if !c.Checked() || !c.Linearizable() {
		t.Fatalf("composition of linearizable components must be linearizable: %+v", c)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if f := c.Failing(); len(f) != 0 {
		t.Fatalf("no component should fail, got %v", f)
	}
}

func TestComposeOneViolationFailsWhole(t *testing.T) {
	c := Compose(
		Component{Name: "shard-0", Checked: true, Linearizable: true},
		Component{Name: "shard-1", Checked: true, Linearizable: false},
		Component{Name: "shard-2", Checked: true, Linearizable: true},
	)
	if c.Linearizable() {
		t.Fatal("a non-linearizable component must fail the composed verdict")
	}
	if !c.Checked() {
		t.Fatal("all components were checked")
	}
	f := c.Failing()
	if len(f) != 1 || f[0] != "shard-1" {
		t.Fatalf("Failing() = %v, want [shard-1]", f)
	}
	if err := c.Err(); err == nil {
		t.Fatal("Err() must report the violating component")
	}
}

func TestComposeUncheckedComponentLeavesCompositionUnchecked(t *testing.T) {
	c := Compose(
		Component{Name: "shard-0", Checked: true, Linearizable: true},
		Component{Name: "shard-1", Checked: false},
	)
	if c.Checked() {
		t.Fatal("an unchecked component must leave the composition unchecked")
	}
	if c.Linearizable() {
		t.Fatal("an unchecked composition must not claim linearizability")
	}
	if err := c.Err(); err == nil {
		t.Fatal("Err() must flag the unchecked component")
	}
}

func TestComposeEmptyIsVacuouslyLinearizable(t *testing.T) {
	c := Compose()
	if !c.Checked() || !c.Linearizable() {
		t.Fatal("the empty composition is vacuously checked and linearizable")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
