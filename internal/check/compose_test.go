package check

import (
	"strings"
	"testing"
)

func TestComposeAllLinearizable(t *testing.T) {
	c := Compose(
		Component{Name: "shard-0", Checked: true, Linearizable: true},
		Component{Name: "shard-1", Checked: true, Linearizable: true},
	)
	if !c.Checked() || !c.Linearizable() {
		t.Fatalf("composition of linearizable components must be linearizable: %+v", c)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if f := c.Failing(); len(f) != 0 {
		t.Fatalf("no component should fail, got %v", f)
	}
}

func TestComposeOneViolationFailsWhole(t *testing.T) {
	c := Compose(
		Component{Name: "shard-0", Checked: true, Linearizable: true},
		Component{Name: "shard-1", Checked: true, Linearizable: false},
		Component{Name: "shard-2", Checked: true, Linearizable: true},
	)
	if c.Linearizable() {
		t.Fatal("a non-linearizable component must fail the composed verdict")
	}
	if !c.Checked() {
		t.Fatal("all components were checked")
	}
	f := c.Failing()
	if len(f) != 1 || f[0] != "shard-1" {
		t.Fatalf("Failing() = %v, want [shard-1]", f)
	}
	if err := c.Err(); err == nil {
		t.Fatal("Err() must report the violating component")
	}
}

func TestComposeUncheckedComponentLeavesCompositionUnchecked(t *testing.T) {
	c := Compose(
		Component{Name: "shard-0", Checked: true, Linearizable: true},
		Component{Name: "shard-1", Checked: false},
	)
	if c.Checked() {
		t.Fatal("an unchecked component must leave the composition unchecked")
	}
	if c.Linearizable() {
		t.Fatal("an unchecked composition must not claim linearizability")
	}
	if err := c.Err(); err == nil {
		t.Fatal("Err() must flag the unchecked component")
	}
}

func TestComposeEmptyIsVacuouslyLinearizable(t *testing.T) {
	c := Compose()
	if !c.Checked() || !c.Linearizable() {
		t.Fatal("the empty composition is vacuously checked and linearizable")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestComposeDegenerateInputs pins the mutual consistency of Checked,
// Linearizable, Failing, and Err on the edge compositions the sharded
// engine can actually produce, including the Report.OK-style invariant:
//
//	Err() == nil  ⟺  Linearizable()  ⟺  Checked() && len(Failing()) == 0
func TestComposeDegenerateInputs(t *testing.T) {
	consistent := func(t *testing.T, c Composition) {
		t.Helper()
		lin := c.Linearizable()
		if (c.Err() == nil) != lin {
			t.Fatalf("Err()=%v but Linearizable()=%v: %+v", c.Err(), lin, c)
		}
		if want := c.Checked() && len(c.Failing()) == 0; lin != want {
			t.Fatalf("Linearizable()=%v but Checked()=%v, Failing()=%v: %+v",
				lin, c.Checked(), c.Failing(), c)
		}
	}

	// Zero components: vacuously checked and linearizable, no failures.
	empty := Compose()
	consistent(t, empty)
	if !empty.Linearizable() || len(empty.Failing()) != 0 {
		t.Fatalf("empty composition: %+v", empty)
	}

	// All components vacuous (never checked): not checked, not
	// linearizable, yet nothing Failing — unchecked is weaker than failed.
	vacuous := Compose(
		Component{Name: "shard-0"},
		Component{Name: "shard-1"},
	)
	consistent(t, vacuous)
	if vacuous.Checked() || vacuous.Linearizable() {
		t.Fatalf("all-vacuous composition claims a verdict: %+v", vacuous)
	}
	if len(vacuous.Failing()) != 0 {
		t.Fatalf("unchecked components listed as failing: %v", vacuous.Failing())
	}

	// A single checked-and-failing component among vacuous ones: the
	// failure names exactly that component and wins over incompleteness
	// in Err.
	mixed := Compose(
		Component{Name: "shard-0"},
		Component{Name: "shard-1", Checked: true, Linearizable: false},
		Component{Name: "shard-2"},
	)
	consistent(t, mixed)
	if f := mixed.Failing(); len(f) != 1 || f[0] != "shard-1" {
		t.Fatalf("Failing() = %v, want [shard-1]", f)
	}
	if err := mixed.Err(); err == nil || !strings.Contains(err.Error(), "shard-1") {
		t.Fatalf("Err() = %v, want the failing component named", err)
	}

	// Checked-and-passing among vacuous: incompleteness, not failure.
	partial := Compose(
		Component{Name: "shard-0", Checked: true, Linearizable: true},
		Component{Name: "shard-1"},
	)
	consistent(t, partial)
	if err := partial.Err(); err == nil || !strings.Contains(err.Error(), "shard-1") {
		t.Fatalf("Err() = %v, want the unchecked component named", err)
	}
}

func TestComposeByEpoch(t *testing.T) {
	// A migrated key's verdict set: per-shard components spanning the whole
	// run, one component per ownership epoch of the moved key, and the
	// stitched cross-migration component.
	c := Compose(
		Component{Name: "shard-0", Epoch: WholeRun, Checked: true, Linearizable: true},
		Component{Name: "shard-1", Epoch: WholeRun, Checked: true, Linearizable: true},
		EpochComponent("key=a/epoch=0", 0, true, true),
		EpochComponent("key=a/epoch=1", 1, true, true),
		EpochComponent("key=a/stitched", WholeRun, true, false),
	)
	if got := c.ByEpoch(0); len(got) != 1 || got[0].Name != "key=a/epoch=0" {
		t.Fatalf("ByEpoch(0) = %+v", got)
	}
	if got := c.ByEpoch(1); len(got) != 1 || got[0].Name != "key=a/epoch=1" {
		t.Fatalf("ByEpoch(1) = %+v", got)
	}
	if got := c.ByEpoch(WholeRun); len(got) != 3 {
		t.Fatalf("ByEpoch(WholeRun) = %+v", got)
	}
	if got := c.ByEpoch(7); len(got) != 0 {
		t.Fatalf("ByEpoch(7) = %+v", got)
	}
	// The epoch-split pieces all pass; only the stitched whole-key view
	// fails — exactly the handoff-violation shape — and the composition
	// surfaces it.
	if c.Linearizable() {
		t.Fatal("stitched failure lost in composition")
	}
	if f := c.Failing(); len(f) != 1 || f[0] != "key=a/stitched" {
		t.Fatalf("Failing() = %v", f)
	}
}

func TestEpochComponent(t *testing.T) {
	comp := EpochComponent("n", 3, true, false)
	want := Component{Name: "n", Epoch: 3, Checked: true, Linearizable: false}
	if comp != want {
		t.Fatalf("EpochComponent = %+v, want %+v", comp, want)
	}
	if WholeRun != -1 {
		t.Fatalf("WholeRun = %d", WholeRun)
	}
}
