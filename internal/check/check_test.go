package check_test

import (
	"testing"
	"time"

	"timebounds/internal/check"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

const ms = model.Time(time.Millisecond)

// rec adds a completed operation to h.
func rec(t *testing.T, h *history.History, proc model.ProcessID, kind spec.OpKind,
	arg, ret spec.Value, inv, resp model.Time) history.OpID {
	t.Helper()
	id := h.Invoke(proc, kind, arg, inv)
	if err := h.Respond(id, ret, resp); err != nil {
		t.Fatalf("Respond: %v", err)
	}
	return id
}

func TestEmptyHistoryLinearizable(t *testing.T) {
	h := history.New()
	if !check.Check(types.NewRegister(0), h).Linearizable {
		t.Error("empty history should be linearizable")
	}
}

func TestSequentialLegalHistory(t *testing.T) {
	reg := types.NewRegister(0)
	h := history.New()
	rec(t, h, 0, types.OpWrite, 5, nil, 0, 1*ms)
	rec(t, h, 0, types.OpRead, nil, 5, 2*ms, 3*ms)
	res := check.Check(reg, h)
	if !res.Linearizable {
		t.Fatal("sequential legal history should be linearizable")
	}
	if len(res.Witness) != 2 {
		t.Errorf("witness length %d, want 2", len(res.Witness))
	}
}

func TestStaleReadRejected(t *testing.T) {
	// Figure 1(a): read(0) after write(0), write(1) completed.
	reg := types.NewRegister(0)
	h := history.New()
	rec(t, h, 0, types.OpWrite, 0, nil, 0, 1*ms)
	rec(t, h, 0, types.OpWrite, 1, nil, 2*ms, 3*ms)
	rec(t, h, 1, types.OpRead, nil, 0, 4*ms, 5*ms)
	if check.Check(reg, h).Linearizable {
		t.Error("stale read after completed writes must be rejected")
	}
}

func TestOverlappingWriteEitherOrder(t *testing.T) {
	// Figure 1(b): when write(1) overlaps the read, read(0) is fine.
	reg := types.NewRegister(0)
	h := history.New()
	rec(t, h, 0, types.OpWrite, 0, nil, 0, 1*ms)
	rec(t, h, 0, types.OpWrite, 1, nil, 2*ms, 6*ms)
	rec(t, h, 1, types.OpRead, nil, 0, 4*ms, 5*ms)
	if !check.Check(reg, h).Linearizable {
		t.Error("read overlapping the write may return the old value")
	}
}

func TestBothDequeuesSameElementRejected(t *testing.T) {
	q := types.NewQueue()
	h := history.New()
	rec(t, h, 0, types.OpEnqueue, "x", nil, 0, 1*ms)
	rec(t, h, 1, types.OpDequeue, nil, "x", 2*ms, 4*ms)
	rec(t, h, 2, types.OpDequeue, nil, "x", 2*ms, 4*ms)
	if check.Check(q, h).Linearizable {
		t.Error("two dequeues both returning the single element must be rejected")
	}
}

func TestConcurrentRMWOneWinner(t *testing.T) {
	reg := types.NewRMWRegister(0)
	h := history.New()
	rec(t, h, 0, types.OpRMW, 1, 0, 0, 2*ms)
	rec(t, h, 1, types.OpRMW, 2, 1, 1*ms, 3*ms)
	if !check.Check(reg, h).Linearizable {
		t.Error("rmw chain 0→1 should linearize")
	}
	h2 := history.New()
	rec(t, h2, 0, types.OpRMW, 1, 0, 0, 2*ms)
	rec(t, h2, 1, types.OpRMW, 2, 0, 1*ms, 3*ms)
	if check.Check(reg, h2).Linearizable {
		t.Error("two concurrent rmws both observing 0 must be rejected")
	}
}

func TestPendingOperationMayTakeEffect(t *testing.T) {
	// A pending write may be linearized to justify a read, or ignored.
	reg := types.NewRegister(0)
	h := history.New()
	h.Invoke(0, types.OpWrite, 9, 0) // never responds
	rec(t, h, 1, types.OpRead, nil, 9, 1*ms, 2*ms)
	if !check.Check(reg, h).Linearizable {
		t.Error("pending write should be allowed to take effect")
	}
	h2 := history.New()
	h2.Invoke(0, types.OpWrite, 9, 0) // never responds
	rec(t, h2, 1, types.OpRead, nil, 0, 1*ms, 2*ms)
	if !check.Check(reg, h2).Linearizable {
		t.Error("pending write should be allowed to not take effect")
	}
}

func TestPendingCannotTimeTravel(t *testing.T) {
	// A pending op invoked after a completed read cannot justify it.
	reg := types.NewRegister(0)
	h := history.New()
	rec(t, h, 1, types.OpRead, nil, 9, 0, 1*ms)
	h.Invoke(0, types.OpWrite, 9, 2*ms) // invoked after the read completed
	if check.Check(reg, h).Linearizable {
		t.Error("write invoked after read's response cannot explain read(9)")
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	// Non-overlapping writes then a read of the FIRST value: illegal.
	reg := types.NewRegister(0)
	h := history.New()
	rec(t, h, 0, types.OpWrite, 1, nil, 0, 1*ms)
	rec(t, h, 1, types.OpWrite, 2, nil, 2*ms, 3*ms)
	rec(t, h, 2, types.OpRead, nil, 1, 4*ms, 5*ms)
	if check.Check(reg, h).Linearizable {
		t.Error("read must observe the later of two non-overlapping writes")
	}
}

func TestWitnessIsValidLinearization(t *testing.T) {
	q := types.NewQueue()
	h := history.New()
	rec(t, h, 0, types.OpEnqueue, "a", nil, 0, 1*ms)
	rec(t, h, 1, types.OpEnqueue, "b", nil, 0, 1*ms)
	rec(t, h, 0, types.OpDequeue, nil, "a", 2*ms, 3*ms)
	rec(t, h, 1, types.OpDequeue, nil, "b", 4*ms, 5*ms)
	res := check.Check(q, h)
	if !res.Linearizable {
		t.Fatal("history should linearize")
	}
	// Replay the witness: it must be legal and respect precedence.
	byID := make(map[history.OpID]history.Record)
	for _, op := range h.Ops() {
		byID[op.ID] = op
	}
	var seq spec.Sequence
	for _, id := range res.Witness {
		op := byID[id]
		seq = append(seq, spec.Op{Kind: op.Kind, Arg: op.Arg, Ret: op.Ret})
	}
	if !spec.Legal(q, seq) {
		t.Errorf("witness replays illegally: %v", seq)
	}
	pos := make(map[history.OpID]int)
	for i, id := range res.Witness {
		pos[id] = i
	}
	for _, pair := range check.MustOrder(h) {
		if pos[pair[0]] > pos[pair[1]] {
			t.Errorf("witness violates precedence %v", pair)
		}
	}
}

func TestTreeHistoryLinearizable(t *testing.T) {
	tr := types.NewTree()
	h := history.New()
	rec(t, h, 0, types.OpTreeInsert, types.Edge{Node: "a", Parent: types.TreeRoot}, nil, 0, 1*ms)
	rec(t, h, 1, types.OpTreeInsert, types.Edge{Node: "b", Parent: "a"}, nil, 2*ms, 3*ms)
	rec(t, h, 2, types.OpTreeDepth, nil, 2, 4*ms, 5*ms)
	if !check.Check(tr, h).Linearizable {
		t.Error("tree history should linearize")
	}
}

func TestHistoryRespondErrors(t *testing.T) {
	h := history.New()
	id := h.Invoke(0, types.OpRead, nil, 5*ms)
	if err := h.Respond(id, 0, 1*ms); err == nil {
		t.Error("response before invocation should error")
	}
	if err := h.Respond(id, 0, 6*ms); err != nil {
		t.Errorf("valid response errored: %v", err)
	}
	if err := h.Respond(id, 0, 7*ms); err == nil {
		t.Error("duplicate response should error")
	}
	if err := h.Respond(999, 0, 8*ms); err == nil {
		t.Error("unknown op id should error")
	}
}
