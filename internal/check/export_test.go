package check

import (
	"timebounds/internal/history"
	"timebounds/internal/spec"
)

// CheckReference exposes the textbook Wing–Gong search (reference.go) as
// the oracle for the equivalence tests.
func CheckReference(dt spec.DataType, h *history.History) Result {
	return checkReference(dt, h)
}

// SequentialFastPath exposes the totally-ordered-history fast path so
// tests can assert exactly when it fires.
func SequentialFastPath(dt spec.DataType, h *history.History) (Result, bool) {
	return sequentialFastPath(dt, h.Ops())
}

// IslandBounds exposes the concurrency-island cut computation (island.go)
// on a history's invocation-sorted records, so tests can assert when
// decomposition actually fires and where the cuts land.
func IslandBounds(h *history.History) []int32 {
	a := NewArena()
	ops := h.AppendOps(nil)
	bounds := a.islandBounds(ops)
	out := make([]int32, len(bounds))
	copy(out, bounds)
	return out
}
