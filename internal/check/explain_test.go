package check_test

import (
	"strings"
	"testing"

	"timebounds/internal/check"
	"timebounds/internal/history"
	"timebounds/internal/types"
)

func TestExplainLinearizable(t *testing.T) {
	reg := types.NewRegister(0)
	h := history.New()
	rec(t, h, 0, types.OpWrite, 1, nil, 0, 1*ms)
	rec(t, h, 0, types.OpRead, nil, 1, 2*ms, 3*ms)
	out := check.Explain(reg, h)
	if !strings.Contains(out, "linearizable; witness") {
		t.Errorf("unexpected explanation: %s", out)
	}
}

func TestExplainStaleRead(t *testing.T) {
	reg := types.NewRegister(0)
	h := history.New()
	rec(t, h, 0, types.OpWrite, 0, nil, 0, 1*ms)
	rec(t, h, 0, types.OpWrite, 1, nil, 2*ms, 3*ms)
	rec(t, h, 1, types.OpRead, nil, 0, 4*ms, 5*ms)
	out := check.Explain(reg, h)
	if !strings.Contains(out, "NOT linearizable") {
		t.Fatalf("should reject: %s", out)
	}
	// The read is the blocked op: recorded 0, spec requires 1 after both
	// writes.
	if !strings.Contains(out, "recorded return 0") || !strings.Contains(out, "requires 1") {
		t.Errorf("explanation should pin the stale read:\n%s", out)
	}
	if !strings.Contains(out, "longest linearizable prefix (2/3") {
		t.Errorf("explanation should show the 2-op prefix:\n%s", out)
	}
}

func TestExplainDoubleDequeue(t *testing.T) {
	q := types.NewQueue()
	h := history.New()
	rec(t, h, 0, types.OpEnqueue, "x", nil, 0, 1*ms)
	rec(t, h, 1, types.OpDequeue, nil, "x", 2*ms, 4*ms)
	rec(t, h, 2, types.OpDequeue, nil, "x", 2*ms, 4*ms)
	out := check.Explain(q, h)
	if !strings.Contains(out, "NOT linearizable") {
		t.Fatalf("should reject: %s", out)
	}
	if !strings.Contains(out, "q:[]") {
		t.Errorf("explanation should show the emptied queue state:\n%s", out)
	}
}
