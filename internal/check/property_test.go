package check

// Property tests for the Wing–Gong checker: random small histories that are
// round-trips of a known-linearizable sequential witness must pass, both
// with disjoint intervals (forced total order) and with overlapping
// intervals (the sequential witness remains one legal linearization); and
// injecting a stale-read mutation into a forced-total-order history must
// fail, with a non-empty Explain diagnosis.

import (
	"math/rand"
	"strings"
	"testing"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

// propOp is one generated operation with its spec-derived return value.
type propOp struct {
	kind spec.OpKind
	arg  spec.Value
	ret  spec.Value
}

// genSequential draws n random operations for dt and applies them in order
// to the initial state, recording the returns the specification dictates —
// a sequential witness by construction.
func genSequential(rng *rand.Rand, dt spec.DataType, n int) []propOp {
	kinds := dt.Kinds()
	state := dt.InitialState()
	ops := make([]propOp, 0, n)
	for i := 0; i < n; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		arg := genArg(rng, kind)
		var ret spec.Value
		state, ret = dt.Apply(state, kind, arg)
		ops = append(ops, propOp{kind: kind, arg: arg, ret: ret})
	}
	return ops
}

// genArg draws a small-domain argument for the kind, so random histories
// collide on values often enough to be interesting.
func genArg(rng *rand.Rand, kind spec.OpKind) spec.Value {
	small := rng.Intn(3)
	switch kind {
	case types.OpRead, types.OpPeek, types.OpTop, types.OpGet, types.OpBalance,
		types.OpPQMin, types.OpPQDeleteMin, types.OpDequeue, types.OpPop, types.OpSize:
		return nil
	case types.OpPut:
		return types.KV{Key: []string{"a", "b"}[rng.Intn(2)], Value: small}
	case types.OpDictGet, types.OpDelete:
		return []string{"a", "b"}[rng.Intn(2)]
	default:
		return small
	}
}

// buildHistory lays the sequential witness onto a timeline. With overlap,
// consecutive operations' intervals intersect (response after the next
// invocation) while keeping the witness order legal; without it, every
// operation completes strictly before the next begins, forcing the total
// order.
func buildHistory(ops []propOp, overlap bool) *history.History {
	h := history.New()
	span := model.Time(10)
	for i, op := range ops {
		at := model.Time(i) * span
		respond := at + span/2
		if overlap {
			respond = at + span + span/2 // overlaps the next invocation
		}
		id := h.Invoke(model.ProcessID(i%3), op.kind, op.arg, at)
		if err := h.Respond(id, op.ret, respond); err != nil {
			panic(err)
		}
	}
	return h
}

// propTypes are the data types the properties quantify over.
func propTypes() []spec.DataType {
	return []spec.DataType{
		types.NewRegister(0),
		types.NewRMWRegister(0),
		types.NewQueue(),
		types.NewStack(),
		types.NewCounter(),
		types.NewSet(),
		types.NewDict(),
		types.NewPQueue(),
	}
}

func TestPropertySequentialWitnessesLinearize(t *testing.T) {
	// 40 seeds × 8 types × {disjoint, overlapping} intervals: a history
	// whose returns come from a sequential application of the spec always
	// passes the checker.
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, dt := range propTypes() {
			n := 3 + rng.Intn(5)
			ops := genSequential(rng, dt, n)
			for _, overlap := range []bool{false, true} {
				h := buildHistory(ops, overlap)
				res := Check(dt, h)
				if !res.Linearizable {
					t.Fatalf("seed=%d %s overlap=%v: sequential witness rejected:\n%s",
						seed, dt.Name(), overlap, h)
				}
				if len(res.Witness) != n {
					t.Fatalf("seed=%d %s: witness has %d ops, want %d", seed, dt.Name(), len(res.Witness), n)
				}
			}
		}
	}
}

func TestPropertyStaleMutationFailsWithExplanation(t *testing.T) {
	// Corrupting one completed operation's return value to a value the
	// specification cannot produce — in a forced-total-order history, where
	// the sequential witness is the only legal linearization — must flip
	// the verdict, and Explain must say why, non-emptily.
	const poison = 424242 // never a legal return: generated args are in [0, 3)
	diagnosed := 0
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		for _, dt := range propTypes() {
			ops := genSequential(rng, dt, 3+rng.Intn(5))
			victim := rng.Intn(len(ops))
			if spec.ValueEqual(ops[victim].ret, poison) {
				continue
			}
			mutated := append([]propOp(nil), ops...)
			mutated[victim].ret = poison
			h := buildHistory(mutated, false)
			res := Check(dt, h)
			if res.Linearizable {
				t.Fatalf("seed=%d %s: stale mutation of op %d accepted:\n%s",
					seed, dt.Name(), victim, h)
			}
			out := Explain(dt, h)
			if out == "" {
				t.Fatalf("seed=%d %s: empty explanation for a rejected history", seed, dt.Name())
			}
			if !strings.Contains(out, "NOT linearizable") {
				t.Fatalf("seed=%d %s: explanation missing verdict:\n%s", seed, dt.Name(), out)
			}
			if strings.Contains(out, "specification requires") {
				diagnosed++
			}
		}
	}
	if diagnosed == 0 {
		t.Error("no explanation ever pinpointed the recorded-vs-required return mismatch")
	}
}

func TestPropertyStaleReadOnRegister(t *testing.T) {
	// The canonical stale read, deterministically: write(1); write(2);
	// read→1 in a forced total order must fail, and the explanation names
	// the read's required value.
	dt := types.NewRegister(0)
	h := history.New()
	w1 := h.Invoke(0, types.OpWrite, 1, 0)
	_ = h.Respond(w1, nil, 5)
	w2 := h.Invoke(0, types.OpWrite, 2, 10)
	_ = h.Respond(w2, nil, 15)
	r := h.Invoke(1, types.OpRead, nil, 20)
	_ = h.Respond(r, 1, 25) // stale: must be 2
	res := Check(dt, h)
	if res.Linearizable {
		t.Fatalf("stale read accepted:\n%s", h)
	}
	out := Explain(dt, h)
	if !strings.Contains(out, "NOT linearizable") || !strings.Contains(out, "requires") {
		t.Fatalf("weak explanation:\n%s", out)
	}
}
