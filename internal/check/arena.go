package check

import (
	"sync"

	"timebounds/internal/history"
	"timebounds/internal/spec"
)

// Arena is reusable checker scratch: the sorted record copy, the
// transition-key slab, the per-search link lists, bitsets, memo maps and
// key buffers, and a per-data-type local transition cache. An engine
// worker keeps one Arena for the lifetime of a grid and threads it
// through workload.RunOptions, so steady-state verified runs allocate
// nothing in the checker beyond the returned witness. Check/CheckOpts
// with a nil Options.Arena draw one from a process-wide pool.
//
// An Arena is single-owner: it must not be used by two goroutines at
// once. (Island-parallel checks inside one call are fine — each island
// worker borrows its own scratch, and the borrow happens before the
// fan-out.)
type Arena struct {
	ops    []history.Record // sorted record copy (history slab)
	argBuf []byte           // per-op transition-key suffixes, back to back
	argOff []int32          // argBuf offsets, len(ops)+1 entries
	bounds []int32          // island cut points scratch
	specs  []boundary       // speculated island boundary states scratch
	isl    []islandRes      // per-island verdict scratch
	free   []*scratch       // search scratch freelist (one per concurrent island)
	locals map[string]map[string]transition
	inits  map[string]boundary
}

// boundary is a state with its canonical encoding — an island's start or
// end point.
type boundary struct {
	state spec.State
	enc   string
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// arenaPool backs Check/CheckOpts calls that bring no arena of their own.
var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// scratch is the per-search reusable state: one is live per concurrently
// checked island.
type scratch struct {
	// next/prev form the undone linked list over segment indexes, with
	// sentinel n.
	next, prev []int32
	done       []uint64 // done-set bitset, the memo key prefix
	order      []int32  // linearized segment indexes, search order
	memo       map[string]struct{}
	fronts     [][]int32 // per-depth frontier scratch
	keyBuf     []byte    // memo key scratch
	tkeyBuf    []byte    // transition key scratch
}

// reset sizes the scratch for an n-record segment and clears per-search
// state. Buffers are reused; only growth allocates.
//
//tb:hotpath
func (s *scratch) reset(n int) {
	s.next = growTo(s.next, n+1)
	s.prev = growTo(s.prev, n+1)
	for i := 0; i <= n; i++ {
		s.next[i] = int32((i + 1) % (n + 1))
		s.prev[i] = int32((i + n) % (n + 1))
	}
	s.done = growTo(s.done, (n+63)/64)
	clear(s.done)
	s.order = s.order[:0]
	if s.memo == nil {
		s.memo = make(map[string]struct{})
	} else {
		clear(s.memo)
	}
}

// growTo returns s with length n, reusing its backing array when it fits.
func growTo[T int32 | uint64](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// acquireScratch hands out a reusable search scratch. Single-owner: only
// the arena's owning goroutine acquires and releases; island workers
// receive theirs before the fan-out starts.
func (a *Arena) acquireScratch() *scratch {
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free = a.free[:n-1]
		return s
	}
	return &scratch{}
}

func (a *Arena) releaseScratch(s *scratch) { a.free = append(a.free, s) }

// localFor returns the arena's local transition cache for dt, creating it
// on first use. Name-keying is sound for the same reason CacheSet's is;
// the cache persists across checks so repeated histories of one data type
// replay from memoized transitions.
func (a *Arena) localFor(dt spec.DataType) map[string]transition {
	if a.locals == nil {
		a.locals = make(map[string]map[string]transition)
	}
	m := a.locals[dt.Name()]
	if m == nil {
		m = make(map[string]transition)
		a.locals[dt.Name()] = m
	}
	return m
}

// initFor returns dt's initial state and encoding, memoized per data-type
// name (states are immutable by the DataType contract).
func (a *Arena) initFor(dt spec.DataType) boundary {
	if a.inits == nil {
		a.inits = make(map[string]boundary)
	}
	b, ok := a.inits[dt.Name()]
	if !ok {
		st := dt.InitialState()
		b = boundary{state: st, enc: dt.EncodeState(st)}
		a.inits[dt.Name()] = b
	}
	return b
}

// buildArgKeys fills the transition-key slab: operation i's key suffix is
// its kind, a NUL, and the canonical argument rendering — the same bytes
// the pre-arena checker built as per-op strings.
//
//tb:hotpath
func (a *Arena) buildArgKeys(ops []history.Record) {
	buf := a.argBuf[:0]
	off := a.argOff[:0]
	for i := range ops {
		off = append(off, int32(len(buf)))
		buf = append(buf, ops[i].Kind...)
		buf = append(buf, 0)
		buf = spec.AppendCanonicalValue(buf, ops[i].Arg)
	}
	off = append(off, int32(len(buf)))
	a.argBuf, a.argOff = buf, off
}

// check is the arena-backed check body behind CheckOpts.
func (a *Arena) check(dt spec.DataType, h *history.History, opt Options) Result {
	a.ops = h.AppendOps(a.ops[:0])
	ops := a.ops
	n := len(ops)
	if n == 0 {
		return Result{Linearizable: true}
	}
	if res, ok := sequentialFastPath(dt, ops); ok {
		return res
	}
	a.buildArgKeys(ops)
	var local map[string]transition
	if opt.Cache == nil {
		local = a.localFor(dt)
	}
	init := a.initFor(dt)
	if !opt.NoIslands {
		if bounds := a.islandBounds(ops); len(bounds) > 2 {
			if res, ok := a.checkIslands(dt, ops, bounds, opt, local, init); ok {
				return res
			}
			// Speculation failed somewhere: fall through to the single
			// whole-history search, whose verdict is authoritative.
		}
	}
	return a.checkWhole(dt, ops, opt.Cache, local, init)
}

// checkWhole runs one Wing–Gong search over the full record list.
func (a *Arena) checkWhole(dt spec.DataType, ops []history.Record, shared *Cache, local map[string]transition, init boundary) Result {
	s := a.acquireScratch()
	defer a.releaseScratch(s)
	wit := make([]history.OpID, len(ops))
	r := a.runSegment(dt, ops, a.argOff, shared, local, s, init, wit)
	res := Result{Linearizable: r.ok, StatesExplored: r.explored}
	if r.ok {
		res.Witness = wit[:r.witN]
	}
	return res
}

// islandRes is one segment search's outcome.
type islandRes struct {
	ok       bool
	finalEnc string // state encoding the found linearization ended in
	explored int    // memoized dead ends
	witN     int    // witness entries written (== segment size unless pending ops were skipped)
}

// runSegment searches one record segment from the given start state,
// writing the witness ids of the found linearization into wit (which must
// hold len(ops) entries).
//
//tb:hotpath
func (a *Arena) runSegment(dt spec.DataType, ops []history.Record, argOff []int32, shared *Cache, local map[string]transition, s *scratch, start boundary, wit []history.OpID) islandRes {
	c := checker{
		dt:      dt,
		ops:     ops,
		n:       len(ops),
		argBuf:  a.argBuf,
		argOff:  argOff,
		shared:  shared,
		local:   local,
		scratch: s,
	}
	c.reset()
	ok := c.search(start.state, start.enc)
	r := islandRes{ok: ok, finalEnc: c.finalEnc, explored: len(s.memo)}
	if ok {
		for i, idx := range s.order {
			wit[i] = ops[idx].ID
		}
		r.witN = len(s.order)
	}
	return r
}
