package check

import (
	"fmt"
	"strings"

	"timebounds/internal/history"
	"timebounds/internal/spec"
)

// Explain diagnoses a non-linearizable history: it re-runs the search
// keeping the longest prefix that could be linearized, then reports, for
// that best frontier, every remaining minimal operation and why it cannot
// be linearized next (recorded return value vs what the specification would
// return in the reached state). For linearizable histories it reports the
// witness. The output is for humans; tests assert only its key facts.
func Explain(dt spec.DataType, h *history.History) string {
	res := Check(dt, h)
	if res.Linearizable {
		return fmt.Sprintf("linearizable; witness %v", res.Witness)
	}

	ops := h.Ops()
	// Diagnostics run on the reference checker: its explicit done/pred
	// representation is what the blocked-operation report walks.
	c := &refChecker{
		dt:   dt,
		ops:  ops,
		done: make([]bool, len(ops)),
		memo: make(map[string]bool),
	}
	c.pred = make([][]int, len(ops))
	for i := range ops {
		for j := range ops {
			if i != j && !ops[j].Pending && ops[j].Respond < ops[i].Invoke {
				c.pred[i] = append(c.pred[i], j)
			}
		}
	}

	best := c.deepest(dt.InitialState())

	var sb strings.Builder
	sb.WriteString("NOT linearizable.\n")
	fmt.Fprintf(&sb, "longest linearizable prefix (%d/%d completed ops):", len(best.order), len(ops))
	for _, idx := range best.order {
		fmt.Fprintf(&sb, " #%d", ops[idx].ID)
	}
	fmt.Fprintf(&sb, "\nobject state there: %s\n", dt.EncodeState(best.state))
	sb.WriteString("blocked operations:\n")
	for i, op := range ops {
		if best.done[i] || op.Pending {
			continue
		}
		if !minimalIn(c.pred[i], best.done) {
			continue // not yet eligible; some predecessor is itself blocked
		}
		_, specRet := dt.Apply(best.state, op.Kind, op.Arg)
		if spec.ValueEqual(specRet, op.Ret) {
			fmt.Fprintf(&sb, "  %s — applicable here but every continuation dead-ends\n", op)
			continue
		}
		fmt.Fprintf(&sb, "  %s — recorded return %v but the specification requires %v here\n",
			op, op.Ret, specRet)
	}
	return sb.String()
}

// frontier is the deepest reachable search configuration.
type frontier struct {
	order []int
	done  []bool
	state spec.State
}

// deepest explores the search space and returns the configuration with the
// most completed operations linearized.
func (c *refChecker) deepest(initial spec.State) frontier {
	best := frontier{done: make([]bool, len(c.ops)), state: initial}
	seen := make(map[string]bool)
	var rec func(state spec.State)
	rec = func(state spec.State) {
		key := c.key(state)
		if seen[key] {
			return
		}
		seen[key] = true
		if len(c.order) > len(best.order) {
			best.order = append([]int(nil), c.order...)
			best.done = append([]bool(nil), c.done...)
			best.state = state
		}
		for i, op := range c.ops {
			if c.done[i] || op.Pending || !c.minimal(i) {
				continue
			}
			next, ret := c.dt.Apply(state, op.Kind, op.Arg)
			if !spec.ValueEqual(ret, op.Ret) {
				continue
			}
			c.done[i] = true
			c.order = append(c.order, i)
			rec(next)
			c.order = c.order[:len(c.order)-1]
			c.done[i] = false
		}
	}
	rec(initial)
	return best
}

func minimalIn(preds []int, done []bool) bool {
	for _, j := range preds {
		if !done[j] {
			return false
		}
	}
	return true
}
