package check_test

import (
	"math/rand"
	"testing"
	"time"

	"timebounds/internal/check"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

// islandHistory builds a seeded pseudo-random history shaped like real
// workload output: bursts of overlapping operations separated by idle gaps
// long enough to cut concurrency islands. Like randomHistory it corrupts
// some returns and leaves some operations pending, so both verdicts occur.
func islandHistory(dt spec.DataType, seed int64, n int) *history.History {
	rng := rand.New(rand.NewSource(seed))
	kinds := dt.Kinds()
	h := history.New()
	state := dt.InitialState()
	now := model.Time(0)
	type open struct {
		id   history.OpID
		ret  spec.Value
		resp model.Time
	}
	var opens []open
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			// Idle gap: longer than any response tail below, so the next
			// burst starts a fresh island.
			now += 50 * model.Time(time.Millisecond)
		} else {
			now += model.Time(rng.Intn(3)) * model.Time(time.Millisecond)
		}
		kind := kinds[rng.Intn(len(kinds))]
		arg := spec.Value(rng.Intn(3))
		if rng.Intn(2) == 0 {
			arg = nil
		}
		next, ret := dt.Apply(state, kind, arg)
		state = next
		if rng.Intn(10) == 0 {
			ret = rng.Intn(5) // corrupt the return
		}
		id := h.Invoke(model.ProcessID(rng.Intn(3)), kind, arg, now)
		if rng.Intn(12) == 0 {
			continue // leave pending
		}
		opens = append(opens, open{id: id, ret: ret,
			resp: now + model.Time(1+rng.Intn(6))*model.Time(time.Millisecond)})
	}
	for _, o := range opens {
		if err := h.Respond(o.id, o.ret, o.resp); err != nil {
			panic(err)
		}
	}
	return h
}

// TestIslandCheckMatchesReference: island-decomposed checking — sequential
// and worker-parallel, with and without a reused arena — must agree with
// the textbook search on every history, and its witnesses must replay.
// One arena and one shared cache persist across the whole loop, so arena
// reuse across data types and verdicts is exercised too.
func TestIslandCheckMatchesReference(t *testing.T) {
	dts := []spec.DataType{types.NewRegister(0), types.NewCounter(), types.NewQueue(), types.NewRMWRegister(0)}
	arena := check.NewArena()
	islands := 0
	for _, dt := range dts {
		shared := check.NewCache()
		for seed := int64(1); seed <= 30; seed++ {
			h := islandHistory(dt, seed, 16)
			if len(check.IslandBounds(h)) > 2 {
				islands++
			}
			want := check.CheckReference(dt, h)
			for _, opt := range []check.Options{
				{},
				{NoIslands: true},
				{Workers: 8}, // clamped to 1: no shared cache
				{Cache: shared, Workers: 1},
				{Cache: shared, Workers: 8},
				{Cache: shared, Workers: 8, Arena: arena},
				{Arena: arena},
			} {
				got := check.CheckOpts(dt, h, opt)
				if got.Linearizable != want.Linearizable {
					t.Fatalf("%s seed %d opts %+v: got %v reference %v\n%s",
						dt.Name(), seed, opt, got.Linearizable, want.Linearizable, h)
				}
				if got.Linearizable {
					assertWitness(t, dt, h, got.Witness)
				}
			}
		}
	}
	if islands == 0 {
		t.Fatal("no generated history decomposed into islands — the island path was never exercised")
	}
}

// TestIslandBoundsCutOnIdleGaps pins the cut rule on a hand-built history:
// two bursts separated by an idle gap cut into two islands, and a pending
// operation in the first burst suppresses the cut (a pending op stays
// movable past every later operation).
func TestIslandBoundsCutOnIdleGaps(t *testing.T) {
	ms := model.Time(time.Millisecond)
	h := history.New()
	a := h.Invoke(0, types.OpIncrement, 1, 0)
	b := h.Invoke(1, types.OpGet, nil, 1*ms)
	_ = h.Respond(a, nil, 2*ms)
	_ = h.Respond(b, 1, 3*ms)
	c := h.Invoke(0, types.OpGet, nil, 50*ms)
	_ = h.Respond(c, 1, 51*ms)
	bounds := check.IslandBounds(h)
	if len(bounds) != 3 || bounds[0] != 0 || bounds[1] != 2 || bounds[2] != 3 {
		t.Fatalf("bounds = %v, want [0 2 3]", bounds)
	}

	// Same shape, but the first burst's increment never responds: no cut.
	h2 := history.New()
	h2.Invoke(0, types.OpIncrement, 1, 0)
	b2 := h2.Invoke(1, types.OpGet, nil, 1*ms)
	_ = h2.Respond(b2, 1, 3*ms)
	c2 := h2.Invoke(0, types.OpGet, nil, 50*ms)
	_ = h2.Respond(c2, 1, 51*ms)
	if got := check.IslandBounds(h2); len(got) != 2 {
		t.Fatalf("pending op must suppress the cut: bounds = %v", got)
	}
}

// TestIslandSpeculationFallback forces the stitch to fail: two concurrent
// writes whose invocation order predicts final state 2, followed after an
// idle gap by a read that only linearizes if the writes run in the other
// order. The decomposed pass must detect the mismatch and fall back to the
// whole-history search — verdict linearizable, witness valid.
func TestIslandSpeculationFallback(t *testing.T) {
	ms := model.Time(time.Millisecond)
	reg := types.NewRegister(0)
	h := history.New()
	w1 := h.Invoke(0, types.OpWrite, 1, 0)
	w2 := h.Invoke(1, types.OpWrite, 2, 1*ms)
	_ = h.Respond(w2, nil, 2*ms)
	_ = h.Respond(w1, nil, 3*ms)
	r := h.Invoke(2, types.OpRead, nil, 50*ms)
	_ = h.Respond(r, 1, 51*ms)

	if bounds := check.IslandBounds(h); len(bounds) != 3 {
		t.Fatalf("setup: expected 2 islands, bounds = %v", bounds)
	}
	want := check.CheckReference(reg, h)
	if !want.Linearizable {
		t.Fatal("setup: reference must linearize (write(2); write(1); read→1)")
	}
	cache := check.NewCache()
	for _, opt := range []check.Options{
		{},
		{Cache: cache, Workers: 8},
	} {
		got := check.CheckOpts(reg, h, opt)
		if !got.Linearizable {
			t.Fatalf("opts %+v: speculation fallback lost the verdict", opt)
		}
		assertWitness(t, reg, h, got.Witness)
	}
}

// TestArenaReuseAcrossVerdicts pins single-owner arena hygiene: a
// non-linearizable check must not leak state that corrupts the next
// linearizable one, and vice versa, across data types.
func TestArenaReuseAcrossVerdicts(t *testing.T) {
	arena := check.NewArena()
	ms := model.Time(time.Millisecond)

	bad := history.New()
	id := bad.Invoke(0, types.OpWrite, 5, 0)
	_ = bad.Respond(id, nil, 1*ms)
	id = bad.Invoke(1, types.OpRead, nil, 2*ms)
	_ = bad.Respond(id, 7, 3*ms)

	good := history.New()
	id = good.Invoke(0, types.OpIncrement, 2, 0)
	_ = good.Respond(id, nil, 2*ms)
	id = good.Invoke(1, types.OpGet, nil, 1*ms)
	_ = good.Respond(id, 2, 3*ms)

	for i := 0; i < 3; i++ {
		if check.CheckOpts(types.NewRegister(0), bad, check.Options{Arena: arena}).Linearizable {
			t.Fatalf("round %d: stale read accepted", i)
		}
		res := check.CheckOpts(types.NewCounter(), good, check.Options{Arena: arena})
		if !res.Linearizable {
			t.Fatalf("round %d: linearizable counter history rejected", i)
		}
		assertWitness(t, types.NewCounter(), good, res.Witness)
	}
}
