package check_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"timebounds/internal/check"
	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

// randomHistory builds a seeded pseudo-random history with overlapping
// operations, occasional wrong returns (non-linearizable cases), and
// occasional pending operations.
func randomHistory(dt spec.DataType, seed int64, n int) *history.History {
	rng := rand.New(rand.NewSource(seed))
	kinds := dt.Kinds()
	h := history.New()
	// Track a plausible state to generate mostly-right returns, then
	// corrupt some: the mix produces both verdicts.
	state := dt.InitialState()
	now := model.Time(0)
	type open struct {
		id   history.OpID
		ret  spec.Value
		resp model.Time
	}
	var opens []open
	for i := 0; i < n; i++ {
		now += model.Time(rng.Intn(3)) * model.Time(time.Millisecond)
		kind := kinds[rng.Intn(len(kinds))]
		arg := spec.Value(rng.Intn(3))
		if rng.Intn(2) == 0 {
			arg = nil
		}
		next, ret := dt.Apply(state, kind, arg)
		state = next
		if rng.Intn(8) == 0 {
			ret = rng.Intn(5) // corrupt the return
		}
		id := h.Invoke(model.ProcessID(rng.Intn(3)), kind, arg, now)
		if rng.Intn(10) == 0 {
			continue // leave pending
		}
		opens = append(opens, open{id: id, ret: ret,
			resp: now + model.Time(1+rng.Intn(6))*model.Time(time.Millisecond)})
	}
	for _, o := range opens {
		if err := h.Respond(o.id, o.ret, o.resp); err != nil {
			panic(err)
		}
	}
	return h
}

// TestCheckMatchesReference: the optimized checker (frontier walk, forced
// steps, bitset memo, transition caching, sequential fast path) must agree
// with the textbook Wing–Gong search on every history — linearizable or
// not, with and without a shared cache.
func TestCheckMatchesReference(t *testing.T) {
	dts := []spec.DataType{types.NewRegister(0), types.NewCounter(), types.NewQueue(), types.NewRMWRegister(0)}
	for _, dt := range dts {
		shared := check.NewCache()
		for seed := int64(1); seed <= 40; seed++ {
			h := randomHistory(dt, seed, 14)
			want := check.CheckReference(dt, h)
			got := check.Check(dt, h)
			if got.Linearizable != want.Linearizable {
				t.Fatalf("%s seed %d: optimized=%v reference=%v\n%s",
					dt.Name(), seed, got.Linearizable, want.Linearizable, h)
			}
			cached := check.CheckCached(dt, h, shared)
			if cached.Linearizable != want.Linearizable {
				t.Fatalf("%s seed %d: shared-cache=%v reference=%v\n%s",
					dt.Name(), seed, cached.Linearizable, want.Linearizable, h)
			}
			if got.Linearizable {
				assertWitness(t, dt, h, got.Witness)
				assertWitness(t, dt, h, cached.Witness)
			}
		}
	}
}

// assertWitness replays a witness: legal and precedence-respecting.
func assertWitness(t *testing.T, dt spec.DataType, h *history.History, witness []history.OpID) {
	t.Helper()
	byID := make(map[history.OpID]history.Record)
	for _, op := range h.Ops() {
		byID[op.ID] = op
	}
	// Replay in witness order: completed ops must reproduce their recorded
	// returns; pending ops take whatever the specification yields (their
	// recorded Ret is meaningless).
	state := dt.InitialState()
	pos := make(map[history.OpID]int)
	var seq spec.Sequence
	for i, id := range witness {
		op := byID[id]
		var ret spec.Value
		state, ret = dt.Apply(state, op.Kind, op.Arg)
		if !op.Pending && !spec.ValueEqual(ret, op.Ret) {
			t.Fatalf("witness op #%d returns %v in replay but recorded %v", id, ret, op.Ret)
		}
		seq = append(seq, spec.Op{Kind: op.Kind, Arg: op.Arg, Ret: ret})
		pos[id] = i
	}
	// Pending ops may be dropped but completed ops must all be present.
	for _, op := range h.Ops() {
		if op.Pending {
			continue
		}
		if _, ok := pos[op.ID]; !ok {
			t.Fatalf("witness omits completed op #%d", op.ID)
		}
	}
	if !spec.Legal(dt, seq) {
		t.Fatalf("witness replays illegally: %v", seq)
	}
	for _, pair := range check.MustOrder(h) {
		pa, oka := pos[pair[0]]
		pb, okb := pos[pair[1]]
		if oka && okb && pa > pb {
			t.Fatalf("witness violates precedence %v", pair)
		}
	}
}

// TestSequentialFastPath: totally ordered complete histories take the
// linear-time path; a single overlap or pending op falls back to search.
func TestSequentialFastPath(t *testing.T) {
	ms := model.Time(time.Millisecond)
	reg := types.NewRegister(0)

	h := history.New()
	id := h.Invoke(0, types.OpWrite, 5, 0)
	_ = h.Respond(id, nil, 1*ms)
	id = h.Invoke(1, types.OpRead, nil, 2*ms)
	_ = h.Respond(id, 5, 3*ms)
	res, ok := check.SequentialFastPath(reg, h)
	if !ok || !res.Linearizable || len(res.Witness) != 2 {
		t.Errorf("sequential history should take the fast path and linearize: ok=%v res=%+v", ok, res)
	}

	// Stale read: forced order is illegal — fast path must reject.
	h2 := history.New()
	id = h2.Invoke(0, types.OpWrite, 5, 0)
	_ = h2.Respond(id, nil, 1*ms)
	id = h2.Invoke(1, types.OpRead, nil, 2*ms)
	_ = h2.Respond(id, 0, 3*ms)
	res, ok = check.SequentialFastPath(reg, h2)
	if !ok || res.Linearizable {
		t.Errorf("stale sequential read should be rejected on the fast path: ok=%v res=%+v", ok, res)
	}
	if got := check.Check(reg, h2); got.Linearizable {
		t.Error("Check must agree with the fast-path rejection")
	}

	// Overlap disables the fast path.
	h3 := history.New()
	id = h3.Invoke(0, types.OpWrite, 5, 0)
	_ = h3.Respond(id, nil, 2*ms)
	id = h3.Invoke(1, types.OpRead, nil, 1*ms)
	_ = h3.Respond(id, 0, 3*ms)
	if _, ok := check.SequentialFastPath(reg, h3); ok {
		t.Error("overlapping history must not take the sequential fast path")
	}

	// Pending op disables the fast path.
	h4 := history.New()
	h4.Invoke(0, types.OpWrite, 5, 0)
	if _, ok := check.SequentialFastPath(reg, h4); ok {
		t.Error("pending op must not take the sequential fast path")
	}
}

// TestSharedCacheAcrossValueTypes: two registers of the same type name,
// one holding ints and one holding strings, share a cache (the engine
// keys CacheSet by Name). Behaviourally distinct states like int 1 and
// string "1" must not poison each other's transitions — this is the
// regression for value-typed EncodeState (a %v-rendered register once
// encoded both as "reg:1", flipping the second history's verdict).
func TestSharedCacheAcrossValueTypes(t *testing.T) {
	ms := model.Time(time.Millisecond)
	cache := check.NewCache()

	// History A on an int register: concurrent write(1)/read → 1.
	intReg := types.NewRegister(0)
	ha := history.New()
	id := ha.Invoke(0, types.OpWrite, 1, 0)
	_ = ha.Respond(id, nil, 2*ms)
	id = ha.Invoke(1, types.OpRead, nil, 1*ms)
	_ = ha.Respond(id, 1, 3*ms)
	if !check.CheckCached(intReg, ha, cache).Linearizable {
		t.Fatal("int-register history should linearize")
	}

	// History B on a string register: concurrent write("1")/read → "1".
	strReg := types.NewRegister("0")
	hb := history.New()
	id = hb.Invoke(0, types.OpWrite, "1", 0)
	_ = hb.Respond(id, nil, 2*ms)
	id = hb.Invoke(1, types.OpRead, nil, 1*ms)
	_ = hb.Respond(id, "1", 3*ms)
	got := check.CheckCached(strReg, hb, cache)
	want := check.CheckReference(strReg, hb)
	if got.Linearizable != want.Linearizable {
		t.Fatalf("shared cache across value types flipped the verdict: got %v want %v",
			got.Linearizable, want.Linearizable)
	}
	if !got.Linearizable {
		t.Fatal("string-register history should linearize")
	}
}

// TestSharedCacheConcurrentUse hammers one Cache from many goroutines
// (meaningful under -race): verdicts must be stable and the cache must
// actually fill.
func TestSharedCacheConcurrentUse(t *testing.T) {
	dt := types.NewQueue()
	cache := check.NewCache()
	type job struct {
		h    *history.History
		want bool
	}
	var jobs []job
	for seed := int64(1); seed <= 12; seed++ {
		h := randomHistory(dt, seed, 12)
		jobs = append(jobs, job{h: h, want: check.CheckReference(dt, h).Linearizable})
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, j := range jobs {
				if got := check.CheckCached(dt, j.h, cache).Linearizable; got != j.want {
					errs <- fmt.Errorf("worker %d job %d: got %v want %v", w, i, got, j.want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if cache.Len() == 0 {
		t.Error("shared cache stayed empty — transitions were not memoized")
	}
}
