package check

import (
	"sync"
	"sync/atomic"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// Concurrency islands: linearizability is local in time as well as per
// object. Cut the invocation-sorted record list before operation i
// whenever every earlier operation responds strictly before ops[i] is
// invoked — then every earlier operation precedes every later one in any
// admissible permutation, so a linearization of the whole history is
// exactly a chain of per-island linearizations threaded through shared
// state: π = π₁·π₂·…·πₘ is legal iff each πₖ is legal from the state πₖ₋₁
// ended in. A pending operation never responds, so it forbids every later
// cut and all pending operations land in the final island.
//
// The state threading is what keeps islands from being embarrassingly
// parallel: an island can have several legal linearizations with
// different end states (two concurrent writes commute in real time but
// not on the object). The checker therefore speculates: it replays the
// record list once in invocation order through the transition cache to
// predict each island's start state, checks every island independently
// (concurrently when Options.Workers allows) from its speculated start,
// and then stitches sequentially — island k's search must succeed and end
// in exactly the state island k+1 was speculated from. Any failure or
// mismatch abandons the decomposition and falls back to the single
// whole-history search, so the verdict is always identical to the
// reference checker's; the islands only decide where the work happens.
// In practice the search visits frontier candidates in invocation order,
// so a linearizable history's found end states almost always match the
// invocation-order speculation and the fast path sticks.

// islandBounds returns the cut points of the invocation-sorted record
// list as indexes [0, c₁, …, cₘ₋₁, n]: ops[bounds[k]:bounds[k+1]] is
// island k. Two entries mean the history is a single island.
//
//tb:hotpath
func (a *Arena) islandBounds(ops []history.Record) []int32 {
	b := a.bounds[:0]
	b = append(b, 0)
	var maxResp model.Time
	pending := false
	for i := range ops {
		if i > 0 && !pending && maxResp < ops[i].Invoke {
			b = append(b, int32(i))
		}
		if ops[i].Pending {
			pending = true
		} else if ops[i].Respond > maxResp {
			maxResp = ops[i].Respond
		}
	}
	b = append(b, int32(len(ops)))
	a.bounds = b
	return b
}

// speculate predicts each island's start state by replaying the records
// in invocation order through the transition cache: specs[k] is the state
// island k is checked from. The replay ignores return values — it only
// proposes a state chain for the stitch to verify.
//
//tb:hotpath
func (a *Arena) speculate(dt spec.DataType, ops []history.Record, bounds []int32, shared *Cache, local map[string]transition, init boundary, s *scratch) []boundary {
	specs := a.specs[:0]
	specs = append(specs, init)
	c := checker{
		dt:      dt,
		ops:     ops,
		n:       len(ops),
		argBuf:  a.argBuf,
		argOff:  a.argOff,
		shared:  shared,
		local:   local,
		scratch: s,
	}
	state, enc := init.state, init.enc
	for k := 1; k < len(bounds)-1; k++ {
		for i := bounds[k-1]; i < bounds[k]; i++ {
			state, enc, _ = c.apply(state, enc, i)
		}
		specs = append(specs, boundary{state: state, enc: enc})
	}
	a.specs = specs
	return specs
}

// checkIslands checks the history island by island from speculated
// boundary states. ok is false when the speculation failed to stitch (or
// some island rejected), in which case the caller must fall back to the
// whole-history search — a false ok says nothing about linearizability.
func (a *Arena) checkIslands(dt spec.DataType, ops []history.Record, bounds []int32, opt Options, local map[string]transition, init boundary) (Result, bool) {
	m := len(bounds) - 1
	rs := a.acquireScratch()
	specs := a.speculate(dt, ops, bounds, opt.Cache, local, init, rs)
	a.releaseScratch(rs)

	if cap(a.isl) < m {
		a.isl = make([]islandRes, m)
	}
	results := a.isl[:m]
	wit := make([]history.OpID, len(ops))

	workers := opt.Workers
	if opt.Cache == nil {
		// The arena-local transition cache is unlocked; island parallelism
		// requires the shared Cache.
		workers = 1
	}
	if workers > m {
		workers = m
	}
	if workers > 1 {
		// Fan out: workers pull island indexes from an atomic counter, each
		// on its own pre-acquired scratch, writing disjoint results[k] and
		// wit[lo:hi] ranges. Middle islands contain no pending operations,
		// so their witness lengths are exactly their sizes and every
		// island's witness range is known up front.
		scrs := make([]*scratch, workers)
		for w := range scrs {
			scrs[w] = a.acquireScratch()
		}
		var idx atomic.Int32
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(s *scratch) {
				defer wg.Done()
				for {
					k := int(idx.Add(1)) - 1
					if k >= m {
						return
					}
					lo, hi := bounds[k], bounds[k+1]
					results[k] = a.runSegment(dt, ops[lo:hi], a.argOff[lo:hi+1], opt.Cache, nil, s, specs[k], wit[lo:hi])
				}
			}(scrs[w])
		}
		wg.Wait()
		for _, s := range scrs {
			a.releaseScratch(s)
		}
	} else {
		s := a.acquireScratch()
		for k := 0; k < m; k++ {
			lo, hi := bounds[k], bounds[k+1]
			results[k] = a.runSegment(dt, ops[lo:hi], a.argOff[lo:hi+1], opt.Cache, local, s, specs[k], wit[lo:hi])
			if !results[k].ok || (k < m-1 && results[k].finalEnc != specs[k+1].enc) {
				break // stitch below rejects at k; later islands are moot
			}
		}
		a.releaseScratch(s)
	}

	// Stitch: every island must accept, and every middle island's found
	// end state must be exactly the state its successor was speculated
	// from. Islands are rechecked in order so a sequential early break
	// never exposes stale results.
	explored := 0
	for k := 0; k < m; k++ {
		r := results[k]
		if !r.ok || (k < m-1 && r.finalEnc != specs[k+1].enc) {
			return Result{}, false
		}
		explored += r.explored
	}
	total := int(bounds[m-1]) + results[m-1].witN
	return Result{Linearizable: true, Witness: wit[:total], StatesExplored: explored}, true
}
