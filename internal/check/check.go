// Package check decides linearizability of operation histories against a
// sequential specification (Herlihy & Wing 1990; Chapter III.B.4 of the
// paper), using the Wing–Gong depth-first search with memoization on
// (linearized-set, object state). See docs/PERFORMANCE.md (and Aspnes,
// "Notes on Theory of Distributed Systems", the linearizability chapter)
// for the algorithmic shape and its worst-case exponential cost.
//
// A history is linearizable iff there is a permutation π of its operations
// such that (a) π is legal for the data type and (b) whenever op1 responds
// before op2 is invoked in real time, op1 precedes op2 in π. Pending
// operations may take effect at any point after their invocation or not at
// all.
//
// The search is engineered for the engine's hot path (hundreds of
// histories per grid):
//
//   - Candidates come from the real-time frontier — the prefix, in
//     invocation order, of undone operations invoked no later than every
//     earlier undone response — walked via a doubly linked list, so each
//     node costs O(width) instead of O(n²).
//   - A frontier of exactly one completed operation is forced: it is
//     linearized without branching or memoization, which reduces fully
//     sequential histories (and the sequential windows between concurrent
//     bursts) to a linear-time replay.
//   - Memo keys are done-set bitset bytes plus the canonical state
//     encoding, built into a reused buffer.
//   - State transitions (Apply + EncodeState) are memoized per
//     (state, operation) — in an arena-local cache, or across runs via a
//     shared Cache handed down by the engine's worker pool.
//   - Histories decompose into concurrency islands — maximal
//     invocation-order segments with no real-time overlap across the cut
//     (the same Herlihy–Wing locality Compose exploits across objects) —
//     checked independently, and concurrently when Options.Workers allows
//     (see island.go for the speculation/stitch protocol).
//   - All search scratch (record copies, linked-list nodes, bitsets,
//     key buffers, memo maps) comes from a reusable Arena, so
//     steady-state checking performs no per-call allocation beyond the
//     returned witness.
package check

import (
	"encoding/binary"
	"sort"
	"sync"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/spec"
)

// Result is the outcome of a linearizability check.
type Result struct {
	// Linearizable reports whether a valid linearization exists.
	Linearizable bool
	// Witness is a legal linearization order (operation ids) when
	// Linearizable is true. Pending operations that were not linearized are
	// omitted.
	Witness []history.OpID
	// StatesExplored counts memoized dead-end search states, for
	// diagnostics. Forced (non-branching) steps are not memoized, so a
	// sequential history explores zero states.
	StatesExplored int
}

// Options configures a check beyond the data type and history.
type Options struct {
	// Cache optionally shares a transition cache (Apply + EncodeState
	// memoization) across histories of the same data type. The engine
	// passes one Cache per data type to all workers of a grid; nil falls
	// back to the arena's per-data-type local cache.
	Cache *Cache
	// Arena reuses checker scratch across calls. Nil draws one from a
	// process-wide pool. An Arena is not safe for concurrent use; give
	// each worker its own.
	Arena *Arena
	// Workers caps concurrent island checks within this history; ≤ 1
	// checks islands sequentially. Island parallelism requires a shared
	// Cache (the arena-local cache is not locked), so Workers is clamped
	// to 1 when Cache is nil.
	Workers int
	// NoIslands disables island decomposition, forcing one whole-history
	// search — the reference execution shape the equivalence tests compare
	// island runs against.
	NoIslands bool
}

// Check decides whether h is a linearizable history of dt.
func Check(dt spec.DataType, h *history.History) Result {
	return CheckOpts(dt, h, Options{})
}

// CheckCached is Check with a shared transition cache: Apply/EncodeState
// results are reused across histories of the same data type. The engine
// passes one Cache per data type to all workers of a grid; a nil cache
// falls back to the arena's local cache.
//
// Deprecated: call CheckOpts with Options{Cache: cache} — the one
// coherent options surface; this shim survives only for old call sites.
func CheckCached(dt spec.DataType, h *history.History, cache *Cache) Result {
	return CheckOpts(dt, h, Options{Cache: cache})
}

// CheckOpts is the full-surface check: shared cache, reusable arena, and
// island-parallel search. The verdict is identical to Check's at every
// option combination — options only change where the work happens.
func CheckOpts(dt spec.DataType, h *history.History, opt Options) Result {
	a := opt.Arena
	if a == nil {
		pooled := arenaPool.Get().(*Arena)
		defer arenaPool.Put(pooled)
		a = pooled
	}
	return a.check(dt, h, opt)
}

// sequentialFastPath handles totally ordered complete histories — every
// operation responds strictly before the next is invoked — in O(n): the
// real-time order is the only admissible permutation, so the history is
// linearizable iff replaying it is legal. Conformance suites built from
// closed-loop single-process workloads take this path and skip the search
// machinery entirely.
func sequentialFastPath(dt spec.DataType, ops []history.Record) (Result, bool) {
	for i := range ops {
		if ops[i].Pending {
			return Result{}, false
		}
		if i+1 < len(ops) && ops[i].Respond >= ops[i+1].Invoke {
			return Result{}, false
		}
	}
	state := dt.InitialState()
	witness := make([]history.OpID, len(ops))
	for i := range ops {
		var ret spec.Value
		state, ret = dt.Apply(state, ops[i].Kind, ops[i].Arg)
		if !spec.ValueEqual(ret, ops[i].Ret) {
			return Result{Linearizable: false}, true
		}
		witness[i] = ops[i].ID
	}
	return Result{Linearizable: true, Witness: witness}, true
}

// transition is one memoized state transition.
type transition struct {
	next spec.State
	enc  string
	ret  spec.Value
}

// Cache memoizes state transitions (Apply plus EncodeState) of one data
// type, keyed by (canonical state encoding, operation kind, canonical
// argument). It is safe for concurrent use: states are immutable by the
// DataType contract, so sharing them across goroutines is sound. The
// engine shares one Cache per data type across a grid's worker pool.
type Cache struct {
	mu sync.RWMutex
	m  map[string]transition
}

// maxCacheEntries bounds a transition cache; beyond it the cache serves
// hits but stops growing (a grid sweeping huge state spaces must not hold
// every state alive).
const maxCacheEntries = 1 << 20

// NewCache returns an empty transition cache.
func NewCache() *Cache { return &Cache{m: make(map[string]transition)} }

// Len returns the number of memoized transitions.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

func (c *Cache) lookup(key []byte) (transition, bool) {
	c.mu.RLock()
	t, ok := c.m[string(key)] // compiler avoids allocating the string for the lookup
	c.mu.RUnlock()
	return t, ok
}

func (c *Cache) store(key string, t transition) {
	c.mu.Lock()
	if len(c.m) < maxCacheEntries {
		c.m[key] = t
	}
	c.mu.Unlock()
}

// CacheSet lazily hands out one transition Cache per data-type name.
// Name-keying is sound under the spec.DataType contract: Name identifies
// the specification (Apply semantics), and EncodeState is injective —
// behaviourally distinct states (including same-looking values of
// different dynamic types, e.g. int 1 vs string "1") must encode
// differently, which the bundled types guarantee by rendering values
// with spec.CanonicalValue. TestSharedCacheAcrossValueTypes pins this.
type CacheSet struct {
	mu sync.Mutex
	m  map[string]*Cache
}

// NewCacheSet returns an empty cache set.
func NewCacheSet() *CacheSet { return &CacheSet{m: make(map[string]*Cache)} }

// For returns the cache for dt, creating it on first use. A nil CacheSet
// returns a nil Cache (arena-local caching).
func (s *CacheSet) For(dt spec.DataType) *Cache {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.m[dt.Name()]
	if !ok {
		c = NewCache()
		s.m[dt.Name()] = c
	}
	return c
}

// checker is the Wing–Gong search state over one record segment — the
// whole history, or one concurrency island checked from a speculated
// boundary state. Search scratch lives in the embedded *scratch (arena
// owned); the argument-key slab is shared across the history's islands.
type checker struct {
	dt  spec.DataType
	ops []history.Record // the segment's records, invocation order
	n   int
	// argBuf/argOff are the history-wide transition-key slab: the key
	// suffix of segment operation i is argBuf[argOff[i]:argOff[i+1]].
	argBuf []byte
	argOff []int32
	shared *Cache
	local  map[string]transition
	// remaining counts completed operations not yet linearized.
	remaining int
	// finalEnc is the state encoding the successful search ended in — the
	// island stitch compares it against the next speculated boundary.
	finalEnc string
	*scratch
}

// reset prepares the checker's scratch for its segment and counts the
// completed operations.
//
//tb:hotpath
func (c *checker) reset() {
	c.scratch.reset(c.n)
	c.remaining = 0
	for i := range c.ops {
		if !c.ops[i].Pending {
			c.remaining++
		}
	}
	c.finalEnc = ""
}

// frontier collects the candidate operations at the current node: undone
// operations, in invocation order, up to (and excluding) the first one
// invoked after some earlier undone response. Only these can be minimal —
// any later operation has an undone real-time predecessor.
//
//tb:hotpath
func (c *checker) frontier(depth int) []int32 {
	for depth >= len(c.fronts) {
		c.fronts = append(c.fronts, nil)
	}
	front := c.fronts[depth][:0]
	var minResp model.Time
	haveMin := false
	for i := c.next[c.n]; int(i) != c.n; i = c.next[i] {
		op := &c.ops[i]
		if haveMin && minResp < op.Invoke {
			break
		}
		front = append(front, i)
		if !op.Pending && (!haveMin || op.Respond < minResp) {
			minResp, haveMin = op.Respond, true
		}
	}
	c.fronts[depth] = front
	return front
}

// take linearizes op i: unlink, mark done, extend the order.
//
//tb:hotpath
func (c *checker) take(i int32) {
	c.next[c.prev[i]] = c.next[i]
	c.prev[c.next[i]] = c.prev[i]
	c.done[i>>6] |= 1 << (uint(i) & 63)
	c.order = append(c.order, i)
	if !c.ops[i].Pending {
		c.remaining--
	}
}

// untake reverses take; calls must nest LIFO (backtracking order).
//
//tb:hotpath
func (c *checker) untake(i int32) {
	c.next[c.prev[i]] = i
	c.prev[c.next[i]] = i
	c.done[i>>6] &^= 1 << (uint(i) & 63)
	c.order = c.order[:len(c.order)-1]
	if !c.ops[i].Pending {
		c.remaining++
	}
}

// memoKey builds the (done set, state) key into the reused buffer.
//
//tb:hotpath
func (c *checker) memoKey(enc string) []byte {
	buf := c.keyBuf[:0]
	for _, w := range c.done {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	buf = append(buf, enc...)
	c.keyBuf = buf
	return buf
}

// apply resolves the transition for op i from the state with encoding enc,
// through the shared or arena-local cache. The key length-prefixes enc so
// that (state encoding, op key) pairs cannot collide across different
// splits.
//
//tb:hotpath
func (c *checker) apply(state spec.State, enc string, i int32) (spec.State, string, spec.Value) {
	buf := binary.AppendUvarint(c.tkeyBuf[:0], uint64(len(enc)))
	buf = append(buf, enc...)
	buf = append(buf, c.argBuf[c.argOff[i]:c.argOff[i+1]]...)
	c.tkeyBuf = buf
	if c.shared != nil {
		if t, ok := c.shared.lookup(buf); ok {
			return t.next, t.enc, t.ret
		}
	} else if t, ok := c.local[string(buf)]; ok {
		return t.next, t.enc, t.ret
	}
	op := &c.ops[i]
	next, ret := c.dt.Apply(state, op.Kind, op.Arg)
	t := transition{next: next, enc: c.dt.EncodeState(next), ret: ret}
	if c.shared != nil {
		c.shared.store(string(buf), t)
	} else if len(c.local) < maxCacheEntries {
		c.local[string(buf)] = t
	}
	return t.next, t.enc, t.ret
}

// search tries to linearize all completed operations from the given state
// (with canonical encoding enc). Pending operations are linearized
// opportunistically when doing so unblocks progress; they never have to be
// linearized.
//
//tb:hotpath
func (c *checker) search(state spec.State, enc string) bool {
	if c.remaining == 0 {
		c.finalEnc = enc
		return true
	}
	front := c.frontier(len(c.order))
	if len(front) == 1 {
		// Forced step: the sole frontier operation responds before every
		// other undone operation is invoked (it is necessarily completed —
		// a pending op never bounds the frontier), so every linearization
		// puts it next. No branching, no memo entry.
		i := front[0]
		next, nextEnc, ret := c.apply(state, enc, i)
		if !spec.ValueEqual(ret, c.ops[i].Ret) {
			return false
		}
		c.take(i)
		if c.search(next, nextEnc) {
			return true
		}
		c.untake(i)
		return false
	}
	if _, dead := c.memo[string(c.memoKey(enc))]; dead {
		return false
	}
	for _, i := range front {
		op := &c.ops[i]
		next, nextEnc, ret := c.apply(state, enc, i)
		if !op.Pending && !spec.ValueEqual(ret, op.Ret) {
			// A completed op must return exactly what the spec dictates.
			continue
		}
		c.take(i)
		if c.search(next, nextEnc) {
			return true
		}
		c.untake(i)
	}
	c.memo[string(c.memoKey(enc))] = struct{}{} // dead end
	return false
}

// MustOrder returns the pairs (a, b) of completed operation ids where a
// responds before b is invoked; useful in tests and diagnostics.
func MustOrder(h *history.History) [][2]history.OpID {
	ops := h.Ops()
	var out [][2]history.OpID
	for _, a := range ops {
		for _, b := range ops {
			if a.ID == b.ID || a.Pending {
				continue
			}
			if a.Respond < b.Invoke {
				out = append(out, [2]history.OpID{a.ID, b.ID})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
