// Package check decides linearizability of operation histories against a
// sequential specification (Herlihy & Wing 1990; Chapter III.B.4 of the
// paper), using the Wing–Gong depth-first search with memoization on
// (linearized-set, object state).
//
// A history is linearizable iff there is a permutation π of its operations
// such that (a) π is legal for the data type and (b) whenever op1 responds
// before op2 is invoked in real time, op1 precedes op2 in π. Pending
// operations may take effect at any point after their invocation or not at
// all.
package check

import (
	"sort"
	"strings"

	"timebounds/internal/history"
	"timebounds/internal/spec"
)

// Result is the outcome of a linearizability check.
type Result struct {
	// Linearizable reports whether a valid linearization exists.
	Linearizable bool
	// Witness is a legal linearization order (operation ids) when
	// Linearizable is true. Pending operations that were not linearized are
	// omitted.
	Witness []history.OpID
	// StatesExplored counts memoized search states, for diagnostics.
	StatesExplored int
}

// Check decides whether h is a linearizable history of dt.
func Check(dt spec.DataType, h *history.History) Result {
	ops := h.Ops()
	n := len(ops)
	if n == 0 {
		return Result{Linearizable: true}
	}

	c := &checker{
		dt:   dt,
		ops:  ops,
		done: make([]bool, n),
		memo: make(map[string]bool),
	}
	// Precompute the real-time precedence relation: pred[i] lists indexes
	// that must be linearized before op i may be chosen.
	c.pred = make([][]int, n)
	for i := range ops {
		for j := range ops {
			if i == j {
				continue
			}
			// ops[j] precedes ops[i] iff ops[j] responded strictly before
			// ops[i] was invoked.
			if !ops[j].Pending && ops[j].Respond < ops[i].Invoke {
				c.pred[i] = append(c.pred[i], j)
			}
		}
	}

	ok := c.search(dt.InitialState())
	res := Result{Linearizable: ok, StatesExplored: len(c.memo)}
	if ok {
		res.Witness = make([]history.OpID, len(c.order))
		for i, idx := range c.order {
			res.Witness[i] = c.ops[idx].ID
		}
	}
	return res
}

type checker struct {
	dt    spec.DataType
	ops   []history.Record
	done  []bool
	order []int
	pred  [][]int
	memo  map[string]bool
}

// remainingCompleted counts completed (non-pending) ops not yet linearized.
func (c *checker) remainingCompleted() int {
	n := 0
	for i, op := range c.ops {
		if !op.Pending && !c.done[i] {
			n++
		}
	}
	return n
}

// key encodes (done set, state) for memoization.
func (c *checker) key(state spec.State) string {
	var sb strings.Builder
	sb.Grow(len(c.done) + 16)
	for _, d := range c.done {
		if d {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	sb.WriteByte('|')
	sb.WriteString(c.dt.EncodeState(state))
	return sb.String()
}

// search tries to linearize all completed operations from the given state.
// Pending operations are linearized opportunistically when doing so unblocks
// progress; they never have to be linearized.
func (c *checker) search(state spec.State) bool {
	if c.remainingCompleted() == 0 {
		return true
	}
	k := c.key(state)
	if failed, seen := c.memo[k]; seen {
		return !failed
	}

	for i, op := range c.ops {
		if c.done[i] {
			continue
		}
		if !c.minimal(i) {
			continue
		}
		next, ret := c.dt.Apply(state, op.Kind, op.Arg)
		if !op.Pending && !spec.ValueEqual(ret, op.Ret) {
			// A completed op must return exactly what the spec dictates.
			continue
		}
		c.done[i] = true
		c.order = append(c.order, i)
		if c.search(next) {
			return true
		}
		c.order = c.order[:len(c.order)-1]
		c.done[i] = false
	}
	c.memo[k] = true // dead end from this (done set, state)
	return false
}

// minimal reports whether op i may be linearized next: every operation that
// really-time-precedes it is already linearized.
func (c *checker) minimal(i int) bool {
	for _, j := range c.pred[i] {
		if !c.done[j] {
			return false
		}
	}
	return true
}

// MustOrder returns the pairs (a, b) of completed operation ids where a
// responds before b is invoked; useful in tests and diagnostics.
func MustOrder(h *history.History) [][2]history.OpID {
	ops := h.Ops()
	var out [][2]history.OpID
	for _, a := range ops {
		for _, b := range ops {
			if a.ID == b.ID || a.Pending {
				continue
			}
			if a.Respond < b.Invoke {
				out = append(out, [2]history.OpID{a.ID, b.ID})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
