// Package tracefmt renders recorded runs as space-time diagrams — the
// textual analogue of the paper's figures (one horizontal lane per process,
// operations as bracketed intervals, messages as send/receive markers) —
// and serializes runs and histories to JSON for external tooling.
package tracefmt

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"timebounds/internal/history"
	"timebounds/internal/model"
	"timebounds/internal/runs"
)

// Diagram renders a space-time diagram of a run plus its operation
// history. Each process occupies one lane; time flows left to right.
// Operation intervals appear as [===]; message sends as digits and their
// receives as the matching digit on the recipient lane (modulo 10).
type Diagram struct {
	// Width is the number of character columns (default 100).
	Width int
	// Horizon bounds the rendered real-time window; zero means the latest
	// event in the run.
	Horizon model.Time
	// ShowMessages toggles the message markers.
	ShowMessages bool
}

// Render draws the diagram. ops may be nil to draw only messages.
func (d Diagram) Render(r runs.Run, ops []history.Record) string {
	width := d.Width
	if width <= 0 {
		width = 100
	}
	horizon := d.Horizon
	if horizon == 0 {
		horizon = latestEvent(r, ops)
	}
	if horizon <= 0 {
		horizon = 1
	}
	col := func(t model.Time) int {
		c := int(int64(t) * int64(width-1) / int64(horizon))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	lanes := make([][]byte, len(r.Views))
	for i := range lanes {
		lanes[i] = []byte(strings.Repeat(".", width))
	}
	for _, op := range ops {
		lane := lanes[op.Proc]
		start := col(op.Invoke)
		end := start
		if !op.Pending {
			end = col(op.Respond)
		}
		if end <= start {
			end = start + 1
		}
		if end >= width {
			end = width - 1
		}
		lane[start] = '['
		for c := start + 1; c < end; c++ {
			lane[c] = '='
		}
		lane[end] = ']'
	}
	if d.ShowMessages {
		for _, m := range r.Msgs {
			marker := byte('0' + m.Seq%10)
			setIfFree(lanes[m.From], col(m.SentAt), marker)
			if m.Received() {
				setIfFree(lanes[m.To], col(m.RecvAt), marker)
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "time: 0 … %s (1 col ≈ %s)\n", horizon, horizon/model.Time(width))
	for i, lane := range lanes {
		fmt.Fprintf(&sb, "%-4s |%s|\n", model.ProcessID(i), lane)
	}
	if len(ops) > 0 {
		sb.WriteString("ops:\n")
		sorted := append([]history.Record(nil), ops...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Invoke < sorted[j].Invoke })
		for _, op := range sorted {
			fmt.Fprintf(&sb, "  %s\n", op)
		}
	}
	return sb.String()
}

// setIfFree writes a message marker into a lane cell unless an operation
// bracket already occupies it (brackets take visual priority).
func setIfFree(lane []byte, c int, marker byte) {
	if c < 0 || c >= len(lane) {
		return
	}
	if lane[c] == '.' || lane[c] == '=' {
		lane[c] = marker
	}
}

func latestEvent(r runs.Run, ops []history.Record) model.Time {
	var latest model.Time
	for _, v := range r.Views {
		for _, st := range v.Steps {
			if st.RealTime > latest {
				latest = st.RealTime
			}
		}
	}
	for _, m := range r.Msgs {
		if m.Received() && m.RecvAt > latest {
			latest = m.RecvAt
		}
	}
	for _, op := range ops {
		if !op.Pending && op.Respond > latest {
			latest = op.Respond
		}
	}
	return latest
}

// JSON-serializable mirror types; durations are integer nanoseconds with
// the unit in the field name (the time package's JSON guidance).

// RunJSON is the JSON form of a run.
type RunJSON struct {
	NumProcesses int           `json:"numProcesses"`
	DNanos       int64         `json:"dNanos"`
	UNanos       int64         `json:"uNanos"`
	EpsilonNanos int64         `json:"epsilonNanos"`
	Views        []ViewJSON    `json:"views"`
	Messages     []MessageJSON `json:"messages"`
}

// ViewJSON is the JSON form of a timed view.
type ViewJSON struct {
	Proc             int        `json:"proc"`
	ClockOffsetNanos int64      `json:"clockOffsetNanos"`
	EndNanos         *int64     `json:"endNanos,omitempty"` // nil = infinite
	Steps            []StepJSON `json:"steps"`
}

// StepJSON is the JSON form of one step.
type StepJSON struct {
	RealTimeNanos int64  `json:"realTimeNanos"`
	Kind          string `json:"kind"`
}

// MessageJSON is the JSON form of one message.
type MessageJSON struct {
	Seq         int    `json:"seq"`
	From        int    `json:"from"`
	To          int    `json:"to"`
	SentAtNanos int64  `json:"sentAtNanos"`
	RecvAtNanos *int64 `json:"recvAtNanos,omitempty"` // nil = not received
}

// MarshalRun serializes a run to JSON.
func MarshalRun(r runs.Run) ([]byte, error) {
	out := RunJSON{
		NumProcesses: r.Params.N,
		DNanos:       int64(r.Params.D),
		UNanos:       int64(r.Params.U),
		EpsilonNanos: int64(r.Params.Epsilon),
	}
	for _, v := range r.Views {
		vj := ViewJSON{Proc: int(v.Proc), ClockOffsetNanos: int64(v.ClockOffset)}
		if v.End != model.Infinity {
			end := int64(v.End)
			vj.EndNanos = &end
		}
		for _, st := range v.Steps {
			vj.Steps = append(vj.Steps, StepJSON{RealTimeNanos: int64(st.RealTime), Kind: st.Kind})
		}
		out.Views = append(out.Views, vj)
	}
	for _, m := range r.Msgs {
		mj := MessageJSON{Seq: m.Seq, From: int(m.From), To: int(m.To), SentAtNanos: int64(m.SentAt)}
		if m.Received() {
			recv := int64(m.RecvAt)
			mj.RecvAtNanos = &recv
		}
		out.Messages = append(out.Messages, mj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalRun reconstructs a run from its JSON form.
func UnmarshalRun(data []byte) (runs.Run, error) {
	var in RunJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return runs.Run{}, err
	}
	out := runs.Run{
		Params: model.Params{
			N:       in.NumProcesses,
			D:       model.Time(in.DNanos),
			U:       model.Time(in.UNanos),
			Epsilon: model.Time(in.EpsilonNanos),
		},
	}
	for _, vj := range in.Views {
		v := runs.TimedView{
			Proc:        model.ProcessID(vj.Proc),
			ClockOffset: model.Time(vj.ClockOffsetNanos),
			End:         model.Infinity,
		}
		if vj.EndNanos != nil {
			v.End = model.Time(*vj.EndNanos)
		}
		for _, st := range vj.Steps {
			v.Steps = append(v.Steps, runs.Step{RealTime: model.Time(st.RealTimeNanos), Kind: st.Kind})
		}
		out.Views = append(out.Views, v)
	}
	for _, mj := range in.Messages {
		m := runs.Message{
			Seq: mj.Seq, From: model.ProcessID(mj.From), To: model.ProcessID(mj.To),
			SentAt: model.Time(mj.SentAtNanos), RecvAt: model.Infinity,
		}
		if mj.RecvAtNanos != nil {
			m.RecvAt = model.Time(*mj.RecvAtNanos)
		}
		out.Msgs = append(out.Msgs, m)
	}
	return out, nil
}

// OpJSON is the JSON form of one history record.
type OpJSON struct {
	ID           int    `json:"id"`
	Proc         int    `json:"proc"`
	Kind         string `json:"kind"`
	Arg          any    `json:"arg"`
	Ret          any    `json:"ret,omitempty"`
	InvokeNanos  int64  `json:"invokeNanos"`
	RespondNanos *int64 `json:"respondNanos,omitempty"` // nil = pending
}

// MarshalHistory serializes a history to JSON.
func MarshalHistory(h *history.History) ([]byte, error) {
	ops := h.Ops()
	out := make([]OpJSON, 0, len(ops))
	for _, op := range ops {
		oj := OpJSON{
			ID: int(op.ID), Proc: int(op.Proc), Kind: string(op.Kind),
			Arg: op.Arg, InvokeNanos: int64(op.Invoke),
		}
		if !op.Pending {
			resp := int64(op.Respond)
			oj.RespondNanos = &resp
			oj.Ret = op.Ret
		}
		out = append(out, oj)
	}
	return json.MarshalIndent(out, "", "  ")
}
