package tracefmt_test

import (
	"strings"
	"testing"
	"time"

	"timebounds/internal/core"
	"timebounds/internal/model"
	"timebounds/internal/runs"
	"timebounds/internal/sim"
	"timebounds/internal/tracefmt"
	"timebounds/internal/types"
)

func sampleCluster(t *testing.T) *core.Cluster {
	t.Helper()
	p := model.Params{N: 3, D: 10 * time.Millisecond, U: 4 * time.Millisecond}
	p.Epsilon = p.OptimalSkew()
	c, err := core.NewCluster(core.Config{Params: p}, types.NewRegister(0), sim.Config{
		Delay:        sim.FixedDelay(p.D),
		StrictDelays: true,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	c.Invoke(0, 0, types.OpWrite, 1)
	c.Invoke(30*time.Millisecond, 1, types.OpRead, nil)
	if err := c.Run(model.Infinity); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return c
}

func TestDiagramRender(t *testing.T) {
	c := sampleCluster(t)
	r := runs.FromSim(c.Simulator())
	out := tracefmt.Diagram{Width: 80, ShowMessages: true}.Render(r, c.History().Ops())
	if !strings.Contains(out, "p0") || !strings.Contains(out, "p2") {
		t.Errorf("missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "[") || !strings.Contains(out, "]") {
		t.Errorf("missing operation intervals:\n%s", out)
	}
	if !strings.Contains(out, "ops:") {
		t.Errorf("missing ops legend:\n%s", out)
	}
	// Lane lines must all have identical visual width.
	var lens []int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "p") {
			lens = append(lens, len(line))
		}
	}
	for i := 1; i < len(lens); i++ {
		if lens[i] != lens[0] {
			t.Errorf("lane widths differ: %v", lens)
		}
	}
}

func TestDiagramEmptyRun(t *testing.T) {
	r := runs.Run{
		Params: model.Params{N: 2, D: time.Millisecond, U: 0},
		Views:  []runs.TimedView{{Proc: 0, End: model.Infinity}, {Proc: 1, End: model.Infinity}},
	}
	out := tracefmt.Diagram{Width: 40}.Render(r, nil)
	if out == "" {
		t.Error("empty render")
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	c := sampleCluster(t)
	r := runs.FromSim(c.Simulator())
	data, err := tracefmt.MarshalRun(r)
	if err != nil {
		t.Fatalf("MarshalRun: %v", err)
	}
	back, err := tracefmt.UnmarshalRun(data)
	if err != nil {
		t.Fatalf("UnmarshalRun: %v", err)
	}
	if back.Params != r.Params {
		t.Errorf("params changed: %+v vs %+v", back.Params, r.Params)
	}
	if len(back.Views) != len(r.Views) || len(back.Msgs) != len(r.Msgs) {
		t.Fatalf("shape changed: %d/%d views, %d/%d msgs",
			len(back.Views), len(r.Views), len(back.Msgs), len(r.Msgs))
	}
	for i := range r.Views {
		if back.Views[i].ClockOffset != r.Views[i].ClockOffset ||
			back.Views[i].End != r.Views[i].End ||
			len(back.Views[i].Steps) != len(r.Views[i].Steps) {
			t.Errorf("view %d changed", i)
		}
	}
	for i := range r.Msgs {
		if back.Msgs[i] != r.Msgs[i] {
			t.Errorf("msg %d changed: %+v vs %+v", i, back.Msgs[i], r.Msgs[i])
		}
	}
	// Round-tripped runs still pass the run checks.
	if err := runs.CheckRun(back); err != nil {
		t.Errorf("round-tripped run invalid: %v", err)
	}
	if err := runs.Admissible(back); err != nil {
		t.Errorf("round-tripped run inadmissible: %v", err)
	}
}

func TestUnreceivedMessageJSON(t *testing.T) {
	r := runs.Run{
		Params: model.Params{N: 2, D: time.Millisecond, U: 0},
		Views: []runs.TimedView{
			{Proc: 0, End: 500 * time.Microsecond},
			{Proc: 1, End: 500 * time.Microsecond},
		},
		Msgs: []runs.Message{{Seq: 0, From: 0, To: 1, SentAt: 0, RecvAt: model.Infinity}},
	}
	data, err := tracefmt.MarshalRun(r)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "recvAtNanos") {
		t.Error("unreceived message should omit recvAtNanos")
	}
	back, err := tracefmt.UnmarshalRun(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Msgs[0].Received() {
		t.Error("unreceived flag lost in round trip")
	}
	if back.Views[0].End == model.Infinity {
		t.Error("finite view end lost in round trip")
	}
}

func TestMarshalHistory(t *testing.T) {
	c := sampleCluster(t)
	data, err := tracefmt.MarshalHistory(c.History())
	if err != nil {
		t.Fatalf("MarshalHistory: %v", err)
	}
	s := string(data)
	for _, want := range []string{`"kind": "write"`, `"kind": "read"`, `"invokeNanos"`} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %s in:\n%s", want, s)
		}
	}
}
