// Classification predicates of Chapter II: immediate / eventual
// (non-)commutativity, non-self-permuting, mutator / accessor / overwriter.
// Each property has (a) a witness type plus a Verify function that checks a
// concrete witness mechanically, and (b) a bounded brute-force Find function
// that searches a small instance domain for a witness. The property tests
// use Find to re-derive the catalog's declared properties.

package spec

import "fmt"

// Domain bounds a brute-force search over operation instances: candidate
// prefixes (as invocation lists) and candidate arguments per operation kind.
type Domain struct {
	// Prefixes are candidate ρ prefixes, given as invocations; returns are
	// derived by replay.
	Prefixes [][]Invocation
	// Args maps each operation kind to candidate argument values.
	Args map[OpKind][]Value
}

// argsFor returns the candidate arguments for kind, defaulting to {nil}.
func (d Domain) argsFor(kind OpKind) []Value {
	if vs, ok := d.Args[kind]; ok && len(vs) > 0 {
		return vs
	}
	return []Value{nil}
}

// completions enumerates every legal op instance of the given kind after
// prefix state s: for each candidate argument the unique legal return is
// derived from the specification.
func completions(dt DataType, s State, kind OpKind, dom Domain) []Op {
	args := dom.argsFor(kind)
	ops := make([]Op, 0, len(args))
	for _, arg := range args {
		_, ret := dt.Apply(s, kind, arg)
		ops = append(ops, Op{Kind: kind, Arg: arg, Ret: ret})
	}
	return ops
}

// CommuteWitness is a witness for immediate non-commutativity
// (Definition B.1): ρ∘op1 and ρ∘op2 are legal but ρ∘op1∘op2 or ρ∘op2∘op1
// is not.
type CommuteWitness struct {
	Prefix   Sequence
	Op1, Op2 Op
	// BothIllegal records whether both orders are illegal, i.e. whether the
	// witness additionally establishes the "strongly" variant
	// (Definition B.3) when Op1.Kind == Op2.Kind.
	BothIllegal bool
}

// String implements fmt.Stringer.
func (w CommuteWitness) String() string {
	return fmt.Sprintf("ρ=%v op1=%v op2=%v bothIllegal=%v", w.Prefix, w.Op1, w.Op2, w.BothIllegal)
}

// VerifyImmediatelyNonCommuting checks a CommuteWitness against the
// definition. It returns an error naming the first failing condition.
func VerifyImmediatelyNonCommuting(dt DataType, w CommuteWitness) error {
	if !Legal(dt, w.Prefix.Append(w.Op1)) {
		return fmt.Errorf("spec: ρ∘op1 is illegal")
	}
	if !Legal(dt, w.Prefix.Append(w.Op2)) {
		return fmt.Errorf("spec: ρ∘op2 is illegal")
	}
	l12 := Legal(dt, w.Prefix.Append(w.Op1, w.Op2))
	l21 := Legal(dt, w.Prefix.Append(w.Op2, w.Op1))
	if l12 && l21 {
		return fmt.Errorf("spec: both orders legal; operations commute after ρ")
	}
	if w.BothIllegal && (l12 || l21) {
		return fmt.Errorf("spec: witness claims both orders illegal but one is legal")
	}
	return nil
}

// FindImmediatelyNonCommuting searches dom for a witness that kinds k1 and
// k2 are immediately non-commuting (Definition B.1; B.2 when k1 == k2).
func FindImmediatelyNonCommuting(dt DataType, k1, k2 OpKind, dom Domain) (CommuteWitness, bool) {
	return findCommuteWitness(dt, k1, k2, dom, false)
}

// FindStronglyImmediatelyNonSelfCommuting searches dom for a witness that
// kind k is strongly immediately non-self-commuting (Definition B.3): both
// ρ∘op1∘op2 and ρ∘op2∘op1 are illegal.
func FindStronglyImmediatelyNonSelfCommuting(dt DataType, k OpKind, dom Domain) (CommuteWitness, bool) {
	return findCommuteWitness(dt, k, k, dom, true)
}

func findCommuteWitness(dt DataType, k1, k2 OpKind, dom Domain, needBoth bool) (CommuteWitness, bool) {
	for _, pre := range dom.Prefixes {
		rho, s := Build(dt, pre...)
		for _, op1 := range completions(dt, s, k1, dom) {
			for _, op2 := range completions(dt, s, k2, dom) {
				l12 := Legal(dt, rho.Append(op1, op2))
				l21 := Legal(dt, rho.Append(op2, op1))
				if needBoth {
					if !l12 && !l21 {
						return CommuteWitness{Prefix: rho, Op1: op1, Op2: op2, BothIllegal: true}, true
					}
					continue
				}
				if !l12 || !l21 {
					return CommuteWitness{
						Prefix: rho, Op1: op1, Op2: op2,
						BothIllegal: !l12 && !l21,
					}, true
				}
			}
		}
	}
	return CommuteWitness{}, false
}

// EventualWitness is a witness for eventual non-self-commutativity
// (Definition C.3): ρ∘op1 and ρ∘op2 legal but ρ∘op1∘op2 ≢ ρ∘op2∘op1.
type EventualWitness struct {
	Prefix   Sequence
	Op1, Op2 Op
}

// VerifyEventuallyNonSelfCommuting checks an EventualWitness.
func VerifyEventuallyNonSelfCommuting(dt DataType, w EventualWitness) error {
	if !Legal(dt, w.Prefix.Append(w.Op1)) || !Legal(dt, w.Prefix.Append(w.Op2)) {
		return fmt.Errorf("spec: ρ∘op1 or ρ∘op2 is illegal")
	}
	if Equivalent(dt, w.Prefix.Append(w.Op1, w.Op2), w.Prefix.Append(w.Op2, w.Op1)) {
		return fmt.Errorf("spec: the two orders are equivalent")
	}
	return nil
}

// FindEventuallyNonSelfCommuting searches dom for an EventualWitness for
// kind k.
func FindEventuallyNonSelfCommuting(dt DataType, k OpKind, dom Domain) (EventualWitness, bool) {
	for _, pre := range dom.Prefixes {
		rho, s := Build(dt, pre...)
		for _, op1 := range completions(dt, s, k, dom) {
			for _, op2 := range completions(dt, s, k, dom) {
				if !Equivalent(dt, rho.Append(op1, op2), rho.Append(op2, op1)) {
					return EventualWitness{Prefix: rho, Op1: op1, Op2: op2}, true
				}
			}
		}
	}
	return EventualWitness{}, false
}

// EventuallySelfCommuting reports whether, over the whole domain, every pair
// of legal instances of kind k commutes eventually (Definition C.6,
// restricted to dom). It is the bounded complement of
// FindEventuallyNonSelfCommuting.
func EventuallySelfCommuting(dt DataType, k OpKind, dom Domain) bool {
	_, found := FindEventuallyNonSelfCommuting(dt, k, dom)
	return !found
}

// PermuteWitness is a witness for the non-self-permuting properties
// (Definitions C.4 and C.5): k legal instances such that distinct legal
// permutations are pairwise non-equivalent (any-permuting) or non-equivalent
// whenever their last operations differ (last-permuting).
type PermuteWitness struct {
	Prefix Sequence
	Ops    []Op
}

// VerifyNonSelfLastPermuting checks that w witnesses eventual
// non-self-last-permuting behaviour: (1) each ρ∘opᵢ is legal, (2) at least
// two permutations are legal, and (3) any two legal permutations with
// different last operations are not equivalent.
func VerifyNonSelfLastPermuting(dt DataType, w PermuteWitness) error {
	return verifyPermuteWitness(dt, w, false)
}

// VerifyNonSelfAnyPermuting checks the stronger Definition C.4: any two
// *different* legal permutations are not equivalent.
func VerifyNonSelfAnyPermuting(dt DataType, w PermuteWitness) error {
	return verifyPermuteWitness(dt, w, true)
}

func verifyPermuteWitness(dt DataType, w PermuteWitness, anyPermuting bool) error {
	for _, op := range w.Ops {
		if !Legal(dt, w.Prefix.Append(op)) {
			return fmt.Errorf("spec: ρ∘%v is illegal", op)
		}
	}
	type perm struct {
		ops  []Op
		code string
	}
	var legals []perm
	Permutations(w.Ops, func(ops []Op) bool {
		seq := w.Prefix.Append(ops...)
		if Legal(dt, seq) {
			cp := make([]Op, len(ops))
			copy(cp, ops)
			legals = append(legals, perm{ops: cp, code: EncodeAfter(dt, seq)})
		}
		return true
	})
	if len(legals) < 2 {
		return fmt.Errorf("spec: fewer than two legal permutations (%d)", len(legals))
	}
	for i := range legals {
		for j := i + 1; j < len(legals); j++ {
			a, b := legals[i], legals[j]
			differentLast := !sameOp(a.ops[len(a.ops)-1], b.ops[len(b.ops)-1])
			mustDiffer := anyPermuting || differentLast
			if mustDiffer && a.code == b.code {
				return fmt.Errorf("spec: permutations %v and %v are equivalent", a.ops, b.ops)
			}
		}
	}
	return nil
}

func sameOp(a, b Op) bool {
	return a.Kind == b.Kind && ValueEqual(a.Arg, b.Arg) && ValueEqual(a.Ret, b.Ret)
}

// FindNonSelfLastPermuting searches for a PermuteWitness of size k for
// operation kind op, trying every k-subset of the candidate instances
// after each prefix in the domain.
func FindNonSelfLastPermuting(dt DataType, op OpKind, k int, dom Domain) (PermuteWitness, bool) {
	var found PermuteWitness
	ok := false
	for _, pre := range dom.Prefixes {
		if ok {
			break
		}
		rho, s := Build(dt, pre...)
		cands := completions(dt, s, op, dom)
		if len(cands) < k {
			continue
		}
		combinations(len(cands), k, func(idx []int) bool {
			ops := make([]Op, k)
			for i, j := range idx {
				ops[i] = cands[j]
			}
			w := PermuteWitness{Prefix: rho, Ops: ops}
			if VerifyNonSelfLastPermuting(dt, w) == nil {
				found, ok = w, true
				return false
			}
			return true
		})
	}
	return found, ok
}

// combinations calls fn with every k-subset of {0..n-1} (indices in
// increasing order), stopping early when fn returns false. The slice
// passed to fn is reused between calls.
func combinations(n, k int, fn func([]int) bool) {
	idx := make([]int, k)
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == k {
			return fn(idx)
		}
		for i := start; i <= n-(k-depth); i++ {
			idx[depth] = i
			if !rec(i+1, depth+1) {
				return false
			}
		}
		return true
	}
	if k >= 0 && k <= n {
		rec(0, 0)
	}
}

// IsMutator reports whether kind k mutates the object somewhere in dom
// (Definition D.1): ∃ρ, op with ρ∘op ≢ ρ.
func IsMutator(dt DataType, k OpKind, dom Domain) bool {
	for _, pre := range dom.Prefixes {
		rho, s := Build(dt, pre...)
		for _, op := range completions(dt, s, k, dom) {
			if !Equivalent(dt, rho.Append(op), rho) {
				return true
			}
		}
	}
	return false
}

// IsAccessor reports whether kind k returns information about the object
// somewhere in dom (Definition D.2). For deterministic objects this holds
// exactly when the return value of some instance depends on the prior
// state: then recording the "wrong" return yields an illegal ρ∘op.
func IsAccessor(dt DataType, k OpKind, dom Domain) bool {
	seen := make(map[string]string) // arg encoding -> ret encoding
	for _, pre := range dom.Prefixes {
		_, s := Build(dt, pre...)
		for _, arg := range dom.argsFor(k) {
			_, ret := dt.Apply(s, k, arg)
			key := fmt.Sprintf("%#v", arg)
			enc := fmt.Sprintf("%#v", ret)
			if prev, ok := seen[key]; ok && prev != enc {
				return true
			}
			seen[key] = enc
		}
	}
	return false
}

// IsPureMutator reports mutator-and-not-accessor over dom (Definition D.3).
func IsPureMutator(dt DataType, k OpKind, dom Domain) bool {
	return IsMutator(dt, k, dom) && !IsAccessor(dt, k, dom)
}

// IsPureAccessor reports accessor-and-not-mutator over dom (Definition D.4).
func IsPureAccessor(dt DataType, k OpKind, dom Domain) bool {
	return IsAccessor(dt, k, dom) && !IsMutator(dt, k, dom)
}

// IsNonOverwriter reports whether mutator kind k fails to overwrite the
// whole state somewhere in dom (Definition D.5): ∃ρ, op1, op2 with
// ρ∘op1∘op2 ≢ ρ∘op2.
func IsNonOverwriter(dt DataType, k OpKind, dom Domain) bool {
	for _, pre := range dom.Prefixes {
		rho, s := Build(dt, pre...)
		for _, op1 := range completions(dt, s, k, dom) {
			s1, ok := Replay(dt, s, Sequence{op1})
			if !ok {
				continue
			}
			for _, arg2 := range dom.argsFor(k) {
				_, ret12 := dt.Apply(s1, k, arg2)
				op2after1 := Op{Kind: k, Arg: arg2, Ret: ret12}
				_, ret2 := dt.Apply(s, k, arg2)
				op2alone := Op{Kind: k, Arg: arg2, Ret: ret2}
				if !Equivalent(dt,
					rho.Append(op1, op2after1),
					rho.Append(op2alone)) {
					return true
				}
			}
		}
	}
	return false
}
