package spec

// Classification consolidates every Chapter II property of one operation
// kind over a search domain, as re-derived by the brute-force classifiers.
// It backs cmd/tbclassify and the cross-checking tests.
type Classification struct {
	Kind  OpKind
	Class OpClass
	// Mutator / Accessor per Definitions D.1–D.2.
	Mutator, Accessor bool
	// Overwriter is true for mutators that overwrite the whole state
	// (negation of Definition D.5 over the domain).
	Overwriter bool
	// INSC is immediate non-self-commutativity (Definition B.2).
	INSC bool
	// StronglyINSC is Definition B.3.
	StronglyINSC bool
	// ENSC is eventual non-self-commutativity (Definition C.3).
	ENSC bool
	// LastPermuting3 is a k=3 witness for Definition C.5.
	LastPermuting3 bool
}

// Classify derives the full Classification of one kind.
func Classify(dt DataType, kind OpKind, dom Domain) Classification {
	c := Classification{
		Kind:     kind,
		Class:    dt.Class(kind),
		Mutator:  IsMutator(dt, kind, dom),
		Accessor: IsAccessor(dt, kind, dom),
	}
	c.Overwriter = c.Mutator && !IsNonOverwriter(dt, kind, dom)
	_, c.INSC = FindImmediatelyNonCommuting(dt, kind, kind, dom)
	_, c.StronglyINSC = FindStronglyImmediatelyNonSelfCommuting(dt, kind, dom)
	_, c.ENSC = FindEventuallyNonSelfCommuting(dt, kind, dom)
	_, c.LastPermuting3 = FindNonSelfLastPermuting(dt, kind, 3, dom)
	return c
}

// ClassifyAll derives classifications for every kind of a data type.
func ClassifyAll(dt DataType, dom Domain) []Classification {
	kinds := dt.Kinds()
	out := make([]Classification, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, Classify(dt, k, dom))
	}
	return out
}

// ConsistentWithClass reports whether the derived mutator/accessor facts
// agree with the declared Chapter V class, and a reason when they do not.
func (c Classification) ConsistentWithClass() (bool, string) {
	switch c.Class {
	case ClassPureMutator:
		if !c.Mutator || c.Accessor {
			return false, "declared MOP but not a pure mutator over the domain"
		}
	case ClassPureAccessor:
		if c.Mutator || !c.Accessor {
			return false, "declared AOP but not a pure accessor over the domain"
		}
	case ClassOther:
		if !c.Mutator {
			return false, "declared OOP but not even a mutator over the domain"
		}
	}
	return true, ""
}
