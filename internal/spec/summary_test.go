package spec_test

import (
	"testing"

	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func TestClassifyMatchesIndividualPredicates(t *testing.T) {
	q := types.NewQueue()
	dom := types.DefaultDomain(q)
	byKind := make(map[spec.OpKind]spec.Classification)
	for _, c := range spec.ClassifyAll(q, dom) {
		byKind[c.Kind] = c
	}
	enq := byKind[types.OpEnqueue]
	if !enq.Mutator || enq.Accessor || enq.Overwriter {
		t.Errorf("enqueue: %+v", enq)
	}
	if !enq.ENSC || !enq.LastPermuting3 || enq.INSC {
		t.Errorf("enqueue commutativity: %+v", enq)
	}
	deq := byKind[types.OpDequeue]
	if !deq.INSC || !deq.StronglyINSC {
		t.Errorf("dequeue: %+v", deq)
	}
	peek := byKind[types.OpPeek]
	if peek.Mutator || !peek.Accessor {
		t.Errorf("peek: %+v", peek)
	}
}

func TestClassifyAllConsistentEverywhere(t *testing.T) {
	dts := []spec.DataType{
		types.NewRMWRegister(0),
		types.NewCounter(),
		types.NewQueue(),
		types.NewStack(),
		types.NewSet(),
		types.NewTree(),
		types.NewDict(),
		types.NewPQueue(),
		types.NewAccount(),
		types.NewPairArray(3, 5),
	}
	for _, dt := range dts {
		dom := types.DefaultDomain(dt)
		for _, c := range spec.ClassifyAll(dt, dom) {
			if ok, reason := c.ConsistentWithClass(); !ok {
				t.Errorf("%s/%s: %s (%+v)", dt.Name(), c.Kind, reason, c)
			}
		}
	}
}

func TestClassifyWriteOverwrites(t *testing.T) {
	reg := types.NewRegister(0)
	c := spec.Classify(reg, types.OpWrite, types.DefaultDomain(reg))
	if !c.Overwriter {
		t.Error("write should be an overwriter")
	}
	if c.StronglyINSC {
		t.Error("write is not strongly INSC")
	}
}
