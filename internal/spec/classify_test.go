package spec_test

// Property tests: re-derive every classification the paper claims in
// Chapters I–II and VI from the sequential specifications alone, using the
// brute-force searchers over the default domains. If internal/types' Class
// declarations ever drift from the algebra, these tests fail.

import (
	"testing"

	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func TestStronglyImmediatelyNonSelfCommuting(t *testing.T) {
	// Chapter II.B: RMW, pop and dequeue are strongly immediately
	// non-self-commuting.
	cases := []struct {
		dt   spec.DataType
		kind spec.OpKind
	}{
		{types.NewRMWRegister(0), types.OpRMW},
		{types.NewStack(), types.OpPop},
		{types.NewQueue(), types.OpDequeue},
	}
	for _, c := range cases {
		t.Run(c.dt.Name()+"/"+string(c.kind), func(t *testing.T) {
			dom := types.DefaultDomain(c.dt)
			w, ok := spec.FindStronglyImmediatelyNonSelfCommuting(c.dt, c.kind, dom)
			if !ok {
				t.Fatalf("no strongly-INSC witness found for %s", c.kind)
			}
			if err := spec.VerifyImmediatelyNonCommuting(c.dt, w); err != nil {
				t.Fatalf("witness fails verification: %v (%v)", err, w)
			}
			if !w.BothIllegal {
				t.Fatalf("witness is not strong: %v", w)
			}
		})
	}
}

func TestUpdateNextIsINSCButNotStrongly(t *testing.T) {
	// Chapter II.B's UpdateNext example: immediately non-self-commuting
	// but not strongly so.
	dt := types.NewPairArray(3, 5)
	dom := types.DefaultDomain(dt)
	if _, ok := spec.FindImmediatelyNonCommuting(dt, types.OpUpdateNext, types.OpUpdateNext, dom); !ok {
		t.Error("UpdateNext should be immediately non-self-commuting")
	}
	if w, ok := spec.FindStronglyImmediatelyNonSelfCommuting(dt, types.OpUpdateNext, dom); ok {
		t.Errorf("UpdateNext must not be strongly immediately non-self-commuting; got witness %v", w)
	}
}

func TestReadWriteImmediatelyNonCommuting(t *testing.T) {
	// Chapter II.B's first example: read and write immediately do not
	// commute.
	dt := types.NewRegister(0)
	dom := types.DefaultDomain(dt)
	w, ok := spec.FindImmediatelyNonCommuting(dt, types.OpRead, types.OpWrite, dom)
	if !ok {
		t.Fatal("read and write should be immediately non-commuting")
	}
	if err := spec.VerifyImmediatelyNonCommuting(dt, w); err != nil {
		t.Fatalf("witness fails verification: %v", err)
	}
}

func TestWriteEventuallyNonSelfCommuting(t *testing.T) {
	// Definition C.3's example: two different writes do not eventually
	// commute.
	dt := types.NewRegister(0)
	dom := types.DefaultDomain(dt)
	w, ok := spec.FindEventuallyNonSelfCommuting(dt, types.OpWrite, dom)
	if !ok {
		t.Fatal("write should be eventually non-self-commuting")
	}
	if err := spec.VerifyEventuallyNonSelfCommuting(dt, w); err != nil {
		t.Fatalf("witness fails verification: %v", err)
	}
}

func TestInsertAndIncrementEventuallySelfCommute(t *testing.T) {
	// Definition C.6's examples: set insert/remove; plus increment
	// (Chapter I.C item 3).
	set := types.NewSet()
	setDom := types.DefaultDomain(set)
	if !spec.EventuallySelfCommuting(set, types.OpInsert, setDom) {
		t.Error("set insert should eventually self-commute")
	}
	if !spec.EventuallySelfCommuting(set, types.OpRemove, setDom) {
		t.Error("set remove should eventually self-commute")
	}
	ctr := types.NewCounter()
	if !spec.EventuallySelfCommuting(ctr, types.OpIncrement, types.DefaultDomain(ctr)) {
		t.Error("increment should eventually self-commute")
	}
}

func TestNonSelfLastPermuting(t *testing.T) {
	// Chapter II.C: write, push, enqueue are eventually
	// non-self-last-permuting for any k.
	cases := []struct {
		dt   spec.DataType
		kind spec.OpKind
	}{
		{types.NewRegister(0), types.OpWrite},
		{types.NewStack(), types.OpPush},
		{types.NewQueue(), types.OpEnqueue},
	}
	for _, c := range cases {
		for _, k := range []int{2, 3, 4} {
			w, ok := spec.FindNonSelfLastPermuting(c.dt, c.kind, k, types.DefaultDomain(c.dt))
			if !ok {
				t.Errorf("%s: no k=%d non-self-last-permuting witness", c.kind, k)
				continue
			}
			if err := spec.VerifyNonSelfLastPermuting(c.dt, w); err != nil {
				t.Errorf("%s k=%d witness fails: %v", c.kind, k, err)
			}
		}
	}
}

func TestWriteIsLastPermutingButNotAnyPermuting(t *testing.T) {
	// Chapter II.C: write is eventually non-self-last-permuting but NOT
	// non-self-any-permuting (permutations agreeing on the last write are
	// equivalent).
	dt := types.NewRegister(0)
	dom := types.DefaultDomain(dt)
	w, ok := spec.FindNonSelfLastPermuting(dt, types.OpWrite, 3, dom)
	if !ok {
		t.Fatal("write should have a k=3 last-permuting witness")
	}
	if err := spec.VerifyNonSelfAnyPermuting(dt, w); err == nil {
		t.Error("write witness should NOT satisfy any-permuting")
	}
}

func TestPushIsAnyPermuting(t *testing.T) {
	// Chapter II.C: push (and enqueue) are eventually
	// non-self-any-permuting.
	for _, c := range []struct {
		dt   spec.DataType
		kind spec.OpKind
	}{
		{types.NewStack(), types.OpPush},
		{types.NewQueue(), types.OpEnqueue},
	} {
		dom := types.DefaultDomain(c.dt)
		w, ok := spec.FindNonSelfLastPermuting(c.dt, c.kind, 3, dom)
		if !ok {
			t.Fatalf("%s: no witness", c.kind)
		}
		if err := spec.VerifyNonSelfAnyPermuting(c.dt, w); err != nil {
			t.Errorf("%s should be any-permuting: %v", c.kind, err)
		}
	}
}

func TestMutatorAccessorClassification(t *testing.T) {
	// Chapter VI: the class declared in each data type's catalog must
	// match the algebraic definitions over the default domain.
	dts := []spec.DataType{
		types.NewRMWRegister(0),
		types.NewCounter(),
		types.NewQueue(),
		types.NewStack(),
		types.NewSet(),
		types.NewTree(),
	}
	for _, dt := range dts {
		dom := types.DefaultDomain(dt)
		for _, kind := range dt.Kinds() {
			kind := kind
			t.Run(dt.Name()+"/"+string(kind), func(t *testing.T) {
				mut := spec.IsMutator(dt, kind, dom)
				acc := spec.IsAccessor(dt, kind, dom)
				switch dt.Class(kind) {
				case spec.ClassPureMutator:
					if !mut || acc {
						t.Errorf("declared MOP but mutator=%v accessor=%v", mut, acc)
					}
				case spec.ClassPureAccessor:
					if mut || !acc {
						t.Errorf("declared AOP but mutator=%v accessor=%v", mut, acc)
					}
				case spec.ClassOther:
					if !mut || !acc {
						t.Errorf("declared OOP but mutator=%v accessor=%v", mut, acc)
					}
				}
			})
		}
	}
}

func TestOverwriterClassification(t *testing.T) {
	// Chapter I.C / IV.E: write overwrites the whole state; increment,
	// push and enqueue do not.
	reg := types.NewRegister(0)
	if spec.IsNonOverwriter(reg, types.OpWrite, types.DefaultDomain(reg)) {
		t.Error("write should be an overwriter")
	}
	ctr := types.NewCounter()
	if !spec.IsNonOverwriter(ctr, types.OpIncrement, types.DefaultDomain(ctr)) {
		t.Error("increment should be a non-overwriter")
	}
	st := types.NewStack()
	if !spec.IsNonOverwriter(st, types.OpPush, types.DefaultDomain(st)) {
		t.Error("push should be a non-overwriter")
	}
	q := types.NewQueue()
	if !spec.IsNonOverwriter(q, types.OpEnqueue, types.DefaultDomain(q)) {
		t.Error("enqueue should be a non-overwriter")
	}
}

func TestTheoremE1AssumptionsHoldForQueue(t *testing.T) {
	// The assumptions A, B, C of Theorem E.1 hold for (enqueue, peek) with
	// ρ empty, op1 = enq(a), op2 = enq(b), aop = peek.
	q := types.NewQueue()
	enq := func(v spec.Value) spec.Op { return spec.Op{Kind: types.OpEnqueue, Arg: v} }
	peek := func(v spec.Value) spec.Op { return spec.Op{Kind: types.OpPeek, Ret: v} }
	op1, op2 := enq("a"), enq("b")

	// A: ρ∘op1∘peek(a) legal; ρ∘op2∘op1∘peek(a) illegal (head is b).
	if !spec.Legal(q, spec.Sequence{op1, peek("a")}) {
		t.Error("A: enq(a)∘peek(a) should be legal")
	}
	if spec.Legal(q, spec.Sequence{op2, op1, peek("a")}) {
		t.Error("A: enq(b)∘enq(a)∘peek(a) should be illegal")
	}
	// B: symmetric.
	if !spec.Legal(q, spec.Sequence{op2, peek("b")}) {
		t.Error("B: enq(b)∘peek(b) should be legal")
	}
	if spec.Legal(q, spec.Sequence{op1, op2, peek("b")}) {
		t.Error("B: enq(a)∘enq(b)∘peek(b) should be illegal")
	}
	// C: the two orders disagree on peek's return.
	if !spec.Legal(q, spec.Sequence{op1, op2, peek("a")}) {
		t.Error("C: enq(a)∘enq(b)∘peek(a) should be legal")
	}
	if spec.Legal(q, spec.Sequence{op2, op1, peek("a")}) {
		t.Error("C: enq(b)∘enq(a)∘peek(a) should be illegal")
	}
}
