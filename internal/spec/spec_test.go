package spec_test

import (
	"testing"

	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func TestLegalSequences(t *testing.T) {
	reg := types.NewRegister(0)
	tests := []struct {
		name string
		seq  spec.Sequence
		want bool
	}{
		{"empty", nil, true},
		{"write-then-matching-read", spec.Sequence{
			{Kind: types.OpWrite, Arg: 1, Ret: nil},
			{Kind: types.OpRead, Ret: 1},
		}, true},
		{"read-initial", spec.Sequence{{Kind: types.OpRead, Ret: 0}}, true},
		{"read-wrong-value", spec.Sequence{{Kind: types.OpRead, Ret: 5}}, false},
		{"stale-read-after-write", spec.Sequence{
			{Kind: types.OpWrite, Arg: 1, Ret: nil},
			{Kind: types.OpRead, Ret: 0},
		}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := spec.Legal(reg, tt.seq); got != tt.want {
				t.Errorf("Legal(%v) = %v, want %v", tt.seq, got, tt.want)
			}
		})
	}
}

func TestBuildDerivesReturns(t *testing.T) {
	q := types.NewQueue()
	seq, _ := spec.Build(q,
		spec.Invocation{Kind: types.OpEnqueue, Arg: "a"},
		spec.Invocation{Kind: types.OpEnqueue, Arg: "b"},
		spec.Invocation{Kind: types.OpDequeue},
		spec.Invocation{Kind: types.OpPeek},
	)
	if !spec.Legal(q, seq) {
		t.Fatalf("built sequence illegal: %v", seq)
	}
	if !spec.ValueEqual(seq[2].Ret, "a") {
		t.Errorf("dequeue returned %v, want a", seq[2].Ret)
	}
	if !spec.ValueEqual(seq[3].Ret, "b") {
		t.Errorf("peek returned %v, want b", seq[3].Ret)
	}
}

func TestLooksLikeAndEquivalent(t *testing.T) {
	reg := types.NewRegister(0)
	w1 := spec.Op{Kind: types.OpWrite, Arg: 1}
	w2 := spec.Op{Kind: types.OpWrite, Arg: 2}

	// write(1)∘write(2) ≡ write(2) — last write wins.
	a := spec.Sequence{w1, w2}
	b := spec.Sequence{w2}
	if !spec.Equivalent(reg, a, b) {
		t.Error("write(1)∘write(2) should be equivalent to write(2)")
	}
	// write(1)∘write(2) ≢ write(2)∘write(1) — the write example of
	// Definition C.3.
	c := spec.Sequence{w2, w1}
	if spec.Equivalent(reg, a, c) {
		t.Error("the two write orders must not be equivalent")
	}
	// An illegal sequence vacuously looks like anything.
	bad := spec.Sequence{{Kind: types.OpRead, Ret: 99}}
	if !spec.LooksLike(reg, bad, a) {
		t.Error("illegal sequence should vacuously look like any sequence")
	}
	if spec.LooksLike(reg, a, bad) {
		t.Error("legal sequence must not look like an illegal one")
	}
}

func TestPermutationsEnumeratesAll(t *testing.T) {
	ops := []spec.Op{
		{Kind: "a"}, {Kind: "b"}, {Kind: "c"},
	}
	seen := make(map[string]bool)
	spec.Permutations(ops, func(p []spec.Op) bool {
		key := ""
		for _, op := range p {
			key += string(op.Kind)
		}
		seen[key] = true
		return true
	})
	if len(seen) != 6 {
		t.Errorf("want 6 permutations, got %d: %v", len(seen), seen)
	}
}

func TestPermutationsEarlyStop(t *testing.T) {
	ops := []spec.Op{{Kind: "a"}, {Kind: "b"}, {Kind: "c"}}
	calls := 0
	spec.Permutations(ops, func([]spec.Op) bool {
		calls++
		return calls < 2
	})
	if calls != 2 {
		t.Errorf("want early stop after 2 calls, got %d", calls)
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		a, b spec.Value
		want bool
	}{
		{nil, nil, true},
		{nil, 0, false},
		{0, nil, false},
		{1, 1, true},
		{1, 2, false},
		{"x", "x", true},
		{types.Edge{Node: "a", Parent: "r"}, types.Edge{Node: "a", Parent: "r"}, true},
		{types.Edge{Node: "a", Parent: "r"}, types.Edge{Node: "b", Parent: "r"}, false},
	}
	for _, tt := range tests {
		if got := spec.ValueEqual(tt.a, tt.b); got != tt.want {
			t.Errorf("ValueEqual(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}
