// Package spec implements the sequential-specification framework and the
// operation algebra of Wang (2011), Chapter II.
//
// A shared object's data type is modeled as a deterministic state machine
// (DataType): applying an operation kind with an argument to a state yields
// a unique next state and return value (Definition A.1, deterministic
// object). An operation instance op = OP(arg, ret) records both the argument
// and the return value; a sequence ρ = op₁∘op₂∘… is legal iff replaying it
// from the initial state reproduces every recorded return value.
//
// On top of legality the package provides the algebraic relations of the
// paper — "looks like", equivalence, immediate/eventual (non-)commutativity,
// non-self-last/any-permuting, mutator/accessor/overwriter — both as
// witness verifiers and as bounded brute-force searchers used by the
// property-based tests.
package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is an operation argument or return value. Values used by the bundled
// data types are comparable Go values (ints, strings, bools, small structs)
// or nil for "no value"/"ack".
type Value = any

// State is an immutable object state. Implementations of DataType must
// never mutate a State in Apply; they return fresh values instead.
type State = any

// OpKind names an operation type on a data type, e.g. "read", "enqueue".
type OpKind string

// OpClass partitions operation kinds the way Chapter V does: pure mutators
// (MOP) get the ε+X fast path, pure accessors (AOP) the d+ε-X local path,
// and everything else (OOP) the totally ordered d+ε path.
type OpClass int

// Operation classes, Chapter V.
const (
	// ClassOther is OOP: operations that both mutate and observe (or that
	// the catalog chooses to run on the slow path), e.g. read-modify-write,
	// dequeue, pop.
	ClassOther OpClass = iota + 1
	// ClassPureMutator is MOP: mutators that return nothing about the
	// object, e.g. write, enqueue, push, insert.
	ClassPureMutator
	// ClassPureAccessor is AOP: accessors that do not modify the object,
	// e.g. read, peek, search, depth.
	ClassPureAccessor
)

// String implements fmt.Stringer.
func (c OpClass) String() string {
	switch c {
	case ClassOther:
		return "OOP"
	case ClassPureMutator:
		return "MOP"
	case ClassPureAccessor:
		return "AOP"
	default:
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
}

// DataType is a deterministic sequential specification (Definition A.1).
type DataType interface {
	// Name returns the human-readable type name, e.g. "queue".
	Name() string
	// InitialState returns the initial object state.
	InitialState() State
	// Apply applies one operation to a state, returning the next state and
	// the operation's return value. Apply must be pure: it must not mutate
	// s, and equal (state, kind, arg) triples must yield equal results.
	Apply(s State, kind OpKind, arg Value) (State, Value)
	// Kinds lists the operation kinds of the type, in a stable order.
	Kinds() []OpKind
	// Class reports the Chapter V class of an operation kind.
	Class(kind OpKind) OpClass
	// EncodeState returns a canonical string encoding of a state; two
	// states are behaviourally equivalent iff their encodings are equal.
	EncodeState(s State) string
}

// Op is an operation instance op = OP(arg, ret) (Chapter II.A).
type Op struct {
	Kind OpKind
	Arg  Value
	Ret  Value
}

// String implements fmt.Stringer.
func (o Op) String() string {
	return fmt.Sprintf("%s(%v)→%v", o.Kind, o.Arg, o.Ret)
}

// Invocation is an operation invocation (kind, argument) whose return value
// is not yet known. Build derives the returns by replay.
type Invocation struct {
	Kind OpKind
	Arg  Value
}

// Sequence is an operation sequence ρ.
type Sequence []Op

// String implements fmt.Stringer.
func (s Sequence) String() string {
	parts := make([]string, len(s))
	for i, op := range s {
		parts[i] = op.String()
	}
	return strings.Join(parts, "∘")
}

// Append returns a new sequence s∘ops without mutating s.
func (s Sequence) Append(ops ...Op) Sequence {
	out := make(Sequence, 0, len(s)+len(ops))
	out = append(out, s...)
	out = append(out, ops...)
	return out
}

// ValueEqual reports whether two operation values are equal. It treats nil
// as equal only to nil and otherwise uses canonical formatting, which is
// sound for the comparable value kinds used by the bundled data types.
// Same-typed comparable values short-circuit through ==, keeping the
// checker's hot path off the formatter; mixed-type pairs keep the
// formatting semantics (int 1 equals int64 1).
func ValueEqual(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case int:
		if y, ok := b.(int); ok {
			return x == y
		}
	case string:
		if y, ok := b.(string); ok {
			return x == y
		}
	case bool:
		if y, ok := b.(bool); ok {
			return x == y
		}
	case int64:
		if y, ok := b.(int64); ok {
			return x == y
		}
	}
	return CanonicalValue(a) == CanonicalValue(b)
}

// CanonicalValue renders one value in the canonical form ValueEqual
// compares with — the key form for transition caches (internal/check).
func CanonicalValue(v Value) string {
	if v == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%#v", v)
}

// AppendCanonicalValue appends CanonicalValue(v) to dst, byte for byte.
// The scalar kinds the bundled data types traffic in (nil, int, int64,
// string, bool) render through strconv without allocating — the checker
// builds its per-operation transition-cache keys into a reused arena
// slab through this path. Anything else falls back to CanonicalValue.
func AppendCanonicalValue(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, "<nil>"...)
	case int:
		return strconv.AppendInt(dst, int64(x), 10)
	case int64:
		return strconv.AppendInt(dst, x, 10)
	case string:
		return strconv.AppendQuote(dst, x)
	case bool:
		return strconv.AppendBool(dst, x)
	}
	return append(dst, CanonicalValue(v)...)
}

// boxedInts caches the boxed form of small non-negative integers. The Go
// runtime only avoids a heap allocation when boxing bytes (0–255); counter-
// and account-style states march well past that, and re-boxing the running
// value on every Apply was the single largest allocation source in grid
// runs. Returning a cached interface header instead is free.
var boxedInts = func() [4096]Value {
	var vs [4096]Value
	for i := range vs {
		vs[i] = i
	}
	return vs
}()

// BoxInt returns v as a Value, reusing a cached box for small non-negative
// values so hot Apply implementations do not heap-allocate their result
// state. Values outside the cached range box normally.
//
//tb:hotpath
func BoxInt(v int) Value {
	if uint(v) < uint(len(boxedInts)) {
		return boxedInts[v]
	}
	//tbvet:ignore hotpath -- the slow path of the box cache: values past the cached range must box, that is the function's contract
	return v
}

// Replay applies seq from state s, checking recorded return values.
// It returns the resulting state and false as soon as a recorded return
// value disagrees with the specification.
func Replay(dt DataType, s State, seq Sequence) (State, bool) {
	cur := s
	for _, op := range seq {
		next, ret := dt.Apply(cur, op.Kind, op.Arg)
		if !ValueEqual(ret, op.Ret) {
			return nil, false
		}
		cur = next
	}
	return cur, true
}

// Legal reports whether seq is a legal operation sequence of dt from the
// initial state (Chapter II.A).
func Legal(dt DataType, seq Sequence) bool {
	_, ok := Replay(dt, dt.InitialState(), seq)
	return ok
}

// ResultState returns the state after replaying a legal sequence from the
// initial state. The boolean is false if the sequence is illegal.
func ResultState(dt DataType, seq Sequence) (State, bool) {
	return Replay(dt, dt.InitialState(), seq)
}

// Build turns invocations into a legal sequence by deriving each return
// value from the specification, starting at the initial state. It also
// returns the final state.
func Build(dt DataType, invs ...Invocation) (Sequence, State) {
	seq := make(Sequence, 0, len(invs))
	cur := dt.InitialState()
	for _, inv := range invs {
		next, ret := dt.Apply(cur, inv.Kind, inv.Arg)
		seq = append(seq, Op{Kind: inv.Kind, Arg: inv.Arg, Ret: ret})
		cur = next
	}
	return seq, cur
}

// LooksLike reports whether ρ1 looks like ρ2 (Definition C.1): every legal
// continuation of ρ1 is a legal continuation of ρ2.
//
// For deterministic state-machine specifications with canonical state
// encodings this is decidable exactly: if ρ1 is illegal it vacuously looks
// like anything; otherwise ρ2 must be legal and lead to a state with the
// same canonical encoding, because any continuation distinguishing two
// distinct encodings exists by construction of EncodeState.
func LooksLike(dt DataType, rho1, rho2 Sequence) bool {
	s1, ok1 := ResultState(dt, rho1)
	if !ok1 {
		return true
	}
	s2, ok2 := ResultState(dt, rho2)
	if !ok2 {
		return false
	}
	return dt.EncodeState(s1) == dt.EncodeState(s2)
}

// Equivalent reports whether ρ1 and ρ2 are equivalent (Definition C.2):
// each looks like the other.
func Equivalent(dt DataType, rho1, rho2 Sequence) bool {
	return LooksLike(dt, rho1, rho2) && LooksLike(dt, rho2, rho1)
}

// EncodeAfter returns the canonical encoding of the state reached by seq,
// or "⊥" if seq is illegal.
func EncodeAfter(dt DataType, seq Sequence) string {
	s, ok := ResultState(dt, seq)
	if !ok {
		return "⊥"
	}
	return dt.EncodeState(s)
}

// Permutations calls fn with every permutation of ops, stopping early if fn
// returns false. The slice passed to fn is reused between calls.
func Permutations(ops []Op, fn func([]Op) bool) {
	n := len(ops)
	buf := make([]Op, n)
	copy(buf, ops)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			return fn(buf)
		}
		for i := k; i < n; i++ {
			buf[k], buf[i] = buf[i], buf[k]
			if !rec(k + 1) {
				return false
			}
			buf[k], buf[i] = buf[i], buf[k]
		}
		return true
	}
	rec(0)
}

// CanonicalValues renders a slice of values deterministically, sorting the
// rendered forms; useful for EncodeState implementations over sets/maps.
func CanonicalValues(vs []Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%v", v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
