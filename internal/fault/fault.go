// Package fault declares the fault model the engine injects on top of the
// paper's partially synchronous system: crash/recover schedules, replica
// retirement (churn), message loss and duplication, transient partitions,
// and continuously drifting clocks (rate skew, beyond the fixed offsets the
// base model allows). A Plan is a pure, declarative description of one
// run's faults; an Injector is the per-run runtime that answers the
// simulator's delivery questions deterministically and accounts for what
// actually materialized; a Breach names the model assumption a fault (or a
// resulting symptom) broke, and by how much — the vocabulary of the
// engine's dichotomy verdicts (docs/FAULTS.md).
package fault

import (
	"fmt"

	"timebounds/internal/model"
)

// Crash schedules one crash of a process, with an optional recovery.
type Crash struct {
	// Proc is the crashing process.
	Proc model.ProcessID
	// At is the real time of the crash.
	At model.Time
	// RecoverAt is the real time of the recovery; zero means the process
	// never recovers.
	RecoverAt model.Time
}

// Retire schedules the permanent departure of a process (churn): after At
// the process is down forever and is no longer an authoritative copy.
type Retire struct {
	Proc model.ProcessID
	At   model.Time
}

// Loss drops messages matching a (from, to) pattern inside a send-time
// window.
type Loss struct {
	// From and To select the link; -1 matches any process.
	From, To int
	// Start and End bound the window; a message is dropped when its send
	// time lies in [Start, End).
	Start, End model.Time
	// Every drops every k-th matching message (1 or 0 = every matching
	// message, 2 = every other, …), counted per rule in send order.
	Every int
}

// Duplicate delivers matching messages more than once.
type Duplicate struct {
	// From and To select the link; -1 matches any process.
	From, To int
	// Start and End bound the send-time window, as in Loss.
	Start, End model.Time
	// Copies is the total delivery count per matching message (≥ 2; values
	// below 2 are treated as 2).
	Copies int
	// Spacing separates consecutive copies' delivery times (≤ 0 means one
	// time unit). Later copies arrive after the admissible window — real
	// duplicates are late by nature.
	Spacing model.Time
}

// Partition splits the processes into two groups for a window; messages
// crossing the split are dropped.
type Partition struct {
	// Start and End bound the send-time window.
	Start, End model.Time
	// Group holds one side of the split; every other process is on the
	// other side.
	Group []model.ProcessID
}

// Drift gives one process a continuously drifting clock: clock time runs at
// (1 + PPM/1e6) × real time on top of the fixed offset. This is rate skew —
// the skew between two drifting clocks grows linearly with real time and
// can leave the ε-window the model assumes.
type Drift struct {
	Proc model.ProcessID
	// PPM is the rate error in parts per million, in [-200000, 200000]
	// (±20%); negative means a slow clock.
	PPM int64
}

// maxDriftPPM bounds |Drift.PPM| so the integer clock maps stay monotone
// and overflow-free for any horizon the simulator reaches.
const maxDriftPPM = 200_000

// Plan is a declarative fault schedule for one run. The zero value (and
// nil) means no faults; Active reports whether any family is present.
type Plan struct {
	// Name labels the plan in reports and scenario names.
	Name string

	Crashes    []Crash
	Retires    []Retire
	Losses     []Loss
	Dups       []Duplicate
	Partitions []Partition
	Drifts     []Drift
}

// Active reports whether the plan schedules any fault at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return len(p.Crashes) > 0 || len(p.Retires) > 0 || len(p.Losses) > 0 ||
		len(p.Dups) > 0 || len(p.Partitions) > 0 || len(p.Drifts) > 0
}

// Validate checks the plan against a cluster of n processes.
func (p *Plan) Validate(n int) error {
	if p == nil {
		return nil
	}
	inRange := func(pid model.ProcessID) bool { return int(pid) >= 0 && int(pid) < n }
	for _, c := range p.Crashes {
		if !inRange(c.Proc) {
			return fmt.Errorf("fault: crash of unknown process %s (n=%d)", c.Proc, n)
		}
		if c.RecoverAt != 0 && c.RecoverAt <= c.At {
			return fmt.Errorf("fault: %s recovers at %s, not after its crash at %s", c.Proc, c.RecoverAt, c.At)
		}
	}
	for _, r := range p.Retires {
		if !inRange(r.Proc) {
			return fmt.Errorf("fault: retirement of unknown process %s (n=%d)", r.Proc, n)
		}
	}
	for i, l := range p.Losses {
		if l.End <= l.Start {
			return fmt.Errorf("fault: loss rule %d window [%s, %s) is empty", i, l.Start, l.End)
		}
	}
	for i, d := range p.Dups {
		if d.End <= d.Start {
			return fmt.Errorf("fault: duplication rule %d window [%s, %s) is empty", i, d.Start, d.End)
		}
	}
	for i, pt := range p.Partitions {
		if pt.End <= pt.Start {
			return fmt.Errorf("fault: partition %d window [%s, %s) is empty", i, pt.Start, pt.End)
		}
		for _, pid := range pt.Group {
			if !inRange(pid) {
				return fmt.Errorf("fault: partition %d lists unknown process %s (n=%d)", i, pid, n)
			}
		}
	}
	for _, d := range p.Drifts {
		if !inRange(d.Proc) {
			return fmt.Errorf("fault: drift of unknown process %s (n=%d)", d.Proc, n)
		}
		if d.PPM < -maxDriftPPM || d.PPM > maxDriftPPM {
			return fmt.Errorf("fault: drift rate %d ppm outside ±%d", d.PPM, maxDriftPPM)
		}
	}
	return nil
}

// Rates flattens the drift rules into a per-process ppm slice, or nil when
// no process drifts.
func (p *Plan) Rates(n int) []int64 {
	if p == nil || len(p.Drifts) == 0 {
		return nil
	}
	rates := make([]int64, n)
	for _, d := range p.Drifts {
		rates[d.Proc] = d.PPM
	}
	return rates
}

// Window is one fault-activity span in real time.
type Window struct {
	Start, End model.Time
}

// Windows returns the plan's fault-activity spans: crash downtimes (open
// ones closed at horizon), retirement tails, and the loss/duplication/
// partition windows. Drift is excluded — it is active over the whole run
// and is accounted separately (SkewExcess, Allowance's rate term).
func (p *Plan) Windows(horizon model.Time) []Window {
	if p == nil {
		return nil
	}
	out := make([]Window, 0, len(p.Crashes)+len(p.Retires)+len(p.Losses)+len(p.Dups)+len(p.Partitions))
	for _, c := range p.Crashes {
		end := c.RecoverAt
		if end == 0 {
			end = horizon
		}
		out = append(out, Window{Start: c.At, End: end})
	}
	for _, r := range p.Retires {
		out = append(out, Window{Start: r.At, End: horizon})
	}
	for _, l := range p.Losses {
		out = append(out, Window{Start: l.Start, End: l.End})
	}
	for _, d := range p.Dups {
		out = append(out, Window{Start: d.Start, End: d.End})
	}
	for _, pt := range p.Partitions {
		out = append(out, Window{Start: pt.Start, End: pt.End})
	}
	return out
}

// Allowance returns the crash-adjusted latency slack for one operation
// spanning [invoke, respond]: the summed overlap of the operation's window
// with every fault-activity window (a generous union bound — overlapping
// windows count twice), plus the worst-case clock-rate stretch for drifting
// runs (a wait of w on a clock slow by r ppm takes w·r/(1e6−r) longer in
// real time, plus integer-floor slack).
func (p *Plan) Allowance(invoke, respond, horizon model.Time) model.Time {
	if p == nil {
		return 0
	}
	var allow model.Time
	for _, w := range p.Windows(horizon) {
		lo, hi := max(invoke, w.Start), min(respond, w.End)
		if hi > lo {
			allow += hi - lo
		}
	}
	if r := p.maxAbsRate(); r > 0 {
		dur := int64(respond - invoke)
		allow += model.Time(dur*r/(1_000_000-r)) + 2
	}
	return allow
}

// maxAbsRate returns the largest |ppm| among the drift rules.
func (p *Plan) maxAbsRate() int64 {
	var r int64
	for _, d := range p.Drifts {
		ppm := d.PPM
		if ppm < 0 {
			ppm = -ppm
		}
		if ppm > r {
			r = ppm
		}
	}
	return r
}

// SkewExcess returns how far the worst pairwise clock skew exceeds ε by the
// horizon (0 when the run stays within the model's bounded-skew assumption).
// Skew between two clocks is |offᵢ−offⱼ + (rᵢ−rⱼ)·t/1e6|, linear in t, so
// the maximum over [0, horizon] is attained at an endpoint; t=0 skews are
// admissible by construction, so only the horizon needs checking.
func (p *Plan) SkewExcess(offsets []model.Time, eps, horizon model.Time) model.Time {
	if p == nil || len(p.Drifts) == 0 {
		return 0
	}
	rates := p.Rates(len(offsets))
	var worst model.Time
	for i := range offsets {
		for j := i + 1; j < len(offsets); j++ {
			skew := offsets[i] - offsets[j] + model.Time((rates[i]-rates[j])*int64(horizon)/1_000_000)
			if skew < 0 {
				skew = -skew
			}
			if skew > worst {
				worst = skew
			}
		}
	}
	if worst <= eps {
		return 0
	}
	return worst - eps
}

// ClockAt maps real time to the clock time of a process with the given
// fixed offset and drift rate: real + offset + ppm·real/1e6 (truncating
// division). For |ppm| ≤ maxDriftPPM the map is nondecreasing, and strictly
// increasing for ppm ≥ 0.
func ClockAt(real, offset model.Time, ppm int64) model.Time {
	return real + offset + model.Time(ppm*int64(real)/1_000_000)
}

// ClockInverse returns the smallest nonnegative real time t with
// ClockAt(t, offset, ppm) ≥ target: the real instant a drifting clock first
// reads target. The linear guess is within a few units of the answer, so
// the correction loops run O(1) steps.
func ClockInverse(target, offset model.Time, ppm int64) model.Time {
	t := model.Time(int64(target-offset) * 1_000_000 / (1_000_000 + ppm))
	if t < 0 {
		t = 0
	}
	for ClockAt(t, offset, ppm) < target {
		t++
	}
	for t > 0 && ClockAt(t-1, offset, ppm) >= target {
		t--
	}
	return t
}

// Model assumptions a fault family can break, as named by Breach.Assumption.
// The first group are injected-fault assumptions; the second are observed
// symptoms an assumption break can cause.
const (
	// AssumptionNoCrash is the base model's crash-free processes.
	AssumptionNoCrash = "crash-free-processes"
	// AssumptionNoChurn is fixed membership (no retirement).
	AssumptionNoChurn = "fixed-membership"
	// AssumptionReliableDelivery is loss-free message delivery.
	AssumptionReliableDelivery = "reliable-delivery"
	// AssumptionExactlyOnce is at-most-once message delivery.
	AssumptionExactlyOnce = "at-most-once-delivery"
	// AssumptionConnectivity is full connectivity (no partitions).
	AssumptionConnectivity = "full-connectivity"
	// AssumptionBoundedSkew is pairwise clock skew within ε.
	AssumptionBoundedSkew = "bounded-skew"

	// SymptomLinearizability: the faulted history failed the checker.
	SymptomLinearizability = "linearizability"
	// SymptomConvergence: serving copies disagreed after the run.
	SymptomConvergence = "replica-convergence"
	// SymptomClassBound: an operation exceeded its crash-adjusted class bound.
	SymptomClassBound = "class-bound"
)

// Breach pinpoints one broken model assumption: which assumption, what
// happened, and by how much.
type Breach struct {
	// Assumption names the broken assumption (the Assumption*/Symptom*
	// constants).
	Assumption string
	// Detail is the human-readable pinpoint ("replica 2 crashed
	// mid-broadcast; ε-window missed by 3µs").
	Detail string
	// Amount is the temporal magnitude, when one applies (downtime, skew
	// excess, bound excess); 0 otherwise.
	Amount model.Time
	// Count is the event count, when one applies (messages lost, …).
	Count int
}

// String implements fmt.Stringer.
func (b Breach) String() string {
	s := b.Assumption + ": " + b.Detail
	return s
}
