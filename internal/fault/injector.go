package fault

import (
	"fmt"

	"timebounds/internal/model"
)

// Stats accounts for what a plan's faults actually did in one run. All
// quantities are deterministic functions of the run, so Results carrying
// them stay bit-identical across worker counts.
type Stats struct {
	// Crashes, Recoveries, and Retirements count lifecycle events that
	// fired.
	Crashes, Recoveries, Retirements int
	// Lost counts messages dropped by loss rules; PartitionDrops counts
	// messages dropped for crossing an active partition.
	Lost, PartitionDrops int
	// Duplicates counts extra deliveries injected by duplication rules.
	Duplicates int
	// DroppedToDown counts messages that arrived at a down process.
	DroppedToDown int
	// TimersDropped counts timers invalidated by a crash or retirement.
	TimersDropped int
	// PendingAtCrash counts in-flight operations whose process died between
	// invoke and respond (their records stay pending forever).
	PendingAtCrash int
	// StrandedInvokes counts invocations the application layer could never
	// issue because the process was down (or died with them still queued
	// behind an in-flight operation). They never become history records.
	StrandedInvokes int
	// Downtime is the accumulated down span per process (open spans closed
	// at the observation instant).
	Downtime []model.Time
}

// Total reports whether any fault materialized at all.
func (s Stats) Total() int {
	return s.Crashes + s.Retirements + s.Lost + s.PartitionDrops + s.Duplicates +
		s.DroppedToDown + s.TimersDropped + s.PendingAtCrash + s.StrandedInvokes
}

// Injector is the per-run fault runtime: it owns the mutable counters and
// availability state one simulator consults, so a fresh Injector must be
// built per run (never shared across parallel runs). All decisions are
// deterministic functions of (plan, call sequence).
type Injector struct {
	plan *Plan
	n    int

	down      []bool
	retired   []bool
	downSince []model.Time
	downAccum []model.Time

	lossSeen []int    // per-loss-rule match counter (drives Every)
	inGroup  [][]bool // per-partition membership masks

	stats Stats
}

// NewInjector validates the plan against a cluster of n processes and
// builds its per-run runtime. A nil or inactive plan yields a nil injector
// (the simulator's fault-free fast path).
func NewInjector(plan *Plan, n int) (*Injector, error) {
	if !plan.Active() {
		return nil, nil
	}
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	in := &Injector{
		plan:      plan,
		n:         n,
		down:      make([]bool, n),
		retired:   make([]bool, n),
		downSince: make([]model.Time, n),
		downAccum: make([]model.Time, n),
		lossSeen:  make([]int, len(plan.Losses)),
	}
	if len(plan.Partitions) > 0 {
		in.inGroup = make([][]bool, len(plan.Partitions))
		for i, pt := range plan.Partitions {
			mask := make([]bool, n)
			for _, pid := range pt.Group {
				mask[pid] = true
			}
			in.inGroup[i] = mask
		}
	}
	return in, nil
}

// Plan returns the schedule the injector executes.
func (in *Injector) Plan() *Plan { return in.plan }

// N returns the cluster size the injector was validated against.
func (in *Injector) N() int { return in.n }

// Rates returns the per-process clock drift rates, nil when no process
// drifts.
func (in *Injector) Rates() []int64 { return in.plan.Rates(in.n) }

// Unavailable reports whether process p is currently down or retired.
func (in *Injector) Unavailable(p model.ProcessID) bool {
	return in.down[p] || in.retired[p]
}

// MarkDown records the crash of p at the given real time.
func (in *Injector) MarkDown(p model.ProcessID, at model.Time) {
	if in.down[p] || in.retired[p] {
		return
	}
	in.down[p] = true
	in.downSince[p] = at
	in.stats.Crashes++
}

// MarkUp records the recovery of p at the given real time.
func (in *Injector) MarkUp(p model.ProcessID, at model.Time) {
	if !in.down[p] || in.retired[p] {
		return
	}
	in.down[p] = false
	in.downAccum[p] += at - in.downSince[p]
	in.stats.Recoveries++
}

// MarkRetired records the permanent departure of p at the given real time.
func (in *Injector) MarkRetired(p model.ProcessID, at model.Time) {
	if in.retired[p] {
		return
	}
	if in.down[p] {
		in.down[p] = false
		in.downAccum[p] += at - in.downSince[p]
	}
	in.retired[p] = true
	in.downSince[p] = at
	in.stats.Retirements++
}

// Retired reports whether p has retired.
func (in *Injector) Retired(p model.ProcessID) bool { return in.retired[p] }

// Deliveries decides the fate of one message sent from→to at the given real
// time: 0 copies (dropped by a partition or loss rule), 1 (normal), or k ≥ 2
// with the spacing between consecutive copies (a duplication rule matched).
// It must be called exactly once per sent message, in send order — the
// per-rule Every counters depend on it.
func (in *Injector) Deliveries(from, to model.ProcessID, sentAt model.Time) (int, model.Time) {
	for i := range in.inGroup {
		pt := &in.plan.Partitions[i]
		if sentAt >= pt.Start && sentAt < pt.End && in.inGroup[i][from] != in.inGroup[i][to] {
			in.stats.PartitionDrops++
			return 0, 0
		}
	}
	for i := range in.plan.Losses {
		l := &in.plan.Losses[i]
		if !linkMatch(l.From, l.To, from, to) || sentAt < l.Start || sentAt >= l.End {
			continue
		}
		k := in.lossSeen[i]
		in.lossSeen[i]++
		every := l.Every
		if every <= 0 {
			every = 1
		}
		if k%every == 0 {
			in.stats.Lost++
			return 0, 0
		}
	}
	for i := range in.plan.Dups {
		d := &in.plan.Dups[i]
		if !linkMatch(d.From, d.To, from, to) || sentAt < d.Start || sentAt >= d.End {
			continue
		}
		copies := d.Copies
		if copies < 2 {
			copies = 2
		}
		spacing := d.Spacing
		if spacing <= 0 {
			spacing = 1
		}
		in.stats.Duplicates += copies - 1
		return copies, spacing
	}
	return 1, 0
}

// linkMatch reports whether a (from, to) rule pattern (-1 = any) matches a
// concrete link.
func linkMatch(ruleFrom, ruleTo int, from, to model.ProcessID) bool {
	return (ruleFrom < 0 || ruleFrom == int(from)) && (ruleTo < 0 || ruleTo == int(to))
}

// NoteDroppedToDown counts a message that arrived at a down process.
func (in *Injector) NoteDroppedToDown() { in.stats.DroppedToDown++ }

// NoteTimerDropped counts a timer invalidated by a crash or retirement.
func (in *Injector) NoteTimerDropped() { in.stats.TimersDropped++ }

// NotePendingAtCrash counts an in-flight operation orphaned by a crash.
func (in *Injector) NotePendingAtCrash() { in.stats.PendingAtCrash++ }

// NoteStrandedInvoke counts an invocation the down process never received.
func (in *Injector) NoteStrandedInvoke() { in.stats.StrandedInvokes++ }

// StatsAt snapshots the accumulated statistics, closing open down spans at
// the observation instant (typically the simulator's final time).
func (in *Injector) StatsAt(now model.Time) Stats {
	st := in.stats
	st.Downtime = make([]model.Time, in.n)
	copy(st.Downtime, in.downAccum)
	for p := 0; p < in.n; p++ {
		if in.down[p] || in.retired[p] {
			if now > in.downSince[p] {
				st.Downtime[p] += now - in.downSince[p]
			}
		}
	}
	return st
}

// InjectedBreaches renders the materialized faults as breaches of the model
// assumptions, one per fault family that actually fired. Symptom breaches
// (non-linearizable history, divergence, bound excess) are the engine's to
// add — it owns the checker and the bounds.
func (in *Injector) InjectedBreaches(now model.Time) []Breach {
	st := in.StatsAt(now)
	var out []Breach
	if st.Crashes > 0 {
		var down model.Time
		detail := ""
		for p := 0; p < in.n; p++ {
			if st.Downtime[p] > 0 && !in.retired[p] {
				if detail != "" {
					detail += "; "
				}
				detail += fmt.Sprintf("replica %d down for %s", p, st.Downtime[p])
				down += st.Downtime[p]
			}
		}
		if st.PendingAtCrash > 0 {
			detail += fmt.Sprintf("; %d in-flight operation(s) left pending", st.PendingAtCrash)
		}
		if st.TimersDropped > 0 {
			detail += fmt.Sprintf("; %d timer(s) lost", st.TimersDropped)
		}
		out = append(out, Breach{Assumption: AssumptionNoCrash, Detail: detail, Amount: down, Count: st.Crashes})
	}
	if st.Retirements > 0 {
		detail := ""
		for p := 0; p < in.n; p++ {
			if in.retired[p] {
				if detail != "" {
					detail += "; "
				}
				detail += fmt.Sprintf("replica %d retired at %s", p, in.downSince[p])
			}
		}
		out = append(out, Breach{Assumption: AssumptionNoChurn, Detail: detail, Count: st.Retirements})
	}
	if st.Lost > 0 || st.DroppedToDown > 0 {
		out = append(out, Breach{
			Assumption: AssumptionReliableDelivery,
			Detail:     fmt.Sprintf("%d message(s) lost in flight, %d dropped at down replicas", st.Lost, st.DroppedToDown),
			Count:      st.Lost + st.DroppedToDown,
		})
	}
	if st.Duplicates > 0 {
		out = append(out, Breach{
			Assumption: AssumptionExactlyOnce,
			Detail:     fmt.Sprintf("%d duplicate delivery(ies) injected", st.Duplicates),
			Count:      st.Duplicates,
		})
	}
	if st.PartitionDrops > 0 {
		out = append(out, Breach{
			Assumption: AssumptionConnectivity,
			Detail:     fmt.Sprintf("%d message(s) dropped crossing a partition", st.PartitionDrops),
			Count:      st.PartitionDrops,
		})
	}
	return out
}
