package fault

import (
	"testing"

	"timebounds/internal/model"
)

func TestClockInverseIsLeftInverse(t *testing.T) {
	offsets := []model.Time{-500, 0, 3}
	ppms := []int64{-maxDriftPPM, -20_000, -400, 0, 400, 20_000, maxDriftPPM}
	for _, off := range offsets {
		for _, ppm := range ppms {
			for real := model.Time(0); real < 4000; real += 7 {
				c := ClockAt(real, off, ppm)
				inv := ClockInverse(c, off, ppm)
				if ClockAt(inv, off, ppm) < c {
					t.Fatalf("ClockAt(ClockInverse(%d)) = %d < %d (off=%d ppm=%d)",
						c, ClockAt(inv, off, ppm), c, off, ppm)
				}
				if inv > 0 && ClockAt(inv-1, off, ppm) >= c {
					t.Fatalf("ClockInverse(%d) = %d not minimal (off=%d ppm=%d)", c, inv, off, ppm)
				}
				if inv > real {
					t.Fatalf("ClockInverse(ClockAt(%d)) = %d > %d (off=%d ppm=%d)", real, inv, real, off, ppm)
				}
			}
		}
	}
}

func TestClockAtMonotone(t *testing.T) {
	for _, ppm := range []int64{-maxDriftPPM, -1, 0, 1, maxDriftPPM} {
		prev := ClockAt(0, 0, ppm)
		for real := model.Time(1); real < 5000; real++ {
			c := ClockAt(real, 0, ppm)
			if c < prev {
				t.Fatalf("ClockAt not monotone at real=%d ppm=%d: %d < %d", real, ppm, c, prev)
			}
			prev = c
		}
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
	}{
		{"crash out of range", &Plan{Crashes: []Crash{{Proc: 5, At: 10}}}},
		{"recover before crash", &Plan{Crashes: []Crash{{Proc: 0, At: 10, RecoverAt: 5}}}},
		{"retire out of range", &Plan{Retires: []Retire{{Proc: -1, At: 10}}}},
		{"empty loss window", &Plan{Losses: []Loss{{From: -1, To: -1, Start: 10, End: 10}}}},
		{"empty dup window", &Plan{Dups: []Duplicate{{From: -1, To: -1, Start: 10, End: 5}}}},
		{"empty partition window", &Plan{Partitions: []Partition{{Start: 4, End: 4}}}},
		{"partition member out of range", &Plan{Partitions: []Partition{{Start: 0, End: 9, Group: []model.ProcessID{7}}}}},
		{"drift out of range proc", &Plan{Drifts: []Drift{{Proc: 9, PPM: 10}}}},
		{"drift rate too large", &Plan{Drifts: []Drift{{Proc: 0, PPM: maxDriftPPM + 1}}}},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(3); err == nil {
			t.Errorf("%s: Validate accepted invalid plan", tc.name)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(3); err != nil {
		t.Errorf("nil plan should validate: %v", err)
	}
	if nilPlan.Active() {
		t.Error("nil plan should be inactive")
	}
}

func TestInjectorInactivePlanIsNil(t *testing.T) {
	in, err := NewInjector(nil, 3)
	if err != nil || in != nil {
		t.Fatalf("NewInjector(nil) = (%v, %v), want (nil, nil)", in, err)
	}
	in, err = NewInjector(&Plan{Name: "noop"}, 3)
	if err != nil || in != nil {
		t.Fatalf("NewInjector(empty) = (%v, %v), want (nil, nil)", in, err)
	}
}

func TestDeliveriesRules(t *testing.T) {
	plan := &Plan{
		Name:       "mix",
		Losses:     []Loss{{From: 0, To: -1, Start: 10, End: 20, Every: 2}},
		Dups:       []Duplicate{{From: 1, To: 2, Start: 0, End: 100, Copies: 3, Spacing: 4}},
		Partitions: []Partition{{Start: 50, End: 60, Group: []model.ProcessID{0}}},
	}
	in, err := NewInjector(plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Loss Every=2 drops the 1st, 3rd, ... matching message.
	if c, _ := in.Deliveries(0, 1, 15); c != 0 {
		t.Errorf("first matching message should drop, got %d copies", c)
	}
	if c, _ := in.Deliveries(0, 2, 16); c != 1 {
		t.Errorf("second matching message should pass, got %d copies", c)
	}
	if c, _ := in.Deliveries(0, 1, 17); c != 0 {
		t.Errorf("third matching message should drop, got %d copies", c)
	}
	// Outside the window: untouched.
	if c, _ := in.Deliveries(0, 1, 25); c != 1 {
		t.Errorf("message outside loss window should pass, got %d copies", c)
	}
	// Duplication.
	if c, sp := in.Deliveries(1, 2, 30); c != 3 || sp != 4 {
		t.Errorf("dup rule should give (3, 4), got (%d, %d)", c, sp)
	}
	if c, _ := in.Deliveries(1, 0, 30); c != 1 {
		t.Errorf("dup rule is link-specific, got %d copies", c)
	}
	// Partition drops crossing messages both ways, passes same-side.
	if c, _ := in.Deliveries(0, 2, 55); c != 0 {
		t.Errorf("message crossing partition should drop, got %d copies", c)
	}
	if c, _ := in.Deliveries(2, 0, 55); c != 0 {
		t.Errorf("reverse crossing message should drop, got %d copies", c)
	}
	if c, _ := in.Deliveries(2, 1, 55); c != 1 {
		t.Errorf("same-side message should pass, got %d copies", c)
	}
	st := in.StatsAt(100)
	if st.Lost != 2 || st.Duplicates != 2 || st.PartitionDrops != 2 {
		t.Errorf("stats = lost %d dup %d part %d, want 2/2/2", st.Lost, st.Duplicates, st.PartitionDrops)
	}
	if got := len(in.InjectedBreaches(100)); got != 3 {
		t.Errorf("want 3 injected breaches, got %d", got)
	}
}

func TestDowntimeAccounting(t *testing.T) {
	plan := &Plan{Name: "crash", Crashes: []Crash{{Proc: 1, At: 10, RecoverAt: 30}}}
	in, err := NewInjector(plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	in.MarkDown(1, 10)
	if !in.Unavailable(1) || in.Unavailable(0) {
		t.Fatal("availability wrong after crash")
	}
	in.MarkUp(1, 30)
	if in.Unavailable(1) {
		t.Fatal("still unavailable after recovery")
	}
	in.MarkDown(1, 40)
	st := in.StatsAt(50)
	if st.Crashes != 2 || st.Recoveries != 1 {
		t.Fatalf("crashes/recoveries = %d/%d, want 2/1", st.Crashes, st.Recoveries)
	}
	if st.Downtime[1] != 30 { // 20 closed + 10 open
		t.Fatalf("downtime = %s, want 30", st.Downtime[1])
	}
	in.MarkRetired(1, 50)
	if !in.Retired(1) || !in.Unavailable(1) {
		t.Fatal("retirement not recorded")
	}
}

func TestAllowanceCoversWindowsAndDrift(t *testing.T) {
	plan := &Plan{
		Name:    "crash+drift",
		Crashes: []Crash{{Proc: 0, At: 100, RecoverAt: 200}},
		Drifts:  []Drift{{Proc: 0, PPM: -400}},
	}
	// Fully inside the outage window: full overlap plus the rate stretch.
	got := plan.Allowance(120, 180, 1000)
	stretch := model.Time(60*400/(1_000_000-400)) + 2
	if got != 60+stretch {
		t.Fatalf("allowance = %s, want %s", got, 60+stretch)
	}
	// Disjoint from the window: only the rate stretch remains.
	if got := plan.Allowance(300, 360, 1000); got != stretch {
		t.Fatalf("allowance = %s, want %s", got, stretch)
	}
	var nilPlan *Plan
	if nilPlan.Allowance(0, 100, 1000) != 0 {
		t.Fatal("nil plan allowance must be 0")
	}
}

func TestSkewExcess(t *testing.T) {
	offsets := []model.Time{-50, 0, 50} // ε = 100 spread
	common := &Plan{Drifts: []Drift{{Proc: 0, PPM: -400}, {Proc: 1, PPM: -400}, {Proc: 2, PPM: -400}}}
	if got := common.SkewExcess(offsets, 100, 1_000_000); got != 0 {
		t.Fatalf("common-mode drift skew excess = %s, want 0", got)
	}
	diff := &Plan{Drifts: []Drift{{Proc: 0, PPM: -20_000}, {Proc: 2, PPM: 20_000}}}
	// At horizon 10_000: relative drift 40_000 ppm → 400 extra skew, plus the
	// fixed 100 spread, minus ε=100 → 400 excess.
	if got := diff.SkewExcess(offsets, 100, 10_000); got != 400 {
		t.Fatalf("differential drift skew excess = %s, want 400", got)
	}
}

func TestCanonicalPlansValidate(t *testing.T) {
	p := model.Params{N: 3, D: 1000, U: 200, Epsilon: 100}
	for _, plan := range []*Plan{
		CrashRecover(p), CrashForever(p), Churn(p), Lossy(p),
		Duplicating(p), Partitioned(p), DriftMild(p), DriftHarsh(p),
	} {
		if !plan.Active() {
			t.Errorf("plan %s inactive", plan.Name)
		}
		if err := plan.Validate(p.N); err != nil {
			t.Errorf("plan %s: %v", plan.Name, err)
		}
	}
}
