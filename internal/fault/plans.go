package fault

import "timebounds/internal/model"

// Canonical parameter-generic plans, one per fault family. Windows are
// placed over [d, ~16d] — where the default workload's invocations land —
// so the same builders serve engine grids, the tbgrid/tbadv flags, and the
// conformance battery. All builders are pure functions of p.

// CrashRecover crashes the last replica at 3d and recovers it at 9d: a
// quiet mid-run outage with a resynchronization on the way back.
func CrashRecover(p model.Params) *Plan {
	victim := model.ProcessID(p.N - 1)
	return &Plan{
		Name:    "crash-recover",
		Crashes: []Crash{{Proc: victim, At: 3 * p.D, RecoverAt: 9 * p.D}},
	}
}

// CrashForever crashes the last replica at 3d with no recovery: every
// operation it had in flight stays pending forever.
func CrashForever(p model.Params) *Plan {
	victim := model.ProcessID(p.N - 1)
	return &Plan{
		Name:    "crash",
		Crashes: []Crash{{Proc: victim, At: 3 * p.D}},
	}
}

// Churn retires the last replica at 5d: permanent membership change.
func Churn(p model.Params) *Plan {
	victim := model.ProcessID(p.N - 1)
	return &Plan{
		Name:    "churn",
		Retires: []Retire{{Proc: victim, At: 5 * p.D}},
	}
}

// Lossy drops every message process 0 sends during [2d, 8d): its broadcasts
// silently vanish, so peers never learn of its operations.
func Lossy(p model.Params) *Plan {
	return &Plan{
		Name:   "loss",
		Losses: []Loss{{From: 0, To: -1, Start: 2 * p.D, End: 8 * p.D, Every: 1}},
	}
}

// Duplicating delivers every message process 0 sends during [2d, 8d) twice,
// the copy one unit later.
func Duplicating(p model.Params) *Plan {
	return &Plan{
		Name: "dup",
		Dups: []Duplicate{{From: 0, To: -1, Start: 2 * p.D, End: 8 * p.D, Copies: 2, Spacing: 1}},
	}
}

// Partitioned isolates process 0 from the rest during [3d, 7d): messages
// crossing the split are dropped in both directions.
func Partitioned(p model.Params) *Plan {
	return &Plan{
		Name:       "partition",
		Partitions: []Partition{{Start: 3 * p.D, End: 7 * p.D, Group: []model.ProcessID{0}}},
	}
}

// DriftMild slows every clock by the same 400 ppm: pairwise skew stays
// within ε (common-mode drift cancels), waits stretch slightly in real
// time, and the crash-adjusted bounds absorb the stretch — the
// within-bound horn of the dichotomy, under a real injected fault.
func DriftMild(p model.Params) *Plan {
	drifts := make([]Drift, p.N)
	for i := range drifts {
		drifts[i] = Drift{Proc: model.ProcessID(i), PPM: -400}
	}
	return &Plan{Name: "drift-mild", Drifts: drifts}
}

// DriftHarsh drifts process 0 slow and the last process fast by 20000 ppm
// (2%) each: their relative skew grows by 4% of real time and leaves the
// ε-window within a few d — the broken-assumption horn.
func DriftHarsh(p model.Params) *Plan {
	return &Plan{
		Name: "drift",
		Drifts: []Drift{
			{Proc: 0, PPM: -20_000},
			{Proc: model.ProcessID(p.N - 1), PPM: 20_000},
		},
	}
}
