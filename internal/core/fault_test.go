package core

import (
	"testing"

	"timebounds/internal/fault"
	"timebounds/internal/model"
	"timebounds/internal/sim"
	"timebounds/internal/spec"
	"timebounds/internal/types"
)

func faultCluster(t *testing.T, p model.Params, dt spec.DataType, plan *fault.Plan) *Cluster {
	t.Helper()
	in, err := fault.NewInjector(plan, p.N)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	c, err := NewCluster(Config{Params: p}, dt, sim.Config{Faults: in})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

// TestCrashRecoverResyncsAndConverges crashes replica 2 mid-run, recovers
// it, and asserts it walks back to serving, adopts a peer's state, and the
// cluster converges on the value written while it was down.
func TestCrashRecoverResyncsAndConverges(t *testing.T) {
	p := model.Params{N: 3, D: 1000, U: 200, Epsilon: 100}
	plan := &fault.Plan{
		Name:    "crash-recover",
		Crashes: []fault.Crash{{Proc: 2, At: 2500, RecoverAt: 20_000}},
	}
	c := faultCluster(t, p, types.NewRegister(0), plan)

	c.Invoke(1000, 0, types.OpWrite, int64(7)) // completes everywhere pre-crash
	c.Invoke(5000, 1, types.OpWrite, int64(42))
	// Replica 2 is down at 5000: it misses the second write entirely and
	// must re-acquire it via sync on recovery.
	if err := c.Run(100_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := c.Replica(2).LifecycleState(); got != StateServing {
		t.Fatalf("recovered replica state = %s, want serving", got)
	}
	enc, err := c.ConvergedState()
	if err != nil {
		t.Fatalf("ConvergedState: %v", err)
	}
	if want := c.Replica(0).LocalStateEncoding(); enc != want {
		t.Fatalf("converged state %q != replica 0 state %q", enc, want)
	}
	st, ok := c.Simulator().FaultStats()
	if !ok {
		t.Fatal("FaultStats: no injector")
	}
	if st.Crashes != 1 || st.Recoveries != 1 {
		t.Fatalf("crashes/recoveries = %d/%d, want 1/1", st.Crashes, st.Recoveries)
	}
	if st.DroppedToDown == 0 {
		t.Fatal("expected the down replica to miss deliveries")
	}
}

// TestCrashLeavesInFlightOpPending crashes the invoker between invoke and
// respond: the record must stay pending forever and be counted.
func TestCrashLeavesInFlightOpPending(t *testing.T) {
	p := model.Params{N: 3, D: 1000, U: 200, Epsilon: 100}
	plan := &fault.Plan{
		Name:    "crash",
		Crashes: []fault.Crash{{Proc: 0, At: 1500}}, // mid-broadcast-wait
	}
	c := faultCluster(t, p, types.NewRMWRegister(0), plan)
	c.Invoke(1000, 0, types.OpRMW, int64(5)) // OOP: responds at ~d+ε, after the crash
	if err := c.Run(100_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := c.History()
	if h.PendingCount() != 1 {
		t.Fatalf("pending ops = %d, want 1", h.PendingCount())
	}
	st, _ := c.Simulator().FaultStats()
	if st.PendingAtCrash != 1 {
		t.Fatalf("PendingAtCrash = %d, want 1", st.PendingAtCrash)
	}
	if got := c.Replica(0).LifecycleState(); got != StateSuspected {
		t.Fatalf("crashed replica state = %s, want suspected", got)
	}
	// The survivors still converge among themselves.
	if _, err := c.ConvergedState(); err != nil {
		t.Fatalf("survivors diverged: %v", err)
	}
}

// TestRetirementIsTerminal retires a replica and asserts it never comes
// back, while the rest keep serving.
func TestRetirementIsTerminal(t *testing.T) {
	p := model.Params{N: 3, D: 1000, U: 200, Epsilon: 100}
	plan := &fault.Plan{
		Name:    "churn",
		Retires: []fault.Retire{{Proc: 2, At: 3000}},
	}
	c := faultCluster(t, p, types.NewQueue(), plan)
	c.Invoke(1000, 0, types.OpEnqueue, int64(1))
	c.Invoke(6000, 1, types.OpEnqueue, int64(2))
	if err := c.Run(100_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := c.Replica(2).LifecycleState(); got != StateRetired {
		t.Fatalf("retired replica state = %s, want retired", got)
	}
	if _, err := c.ConvergedState(); err != nil {
		t.Fatalf("remaining replicas diverged: %v", err)
	}
	st, _ := c.Simulator().FaultStats()
	if st.Retirements != 1 {
		t.Fatalf("Retirements = %d, want 1", st.Retirements)
	}
}

// TestCommonModeDriftKeepsTimerFIFOsExact runs a full workload with every
// clock drifting at the same rate: the replica's timer FIFO math must stay
// exact (pop panics on any desync) and the cluster must converge.
func TestCommonModeDriftKeepsTimerFIFOsExact(t *testing.T) {
	p := model.Params{N: 3, D: 1000, U: 200, Epsilon: 100}
	plan := &fault.Plan{
		Name: "drift-mild",
		Drifts: []fault.Drift{
			{Proc: 0, PPM: -400}, {Proc: 1, PPM: -400}, {Proc: 2, PPM: -400},
		},
	}
	c := faultCluster(t, p, types.NewRMWRegister(0), plan)
	for i := 0; i < 6; i++ {
		c.Invoke(model.Time(1000+i*1500), model.ProcessID(i%3), types.OpRMW, int64(i))
	}
	if err := c.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.History().PendingCount() != 0 {
		t.Fatalf("pending ops = %d, want 0", c.History().PendingCount())
	}
	if _, err := c.ConvergedState(); err != nil {
		t.Fatalf("diverged under common-mode drift: %v", err)
	}
}

// TestDifferentialDriftStillRunsToQuiescence pins that even a harsh
// differential drift (skew far beyond ε) cannot wedge or panic the replica
// machinery — the run completes and every op gets an answer or stays
// pending, never a desync.
func TestDifferentialDriftStillRunsToQuiescence(t *testing.T) {
	p := model.Params{N: 3, D: 1000, U: 200, Epsilon: 100}
	plan := &fault.Plan{
		Name: "drift",
		Drifts: []fault.Drift{
			{Proc: 0, PPM: -20_000}, {Proc: 2, PPM: 20_000},
		},
	}
	c := faultCluster(t, p, types.NewRMWRegister(0), plan)
	for i := 0; i < 8; i++ {
		c.Invoke(model.Time(1000+i*1200), model.ProcessID(i%3), types.OpRMW, int64(i))
	}
	if err := c.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
