package core

import (
	"fmt"

	"timebounds/internal/model"
)

// LifecycleState is a leaf state of the replica lifecycle HSM:
//
//	joining → syncing → serving → suspected → recovering → (syncing …)
//	    any active or faulted state → retired
//
// The leaves group into three superstates (SuperState): Active replicas
// participate in the protocol, Faulted replicas are down or catching up
// after a crash, and Retired is terminal. Guarded transitions live in
// Resolve; entry/exit actions hang off Lifecycle hooks.
type LifecycleState uint8

const (
	// StateJoining is the birth state: admitted to the membership but not
	// yet holding a copy of the object.
	StateJoining LifecycleState = iota
	// StateSyncing is acquiring the object state from a serving peer.
	StateSyncing
	// StateServing is full protocol participation (Algorithm 1 proper).
	StateServing
	// StateSuspected is crashed: silent, volatile state lost.
	StateSuspected
	// StateRecovering is restarted but not yet re-synchronized.
	StateRecovering
	// StateRetired is permanent departure (churn); terminal.
	StateRetired
)

// SuperState is the HSM's composite layer.
type SuperState uint8

const (
	// SuperActive groups joining, syncing and serving.
	SuperActive SuperState = iota
	// SuperFaulted groups suspected and recovering.
	SuperFaulted
	// SuperRetired holds only retired.
	SuperRetired
)

// Super returns the leaf's superstate.
func (s LifecycleState) Super() SuperState {
	switch s {
	case StateSuspected, StateRecovering:
		return SuperFaulted
	case StateRetired:
		return SuperRetired
	default:
		return SuperActive
	}
}

// String implements fmt.Stringer.
func (s LifecycleState) String() string {
	switch s {
	case StateJoining:
		return "joining"
	case StateSyncing:
		return "syncing"
	case StateServing:
		return "serving"
	case StateSuspected:
		return "suspected"
	case StateRecovering:
		return "recovering"
	case StateRetired:
		return "retired"
	default:
		return "invalid"
	}
}

// String implements fmt.Stringer.
func (s SuperState) String() string {
	switch s {
	case SuperActive:
		return "active"
	case SuperFaulted:
		return "faulted"
	case SuperRetired:
		return "retired"
	default:
		return "invalid"
	}
}

// LifecycleEvent triggers a lifecycle transition.
type LifecycleEvent uint8

const (
	// EvAdmit admits a joining replica into state acquisition.
	EvAdmit LifecycleEvent = iota
	// EvSynced completes state acquisition.
	EvSynced
	// EvCrash halts a replica (any active leaf).
	EvCrash
	// EvRecover restarts a crashed replica.
	EvRecover
	// EvResync sends a recovered replica back into state acquisition.
	EvResync
	// EvRetire removes a replica permanently (any non-retired leaf).
	EvRetire
)

// String implements fmt.Stringer.
func (e LifecycleEvent) String() string {
	switch e {
	case EvAdmit:
		return "admit"
	case EvSynced:
		return "synced"
	case EvCrash:
		return "crash"
	case EvRecover:
		return "recover"
	case EvResync:
		return "resync"
	case EvRetire:
		return "retire"
	default:
		return "invalid"
	}
}

// LifecycleStates enumerates every leaf state, for coverage tests.
func LifecycleStates() []LifecycleState {
	return []LifecycleState{StateJoining, StateSyncing, StateServing,
		StateSuspected, StateRecovering, StateRetired}
}

// LifecycleEvents enumerates every event, for coverage tests.
func LifecycleEvents() []LifecycleEvent {
	return []LifecycleEvent{EvAdmit, EvSynced, EvCrash, EvRecover, EvResync, EvRetire}
}

// Resolve is the HSM's transition function: leaf-specific rules first, then
// the superstate's rules, otherwise an explicit rejection explaining why the
// (state, event) pair is invalid. Every pair resolves to exactly one of the
// two — the lifecycle property tests enumerate the full cross product.
func Resolve(s LifecycleState, ev LifecycleEvent) (LifecycleState, error) {
	// Leaf rules shadow superstate rules, as in any HSM.
	switch {
	case s == StateJoining && ev == EvAdmit:
		return StateSyncing, nil
	case s == StateSyncing && ev == EvSynced:
		return StateServing, nil
	case s == StateSuspected && ev == EvRecover:
		return StateRecovering, nil
	case s == StateRecovering && ev == EvResync:
		return StateSyncing, nil
	}
	switch s.Super() {
	case SuperActive:
		switch ev {
		case EvCrash:
			return StateSuspected, nil
		case EvRetire:
			return StateRetired, nil
		}
	case SuperFaulted:
		if ev == EvRetire {
			return StateRetired, nil
		}
	}
	return s, rejectTransition(s, ev)
}

// rejectTransition explains why a (state, event) pair is invalid.
func rejectTransition(s LifecycleState, ev LifecycleEvent) error {
	var why string
	switch {
	case s == StateRetired:
		why = "retired is terminal"
	case ev == EvCrash:
		why = "already faulted; a crash needs a live replica"
	case ev == EvRecover:
		why = "only a suspected replica recovers"
	case ev == EvResync:
		why = "only a recovering replica re-syncs"
	case ev == EvAdmit:
		why = "only a joining replica is admitted"
	case ev == EvSynced:
		why = "only a syncing replica completes synchronization"
	default:
		why = "no rule"
	}
	return fmt.Errorf("core: lifecycle rejects %s in state %s (%s)", ev, s, why)
}

// Lifecycle is one replica's HSM instance: the current leaf state plus
// optional entry/exit actions. Hooks run in standard HSM order on Fire:
// exit leaf, exit superstate (when it changes), enter superstate, enter
// leaf. Nil hooks cost nothing.
type Lifecycle struct {
	state LifecycleState

	// OnExit and OnEnter run on every leaf transition.
	OnExit, OnEnter func(s LifecycleState, at model.Time)
	// OnExitSuper and OnEnterSuper run only when the superstate changes.
	OnExitSuper, OnEnterSuper func(s SuperState, at model.Time)
}

// NewLifecycle returns an HSM in the birth state, joining.
func NewLifecycle() Lifecycle { return Lifecycle{state: StateJoining} }

// State returns the current leaf state.
func (l *Lifecycle) State() LifecycleState { return l.state }

// CanServe reports whether the replica participates in the protocol.
func (l *Lifecycle) CanServe() bool { return l.state == StateServing }

// Fire resolves ev against the current state and, if the transition is
// allowed, runs the exit/enter actions and moves. A rejected event leaves
// the state untouched and returns the rejection.
func (l *Lifecycle) Fire(ev LifecycleEvent, at model.Time) error {
	next, err := Resolve(l.state, ev)
	if err != nil {
		return err
	}
	prev := l.state
	if l.OnExit != nil {
		l.OnExit(prev, at)
	}
	if prev.Super() != next.Super() {
		if l.OnExitSuper != nil {
			l.OnExitSuper(prev.Super(), at)
		}
	}
	l.state = next
	if prev.Super() != next.Super() {
		if l.OnEnterSuper != nil {
			l.OnEnterSuper(next.Super(), at)
		}
	}
	if l.OnEnter != nil {
		l.OnEnter(next, at)
	}
	return nil
}
